// Monitoring fairness over time. Platforms re-rank continuously; an auditor
// re-crawls periodically and wants fresh numbers without recomputing the
// whole cube. This example:
//   1. crawls epoch 0 of a simulated marketplace and builds a cube + index;
//   2. advances the marketplace one epoch (rankings shift) and re-crawls
//      only a subset of queries;
//   3. refreshes exactly those cube columns and inverted lists
//      (RefreshMarketplaceColumn + IndexSet::RefreshColumn);
//   4. reports how the top-group ranking moved between epochs, with a
//      bootstrap CI to separate drift from resampling noise.
//
//   ./build/examples/monitoring_audit

#include <cstdio>

#include "core/quantification.h"
#include "core/trend.h"
#include "core/stats.h"
#include "crawl/dataset_assembly.h"
#include "market/taskrabbit_sim.h"

using namespace fairjob;

namespace {

template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::printf("FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

// Crawl every (job, city) of `site` into a dataset (truth demographics).
MarketplaceDataset CrawlEpoch(SimulatedMarketplace* site) {
  VirtualClock clock;
  CrawlerConfig config;
  config.min_request_interval_s = 0;
  Crawler crawler(site, &clock, config);
  CrawlReport report = OrDie(crawler.CrawlAll(), "crawl");
  std::unordered_map<std::string, Demographics> demographics;
  for (const CrawlRecord& record : report.records) {
    demographics[record.worker_name] =
        OrDie(site->TrueDemographics(record.worker_name), "truth");
  }
  return OrDie(AssembleMarketplace(site->schema(), report.records,
                                   demographics),
               "assembly")
      .dataset;
}

}  // namespace

int main() {
  TaskRabbitConfig config;
  config.num_workers = 600;
  config.max_cities = 6;
  config.max_subjobs_per_category = 3;
  config.target_query_count = 1 << 20;
  std::unique_ptr<SimulatedMarketplace> site =
      OrDie(BuildTaskRabbitSite(config), "site");

  // --- Epoch 0: full audit ----------------------------------------------------
  MarketplaceDataset data = CrawlEpoch(site.get());
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  UnfairnessCube cube =
      OrDie(BuildMarketplaceCube(data, space, MarketMeasure::kEmd), "cube");
  IndexSet indices = IndexSet::Build(cube);

  auto top_group = [&](const UnfairnessCube& c, const IndexSet& idx) {
    QuantificationRequest request;
    request.target = Dimension::kGroup;
    request.k = 3;
    QuantificationResult result =
        OrDie(SolveQuantification(c, idx, request), "top-k");
    return result;
  };
  TrendTracker trend(Dimension::kGroup);
  if (!trend.RecordEpoch(cube).ok()) return 1;

  QuantificationResult epoch0 = top_group(cube, indices);
  std::printf("epoch 0 top groups:\n");
  for (const auto& answer : epoch0.answers) {
    std::printf("  %-14s %.3f\n",
                space.label(answer.id).DisplayName(space.schema()).c_str(),
                answer.value);
  }

  // --- Epoch 1: the market moves; re-crawl one city ---------------------------
  site->SetEpoch(1);
  std::string city = site->Cities()[0];
  size_t refreshed = 0;
  LocationId l = OrDie(data.locations().Find(city), "city id");
  size_t l_pos = OrDie(cube.PosOf(Dimension::kLocation, l), "city pos");
  for (const std::string& job : site->JobsIn(city)) {
    std::vector<size_t> ranking = OrDie(site->RankFor(job, city), "rank");
    MarketRanking fresh;
    size_t n = std::min<size_t>(ranking.size(), 50);
    for (size_t i = 0; i < n; ++i) {
      const std::string& name = site->worker(ranking[i]).name;
      Result<WorkerId> id = data.workers().Find(name);
      if (!id.ok()) {
        // A worker surfaced into the top-50 who was below the crawl cap in
        // epoch 0: label and register the new profile on the fly.
        id = data.AddWorker(name,
                            OrDie(site->TrueDemographics(name), "truth"));
      }
      fresh.workers.push_back(OrDie(std::move(id), "worker"));
    }
    QueryId q = OrDie(data.queries().Find(job), "query id");
    if (!data.SetRanking(q, l, std::move(fresh)).ok()) return 1;
    size_t q_pos = OrDie(cube.PosOf(Dimension::kQuery, q), "query pos");
    if (!RefreshMarketplaceColumn(data, space, MarketMeasure::kEmd, {}, &cube,
                                  q_pos, l_pos)
             .ok()) {
      return 1;
    }
    indices.RefreshColumn(cube, q_pos, l_pos);
    ++refreshed;
  }
  std::printf("\nepoch 1: re-crawled %zu queries in %s, refreshed %zu cube "
              "columns incrementally\n",
              refreshed, city.c_str(), refreshed);

  QuantificationResult epoch1 = top_group(cube, indices);
  std::printf("epoch 1 top groups:\n");
  for (const auto& answer : epoch1.answers) {
    std::printf("  %-14s %.3f\n",
                space.label(answer.id).DisplayName(space.schema()).c_str(),
                answer.value);
  }

  if (!trend.RecordEpoch(cube).ok()) return 1;
  std::printf("\nlargest epoch-over-epoch drifts:\n");
  for (const TrendTracker::Drift& drift : OrDie(trend.TopDrifts(3), "drifts")) {
    std::printf("  %-14s %.3f -> %.3f (%+.4f)\n",
                space.label(static_cast<GroupId>(
                                cube.axis_id(Dimension::kGroup, drift.pos)))
                    .DisplayName(space.schema())
                    .c_str(),
                drift.from, drift.to, drift.delta());
  }
  std::printf("rank crossings between epochs: %zu\n",
              OrDie(trend.RankCrossings(), "crossings").size());

  // --- Is the movement real? ---------------------------------------------------
  Rng rng(2026);
  size_t pos = OrDie(cube.PosOf(Dimension::kGroup, epoch1.answers[0].id),
                     "group pos");
  ConfidenceInterval ci = OrDie(
      BootstrapAggregate(cube, Dimension::kGroup, pos, {}, {}, 500, 0.95,
                         &rng),
      "bootstrap");
  std::printf("\nepoch 1 leader %s: d = %.3f, 95%% CI [%.3f, %.3f] over %zu "
              "cells\n",
              space.label(epoch1.answers[0].id)
                  .DisplayName(space.schema())
                  .c_str(),
              ci.point, ci.lo, ci.hi, ci.cells);
  std::printf("(drift smaller than the CI width is resampling noise, not a "
              "fairness change)\n");
  return 0;
}
