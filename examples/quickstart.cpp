// Quickstart: audit a (tiny, hand-written) marketplace for group fairness.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The flow is the paper's in miniature:
//   1. declare the protected attributes;
//   2. load workers and per-(query, location) rankings into a dataset;
//   3. build an F-Box (unfairness cube + Fagin indices) for a measure;
//   4. ask quantification ("which group is treated worst?") and
//      comparison ("where does the male/female ordering invert?") queries.

#include <cstdio>

#include "core/fbox.h"

using namespace fairjob;

int main() {
  // 1. Protected attributes. Any categorical attributes work; the group
  //    space enumerates every conjunction automatically.
  AttributeSchema schema;
  if (!schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok() ||
      !schema.AddAttribute("gender", {"Male", "Female"}).ok()) {
    return 1;
  }

  // 2. A marketplace dataset: the paper's Table 2/3 toy example.
  MarketplaceDataset data(schema);
  struct W {
    const char* name;
    ValueId ethnicity;  // 0 Asian, 1 Black, 2 White
    ValueId gender;     // 0 Male, 1 Female
  };
  const W workers[] = {
      {"w1", 0, 1}, {"w2", 2, 0}, {"w3", 2, 1}, {"w4", 0, 0}, {"w5", 1, 1},
      {"w6", 1, 0}, {"w7", 1, 1}, {"w8", 1, 0}, {"w9", 2, 0}, {"w10", 2, 1},
  };
  for (const W& w : workers) {
    Result<WorkerId> id = data.AddWorker(w.name, {w.ethnicity, w.gender});
    if (!id.ok()) {
      std::printf("AddWorker: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  QueryId cleaning = data.queries().GetOrAdd("Home Cleaning");
  LocationId sf = data.locations().GetOrAdd("San Francisco");
  MarketRanking ranking;
  auto worker = [&](const char* name) { return *data.workers().Find(name); };
  ranking.workers = {worker("w3"), worker("w8"), worker("w6"), worker("w2"),
                     worker("w1"), worker("w4"), worker("w7"), worker("w5"),
                     worker("w9"), worker("w10")};
  if (!data.SetRanking(cleaning, sf, std::move(ranking)).ok()) return 1;

  // 3. The F-Box precomputes d<g,q,l> for every triple and the three
  //    inverted-index families used by the threshold algorithm.
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  Result<FBox> fbox =
      FBox::ForMarketplace(&data, &space, MarketMeasure::kExposure);
  if (!fbox.ok()) {
    std::printf("FBox: %s\n", fbox.status().ToString().c_str());
    return 1;
  }

  // 4a. Fairness quantification (Problem 1): the 3 most unfairly treated
  //     groups across all queries and locations.
  Result<std::vector<FBox::NamedAnswer>> top = fbox->TopK(Dimension::kGroup, 3);
  if (!top.ok()) return 1;
  std::printf("Most unfairly treated groups (exposure deviation):\n");
  for (const auto& answer : *top) {
    std::printf("  %-14s %.4f\n", answer.name.c_str(), answer.value);
  }

  // The paper's Figure 5 value for Black Females drops out directly:
  GroupId black_female = *space.FindByDisplayName("Black Female");
  Result<double> bf = MarketplaceUnfairness(data, space, black_female, cleaning,
                                            sf, MarketMeasure::kExposure);
  std::printf("\nd<Black Female, Home Cleaning, San Francisco> = %.4f "
              "(paper Figure 5: 0.04)\n",
              *bf);

  // 4b. Fairness comparison (Problem 2): does any query invert the
  //     Asian-vs-White ordering? (One query here, so the breakdown is
  //     trivially aligned with the overall comparison.)
  Result<ComparisonResult> cmp = fbox->CompareByName(
      Dimension::kGroup, "Asian", "White", Dimension::kQuery);
  if (!cmp.ok()) return 1;
  std::printf("\nAsian vs White overall: %.4f vs %.4f (%zu reversing queries)\n",
              cmp->overall_d1, cmp->overall_d2, cmp->reversed.size());
  return 0;
}
