// The paper's introduction notes that platforms like Qapa "can be used to
// rank both workers and jobs". This example audits one synthetic platform
// from both sides with the same schema and group space:
//   * marketplace side — employers see ranked workers per (job, city);
//   * search side     — job seekers see personalized ranked job lists.
// Because both F-Boxes share group display names, findings compose: the
// example checks whether the group treated worst as ranked *workers* is
// also served the most divergent *job results*.
//
//   ./build/examples/qapa_dual_audit

#include <cstdio>

#include "core/fbox.h"
#include "core/transfer.h"
#include "market/taskrabbit_sim.h"
#include "search/google_sim.h"

using namespace fairjob;

namespace {

template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::printf("FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  // Worker-ranking side: a compact marketplace.
  TaskRabbitConfig market_config;
  market_config.num_workers = 600;
  market_config.max_cities = 6;
  market_config.max_subjobs_per_category = 2;
  market_config.target_query_count = 1 << 20;
  TaskRabbitDataset market =
      OrDie(BuildTaskRabbitDataset(market_config), "market");
  GroupSpace market_space =
      *GroupSpace::Enumerate(market.dataset.schema());
  FBox worker_box = OrDie(
      FBox::ForMarketplace(&market.dataset, &market_space,
                           MarketMeasure::kEmd),
      "worker fbox");

  // Job-ranking side: the personalized search study.
  GoogleStudyConfig search_config;
  GoogleWorld search = OrDie(BuildGoogleStudy(search_config), "search");
  GroupSpace search_space = *GroupSpace::Enumerate(search.dataset.schema());
  FBox job_box = OrDie(
      FBox::ForSearch(&search.dataset_by_base_query, &search_space,
                      SearchMeasure::kKendallTau),
      "job fbox");

  std::printf("dual audit of one platform, both ranking directions:\n\n");
  std::printf("%-26s | %-26s\n", "workers ranked (EMD)", "jobs ranked (KT)");
  std::printf("%s\n", std::string(55, '-').c_str());
  std::vector<FBox::NamedAnswer> worker_side =
      OrDie(worker_box.TopK(Dimension::kGroup, 5), "worker top");
  std::vector<FBox::NamedAnswer> job_side =
      OrDie(job_box.TopK(Dimension::kGroup, 5), "job top");
  for (size_t i = 0; i < 5; ++i) {
    std::printf("%-18s %6.3f | %-18s %6.3f\n", worker_side[i].name.c_str(),
                worker_side[i].value, job_side[i].name.c_str(),
                job_side[i].value);
  }

  // Cross-direction check via the transfer API: do the worker-side top
  // groups stay near the top on the job side?
  std::printf("\nworker-side hypotheses on the job side (slack 3):\n");
  for (const HypothesisOutcome& outcome :
       OrDie(TransferTopGroups(worker_box, job_box, 3, 3), "transfer")) {
    std::printf("  %-14s worker rank %zu -> job rank %zu : %s\n",
                outcome.hypothesis.group.c_str(), outcome.source_rank,
                outcome.target_rank,
                outcome.confirmed ? "consistent" : "direction-specific");
  }

  std::printf(
      "\n(direction-specific findings are expected: worker-side unfairness "
      "comes from ranking penalties, job-side from personalization — the "
      "framework keeps both comparable through the shared group space)\n");
  return 0;
}
