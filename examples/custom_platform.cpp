// Auditing your own platform: the library is not tied to TaskRabbit/Google
// or to the gender × ethnicity schema. This example
//   * declares a three-attribute schema (adding an age band),
//   * ingests crawl-style CSV data for a fictional "GigHub" marketplace,
//   * audits it, including groups like "Female Senior" that only exist
//     because the group space enumerates every attribute conjunction.
//
//   ./build/examples/custom_platform

#include <cstdio>

#include "core/fbox.h"
#include "crawl/csv.h"
#include "crawl/dataset_assembly.h"

using namespace fairjob;

namespace {

template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::printf("FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

// Your export: one row per (job, city, rank, worker) observation.
constexpr const char* kCrawlCsv =
    "job,city,rank,worker\n"
    "welding,Springfield,1,ana\n"
    "welding,Springfield,2,bob\n"
    "welding,Springfield,3,carol\n"
    "welding,Springfield,4,dave\n"
    "welding,Springfield,5,erin\n"
    "welding,Springfield,6,frank\n"
    "catering,Springfield,1,bob\n"
    "catering,Springfield,2,dave\n"
    "catering,Springfield,3,frank\n"
    "catering,Springfield,4,ana\n"
    "catering,Springfield,5,carol\n"
    "catering,Springfield,6,erin\n"
    "welding,Shelbyville,1,gia\n"
    "welding,Shelbyville,2,hank\n"
    "welding,Shelbyville,3,ivy\n"
    "welding,Shelbyville,4,jack\n"
    "catering,Shelbyville,1,ivy\n"
    "catering,Shelbyville,2,gia\n"
    "catering,Shelbyville,3,jack\n"
    "catering,Shelbyville,4,hank\n";

// Your HR/labeling export: worker -> demographics.
constexpr const char* kWorkersCsv =
    "worker,gender,ethnicity,age\n"
    "ana,Female,White,Junior\n"
    "bob,Male,White,Senior\n"
    "carol,Female,Black,Senior\n"
    "dave,Male,Black,Junior\n"
    "erin,Female,Asian,Senior\n"
    "frank,Male,Asian,Junior\n"
    "gia,Female,White,Senior\n"
    "hank,Male,Black,Senior\n"
    "ivy,Female,Asian,Junior\n"
    "jack,Male,White,Junior\n";

}  // namespace

int main() {
  // 1. Any categorical protected attributes work.
  AttributeSchema schema;
  AttributeId gender = OrDie(
      schema.AddAttribute("gender", {"Male", "Female"}), "gender");
  AttributeId ethnicity = OrDie(
      schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}),
      "ethnicity");
  AttributeId age = OrDie(schema.AddAttribute("age", {"Junior", "Senior"}),
                          "age");

  // 2. Parse the exports.
  std::vector<CrawlRecord> records =
      OrDie(CrawlRecordsFromCsvRows(*ParseCsv(kCrawlCsv)), "crawl csv");
  std::unordered_map<std::string, Demographics> demographics;
  for (const auto& row : OrDie(ParseCsv(kWorkersCsv), "worker csv")) {
    if (row[0] == "worker") continue;  // header
    Demographics d(schema.num_attributes(), 0);
    d[static_cast<size_t>(gender)] = OrDie(schema.FindValue(gender, row[1]),
                                           "gender value");
    d[static_cast<size_t>(ethnicity)] =
        OrDie(schema.FindValue(ethnicity, row[2]), "ethnicity value");
    d[static_cast<size_t>(age)] = OrDie(schema.FindValue(age, row[3]),
                                        "age value");
    demographics[row[0]] = std::move(d);
  }

  // 3. Assemble and audit.
  MarketplaceAssembly assembly =
      OrDie(AssembleMarketplace(schema, records, demographics), "assembly");
  GroupSpace space = *GroupSpace::Enumerate(assembly.dataset.schema());
  std::printf("group space over 3 attributes: %zu groups (every conjunction "
              "of gender, ethnicity and age band)\n",
              space.num_groups());

  FBox fbox = OrDie(
      FBox::ForMarketplace(&assembly.dataset, &space, MarketMeasure::kEmd),
      "fbox");
  std::printf("cube: %zu of %zu cells defined (groups without members in a "
              "ranking are skipped, not zeroed)\n",
              fbox.cube().num_present(), fbox.cube().num_cells());

  std::printf("\nmost unfairly ranked groups on GigHub (EMD):\n");
  for (const auto& answer : OrDie(fbox.TopK(Dimension::kGroup, 5), "top")) {
    std::printf("  %-22s %.3f\n", answer.name.c_str(), answer.value);
  }

  // Conjunctions with the new attribute are first-class groups:
  Result<size_t> senior_female_pos =
      fbox.PosOf(Dimension::kGroup, "Female Senior");
  if (senior_female_pos.ok()) {
    std::optional<double> d = fbox.cube().AxisAverage(
        Dimension::kGroup, *senior_female_pos);
    if (d.has_value()) {
      std::printf("\nd<Female ∧ Senior> across all jobs and cities = %.3f\n",
                  *d);
    }
  }

  // Comparison with the third attribute as breakdown-by-query:
  ComparisonResult cmp = OrDie(
      fbox.CompareByName(Dimension::kGroup, "Junior", "Senior",
                         Dimension::kQuery),
      "comparison");
  std::printf("\nJunior vs Senior overall: %.3f vs %.3f; %zu of %zu queries "
              "invert the ordering\n",
              cmp.overall_d1, cmp.overall_d2, cmp.reversed.size(),
              cmp.rows.size());
  return 0;
}
