// End-to-end reproduction of the paper's Google-job-search flow (Figure 9):
// recruit screened participants, run every query formulation through the
// noise-controlled extension protocol against the personalized search
// simulator, assemble the dataset, and audit it with both search measures.
// Ends with the paper's §6 idea: a hypothesis generated on TaskRabbit is
// verified on Google (cross-site hypothesis transfer).
//
//   ./build/examples/google_audit

#include <cstdio>

#include "core/fbox.h"
#include "core/transfer.h"
#include "market/taskrabbit_sim.h"
#include "search/google_sim.h"

using namespace fairjob;

namespace {

template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::printf("FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  // --- 1. Run the user study ---------------------------------------------------
  GoogleStudyConfig config;
  GoogleWorld world = OrDie(BuildGoogleStudy(config), "study");
  std::printf("study: %zu participants x %zu tasks, %zu (term, location) "
              "cells collected, %zu A/B conflicts tie-broken\n",
              world.dataset.num_users(), world.tasks.size(),
              world.dataset.num_observation_cells(),
              world.ab_conflicts_resolved);

  GroupSpace space = *GroupSpace::Enumerate(world.dataset.schema());
  FBox kendall = OrDie(FBox::ForSearch(&world.dataset_by_base_query, &space,
                                       SearchMeasure::kKendallTau),
                       "kendall fbox");
  FBox jaccard = OrDie(FBox::ForSearch(&world.dataset_by_base_query, &space,
                                       SearchMeasure::kJaccard),
                       "jaccard fbox");

  // --- 2. Quantification under both measures -----------------------------------
  for (const auto& [name, box] :
       {std::pair<const char*, const FBox*>{"Kendall-Tau", &kendall},
        std::pair<const char*, const FBox*>{"Jaccard", &jaccard}}) {
    std::printf("\n[%s] most / least personalized-against groups:\n", name);
    auto top = OrDie(box->TopK(Dimension::kGroup, 2), "top");
    auto bottom = OrDie(
        box->TopK(Dimension::kGroup, 2, RankDirection::kLeastUnfair), "bottom");
    std::printf("  most:  %s (%.3f), %s (%.3f)\n", top[0].name.c_str(),
                top[0].value, top[1].name.c_str(), top[1].value);
    std::printf("  least: %s (%.3f), %s (%.3f)\n", bottom[0].name.c_str(),
                bottom[0].value, bottom[1].name.c_str(), bottom[1].value);
  }

  // --- 3. Hypothesis transfer (paper §6) -----------------------------------------
  // Generate on TaskRabbit: "female cells are treated less fairly than male
  // cells"; verify the same hypothesis on Google job search.
  TaskRabbitConfig tr_config;
  tr_config.num_workers = 560;
  tr_config.max_cities = 8;
  tr_config.max_subjobs_per_category = 2;
  tr_config.target_query_count = 1 << 20;
  TaskRabbitDataset tr = OrDie(BuildTaskRabbitDataset(tr_config), "taskrabbit");
  GroupSpace tr_space = *GroupSpace::Enumerate(tr.dataset.schema());
  FBox tr_box = OrDie(
      FBox::ForMarketplace(&tr.dataset, &tr_space, MarketMeasure::kExposure),
      "tr fbox");

  // 3a. Set-comparison hypothesis: are female cells treated less fairly?
  SetComparisonHypothesis females_worse{
      {"Asian Female", "Black Female", "White Female"},
      {"Asian Male", "Black Male", "White Male"}};
  bool tr_holds = OrDie(Holds(tr_box, females_worse), "tr hypothesis");
  bool gg_holds = OrDie(Holds(kendall, females_worse), "google hypothesis");
  std::printf("\nhypothesis 'female cells treated less fairly':\n");
  std::printf("  TaskRabbit (exposure): %s   Google (Kendall-Tau): %s -> %s\n",
              tr_holds ? "holds" : "fails", gg_holds ? "holds" : "fails",
              tr_holds == gg_holds ? "TRANSFERS" : "does NOT transfer");

  // 3b. Top-group hypotheses: do TaskRabbit's most-discriminated groups
  // stay near the top on Google? (slack 3: cross-site ranks are fuzzy).
  std::printf("\ntop-group hypothesis transfer (TaskRabbit -> Google):\n");
  for (const HypothesisOutcome& outcome :
       OrDie(TransferTopGroups(tr_box, kendall, 3, 3), "transfer")) {
    std::printf("  '%s among top-3' : source rank %zu, Google rank %zu -> "
                "%s\n",
                outcome.hypothesis.group.c_str(), outcome.source_rank,
                outcome.target_rank,
                outcome.confirmed ? "confirmed" : "refuted");
  }
  return 0;
}
