// End-to-end reproduction of the paper's TaskRabbit flow (Figure 6) at a
// reduced scale: crawl the simulated marketplace, persist raw records to
// CSV, label tasker demographics with simulated AMT annotators, assemble
// the dataset, and run both fairness problems through the F-Box.
//
//   ./build/examples/taskrabbit_audit

#include <cstdio>

#include "core/fbox.h"
#include "crawl/csv.h"
#include "crawl/dataset_assembly.h"
#include "crawl/labeling.h"
#include "market/taskrabbit_sim.h"

using namespace fairjob;

namespace {

template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::printf("FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  // A scaled-down world (8 cities, 3 sub-jobs per category) so the crawl
  // output is easy to eyeball; drop max_cities / max_subjobs_per_category
  // for the full 56-city, 5,361-query crawl.
  TaskRabbitConfig config;
  config.num_workers = 800;
  config.max_cities = 8;
  config.max_subjobs_per_category = 3;
  config.target_query_count = 1 << 20;  // no exclusions at this scale
  config.transient_failure_rate = 0.05; // exercise the crawler's retries
  std::unique_ptr<SimulatedMarketplace> site =
      OrDie(BuildTaskRabbitSite(config), "site");

  // --- 1. Crawl -------------------------------------------------------------
  VirtualClock clock;
  CrawlerConfig crawl_config;
  crawl_config.page_size = 10;
  crawl_config.max_results_per_query = 50;
  crawl_config.min_request_interval_s = 1;
  Crawler crawler(site.get(), &clock, crawl_config);
  CrawlReport report = OrDie(crawler.CrawlAll(), "crawl");
  std::printf("crawl: %zu records, %zu requests (%zu retried), "
              "%zu failed queries, %lld virtual seconds\n",
              report.records.size(), report.requests_issued, report.retries,
              report.failed_queries,
              static_cast<long long>(report.finished_at_s));

  // Raw crawl records round-trip through CSV like the real pipeline's files.
  std::string csv = WriteCsv(CrawlRecordsToCsvRows(report.records));
  std::vector<CrawlRecord> records =
      OrDie(CrawlRecordsFromCsvRows(*ParseCsv(csv)), "csv round-trip");
  std::printf("csv: %zu bytes round-tripped\n", csv.size());

  // --- 2. Profiles + AMT-style demographic labeling --------------------------
  ProfileStore profiles;
  if (!crawler.CollectProfiles(records, &profiles, &report).ok()) return 1;
  std::vector<Demographics> truths;
  std::vector<std::string> names;
  for (const RawProfile& profile : profiles.profiles()) {
    truths.push_back(
        OrDie(site->TruthByPicture(profile.picture_ref), "truth"));
    names.push_back(profile.worker_name);
  }
  LabelingConfig labeling;
  labeling.annotators_per_item = 3;
  labeling.error_rate = 0.05;
  Rng rng(2019);
  LabelingOutcome labeled =
      OrDie(RunLabeling(site->schema(), truths, labeling, &rng), "labeling");
  std::printf("labeling: %zu profiles, %.1f%% attribute accuracy after "
              "majority vote\n",
              names.size(), 100.0 * labeled.attribute_accuracy);

  std::unordered_map<std::string, Demographics> demographics;
  for (size_t i = 0; i < names.size(); ++i) {
    demographics[names[i]] = labeled.labels[i];
  }

  // --- 3. Assemble + F-Box ----------------------------------------------------
  MarketplaceAssembly assembly =
      OrDie(AssembleMarketplace(site->schema(), records, demographics),
            "assembly");
  GroupSpace space = *GroupSpace::Enumerate(assembly.dataset.schema());
  FBox fbox = OrDie(FBox::ForMarketplace(&assembly.dataset, &space,
                                         MarketMeasure::kEmd),
                    "fbox");
  std::printf("cube: %zu present cells of %zu\n", fbox.cube().num_present(),
              fbox.cube().num_cells());

  // --- 4a. Quantification -----------------------------------------------------
  std::printf("\nmost unfairly treated groups (EMD):\n");
  for (const auto& a : OrDie(fbox.TopK(Dimension::kGroup, 5), "top groups")) {
    std::printf("  %-14s %.3f\n", a.name.c_str(), a.value);
  }
  std::printf("least fair locations:\n");
  for (const auto& a :
       OrDie(fbox.TopK(Dimension::kLocation, 3), "top locations")) {
    std::printf("  %-20s %.3f\n", a.name.c_str(), a.value);
  }
  std::printf("fairest locations:\n");
  for (const auto& a : OrDie(
           fbox.TopK(Dimension::kLocation, 3, RankDirection::kLeastUnfair),
           "bottom locations")) {
    std::printf("  %-20s %.3f\n", a.name.c_str(), a.value);
  }

  // --- 4b. Comparison ----------------------------------------------------------
  ComparisonResult cmp = OrDie(
      fbox.CompareSetsByName(Dimension::kGroup,
                             {"Asian Male", "Black Male", "White Male"},
                             {"Asian Female", "Black Female", "White Female"},
                             Dimension::kLocation),
      "comparison");
  std::printf("\nmale vs female cells overall: %.3f vs %.3f\n", cmp.overall_d1,
              cmp.overall_d2);
  std::printf("locations where the ordering inverts:\n");
  for (const ComparisonRow& row : cmp.reversed) {
    std::printf("  %-20s M=%.3f F=%.3f\n",
                fbox.NameOf(Dimension::kLocation, row.breakdown_id).c_str(),
                row.d1, row.d2);
  }
  if (cmp.reversed.empty()) std::printf("  (none at this scale)\n");
  return 0;
}
