# Empty dependencies file for fairjob_tests.
# This may be replaced when dependencies are built.
