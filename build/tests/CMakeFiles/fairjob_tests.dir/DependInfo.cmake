
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assembly_test.cc" "tests/CMakeFiles/fairjob_tests.dir/assembly_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/assembly_test.cc.o.d"
  "/root/repo/tests/attribute_schema_test.cc" "tests/CMakeFiles/fairjob_tests.dir/attribute_schema_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/attribute_schema_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/fairjob_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/comparison_test.cc" "tests/CMakeFiles/fairjob_tests.dir/comparison_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/comparison_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/fairjob_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/crawler_test.cc" "tests/CMakeFiles/fairjob_tests.dir/crawler_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/crawler_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/fairjob_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/cube_io_test.cc" "tests/CMakeFiles/fairjob_tests.dir/cube_io_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/cube_io_test.cc.o.d"
  "/root/repo/tests/cube_test.cc" "tests/CMakeFiles/fairjob_tests.dir/cube_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/cube_test.cc.o.d"
  "/root/repo/tests/data_model_test.cc" "tests/CMakeFiles/fairjob_tests.dir/data_model_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/data_model_test.cc.o.d"
  "/root/repo/tests/emd_test.cc" "tests/CMakeFiles/fairjob_tests.dir/emd_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/emd_test.cc.o.d"
  "/root/repo/tests/explain_test.cc" "tests/CMakeFiles/fairjob_tests.dir/explain_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/explain_test.cc.o.d"
  "/root/repo/tests/exposure_test.cc" "tests/CMakeFiles/fairjob_tests.dir/exposure_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/exposure_test.cc.o.d"
  "/root/repo/tests/fagin_family_test.cc" "tests/CMakeFiles/fairjob_tests.dir/fagin_family_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/fagin_family_test.cc.o.d"
  "/root/repo/tests/fagin_test.cc" "tests/CMakeFiles/fairjob_tests.dir/fagin_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/fagin_test.cc.o.d"
  "/root/repo/tests/fbox_test.cc" "tests/CMakeFiles/fairjob_tests.dir/fbox_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/fbox_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/fairjob_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/footrule_test.cc" "tests/CMakeFiles/fairjob_tests.dir/footrule_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/footrule_test.cc.o.d"
  "/root/repo/tests/golden_shapes_test.cc" "tests/CMakeFiles/fairjob_tests.dir/golden_shapes_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/golden_shapes_test.cc.o.d"
  "/root/repo/tests/group_space_test.cc" "tests/CMakeFiles/fairjob_tests.dir/group_space_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/group_space_test.cc.o.d"
  "/root/repo/tests/group_test.cc" "tests/CMakeFiles/fairjob_tests.dir/group_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/group_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/fairjob_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/indices_test.cc" "tests/CMakeFiles/fairjob_tests.dir/indices_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/indices_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/fairjob_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/jaccard_test.cc" "tests/CMakeFiles/fairjob_tests.dir/jaccard_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/jaccard_test.cc.o.d"
  "/root/repo/tests/kendall_tau_test.cc" "tests/CMakeFiles/fairjob_tests.dir/kendall_tau_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/kendall_tau_test.cc.o.d"
  "/root/repo/tests/labeling_test.cc" "tests/CMakeFiles/fairjob_tests.dir/labeling_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/labeling_test.cc.o.d"
  "/root/repo/tests/market_test.cc" "tests/CMakeFiles/fairjob_tests.dir/market_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/market_test.cc.o.d"
  "/root/repo/tests/measures_test.cc" "tests/CMakeFiles/fairjob_tests.dir/measures_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/measures_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/fairjob_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/quantification_test.cc" "tests/CMakeFiles/fairjob_tests.dir/quantification_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/quantification_test.cc.o.d"
  "/root/repo/tests/rbo_test.cc" "tests/CMakeFiles/fairjob_tests.dir/rbo_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/rbo_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/fairjob_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/search_test.cc" "tests/CMakeFiles/fairjob_tests.dir/search_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/search_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/fairjob_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/transfer_test.cc" "tests/CMakeFiles/fairjob_tests.dir/transfer_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/transfer_test.cc.o.d"
  "/root/repo/tests/trend_test.cc" "tests/CMakeFiles/fairjob_tests.dir/trend_test.cc.o" "gcc" "tests/CMakeFiles/fairjob_tests.dir/trend_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fairjob_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_crawl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
