# Empty dependencies file for fairjob_cli.
# This may be replaced when dependencies are built.
