file(REMOVE_RECURSE
  "CMakeFiles/fairjob_cli.dir/fairjob_cli.cpp.o"
  "CMakeFiles/fairjob_cli.dir/fairjob_cli.cpp.o.d"
  "fairjob_cli"
  "fairjob_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairjob_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
