file(REMOVE_RECURSE
  "CMakeFiles/fairjob_gen.dir/fairjob_gen.cpp.o"
  "CMakeFiles/fairjob_gen.dir/fairjob_gen.cpp.o.d"
  "fairjob_gen"
  "fairjob_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairjob_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
