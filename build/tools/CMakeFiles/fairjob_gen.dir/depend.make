# Empty dependencies file for fairjob_gen.
# This may be replaced when dependencies are built.
