file(REMOVE_RECURSE
  "CMakeFiles/monitoring_audit.dir/monitoring_audit.cpp.o"
  "CMakeFiles/monitoring_audit.dir/monitoring_audit.cpp.o.d"
  "monitoring_audit"
  "monitoring_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
