# Empty dependencies file for monitoring_audit.
# This may be replaced when dependencies are built.
