file(REMOVE_RECURSE
  "CMakeFiles/taskrabbit_audit.dir/taskrabbit_audit.cpp.o"
  "CMakeFiles/taskrabbit_audit.dir/taskrabbit_audit.cpp.o.d"
  "taskrabbit_audit"
  "taskrabbit_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskrabbit_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
