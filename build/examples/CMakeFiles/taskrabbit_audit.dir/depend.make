# Empty dependencies file for taskrabbit_audit.
# This may be replaced when dependencies are built.
