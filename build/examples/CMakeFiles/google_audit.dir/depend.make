# Empty dependencies file for google_audit.
# This may be replaced when dependencies are built.
