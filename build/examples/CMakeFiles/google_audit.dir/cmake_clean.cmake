file(REMOVE_RECURSE
  "CMakeFiles/google_audit.dir/google_audit.cpp.o"
  "CMakeFiles/google_audit.dir/google_audit.cpp.o.d"
  "google_audit"
  "google_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/google_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
