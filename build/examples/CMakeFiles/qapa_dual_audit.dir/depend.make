# Empty dependencies file for qapa_dual_audit.
# This may be replaced when dependencies are built.
