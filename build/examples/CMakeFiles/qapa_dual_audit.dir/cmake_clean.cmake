file(REMOVE_RECURSE
  "CMakeFiles/qapa_dual_audit.dir/qapa_dual_audit.cpp.o"
  "CMakeFiles/qapa_dual_audit.dir/qapa_dual_audit.cpp.o.d"
  "qapa_dual_audit"
  "qapa_dual_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qapa_dual_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
