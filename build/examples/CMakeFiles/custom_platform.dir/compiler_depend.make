# Empty compiler generated dependencies file for custom_platform.
# This may be replaced when dependencies are built.
