file(REMOVE_RECURSE
  "CMakeFiles/custom_platform.dir/custom_platform.cpp.o"
  "CMakeFiles/custom_platform.dir/custom_platform.cpp.o.d"
  "custom_platform"
  "custom_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
