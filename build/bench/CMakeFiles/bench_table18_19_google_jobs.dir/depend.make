# Empty dependencies file for bench_table18_19_google_jobs.
# This may be replaced when dependencies are built.
