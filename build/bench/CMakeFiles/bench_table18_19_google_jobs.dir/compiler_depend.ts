# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_table18_19_google_jobs.
