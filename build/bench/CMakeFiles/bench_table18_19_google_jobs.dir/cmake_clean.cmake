file(REMOVE_RECURSE
  "CMakeFiles/bench_table18_19_google_jobs.dir/bench_table18_19_google_jobs.cc.o"
  "CMakeFiles/bench_table18_19_google_jobs.dir/bench_table18_19_google_jobs.cc.o.d"
  "bench_table18_19_google_jobs"
  "bench_table18_19_google_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table18_19_google_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
