file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_perf.dir/bench_incremental_perf.cc.o"
  "CMakeFiles/bench_incremental_perf.dir/bench_incremental_perf.cc.o.d"
  "bench_incremental_perf"
  "bench_incremental_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
