# Empty dependencies file for bench_table13_14_job_by_ethnicity.
# This may be replaced when dependencies are built.
