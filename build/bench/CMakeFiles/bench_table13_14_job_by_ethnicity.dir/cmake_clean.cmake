file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_14_job_by_ethnicity.dir/bench_table13_14_job_by_ethnicity.cc.o"
  "CMakeFiles/bench_table13_14_job_by_ethnicity.dir/bench_table13_14_job_by_ethnicity.cc.o.d"
  "bench_table13_14_job_by_ethnicity"
  "bench_table13_14_job_by_ethnicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_14_job_by_ethnicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
