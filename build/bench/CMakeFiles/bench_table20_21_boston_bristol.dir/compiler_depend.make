# Empty compiler generated dependencies file for bench_table20_21_boston_bristol.
# This may be replaced when dependencies are built.
