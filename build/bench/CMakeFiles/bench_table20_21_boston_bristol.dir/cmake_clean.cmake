file(REMOVE_RECURSE
  "CMakeFiles/bench_table20_21_boston_bristol.dir/bench_table20_21_boston_bristol.cc.o"
  "CMakeFiles/bench_table20_21_boston_bristol.dir/bench_table20_21_boston_bristol.cc.o.d"
  "bench_table20_21_boston_bristol"
  "bench_table20_21_boston_bristol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table20_21_boston_bristol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
