file(REMOVE_RECURSE
  "CMakeFiles/bench_measure_agreement.dir/bench_measure_agreement.cc.o"
  "CMakeFiles/bench_measure_agreement.dir/bench_measure_agreement.cc.o.d"
  "bench_measure_agreement"
  "bench_measure_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_measure_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
