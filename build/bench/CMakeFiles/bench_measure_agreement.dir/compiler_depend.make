# Empty compiler generated dependencies file for bench_measure_agreement.
# This may be replaced when dependencies are built.
