file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_11_locations.dir/bench_table10_11_locations.cc.o"
  "CMakeFiles/bench_table10_11_locations.dir/bench_table10_11_locations.cc.o.d"
  "bench_table10_11_locations"
  "bench_table10_11_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_11_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
