# Empty compiler generated dependencies file for bench_table10_11_locations.
# This may be replaced when dependencies are built.
