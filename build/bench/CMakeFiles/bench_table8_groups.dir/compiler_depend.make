# Empty compiler generated dependencies file for bench_table8_groups.
# This may be replaced when dependencies are built.
