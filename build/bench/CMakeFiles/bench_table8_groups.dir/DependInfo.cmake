
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table8_groups.cc" "bench/CMakeFiles/bench_table8_groups.dir/bench_table8_groups.cc.o" "gcc" "bench/CMakeFiles/bench_table8_groups.dir/bench_table8_groups.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_search.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_crawl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
