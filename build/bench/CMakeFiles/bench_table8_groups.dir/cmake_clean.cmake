file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_groups.dir/bench_table8_groups.cc.o"
  "CMakeFiles/bench_table8_groups.dir/bench_table8_groups.cc.o.d"
  "bench_table8_groups"
  "bench_table8_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
