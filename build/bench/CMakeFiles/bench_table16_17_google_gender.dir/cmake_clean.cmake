file(REMOVE_RECURSE
  "CMakeFiles/bench_table16_17_google_gender.dir/bench_table16_17_google_gender.cc.o"
  "CMakeFiles/bench_table16_17_google_gender.dir/bench_table16_17_google_gender.cc.o.d"
  "bench_table16_17_google_gender"
  "bench_table16_17_google_gender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table16_17_google_gender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
