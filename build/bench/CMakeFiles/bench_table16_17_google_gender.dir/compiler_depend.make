# Empty compiler generated dependencies file for bench_table16_17_google_gender.
# This may be replaced when dependencies are built.
