# Empty dependencies file for bench_google_setup.
# This may be replaced when dependencies are built.
