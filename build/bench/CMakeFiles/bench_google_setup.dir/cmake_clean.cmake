file(REMOVE_RECURSE
  "CMakeFiles/bench_google_setup.dir/bench_google_setup.cc.o"
  "CMakeFiles/bench_google_setup.dir/bench_google_setup.cc.o.d"
  "bench_google_setup"
  "bench_google_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_google_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
