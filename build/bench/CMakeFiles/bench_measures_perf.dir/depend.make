# Empty dependencies file for bench_measures_perf.
# This may be replaced when dependencies are built.
