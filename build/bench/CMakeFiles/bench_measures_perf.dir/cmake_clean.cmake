file(REMOVE_RECURSE
  "CMakeFiles/bench_measures_perf.dir/bench_measures_perf.cc.o"
  "CMakeFiles/bench_measures_perf.dir/bench_measures_perf.cc.o.d"
  "bench_measures_perf"
  "bench_measures_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_measures_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
