file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_demographics.dir/bench_fig7_8_demographics.cc.o"
  "CMakeFiles/bench_fig7_8_demographics.dir/bench_fig7_8_demographics.cc.o.d"
  "bench_fig7_8_demographics"
  "bench_fig7_8_demographics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_demographics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
