file(REMOVE_RECURSE
  "libbench_util.a"
)
