file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_jobs.dir/bench_table9_jobs.cc.o"
  "CMakeFiles/bench_table9_jobs.dir/bench_table9_jobs.cc.o.d"
  "bench_table9_jobs"
  "bench_table9_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
