# Empty dependencies file for bench_worked_examples.
# This may be replaced when dependencies are built.
