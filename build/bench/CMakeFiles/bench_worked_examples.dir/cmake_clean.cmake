file(REMOVE_RECURSE
  "CMakeFiles/bench_worked_examples.dir/bench_worked_examples.cc.o"
  "CMakeFiles/bench_worked_examples.dir/bench_worked_examples.cc.o.d"
  "bench_worked_examples"
  "bench_worked_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worked_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
