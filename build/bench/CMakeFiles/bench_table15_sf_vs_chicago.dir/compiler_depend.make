# Empty compiler generated dependencies file for bench_table15_sf_vs_chicago.
# This may be replaced when dependencies are built.
