file(REMOVE_RECURSE
  "CMakeFiles/bench_table15_sf_vs_chicago.dir/bench_table15_sf_vs_chicago.cc.o"
  "CMakeFiles/bench_table15_sf_vs_chicago.dir/bench_table15_sf_vs_chicago.cc.o.d"
  "bench_table15_sf_vs_chicago"
  "bench_table15_sf_vs_chicago.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_sf_vs_chicago.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
