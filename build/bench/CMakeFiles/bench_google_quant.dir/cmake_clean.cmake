file(REMOVE_RECURSE
  "CMakeFiles/bench_google_quant.dir/bench_google_quant.cc.o"
  "CMakeFiles/bench_google_quant.dir/bench_google_quant.cc.o.d"
  "bench_google_quant"
  "bench_google_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_google_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
