# Empty dependencies file for bench_google_quant.
# This may be replaced when dependencies are built.
