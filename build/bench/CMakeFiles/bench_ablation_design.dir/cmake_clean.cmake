file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_design.dir/bench_ablation_design.cc.o"
  "CMakeFiles/bench_ablation_design.dir/bench_ablation_design.cc.o.d"
  "bench_ablation_design"
  "bench_ablation_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
