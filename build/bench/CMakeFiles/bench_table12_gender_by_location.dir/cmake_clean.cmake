file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_gender_by_location.dir/bench_table12_gender_by_location.cc.o"
  "CMakeFiles/bench_table12_gender_by_location.dir/bench_table12_gender_by_location.cc.o.d"
  "bench_table12_gender_by_location"
  "bench_table12_gender_by_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_gender_by_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
