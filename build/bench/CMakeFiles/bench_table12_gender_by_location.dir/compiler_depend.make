# Empty compiler generated dependencies file for bench_table12_gender_by_location.
# This may be replaced when dependencies are built.
