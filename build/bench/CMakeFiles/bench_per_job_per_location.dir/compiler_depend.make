# Empty compiler generated dependencies file for bench_per_job_per_location.
# This may be replaced when dependencies are built.
