file(REMOVE_RECURSE
  "CMakeFiles/bench_per_job_per_location.dir/bench_per_job_per_location.cc.o"
  "CMakeFiles/bench_per_job_per_location.dir/bench_per_job_per_location.cc.o.d"
  "bench_per_job_per_location"
  "bench_per_job_per_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_per_job_per_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
