# Empty dependencies file for bench_fagin_perf.
# This may be replaced when dependencies are built.
