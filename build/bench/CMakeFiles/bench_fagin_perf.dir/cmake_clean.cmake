file(REMOVE_RECURSE
  "CMakeFiles/bench_fagin_perf.dir/bench_fagin_perf.cc.o"
  "CMakeFiles/bench_fagin_perf.dir/bench_fagin_perf.cc.o.d"
  "bench_fagin_perf"
  "bench_fagin_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fagin_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
