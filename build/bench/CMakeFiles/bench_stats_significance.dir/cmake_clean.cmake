file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_significance.dir/bench_stats_significance.cc.o"
  "CMakeFiles/bench_stats_significance.dir/bench_stats_significance.cc.o.d"
  "bench_stats_significance"
  "bench_stats_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
