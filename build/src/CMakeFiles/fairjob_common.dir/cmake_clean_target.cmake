file(REMOVE_RECURSE
  "libfairjob_common.a"
)
