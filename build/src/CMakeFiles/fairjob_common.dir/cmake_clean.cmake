file(REMOVE_RECURSE
  "CMakeFiles/fairjob_common.dir/common/flags.cc.o"
  "CMakeFiles/fairjob_common.dir/common/flags.cc.o.d"
  "CMakeFiles/fairjob_common.dir/common/rng.cc.o"
  "CMakeFiles/fairjob_common.dir/common/rng.cc.o.d"
  "CMakeFiles/fairjob_common.dir/common/status.cc.o"
  "CMakeFiles/fairjob_common.dir/common/status.cc.o.d"
  "CMakeFiles/fairjob_common.dir/common/string_util.cc.o"
  "CMakeFiles/fairjob_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/fairjob_common.dir/common/virtual_clock.cc.o"
  "CMakeFiles/fairjob_common.dir/common/virtual_clock.cc.o.d"
  "libfairjob_common.a"
  "libfairjob_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairjob_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
