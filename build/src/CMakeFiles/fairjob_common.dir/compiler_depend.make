# Empty compiler generated dependencies file for fairjob_common.
# This may be replaced when dependencies are built.
