
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ranking/emd.cc" "src/CMakeFiles/fairjob_ranking.dir/ranking/emd.cc.o" "gcc" "src/CMakeFiles/fairjob_ranking.dir/ranking/emd.cc.o.d"
  "/root/repo/src/ranking/exposure.cc" "src/CMakeFiles/fairjob_ranking.dir/ranking/exposure.cc.o" "gcc" "src/CMakeFiles/fairjob_ranking.dir/ranking/exposure.cc.o.d"
  "/root/repo/src/ranking/footrule.cc" "src/CMakeFiles/fairjob_ranking.dir/ranking/footrule.cc.o" "gcc" "src/CMakeFiles/fairjob_ranking.dir/ranking/footrule.cc.o.d"
  "/root/repo/src/ranking/histogram.cc" "src/CMakeFiles/fairjob_ranking.dir/ranking/histogram.cc.o" "gcc" "src/CMakeFiles/fairjob_ranking.dir/ranking/histogram.cc.o.d"
  "/root/repo/src/ranking/jaccard.cc" "src/CMakeFiles/fairjob_ranking.dir/ranking/jaccard.cc.o" "gcc" "src/CMakeFiles/fairjob_ranking.dir/ranking/jaccard.cc.o.d"
  "/root/repo/src/ranking/kendall_tau.cc" "src/CMakeFiles/fairjob_ranking.dir/ranking/kendall_tau.cc.o" "gcc" "src/CMakeFiles/fairjob_ranking.dir/ranking/kendall_tau.cc.o.d"
  "/root/repo/src/ranking/rbo.cc" "src/CMakeFiles/fairjob_ranking.dir/ranking/rbo.cc.o" "gcc" "src/CMakeFiles/fairjob_ranking.dir/ranking/rbo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fairjob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
