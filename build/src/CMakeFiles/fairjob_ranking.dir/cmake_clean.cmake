file(REMOVE_RECURSE
  "CMakeFiles/fairjob_ranking.dir/ranking/emd.cc.o"
  "CMakeFiles/fairjob_ranking.dir/ranking/emd.cc.o.d"
  "CMakeFiles/fairjob_ranking.dir/ranking/exposure.cc.o"
  "CMakeFiles/fairjob_ranking.dir/ranking/exposure.cc.o.d"
  "CMakeFiles/fairjob_ranking.dir/ranking/footrule.cc.o"
  "CMakeFiles/fairjob_ranking.dir/ranking/footrule.cc.o.d"
  "CMakeFiles/fairjob_ranking.dir/ranking/histogram.cc.o"
  "CMakeFiles/fairjob_ranking.dir/ranking/histogram.cc.o.d"
  "CMakeFiles/fairjob_ranking.dir/ranking/jaccard.cc.o"
  "CMakeFiles/fairjob_ranking.dir/ranking/jaccard.cc.o.d"
  "CMakeFiles/fairjob_ranking.dir/ranking/kendall_tau.cc.o"
  "CMakeFiles/fairjob_ranking.dir/ranking/kendall_tau.cc.o.d"
  "CMakeFiles/fairjob_ranking.dir/ranking/rbo.cc.o"
  "CMakeFiles/fairjob_ranking.dir/ranking/rbo.cc.o.d"
  "libfairjob_ranking.a"
  "libfairjob_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairjob_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
