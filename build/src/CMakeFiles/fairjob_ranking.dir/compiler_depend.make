# Empty compiler generated dependencies file for fairjob_ranking.
# This may be replaced when dependencies are built.
