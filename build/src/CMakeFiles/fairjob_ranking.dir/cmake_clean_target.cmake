file(REMOVE_RECURSE
  "libfairjob_ranking.a"
)
