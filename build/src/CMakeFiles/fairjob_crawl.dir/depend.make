# Empty dependencies file for fairjob_crawl.
# This may be replaced when dependencies are built.
