file(REMOVE_RECURSE
  "CMakeFiles/fairjob_crawl.dir/crawl/crawler.cc.o"
  "CMakeFiles/fairjob_crawl.dir/crawl/crawler.cc.o.d"
  "CMakeFiles/fairjob_crawl.dir/crawl/csv.cc.o"
  "CMakeFiles/fairjob_crawl.dir/crawl/csv.cc.o.d"
  "CMakeFiles/fairjob_crawl.dir/crawl/cube_io.cc.o"
  "CMakeFiles/fairjob_crawl.dir/crawl/cube_io.cc.o.d"
  "CMakeFiles/fairjob_crawl.dir/crawl/dataset_assembly.cc.o"
  "CMakeFiles/fairjob_crawl.dir/crawl/dataset_assembly.cc.o.d"
  "CMakeFiles/fairjob_crawl.dir/crawl/labeling.cc.o"
  "CMakeFiles/fairjob_crawl.dir/crawl/labeling.cc.o.d"
  "CMakeFiles/fairjob_crawl.dir/crawl/profile_store.cc.o"
  "CMakeFiles/fairjob_crawl.dir/crawl/profile_store.cc.o.d"
  "libfairjob_crawl.a"
  "libfairjob_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairjob_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
