file(REMOVE_RECURSE
  "libfairjob_crawl.a"
)
