
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crawl/crawler.cc" "src/CMakeFiles/fairjob_crawl.dir/crawl/crawler.cc.o" "gcc" "src/CMakeFiles/fairjob_crawl.dir/crawl/crawler.cc.o.d"
  "/root/repo/src/crawl/csv.cc" "src/CMakeFiles/fairjob_crawl.dir/crawl/csv.cc.o" "gcc" "src/CMakeFiles/fairjob_crawl.dir/crawl/csv.cc.o.d"
  "/root/repo/src/crawl/cube_io.cc" "src/CMakeFiles/fairjob_crawl.dir/crawl/cube_io.cc.o" "gcc" "src/CMakeFiles/fairjob_crawl.dir/crawl/cube_io.cc.o.d"
  "/root/repo/src/crawl/dataset_assembly.cc" "src/CMakeFiles/fairjob_crawl.dir/crawl/dataset_assembly.cc.o" "gcc" "src/CMakeFiles/fairjob_crawl.dir/crawl/dataset_assembly.cc.o.d"
  "/root/repo/src/crawl/labeling.cc" "src/CMakeFiles/fairjob_crawl.dir/crawl/labeling.cc.o" "gcc" "src/CMakeFiles/fairjob_crawl.dir/crawl/labeling.cc.o.d"
  "/root/repo/src/crawl/profile_store.cc" "src/CMakeFiles/fairjob_crawl.dir/crawl/profile_store.cc.o" "gcc" "src/CMakeFiles/fairjob_crawl.dir/crawl/profile_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fairjob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
