file(REMOVE_RECURSE
  "libfairjob_core.a"
)
