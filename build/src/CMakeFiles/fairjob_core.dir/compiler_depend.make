# Empty compiler generated dependencies file for fairjob_core.
# This may be replaced when dependencies are built.
