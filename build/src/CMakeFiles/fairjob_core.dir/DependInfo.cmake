
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attribute_schema.cc" "src/CMakeFiles/fairjob_core.dir/core/attribute_schema.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/attribute_schema.cc.o.d"
  "/root/repo/src/core/comparison.cc" "src/CMakeFiles/fairjob_core.dir/core/comparison.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/comparison.cc.o.d"
  "/root/repo/src/core/coverage.cc" "src/CMakeFiles/fairjob_core.dir/core/coverage.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/coverage.cc.o.d"
  "/root/repo/src/core/data_model.cc" "src/CMakeFiles/fairjob_core.dir/core/data_model.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/data_model.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/fairjob_core.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/explain.cc.o.d"
  "/root/repo/src/core/fagin.cc" "src/CMakeFiles/fairjob_core.dir/core/fagin.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/fagin.cc.o.d"
  "/root/repo/src/core/fagin_family.cc" "src/CMakeFiles/fairjob_core.dir/core/fagin_family.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/fagin_family.cc.o.d"
  "/root/repo/src/core/fbox.cc" "src/CMakeFiles/fairjob_core.dir/core/fbox.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/fbox.cc.o.d"
  "/root/repo/src/core/group.cc" "src/CMakeFiles/fairjob_core.dir/core/group.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/group.cc.o.d"
  "/root/repo/src/core/group_space.cc" "src/CMakeFiles/fairjob_core.dir/core/group_space.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/group_space.cc.o.d"
  "/root/repo/src/core/indices.cc" "src/CMakeFiles/fairjob_core.dir/core/indices.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/indices.cc.o.d"
  "/root/repo/src/core/quantification.cc" "src/CMakeFiles/fairjob_core.dir/core/quantification.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/quantification.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/fairjob_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/CMakeFiles/fairjob_core.dir/core/stats.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/stats.cc.o.d"
  "/root/repo/src/core/transfer.cc" "src/CMakeFiles/fairjob_core.dir/core/transfer.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/transfer.cc.o.d"
  "/root/repo/src/core/trend.cc" "src/CMakeFiles/fairjob_core.dir/core/trend.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/trend.cc.o.d"
  "/root/repo/src/core/unfairness_cube.cc" "src/CMakeFiles/fairjob_core.dir/core/unfairness_cube.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/unfairness_cube.cc.o.d"
  "/root/repo/src/core/unfairness_measures.cc" "src/CMakeFiles/fairjob_core.dir/core/unfairness_measures.cc.o" "gcc" "src/CMakeFiles/fairjob_core.dir/core/unfairness_measures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fairjob_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
