
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/calibration.cc" "src/CMakeFiles/fairjob_market.dir/market/calibration.cc.o" "gcc" "src/CMakeFiles/fairjob_market.dir/market/calibration.cc.o.d"
  "/root/repo/src/market/marketplace.cc" "src/CMakeFiles/fairjob_market.dir/market/marketplace.cc.o" "gcc" "src/CMakeFiles/fairjob_market.dir/market/marketplace.cc.o.d"
  "/root/repo/src/market/scoring.cc" "src/CMakeFiles/fairjob_market.dir/market/scoring.cc.o" "gcc" "src/CMakeFiles/fairjob_market.dir/market/scoring.cc.o.d"
  "/root/repo/src/market/taskrabbit_sim.cc" "src/CMakeFiles/fairjob_market.dir/market/taskrabbit_sim.cc.o" "gcc" "src/CMakeFiles/fairjob_market.dir/market/taskrabbit_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fairjob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_crawl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
