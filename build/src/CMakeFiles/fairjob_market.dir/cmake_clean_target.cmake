file(REMOVE_RECURSE
  "libfairjob_market.a"
)
