# Empty dependencies file for fairjob_market.
# This may be replaced when dependencies are built.
