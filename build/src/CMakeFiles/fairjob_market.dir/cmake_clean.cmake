file(REMOVE_RECURSE
  "CMakeFiles/fairjob_market.dir/market/calibration.cc.o"
  "CMakeFiles/fairjob_market.dir/market/calibration.cc.o.d"
  "CMakeFiles/fairjob_market.dir/market/marketplace.cc.o"
  "CMakeFiles/fairjob_market.dir/market/marketplace.cc.o.d"
  "CMakeFiles/fairjob_market.dir/market/scoring.cc.o"
  "CMakeFiles/fairjob_market.dir/market/scoring.cc.o.d"
  "CMakeFiles/fairjob_market.dir/market/taskrabbit_sim.cc.o"
  "CMakeFiles/fairjob_market.dir/market/taskrabbit_sim.cc.o.d"
  "libfairjob_market.a"
  "libfairjob_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairjob_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
