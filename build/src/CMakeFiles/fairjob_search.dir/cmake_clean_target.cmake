file(REMOVE_RECURSE
  "libfairjob_search.a"
)
