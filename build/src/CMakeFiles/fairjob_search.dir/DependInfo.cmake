
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/formulations.cc" "src/CMakeFiles/fairjob_search.dir/search/formulations.cc.o" "gcc" "src/CMakeFiles/fairjob_search.dir/search/formulations.cc.o.d"
  "/root/repo/src/search/google_sim.cc" "src/CMakeFiles/fairjob_search.dir/search/google_sim.cc.o" "gcc" "src/CMakeFiles/fairjob_search.dir/search/google_sim.cc.o.d"
  "/root/repo/src/search/personalization.cc" "src/CMakeFiles/fairjob_search.dir/search/personalization.cc.o" "gcc" "src/CMakeFiles/fairjob_search.dir/search/personalization.cc.o.d"
  "/root/repo/src/search/search_engine.cc" "src/CMakeFiles/fairjob_search.dir/search/search_engine.cc.o" "gcc" "src/CMakeFiles/fairjob_search.dir/search/search_engine.cc.o.d"
  "/root/repo/src/search/study_runner.cc" "src/CMakeFiles/fairjob_search.dir/search/study_runner.cc.o" "gcc" "src/CMakeFiles/fairjob_search.dir/search/study_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fairjob_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_crawl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fairjob_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
