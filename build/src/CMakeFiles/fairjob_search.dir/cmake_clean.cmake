file(REMOVE_RECURSE
  "CMakeFiles/fairjob_search.dir/search/formulations.cc.o"
  "CMakeFiles/fairjob_search.dir/search/formulations.cc.o.d"
  "CMakeFiles/fairjob_search.dir/search/google_sim.cc.o"
  "CMakeFiles/fairjob_search.dir/search/google_sim.cc.o.d"
  "CMakeFiles/fairjob_search.dir/search/personalization.cc.o"
  "CMakeFiles/fairjob_search.dir/search/personalization.cc.o.d"
  "CMakeFiles/fairjob_search.dir/search/search_engine.cc.o"
  "CMakeFiles/fairjob_search.dir/search/search_engine.cc.o.d"
  "CMakeFiles/fairjob_search.dir/search/study_runner.cc.o"
  "CMakeFiles/fairjob_search.dir/search/study_runner.cc.o.d"
  "libfairjob_search.a"
  "libfairjob_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairjob_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
