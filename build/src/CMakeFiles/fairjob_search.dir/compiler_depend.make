# Empty compiler generated dependencies file for fairjob_search.
# This may be replaced when dependencies are built.
