// fairjob_cli — audit arbitrary marketplace crawls from the command line.
//
//   fairjob_cli audit   --crawl crawl.csv --workers workers.csv
//                       [--measure emd|exposure] [--out cube.csv]
//   fairjob_cli topk    --cube cube.csv --dim group|query|location
//                       [--k 5] [--least] [--algorithm ta|fa|nra|scan]
//   fairjob_cli explain --crawl crawl.csv --workers workers.csv
//                       --group "<display name>" --query <q> --location <l>
//                       [--measure emd|exposure]
//   fairjob_cli demo    (builds a small synthetic TaskRabbit world and runs
//                        an audit end to end)
//
// crawl.csv:   job,city,rank,worker        (1-based ranks, best first)
// workers.csv: worker,<attr>,<attr>,...    (schema inferred from the data)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <initializer_list>
#include <unordered_set>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/explain.h"
#include "core/coverage.h"
#include "core/report.h"
#include "core/trend.h"
#include "core/fbox.h"
#include "crawl/csv.h"
#include "crawl/cube_io.h"
#include "crawl/dataset_assembly.h"
#include "market/taskrabbit_sim.h"
#include "serve/quantification_service.h"

namespace fairjob {
namespace {

// Printed to stdout for `help`, to stderr (exit 2) for bad input.
int Usage(FILE* out, int code) {
  std::fprintf(
      out,
      "usage: fairjob_cli "
      "<audit|audit-search|topk|serve-bench|explain|trend|demo|help> [flags]\n"
      "  audit   --crawl <csv> --workers <csv> [--measure emd|exposure]\n"
      "          [--out cube.csv] [--report audit.md] [--k 5]\n"
      "          [--max-conjunction N]\n"
      "  topk    --cube <csv> --dim group|query|location [--k 5] [--least]\n"
      "          [--algorithm ta|fa|nra|scan]\n"
      "  serve-bench  [--cube <csv>] [--requests 2000] [--keyspace 24]\n"
      "          [--algorithm mix|ta|fa|nra|scan] [--batch 0]\n"
      "          [--cache-capacity 4096] [--cache-shards 8]\n"
      "          [--workers 400] [--cities 6] [--seed 7]\n"
      "  audit-search --runs <csv> --users <csv>\n"
      "          [--measure kendall|jaccard|footrule|rbo] [--report out.md]\n"
      "  trend   --cube <epoch0.csv> --cube2 <epoch1.csv> [--dim group]\n"
      "          [--k 5]\n"
      "  explain --crawl <csv> --workers <csv> --group <name>\n"
      "          --query <q> --location <l> [--measure emd|exposure]\n"
      "  demo\n"
      "observability (any command):\n"
      "  --metrics_json <path>  write counters/gauges/histograms as JSON\n"
      "  --trace_json <path>    write a Chrome trace_event timeline\n");
  return code;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Rejects flags the command does not understand (a typo'd flag silently
// falling back to its default is the worst failure mode a CLI can have).
// The observability flags are accepted everywhere.
Status RejectUnknownFlags(const Flags& flags,
                          std::initializer_list<const char*> allowed) {
  std::unordered_set<std::string> known = {"metrics_json", "trace_json"};
  for (const char* name : allowed) known.insert(name);
  for (const std::string& name : flags.Names()) {
    if (known.count(name) == 0) {
      return Status::InvalidArgument("unknown flag '--" + name + "'");
    }
  }
  return Status::OK();
}

Result<MarketMeasure> MeasureFromFlag(const Flags& flags) {
  std::string name = flags.GetString("measure", "emd");
  if (name == "emd") return MarketMeasure::kEmd;
  if (name == "exposure") return MarketMeasure::kExposure;
  return Status::InvalidArgument("unknown --measure '" + name + "'");
}

struct LoadedAudit {
  MarketplaceAssembly assembly;
  GroupSpace space;
};

Result<LoadedAudit> LoadAudit(const Flags& flags) {
  std::string crawl_path = flags.GetString("crawl");
  std::string workers_path = flags.GetString("workers");
  if (crawl_path.empty() || workers_path.empty()) {
    return Status::InvalidArgument("--crawl and --workers are required");
  }
  FAIRJOB_ASSIGN_OR_RETURN(auto crawl_rows, ReadCsvFile(crawl_path));
  FAIRJOB_ASSIGN_OR_RETURN(auto records, CrawlRecordsFromCsvRows(crawl_rows));
  FAIRJOB_ASSIGN_OR_RETURN(auto worker_rows, ReadCsvFile(workers_path));
  FAIRJOB_ASSIGN_OR_RETURN(WorkerTable table,
                           WorkerTableFromCsvRows(worker_rows));
  FAIRJOB_ASSIGN_OR_RETURN(
      MarketplaceAssembly assembly,
      AssembleMarketplace(table.schema, records, table.demographics));
  FAIRJOB_ASSIGN_OR_RETURN(long max_conjunction,
                           flags.GetInt("max-conjunction", 0));
  FAIRJOB_ASSIGN_OR_RETURN(
      GroupSpace space,
      max_conjunction > 0
          ? GroupSpace::EnumerateUpTo(assembly.dataset.schema(),
                                      static_cast<size_t>(max_conjunction))
          : GroupSpace::Enumerate(assembly.dataset.schema()));
  return LoadedAudit{std::move(assembly), std::move(space)};
}

void PrintTopK(const FBox& fbox, Dimension dim, size_t k,
               RankDirection direction) {
  Result<std::vector<FBox::NamedAnswer>> top = fbox.TopK(dim, k, direction);
  if (!top.ok()) {
    std::fprintf(stderr, "error: %s\n", top.status().ToString().c_str());
    return;
  }
  std::printf("%ss (%s first):\n", DimensionName(dim),
              direction == RankDirection::kMostUnfair ? "most unfair"
                                                      : "fairest");
  for (const auto& answer : *top) {
    std::printf("  %-30s %.4f\n", answer.name.c_str(), answer.value);
  }
}

int RunAudit(const Flags& flags) {
  Result<LoadedAudit> loaded = LoadAudit(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  Result<MarketMeasure> measure = MeasureFromFlag(flags);
  if (!measure.ok()) return Fail(measure.status());

  Result<FBox> fbox = FBox::ForMarketplace(&loaded->assembly.dataset,
                                           &loaded->space, *measure);
  if (!fbox.ok()) return Fail(fbox.status());

  std::printf("audit: %zu workers, %zu queries, %zu locations, "
              "%zu groups; cube %zu/%zu cells defined "
              "(%zu crawl records dropped: unlabeled workers)\n",
              loaded->assembly.dataset.num_workers(),
              loaded->assembly.dataset.queries().size(),
              loaded->assembly.dataset.locations().size(),
              loaded->space.num_groups(), fbox->cube().num_present(),
              fbox->cube().num_cells(), loaded->assembly.dropped_records);

  Result<CoverageReport> coverage =
      AnalyzeMarketplaceCoverage(loaded->assembly.dataset, loaded->space);
  if (coverage.ok()) {
    const AttributeSchema& schema = loaded->assembly.dataset.schema();
    for (GroupId g : coverage->low_support) {
      std::printf("warning: group '%s' averages %.1f members per result "
                  "list — its unfairness values are noise-dominated\n",
                  loaded->space.label(g).DisplayName(schema).c_str(),
                  coverage->groups[static_cast<size_t>(g)].mean_members);
    }
    for (GroupId g : coverage->absent) {
      std::printf("warning: group '%s' never appears in any result list\n",
                  loaded->space.label(g).DisplayName(schema).c_str());
    }
  }

  Result<long> k = flags.GetInt("k", 5);
  if (!k.ok()) return Fail(k.status());
  for (Dimension dim :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    PrintTopK(*fbox, dim, static_cast<size_t>(*k),
              RankDirection::kMostUnfair);
  }

  std::string report_path = flags.GetString("report");
  if (!report_path.empty()) {
    AuditReportOptions report_options;
    report_options.title = "Fairness audit (" +
                           std::string(MarketMeasureName(*measure)) + ")";
    if (coverage.ok()) report_options.coverage = &*coverage;
    Result<std::string> report = GenerateAuditReport(*fbox, report_options);
    if (!report.ok()) return Fail(report.status());
    FILE* f = std::fopen(report_path.c_str(), "wb");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot write '" + report_path + "'"));
    }
    std::fwrite(report->data(), 1, report->size(), f);
    std::fclose(f);
    std::printf("report written to %s\n", report_path.c_str());
  }

  std::string out = flags.GetString("out");
  if (!out.empty()) {
    struct NamerContext {
      const FBox* fbox;
    } context{&*fbox};
    AxisNamer namer = [](Dimension d, int32_t id, const void* raw) {
      return static_cast<const NamerContext*>(raw)->fbox->NameOf(d, id);
    };
    Status saved = SaveCube(out, fbox->cube(), namer, &context);
    if (!saved.ok()) return Fail(saved);
    std::printf("cube written to %s\n", out.c_str());
  }
  return 0;
}

int RunTopKCommand(const Flags& flags) {
  std::string cube_path = flags.GetString("cube");
  if (cube_path.empty()) return Fail(Status::InvalidArgument("--cube required"));
  Result<UnfairnessCube> cube = LoadCube(cube_path);
  if (!cube.ok()) return Fail(cube.status());
  Result<std::vector<std::vector<std::string>>> rows = ReadCsvFile(cube_path);
  if (!rows.ok()) return Fail(rows.status());
  Result<CubeNames> names = CubeNamesFromCsvRows(*rows);
  if (!names.ok()) return Fail(names.status());

  std::string dim_name = flags.GetString("dim", "group");
  Dimension dim;
  if (dim_name == "group") {
    dim = Dimension::kGroup;
  } else if (dim_name == "query") {
    dim = Dimension::kQuery;
  } else if (dim_name == "location") {
    dim = Dimension::kLocation;
  } else {
    return Fail(Status::InvalidArgument("unknown --dim '" + dim_name + "'"));
  }

  std::string algo_name = flags.GetString("algorithm", "ta");
  TopKAlgorithm algorithm;
  if (algo_name == "ta") {
    algorithm = TopKAlgorithm::kThresholdAlgorithm;
  } else if (algo_name == "fa") {
    algorithm = TopKAlgorithm::kFA;
  } else if (algo_name == "nra") {
    algorithm = TopKAlgorithm::kNRA;
  } else if (algo_name == "scan") {
    algorithm = TopKAlgorithm::kScan;
  } else {
    return Fail(
        Status::InvalidArgument("unknown --algorithm '" + algo_name + "'"));
  }

  Result<long> k = flags.GetInt("k", 5);
  if (!k.ok()) return Fail(k.status());

  IndexSet indices = IndexSet::Build(*cube);
  QuantificationRequest request;
  request.target = dim;
  request.k = static_cast<size_t>(*k);
  request.direction = flags.Has("least") ? RankDirection::kLeastUnfair
                                         : RankDirection::kMostUnfair;
  request.algorithm = algorithm;
  // NRA only supports kZero; keep the CLI ergonomic.
  if (algorithm == TopKAlgorithm::kNRA) {
    request.missing = MissingCellPolicy::kZero;
  }
  Result<QuantificationResult> result =
      SolveQuantification(*cube, indices, request);
  if (!result.ok()) return Fail(result.status());

  const std::vector<std::string>& axis_names =
      dim == Dimension::kGroup
          ? names->groups
          : (dim == Dimension::kQuery ? names->queries : names->locations);
  for (const QuantificationAnswer& answer : result->answers) {
    Result<size_t> pos = cube->PosOf(dim, answer.id);
    std::string name = pos.ok() && *pos < axis_names.size() &&
                               !axis_names[*pos].empty()
                           ? axis_names[*pos]
                           : ("#" + std::to_string(answer.id));
    std::printf("  %-30s %.4f\n", name.c_str(), answer.value);
  }
  std::printf("[%s: %zu sorted / %zu random accesses, %zu ids scored]\n",
              TopKAlgorithmName(algorithm), result->stats.sorted_accesses,
              result->stats.random_accesses, result->stats.ids_scored);
  return 0;
}

int RunExplain(const Flags& flags) {
  Result<LoadedAudit> loaded = LoadAudit(flags);
  if (!loaded.ok()) return Fail(loaded.status());
  Result<MarketMeasure> measure = MeasureFromFlag(flags);
  if (!measure.ok()) return Fail(measure.status());

  std::string group_name = flags.GetString("group");
  std::string query_name = flags.GetString("query");
  std::string location_name = flags.GetString("location");
  if (group_name.empty() || query_name.empty() || location_name.empty()) {
    return Fail(Status::InvalidArgument(
        "--group, --query and --location are required"));
  }
  Result<GroupId> group = loaded->space.FindByDisplayName(group_name);
  if (!group.ok()) return Fail(group.status());
  Result<QueryId> query = loaded->assembly.dataset.queries().Find(query_name);
  if (!query.ok()) return Fail(query.status());
  Result<LocationId> location =
      loaded->assembly.dataset.locations().Find(location_name);
  if (!location.ok()) return Fail(location.status());

  Result<MarketTripleExplanation> explanation = ExplainMarketplaceTriple(
      loaded->assembly.dataset, loaded->space, *group, *query, *location,
      *measure);
  if (!explanation.ok()) return Fail(explanation.status());

  const AttributeSchema& schema = loaded->assembly.dataset.schema();
  std::printf("d<%s, %s, %s> = %.4f (%s)\n", group_name.c_str(),
              query_name.c_str(), location_name.c_str(), explanation->value,
              MarketMeasureName(*measure));
  std::printf("  %zu member(s) of %zu results, mean rank fraction %.2f\n",
              explanation->group_members, explanation->result_size,
              explanation->group_mean_rank_fraction);
  for (const ComparableContribution& c : explanation->comparables) {
    std::printf("  vs %-24s distance %.4f  (%zu member(s), mean rank "
                "fraction %.2f)\n",
                loaded->space.label(c.comparable).DisplayName(schema).c_str(),
                c.distance, c.members, c.mean_rank_fraction);
  }
  return 0;
}

Result<SearchMeasure> SearchMeasureFromFlag(const Flags& flags) {
  std::string name = flags.GetString("measure", "kendall");
  if (name == "kendall") return SearchMeasure::kKendallTau;
  if (name == "jaccard") return SearchMeasure::kJaccard;
  if (name == "footrule") return SearchMeasure::kFootrule;
  if (name == "rbo") return SearchMeasure::kRbo;
  return Status::InvalidArgument("unknown --measure '" + name + "'");
}

int RunAuditSearch(const Flags& flags) {
  std::string runs_path = flags.GetString("runs");
  std::string users_path = flags.GetString("users");
  if (runs_path.empty() || users_path.empty()) {
    return Fail(Status::InvalidArgument("--runs and --users are required"));
  }
  Result<SearchMeasure> measure = SearchMeasureFromFlag(flags);
  if (!measure.ok()) return Fail(measure.status());

  Result<std::vector<std::vector<std::string>>> run_rows =
      ReadCsvFile(runs_path);
  if (!run_rows.ok()) return Fail(run_rows.status());
  Result<std::vector<SearchRunRecord>> runs =
      SearchRunRecordsFromCsvRows(*run_rows);
  if (!runs.ok()) return Fail(runs.status());
  Result<std::vector<std::vector<std::string>>> user_rows =
      ReadCsvFile(users_path);
  if (!user_rows.ok()) return Fail(user_rows.status());
  Result<WorkerTable> users = WorkerTableFromCsvRows(*user_rows);
  if (!users.ok()) return Fail(users.status());

  Result<SearchAssembly> assembly =
      AssembleSearch(users->schema, *runs, users->demographics);
  if (!assembly.ok()) return Fail(assembly.status());
  Result<GroupSpace> space =
      GroupSpace::Enumerate(assembly->dataset.schema());
  if (!space.ok()) return Fail(space.status());
  Result<FBox> fbox = FBox::ForSearch(&assembly->dataset, &*space, *measure);
  if (!fbox.ok()) return Fail(fbox.status());

  std::printf("search audit (%s): %zu users, %zu queries, %zu locations; "
              "cube %zu/%zu cells defined (%zu runs dropped)\n",
              SearchMeasureName(*measure), assembly->dataset.num_users(),
              assembly->dataset.queries().size(),
              assembly->dataset.locations().size(),
              fbox->cube().num_present(), fbox->cube().num_cells(),
              assembly->dropped_runs);

  Result<long> k = flags.GetInt("k", 5);
  if (!k.ok()) return Fail(k.status());
  for (Dimension dim :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    PrintTopK(*fbox, dim, static_cast<size_t>(*k),
              RankDirection::kMostUnfair);
  }

  std::string report_path = flags.GetString("report");
  if (!report_path.empty()) {
    AuditReportOptions options;
    options.title = "Search fairness audit (" +
                    std::string(SearchMeasureName(*measure)) + ")";
    Result<std::string> report = GenerateAuditReport(*fbox, options);
    if (!report.ok()) return Fail(report.status());
    FILE* f = std::fopen(report_path.c_str(), "wb");
    if (f == nullptr) {
      return Fail(Status::IOError("cannot write '" + report_path + "'"));
    }
    std::fwrite(report->data(), 1, report->size(), f);
    std::fclose(f);
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}

int RunTrend(const Flags& flags) {
  std::string cube_path = flags.GetString("cube");
  std::string cube2_path = flags.GetString("cube2");
  if (cube_path.empty() || cube2_path.empty()) {
    return Fail(Status::InvalidArgument("--cube and --cube2 are required"));
  }
  Result<UnfairnessCube> epoch0 = LoadCube(cube_path);
  if (!epoch0.ok()) return Fail(epoch0.status());
  Result<UnfairnessCube> epoch1 = LoadCube(cube2_path);
  if (!epoch1.ok()) return Fail(epoch1.status());
  Result<std::vector<std::vector<std::string>>> rows = ReadCsvFile(cube_path);
  if (!rows.ok()) return Fail(rows.status());
  Result<CubeNames> names = CubeNamesFromCsvRows(*rows);
  if (!names.ok()) return Fail(names.status());

  std::string dim_name = flags.GetString("dim", "group");
  Dimension dim;
  const std::vector<std::string>* axis_names;
  if (dim_name == "group") {
    dim = Dimension::kGroup;
    axis_names = &names->groups;
  } else if (dim_name == "query") {
    dim = Dimension::kQuery;
    axis_names = &names->queries;
  } else if (dim_name == "location") {
    dim = Dimension::kLocation;
    axis_names = &names->locations;
  } else {
    return Fail(Status::InvalidArgument("unknown --dim '" + dim_name + "'"));
  }
  Result<long> k = flags.GetInt("k", 5);
  if (!k.ok()) return Fail(k.status());

  TrendTracker tracker(dim);
  Status recorded = tracker.RecordEpoch(*epoch0);
  if (recorded.ok()) recorded = tracker.RecordEpoch(*epoch1);
  if (!recorded.ok()) return Fail(recorded);

  auto name_of = [&](size_t pos) -> std::string {
    if (pos < axis_names->size() && !(*axis_names)[pos].empty()) {
      return (*axis_names)[pos];
    }
    return "#" + std::to_string(epoch0->axis_id(dim, pos));
  };

  Result<std::vector<TrendTracker::Drift>> drifts =
      tracker.TopDrifts(static_cast<size_t>(*k));
  if (!drifts.ok()) return Fail(drifts.status());
  std::printf("largest %s drifts between the two cubes:\n", dim_name.c_str());
  for (const TrendTracker::Drift& drift : *drifts) {
    std::printf("  %-30s %.4f -> %.4f (%+.4f)\n", name_of(drift.pos).c_str(),
                drift.from, drift.to, drift.delta());
  }
  Result<std::vector<std::pair<size_t, size_t>>> crossings =
      tracker.RankCrossings();
  if (!crossings.ok()) return Fail(crossings.status());
  if (crossings->empty()) {
    std::printf("no rank crossings.\n");
  } else {
    std::printf("rank crossings:\n");
    for (const auto& [a, b] : *crossings) {
      std::printf("  %s moved above %s\n", name_of(a).c_str(),
                  name_of(b).c_str());
    }
  }
  return 0;
}

int RunDemo() {
  TaskRabbitConfig config;
  config.num_workers = 400;
  config.max_cities = 6;
  config.max_subjobs_per_category = 2;
  config.target_query_count = 1 << 20;
  Result<TaskRabbitDataset> data = BuildTaskRabbitDataset(config);
  if (!data.ok()) return Fail(data.status());
  Result<GroupSpace> space = GroupSpace::Enumerate(data->dataset.schema());
  if (!space.ok()) return Fail(space.status());
  Result<FBox> fbox =
      FBox::ForMarketplace(&data->dataset, &*space, MarketMeasure::kEmd);
  if (!fbox.ok()) return Fail(fbox.status());
  std::printf("demo world: %zu workers, %zu queries x %zu cities\n",
              data->dataset.num_workers(), data->dataset.queries().size(),
              data->dataset.locations().size());
  PrintTopK(*fbox, Dimension::kGroup, 5, RankDirection::kMostUnfair);
  PrintTopK(*fbox, Dimension::kLocation, 3, RankDirection::kLeastUnfair);
  return 0;
}

Result<TopKAlgorithm> AlgorithmFromName(const std::string& name) {
  if (name == "ta") return TopKAlgorithm::kThresholdAlgorithm;
  if (name == "fa") return TopKAlgorithm::kFA;
  if (name == "nra") return TopKAlgorithm::kNRA;
  if (name == "scan") return TopKAlgorithm::kScan;
  return Status::InvalidArgument("unknown --algorithm '" + name + "'");
}

// serve-bench: throughput of the query-serving layer (docs/serving.md) over
// a skewed request mix — cold (cache off), hot (cache on, warmed) and
// batched (AnswerBatch) — against either a cube loaded from --cube or a
// synthetic TaskRabbit world.
int RunServeBench(const Flags& flags) {
  long requests = 0, keyspace = 0, batch = 0, capacity = 0, shards = 0,
       workers = 0, cities = 0, seed = 0;
  const struct {
    const char* name;
    long fallback;
    long* out;
  } int_flags[] = {
      {"requests", 2000, &requests},     {"keyspace", 24, &keyspace},
      {"batch", 0, &batch},              {"cache-capacity", 4096, &capacity},
      {"cache-shards", 8, &shards},      {"workers", 400, &workers},
      {"cities", 6, &cities},            {"seed", 7, &seed},
  };
  for (const auto& flag : int_flags) {
    Result<long> value = flags.GetInt(flag.name, flag.fallback);
    if (!value.ok()) return Fail(value.status());
    *flag.out = *value;
  }
  if (requests <= 0 || keyspace <= 0 || batch < 0 || capacity < 0 ||
      shards <= 0 || workers <= 0 || cities <= 0) {
    return Fail(Status::InvalidArgument(
        "--requests/--keyspace/--workers/--cities/--cache-shards must be "
        "positive; --batch/--cache-capacity non-negative"));
  }
  std::string algorithm_name = flags.GetString("algorithm", "mix");
  std::vector<TopKAlgorithm> algorithms;
  if (algorithm_name == "mix") {
    algorithms = {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
                  TopKAlgorithm::kNRA, TopKAlgorithm::kScan};
  } else {
    Result<TopKAlgorithm> algorithm = AlgorithmFromName(algorithm_name);
    if (!algorithm.ok()) return Fail(algorithm.status());
    algorithms = {*algorithm};
  }

  // Backend: loaded cube or synthetic demo world.
  std::unique_ptr<UnfairnessCube> cube;
  std::unique_ptr<TaskRabbitDataset> world;  // keeps the dataset alive
  std::string cube_path = flags.GetString("cube");
  if (!cube_path.empty()) {
    Result<UnfairnessCube> loaded = LoadCube(cube_path);
    if (!loaded.ok()) return Fail(loaded.status());
    cube = std::make_unique<UnfairnessCube>(*std::move(loaded));
  } else {
    TaskRabbitConfig config;
    config.num_workers = static_cast<size_t>(workers);
    config.max_cities = static_cast<size_t>(cities);
    config.max_subjobs_per_category = 2;
    Result<TaskRabbitDataset> data = BuildTaskRabbitDataset(config);
    if (!data.ok()) return Fail(data.status());
    world = std::make_unique<TaskRabbitDataset>(*std::move(data));
    Result<GroupSpace> space = GroupSpace::Enumerate(world->dataset.schema());
    if (!space.ok()) return Fail(space.status());
    Result<UnfairnessCube> built = BuildMarketplaceCube(
        world->dataset, *space, MarketMeasure::kEmd, MeasureOptions{},
        CubeAxes{}, std::thread::hardware_concurrency());
    if (!built.ok()) return Fail(built.status());
    cube = std::make_unique<UnfairnessCube>(*std::move(built));
  }
  IndexSet indices = IndexSet::Build(*cube);

  // Distinct request keyspace: target × direction × k × algorithm, trimmed
  // to --keyspace; the trace samples it with an 80/20-style skew.
  std::vector<QuantificationRequest> request_space;
  for (Dimension target :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    size_t aggregated_lists = cube->num_cells() / cube->axis_size(target);
    for (RankDirection direction :
         {RankDirection::kMostUnfair, RankDirection::kLeastUnfair}) {
      for (size_t k : {3u, 5u, 10u}) {
        for (TopKAlgorithm algorithm : algorithms) {
          // NRA's bounds only work top-down with zeroed missing cells, over
          // at most 64 aggregated lists.
          if (algorithm == TopKAlgorithm::kNRA &&
              (direction == RankDirection::kLeastUnfair ||
               aggregated_lists > 64)) {
            continue;
          }
          QuantificationRequest request;
          request.target = target;
          request.k = k;
          request.direction = direction;
          request.algorithm = algorithm;
          // kZero keeps NRA eligible, so "mix" compares all four members.
          request.missing = MissingCellPolicy::kZero;
          request_space.push_back(request);
        }
      }
    }
  }
  if (request_space.size() > static_cast<size_t>(keyspace)) {
    request_space.resize(static_cast<size_t>(keyspace));
  }
  Rng rng(static_cast<uint64_t>(seed));
  std::vector<QuantificationRequest> trace;
  trace.reserve(static_cast<size_t>(requests));
  for (long i = 0; i < requests; ++i) {
    double u = rng.NextDouble();
    trace.push_back(
        request_space[static_cast<size_t>(u * u * request_space.size())]);
  }

  auto run_pass = [&](QuantificationService& service,
                      const char* name) -> Result<double> {
    auto start = std::chrono::steady_clock::now();
    if (batch > 0) {
      for (size_t i = 0; i < trace.size(); i += static_cast<size_t>(batch)) {
        size_t end = std::min(trace.size(), i + static_cast<size_t>(batch));
        std::vector<QuantificationRequest> chunk(trace.begin() + i,
                                                 trace.begin() + end);
        for (const auto& result : service.AnswerBatch(chunk)) {
          if (!result.ok()) return result.status();
        }
      }
    } else {
      for (const QuantificationRequest& request : trace) {
        Result<QuantificationResult> result = service.Answer(request);
        if (!result.ok()) return result.status();
      }
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    double qps = ms > 0 ? 1000.0 * static_cast<double>(trace.size()) / ms : 0;
    QuantificationService::Stats stats = service.stats();
    std::printf("  %-14s %8.2f ms  %10.0f req/s  (computed %llu of %llu)\n",
                name, ms, qps,
                static_cast<unsigned long long>(stats.computations),
                static_cast<unsigned long long>(stats.requests));
    return qps;
  };

  std::printf("serve-bench: %zu distinct requests, trace of %ld, cube %zu "
              "cells, cache capacity %ld (%ld shards)%s\n",
              request_space.size(), requests, cube->num_cells(), capacity,
              shards,
              batch > 0 ? ", batched" : "");

  QuantificationService::Options cold_options;
  cold_options.cache_capacity = 0;
  QuantificationService cold(cube.get(), &indices, cold_options);
  Result<double> cold_qps = run_pass(cold, "cold (no cache)");
  if (!cold_qps.ok()) return Fail(cold_qps.status());

  QuantificationService::Options hot_options;
  hot_options.cache_capacity = static_cast<size_t>(capacity);
  hot_options.cache_shards = static_cast<size_t>(shards);
  QuantificationService hot(cube.get(), &indices, hot_options);
  for (const QuantificationRequest& request : request_space) {
    Result<QuantificationResult> warmed = hot.Answer(request);  // warm
    if (!warmed.ok()) return Fail(warmed.status());
  }
  Result<double> hot_qps = run_pass(hot, "hot (cached)");
  if (!hot_qps.ok()) return Fail(hot_qps.status());

  auto cache = hot.cache_stats();
  std::printf("  cache: %llu hits / %llu lookups, %llu evictions\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.lookups),
              static_cast<unsigned long long>(cache.evictions));
  if (*cold_qps > 0) {
    std::printf("  hot/cold speedup: %.1fx\n", *hot_qps / *cold_qps);
  }
  return 0;
}

int WriteFileOr(const std::string& path, const std::string& body,
                const char* what) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Fail(Status::IOError("cannot write '" + path + "'"));
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("%s written to %s\n", what, path.c_str());
  return 0;
}

int Dispatch(const std::string& command, const Flags& flags) {
  // Each command declares the flags it understands; anything else is a typo
  // and fails loudly (exit 1) rather than silently using defaults.
  struct CommandSpec {
    const char* name;
    int (*run)(const Flags&);
    std::initializer_list<const char*> allowed;
  };
  static const CommandSpec kCommands[] = {
      {"audit", RunAudit,
       {"crawl", "workers", "measure", "out", "report", "k",
        "max-conjunction"}},
      {"audit-search", RunAuditSearch,
       {"runs", "users", "measure", "report", "k"}},
      {"trend", RunTrend, {"cube", "cube2", "dim", "k"}},
      {"topk", RunTopKCommand, {"cube", "dim", "k", "least", "algorithm"}},
      {"serve-bench", RunServeBench,
       {"cube", "requests", "keyspace", "algorithm", "batch", "cache-capacity",
        "cache-shards", "workers", "cities", "seed"}},
      {"explain", RunExplain,
       {"crawl", "workers", "group", "query", "location", "measure"}},
  };
  for (const CommandSpec& spec : kCommands) {
    if (command == spec.name) {
      Status flags_ok = RejectUnknownFlags(flags, spec.allowed);
      if (!flags_ok.ok()) {
        int code = Fail(flags_ok);
        Usage(stderr, code);
        return code;
      }
      return spec.run(flags);
    }
  }
  if (command == "demo") {
    Status flags_ok = RejectUnknownFlags(flags, {});
    if (!flags_ok.ok()) {
      int code = Fail(flags_ok);
      Usage(stderr, code);
      return code;
    }
    return RunDemo();
  }
  if (command == "help" || command == "--help" || command == "-h") {
    return Usage(stdout, 0);
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  return Usage(stderr, 2);
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "error: no command given\n");
    return Usage(stderr, 2);
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  Result<Flags> flags = Flags::Parse(args);
  if (!flags.ok()) return Fail(flags.status());

  // Observability hooks: enable collection before the command runs, export
  // after it finishes (whatever its exit code, so failed runs still leave a
  // timeline behind).
  std::string metrics_path = flags->GetString("metrics_json");
  std::string trace_path = flags->GetString("trace_json");
  if (!metrics_path.empty()) MetricsRegistry::Global().SetEnabled(true);
  if (!trace_path.empty()) Tracer::Global().SetEnabled(true);

  int code = Dispatch(argv[1], *flags);

  if (!metrics_path.empty()) {
    int wrote = WriteFileOr(metrics_path, MetricsRegistry::Global().ToJson(),
                            "metrics");
    if (code == 0) code = wrote;
  }
  if (!trace_path.empty()) {
    int wrote = WriteFileOr(trace_path, Tracer::Global().ToJson(), "trace");
    if (code == 0) code = wrote;
  }
  return code;
}

}  // namespace
}  // namespace fairjob

int main(int argc, char** argv) { return fairjob::Main(argc, argv); }
