// fairjob_gen — generate synthetic platform exports for experimenting with
// fairjob_cli (and for teaching: the data carries the calibrated biases of
// the paper reproduction, so audits of it find real structure).
//
//   fairjob_gen market --out <dir> [--workers 600] [--cities 6]
//                      [--subjobs 3] [--seed 20190601] [--epoch 0]
//       writes <dir>/crawl.csv + <dir>/workers.csv
//   fairjob_gen search --out <dir> [--users-per-cell 3] [--seed 20190715]
//       writes <dir>/runs.csv + <dir>/users.csv
//
// Typical loop:
//   fairjob_gen market --out /tmp/demo
//   fairjob_cli audit --crawl /tmp/demo/crawl.csv ...
//       ... --workers /tmp/demo/workers.csv --report audit.md

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "crawl/csv.h"
#include "crawl/dataset_assembly.h"
#include "market/taskrabbit_sim.h"
#include "search/google_sim.h"

namespace fairjob {
namespace {

int Usage() {
  std::printf(
      "usage: fairjob_gen <market|search> --out <dir> [flags]\n"
      "  market: [--workers N] [--cities N] [--subjobs N] [--seed S]\n"
      "          [--epoch E]   -> crawl.csv + workers.csv\n"
      "  search: [--users-per-cell N] [--seed S] -> runs.csv + users.csv\n");
  return 0;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int GenerateMarket(const Flags& flags, const std::string& out_dir) {
  TaskRabbitConfig config;
  Result<long> workers = flags.GetInt("workers", 600);
  Result<long> cities = flags.GetInt("cities", 6);
  Result<long> subjobs = flags.GetInt("subjobs", 3);
  Result<long> seed = flags.GetInt("seed", 20190601);
  Result<long> epoch = flags.GetInt("epoch", 0);
  for (const auto* value : {&workers, &cities, &subjobs, &seed, &epoch}) {
    if (!value->ok()) return Fail(value->status());
  }
  config.num_workers = static_cast<size_t>(*workers);
  config.max_cities = static_cast<size_t>(*cities);
  config.max_subjobs_per_category = static_cast<size_t>(*subjobs);
  config.seed = static_cast<uint64_t>(*seed);
  config.target_query_count = 1 << 20;

  // Build through the site so --epoch can shift the rankings.
  Result<std::unique_ptr<SimulatedMarketplace>> site =
      BuildTaskRabbitSite(config);
  if (!site.ok()) return Fail(site.status());
  (*site)->SetEpoch(static_cast<uint32_t>(*epoch));

  MarketplaceDataset data((*site)->schema());
  std::vector<WorkerId> ids((*site)->num_workers());
  for (size_t i = 0; i < (*site)->num_workers(); ++i) {
    Result<WorkerId> id = data.AddWorker((*site)->worker(i).name,
                                         (*site)->worker(i).demographics);
    if (!id.ok()) return Fail(id.status());
    ids[i] = *id;
  }
  for (const std::string& city : (*site)->Cities()) {
    for (const std::string& job : (*site)->JobsIn(city)) {
      Result<std::vector<size_t>> ranking = (*site)->RankFor(job, city);
      if (!ranking.ok()) return Fail(ranking.status());
      MarketRanking market_ranking;
      size_t n = std::min<size_t>(ranking->size(), 50);
      for (size_t i = 0; i < n; ++i) {
        market_ranking.workers.push_back(ids[(*ranking)[i]]);
      }
      QueryId q = data.queries().GetOrAdd(job);
      LocationId l = data.locations().GetOrAdd(city);
      Status set = data.SetRanking(q, l, std::move(market_ranking));
      if (!set.ok()) return Fail(set);
    }
  }

  std::string crawl_path = out_dir + "/crawl.csv";
  std::string workers_path = out_dir + "/workers.csv";
  Status wrote = WriteCsvFile(crawl_path,
                              CrawlRecordsToCsvRows(DatasetToCrawlRecords(data)));
  if (!wrote.ok()) return Fail(wrote);
  wrote = WriteCsvFile(workers_path, WorkerTableToCsvRows(data));
  if (!wrote.ok()) return Fail(wrote);
  std::printf("wrote %s (%zu rankings) and %s (%zu workers), epoch %ld\n",
              crawl_path.c_str(), data.num_rankings(), workers_path.c_str(),
              data.num_workers(), *epoch);
  return 0;
}

int GenerateSearch(const Flags& flags, const std::string& out_dir) {
  GoogleStudyConfig config;
  Result<long> users = flags.GetInt("users-per-cell", 3);
  Result<long> seed = flags.GetInt("seed", 20190715);
  if (!users.ok()) return Fail(users.status());
  if (!seed.ok()) return Fail(seed.status());
  config.users_per_cell = static_cast<size_t>(*users);
  config.seed = static_cast<uint64_t>(*seed);

  Result<GoogleWorld> world = BuildGoogleStudy(config);
  if (!world.ok()) return Fail(world.status());
  Result<std::vector<SearchRunRecord>> runs =
      DatasetToSearchRunRecords(world->dataset, world->documents);
  if (!runs.ok()) return Fail(runs.status());
  Result<std::vector<std::vector<std::string>>> run_rows =
      SearchRunRecordsToCsvRows(*runs);
  if (!run_rows.ok()) return Fail(run_rows.status());

  // users.csv via the worker-table format with a "user" header.
  const AttributeSchema& schema = world->dataset.schema();
  std::vector<std::vector<std::string>> user_rows;
  std::vector<std::string> header = {"user"};
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    header.push_back(schema.attribute_name(static_cast<AttributeId>(a)));
  }
  user_rows.push_back(std::move(header));
  for (size_t u = 0; u < world->dataset.num_users(); ++u) {
    std::vector<std::string> row = {
        world->dataset.users().NameOf(static_cast<UserId>(u))};
    const Demographics& d =
        world->dataset.user_demographics(static_cast<UserId>(u));
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      row.push_back(schema.value_name(static_cast<AttributeId>(a), d[a]));
    }
    user_rows.push_back(std::move(row));
  }

  std::string runs_path = out_dir + "/runs.csv";
  std::string users_path = out_dir + "/users.csv";
  Status wrote = WriteCsvFile(runs_path, *run_rows);
  if (!wrote.ok()) return Fail(wrote);
  wrote = WriteCsvFile(users_path, user_rows);
  if (!wrote.ok()) return Fail(wrote);
  std::printf("wrote %s (%zu runs) and %s (%zu users)\n", runs_path.c_str(),
              runs->size(), users_path.c_str(), world->dataset.num_users());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Result<Flags> flags = Flags::Parse({argv + 2, argv + argc});
  if (!flags.ok()) return Fail(flags.status());
  std::string out_dir = flags->GetString("out");
  if (out_dir.empty()) {
    return Fail(Status::InvalidArgument("--out <dir> is required"));
  }
  std::string command = argv[1];
  if (command == "market") return GenerateMarket(*flags, out_dir);
  if (command == "search") return GenerateSearch(*flags, out_dir);
  return Usage();
}

}  // namespace
}  // namespace fairjob

int main(int argc, char** argv) { return fairjob::Main(argc, argv); }
