// Differential suite for incremental cube maintenance: any sequence of
// UpsertCrawlBatch / UpsertStudySnapshot calls must leave the maintainer's
// cube bitwise identical (presence + double bit patterns) to a cold rebuild
// over the same mutated dataset, its indices identical to IndexSet::Build,
// and its epochs bumped for exactly the columns whose values changed — the
// property the serving cache's survival arithmetic rests on.

#include "serve/incremental.h"

#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/indices.h"
#include "serve/cache_key.h"
#include "serve/quantification_service.h"

namespace fairjob {
namespace {

constexpr size_t kQueries = 5;
constexpr size_t kLocations = 3;
constexpr size_t kWorkers = 20;
constexpr size_t kUsers = 16;

AttributeSchema TwoAttributeSchema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  EXPECT_TRUE(schema.AddAttribute("ethnicity", {"A", "B", "C"}).ok());
  return schema;
}

MarketRanking RandomRanking(Rng& rng, bool with_scores) {
  MarketRanking ranking;
  std::vector<WorkerId> pool(kWorkers);
  for (size_t w = 0; w < kWorkers; ++w) pool[w] = static_cast<WorkerId>(w);
  rng.Shuffle(pool);
  size_t length = 3 + rng.NextBelow(kWorkers - 3);
  ranking.workers.assign(pool.begin(), pool.begin() + length);
  if (with_scores) {
    double score = 1.0;
    for (size_t i = 0; i < length; ++i) {
      score -= rng.NextDouble() / length;
      ranking.scores.push_back(score);
    }
  }
  return ranking;
}

MarketplaceDataset MakeMarketplace(uint64_t seed) {
  MarketplaceDataset data(TwoAttributeSchema());
  Rng rng(seed);
  for (size_t w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(data.AddWorker("w" + std::to_string(w),
                               {static_cast<int32_t>(rng.NextBelow(2)),
                                static_cast<int32_t>(rng.NextBelow(3))})
                    .ok());
  }
  for (size_t q = 0; q < kQueries; ++q) {
    data.queries().GetOrAdd("query" + std::to_string(q));
  }
  for (size_t l = 0; l < kLocations; ++l) {
    data.locations().GetOrAdd("loc" + std::to_string(l));
  }
  // Most cells observed; a few left missing to exercise presence changes.
  for (size_t q = 0; q < kQueries; ++q) {
    for (size_t l = 0; l < kLocations; ++l) {
      if (rng.NextBelow(5) == 0) continue;
      EXPECT_TRUE(data.SetRanking(static_cast<QueryId>(q),
                                  static_cast<LocationId>(l),
                                  RandomRanking(rng, rng.NextBernoulli(0.5)))
                      .ok());
    }
  }
  return data;
}

std::vector<SearchObservation> RandomObservations(Rng& rng) {
  std::vector<SearchObservation> observations;
  size_t count = 1 + rng.NextBelow(4);
  for (size_t i = 0; i < count; ++i) {
    SearchObservation obs;
    obs.user = static_cast<UserId>(rng.NextBelow(kUsers));
    std::vector<int32_t> docs(12);
    for (size_t d = 0; d < docs.size(); ++d) docs[d] = static_cast<int32_t>(d);
    rng.Shuffle(docs);
    docs.resize(4 + rng.NextBelow(8));
    obs.results = std::move(docs);
    observations.push_back(std::move(obs));
  }
  return observations;
}

SearchDataset MakeSearch(uint64_t seed) {
  SearchDataset data(TwoAttributeSchema());
  Rng rng(seed);
  for (size_t u = 0; u < kUsers; ++u) {
    EXPECT_TRUE(data.AddUser("u" + std::to_string(u),
                             {static_cast<int32_t>(rng.NextBelow(2)),
                              static_cast<int32_t>(rng.NextBelow(3))})
                    .ok());
  }
  for (size_t q = 0; q < kQueries; ++q) {
    data.queries().GetOrAdd("term" + std::to_string(q));
  }
  for (size_t l = 0; l < kLocations; ++l) {
    data.locations().GetOrAdd("loc" + std::to_string(l));
  }
  for (size_t q = 0; q < kQueries; ++q) {
    for (size_t l = 0; l < kLocations; ++l) {
      if (rng.NextBelow(5) == 0) continue;
      for (SearchObservation& obs : RandomObservations(rng)) {
        EXPECT_TRUE(data.AddObservation(static_cast<QueryId>(q),
                                        static_cast<LocationId>(l),
                                        std::move(obs))
                        .ok());
      }
    }
  }
  return data;
}

bool BitwiseEqual(const std::optional<double>& a,
                  const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  uint64_t ba;
  uint64_t bb;
  std::memcpy(&ba, &*a, sizeof(ba));
  std::memcpy(&bb, &*b, sizeof(bb));
  return ba == bb;
}

void ExpectCubesBitwiseEqual(const UnfairnessCube& actual,
                             const UnfairnessCube& expected,
                             const char* context) {
  ASSERT_EQ(actual.axis_size(Dimension::kGroup),
            expected.axis_size(Dimension::kGroup));
  ASSERT_EQ(actual.axis_size(Dimension::kQuery),
            expected.axis_size(Dimension::kQuery));
  ASSERT_EQ(actual.axis_size(Dimension::kLocation),
            expected.axis_size(Dimension::kLocation));
  for (size_t g = 0; g < actual.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < actual.axis_size(Dimension::kQuery); ++q) {
      for (size_t l = 0; l < actual.axis_size(Dimension::kLocation); ++l) {
        EXPECT_TRUE(BitwiseEqual(actual.Get(g, q, l), expected.Get(g, q, l)))
            << context << " cell (" << g << "," << q << "," << l << ")";
      }
    }
  }
  // The two digests must collide too — this is what keeps the snapshot
  // lineage meaningful across the incremental path.
  EXPECT_EQ(FingerprintCube(actual), FingerprintCube(expected)) << context;
}

void ExpectIndicesMatchCube(const IndexSet& actual,
                            const UnfairnessCube& cube, const char* context) {
  IndexSet fresh = IndexSet::Build(cube);
  size_t sizes[3] = {cube.axis_size(Dimension::kGroup),
                     cube.axis_size(Dimension::kQuery),
                     cube.axis_size(Dimension::kLocation)};
  for (Dimension target :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    size_t o1 = sizes[(static_cast<size_t>(target) + 1) % 3];
    size_t o2 = sizes[(static_cast<size_t>(target) + 2) % 3];
    // ListAt takes the two non-target axes in ascending Dimension order.
    if (target == Dimension::kQuery) o1 = sizes[0], o2 = sizes[2];
    if (target == Dimension::kLocation) o1 = sizes[0], o2 = sizes[1];
    if (target == Dimension::kGroup) o1 = sizes[1], o2 = sizes[2];
    for (size_t a = 0; a < o1; ++a) {
      for (size_t b = 0; b < o2; ++b) {
        const InvertedIndex& got = actual.ListAt(target, a, b);
        const InvertedIndex& want = fresh.ListAt(target, a, b);
        ASSERT_EQ(got.size(), want.size())
            << context << " list (" << DimensionName(target) << "," << a << ","
            << b << ")";
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(got.entry(i) == want.entry(i))
              << context << " list (" << DimensionName(target) << "," << a
              << "," << b << ") entry " << i;
        }
      }
    }
  }
}

TEST(MarketplaceMaintainerTest, UpsertsMatchColdRebuildBitwise) {
  GroupSpace space = *GroupSpace::Enumerate(TwoAttributeSchema());
  for (MarketMeasure measure : {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
    Result<MarketplaceCubeMaintainer> made =
        MarketplaceCubeMaintainer::Make(MakeMarketplace(/*seed=*/11), space,
                                        measure);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    MarketplaceCubeMaintainer maintainer = std::move(*made);

    Rng rng(/*seed=*/77);
    for (size_t round = 0; round < 4; ++round) {
      CrawlBatch batch;
      size_t rows = 1 + rng.NextBelow(4);
      for (size_t r = 0; r < rows; ++r) {
        CrawlBatchRow row;
        row.query = static_cast<QueryId>(rng.NextBelow(kQueries));
        row.location = static_cast<LocationId>(rng.NextBelow(kLocations));
        row.ranking = RandomRanking(rng, rng.NextBernoulli(0.5));
        batch.rows.push_back(std::move(row));
      }
      // Occasionally list the same cell twice: the later row must win.
      if (rng.NextBernoulli(0.5) && !batch.rows.empty()) {
        CrawlBatchRow again = batch.rows.front();
        again.ranking = RandomRanking(rng, false);
        batch.rows.push_back(std::move(again));
      }
      Result<UpsertReport> report = maintainer.UpsertCrawlBatch(batch);
      ASSERT_TRUE(report.ok()) << report.status().ToString();

      Result<UnfairnessCube> expected =
          BuildMarketplaceCube(maintainer.data(), space, measure);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      ExpectCubesBitwiseEqual(maintainer.snapshot()->cube(), *expected,
                              MarketMeasureName(measure));
      ExpectIndicesMatchCube(maintainer.snapshot()->indices(),
                             maintainer.snapshot()->cube(),
                             MarketMeasureName(measure));
    }
  }
}

TEST(MarketplaceMaintainerTest, EmptyRankingMakesTheColumnMissing) {
  GroupSpace space = *GroupSpace::Enumerate(TwoAttributeSchema());
  Result<MarketplaceCubeMaintainer> made = MarketplaceCubeMaintainer::Make(
      MakeMarketplace(/*seed=*/11), space, MarketMeasure::kExposure);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  MarketplaceCubeMaintainer maintainer = std::move(*made);

  CrawlBatch batch;
  batch.rows.push_back(CrawlBatchRow{0, 0, MarketRanking{}});
  Result<UpsertReport> report = maintainer.UpsertCrawlBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const UnfairnessCube& cube = maintainer.snapshot()->cube();
  for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
    EXPECT_FALSE(cube.Get(g, 0, 0).has_value()) << "group " << g;
  }
  Result<UnfairnessCube> expected =
      BuildMarketplaceCube(maintainer.data(), space, MarketMeasure::kExposure);
  ASSERT_TRUE(expected.ok());
  ExpectCubesBitwiseEqual(cube, *expected, "empty-ranking");
}

TEST(SearchMaintainerTest, UpsertsMatchColdRebuildBitwise) {
  GroupSpace space = *GroupSpace::Enumerate(TwoAttributeSchema());
  for (SearchMeasure measure :
       {SearchMeasure::kKendallTau, SearchMeasure::kJaccard}) {
    Result<SearchCubeMaintainer> made =
        SearchCubeMaintainer::Make(MakeSearch(/*seed=*/23), space, measure);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    SearchCubeMaintainer maintainer = std::move(*made);

    Rng rng(/*seed=*/99);
    for (size_t round = 0; round < 4; ++round) {
      StudySnapshot delta;
      size_t cells = 1 + rng.NextBelow(3);
      for (size_t c = 0; c < cells; ++c) {
        StudySnapshotCell cell;
        cell.query = static_cast<QueryId>(rng.NextBelow(kQueries));
        cell.location = static_cast<LocationId>(rng.NextBelow(kLocations));
        // Replace semantics, including occasional removal (empty vector).
        if (!rng.NextBernoulli(0.2)) cell.observations = RandomObservations(rng);
        delta.cells.push_back(std::move(cell));
      }
      Result<UpsertReport> report = maintainer.UpsertStudySnapshot(delta);
      ASSERT_TRUE(report.ok()) << report.status().ToString();

      Result<UnfairnessCube> expected =
          BuildSearchCube(maintainer.data(), space, measure);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      ExpectCubesBitwiseEqual(maintainer.snapshot()->cube(), *expected,
                              SearchMeasureName(measure));
      ExpectIndicesMatchCube(maintainer.snapshot()->indices(),
                             maintainer.snapshot()->cube(),
                             SearchMeasureName(measure));
    }
  }
}

TEST(MarketplaceMaintainerTest, EpochsBumpOnlyForChangedColumns) {
  GroupSpace space = *GroupSpace::Enumerate(TwoAttributeSchema());
  MarketplaceDataset data = MakeMarketplace(/*seed=*/11);
  // Remember an existing ranking so one batch row can re-send it verbatim.
  const MarketRanking* unchanged = data.GetRanking(0, 0);
  ASSERT_NE(unchanged, nullptr);
  MarketRanking verbatim = *unchanged;

  Result<MarketplaceCubeMaintainer> made = MarketplaceCubeMaintainer::Make(
      std::move(data), space, MarketMeasure::kExposure);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  MarketplaceCubeMaintainer maintainer = std::move(*made);
  std::shared_ptr<const CubeSnapshot> before = maintainer.snapshot();

  // Record every column epoch before the upsert.
  const UnfairnessCube& cube_before = before->cube();
  std::vector<uint64_t> epochs_before;
  for (size_t q = 0; q < kQueries; ++q) {
    for (size_t l = 0; l < kLocations; ++l) {
      epochs_before.push_back(cube_before.column_epoch(q, l));
    }
  }

  Rng rng(/*seed=*/5);
  CrawlBatch batch;
  batch.rows.push_back(CrawlBatchRow{0, 0, verbatim});  // bitwise no-op
  batch.rows.push_back(CrawlBatchRow{1, 1, RandomRanking(rng, true)});
  Result<UpsertReport> report = maintainer.UpsertCrawlBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->rows_applied, 2u);
  EXPECT_EQ(report->columns_touched, 2u);
  EXPECT_EQ(report->columns_changed, 1u);
  EXPECT_EQ(report->cells_recomputed,
            2u * cube_before.axis_size(Dimension::kGroup));
  EXPECT_TRUE(report->published_new_snapshot);

  std::shared_ptr<const CubeSnapshot> after = maintainer.snapshot();
  ASSERT_NE(after, before);
  EXPECT_EQ(after->lineage(), before->lineage());  // same snapshot family
  EXPECT_EQ(after->version(), before->version() + 1);

  const UnfairnessCube& cube_after = after->cube();
  size_t i = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    for (size_t l = 0; l < kLocations; ++l, ++i) {
      uint64_t expected = epochs_before[i] + ((q == 1 && l == 1) ? 1 : 0);
      EXPECT_EQ(cube_after.column_epoch(q, l), expected)
          << "column (" << q << "," << l << ")";
    }
  }

  // A batch that changes nothing publishes nothing: the snapshot pointer is
  // literally the same object and every epoch stays put.
  CrawlBatch noop;
  noop.rows.push_back(CrawlBatchRow{0, 0, verbatim});
  Result<UpsertReport> noop_report = maintainer.UpsertCrawlBatch(noop);
  ASSERT_TRUE(noop_report.ok()) << noop_report.status().ToString();
  EXPECT_EQ(noop_report->columns_changed, 0u);
  EXPECT_FALSE(noop_report->published_new_snapshot);
  EXPECT_EQ(maintainer.snapshot(), after);
}

TEST(MarketplaceMaintainerTest, FailedBatchLeavesEverythingUntouched) {
  GroupSpace space = *GroupSpace::Enumerate(TwoAttributeSchema());
  Result<MarketplaceCubeMaintainer> made = MarketplaceCubeMaintainer::Make(
      MakeMarketplace(/*seed=*/11), space, MarketMeasure::kExposure);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  MarketplaceCubeMaintainer maintainer = std::move(*made);
  std::shared_ptr<const CubeSnapshot> before = maintainer.snapshot();
  const MarketRanking* ranking_before = maintainer.data().GetRanking(0, 0);
  ASSERT_NE(ranking_before, nullptr);
  std::vector<WorkerId> workers_before = ranking_before->workers;

  Rng rng(/*seed=*/5);
  // Valid first row, then each flavor of bad row: the batch must be
  // rejected atomically — the valid row must NOT have been applied.
  MarketRanking fresh = RandomRanking(rng, false);
  ASSERT_NE(fresh.workers, workers_before);
  {
    CrawlBatch batch;
    batch.rows.push_back(CrawlBatchRow{0, 0, fresh});
    batch.rows.push_back(
        CrawlBatchRow{static_cast<QueryId>(kQueries + 7), 0, fresh});
    EXPECT_FALSE(maintainer.UpsertCrawlBatch(batch).ok());
  }
  {
    CrawlBatch batch;
    batch.rows.push_back(CrawlBatchRow{0, 0, fresh});
    batch.rows.push_back(
        CrawlBatchRow{0, static_cast<LocationId>(kLocations + 7), fresh});
    EXPECT_FALSE(maintainer.UpsertCrawlBatch(batch).ok());
  }
  {
    CrawlBatch batch;
    batch.rows.push_back(CrawlBatchRow{0, 0, fresh});
    MarketRanking bad;
    bad.workers = {0, 0};  // duplicate worker
    batch.rows.push_back(CrawlBatchRow{1, 1, std::move(bad)});
    EXPECT_FALSE(maintainer.UpsertCrawlBatch(batch).ok());
  }

  EXPECT_EQ(maintainer.snapshot(), before);
  const MarketRanking* ranking_after = maintainer.data().GetRanking(0, 0);
  ASSERT_NE(ranking_after, nullptr);
  EXPECT_EQ(ranking_after->workers, workers_before);
}

TEST(SearchMaintainerTest, FailedSnapshotLeavesEverythingUntouched) {
  GroupSpace space = *GroupSpace::Enumerate(TwoAttributeSchema());
  Result<SearchCubeMaintainer> made = SearchCubeMaintainer::Make(
      MakeSearch(/*seed=*/23), space, SearchMeasure::kJaccard);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  SearchCubeMaintainer maintainer = std::move(*made);
  std::shared_ptr<const CubeSnapshot> before = maintainer.snapshot();

  Rng rng(/*seed=*/5);
  StudySnapshot delta;
  StudySnapshotCell good;
  good.query = 0;
  good.location = 0;
  good.observations = RandomObservations(rng);
  delta.cells.push_back(std::move(good));
  StudySnapshotCell bad;
  bad.query = 1;
  bad.location = 1;
  SearchObservation obs;
  obs.user = static_cast<UserId>(kUsers + 9);  // unknown user
  obs.results = {1, 2, 3};
  bad.observations.push_back(std::move(obs));
  delta.cells.push_back(std::move(bad));

  EXPECT_FALSE(maintainer.UpsertStudySnapshot(delta).ok());
  EXPECT_EQ(maintainer.snapshot(), before);
}

// The serving-layer cache-survival criterion: after an upsert touching k of
// the C (query, location) columns, the C − k requests over untouched
// columns are served from cache — asserted with EXACT stats accounting, not
// approximations.
TEST(IncrementalServingTest, UntouchedColumnsServeFromCacheAfterUpsert) {
  GroupSpace space = *GroupSpace::Enumerate(TwoAttributeSchema());
  Result<MarketplaceCubeMaintainer> made = MarketplaceCubeMaintainer::Make(
      MakeMarketplace(/*seed=*/31), space, MarketMeasure::kExposure);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  MarketplaceCubeMaintainer maintainer = std::move(*made);

  QuantificationService service(maintainer.snapshot());

  // One group-target request per (query, location) column: C requests, each
  // binding exactly its own column's epoch.
  std::vector<QuantificationRequest> per_column;
  for (size_t q = 0; q < kQueries; ++q) {
    for (size_t l = 0; l < kLocations; ++l) {
      QuantificationRequest request;
      request.target = Dimension::kGroup;
      request.k = 3;
      request.missing = MissingCellPolicy::kZero;
      request.agg1 = AxisSelector::Single(q);
      request.agg2 = AxisSelector::Single(l);
      per_column.push_back(request);
    }
  }
  const size_t kColumns = kQueries * kLocations;

  for (const QuantificationRequest& request : per_column) {
    ASSERT_TRUE(service.Answer(request).ok());
  }
  QuantificationService::Stats cold = service.stats();
  EXPECT_EQ(cold.requests, kColumns);
  EXPECT_EQ(cold.cache_misses, kColumns);
  EXPECT_EQ(cold.computations, kColumns);
  EXPECT_EQ(cold.cache_hits, 0u);

  // Warm replay: every request hits.
  for (const QuantificationRequest& request : per_column) {
    ASSERT_TRUE(service.Answer(request).ok());
  }
  QuantificationService::Stats warm = service.stats();
  EXPECT_EQ(warm.cache_hits, kColumns);
  EXPECT_EQ(warm.computations, kColumns);

  // Upsert k = 2 columns with genuinely different rankings, flip.
  Rng rng(/*seed=*/41);
  CrawlBatch batch;
  batch.rows.push_back(CrawlBatchRow{0, 0, RandomRanking(rng, true)});
  batch.rows.push_back(CrawlBatchRow{2, 1, RandomRanking(rng, true)});
  Result<UpsertReport> report = maintainer.UpsertCrawlBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->columns_changed, 2u);
  service.SetSnapshot(maintainer.snapshot());

  // Replay all C requests: exactly k recompute, C − k hit the old entries.
  for (const QuantificationRequest& request : per_column) {
    Result<QuantificationResult> served = service.Answer(request);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
  }
  QuantificationService::Stats after = service.stats();
  EXPECT_EQ(after.requests, 3 * kColumns);
  EXPECT_EQ(after.cache_hits, warm.cache_hits + (kColumns - 2));
  EXPECT_EQ(after.cache_misses, warm.cache_misses + 2);
  EXPECT_EQ(after.computations, warm.computations + 2);
  EXPECT_EQ(after.snapshot_flips, 1u);

  // Exact accounting invariants, not inequalities.
  EXPECT_EQ(after.cache_hits + after.cache_misses, after.requests);
  EXPECT_EQ(after.computations + after.coalesced, after.cache_misses);

  // And the recomputed answers match a direct solve against the new cube.
  const CubeSnapshot& snapshot = *maintainer.snapshot();
  for (const QuantificationRequest& request : per_column) {
    Result<QuantificationResult> direct =
        SolveQuantification(snapshot.cube(), snapshot.indices(), request);
    Result<QuantificationResult> served = service.Answer(request);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served->answers.size(), direct->answers.size());
    for (size_t i = 0; i < served->answers.size(); ++i) {
      EXPECT_EQ(served->answers[i].id, direct->answers[i].id);
      EXPECT_EQ(served->answers[i].value, direct->answers[i].value);
    }
  }
}

}  // namespace
}  // namespace fairjob
