#include "core/attribute_schema.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

AttributeSchema TwoAttributeSchema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  return schema;
}

TEST(AttributeSchemaTest, AddAssignsDenseIds) {
  AttributeSchema schema;
  Result<AttributeId> a = schema.AddAttribute("gender", {"Male", "Female"});
  Result<AttributeId> b = schema.AddAttribute("ethnicity", {"Asian", "White"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0);
  EXPECT_EQ(*b, 1);
  EXPECT_EQ(schema.num_attributes(), 2u);
}

TEST(AttributeSchemaTest, RejectsEmptyName) {
  AttributeSchema schema;
  EXPECT_FALSE(schema.AddAttribute("", {"x"}).ok());
}

TEST(AttributeSchemaTest, RejectsDuplicateAttribute) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  Result<AttributeId> dup = schema.AddAttribute("gender", {"A", "B"});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(AttributeSchemaTest, RejectsEmptyDomain) {
  AttributeSchema schema;
  EXPECT_FALSE(schema.AddAttribute("gender", {}).ok());
}

TEST(AttributeSchemaTest, RejectsDuplicateValues) {
  AttributeSchema schema;
  EXPECT_FALSE(schema.AddAttribute("gender", {"Male", "Male"}).ok());
}

TEST(AttributeSchemaTest, RejectsEmptyValueName) {
  AttributeSchema schema;
  EXPECT_FALSE(schema.AddAttribute("gender", {"Male", ""}).ok());
}

TEST(AttributeSchemaTest, NameLookups) {
  AttributeSchema schema = TwoAttributeSchema();
  EXPECT_EQ(schema.attribute_name(0), "ethnicity");
  EXPECT_EQ(schema.num_values(0), 3u);
  EXPECT_EQ(schema.value_name(0, 1), "Black");
  EXPECT_EQ(schema.value_name(1, 0), "Male");
}

TEST(AttributeSchemaTest, FindAttribute) {
  AttributeSchema schema = TwoAttributeSchema();
  EXPECT_EQ(*schema.FindAttribute("gender"), 1);
  EXPECT_FALSE(schema.FindAttribute("age").ok());
}

TEST(AttributeSchemaTest, FindValue) {
  AttributeSchema schema = TwoAttributeSchema();
  EXPECT_EQ(*schema.FindValue(0, "White"), 2);
  EXPECT_FALSE(schema.FindValue(0, "Martian").ok());
  EXPECT_FALSE(schema.FindValue(7, "White").ok());
}

TEST(AttributeSchemaTest, ValidatesDemographics) {
  AttributeSchema schema = TwoAttributeSchema();
  EXPECT_TRUE(schema.IsValidDemographics({2, 1}));
  EXPECT_FALSE(schema.IsValidDemographics({2}));       // wrong arity
  EXPECT_FALSE(schema.IsValidDemographics({3, 0}));    // value out of range
  EXPECT_FALSE(schema.IsValidDemographics({-1, 0}));   // negative
  EXPECT_FALSE(schema.IsValidDemographics({0, 0, 0})); // too many
}

TEST(AttributeSchemaTest, FindValueIsCaseSensitive) {
  AttributeSchema schema = TwoAttributeSchema();
  EXPECT_FALSE(schema.FindValue(0, "white").ok());
}

}  // namespace
}  // namespace fairjob
