// Differential suite for the query-serving layer: every Fagin-family
// algorithm, answered cache-off, cache-on (miss then hit) and batched, must
// be bit-equal to a direct SolveQuantification against the same cube — and
// must stay correct after a deliberate cube rebuild invalidates the
// fingerprint.

#include "serve/quantification_service.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/quantification.h"
#include "serve/cache_key.h"
#include "serve/cube_snapshot.h"

namespace fairjob {
namespace {

// A cube with distinct pseudo-random values (and a few missing cells) so
// every request has a unique, order-sensitive answer.
std::unique_ptr<UnfairnessCube> MakeCube(uint64_t seed) {
  auto cube = std::make_unique<UnfairnessCube>(*UnfairnessCube::Make(
      {10, 11, 12, 13, 14, 15}, {20, 21, 22, 23}, {30, 31, 32}));
  Rng rng(seed);
  for (size_t g = 0; g < 6; ++g) {
    for (size_t q = 0; q < 4; ++q) {
      for (size_t l = 0; l < 3; ++l) {
        if (rng.NextBelow(10) == 0) continue;  // missing cell
        cube->Set(g, q, l, rng.NextDouble());
      }
    }
  }
  return cube;
}

// Every algorithm × target × direction × k, plus selector variants
// (subsets, duplicates, allowed-target filters). NRA only supports
// most-unfair with zeroed missing cells, so the whole mix uses kZero.
std::vector<QuantificationRequest> RequestSpace() {
  std::vector<QuantificationRequest> space;
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
        TopKAlgorithm::kNRA, TopKAlgorithm::kScan}) {
    for (Dimension target :
         {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
      for (RankDirection direction :
           {RankDirection::kMostUnfair, RankDirection::kLeastUnfair}) {
        if (algorithm == TopKAlgorithm::kNRA &&
            direction == RankDirection::kLeastUnfair) {
          continue;
        }
        for (size_t k : {1u, 3u, 100u}) {  // 100 > axis size: full ranking
          QuantificationRequest request;
          request.target = target;
          request.k = k;
          request.direction = direction;
          request.algorithm = algorithm;
          request.missing = MissingCellPolicy::kZero;
          space.push_back(request);

          QuantificationRequest subset = request;
          subset.agg1 = AxisSelector{{1, 0}};     // unsorted on purpose
          subset.agg2 = AxisSelector{{0, 1, 1}};  // duplicate position
          // Target-axis positions (valid on every axis), with a duplicate.
          subset.allowed_targets = {2, 0, 1, 1};
          space.push_back(subset);
        }
      }
    }
  }
  return space;
}

void ExpectBitEqual(const QuantificationResult& served,
                    const QuantificationResult& direct, const char* mode,
                    size_t index) {
  ASSERT_EQ(served.answers.size(), direct.answers.size())
      << mode << " request " << index;
  for (size_t i = 0; i < served.answers.size(); ++i) {
    EXPECT_EQ(served.answers[i].id, direct.answers[i].id)
        << mode << " request " << index << " rank " << i;
    // Bit-equality, not approximate: the service must return the exact
    // doubles SolveQuantification produced.
    EXPECT_EQ(served.answers[i].value, direct.answers[i].value)
        << mode << " request " << index << " rank " << i;
  }
}

class ServeDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cube_ = MakeCube(/*seed=*/101);
    indices_ = std::make_unique<IndexSet>(IndexSet::Build(*cube_));
    requests_ = RequestSpace();
  }

  std::unique_ptr<UnfairnessCube> cube_;
  std::unique_ptr<IndexSet> indices_;
  std::vector<QuantificationRequest> requests_;
};

TEST_F(ServeDifferentialTest, CacheOffMatchesDirectForAllAlgorithms) {
  QuantificationService::Options options;
  options.cache_capacity = 0;
  QuantificationService service(cube_.get(), indices_.get(), options);
  for (size_t i = 0; i < requests_.size(); ++i) {
    Result<QuantificationResult> direct =
        SolveQuantification(*cube_, *indices_, requests_[i]);
    Result<QuantificationResult> served = service.Answer(requests_[i]);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ExpectBitEqual(*served, *direct, "cache-off", i);
  }
  EXPECT_EQ(service.stats().computations, requests_.size());
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST_F(ServeDifferentialTest, CachedMissAndHitMatchDirect) {
  QuantificationService service(cube_.get(), indices_.get());
  for (size_t i = 0; i < requests_.size(); ++i) {
    Result<QuantificationResult> direct =
        SolveQuantification(*cube_, *indices_, requests_[i]);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    Result<QuantificationResult> miss = service.Answer(requests_[i]);
    Result<QuantificationResult> hit = service.Answer(requests_[i]);
    ASSERT_TRUE(miss.ok()) << miss.status().ToString();
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    ExpectBitEqual(*miss, *direct, "cache-miss", i);
    ExpectBitEqual(*hit, *direct, "cache-hit", i);
  }
  QuantificationService::Stats stats = service.stats();
  EXPECT_GE(stats.cache_hits, requests_.size() / 2);  // every repeat hit
  EXPECT_LT(stats.computations, stats.requests);
}

TEST_F(ServeDifferentialTest, BatchedMatchesDirectIncludingDuplicates) {
  QuantificationService service(cube_.get(), indices_.get());
  // The batch carries every request twice (adjacent duplicates), so the
  // dedup path is exercised while results must still line up index-by-index.
  std::vector<QuantificationRequest> batch;
  for (const QuantificationRequest& request : requests_) {
    batch.push_back(request);
    batch.push_back(request);
  }
  std::vector<Result<QuantificationResult>> results =
      service.AnswerBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Result<QuantificationResult> direct =
        SolveQuantification(*cube_, *indices_, batch[i]);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    ExpectBitEqual(*results[i], *direct, "batched", i);
  }
  // Duplicates computed once each.
  EXPECT_EQ(service.stats().computations, requests_.size());
}

TEST_F(ServeDifferentialTest, RebuildInvalidatesFingerprintAndStaysCorrect) {
  QuantificationService service(cube_.get(), indices_.get());
  uint64_t fingerprint_before = service.cube_fingerprint();
  for (const QuantificationRequest& request : requests_) {
    ASSERT_TRUE(service.Answer(request).ok());  // warm the cache
  }

  // Deliberate rebuild with different contents: every cached entry must
  // stop matching, and answers must track the new cube.
  std::unique_ptr<UnfairnessCube> rebuilt = MakeCube(/*seed=*/202);
  std::unique_ptr<IndexSet> rebuilt_indices =
      std::make_unique<IndexSet>(IndexSet::Build(*rebuilt));
  service.SetBackend(rebuilt.get(), rebuilt_indices.get());
  EXPECT_NE(service.cube_fingerprint(), fingerprint_before);

  uint64_t computations_before = service.stats().computations;
  for (size_t i = 0; i < requests_.size(); ++i) {
    Result<QuantificationResult> direct =
        SolveQuantification(*rebuilt, *rebuilt_indices, requests_[i]);
    Result<QuantificationResult> served = service.Answer(requests_[i]);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    ExpectBitEqual(*served, *direct, "post-rebuild", i);
  }
  // None of the old entries may have been served.
  EXPECT_EQ(service.stats().computations,
            computations_before + requests_.size());

  // An identical rebuild, though, hashes the same: the cache stays warm.
  std::unique_ptr<UnfairnessCube> same = MakeCube(/*seed=*/202);
  std::unique_ptr<IndexSet> same_indices =
      std::make_unique<IndexSet>(IndexSet::Build(*same));
  service.SetBackend(same.get(), same_indices.get());
  uint64_t computations_after = service.stats().computations;
  for (const QuantificationRequest& request : requests_) {
    ASSERT_TRUE(service.Answer(request).ok());
  }
  EXPECT_EQ(service.stats().computations, computations_after);
}

TEST_F(ServeDifferentialTest, EquivalentSpellingsShareOneCacheEntry) {
  QuantificationService service(cube_.get(), indices_.get());

  QuantificationRequest plain;
  plain.target = Dimension::kGroup;
  plain.k = 3;
  plain.missing = MissingCellPolicy::kZero;

  // Same request, spelled differently: permuted selector order, an explicit
  // full-axis list, and a full-axis allowed filter all normalize away.
  QuantificationRequest spelled = plain;
  spelled.agg1 = AxisSelector{{3, 1, 0, 2}};  // all 4 query positions
  spelled.agg2 = AxisSelector{{2, 0, 1}};     // all 3 location positions
  spelled.allowed_targets = {5, 0, 1, 2, 3, 4, 0};  // whole axis + dup

  ASSERT_TRUE(service.Answer(plain).ok());
  ASSERT_TRUE(service.Answer(spelled).ok());
  EXPECT_EQ(service.stats().computations, 1u);
  EXPECT_EQ(service.stats().cache_hits, 1u);

  // A duplicated selector position weighs that list twice in the average —
  // it must NOT share a cache entry with the deduplicated spelling (and the
  // answers genuinely differ).
  QuantificationRequest doubled = plain;
  doubled.agg1 = AxisSelector{{0, 0, 1}};
  QuantificationRequest single = plain;
  single.agg1 = AxisSelector{{0, 1}};
  Result<QuantificationResult> doubled_answer = service.Answer(doubled);
  Result<QuantificationResult> single_answer = service.Answer(single);
  ASSERT_TRUE(doubled_answer.ok());
  ASSERT_TRUE(single_answer.ok());
  EXPECT_EQ(service.stats().computations, 3u);
  EXPECT_NE(doubled_answer->answers[0].value, single_answer->answers[0].value);
}

TEST_F(ServeDifferentialTest, ErrorsPropagateAndAreNotCached) {
  QuantificationService service(cube_.get(), indices_.get());
  QuantificationRequest bad;
  bad.k = 0;  // SolveQuantification rejects k = 0
  Status direct = SolveQuantification(*cube_, *indices_, bad).status();
  ASSERT_FALSE(direct.ok());
  EXPECT_FALSE(service.Answer(bad).ok());
  EXPECT_FALSE(service.Answer(bad).ok());
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.computations, 2u);  // failures are never cached
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(RequestCacheKeyTest, AlgorithmAndPolicyArePartOfTheIdentity) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/7);
  IndexSet indices = IndexSet::Build(*cube);
  std::shared_ptr<const CubeSnapshot> snapshot =
      CubeSnapshot::Borrow(cube.get(), &indices);
  QuantificationRequest request;
  request.missing = MissingCellPolicy::kZero;
  RequestCacheKey base(request, *snapshot);

  QuantificationRequest other_algorithm = request;
  other_algorithm.algorithm = TopKAlgorithm::kScan;
  EXPECT_FALSE(base == RequestCacheKey(other_algorithm, *snapshot));

  QuantificationRequest other_policy = request;
  other_policy.missing = MissingCellPolicy::kSkip;
  EXPECT_FALSE(base == RequestCacheKey(other_policy, *snapshot));

  // A snapshot over different contents has a different lineage, so the same
  // request stops matching; the same snapshot reproduces the same key.
  std::unique_ptr<UnfairnessCube> other_cube = MakeCube(/*seed=*/8);
  IndexSet other_indices = IndexSet::Build(*other_cube);
  std::shared_ptr<const CubeSnapshot> other_snapshot =
      CubeSnapshot::Borrow(other_cube.get(), &other_indices);
  EXPECT_FALSE(base == RequestCacheKey(request, *other_snapshot));
  EXPECT_TRUE(base == RequestCacheKey(request, *snapshot));
}

// Locks the normalization equivalences across the allocation micro-fix in
// NormalizePositions/NormalizeTargets: permutations collapse, duplicates
// stay distinct (selectors) or collapse (allowed), and explicit full-axis
// spellings fold to the "all" form.
TEST(RequestCacheKeyTest, NormalizationEquivalencesAreUnchanged) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/9);
  IndexSet indices = IndexSet::Build(*cube);
  std::shared_ptr<const CubeSnapshot> snapshot =
      CubeSnapshot::Borrow(cube.get(), &indices);
  QuantificationRequest base;  // target kGroup: agg1 = 4 queries, agg2 = 3
  base.agg1.positions = {0, 2};
  RequestCacheKey key(base, *snapshot);

  // Permutations of a selector are one identity.
  QuantificationRequest permuted = base;
  permuted.agg1.positions = {2, 0};
  EXPECT_TRUE(key == RequestCacheKey(permuted, *snapshot));

  // Duplicated selector positions aggregate their list twice: distinct.
  QuantificationRequest doubled = base;
  doubled.agg1.positions = {0, 2, 2};
  EXPECT_FALSE(key == RequestCacheKey(doubled, *snapshot));

  // Explicitly listing every position once collapses to the "all" form.
  QuantificationRequest explicit_all = base;
  explicit_all.agg2.positions = {2, 1, 0};
  EXPECT_TRUE(key == RequestCacheKey(explicit_all, *snapshot));
  RequestCacheKey explicit_key(explicit_all, *snapshot);
  EXPECT_TRUE(explicit_key.agg2.empty());

  // allowed_targets is consumed as a set: duplicates and order vanish, and
  // admitting the whole axis is no filter at all.
  QuantificationRequest filtered = base;
  filtered.allowed_targets = {3, 1};
  RequestCacheKey filtered_key(filtered, *snapshot);
  QuantificationRequest filtered_dup = base;
  filtered_dup.allowed_targets = {1, 3, 3, 1};
  EXPECT_TRUE(filtered_key == RequestCacheKey(filtered_dup, *snapshot));
  EXPECT_FALSE(key == filtered_key);
  QuantificationRequest allow_all = base;
  allow_all.allowed_targets = {5, 4, 3, 2, 1, 0, 0};
  EXPECT_TRUE(key == RequestCacheKey(allow_all, *snapshot));

  // Same spelling reproduces the same key (and hash) run over run.
  RequestCacheKeyHash hash;
  EXPECT_EQ(hash(key), hash(RequestCacheKey(permuted, *snapshot)));
}

TEST(RequestCacheKeyTest, EpochDigestBindsOnlyTheColumnsARequestReads) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/7);
  IndexSet indices = IndexSet::Build(*cube);
  std::shared_ptr<const CubeSnapshot> before =
      CubeSnapshot::Borrow(cube.get(), &indices);

  // Group-target request reading only query column 0 (all locations).
  QuantificationRequest narrow;
  narrow.target = Dimension::kGroup;
  narrow.missing = MissingCellPolicy::kZero;
  narrow.agg1 = AxisSelector::Single(0);
  // And one reading only query column 1.
  QuantificationRequest disjoint = narrow;
  disjoint.agg1 = AxisSelector::Single(1);
  // And an unrestricted one, which reads every column.
  QuantificationRequest full;
  full.target = Dimension::kGroup;
  full.missing = MissingCellPolicy::kZero;

  RequestCacheKey narrow_before(narrow, *before);
  RequestCacheKey disjoint_before(disjoint, *before);
  RequestCacheKey full_before(full, *before);

  // Bump the epoch of every (query 1, location) column, as the delta path
  // would after an upsert changed query 1's cells.
  for (size_t l = 0; l < cube->axis_size(Dimension::kLocation); ++l) {
    cube->BumpColumnEpoch(1, l);
  }
  std::shared_ptr<const CubeSnapshot> after =
      CubeSnapshot::MakeDerived(*cube, indices, before->lineage(),
                                before->version() + 1);

  // The request over untouched columns keeps its key (its cache entry
  // survives); requests reading a touched column get re-keyed.
  EXPECT_TRUE(narrow_before == RequestCacheKey(narrow, *after));
  EXPECT_FALSE(disjoint_before == RequestCacheKey(disjoint, *after));
  EXPECT_FALSE(full_before == RequestCacheKey(full, *after));
}

TEST(FingerprintCubeTest, SensitiveToValuesPresenceAndShape) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/7);
  uint64_t fingerprint = FingerprintCube(*cube);

  EXPECT_EQ(FingerprintCube(*MakeCube(/*seed=*/7)), fingerprint);

  UnfairnessCube changed = *cube;
  changed.Set(0, 0, 0, 0.123456789);
  EXPECT_NE(FingerprintCube(changed), fingerprint);

  // Clearing a cell that is definitely present must also change the digest.
  UnfairnessCube cleared = changed;
  cleared.Clear(0, 0, 0);
  EXPECT_NE(FingerprintCube(cleared), FingerprintCube(changed));
}

}  // namespace
}  // namespace fairjob
