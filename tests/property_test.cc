// Metamorphic properties of the framework: invariances that must hold for
// any input, checked on randomized instances.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/comparison.h"
#include "core/fbox.h"

namespace fairjob {
namespace {

AttributeSchema Schema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  return schema;
}

struct RandomMarket {
  std::unique_ptr<MarketplaceDataset> data;
  std::unique_ptr<GroupSpace> space;
};

RandomMarket MakeRandomMarket(Rng* rng, size_t workers = 18, size_t queries = 3,
                              size_t locations = 2, bool with_scores = false) {
  RandomMarket market;
  market.data = std::make_unique<MarketplaceDataset>(Schema());
  market.space = std::make_unique<GroupSpace>(
      *GroupSpace::Enumerate(market.data->schema()));
  std::vector<WorkerId> ids;
  for (size_t i = 0; i < workers; ++i) {
    Demographics d = {static_cast<ValueId>(rng->NextBelow(3)),
                      static_cast<ValueId>(rng->NextBelow(2))};
    ids.push_back(*market.data->AddWorker("w" + std::to_string(i), d));
  }
  for (QueryId q = 0; q < static_cast<QueryId>(queries); ++q) {
    market.data->queries().GetOrAdd("q" + std::to_string(q));
    for (LocationId l = 0; l < static_cast<LocationId>(locations); ++l) {
      market.data->locations().GetOrAdd("l" + std::to_string(l));
      MarketRanking ranking;
      ranking.workers = ids;
      rng->Shuffle(ranking.workers);
      if (with_scores) {
        ranking.scores.resize(ids.size());
        double score = 1.0;
        for (double& s : ranking.scores) {
          score -= rng->NextDouble() * 0.1;
          s = std::max(score, 0.0);
        }
      }
      EXPECT_TRUE(market.data->SetRanking(q, l, std::move(ranking)).ok());
    }
  }
  return market;
}

// 1. Worker registration order is irrelevant: renaming/reordering the
// worker table while keeping each ranking's demographic sequence fixed
// leaves every unfairness value unchanged.
TEST(MetamorphicTest, WorkerRegistrationOrderIrrelevant) {
  Rng rng(1);
  RandomMarket original = MakeRandomMarket(&rng);

  // Rebuild with workers registered in reverse order but identical ranked
  // demographic sequences.
  MarketplaceDataset reordered(Schema());
  size_t n = original.data->num_workers();
  std::vector<WorkerId> remap(n);  // original id -> new id
  for (size_t i = n; i-- > 0;) {
    remap[i] = *reordered.AddWorker(
        "r" + std::to_string(i),
        original.data->worker_demographics(static_cast<WorkerId>(i)));
  }
  for (QueryId q = 0; q < 3; ++q) {
    reordered.queries().GetOrAdd("q" + std::to_string(q));
    for (LocationId l = 0; l < 2; ++l) {
      reordered.locations().GetOrAdd("l" + std::to_string(l));
      const MarketRanking* ranking = original.data->GetRanking(q, l);
      MarketRanking copy;
      for (WorkerId w : ranking->workers) copy.workers.push_back(remap[w]);
      ASSERT_TRUE(reordered.SetRanking(q, l, std::move(copy)).ok());
    }
  }

  for (MarketMeasure measure :
       {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
    UnfairnessCube a =
        *BuildMarketplaceCube(*original.data, *original.space, measure);
    UnfairnessCube b =
        *BuildMarketplaceCube(reordered, *original.space, measure);
    ASSERT_EQ(a.num_present(), b.num_present());
    for (size_t g = 0; g < a.axis_size(Dimension::kGroup); ++g) {
      for (size_t q = 0; q < 3; ++q) {
        for (size_t l = 0; l < 2; ++l) {
          ASSERT_EQ(a.Get(g, q, l).has_value(), b.Get(g, q, l).has_value());
          if (a.Get(g, q, l).has_value()) {
            EXPECT_NEAR(*a.Get(g, q, l), *b.Get(g, q, l), 1e-12);
          }
        }
      }
    }
  }
}

// 2. A cube built over an axis subset equals the corresponding cells of the
// full cube.
TEST(MetamorphicTest, SubsetCubeMatchesFullCube) {
  Rng rng(2);
  RandomMarket market = MakeRandomMarket(&rng, 20, 4, 3);
  UnfairnessCube full =
      *BuildMarketplaceCube(*market.data, *market.space, MarketMeasure::kEmd);

  CubeAxes axes;
  axes.groups = {1, 4, 7};
  axes.queries = {0, 2};
  axes.locations = {1};
  UnfairnessCube subset = *BuildMarketplaceCube(
      *market.data, *market.space, MarketMeasure::kEmd, {}, axes);
  for (size_t gi = 0; gi < axes.groups.size(); ++gi) {
    for (size_t qi = 0; qi < axes.queries.size(); ++qi) {
      std::optional<double> sub = subset.Get(gi, qi, 0);
      std::optional<double> ref = full.Get(
          static_cast<size_t>(axes.groups[gi]),
          static_cast<size_t>(axes.queries[qi]),
          static_cast<size_t>(axes.locations[0]));
      ASSERT_EQ(sub.has_value(), ref.has_value());
      if (sub.has_value()) {
        EXPECT_NEAR(*sub, *ref, 1e-12);
      }
    }
  }
}

// 3. Duplicating an inverted list leaves the kSkip top-k unchanged (the
// average over present lists is duplication-invariant).
TEST(MetamorphicTest, DuplicatedListInvariantUnderSkipPolicy) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ScoredEntry> entries;
    for (int32_t id = 0; id < 30; ++id) {
      if (rng.NextBernoulli(0.8)) {
        entries.push_back({id, rng.NextDouble()});
      }
    }
    InvertedIndex list(entries);
    TopKOptions options;
    options.k = 5;
    options.missing = MissingCellPolicy::kSkip;
    auto once = *FaginTopK({&list}, options);
    auto twice = *FaginTopK({&list, &list}, options);
    ASSERT_EQ(once.size(), twice.size());
    for (size_t i = 0; i < once.size(); ++i) {
      EXPECT_EQ(once[i].pos, twice[i].pos);
      EXPECT_NEAR(once[i].value, twice[i].value, 1e-12);
    }
  }
}

// 4. EMD is invariant under bin-aligned translation of the inputs.
TEST(MetamorphicTest, MarketplaceEmdInvariantUnderBinAlignedScoreShift) {
  Rng rng(4);
  RandomMarket market = MakeRandomMarket(&rng, 16, 2, 1, /*with_scores=*/true);
  // Compress scores into [0.2, 0.6] then shift by exactly two bins (0.2).
  MarketplaceDataset shifted(Schema());
  for (size_t i = 0; i < market.data->num_workers(); ++i) {
    ASSERT_TRUE(shifted
                    .AddWorker("s" + std::to_string(i),
                               market.data->worker_demographics(
                                   static_cast<WorkerId>(i)))
                    .ok());
  }
  for (QueryId q = 0; q < 2; ++q) {
    shifted.queries().GetOrAdd("q" + std::to_string(q));
    shifted.locations().GetOrAdd("l0");
    const MarketRanking* ranking = market.data->GetRanking(q, 0);
    MarketRanking original_compressed = *ranking;
    MarketRanking moved = *ranking;
    for (size_t i = 0; i < moved.scores.size(); ++i) {
      original_compressed.scores[i] = 0.2 + 0.4 * ranking->scores[i];
      moved.scores[i] = original_compressed.scores[i] + 0.2;
    }
    ASSERT_TRUE(
        market.data->SetRanking(q, 0, std::move(original_compressed)).ok());
    ASSERT_TRUE(shifted.SetRanking(q, 0, std::move(moved)).ok());
  }
  for (size_t g = 0; g < market.space->num_groups(); ++g) {
    for (QueryId q = 0; q < 2; ++q) {
      Result<double> a =
          MarketplaceUnfairness(*market.data, *market.space,
                                static_cast<GroupId>(g), q, 0,
                                MarketMeasure::kEmd);
      Result<double> b = MarketplaceUnfairness(shifted, *market.space,
                                               static_cast<GroupId>(g), q, 0,
                                               MarketMeasure::kEmd);
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        EXPECT_NEAR(*a, *b, 1e-12);
      }
    }
  }
}

// 5. Comparison is antisymmetric: swapping r1/r2 swaps the per-row values
// and keeps the reversed set identical.
TEST(MetamorphicTest, ComparisonAntisymmetry) {
  Rng rng(5);
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1, 2}, {0, 1, 2, 3}, {0, 1});
  for (size_t g = 0; g < 3; ++g) {
    for (size_t q = 0; q < 4; ++q) {
      for (size_t l = 0; l < 2; ++l) {
        if (rng.NextBernoulli(0.85)) cube.Set(g, q, l, rng.NextDouble());
      }
    }
  }
  ComparisonRequest forward;
  forward.compare_dim = Dimension::kGroup;
  forward.r1_pos = 0;
  forward.r2_pos = 2;
  forward.breakdown_dim = Dimension::kQuery;
  ComparisonRequest backward = forward;
  std::swap(backward.r1_pos, backward.r2_pos);

  Result<ComparisonResult> f = SolveComparison(cube, forward);
  Result<ComparisonResult> b = SolveComparison(cube, backward);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(f->overall_d1, b->overall_d2, 1e-12);
  EXPECT_NEAR(f->overall_d2, b->overall_d1, 1e-12);
  ASSERT_EQ(f->rows.size(), b->rows.size());
  ASSERT_EQ(f->reversed.size(), b->reversed.size());
  for (size_t i = 0; i < f->rows.size(); ++i) {
    EXPECT_EQ(f->rows[i].breakdown_id, b->rows[i].breakdown_id);
    EXPECT_NEAR(f->rows[i].d1, b->rows[i].d2, 1e-12);
    EXPECT_EQ(f->rows[i].reversed, b->rows[i].reversed);
  }
}

// 6. Exposure is invariant under uniform positive scaling of the scores
// (both shares are ratios).
TEST(MetamorphicTest, ExposureInvariantUnderScoreScaling) {
  Rng rng(6);
  RandomMarket market = MakeRandomMarket(&rng, 14, 2, 1, /*with_scores=*/true);
  MarketplaceDataset scaled(Schema());
  for (size_t i = 0; i < market.data->num_workers(); ++i) {
    ASSERT_TRUE(scaled
                    .AddWorker("s" + std::to_string(i),
                               market.data->worker_demographics(
                                   static_cast<WorkerId>(i)))
                    .ok());
  }
  for (QueryId q = 0; q < 2; ++q) {
    scaled.queries().GetOrAdd("q" + std::to_string(q));
    scaled.locations().GetOrAdd("l0");
    MarketRanking copy = *market.data->GetRanking(q, 0);
    for (double& s : copy.scores) s *= 0.5;
    ASSERT_TRUE(scaled.SetRanking(q, 0, std::move(copy)).ok());
  }
  for (size_t g = 0; g < market.space->num_groups(); ++g) {
    Result<double> a =
        MarketplaceUnfairness(*market.data, *market.space,
                              static_cast<GroupId>(g), 0, 0,
                              MarketMeasure::kExposure);
    Result<double> b =
        MarketplaceUnfairness(scaled, *market.space, static_cast<GroupId>(g),
                              0, 0, MarketMeasure::kExposure);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_NEAR(*a, *b, 1e-12);
    }
  }
}

// 7. Quantification with k = axis size returns every defined value, sorted.
TEST(MetamorphicTest, FullKIsSortedAndComplete) {
  Rng rng(7);
  RandomMarket market = MakeRandomMarket(&rng);
  FBox fbox = *FBox::ForMarketplace(market.data.get(), market.space.get(),
                                    MarketMeasure::kEmd);
  size_t n = market.space->num_groups();
  std::vector<FBox::NamedAnswer> all = *fbox.TopK(Dimension::kGroup, n);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].value, all[i].value);
  }
  std::vector<FBox::NamedAnswer> least =
      *fbox.TopK(Dimension::kGroup, n, RankDirection::kLeastUnfair);
  ASSERT_EQ(all.size(), least.size());
  // Both directions return the same value multiset, mirrored (names may
  // differ at exact ties).
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_NEAR(all[i].value, least[least.size() - 1 - i].value, 1e-12);
  }
}

}  // namespace
}  // namespace fairjob
