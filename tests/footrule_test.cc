#include "ranking/footrule.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ranking/kendall_tau.h"

namespace fairjob {
namespace {

TEST(FootruleTest, IdenticalIsZero) {
  RankedList a = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(*FootruleDistance(a, a), 0.0);
}

TEST(FootruleTest, ReversalIsOne) {
  RankedList a = {1, 2, 3, 4};
  RankedList b = {4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(*FootruleDistance(a, b), 1.0);
  RankedList c = {1, 2, 3, 4, 5};
  RankedList d = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(*FootruleDistance(c, d), 1.0);  // odd n: ⌊n²/2⌋ = 12
}

TEST(FootruleTest, AdjacentSwapExact) {
  RankedList a = {1, 2, 3};
  RankedList b = {2, 1, 3};
  // Displacements 1 + 1 + 0 = 2; max ⌊9/2⌋ = 4.
  EXPECT_DOUBLE_EQ(*FootruleDistance(a, b), 0.5);
}

TEST(FootruleTest, Symmetric) {
  RankedList a = {1, 2, 3, 4, 5};
  RankedList b = {2, 4, 1, 5, 3};
  EXPECT_DOUBLE_EQ(*FootruleDistance(a, b), *FootruleDistance(b, a));
}

TEST(FootruleTest, SingletonIsZero) {
  EXPECT_DOUBLE_EQ(*FootruleDistance({9}, {9}), 0.0);
}

TEST(FootruleTest, Validation) {
  EXPECT_FALSE(FootruleDistance({}, {}).ok());
  EXPECT_FALSE(FootruleDistance({1, 2}, {1}).ok());
  EXPECT_FALSE(FootruleDistance({1, 2}, {1, 3}).ok());
  EXPECT_FALSE(FootruleDistance({1, 1}, {1, 1}).ok());
}

TEST(FootruleTest, DiaconisGrahamInequality) {
  // K ≤ F ≤ 2K where K = #discordant pairs, F = footrule sum (both
  // unnormalized). Check via the normalized forms with exact constants.
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 3 + rng.NextBelow(20);
    RankedList a(n);
    std::iota(a.begin(), a.end(), 0);
    RankedList b = a;
    rng.Shuffle(b);
    double k_norm = *KendallTauDistance(a, b);       // K / C(n,2)
    double f_norm = *FootruleDistance(a, b);         // F / ⌊n²/2⌋
    double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
    double f_max = std::floor(static_cast<double>(n * n) / 2.0);
    double k_raw = k_norm * pairs;
    double f_raw = f_norm * f_max;
    EXPECT_LE(k_raw, f_raw + 1e-9);
    EXPECT_LE(f_raw, 2.0 * k_raw + 1e-9);
  }
}

TEST(FootruleTopKTest, IdenticalIsZeroDisjointIsOne) {
  RankedList a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(*FootruleTopK(a, a), 0.0);
  EXPECT_DOUBLE_EQ(*FootruleTopK({1, 2, 3}, {4, 5, 6}), 1.0);
}

TEST(FootruleTopKTest, PartialOverlapBetweenExtremes) {
  RankedList a = {1, 2, 3, 4};
  RankedList b = {1, 2, 7, 8};
  double d = *FootruleTopK(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

TEST(FootruleTopKTest, HandComputedValue) {
  // a = {1,2}, b = {2,1}: both present, displacements |1-2| + |2-1| = 2.
  // Disjoint normalizer: ℓ = 3 for both lists; Σ|r-3| over r=1,2 twice =
  // (2+1)·2 = 6.
  EXPECT_NEAR(*FootruleTopK({1, 2}, {2, 1}), 2.0 / 6.0, 1e-12);
}

TEST(FootruleTopKTest, UnequalLengthsSupported) {
  Result<double> d = FootruleTopK({1, 2, 3, 4, 5}, {1, 9});
  ASSERT_TRUE(d.ok());
  EXPECT_GE(*d, 0.0);
  EXPECT_LE(*d, 1.0);
}

TEST(FootruleTopKTest, SymmetricAndBounded) {
  Rng rng(22);
  for (int trial = 0; trial < 30; ++trial) {
    size_t k = 2 + rng.NextBelow(15);
    std::vector<int32_t> pool(2 * k);
    std::iota(pool.begin(), pool.end(), 0);
    rng.Shuffle(pool);
    RankedList a(pool.begin(), pool.begin() + static_cast<long>(k));
    rng.Shuffle(pool);
    RankedList b(pool.begin(), pool.begin() + static_cast<long>(k));
    double ab = *FootruleTopK(a, b);
    double ba = *FootruleTopK(b, a);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

}  // namespace
}  // namespace fairjob
