#include "core/group_space.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fairjob {
namespace {

class GroupSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        schema_.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
    ASSERT_TRUE(schema_.AddAttribute("gender", {"Male", "Female"}).ok());
    Result<GroupSpace> space = GroupSpace::Enumerate(schema_);
    ASSERT_TRUE(space.ok());
    space_ = std::make_unique<GroupSpace>(std::move(*space));
  }

  GroupId Id(std::vector<GroupLabel::Predicate> preds) {
    return *space_->IdOf(*GroupLabel::Make(std::move(preds)));
  }

  AttributeSchema schema_;
  std::unique_ptr<GroupSpace> space_;
};

TEST_F(GroupSpaceTest, EnumeratesElevenGroups) {
  // (3+1)·(2+1) − 1 = 11: the row count of the paper's Table 8.
  EXPECT_EQ(space_->num_groups(), 11u);
}

TEST_F(GroupSpaceTest, AllLabelsDistinct) {
  std::set<std::string> names;
  for (size_t g = 0; g < space_->num_groups(); ++g) {
    names.insert(space_->label(static_cast<GroupId>(g)).ToString(schema_));
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST_F(GroupSpaceTest, IdOfRoundTrips) {
  for (size_t g = 0; g < space_->num_groups(); ++g) {
    EXPECT_EQ(*space_->IdOf(space_->label(static_cast<GroupId>(g))),
              static_cast<GroupId>(g));
  }
}

TEST_F(GroupSpaceTest, IdOfUnknownLabelFails) {
  // A label over an attribute id outside the schema.
  GroupLabel bogus = *GroupLabel::Make({{5, 0}});
  EXPECT_FALSE(space_->IdOf(bogus).ok());
}

TEST_F(GroupSpaceTest, VariantsOfTwoAttributeGroup) {
  // The paper's Section 3.1 example with ethnicity/gender: variants of
  // (Black, Male) on gender = {(Black, Female)}; on ethnicity =
  // {(Asian, Male), (White, Male)}.
  GroupId black_male = Id({{0, 1}, {1, 0}});
  std::vector<GroupId> gender_variants = space_->Variants(black_male, 1);
  ASSERT_EQ(gender_variants.size(), 1u);
  EXPECT_EQ(space_->label(gender_variants[0]).DisplayName(schema_),
            "Black Female");

  std::vector<GroupId> eth_variants = space_->Variants(black_male, 0);
  ASSERT_EQ(eth_variants.size(), 2u);
  std::set<std::string> names;
  for (GroupId g : eth_variants) {
    names.insert(space_->label(g).DisplayName(schema_));
  }
  EXPECT_TRUE(names.count("Asian Male"));
  EXPECT_TRUE(names.count("White Male"));
}

TEST_F(GroupSpaceTest, VariantsOnUnconstrainedAttributeAreEmpty) {
  GroupId female = Id({{1, 1}});
  EXPECT_TRUE(space_->Variants(female, 0).empty());
}

TEST_F(GroupSpaceTest, ComparablesOfBlackFemale) {
  // comparable("Black Female") = {Black Male, Asian Female, White Female}.
  GroupId black_female = Id({{0, 1}, {1, 1}});
  const std::vector<GroupId>& comp = space_->Comparables(black_female);
  std::set<std::string> names;
  for (GroupId g : comp) names.insert(space_->label(g).DisplayName(schema_));
  EXPECT_EQ(names, (std::set<std::string>{"Black Male", "Asian Female",
                                          "White Female"}));
}

TEST_F(GroupSpaceTest, ComparablesOfSingleAttributeGroup) {
  // comparable("Male") = {"Female"}.
  GroupId male = Id({{1, 0}});
  const std::vector<GroupId>& comp = space_->Comparables(male);
  ASSERT_EQ(comp.size(), 1u);
  EXPECT_EQ(space_->label(comp[0]).DisplayName(schema_), "Female");
}

TEST_F(GroupSpaceTest, ComparablesNeverContainSelf) {
  for (size_t g = 0; g < space_->num_groups(); ++g) {
    for (GroupId other : space_->Comparables(static_cast<GroupId>(g))) {
      EXPECT_NE(other, static_cast<GroupId>(g));
    }
  }
}

TEST_F(GroupSpaceTest, ComparabilityIsSymmetric) {
  for (size_t g = 0; g < space_->num_groups(); ++g) {
    for (GroupId other : space_->Comparables(static_cast<GroupId>(g))) {
      const std::vector<GroupId>& back = space_->Comparables(other);
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<GroupId>(g)) != back.end());
    }
  }
}

TEST_F(GroupSpaceTest, FindByDisplayName) {
  Result<GroupId> g = space_->FindByDisplayName("Asian Female");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(space_->label(*g).DisplayName(schema_), "Asian Female");
}

TEST_F(GroupSpaceTest, FindByDisplayNameIsCaseAndOrderInsensitive) {
  Result<GroupId> a = space_->FindByDisplayName("asian female");
  Result<GroupId> b = space_->FindByDisplayName("Female Asian");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(GroupSpaceTest, FindByDisplayNameUnknownFails) {
  EXPECT_FALSE(space_->FindByDisplayName("Martian").ok());
}

TEST_F(GroupSpaceTest, MembersAmongFiltersPopulation) {
  std::vector<Demographics> population = {
      {0, 1},  // Asian Female
      {1, 0},  // Black Male
      {0, 0},  // Asian Male
      {0, 1},  // Asian Female
  };
  GroupId asian_female = Id({{0, 0}, {1, 1}});
  EXPECT_EQ(space_->MembersAmong(asian_female, population),
            (std::vector<size_t>{0, 3}));
  GroupId asian = Id({{0, 0}});
  EXPECT_EQ(space_->MembersAmong(asian, population),
            (std::vector<size_t>{0, 2, 3}));
}

TEST(GroupSpaceEnumerationTest, RejectsEmptySchema) {
  AttributeSchema schema;
  EXPECT_FALSE(GroupSpace::Enumerate(schema).ok());
}

TEST(GroupSpaceEnumerationTest, SingleAttributeSpace) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  Result<GroupSpace> space = GroupSpace::Enumerate(schema);
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->num_groups(), 2u);
}

TEST(GroupSpaceEnumerationTest, EnumerateUpToBoundsConjunctionSize) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("a", {"x", "y"}).ok());
  ASSERT_TRUE(schema.AddAttribute("b", {"x", "y", "z"}).ok());
  ASSERT_TRUE(schema.AddAttribute("c", {"x", "y"}).ok());
  // Singles only: 2 + 3 + 2 = 7 groups.
  GroupSpace singles = *GroupSpace::EnumerateUpTo(schema, 1);
  EXPECT_EQ(singles.num_groups(), 7u);
  for (size_t g = 0; g < singles.num_groups(); ++g) {
    EXPECT_EQ(singles.label(static_cast<GroupId>(g)).size(), 1u);
  }
  // Up to pairs: 7 + (2·3 + 2·2 + 3·2) = 23.
  GroupSpace pairs = *GroupSpace::EnumerateUpTo(schema, 2);
  EXPECT_EQ(pairs.num_groups(), 23u);
  // max >= attribute count degenerates to the full enumeration.
  GroupSpace full = *GroupSpace::EnumerateUpTo(schema, 3);
  EXPECT_EQ(full.num_groups(), GroupSpace::Enumerate(schema)->num_groups());
}

TEST(GroupSpaceEnumerationTest, RestrictedSpaceClosedUnderComparables) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("a", {"x", "y"}).ok());
  ASSERT_TRUE(schema.AddAttribute("b", {"x", "y", "z"}).ok());
  ASSERT_TRUE(schema.AddAttribute("c", {"x", "y"}).ok());
  GroupSpace space = *GroupSpace::EnumerateUpTo(schema, 2);
  for (size_t g = 0; g < space.num_groups(); ++g) {
    size_t arity = space.label(static_cast<GroupId>(g)).size();
    const std::vector<GroupId>& comp =
        space.Comparables(static_cast<GroupId>(g));
    EXPECT_FALSE(comp.empty());
    for (GroupId other : comp) {
      EXPECT_EQ(space.label(other).size(), arity);
    }
  }
}

TEST(GroupSpaceEnumerationTest, EnumerateUpToRejectsZero) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("a", {"x", "y"}).ok());
  EXPECT_FALSE(GroupSpace::EnumerateUpTo(schema, 0).ok());
}

TEST(GroupSpaceEnumerationTest, ThreeAttributeCount) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("a", {"x", "y"}).ok());
  ASSERT_TRUE(schema.AddAttribute("b", {"x", "y", "z"}).ok());
  ASSERT_TRUE(schema.AddAttribute("c", {"x"}).ok());
  Result<GroupSpace> space = GroupSpace::Enumerate(schema);
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->num_groups(), 3u * 4u * 2u - 1u);
}

}  // namespace
}  // namespace fairjob
