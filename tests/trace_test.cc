#include "common/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/unfairness_cube.h"

namespace fairjob {
namespace {

// The tracer is a process-global: tests enable it, exercise spans, then
// disable and clear so later tests start from a clean slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Reset();
    Tracer::Global().SetEnabled(true);
  }
  void TearDown() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Reset();
  }
};

TEST_F(TraceTest, SpanRecordsBalancedBeginEnd) {
  { TraceSpan span("unit_span", "test"); }
  std::vector<Tracer::Event> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "unit_span");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
}

TEST_F(TraceTest, NestedSpansAreLifoOrdered) {
  {
    TraceSpan outer("outer", "test");
    TraceSpan inner("inner", "test");
  }
  std::vector<Tracer::Event> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_STREQ(events[3].name, "outer");
  EXPECT_EQ(events[3].phase, 'E');
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().SetEnabled(false);
  { TraceSpan span("ghost", "test"); }
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

TEST_F(TraceTest, SpanStartedWhileDisabledStaysInert) {
  Tracer::Global().SetEnabled(false);
  {
    TraceSpan span("half", "test");
    // Enabling mid-span must not produce a lone end event.
    Tracer::Global().SetEnabled(true);
  }
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

TEST_F(TraceTest, ResetDropsEventsButKeepsRecording) {
  { TraceSpan span("before", "test"); }
  Tracer::Global().Reset();
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
  { TraceSpan span("after", "test"); }
  std::vector<Tracer::Event> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "after");
}

TEST_F(TraceTest, ToJsonHasChromeTraceShape) {
  { TraceSpan span("json_span", "test"); }
  std::string json = Tracer::Global().ToJson();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
}

TEST(ScopedTimerTest, FeedsHistogramWhenEnabled) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  LatencyHistogram* h = registry.histogram("test.timer_us");
  { ScopedTimer timer(h); }
  EXPECT_EQ(h->Aggregate().count, 1u);
}

TEST(ScopedTimerTest, InertWhenDisabledOrNull) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.histogram("test.timer_us");
  { ScopedTimer timer(h); }        // registry disabled
  { ScopedTimer timer(nullptr); }  // no histogram at all
  EXPECT_EQ(h->Aggregate().count, 0u);
}

// Golden shape: a traced cube build emits well-formed Chrome trace JSON
// whose begin/end events balance per span name, with one column span per
// (query, location) cell.
TEST_F(TraceTest, TracedMarketplaceBuildEmitsBalancedTimeline) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black"}).ok());
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  GroupSpace space = *GroupSpace::Enumerate(schema);
  MarketplaceDataset data(schema);
  for (int w = 0; w < 8; ++w) {
    ASSERT_TRUE(data.AddWorker("w" + std::to_string(w),
                               {static_cast<ValueId>(w % 2),
                                static_cast<ValueId>((w / 2) % 2)})
                    .ok());
  }
  constexpr size_t kQueries = 2;
  constexpr size_t kLocations = 3;
  for (size_t q = 0; q < kQueries; ++q) {
    data.queries().GetOrAdd("q" + std::to_string(q));
    for (size_t l = 0; l < kLocations; ++l) {
      data.locations().GetOrAdd("l" + std::to_string(l));
      MarketRanking ranking;
      for (int w = 0; w < 8; ++w) ranking.workers.push_back(w);
      ASSERT_TRUE(data.SetRanking(static_cast<QueryId>(q),
                                  static_cast<LocationId>(l),
                                  std::move(ranking))
                      .ok());
    }
  }

  Result<UnfairnessCube> cube =
      BuildMarketplaceCube(data, space, MarketMeasure::kEmd, {}, {}, 1);
  ASSERT_TRUE(cube.ok());

  std::vector<Tracer::Event> events = Tracer::Global().Snapshot();
  ASSERT_FALSE(events.empty());
  std::map<std::string, int> begins;
  std::map<std::string, int> ends;
  int depth = 0;
  for (const Tracer::Event& e : events) {
    if (e.phase == 'B') {
      ++begins[e.name];
      ++depth;
    } else {
      ASSERT_EQ(e.phase, 'E');
      ++ends[e.name];
      --depth;
    }
    ASSERT_GE(depth, 0);  // an end never precedes its begin (serial build)
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(begins, ends);  // per-name balance
  EXPECT_EQ(begins["BuildMarketplaceCube"], 1);
  EXPECT_EQ(begins["market_column"],
            static_cast<int>(kQueries * kLocations));

  // The exported JSON is loadable by chrome://tracing: one object per event,
  // equal counts of begin and end markers.
  std::string json = Tracer::Global().ToJson();
  size_t b_count = 0;
  size_t e_count = 0;
  for (size_t at = json.find("\"ph\": \"B\""); at != std::string::npos;
       at = json.find("\"ph\": \"B\"", at + 1)) {
    ++b_count;
  }
  for (size_t at = json.find("\"ph\": \"E\""); at != std::string::npos;
       at = json.find("\"ph\": \"E\"", at + 1)) {
    ++e_count;
  }
  EXPECT_EQ(b_count, events.size() / 2);
  EXPECT_EQ(b_count, e_count);
}

}  // namespace
}  // namespace fairjob
