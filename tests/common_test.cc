#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/virtual_clock.h"

namespace fairjob {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kIOError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Doubled(Result<int> in) {
  FAIRJOB_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  Result<int> err = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    double d = rng.NextDouble(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, CategoricalAllZeroReturnsFirst) {
  Rng rng(23);
  EXPECT_EQ(rng.NextCategorical({0.0, 0.0}), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continuation.
  Rng parent_copy(31);
  parent_copy.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.NextU32() == parent.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

// --- string_util ---------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, SplitSingleToken) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, SplitEmptyString) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLower("AsIan FeMALE"), "asian female");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("yard work jobs", "yard"));
  EXPECT_FALSE(StartsWith("ya", "yard"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.4567, 3), "0.457");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(StringUtilTest, PadRight) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
}

// --- VirtualClock ---------------------------------------------------------------

TEST(VirtualClockTest, StartsAtConfiguredTime) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowSeconds(), 100);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  clock.AdvanceSeconds(10);
  clock.AdvanceSeconds(5);
  EXPECT_EQ(clock.NowSeconds(), 15);
}

TEST(VirtualClockTest, NeverGoesBackwards) {
  VirtualClock clock(50);
  clock.AdvanceSeconds(-20);
  EXPECT_EQ(clock.NowSeconds(), 50);
  clock.AdvanceTo(30);
  EXPECT_EQ(clock.NowSeconds(), 50);
  clock.AdvanceTo(60);
  EXPECT_EQ(clock.NowSeconds(), 60);
}

TEST(VirtualClockTest, MicrosecondApiTracksSecondsApi) {
  VirtualClock clock(2);
  EXPECT_EQ(clock.NowMicros(), 2'000'000);
  clock.AdvanceMicros(1'500'000);
  EXPECT_EQ(clock.NowMicros(), 3'500'000);
  EXPECT_EQ(clock.NowSeconds(), 3);  // truncating division, not rounding
  clock.AdvanceMicros(-10);          // ignored, like AdvanceSeconds
  EXPECT_EQ(clock.NowMicros(), 3'500'000);
  clock.AdvanceToMicros(3'000'000);  // in the past: no-op
  EXPECT_EQ(clock.NowMicros(), 3'500'000);
  clock.AdvanceToMicros(4'000'001);
  EXPECT_EQ(clock.NowMicros(), 4'000'001);
}

TEST(VirtualClockTest, UsableThroughTheClockInterface) {
  VirtualClock virtual_clock(7);
  const Clock* clock = &virtual_clock;
  EXPECT_EQ(clock->NowMicros(), 7'000'000);
  virtual_clock.AdvanceMicros(5);
  EXPECT_EQ(clock->NowMicros(), 7'000'005);
}

TEST(RealClockTest, IsMonotoneNonDecreasing) {
  const Clock* clock = Clock::Real();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_LE(a, b);
  EXPECT_EQ(clock, Clock::Real());  // one shared singleton
}

}  // namespace
}  // namespace fairjob
