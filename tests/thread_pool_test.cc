#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fairjob {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  Status s = pool.ParallelFor(hits.size(), 4, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, Parallelism1RunsInlineInOrder) {
  ThreadPool pool(4);
  std::vector<size_t> order;
  std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  Status s = pool.ParallelFor(16, 1, [&](size_t i) {
    order.push_back(i);  // safe: serial fallback, no synchronization needed
    all_on_caller &= std::this_thread::get_id() == caller;
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(all_on_caller);
}

TEST(ThreadPoolTest, ZeroThreadPoolStillCompletes) {
  ThreadPool pool(0);
  std::atomic<int> count{0};
  Status s = pool.ParallelFor(10, 8, [&](size_t) {
    count.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, PropagatesFirstError) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  Status s = pool.ParallelFor(1000, 4, [&](size_t i) -> Status {
    ran.fetch_add(1);
    if (i == 3) return Status::InvalidArgument("boom at 3");
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Failure cancels unclaimed work: nowhere near all 1000 indices ran.
  // (Claimed-but-not-started indices may still slip through.)
  EXPECT_LT(ran.load(), 1000);
}

TEST(ThreadPoolTest, ErrorInSerialFallbackStopsImmediately) {
  ThreadPool pool(2);
  int ran = 0;
  Status s = pool.ParallelFor(100, 1, [&](size_t i) -> Status {
    ++ran;
    if (i == 5) return Status::Internal("stop");
    return Status::OK();
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(ran, 6);
}

TEST(ThreadPoolTest, ReusableAcrossManySubmissions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    size_t n = 1 + static_cast<size_t>(round) * 7 % 64;
    Status s = pool.ParallelFor(n, 3, [&](size_t i) {
      sum.fetch_add(i + 1);
      return Status::OK();
    });
    ASSERT_TRUE(s.ok()) << "round " << round;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, RecoversAfterFailedSubmission) {
  ThreadPool pool(2);
  Status bad = pool.ParallelFor(
      8, 2, [&](size_t) -> Status { return Status::IOError("down"); });
  ASSERT_FALSE(bad.ok());
  std::atomic<int> count{0};
  Status good = pool.ParallelFor(8, 2, [&](size_t) {
    count.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  Status s = pool.ParallelFor(8, 4, [&](size_t) {
    return pool.ParallelFor(8, 4, [&](size_t) {
      total.fetch_add(1);
      return Status::OK();
    });
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, ParallelForPairsCoversTheGrid) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5 * 7);
  for (auto& h : hits) h.store(0);
  Status s = pool.ParallelForPairs(5, 7, 4, [&](size_t i, size_t j) {
    hits[i * 7 + j].fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  std::atomic<int> count{0};
  Status s = a.ParallelFor(32, 4, [&](size_t) {
    count.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count.load(), 32);
}

}  // namespace
}  // namespace fairjob
