// Concurrency stress for the query-serving layer: many threads hammering a
// small key space through the sharded cache and single-flight layer. Run
// with -DFAIRJOB_SANITIZE=thread in CI; the assertions here are about
// torn results (answers must stay bit-equal to precomputed direct solves),
// exact stats accounting, and single-flight coalescing.

#include "serve/quantification_service.h"

#include <barrier>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/group_space.h"
#include "core/quantification.h"
#include "serve/incremental.h"

namespace fairjob {
namespace {

constexpr size_t kThreads = 8;

std::unique_ptr<UnfairnessCube> MakeCube(uint64_t seed) {
  auto cube = std::make_unique<UnfairnessCube>(
      *UnfairnessCube::Make({1, 2, 3, 4, 5}, {10, 11, 12}, {20, 21}));
  Rng rng(seed);
  for (size_t g = 0; g < 5; ++g) {
    for (size_t q = 0; q < 3; ++q) {
      for (size_t l = 0; l < 2; ++l) {
        cube->Set(g, q, l, rng.NextDouble());
      }
    }
  }
  return cube;
}

// A small key space mixing algorithms and targets, with the expected answer
// for each key precomputed serially — the oracle for torn-result checks.
struct KeySpace {
  std::vector<QuantificationRequest> requests;
  std::vector<QuantificationResult> expected;
};

KeySpace MakeKeySpace(const UnfairnessCube& cube, const IndexSet& indices) {
  KeySpace space;
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
        TopKAlgorithm::kNRA, TopKAlgorithm::kScan}) {
    for (Dimension target :
         {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
      QuantificationRequest request;
      request.target = target;
      request.k = 2;
      request.algorithm = algorithm;
      request.missing = MissingCellPolicy::kZero;
      space.requests.push_back(request);
    }
  }
  for (const QuantificationRequest& request : space.requests) {
    Result<QuantificationResult> direct =
        SolveQuantification(cube, indices, request);
    EXPECT_TRUE(direct.ok()) << direct.status().ToString();
    space.expected.push_back(*direct);
  }
  return space;
}

bool SameAnswers(const QuantificationResult& a, const QuantificationResult& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i].id != b.answers[i].id) return false;
    if (a.answers[i].value != b.answers[i].value) return false;
  }
  return true;
}

TEST(ServeStressTest, ManyThreadsSmallKeySpaceNoTornResults) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/31);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Capacity below the key space (12 keys, 6 entries over 2 shards) so the
  // cache churns: hits, misses, evictions and flights all happen at once.
  QuantificationService::Options options;
  options.cache_capacity = 6;
  options.cache_shards = 2;
  QuantificationService service(cube.get(), &indices, options);

  constexpr size_t kIterations = 500;
  std::barrier start(kThreads);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      start.arrive_and_wait();
      for (size_t i = 0; i < kIterations; ++i) {
        size_t key = rng.NextBelow(space.requests.size());
        Result<QuantificationResult> served =
            service.Answer(space.requests[key]);
        if (!served.ok() || !SameAnswers(*served, space.expected[key])) {
          ++torn_per_thread[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }

  // Exact accounting: every request was either a cache hit or a cache miss,
  // and every miss was resolved by exactly one leader or coalesced onto one.
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * kIterations);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests);
  EXPECT_EQ(stats.computations + stats.coalesced, stats.cache_misses);
  auto cache = service.cache_stats();
  EXPECT_EQ(cache.hits + cache.misses, cache.lookups);
  EXPECT_EQ(cache.lookups, stats.requests);
}

TEST(ServeStressTest, SingleFlightCoalescesConcurrentIdenticalRequests) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/47);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Cache off: without single-flight every request would recompute. The
  // hook widens the window deterministically — the leader sleeps after
  // claiming the flight, so the other threads must find it in flight.
  QuantificationService::Options options;
  options.cache_capacity = 0;
  options.compute_started_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  QuantificationService service(cube.get(), &indices, options);

  std::barrier start(kThreads);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      Result<QuantificationResult> served = service.Answer(space.requests[0]);
      if (!served.ok() || !SameAnswers(*served, space.expected[0])) {
        ++torn_per_thread[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads);
  // The single-flight layer must have coalesced at least some of the burst:
  // strictly fewer computations than requests, and every request accounted
  // for as either a leader or a follower.
  EXPECT_LT(stats.computations, stats.requests);
  EXPECT_GE(stats.coalesced, 1u);
  EXPECT_EQ(stats.computations + stats.coalesced, stats.requests);
}

TEST(ServeStressTest, ConcurrentBatchesAgreeWithOracle) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/59);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService::Options options;
  options.cache_capacity = 32;
  options.cache_shards = 4;
  QuantificationService service(cube.get(), &indices, options);

  std::barrier start(kThreads);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread's batch covers the whole key space in a rotated order,
      // with duplicates appended to exercise in-batch dedup.
      std::vector<QuantificationRequest> batch;
      std::vector<size_t> oracle;
      for (size_t i = 0; i < space.requests.size(); ++i) {
        size_t key = (i + t) % space.requests.size();
        batch.push_back(space.requests[key]);
        oracle.push_back(key);
      }
      batch.push_back(space.requests[t % space.requests.size()]);
      oracle.push_back(t % space.requests.size());
      start.arrive_and_wait();
      std::vector<Result<QuantificationResult>> results =
          service.AnswerBatch(batch);
      if (results.size() != batch.size()) {
        ++torn_per_thread[t];
        return;
      }
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok() ||
            !SameAnswers(*results[i], space.expected[oracle[i]])) {
          ++torn_per_thread[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests);
}

TEST(ServeStressTest, RebuildUnderLoadServesOneOfTheTwoBackends) {
  std::unique_ptr<UnfairnessCube> cube_a = MakeCube(/*seed=*/61);
  std::unique_ptr<UnfairnessCube> cube_b = MakeCube(/*seed=*/67);
  IndexSet indices_a = IndexSet::Build(*cube_a);
  IndexSet indices_b = IndexSet::Build(*cube_b);
  KeySpace space_a = MakeKeySpace(*cube_a, indices_a);
  KeySpace space_b = MakeKeySpace(*cube_b, indices_b);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService::Options options;
  options.cache_capacity = 16;
  QuantificationService service(cube_a.get(), &indices_a, options);

  // Snapshot flips are one pointer swap — they cannot be starved by reader
  // load — so the bounded iteration count is only about test runtime.
  constexpr size_t kIterations = 300;
  std::barrier start(kThreads + 1);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2000 + t);
      start.arrive_and_wait();
      for (size_t i = 0; i < kIterations; ++i) {
        size_t key = rng.NextBelow(space_a.requests.size());
        Result<QuantificationResult> served =
            service.Answer(space_a.requests[key]);
        // Linearizability across swaps: the answer must exactly match one
        // of the two backends' oracles — never a blend.
        if (!served.ok() || (!SameAnswers(*served, space_a.expected[key]) &&
                             !SameAnswers(*served, space_b.expected[key]))) {
          ++torn_per_thread[t];
        }
        std::this_thread::yield();
      }
    });
  }
  start.arrive_and_wait();
  for (int swap = 0; swap < 20; ++swap) {
    if (swap % 2 == 0) {
      service.SetBackend(cube_b.get(), &indices_b);
    } else {
      service.SetBackend(cube_a.get(), &indices_a);
    }
    std::this_thread::yield();
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }
  EXPECT_EQ(service.stats().errors, 0u);
}

// --- RCU flip stress ---------------------------------------------------------
// Readers hammer Answer/AnswerBatch while a writer loops incremental upserts
// and snapshot flips. Every served answer must exactly match the oracle of
// ONE of the writer's published snapshots (no torn mixes), the stats must
// account exactly, and after the dust settles entries over untouched columns
// must still be served from cache.

constexpr size_t kStressQueries = 4;
constexpr size_t kStressLocations = 3;
constexpr size_t kStressWorkers = 12;
constexpr size_t kFlips = 10;

MarketRanking StressRanking(Rng& rng) {
  MarketRanking ranking;
  std::vector<WorkerId> pool(kStressWorkers);
  for (size_t w = 0; w < kStressWorkers; ++w) {
    pool[w] = static_cast<WorkerId>(w);
  }
  rng.Shuffle(pool);
  size_t length = 3 + rng.NextBelow(kStressWorkers - 3);
  ranking.workers.assign(pool.begin(), pool.begin() + length);
  return ranking;
}

MarketplaceDataset StressMarketplace(const AttributeSchema& schema,
                                     uint64_t seed) {
  MarketplaceDataset data(schema);
  Rng rng(seed);
  for (size_t w = 0; w < kStressWorkers; ++w) {
    EXPECT_TRUE(data.AddWorker("w" + std::to_string(w),
                               {static_cast<int32_t>(rng.NextBelow(2))})
                    .ok());
  }
  for (size_t q = 0; q < kStressQueries; ++q) {
    data.queries().GetOrAdd("q" + std::to_string(q));
  }
  for (size_t l = 0; l < kStressLocations; ++l) {
    data.locations().GetOrAdd("l" + std::to_string(l));
  }
  for (size_t q = 0; q < kStressQueries; ++q) {
    for (size_t l = 0; l < kStressLocations; ++l) {
      EXPECT_TRUE(data.SetRanking(static_cast<QueryId>(q),
                                  static_cast<LocationId>(l),
                                  StressRanking(rng))
                      .ok());
    }
  }
  return data;
}

// The writer's flip schedule, fixed up front so the oracle can be computed
// serially before the stress and the stressed maintainer replays it exactly.
std::vector<CrawlBatch> StressBatches(uint64_t seed) {
  Rng rng(seed);
  std::vector<CrawlBatch> batches(kFlips);
  for (CrawlBatch& batch : batches) {
    size_t rows = 1 + rng.NextBelow(2);
    for (size_t r = 0; r < rows; ++r) {
      CrawlBatchRow row;
      row.query = static_cast<QueryId>(rng.NextBelow(kStressQueries));
      row.location = static_cast<LocationId>(rng.NextBelow(kStressLocations));
      row.ranking = StressRanking(rng);
      batch.rows.push_back(std::move(row));
    }
  }
  return batches;
}

TEST(ServeStressTest, RcuFlipsUnderIncrementalUpsertsServeUntornAnswers) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  GroupSpace space = *GroupSpace::Enumerate(schema);
  std::vector<CrawlBatch> batches = StressBatches(/*seed=*/73);

  // One group-target request per (query, location) column plus one
  // unrestricted request — the key space readers draw from.
  std::vector<QuantificationRequest> requests;
  for (size_t q = 0; q < kStressQueries; ++q) {
    for (size_t l = 0; l < kStressLocations; ++l) {
      QuantificationRequest request;
      request.target = Dimension::kGroup;
      request.k = 2;
      request.missing = MissingCellPolicy::kZero;
      request.agg1 = AxisSelector::Single(q);
      request.agg2 = AxisSelector::Single(l);
      requests.push_back(request);
    }
  }
  {
    QuantificationRequest full;
    full.target = Dimension::kGroup;
    full.k = 2;
    full.missing = MissingCellPolicy::kZero;
    requests.push_back(full);
  }

  // Serial pass: replay the whole flip schedule once to precompute, per
  // published snapshot version, the expected answer of every request.
  std::vector<std::vector<QuantificationResult>> oracle;
  {
    Result<MarketplaceCubeMaintainer> made = MarketplaceCubeMaintainer::Make(
        StressMarketplace(schema, /*seed=*/17), space,
        MarketMeasure::kExposure);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    MarketplaceCubeMaintainer maintainer = std::move(*made);
    auto record = [&] {
      std::vector<QuantificationResult> expected;
      for (const QuantificationRequest& request : requests) {
        Result<QuantificationResult> direct =
            SolveQuantification(maintainer.snapshot()->cube(),
                                maintainer.snapshot()->indices(), request);
        ASSERT_TRUE(direct.ok()) << direct.status().ToString();
        expected.push_back(std::move(*direct));
      }
      oracle.push_back(std::move(expected));
    };
    record();
    for (const CrawlBatch& batch : batches) {
      ASSERT_TRUE(maintainer.UpsertCrawlBatch(batch).ok());
      record();
    }
  }
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Stressed pass: identical dataset and schedule, now with readers racing
  // the flips.
  Result<MarketplaceCubeMaintainer> made = MarketplaceCubeMaintainer::Make(
      StressMarketplace(schema, /*seed=*/17), space, MarketMeasure::kExposure);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  MarketplaceCubeMaintainer maintainer = std::move(*made);
  QuantificationService::Options options;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  QuantificationService service(maintainer.snapshot(), options);

  auto matches_some_version = [&](size_t key,
                                  const QuantificationResult& served) {
    for (const std::vector<QuantificationResult>& version : oracle) {
      if (SameAnswers(served, version[key])) return true;
    }
    return false;
  };

  constexpr size_t kIterations = 400;
  std::barrier start(kThreads + 1);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(3000 + t);
      start.arrive_and_wait();
      for (size_t i = 0; i < kIterations; ++i) {
        if (rng.NextBernoulli(0.25)) {
          // Batch path: a handful of keys answered against ONE snapshot.
          std::vector<QuantificationRequest> batch;
          std::vector<size_t> keys;
          size_t count = 2 + rng.NextBelow(3);
          for (size_t b = 0; b < count; ++b) {
            size_t key = rng.NextBelow(requests.size());
            batch.push_back(requests[key]);
            keys.push_back(key);
          }
          std::vector<Result<QuantificationResult>> results =
              service.AnswerBatch(batch);
          if (results.size() != batch.size()) {
            ++torn_per_thread[t];
            continue;
          }
          for (size_t b = 0; b < results.size(); ++b) {
            if (!results[b].ok() ||
                !matches_some_version(keys[b], *results[b])) {
              ++torn_per_thread[t];
            }
          }
        } else {
          size_t key = rng.NextBelow(requests.size());
          Result<QuantificationResult> served = service.Answer(requests[key]);
          if (!served.ok() || !matches_some_version(key, *served)) {
            ++torn_per_thread[t];
          }
        }
      }
    });
  }

  // Writer: replay the schedule, publishing a flip after every upsert that
  // produced a new snapshot.
  start.arrive_and_wait();
  size_t published = 0;
  for (const CrawlBatch& batch : batches) {
    Result<UpsertReport> report = maintainer.UpsertCrawlBatch(batch);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (report->published_new_snapshot) {
      service.SetSnapshot(maintainer.snapshot());
      ++published;
    }
    std::this_thread::yield();
  }
  for (std::thread& reader : readers) reader.join();

  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.snapshot_flips, published);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests);
  EXPECT_EQ(stats.computations + stats.coalesced, stats.cache_misses);

  // Quiesced epilogue: warm every per-column entry on the final snapshot,
  // then upsert exactly one column and flip. The C − 1 untouched columns'
  // entries must survive — served as hits, zero recomputation.
  const size_t kColumns = kStressQueries * kStressLocations;
  for (size_t key = 0; key < kColumns; ++key) {
    ASSERT_TRUE(service.Answer(requests[key]).ok());
  }
  QuantificationService::Stats warm = service.stats();
  Rng rng(/*seed=*/97);
  UpsertReport report;
  do {  // loop until the random ranking genuinely changes the column
    CrawlBatch final_batch;
    final_batch.rows.push_back(CrawlBatchRow{0, 0, StressRanking(rng)});
    Result<UpsertReport> applied = maintainer.UpsertCrawlBatch(final_batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    report = *applied;
  } while (report.columns_changed == 0);
  ASSERT_EQ(report.columns_changed, 1u);
  service.SetSnapshot(maintainer.snapshot());
  for (size_t key = 0; key < kColumns; ++key) {
    ASSERT_TRUE(service.Answer(requests[key]).ok());
  }
  QuantificationService::Stats survived = service.stats();
  EXPECT_EQ(survived.cache_hits, warm.cache_hits + (kColumns - 1));
  EXPECT_EQ(survived.cache_misses, warm.cache_misses + 1);
  EXPECT_EQ(survived.computations, warm.computations + 1);
}

// --- Overload phase ----------------------------------------------------------
// Offered load far above capacity (one slow permit, one queue slot, a tight
// deadline) with the cache ON: the shed path runs concurrently with cache
// fills. Afterwards, quiesced, every key must still serve the exact oracle
// answer — sheds and rejections must never poison the cache with partial or
// torn values.

TEST(ServeStressTest, OverloadShedsTypedAndNeverPoisonsCache) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/79);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService::Options options;
  options.cache_capacity = 32;
  options.max_inflight = 1;
  options.max_queue_depth = 1;
  options.max_followers_per_flight = 1;
  options.default_deadline_micros = 2000;
  options.compute_started_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  QuantificationService service(cube.get(), &indices, options);

  constexpr size_t kIterations = 40;
  std::barrier start(kThreads);
  std::vector<size_t> bad_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7000 + t);
      start.arrive_and_wait();
      for (size_t i = 0; i < kIterations; ++i) {
        size_t key = rng.NextBelow(space.requests.size());
        Result<QuantificationResult> served =
            service.Answer(space.requests[key]);
        if (served.ok()) {
          // An answered request is bit-exact, overload or not.
          if (!SameAnswers(*served, space.expected[key])) ++bad_per_thread[t];
        } else if (served.status().code() != StatusCode::kUnavailable &&
                   served.status().code() != StatusCode::kDeadlineExceeded) {
          // Anything non-OK must be one of the two typed overload outcomes.
          ++bad_per_thread[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(bad_per_thread[t], 0u) << "thread " << t;
  }

  QuantificationService::Stats overload = service.stats();
  EXPECT_EQ(overload.requests, kThreads * kIterations);
  EXPECT_EQ(overload.errors, 0u);
  EXPECT_EQ(overload.admitted + overload.shed_deadline +
                overload.rejected_queue + overload.rejected_followers,
            overload.requests);
  EXPECT_EQ(overload.cache_hits + overload.cache_misses, overload.admitted);
  EXPECT_EQ(overload.computations + overload.coalesced, overload.cache_misses);

  // Quiesced epilogue: whatever mixture of hits, sheds and rejections the
  // overload produced, every key now answers the oracle exactly — a cache
  // fill racing a shed never left a wrong value behind.
  for (size_t key = 0; key < space.requests.size(); ++key) {
    Result<QuantificationResult> served = service.Answer(space.requests[key]);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_TRUE(SameAnswers(*served, space.expected[key])) << "key " << key;
  }
}

}  // namespace
}  // namespace fairjob
