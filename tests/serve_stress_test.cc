// Concurrency stress for the query-serving layer: many threads hammering a
// small key space through the sharded cache and single-flight layer. Run
// with -DFAIRJOB_SANITIZE=thread in CI; the assertions here are about
// torn results (answers must stay bit-equal to precomputed direct solves),
// exact stats accounting, and single-flight coalescing.

#include "serve/quantification_service.h"

#include <barrier>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/quantification.h"

namespace fairjob {
namespace {

constexpr size_t kThreads = 8;

std::unique_ptr<UnfairnessCube> MakeCube(uint64_t seed) {
  auto cube = std::make_unique<UnfairnessCube>(
      *UnfairnessCube::Make({1, 2, 3, 4, 5}, {10, 11, 12}, {20, 21}));
  Rng rng(seed);
  for (size_t g = 0; g < 5; ++g) {
    for (size_t q = 0; q < 3; ++q) {
      for (size_t l = 0; l < 2; ++l) {
        cube->Set(g, q, l, rng.NextDouble());
      }
    }
  }
  return cube;
}

// A small key space mixing algorithms and targets, with the expected answer
// for each key precomputed serially — the oracle for torn-result checks.
struct KeySpace {
  std::vector<QuantificationRequest> requests;
  std::vector<QuantificationResult> expected;
};

KeySpace MakeKeySpace(const UnfairnessCube& cube, const IndexSet& indices) {
  KeySpace space;
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
        TopKAlgorithm::kNRA, TopKAlgorithm::kScan}) {
    for (Dimension target :
         {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
      QuantificationRequest request;
      request.target = target;
      request.k = 2;
      request.algorithm = algorithm;
      request.missing = MissingCellPolicy::kZero;
      space.requests.push_back(request);
    }
  }
  for (const QuantificationRequest& request : space.requests) {
    Result<QuantificationResult> direct =
        SolveQuantification(cube, indices, request);
    EXPECT_TRUE(direct.ok()) << direct.status().ToString();
    space.expected.push_back(*direct);
  }
  return space;
}

bool SameAnswers(const QuantificationResult& a, const QuantificationResult& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i].id != b.answers[i].id) return false;
    if (a.answers[i].value != b.answers[i].value) return false;
  }
  return true;
}

TEST(ServeStressTest, ManyThreadsSmallKeySpaceNoTornResults) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/31);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Capacity below the key space (12 keys, 6 entries over 2 shards) so the
  // cache churns: hits, misses, evictions and flights all happen at once.
  QuantificationService::Options options;
  options.cache_capacity = 6;
  options.cache_shards = 2;
  QuantificationService service(cube.get(), &indices, options);

  constexpr size_t kIterations = 500;
  std::barrier start(kThreads);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      start.arrive_and_wait();
      for (size_t i = 0; i < kIterations; ++i) {
        size_t key = rng.NextBelow(space.requests.size());
        Result<QuantificationResult> served =
            service.Answer(space.requests[key]);
        if (!served.ok() || !SameAnswers(*served, space.expected[key])) {
          ++torn_per_thread[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }

  // Exact accounting: every request was either a cache hit or a cache miss,
  // and every miss was resolved by exactly one leader or coalesced onto one.
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * kIterations);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests);
  EXPECT_EQ(stats.computations + stats.coalesced, stats.cache_misses);
  auto cache = service.cache_stats();
  EXPECT_EQ(cache.hits + cache.misses, cache.lookups);
  EXPECT_EQ(cache.lookups, stats.requests);
}

TEST(ServeStressTest, SingleFlightCoalescesConcurrentIdenticalRequests) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/47);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Cache off: without single-flight every request would recompute. The
  // hook widens the window deterministically — the leader sleeps after
  // claiming the flight, so the other threads must find it in flight.
  QuantificationService::Options options;
  options.cache_capacity = 0;
  options.compute_started_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  QuantificationService service(cube.get(), &indices, options);

  std::barrier start(kThreads);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      Result<QuantificationResult> served = service.Answer(space.requests[0]);
      if (!served.ok() || !SameAnswers(*served, space.expected[0])) {
        ++torn_per_thread[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads);
  // The single-flight layer must have coalesced at least some of the burst:
  // strictly fewer computations than requests, and every request accounted
  // for as either a leader or a follower.
  EXPECT_LT(stats.computations, stats.requests);
  EXPECT_GE(stats.coalesced, 1u);
  EXPECT_EQ(stats.computations + stats.coalesced, stats.requests);
}

TEST(ServeStressTest, ConcurrentBatchesAgreeWithOracle) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/59);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService::Options options;
  options.cache_capacity = 32;
  options.cache_shards = 4;
  QuantificationService service(cube.get(), &indices, options);

  std::barrier start(kThreads);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread's batch covers the whole key space in a rotated order,
      // with duplicates appended to exercise in-batch dedup.
      std::vector<QuantificationRequest> batch;
      std::vector<size_t> oracle;
      for (size_t i = 0; i < space.requests.size(); ++i) {
        size_t key = (i + t) % space.requests.size();
        batch.push_back(space.requests[key]);
        oracle.push_back(key);
      }
      batch.push_back(space.requests[t % space.requests.size()]);
      oracle.push_back(t % space.requests.size());
      start.arrive_and_wait();
      std::vector<Result<QuantificationResult>> results =
          service.AnswerBatch(batch);
      if (results.size() != batch.size()) {
        ++torn_per_thread[t];
        return;
      }
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok() ||
            !SameAnswers(*results[i], space.expected[oracle[i]])) {
          ++torn_per_thread[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests);
}

TEST(ServeStressTest, RebuildUnderLoadServesOneOfTheTwoBackends) {
  std::unique_ptr<UnfairnessCube> cube_a = MakeCube(/*seed=*/61);
  std::unique_ptr<UnfairnessCube> cube_b = MakeCube(/*seed=*/67);
  IndexSet indices_a = IndexSet::Build(*cube_a);
  IndexSet indices_b = IndexSet::Build(*cube_b);
  KeySpace space_a = MakeKeySpace(*cube_a, indices_a);
  KeySpace space_b = MakeKeySpace(*cube_b, indices_b);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService::Options options;
  options.cache_capacity = 16;
  QuantificationService service(cube_a.get(), &indices_a, options);

  // Readers run a BOUNDED number of iterations and yield between them: an
  // open-ended stop-flag loop starves SetBackend forever on platforms whose
  // shared_mutex prefers readers (glibc) when requests saturate every core.
  constexpr size_t kIterations = 300;
  std::barrier start(kThreads + 1);
  std::vector<size_t> torn_per_thread(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2000 + t);
      start.arrive_and_wait();
      for (size_t i = 0; i < kIterations; ++i) {
        size_t key = rng.NextBelow(space_a.requests.size());
        Result<QuantificationResult> served =
            service.Answer(space_a.requests[key]);
        // Linearizability across swaps: the answer must exactly match one
        // of the two backends' oracles — never a blend.
        if (!served.ok() || (!SameAnswers(*served, space_a.expected[key]) &&
                             !SameAnswers(*served, space_b.expected[key]))) {
          ++torn_per_thread[t];
        }
        std::this_thread::yield();
      }
    });
  }
  start.arrive_and_wait();
  for (int swap = 0; swap < 20; ++swap) {
    if (swap % 2 == 0) {
      service.SetBackend(cube_b.get(), &indices_b);
    } else {
      service.SetBackend(cube_a.get(), &indices_a);
    }
    std::this_thread::yield();
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(torn_per_thread[t], 0u) << "thread " << t;
  }
  EXPECT_EQ(service.stats().errors, 0u);
}

}  // namespace
}  // namespace fairjob
