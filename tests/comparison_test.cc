#include "core/comparison.h"

#include <gtest/gtest.h>

#include <memory>

namespace fairjob {
namespace {

// The paper's Table 4 scenario: males vs females, broken down by location.
// Overall females are treated less fairly, but the order flips in Oklahoma
// City and Salt Lake City.
class Table4ComparisonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Groups {0=Male, 1=Female}, 1 query, locations {0..3} where 0 and 1 are
    // "ordinary" cities, 2=Oklahoma City, 3=Salt Lake City.
    cube_ = std::make_unique<UnfairnessCube>(
        *UnfairnessCube::Make({0, 1}, {0}, {0, 1, 2, 3}));
    //                      male  female
    double male[4] =   {0.30, 0.35, 0.853, 0.933};
    double female[4] = {0.70, 0.75, 0.732, 0.553};
    for (size_t l = 0; l < 4; ++l) {
      cube_->Set(0, 0, l, male[l]);
      cube_->Set(1, 0, l, female[l]);
    }
  }

  std::unique_ptr<UnfairnessCube> cube_;
};

TEST_F(Table4ComparisonTest, FindsReversedLocations) {
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.r1_pos = 0;  // Male
  request.r2_pos = 1;  // Female
  request.breakdown_dim = Dimension::kLocation;
  Result<ComparisonResult> result = SolveComparison(*cube_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->overall_d1, result->overall_d2);  // females worse overall
  ASSERT_EQ(result->rows.size(), 4u);
  ASSERT_EQ(result->reversed.size(), 2u);
  EXPECT_EQ(result->reversed[0].breakdown_id, 2);
  EXPECT_EQ(result->reversed[1].breakdown_id, 3);
  EXPECT_DOUBLE_EQ(result->reversed[0].d1, 0.853);
  EXPECT_DOUBLE_EQ(result->reversed[0].d2, 0.732);
}

TEST_F(Table4ComparisonTest, SwappingR1R2GivesSameReversedSet) {
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.r1_pos = 1;
  request.r2_pos = 0;
  request.breakdown_dim = Dimension::kLocation;
  Result<ComparisonResult> result = SolveComparison(*cube_, request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->reversed.size(), 2u);
  EXPECT_EQ(result->reversed[0].breakdown_id, 2);
}

TEST_F(Table4ComparisonTest, BreakdownSubsetRestrictsRows) {
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.r1_pos = 0;
  request.r2_pos = 1;
  request.breakdown_dim = Dimension::kLocation;
  request.breakdown = AxisSelector{{0, 2}};
  Result<ComparisonResult> result = SolveComparison(*cube_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
  ASSERT_EQ(result->reversed.size(), 1u);
  EXPECT_EQ(result->reversed[0].breakdown_id, 2);
  // The overall values are computed over the restricted breakdown too.
  EXPECT_NEAR(result->overall_d1, (0.30 + 0.853) / 2.0, 1e-12);
}

TEST_F(Table4ComparisonTest, TiedRowCountsAsDifferentWhenOverallIsStrict) {
  cube_->Set(0, 0, 1, 0.5);
  cube_->Set(1, 0, 1, 0.5);  // exact tie at location 1
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.r1_pos = 0;
  request.r2_pos = 1;
  request.breakdown_dim = Dimension::kLocation;
  Result<ComparisonResult> result = SolveComparison(*cube_, request);
  ASSERT_TRUE(result.ok());
  // Location 1 satisfies d1 >= d2 while overall has d1 < d2: reported.
  bool found = false;
  for (const ComparisonRow& row : result->reversed) {
    if (row.breakdown_id == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(Table4ComparisonTest, ValidatesRequest) {
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.breakdown_dim = Dimension::kGroup;
  request.r1_pos = 0;
  request.r2_pos = 1;
  EXPECT_FALSE(SolveComparison(*cube_, request).ok());  // same dims

  request.breakdown_dim = Dimension::kLocation;
  request.r2_pos = 0;
  EXPECT_FALSE(SolveComparison(*cube_, request).ok());  // r1 == r2

  request.r2_pos = 9;
  EXPECT_FALSE(SolveComparison(*cube_, request).ok());  // out of range

  request.r2_pos = 1;
  request.breakdown = AxisSelector{{17}};
  EXPECT_FALSE(SolveComparison(*cube_, request).ok());  // bad breakdown pos
}

TEST_F(Table4ComparisonTest, UndefinedBreakdownRowsAreSkipped) {
  cube_->Clear(0, 0, 1);  // male value missing at location 1
  cube_->Clear(1, 0, 1);
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.r1_pos = 0;
  request.r2_pos = 1;
  request.breakdown_dim = Dimension::kLocation;
  Result<ComparisonResult> result = SolveComparison(*cube_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST(ComparisonByQueryTest, QueryComparisonWithGroupBreakdown) {
  // Mirror of Table 13: two queries compared, broken down by groups.
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1, 2}, {0, 1}, {0});
  // Query 0 ("lawn mowing") less fair overall, but for group 2 ("White")
  // the order reverses.
  double q0[3] = {0.70, 0.68, 0.552};
  double q1[3] = {0.60, 0.62, 0.569};
  for (size_t g = 0; g < 3; ++g) {
    cube.Set(g, 0, 0, q0[g]);
    cube.Set(g, 1, 0, q1[g]);
  }
  ComparisonRequest request;
  request.compare_dim = Dimension::kQuery;
  request.r1_pos = 0;
  request.r2_pos = 1;
  request.breakdown_dim = Dimension::kGroup;
  Result<ComparisonResult> result = SolveComparison(cube, request);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->overall_d1, result->overall_d2);
  ASSERT_EQ(result->reversed.size(), 1u);
  EXPECT_EQ(result->reversed[0].breakdown_id, 2);
}

TEST(ComputeAggregateUnfairnessTest, MatchesCubeAverage) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0, 1}, {0});
  cube.Set(0, 0, 0, 0.1);
  cube.Set(0, 1, 0, 0.5);
  cube.Set(1, 0, 0, 0.9);
  Result<double> d = ComputeAggregateUnfairness(cube, Dimension::kGroup, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 0.3);

  // Restricted to query position 1 only (other1 = query axis for groups).
  Result<double> restricted = ComputeAggregateUnfairness(
      cube, Dimension::kGroup, 0, AxisSelector::Single(1), {});
  ASSERT_TRUE(restricted.ok());
  EXPECT_DOUBLE_EQ(*restricted, 0.5);
}

TEST(ComputeAggregateUnfairnessTest, UndefinedIsNotFound) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0}, {0});
  cube.Set(0, 0, 0, 0.1);
  Result<double> d = ComputeAggregateUnfairness(cube, Dimension::kGroup, 1);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(ComputeAggregateUnfairnessTest, ValidatesPosition) {
  UnfairnessCube cube = *UnfairnessCube::Make({0}, {0}, {0});
  EXPECT_FALSE(ComputeAggregateUnfairness(cube, Dimension::kGroup, 5).ok());
}

}  // namespace
}  // namespace fairjob
