#include "core/transfer.h"

#include <gtest/gtest.h>

#include <memory>

namespace fairjob {
namespace {

// Two small marketplaces with controllable bias targets. The schema is
// shared (as across the paper's two sites); the biased group differs.
class TransferTest : public ::testing::Test {
 protected:
  struct Site {
    std::unique_ptr<MarketplaceDataset> data;
    std::unique_ptr<GroupSpace> space;
    std::unique_ptr<FBox> fbox;
  };

  // Builds a 2-gender site whose `biased_value` workers always sit in the
  // bottom half of every ranking.
  Site BuildSite(ValueId biased_value) {
    AttributeSchema schema;
    EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
    Site site;
    site.data = std::make_unique<MarketplaceDataset>(schema);
    site.space = std::make_unique<GroupSpace>(
        *GroupSpace::Enumerate(site.data->schema()));
    std::vector<WorkerId> biased;
    std::vector<WorkerId> favored;
    for (int i = 0; i < 4; ++i) {
      for (ValueId v = 0; v < 2; ++v) {
        WorkerId id = *site.data->AddWorker(
            "w" + std::to_string(i) + "_" + std::to_string(v), {v});
        (v == biased_value ? biased : favored).push_back(id);
      }
    }
    for (const char* query : {"welding", "catering"}) {
      QueryId q = site.data->queries().GetOrAdd(query);
      LocationId l = site.data->locations().GetOrAdd("Springfield");
      MarketRanking ranking;
      ranking.workers = favored;
      ranking.workers.insert(ranking.workers.end(), biased.begin(),
                             biased.end());
      EXPECT_TRUE(site.data->SetRanking(q, l, std::move(ranking)).ok());
    }
    site.fbox = std::make_unique<FBox>(*FBox::ForMarketplace(
        site.data.get(), site.space.get(), MarketMeasure::kExposure));
    return site;
  }
};

TEST_F(TransferTest, GroupRankReflectsBias) {
  Site site = BuildSite(/*biased_value=*/1);  // Females at the bottom
  size_t female_rank = *GroupUnfairnessRank(*site.fbox, "Female");
  size_t male_rank = *GroupUnfairnessRank(*site.fbox, "Male");
  // Binary-attribute exposure is symmetric, so both groups tie; ranks are
  // adjacent and cover positions 1 and 2.
  EXPECT_EQ(female_rank + male_rank, 3u);
  EXPECT_FALSE(GroupUnfairnessRank(*site.fbox, "Martian").ok());
}

TEST_F(TransferTest, SetComparisonHypothesis) {
  Site site = BuildSite(/*biased_value=*/1);
  // EMD site for an asymmetric check is unnecessary: use rank positions via
  // the set comparison on exposure — Female set vs Male set over exposure
  // deviations is symmetric here (single attribute), so the hypothesis
  // evaluates to false in both directions.
  SetComparisonHypothesis females_worse{{"Female"}, {"Male"}};
  SetComparisonHypothesis males_worse{{"Male"}, {"Female"}};
  bool f = *Holds(*site.fbox, females_worse);
  bool m = *Holds(*site.fbox, males_worse);
  EXPECT_FALSE(f && m);  // at most one direction can hold
  EXPECT_FALSE(
      Holds(*site.fbox, SetComparisonHypothesis{{}, {"Male"}}).ok());
}

TEST_F(TransferTest, TransferConfirmsMatchingSites) {
  Site source = BuildSite(1);
  Site target = BuildSite(1);
  std::vector<HypothesisOutcome> outcomes =
      *TransferTopGroups(*source.fbox, *target.fbox, 1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].source_rank, 1u);
  EXPECT_EQ(outcomes[0].target_rank, 1u);
  EXPECT_TRUE(outcomes[0].confirmed);
}

TEST_F(TransferTest, SlackWidensAcceptance) {
  Site source = BuildSite(1);
  Site target = BuildSite(1);
  // k = 1 with slack 1 accepts target rank <= 2: always true here.
  std::vector<HypothesisOutcome> outcomes =
      *TransferTopGroups(*source.fbox, *target.fbox, 1, 1);
  EXPECT_TRUE(outcomes[0].confirmed);
}

TEST_F(TransferTest, ValidatesArguments) {
  Site site = BuildSite(0);
  EXPECT_FALSE(TopGroupHypotheses(*site.fbox, 0).ok());
  EXPECT_FALSE(Holds(*site.fbox, GroupRankHypothesis{"Male", 0}).ok());
}

// A three-ethnicity fixture where transfer genuinely discriminates between
// agreeing and disagreeing sites.
class EthnicityTransferTest : public ::testing::Test {
 protected:
  struct Site {
    std::unique_ptr<MarketplaceDataset> data;
    std::unique_ptr<GroupSpace> space;
    std::unique_ptr<FBox> fbox;
  };

  Site BuildSite(ValueId bottom_ethnicity) {
    AttributeSchema schema;
    EXPECT_TRUE(
        schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
    Site site;
    site.data = std::make_unique<MarketplaceDataset>(schema);
    site.space = std::make_unique<GroupSpace>(
        *GroupSpace::Enumerate(site.data->schema()));
    std::vector<WorkerId> bottom;
    std::vector<WorkerId> rest;
    for (int i = 0; i < 3; ++i) {
      for (ValueId v = 0; v < 3; ++v) {
        WorkerId id = *site.data->AddWorker(
            "w" + std::to_string(i) + "_" + std::to_string(v), {v});
        (v == bottom_ethnicity ? bottom : rest).push_back(id);
      }
    }
    QueryId q = site.data->queries().GetOrAdd("welding");
    LocationId l = site.data->locations().GetOrAdd("Springfield");
    MarketRanking ranking;
    ranking.workers = rest;
    ranking.workers.insert(ranking.workers.end(), bottom.begin(),
                           bottom.end());
    EXPECT_TRUE(site.data->SetRanking(q, l, std::move(ranking)).ok());
    site.fbox = std::make_unique<FBox>(*FBox::ForMarketplace(
        site.data.get(), site.space.get(), MarketMeasure::kEmd));
    return site;
  }
};

TEST_F(EthnicityTransferTest, AgreeingSitesConfirmDisagreeingSitesRefute) {
  Site source = BuildSite(/*Asian*/ 0);
  Site agreeing = BuildSite(/*Asian*/ 0);
  Site disagreeing = BuildSite(/*White*/ 2);

  // On the source, Asians (pushed to the bottom) are the most unfair group.
  EXPECT_EQ(*GroupUnfairnessRank(*source.fbox, "Asian"), 1u);

  std::vector<HypothesisOutcome> confirmed =
      *TransferTopGroups(*source.fbox, *agreeing.fbox, 1);
  EXPECT_TRUE(confirmed[0].confirmed);

  std::vector<HypothesisOutcome> refuted =
      *TransferTopGroups(*source.fbox, *disagreeing.fbox, 1);
  EXPECT_FALSE(refuted[0].confirmed);
  EXPECT_GT(refuted[0].target_rank, 1u);
}

TEST_F(EthnicityTransferTest, SetHypothesisDirectional) {
  Site site = BuildSite(/*Asian*/ 0);
  EXPECT_TRUE(*Holds(*site.fbox, SetComparisonHypothesis{{"Asian"}, {"White"}}));
  EXPECT_FALSE(
      *Holds(*site.fbox, SetComparisonHypothesis{{"White"}, {"Asian"}}));
}

}  // namespace
}  // namespace fairjob
