// The scale generator's whole value is determinism: one seed must reproduce
// the exact population, rankings, observations and request stream on every
// machine, or bench_scale runs stop being comparable across commits.

#include "market/scale_gen.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/group_space.h"
#include "serve/cache_key.h"
#include "serve/cube_snapshot.h"

namespace fairjob {
namespace {

ScaleSpec SmallSpec() {
  ScaleSpec spec;
  spec.seed = 42;
  spec.num_workers = 500;
  spec.num_queries = 40;
  spec.num_locations = 6;
  spec.num_ranked_columns = 60;
  spec.min_ranking_length = 5;
  spec.max_ranking_length = 25;
  return spec;
}

TEST(ScaleGenTest, SchemaEnumeratesProductionShapedGroupAxis) {
  Result<AttributeSchema> schema = MakeScaleSchema();
  ASSERT_TRUE(schema.ok());
  GroupSpace space = *GroupSpace::Enumerate(*schema);
  // ethnicity{5} x gender{3} x age{4}: (5+1)(3+1)(4+1) - 1 partial
  // assignments.
  EXPECT_EQ(space.num_groups(), 119u);
}

TEST(ScaleGenTest, MarketplaceGenerationIsDeterministic) {
  ScaleSpec spec = SmallSpec();
  MarketplaceDataset a = *GenerateScaleMarketplace(spec);
  MarketplaceDataset b = *GenerateScaleMarketplace(spec);
  ASSERT_EQ(a.num_workers(), spec.num_workers);
  ASSERT_EQ(a.num_workers(), b.num_workers());
  ASSERT_EQ(a.num_rankings(), spec.num_ranked_columns);
  ASSERT_EQ(a.num_rankings(), b.num_rankings());
  for (WorkerId w = 0; w < static_cast<WorkerId>(a.num_workers()); ++w) {
    EXPECT_EQ(a.worker_demographics(w), b.worker_demographics(w))
        << "worker " << w;
  }
  for (QueryId q = 0; q < static_cast<QueryId>(spec.num_queries); ++q) {
    for (LocationId l = 0; l < static_cast<LocationId>(spec.num_locations);
         ++l) {
      const MarketRanking* ra = a.GetRanking(q, l);
      const MarketRanking* rb = b.GetRanking(q, l);
      ASSERT_EQ(ra == nullptr, rb == nullptr) << q << "," << l;
      if (ra != nullptr) {
        EXPECT_EQ(ra->workers, rb->workers) << q << "," << l;
        EXPECT_EQ(ra->scores, rb->scores) << q << "," << l;
      }
    }
  }
}

TEST(ScaleGenTest, DifferentSeedsProduceDifferentMarkets) {
  ScaleSpec spec = SmallSpec();
  MarketplaceDataset a = *GenerateScaleMarketplace(spec);
  spec.seed = 43;
  MarketplaceDataset b = *GenerateScaleMarketplace(spec);
  bool any_difference = false;
  for (WorkerId w = 0; w < static_cast<WorkerId>(a.num_workers()); ++w) {
    if (a.worker_demographics(w) != b.worker_demographics(w)) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScaleGenTest, RankingsRespectSpecBounds) {
  ScaleSpec spec = SmallSpec();
  MarketplaceDataset data = *GenerateScaleMarketplace(spec);
  size_t found = 0;
  for (QueryId q = 0; q < static_cast<QueryId>(spec.num_queries); ++q) {
    for (LocationId l = 0; l < static_cast<LocationId>(spec.num_locations);
         ++l) {
      const MarketRanking* r = data.GetRanking(q, l);
      if (r == nullptr) continue;
      ++found;
      EXPECT_GE(r->workers.size(), spec.min_ranking_length);
      EXPECT_LE(r->workers.size(), spec.max_ranking_length);
      ASSERT_EQ(r->workers.size(), r->scores.size());
      std::set<WorkerId> seen(r->workers.begin(), r->workers.end());
      EXPECT_EQ(seen.size(), r->workers.size()) << "duplicate worker";
      for (size_t i = 1; i < r->scores.size(); ++i) {
        EXPECT_LT(r->scores[i], r->scores[i - 1]) << "scores not descending";
      }
    }
  }
  EXPECT_EQ(found, spec.num_ranked_columns);
}

TEST(ScaleGenTest, QueryTrafficIsZipfSkewed) {
  ScaleSpec spec = SmallSpec();
  spec.num_ranked_columns = 120;
  MarketplaceDataset data = *GenerateScaleMarketplace(spec);
  std::map<QueryId, size_t> columns_per_query;
  for (QueryId q = 0; q < static_cast<QueryId>(spec.num_queries); ++q) {
    for (LocationId l = 0; l < static_cast<LocationId>(spec.num_locations);
         ++l) {
      if (data.GetRanking(q, l) != nullptr) ++columns_per_query[q];
    }
  }
  // Head queries (rank 0-3) must be observed at more locations than tail
  // queries (the last dozen) — the Zipf draw concentrates columns early.
  size_t head = 0, tail = 0;
  for (QueryId q = 0; q < 4; ++q) head += columns_per_query[q];
  for (QueryId q = static_cast<QueryId>(spec.num_queries) - 12;
       q < static_cast<QueryId>(spec.num_queries); ++q) {
    tail += columns_per_query[q];
  }
  EXPECT_GT(head, tail);
}

TEST(ScaleGenTest, RejectsUnsatisfiableSpecs) {
  ScaleSpec spec = SmallSpec();
  spec.num_workers = 0;
  EXPECT_FALSE(GenerateScaleMarketplace(spec).ok());
  spec = SmallSpec();
  spec.min_ranking_length = 30;
  spec.max_ranking_length = 10;
  EXPECT_FALSE(GenerateScaleMarketplace(spec).ok());
  spec = SmallSpec();
  spec.max_ranking_length = 1000;
  spec.min_ranking_length = 600;  // longer than the 500-worker population
  EXPECT_FALSE(GenerateScaleMarketplace(spec).ok());
  // Asking for more columns than (query, location) pairs exist clamps to
  // the full grid instead of failing.
  spec = SmallSpec();
  spec.num_ranked_columns = spec.num_queries * spec.num_locations + 1;
  Result<MarketplaceDataset> clamped = GenerateScaleMarketplace(spec);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->num_rankings(), spec.num_queries * spec.num_locations);
}

TEST(ScaleGenTest, SearchGenerationIsDeterministicAndDeduplicable) {
  SearchScaleSpec spec;
  spec.seed = 7;
  spec.num_users = 40;
  spec.num_queries = 6;
  spec.num_locations = 3;
  spec.num_observed_columns = 8;
  spec.observations_per_column = 24;
  spec.document_universe = 256;
  spec.list_length = 32;
  SearchDataset a = *GenerateScaleSearch(spec);
  SearchDataset b = *GenerateScaleSearch(spec);
  size_t observed_columns = 0;
  size_t lists = 0;
  std::set<RankedList> distinct;
  for (QueryId q = 0; q < static_cast<QueryId>(spec.num_queries); ++q) {
    for (LocationId l = 0; l < static_cast<LocationId>(spec.num_locations);
         ++l) {
      const std::vector<SearchObservation>* oa = a.GetObservations(q, l);
      const std::vector<SearchObservation>* ob = b.GetObservations(q, l);
      ASSERT_EQ(oa == nullptr, ob == nullptr);
      if (oa == nullptr) continue;
      ++observed_columns;
      ASSERT_EQ(oa->size(), ob->size());
      ASSERT_EQ(oa->size(), spec.observations_per_column);
      for (size_t i = 0; i < oa->size(); ++i) {
        EXPECT_EQ((*oa)[i].user, (*ob)[i].user);
        EXPECT_EQ((*oa)[i].results, (*ob)[i].results);
        EXPECT_EQ((*oa)[i].results.size(), spec.list_length);
        ++lists;
        distinct.insert((*oa)[i].results);
      }
    }
  }
  EXPECT_EQ(observed_columns, spec.num_observed_columns);
  // shared_list_fraction makes many users see a canonical variant verbatim,
  // so the distinct-list count must sit meaningfully below the list count
  // (this is what exercises the list-batch arena's deduplication at scale):
  // ~half the lists collapse onto num_shared_variants canonicals per column.
  EXPECT_LT(distinct.size() + lists / 5, lists);
  EXPECT_GT(distinct.size(), spec.num_shared_variants);
}

TEST(ScaleGenTest, ServeRequestsAreDeterministicBoundedAndSkewed) {
  ServeLoadSpec spec;
  spec.seed = 5;
  spec.num_requests = 400;
  spec.distinct_patterns = 16;
  std::vector<QuantificationRequest> a =
      GenerateServeRequests(spec, 119, 40, 6);
  std::vector<QuantificationRequest> b =
      GenerateServeRequests(spec, 119, 40, 6);
  ASSERT_EQ(a.size(), spec.num_requests);
  ASSERT_EQ(b.size(), spec.num_requests);
  // Canonical request keys (against a cube of the generated axis shape)
  // both prove per-index determinism and count pattern repeats.
  std::vector<GroupId> groups(119);
  std::vector<QueryId> queries(40);
  std::vector<LocationId> locations(6);
  for (size_t i = 0; i < groups.size(); ++i) groups[i] = static_cast<int>(i);
  for (size_t i = 0; i < queries.size(); ++i) queries[i] = static_cast<int>(i);
  for (size_t i = 0; i < locations.size(); ++i) {
    locations[i] = static_cast<int>(i);
  }
  UnfairnessCube cube = *UnfairnessCube::Make(groups, queries, locations);
  IndexSet indices = IndexSet::Build(cube);
  std::shared_ptr<const CubeSnapshot> snapshot =
      CubeSnapshot::Borrow(&cube, &indices);
  RequestCacheKeyHash hash;
  std::map<size_t, size_t> pattern_counts;
  for (size_t i = 0; i < a.size(); ++i) {
    RequestCacheKey ka(a[i], *snapshot);
    RequestCacheKey kb(b[i], *snapshot);
    EXPECT_TRUE(ka == kb) << "request " << i;
    EXPECT_GE(a[i].k, 1u);
    ++pattern_counts[hash(ka)];
  }
  // Zipf-weighted pattern draws: few distinct shapes, head repeated often.
  EXPECT_LE(pattern_counts.size(), spec.distinct_patterns);
  size_t max_count = 0;
  for (const auto& [key, count] : pattern_counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, spec.num_requests / spec.distinct_patterns);
}

}  // namespace
}  // namespace fairjob
