#include "core/coverage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

namespace fairjob {
namespace {

AttributeSchema Schema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  return schema;
}

bool Contains(const std::vector<GroupId>& ids, GroupId id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

TEST(MarketplaceCoverageTest, CountsMembersPerCell) {
  MarketplaceDataset data(Schema());
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  // 3 White Males, 1 Asian Female; no Black workers at all.
  ASSERT_TRUE(data.AddWorker("wm1", {2, 0}).ok());
  ASSERT_TRUE(data.AddWorker("wm2", {2, 0}).ok());
  ASSERT_TRUE(data.AddWorker("wm3", {2, 0}).ok());
  ASSERT_TRUE(data.AddWorker("af", {0, 1}).ok());
  MarketRanking all;
  all.workers = {0, 1, 2, 3};
  MarketRanking males_only;
  males_only.workers = {0, 1, 2};
  ASSERT_TRUE(data.SetRanking(0, 0, all).ok());
  ASSERT_TRUE(data.SetRanking(1, 0, males_only).ok());
  data.queries().GetOrAdd("q0");
  data.queries().GetOrAdd("q1");
  data.locations().GetOrAdd("l0");

  CoverageReport report = *AnalyzeMarketplaceCoverage(data, space, 3.0);
  GroupId white_male = *space.FindByDisplayName("White Male");
  GroupId asian_female = *space.FindByDisplayName("Asian Female");
  GroupId black = *space.FindByDisplayName("Black");

  const GroupCoverage& wm = report.groups[static_cast<size_t>(white_male)];
  EXPECT_EQ(wm.cells_with_members, 2u);
  EXPECT_EQ(wm.cells_total, 2u);
  EXPECT_EQ(wm.min_members, 3u);
  EXPECT_EQ(wm.max_members, 3u);
  EXPECT_DOUBLE_EQ(wm.mean_members, 3.0);
  EXPECT_FALSE(Contains(report.low_support, white_male));

  const GroupCoverage& af = report.groups[static_cast<size_t>(asian_female)];
  EXPECT_EQ(af.cells_with_members, 1u);
  EXPECT_DOUBLE_EQ(af.mean_members, 1.0);
  EXPECT_TRUE(Contains(report.low_support, asian_female));

  EXPECT_TRUE(Contains(report.absent, black));
  EXPECT_EQ(report.groups[static_cast<size_t>(black)].cells_with_members, 0u);
}

TEST(MarketplaceCoverageTest, EmptyDatasetIsInvalid) {
  MarketplaceDataset data(Schema());
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  EXPECT_FALSE(AnalyzeMarketplaceCoverage(data, space).ok());
}

TEST(SearchCoverageTest, CountsObservationsPerCell) {
  SearchDataset data(Schema());
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  ASSERT_TRUE(data.AddUser("wf1", {2, 1}).ok());
  ASSERT_TRUE(data.AddUser("wf2", {2, 1}).ok());
  ASSERT_TRUE(data.AddUser("bm", {1, 0}).ok());
  data.queries().GetOrAdd("q");
  data.locations().GetOrAdd("l");
  ASSERT_TRUE(data.AddObservation(0, 0, {0, {1, 2}}).ok());
  ASSERT_TRUE(data.AddObservation(0, 0, {1, {1, 3}}).ok());
  ASSERT_TRUE(data.AddObservation(0, 0, {0, {4, 5}}).ok());  // repeat run
  ASSERT_TRUE(data.AddObservation(0, 0, {2, {1, 2}}).ok());

  CoverageReport report = *AnalyzeSearchCoverage(data, space, 2.0);
  GroupId white_female = *space.FindByDisplayName("White Female");
  GroupId black_male = *space.FindByDisplayName("Black Male");
  // WF contributed 3 lists (two users, one repeated), BM one.
  EXPECT_DOUBLE_EQ(
      report.groups[static_cast<size_t>(white_female)].mean_members, 3.0);
  EXPECT_DOUBLE_EQ(
      report.groups[static_cast<size_t>(black_male)].mean_members, 1.0);
  EXPECT_TRUE(Contains(report.low_support, black_male));
  EXPECT_FALSE(Contains(report.low_support, white_female));
  // Asian groups never appear.
  EXPECT_TRUE(
      Contains(report.absent, *space.FindByDisplayName("Asian Female")));
}

TEST(SearchCoverageTest, EmptyDatasetIsInvalid) {
  SearchDataset data(Schema());
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  EXPECT_FALSE(AnalyzeSearchCoverage(data, space).ok());
}

}  // namespace
}  // namespace fairjob
