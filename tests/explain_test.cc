#include "core/explain.h"

#include <gtest/gtest.h>

#include <memory>

namespace fairjob {
namespace {

// The Table 2/3 toy again: Black Females at ranks 7, 8 of 10.
class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributeSchema schema;
    ASSERT_TRUE(
        schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
    ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
    data_ = std::make_unique<MarketplaceDataset>(schema);
    space_ = std::make_unique<GroupSpace>(
        *GroupSpace::Enumerate(data_->schema()));
    struct W {
      const char* name;
      ValueId ethnicity;
      ValueId gender;
    };
    const W workers[] = {
        {"w1", 0, 1}, {"w2", 2, 0}, {"w3", 2, 1}, {"w4", 0, 0}, {"w5", 1, 1},
        {"w6", 1, 0}, {"w7", 1, 1}, {"w8", 1, 0}, {"w9", 2, 0}, {"w10", 2, 1},
    };
    for (const W& w : workers) {
      ASSERT_TRUE(data_->AddWorker(w.name, {w.ethnicity, w.gender}).ok());
    }
    q_ = data_->queries().GetOrAdd("Home Cleaning");
    l_ = data_->locations().GetOrAdd("San Francisco");
    MarketRanking ranking;
    auto id = [&](const char* name) { return *data_->workers().Find(name); };
    ranking.workers = {id("w3"), id("w8"), id("w6"), id("w2"), id("w1"),
                       id("w4"), id("w7"), id("w5"), id("w9"), id("w10")};
    ranking.scores = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0};
    ASSERT_TRUE(data_->SetRanking(q_, l_, std::move(ranking)).ok());
  }

  GroupId Group(const char* name) { return *space_->FindByDisplayName(name); }

  std::unique_ptr<MarketplaceDataset> data_;
  std::unique_ptr<GroupSpace> space_;
  QueryId q_ = 0;
  LocationId l_ = 0;
};

TEST_F(ExplainTest, ValueMatchesCanonicalMeasure) {
  for (MarketMeasure measure :
       {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
    Result<MarketTripleExplanation> explanation = ExplainMarketplaceTriple(
        *data_, *space_, Group("Black Female"), q_, l_, measure);
    ASSERT_TRUE(explanation.ok());
    Result<double> direct = MarketplaceUnfairness(
        *data_, *space_, Group("Black Female"), q_, l_, measure);
    EXPECT_NEAR(explanation->value, *direct, 1e-12);
  }
}

TEST_F(ExplainTest, ComparableBreakdownForBlackFemales) {
  MarketTripleExplanation explanation = *ExplainMarketplaceTriple(
      *data_, *space_, Group("Black Female"), q_, l_, MarketMeasure::kEmd);
  EXPECT_EQ(explanation.group_members, 2u);   // w5, w7
  EXPECT_EQ(explanation.result_size, 10u);
  // Ranks 7, 8 (0-based 6, 7): mean fraction 6.5/10.
  EXPECT_NEAR(explanation.group_mean_rank_fraction, 0.65, 1e-12);

  ASSERT_EQ(explanation.comparables.size(), 3u);
  // EMD distance to each comparable averages to the headline value.
  double sum = 0.0;
  for (const ComparableContribution& c : explanation.comparables) {
    sum += c.distance;
  }
  EXPECT_NEAR(sum / 3.0, explanation.value, 1e-12);
  // Black Males (ranks 2, 3) are the farthest comparable; sorted first.
  EXPECT_EQ(space_->label(explanation.comparables[0].comparable)
                .DisplayName(data_->schema()),
            "Black Male");
  EXPECT_EQ(explanation.comparables[0].members, 2u);
  EXPECT_NEAR(explanation.comparables[0].mean_rank_fraction, 0.15, 1e-12);
}

TEST_F(ExplainTest, ExposureExplanationSortsByPairwiseDeviation) {
  MarketTripleExplanation explanation = *ExplainMarketplaceTriple(
      *data_, *space_, Group("Black Female"), q_, l_,
      MarketMeasure::kExposure);
  ASSERT_EQ(explanation.comparables.size(), 3u);
  for (size_t i = 1; i < explanation.comparables.size(); ++i) {
    EXPECT_GE(explanation.comparables[i - 1].distance,
              explanation.comparables[i].distance);
  }
  for (const ComparableContribution& c : explanation.comparables) {
    EXPECT_GE(c.distance, 0.0);
    EXPECT_LE(c.distance, 1.0);
  }
}

TEST_F(ExplainTest, UndefinedTripleIsNotFound) {
  Result<MarketTripleExplanation> explanation = ExplainMarketplaceTriple(
      *data_, *space_, Group("Black Female"), q_, l_ + 7,
      MarketMeasure::kEmd);
  ASSERT_FALSE(explanation.ok());
  EXPECT_EQ(explanation.status().code(), StatusCode::kNotFound);
}

TEST(ExplainSearchTest, BreaksDownByComparableGroup) {
  AttributeSchema schema;
  ASSERT_TRUE(
      schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  SearchDataset data(schema);
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  ASSERT_TRUE(data.AddUser("bf", {1, 1}).ok());
  ASSERT_TRUE(data.AddUser("bm", {1, 0}).ok());
  ASSERT_TRUE(data.AddUser("wf", {2, 1}).ok());
  // BF's list is identical to WF's and disjoint from BM's.
  ASSERT_TRUE(data.AddObservation(0, 0, {0, {1, 2, 3}}).ok());
  ASSERT_TRUE(data.AddObservation(0, 0, {1, {7, 8, 9}}).ok());
  ASSERT_TRUE(data.AddObservation(0, 0, {2, {1, 2, 3}}).ok());

  GroupId black_female = *space.FindByDisplayName("Black Female");
  Result<SearchTripleExplanation> explanation = ExplainSearchTriple(
      data, space, black_female, 0, 0, SearchMeasure::kJaccard);
  ASSERT_TRUE(explanation.ok());
  EXPECT_DOUBLE_EQ(explanation->value, 0.5);  // (1 + 0) / 2
  EXPECT_EQ(explanation->group_observations, 1u);
  ASSERT_EQ(explanation->comparables.size(), 2u);
  EXPECT_EQ(space.label(explanation->comparables[0].comparable)
                .DisplayName(data.schema()),
            "Black Male");
  EXPECT_DOUBLE_EQ(explanation->comparables[0].distance, 1.0);
  EXPECT_EQ(space.label(explanation->comparables[1].comparable)
                .DisplayName(data.schema()),
            "White Female");
  EXPECT_DOUBLE_EQ(explanation->comparables[1].distance, 0.0);

  // The per-comparable distances average to the headline value.
  double sum = 0.0;
  for (const auto& c : explanation->comparables) sum += c.distance;
  EXPECT_DOUBLE_EQ(sum / 2.0, explanation->value);
}

TEST(ExplainSearchTest, UndefinedTripleIsNotFound) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  SearchDataset data(schema);
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  Result<SearchTripleExplanation> explanation =
      ExplainSearchTriple(data, space, 0, 0, 0, SearchMeasure::kJaccard);
  ASSERT_FALSE(explanation.ok());
  EXPECT_EQ(explanation.status().code(), StatusCode::kNotFound);
}

TEST(TopContributingCellsTest, RanksCellsDescending) {
  UnfairnessCube cube = *UnfairnessCube::Make({0}, {0, 1, 2}, {0, 1});
  cube.Set(0, 0, 0, 0.1);
  cube.Set(0, 1, 0, 0.9);
  cube.Set(0, 2, 1, 0.5);
  // (0, 0, 1) and (0, 1, 1) and (0, 2, 0) missing.
  Result<std::vector<CellContribution>> top =
      TopContributingCells(cube, Dimension::kGroup, 0, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].query_pos, 1u);
  EXPECT_EQ((*top)[0].location_pos, 0u);
  EXPECT_DOUBLE_EQ((*top)[0].value, 0.9);
  EXPECT_DOUBLE_EQ((*top)[1].value, 0.5);
}

TEST(TopContributingCellsTest, WorksForOtherDimensions) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0}, {0, 1});
  cube.Set(0, 0, 0, 0.2);
  cube.Set(1, 0, 1, 0.8);
  Result<std::vector<CellContribution>> top =
      TopContributingCells(cube, Dimension::kQuery, 0, 5);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  // For dim = kQuery the reported positions are (group, location).
  EXPECT_DOUBLE_EQ((*top)[0].value, 0.8);
  EXPECT_EQ((*top)[0].query_pos, 1u);     // group position
  EXPECT_EQ((*top)[0].location_pos, 1u);  // location position
}

TEST(TopContributingCellsTest, Validation) {
  UnfairnessCube cube = *UnfairnessCube::Make({0}, {0}, {0});
  EXPECT_FALSE(TopContributingCells(cube, Dimension::kGroup, 5, 1).ok());
  EXPECT_FALSE(TopContributingCells(cube, Dimension::kGroup, 0, 0).ok());
  Result<std::vector<CellContribution>> empty =
      TopContributingCells(cube, Dimension::kGroup, 0, 3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

}  // namespace
}  // namespace fairjob
