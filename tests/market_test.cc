#include "market/taskrabbit_sim.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "market/scoring.h"

namespace fairjob {
namespace {

TaskRabbitConfig SmallConfig() {
  TaskRabbitConfig config;
  config.num_workers = 240;
  config.max_cities = 4;
  config.max_subjobs_per_category = 2;
  config.target_query_count = 1000000;  // no exclusions at this scale
  return config;
}

TEST(ScoringModelTest, RequiresGenderAndEthnicity) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  EXPECT_FALSE(
      ScoringModel::Make(schema, MarketCalibration::PaperDefaults()).ok());
}

TEST(ScoringModelTest, RequiresPenaltiesForEveryValue) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "Martian"}).ok());
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  EXPECT_FALSE(
      ScoringModel::Make(schema, MarketCalibration::PaperDefaults()).ok());
}

TEST(ScoringModelTest, CellPenaltyDecomposes) {
  AttributeSchema schema = TaskRabbitSchema();
  MarketCalibration cal = MarketCalibration::PaperDefaults();
  ScoringModel model = *ScoringModel::Make(schema, cal);
  // ethnicity=Asian(0), gender=Female(1).
  Demographics asian_female = {0, 1};
  EXPECT_NEAR(model.CellPenalty(asian_female, "Detroit, MI"),
              cal.ethnicity_penalty["Asian"] + cal.gender_penalty["Female"],
              1e-12);
}

TEST(ScoringModelTest, GenderFlipSwapsComponents) {
  AttributeSchema schema = TaskRabbitSchema();
  MarketCalibration cal = MarketCalibration::PaperDefaults();
  ScoringModel model = *ScoringModel::Make(schema, cal);
  Demographics white_female = {2, 1};
  Demographics white_male = {2, 0};
  // Chicago is a flip city: female gets the male component and vice versa.
  EXPECT_NEAR(model.CellPenalty(white_female, "Chicago, IL"),
              cal.ethnicity_penalty["White"] + cal.gender_penalty["Male"],
              1e-12);
  EXPECT_NEAR(model.CellPenalty(white_male, "Chicago, IL"),
              cal.ethnicity_penalty["White"] + cal.gender_penalty["Female"],
              1e-12);
}

TEST(ScoringModelTest, SeverityOrdersJobsAndCities) {
  AttributeSchema schema = TaskRabbitSchema();
  ScoringModel model =
      *ScoringModel::Make(schema, MarketCalibration::PaperDefaults());
  Demographics d = {1, 0};
  double handyman_birmingham =
      model.Severity("Mount TV", "Handyman", "Birmingham, UK", d);
  double delivery_chicago =
      model.Severity("Food Delivery", "Delivery", "Chicago, IL", d);
  EXPECT_GT(handyman_birmingham, delivery_chicago);
}

TEST(ScoringModelTest, EthnicityJobAdjustIsDirectAndCityScaled) {
  AttributeSchema schema = TaskRabbitSchema();
  MarketCalibration cal = MarketCalibration::PaperDefaults();
  ScoringModel model = *ScoringModel::Make(schema, cal);
  Demographics white = {2, 0};
  Demographics asian = {0, 0};
  // White|Lawn Mowing displaces Whites, scaled by city severity.
  double detroit = model.DirectAdjust("Lawn Mowing", "Detroit, MI", white);
  double chicago = model.DirectAdjust("Lawn Mowing", "Chicago, IL", white);
  EXPECT_GT(detroit, 0.0);
  EXPECT_NEAR(detroit / chicago,
              cal.city_severity["Detroit, MI"] / cal.city_severity["Chicago, IL"],
              1e-9);
  // No adjustment for other ethnicities / sub-jobs.
  EXPECT_DOUBLE_EQ(model.DirectAdjust("Lawn Mowing", "Detroit, MI", asian), 0.0);
  EXPECT_DOUBLE_EQ(model.DirectAdjust("Leaf Raking", "Detroit, MI", white), 0.0);
}

TEST(ScoringModelTest, CityJobAdjustShiftsSeverity) {
  AttributeSchema schema = TaskRabbitSchema();
  ScoringModel model =
      *ScoringModel::Make(schema, MarketCalibration::PaperDefaults());
  Demographics d = {1, 0};
  // Table 15's Bay Area organizing sub-jobs carry a positive severity bump.
  double adjusted = model.Severity("Organize Closet", "General Cleaning",
                                   "San Francisco Bay Area, CA", d);
  double plain = model.Severity("Deep Cleaning", "General Cleaning",
                                "San Francisco Bay Area, CA", d);
  EXPECT_GT(adjusted, plain);
}

TEST(ScoringModelTest, ScoreClampedToUnitInterval) {
  AttributeSchema schema = TaskRabbitSchema();
  ScoringModel model =
      *ScoringModel::Make(schema, MarketCalibration::PaperDefaults());
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    double s = model.Score(rng.NextDouble(), "Mount TV", "Handyman",
                           "Birmingham, UK", {0, 1}, &rng);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(TaskRabbitSiteTest, FullScaleMetadata) {
  TaskRabbitConfig config;
  config.num_workers = 500;  // fewer workers, full geography
  Result<std::unique_ptr<SimulatedMarketplace>> site =
      BuildTaskRabbitSite(config);
  ASSERT_TRUE(site.ok());
  EXPECT_EQ((*site)->Cities().size(), 56u);
  EXPECT_EQ((*site)->offerings().size(), 96u);
  // The paper's 5,361 offered (city, job) query combinations.
  EXPECT_EQ((*site)->num_queries_offered(), 5361u);
}

TEST(TaskRabbitSiteTest, ExclusionsNeverTouchProtectedPairs) {
  TaskRabbitConfig config;
  config.num_workers = 100;
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);
  for (const char* job :
       {"Lawn Mowing", "Event Decorating", "Back To Organized",
        "Organize & Declutter", "Organize Closet"}) {
    for (const std::string& city : site->Cities()) {
      EXPECT_TRUE(site->IsOffered(job, city)) << job << " @ " << city;
    }
  }
}

TEST(TaskRabbitSiteTest, RankingsAreDeterministicAndCached) {
  std::unique_ptr<SimulatedMarketplace> site1 =
      *BuildTaskRabbitSite(SmallConfig());
  std::unique_ptr<SimulatedMarketplace> site2 =
      *BuildTaskRabbitSite(SmallConfig());
  std::string city = site1->Cities()[0];
  std::string job = site1->JobsIn(city)[0];
  Result<std::vector<size_t>> r1 = site1->RankFor(job, city);
  Result<std::vector<size_t>> r1_again = site1->RankFor(job, city);
  Result<std::vector<size_t>> r2 = site2->RankFor(job, city);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, *r1_again);
  EXPECT_EQ(*r1, *r2);
}

TEST(TaskRabbitSiteTest, PaginationConsistentWithRanking) {
  std::unique_ptr<SimulatedMarketplace> site =
      *BuildTaskRabbitSite(SmallConfig());
  std::string city = site->Cities()[1];
  std::string job = site->JobsIn(city)[0];
  std::vector<size_t> full = *site->RankFor(job, city);
  std::vector<std::string> paged;
  for (size_t page = 0;; ++page) {
    Result<ResultPage> p = site->FetchPage(job, city, page, 7);
    ASSERT_TRUE(p.ok());
    paged.insert(paged.end(), p->worker_names.begin(), p->worker_names.end());
    if (!p->has_more) break;
  }
  ASSERT_EQ(paged.size(), full.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(paged[i], site->worker(full[i]).name);
  }
}

TEST(TaskRabbitSiteTest, ProfileAndTruthLookups) {
  std::unique_ptr<SimulatedMarketplace> site =
      *BuildTaskRabbitSite(SmallConfig());
  const SimWorker& w = site->worker(0);
  Result<RawProfile> profile = site->FetchProfile(w.name);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->picture_ref, w.picture_ref);
  EXPECT_EQ(*site->TrueDemographics(w.name), w.demographics);
  EXPECT_EQ(*site->TruthByPicture(w.picture_ref), w.demographics);
  EXPECT_FALSE(site->FetchProfile("ghost").ok());
  EXPECT_FALSE(site->TruthByPicture("ghost").ok());
}

TEST(TaskRabbitSiteTest, DemographicMixTracksConfiguredShares) {
  TaskRabbitConfig config;
  config.num_workers = 3311;
  config.max_cities = 4;
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);
  size_t males = 0;
  size_t white = 0;
  for (size_t i = 0; i < site->num_workers(); ++i) {
    const Demographics& d = site->worker(i).demographics;
    if (d[1] == 0) ++males;       // gender attr is index 1
    if (d[0] == 2) ++white;       // ethnicity White = 2
  }
  double male_share = static_cast<double>(males) / 3311.0;
  double white_share = static_cast<double>(white) / 3311.0;
  EXPECT_NEAR(male_share, 0.72, 0.03);   // Figure 7
  EXPECT_NEAR(white_share, 0.66, 0.03);  // Figure 8
}

TEST(TaskRabbitSiteTest, TransientFailuresSurfaceAsIOError) {
  TaskRabbitConfig config = SmallConfig();
  config.transient_failure_rate = 1.0;
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);
  std::string city = site->Cities()[0];
  std::string job = site->JobsIn(city)[0];
  Result<ResultPage> page = site->FetchPage(job, city, 0, 10);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kIOError);
}

TEST(TaskRabbitDatasetTest, DirectDatasetMatchesSiteRankings) {
  TaskRabbitConfig config = SmallConfig();
  Result<TaskRabbitDataset> built = BuildTaskRabbitDataset(config);
  ASSERT_TRUE(built.ok());
  const MarketplaceDataset& ds = built->dataset;
  EXPECT_EQ(ds.num_workers(), config.num_workers);
  EXPECT_EQ(built->queries_offered, ds.num_rankings());
  EXPECT_EQ(built->subjobs_by_category.size(), 8u);

  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);
  std::string city = site->Cities()[2];
  std::string job = site->JobsIn(city)[1];
  std::vector<size_t> expected = *site->RankFor(job, city);
  QueryId q = *ds.queries().Find(job);
  LocationId l = *ds.locations().Find(city);
  const MarketRanking* ranking = ds.GetRanking(q, l);
  ASSERT_NE(ranking, nullptr);
  size_t n = std::min<size_t>(expected.size(), 50);
  ASSERT_EQ(ranking->workers.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(ds.workers().NameOf(ranking->workers[i]),
              site->worker(expected[i]).name);
  }
}

TEST(TaskRabbitDatasetTest, LabelingNoiseChangesSomeDemographics) {
  TaskRabbitConfig config = SmallConfig();
  TaskRabbitDataset truth = *BuildTaskRabbitDataset(config, 0.0);
  TaskRabbitDataset noisy = *BuildTaskRabbitDataset(config, 0.45);
  size_t diffs = 0;
  for (size_t i = 0; i < truth.dataset.num_workers(); ++i) {
    if (truth.dataset.worker_demographics(static_cast<WorkerId>(i)) !=
        noisy.dataset.worker_demographics(static_cast<WorkerId>(i))) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0u);
  // Majority voting keeps most labels right even at 45% annotator error...
  // but not all.
  EXPECT_LT(diffs, truth.dataset.num_workers());
}

TEST(TaskRabbitSiteTest, IidPopulationAblationStillValid) {
  TaskRabbitConfig config = SmallConfig();
  config.stratified_population = false;
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);
  EXPECT_EQ(site->num_workers(), config.num_workers);
  // Global shares still roughly hold under i.i.d. draws.
  size_t males = 0;
  for (size_t i = 0; i < site->num_workers(); ++i) {
    if (site->worker(i).demographics[1] == 0) ++males;
  }
  EXPECT_NEAR(static_cast<double>(males) / config.num_workers, 0.72, 0.08);
  // But per-city compositions differ city-to-city (the lottery the
  // stratified default removes).
  std::unique_ptr<SimulatedMarketplace> stratified =
      *BuildTaskRabbitSite(SmallConfig());
  std::vector<size_t> city_female_counts(2, 0);
  for (size_t i = 0; i < stratified->num_workers(); ++i) {
    const SimWorker& w = stratified->worker(i);
    if (w.city_index < 2 && w.demographics[1] == 1) {
      ++city_female_counts[w.city_index];
    }
  }
  EXPECT_LE(static_cast<size_t>(
                std::abs(static_cast<long>(city_female_counts[0]) -
                         static_cast<long>(city_female_counts[1]))),
            1u);
}

TEST(TaskRabbitSiteTest, EpochChangesRankingsDeterministically) {
  std::unique_ptr<SimulatedMarketplace> site =
      *BuildTaskRabbitSite(SmallConfig());
  std::string city = site->Cities()[0];
  std::string job = site->JobsIn(city)[0];
  std::vector<size_t> epoch0 = *site->RankFor(job, city);
  site->SetEpoch(1);
  std::vector<size_t> epoch1 = *site->RankFor(job, city);
  EXPECT_NE(epoch0, epoch1);  // noise redrawn
  site->SetEpoch(0);
  EXPECT_EQ(*site->RankFor(job, city), epoch0);  // epochs reproducible
  // A second site replays the same epoch sequence identically.
  std::unique_ptr<SimulatedMarketplace> other =
      *BuildTaskRabbitSite(SmallConfig());
  other->SetEpoch(1);
  EXPECT_EQ(*other->RankFor(job, city), epoch1);
}

TEST(TaskRabbitDatasetTest, BiasedCityRanksDiscriminatedGroupsLower) {
  // In the most severe city, Asian Female workers should land in the lower
  // half of rankings far more often than White Males.
  TaskRabbitConfig config;
  config.num_workers = 800;
  config.max_cities = 1;  // Birmingham, UK (severity 1.0) comes first
  config.max_subjobs_per_category = 1;
  config.target_query_count = 1000000;
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);
  std::string city = site->Cities()[0];
  ASSERT_EQ(city, "Birmingham, UK");

  double af_bottom = 0.0;
  double wm_bottom = 0.0;
  size_t af_total = 0;
  size_t wm_total = 0;
  for (const std::string& job : site->JobsIn(city)) {
    std::vector<size_t> ranking = *site->RankFor(job, city);
    for (size_t pos = 0; pos < ranking.size(); ++pos) {
      const Demographics& d = site->worker(ranking[pos]).demographics;
      bool bottom_half = pos >= ranking.size() / 2;
      if (d[0] == 0 && d[1] == 1) {  // Asian Female
        ++af_total;
        if (bottom_half) af_bottom += 1.0;
      }
      if (d[0] == 2 && d[1] == 0) {  // White Male
        ++wm_total;
        if (bottom_half) wm_bottom += 1.0;
      }
    }
  }
  ASSERT_GT(af_total, 0u);
  ASSERT_GT(wm_total, 0u);
  EXPECT_GT(af_bottom / af_total, wm_bottom / wm_total + 0.2);
}

}  // namespace
}  // namespace fairjob
