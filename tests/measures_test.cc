#include "core/unfairness_measures.h"

#include <gtest/gtest.h>

#include <memory>

namespace fairjob {
namespace {

// The paper's toy marketplace: Table 2's 10 workers and Table 3's ranking
// for "Home Cleaning" in San Francisco. Attribute 0 = ethnicity
// {Asian, Black, White}, attribute 1 = gender {Male, Female}.
class PaperToyMarketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributeSchema schema;
    ASSERT_TRUE(
        schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
    ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
    // The space must be enumerated over a schema that outlives it: use the
    // dataset's own copy.
    data_ = std::make_unique<MarketplaceDataset>(schema);
    space_ = std::make_unique<GroupSpace>(*GroupSpace::Enumerate(data_->schema()));

    struct W {
      const char* name;
      ValueId ethnicity;
      ValueId gender;
    };
    // Table 2 (0=Asian,1=Black,2=White; 0=Male,1=Female).
    const W workers[] = {
        {"w1", 0, 1}, {"w2", 2, 0}, {"w3", 2, 1}, {"w4", 0, 0}, {"w5", 1, 1},
        {"w6", 1, 0}, {"w7", 1, 1}, {"w8", 1, 0}, {"w9", 2, 0}, {"w10", 2, 1},
    };
    for (const W& w : workers) {
      ASSERT_TRUE(data_->AddWorker(w.name, {w.ethnicity, w.gender}).ok());
    }
    q_ = data_->queries().GetOrAdd("Home Cleaning");
    l_ = data_->locations().GetOrAdd("San Francisco");
    // Table 3: rank order and scores f_q(w).
    MarketRanking ranking;
    auto id = [&](const char* name) {
      return *data_->workers().Find(name);
    };
    ranking.workers = {id("w3"), id("w8"), id("w6"), id("w2"), id("w1"),
                       id("w4"), id("w7"), id("w5"), id("w9"), id("w10")};
    ranking.scores = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0};
    ASSERT_TRUE(data_->SetRanking(q_, l_, std::move(ranking)).ok());
  }

  GroupId Group(const char* display) {
    return *space_->FindByDisplayName(display);
  }

  std::unique_ptr<MarketplaceDataset> data_;
  std::unique_ptr<GroupSpace> space_;
  QueryId q_ = 0;
  LocationId l_ = 0;
};

TEST_F(PaperToyMarketTest, Figure5ExposureUnfairnessOfBlackFemales) {
  Result<double> d = MarketplaceUnfairness(*data_, *space_, Group("Black Female"),
                                           q_, l_, MarketMeasure::kExposure);
  ASSERT_TRUE(d.ok());
  // exp share 0.94/(0.94+4.05) = 0.188, rel share 0.5/3.4 = 0.147.
  EXPECT_NEAR(*d, 0.0407, 1e-3);
}

TEST_F(PaperToyMarketTest, EmdUnfairnessOfBlackFemalesExact) {
  Result<double> d = MarketplaceUnfairness(*data_, *space_, Group("Black Female"),
                                           q_, l_, MarketMeasure::kEmd);
  ASSERT_TRUE(d.ok());
  // Hand-computed with 10 canonical bins: EMD to Black Males 5/9, to Asian
  // Females 2.5/9, to White Females 4/9; average 0.4259.
  EXPECT_NEAR(*d, (5.0 + 2.5 + 4.0) / 9.0 / 3.0, 1e-9);
}

TEST_F(PaperToyMarketTest, DiscriminatedGroupScoresWorseThanPrivileged) {
  double bf = *MarketplaceUnfairness(*data_, *space_, Group("Black Female"), q_,
                                     l_, MarketMeasure::kEmd);
  // Black males sit at ranks 2-3: their score distribution is much closer
  // to their comparables' overall.
  double bm = *MarketplaceUnfairness(*data_, *space_, Group("Black Male"), q_,
                                     l_, MarketMeasure::kEmd);
  EXPECT_GT(bf, 0.0);
  EXPECT_GT(bm, 0.0);
}

TEST_F(PaperToyMarketTest, RankDerivedRelevanceEqualsScoresHere) {
  // Table 3's scores are exactly 1 - rank/N, so disabling score usage must
  // not change the result. Exposure uses the values directly (no histogram
  // binning), so the two paths agree to floating-point noise; the EMD paths
  // may differ by one bin where 0.7·10 straddles a bin boundary.
  MeasureOptions with_scores;
  MeasureOptions without_scores;
  without_scores.use_scores_if_available = false;
  double a = *MarketplaceUnfairness(*data_, *space_, Group("Black Female"), q_,
                                    l_, MarketMeasure::kExposure, with_scores);
  double b = *MarketplaceUnfairness(*data_, *space_, Group("Black Female"), q_,
                                    l_, MarketMeasure::kExposure,
                                    without_scores);
  EXPECT_NEAR(a, b, 1e-9);

  double emd_a = *MarketplaceUnfairness(*data_, *space_, Group("Black Female"),
                                        q_, l_, MarketMeasure::kEmd, with_scores);
  double emd_b = *MarketplaceUnfairness(*data_, *space_, Group("Black Female"),
                                        q_, l_, MarketMeasure::kEmd,
                                        without_scores);
  EXPECT_NEAR(emd_a, emd_b, 0.05);  // at most a one-bin shift
}

TEST_F(PaperToyMarketTest, UnknownQueryLocationIsNotFound) {
  Result<double> d = MarketplaceUnfairness(*data_, *space_, Group("Black Female"),
                                           q_, l_ + 10, MarketMeasure::kEmd);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST_F(PaperToyMarketTest, BadOptionsAreInvalidArgument) {
  MeasureOptions options;
  options.histogram_bins = 0;
  Result<double> d = MarketplaceUnfairness(*data_, *space_, Group("Black Female"),
                                           q_, l_, MarketMeasure::kEmd, options);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PaperToyMarketTest, ExposureSharesAreBounded) {
  for (const char* name :
       {"Asian Female", "Asian Male", "Black Female", "Black Male",
        "White Female", "White Male", "Asian", "Black", "White", "Male",
        "Female"}) {
    Result<double> d = MarketplaceUnfairness(*data_, *space_, Group(name), q_,
                                             l_, MarketMeasure::kExposure);
    ASSERT_TRUE(d.ok()) << name;
    EXPECT_GE(*d, 0.0) << name;
    EXPECT_LE(*d, 1.0) << name;
  }
}

TEST_F(PaperToyMarketTest, EmdDefinedForAllElevenGroups) {
  for (size_t g = 0; g < space_->num_groups(); ++g) {
    Result<double> d = MarketplaceUnfairness(
        *data_, *space_, static_cast<GroupId>(g), q_, l_, MarketMeasure::kEmd);
    ASSERT_TRUE(d.ok());
    EXPECT_GE(*d, 0.0);
    EXPECT_LE(*d, 1.0);
  }
}

// A ranking whose workers are all from one demographic cell: every group is
// either absent or lacks comparable members.
TEST(MarketMeasureEdgeTest, NoComparableMembersIsNotFound) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  GroupSpace space = *GroupSpace::Enumerate(schema);
  MarketplaceDataset data(schema);
  ASSERT_TRUE(data.AddWorker("a", {0, 0}).ok());
  ASSERT_TRUE(data.AddWorker("b", {0, 0}).ok());
  MarketRanking ranking;
  ranking.workers = {0, 1};
  ASSERT_TRUE(data.SetRanking(0, 0, std::move(ranking)).ok());

  GroupId asian_male = *space.FindByDisplayName("Asian Male");
  Result<double> d = MarketplaceUnfairness(data, space, asian_male, 0, 0,
                                           MarketMeasure::kEmd);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);

  GroupId black_male = *space.FindByDisplayName("Black Male");
  Result<double> d2 = MarketplaceUnfairness(data, space, black_male, 0, 0,
                                            MarketMeasure::kExposure);
  ASSERT_FALSE(d2.ok());
  EXPECT_EQ(d2.status().code(), StatusCode::kNotFound);
}

// --- search measures ----------------------------------------------------------

class SearchMeasureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributeSchema schema;
    ASSERT_TRUE(
        schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
    ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
    data_ = std::make_unique<SearchDataset>(schema);
    space_ = std::make_unique<GroupSpace>(*GroupSpace::Enumerate(data_->schema()));
    // Two Black Females, one Black Male, one White Female.
    ASSERT_TRUE(data_->AddUser("bf1", {1, 1}).ok());
    ASSERT_TRUE(data_->AddUser("bf2", {1, 1}).ok());
    ASSERT_TRUE(data_->AddUser("bm", {1, 0}).ok());
    ASSERT_TRUE(data_->AddUser("wf", {2, 1}).ok());
  }

  GroupId Group(const char* display) {
    return *space_->FindByDisplayName(display);
  }

  std::unique_ptr<SearchDataset> data_;
  std::unique_ptr<GroupSpace> space_;
};

TEST_F(SearchMeasureTest, JaccardUnfairnessHandComputed) {
  // BF lists share nothing with BM's and everything with WF's.
  ASSERT_TRUE(data_->AddObservation(0, 0, {0, {1, 2, 3}}).ok());
  ASSERT_TRUE(data_->AddObservation(0, 0, {1, {1, 2, 3}}).ok());
  ASSERT_TRUE(data_->AddObservation(0, 0, {2, {7, 8, 9}}).ok());
  ASSERT_TRUE(data_->AddObservation(0, 0, {3, {1, 2, 3}}).ok());
  Result<double> d = SearchUnfairness(*data_, *space_, Group("Black Female"), 0,
                                      0, SearchMeasure::kJaccard);
  ASSERT_TRUE(d.ok());
  // DIST(BF, BM) = 1 (disjoint), DIST(BF, WF) = 0 (identical); average 0.5.
  EXPECT_DOUBLE_EQ(*d, 0.5);
}

TEST_F(SearchMeasureTest, IdenticalResultsEverywhereIsPerfectlyFair) {
  for (UserId u = 0; u < 4; ++u) {
    ASSERT_TRUE(data_->AddObservation(0, 0, {u, {1, 2, 3, 4}}).ok());
  }
  for (SearchMeasure m : {SearchMeasure::kKendallTau, SearchMeasure::kJaccard}) {
    Result<double> d =
        SearchUnfairness(*data_, *space_, Group("Black Female"), 0, 0, m);
    ASSERT_TRUE(d.ok());
    EXPECT_DOUBLE_EQ(*d, 0.0);
  }
}

TEST_F(SearchMeasureTest, KendallTauSeesOrderDivergence) {
  ASSERT_TRUE(data_->AddObservation(0, 0, {0, {1, 2, 3, 4}}).ok());
  ASSERT_TRUE(data_->AddObservation(0, 0, {2, {4, 3, 2, 1}}).ok());
  Result<double> kt = SearchUnfairness(*data_, *space_, Group("Black Female"),
                                       0, 0, SearchMeasure::kKendallTau);
  Result<double> jac = SearchUnfairness(*data_, *space_, Group("Black Female"),
                                        0, 0, SearchMeasure::kJaccard);
  ASSERT_TRUE(kt.ok());
  ASSERT_TRUE(jac.ok());
  EXPECT_GT(*kt, 0.0);            // order reversed
  EXPECT_DOUBLE_EQ(*jac, 0.0);    // same set
}

TEST_F(SearchMeasureTest, MultipleObservationsPerUserAveraged) {
  ASSERT_TRUE(data_->AddObservation(0, 0, {0, {1, 2}}).ok());
  ASSERT_TRUE(data_->AddObservation(0, 0, {0, {3, 4}}).ok());  // same user
  ASSERT_TRUE(data_->AddObservation(0, 0, {2, {1, 2}}).ok());
  Result<double> d = SearchUnfairness(*data_, *space_, Group("Black Female"), 0,
                                      0, SearchMeasure::kJaccard);
  ASSERT_TRUE(d.ok());
  // Pairs vs BM: ({1,2},{1,2}) = 0 and ({3,4},{1,2}) = 1 -> 0.5.
  EXPECT_DOUBLE_EQ(*d, 0.5);
}

TEST_F(SearchMeasureTest, GroupWithoutObservationsIsNotFound) {
  ASSERT_TRUE(data_->AddObservation(0, 0, {2, {1, 2}}).ok());
  Result<double> d = SearchUnfairness(*data_, *space_, Group("Black Female"), 0,
                                      0, SearchMeasure::kJaccard);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST_F(SearchMeasureTest, NoComparableObservationsIsNotFound) {
  ASSERT_TRUE(data_->AddObservation(0, 0, {0, {1, 2}}).ok());
  ASSERT_TRUE(data_->AddObservation(0, 0, {1, {1, 2}}).ok());
  Result<double> d = SearchUnfairness(*data_, *space_, Group("Black Female"), 0,
                                      0, SearchMeasure::kJaccard);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST_F(SearchMeasureTest, EmptyCellIsNotFound) {
  Result<double> d = SearchUnfairness(*data_, *space_, Group("Black Female"), 5,
                                      5, SearchMeasure::kKendallTau);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST_F(SearchMeasureTest, BadPenaltyRejected) {
  ASSERT_TRUE(data_->AddObservation(0, 0, {0, {1}}).ok());
  MeasureOptions options;
  options.kendall_penalty = 2.0;
  Result<double> d = SearchUnfairness(*data_, *space_, Group("Black Female"), 0,
                                      0, SearchMeasure::kKendallTau, options);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(MeasureNamesTest, StableStrings) {
  EXPECT_STREQ(MarketMeasureName(MarketMeasure::kEmd), "EMD");
  EXPECT_STREQ(MarketMeasureName(MarketMeasure::kExposure), "Exposure");
  EXPECT_STREQ(SearchMeasureName(SearchMeasure::kKendallTau), "KendallTau");
  EXPECT_STREQ(SearchMeasureName(SearchMeasure::kJaccard), "Jaccard");
  EXPECT_STREQ(SearchMeasureName(SearchMeasure::kFootrule), "Footrule");
  EXPECT_STREQ(SearchMeasureName(SearchMeasure::kRbo), "RBO");
}

TEST(SearchListDistanceTest, DispatchesEveryMeasure) {
  RankedList a = {1, 2, 3};
  RankedList b = {3, 2, 9};
  for (SearchMeasure measure :
       {SearchMeasure::kKendallTau, SearchMeasure::kJaccard,
        SearchMeasure::kFootrule, SearchMeasure::kRbo}) {
    Result<double> d = SearchListDistance(measure, a, b);
    ASSERT_TRUE(d.ok()) << SearchMeasureName(measure);
    EXPECT_GT(*d, 0.0) << SearchMeasureName(measure);
    EXPECT_LE(*d, 1.0) << SearchMeasureName(measure);
    EXPECT_DOUBLE_EQ(*SearchListDistance(measure, a, a), 0.0)
        << SearchMeasureName(measure);
  }
}

TEST_F(SearchMeasureTest, FootruleAndRboMeasuresWork) {
  ASSERT_TRUE(data_->AddObservation(0, 0, {0, {1, 2, 3, 4}}).ok());
  ASSERT_TRUE(data_->AddObservation(0, 0, {2, {4, 3, 2, 1}}).ok());
  for (SearchMeasure measure :
       {SearchMeasure::kFootrule, SearchMeasure::kRbo}) {
    Result<double> d = SearchUnfairness(*data_, *space_,
                                        Group("Black Female"), 0, 0, measure);
    ASSERT_TRUE(d.ok()) << SearchMeasureName(measure);
    EXPECT_GT(*d, 0.0);  // reversed order diverges under both
  }
}

TEST_F(PaperToyMarketTest, PowerLawExposureModel) {
  MeasureOptions power;
  power.exposure_model = ExposureModel::kPowerLaw;
  power.exposure_gamma = 1.0;
  Result<double> d = MarketplaceUnfairness(*data_, *space_,
                                           Group("Black Female"), q_, l_,
                                           MarketMeasure::kExposure, power);
  ASSERT_TRUE(d.ok());
  EXPECT_GE(*d, 0.0);
  EXPECT_LE(*d, 1.0);
  // The curve shape differs from log-inverse, so the value differs too.
  double log_inverse = *MarketplaceUnfairness(
      *data_, *space_, Group("Black Female"), q_, l_,
      MarketMeasure::kExposure);
  EXPECT_NE(*d, log_inverse);

  power.exposure_gamma = -1.0;
  EXPECT_FALSE(MarketplaceUnfairness(*data_, *space_, Group("Black Female"),
                                     q_, l_, MarketMeasure::kExposure, power)
                   .ok());
}

}  // namespace
}  // namespace fairjob
