#include "core/quantification_batch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/indices.h"
#include "core/quantification.h"
#include "core/unfairness_cube.h"

namespace fairjob {
namespace {

// Bitwise equality on doubles: NaN payloads and -0.0 vs 0.0 must match too.
bool SameBits(double a, double b) {
  uint64_t ba;
  uint64_t bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void ExpectIdentical(const Result<QuantificationResult>& batched,
                     const Result<QuantificationResult>& reference,
                     const std::string& label) {
  ASSERT_EQ(batched.ok(), reference.ok()) << label;
  if (!reference.ok()) {
    EXPECT_EQ(batched.status().code(), reference.status().code()) << label;
    EXPECT_EQ(batched.status().message(), reference.status().message())
        << label;
    return;
  }
  ASSERT_EQ(batched->answers.size(), reference->answers.size()) << label;
  for (size_t i = 0; i < reference->answers.size(); ++i) {
    EXPECT_EQ(batched->answers[i].id, reference->answers[i].id)
        << label << " answer " << i;
    EXPECT_TRUE(
        SameBits(batched->answers[i].value, reference->answers[i].value))
        << label << " answer " << i << ": " << batched->answers[i].value
        << " vs " << reference->answers[i].value;
  }
  const FaginStats& bs = batched->stats;
  const FaginStats& rs = reference->stats;
  EXPECT_EQ(bs.sorted_accesses, rs.sorted_accesses) << label;
  EXPECT_EQ(bs.random_accesses, rs.random_accesses) << label;
  EXPECT_EQ(bs.ids_scored, rs.ids_scored) << label;
  EXPECT_EQ(bs.rounds, rs.rounds) << label;
  EXPECT_EQ(bs.threshold_checks, rs.threshold_checks) << label;
  EXPECT_EQ(bs.dense_accesses, rs.dense_accesses) << label;
  EXPECT_EQ(bs.hash_accesses, rs.hash_accesses) << label;
}

// Batch ≡ N independent per-request runs, bitwise (answers, stats, errors).
void ExpectBatchMatchesReference(
    const UnfairnessCube& cube, const IndexSet& indices,
    const std::vector<QuantificationRequest>& requests,
    BatchExecStats* stats = nullptr) {
  std::vector<Result<QuantificationResult>> batched =
      SolveQuantificationBatch(cube, indices, requests, stats);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<QuantificationResult> reference =
        SolveQuantification(cube, indices, requests[i]);
    ExpectIdentical(batched[i], reference, "request " + std::to_string(i));
  }
}

// A cube with missing cells, negative values and duplicate aggregates so
// every policy/direction branch is exercised.
UnfairnessCube MakeRandomCube(Rng* rng, size_t groups, size_t queries,
                              size_t locations, double present_p = 0.85,
                              bool with_negatives = false) {
  std::vector<int32_t> group_ids;
  std::vector<int32_t> query_ids;
  std::vector<int32_t> location_ids;
  for (size_t g = 0; g < groups; ++g) {
    group_ids.push_back(static_cast<int32_t>(100 + g));
  }
  for (size_t q = 0; q < queries; ++q) {
    query_ids.push_back(static_cast<int32_t>(200 + q));
  }
  for (size_t l = 0; l < locations; ++l) {
    location_ids.push_back(static_cast<int32_t>(300 + l));
  }
  Result<UnfairnessCube> cube =
      UnfairnessCube::Make(group_ids, query_ids, location_ids);
  EXPECT_TRUE(cube.ok());
  for (size_t g = 0; g < groups; ++g) {
    for (size_t q = 0; q < queries; ++q) {
      for (size_t l = 0; l < locations; ++l) {
        if (!rng->NextBernoulli(present_p)) continue;
        double value = rng->NextDouble();
        if (with_negatives && rng->NextBernoulli(0.3)) value = -value;
        cube->Set(g, q, l, value);
      }
    }
  }
  return std::move(*cube);
}

QuantificationRequest MakeRandomRequest(Rng* rng, const UnfairnessCube& cube) {
  static const Dimension kDims[3] = {Dimension::kGroup, Dimension::kQuery,
                                     Dimension::kLocation};
  static const TopKAlgorithm kAlgs[4] = {
      TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
      TopKAlgorithm::kNRA, TopKAlgorithm::kScan};
  QuantificationRequest request;
  request.target = kDims[rng->NextBelow(3)];
  request.k = 1 + rng->NextBelow(6);
  request.direction = rng->NextBernoulli(0.7) ? RankDirection::kMostUnfair
                                              : RankDirection::kLeastUnfair;
  request.missing = rng->NextBernoulli(0.5) ? MissingCellPolicy::kSkip
                                            : MissingCellPolicy::kZero;
  request.algorithm = kAlgs[rng->NextBelow(4)];

  Dimension d1;
  Dimension d2;
  QuantificationOtherDims(request.target, &d1, &d2);
  auto random_selector = [&](Dimension d) {
    AxisSelector selector;
    size_t size = cube.axis_size(d);
    if (rng->NextBernoulli(0.4)) return selector;  // all
    size_t count = 1 + rng->NextBelow(static_cast<uint32_t>(size));
    for (size_t i = 0; i < count; ++i) {
      selector.positions.push_back(rng->NextBelow(
          static_cast<uint32_t>(size)));  // duplicates + any order
    }
    return selector;
  };
  request.agg1 = random_selector(d1);
  request.agg2 = random_selector(d2);
  if (rng->NextBernoulli(0.4)) {
    size_t size = cube.axis_size(request.target);
    size_t count = 1 + rng->NextBelow(static_cast<uint32_t>(size));
    for (size_t i = 0; i < count; ++i) {
      request.allowed_targets.push_back(
          static_cast<int32_t>(rng->NextBelow(static_cast<uint32_t>(size))));
    }
  }
  return request;
}

TEST(BatchExecTest, EmptyBatch) {
  Rng rng(11);
  UnfairnessCube cube = MakeRandomCube(&rng, 4, 3, 2);
  IndexSet indices = IndexSet::Build(cube);
  BatchExecStats stats;
  std::vector<Result<QuantificationResult>> results =
      SolveQuantificationBatch(cube, indices, {}, &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.groups, 0u);
  EXPECT_EQ(stats.requests, 0u);
}

TEST(BatchExecTest, SingleRequestEachAlgorithm) {
  Rng rng(12);
  UnfairnessCube cube = MakeRandomCube(&rng, 6, 4, 3);
  IndexSet indices = IndexSet::Build(cube);
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
        TopKAlgorithm::kNRA, TopKAlgorithm::kScan}) {
    QuantificationRequest request;
    request.target = Dimension::kGroup;
    request.k = 3;
    request.missing = MissingCellPolicy::kZero;  // NRA-compatible
    request.algorithm = algorithm;
    ExpectBatchMatchesReference(cube, indices, {request});
  }
}

// All four algorithms, both directions, kSkip and kZero, with and without
// allowed-target bitmaps, sharing one selector group: the headline shape.
TEST(BatchExecTest, MixedLanesOneGroupBitwise) {
  Rng rng(13);
  UnfairnessCube cube = MakeRandomCube(&rng, 12, 5, 4);
  IndexSet indices = IndexSet::Build(cube);
  std::vector<QuantificationRequest> requests;
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
        TopKAlgorithm::kNRA, TopKAlgorithm::kScan}) {
    for (RankDirection direction :
         {RankDirection::kMostUnfair, RankDirection::kLeastUnfair}) {
      for (MissingCellPolicy missing :
           {MissingCellPolicy::kSkip, MissingCellPolicy::kZero}) {
        for (bool filtered : {false, true}) {
          QuantificationRequest request;
          request.target = Dimension::kGroup;
          request.k = 1 + rng.NextBelow(5);
          request.direction = direction;
          request.missing = missing;
          request.algorithm = algorithm;
          if (filtered) request.allowed_targets = {0, 2, 3, 5, 7, 11};
          requests.push_back(request);
        }
      }
    }
  }
  BatchExecStats stats;
  ExpectBatchMatchesReference(cube, indices, requests, &stats);
  // One selector group; NRA lanes with kSkip or kLeastUnfair error out.
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.invalid, 6u);  // 8 NRA combos - 2 valid
  EXPECT_EQ(stats.requests, requests.size() - stats.invalid);
  EXPECT_GT(stats.lists_demanded, stats.lists_gathered);
}

TEST(BatchExecTest, PropertyRandomBatchesBitwise) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const bool negatives = (seed % 3) == 0;  // exercise NRA's fallback path
    const double present_p = (seed % 2) == 0 ? 1.0 : 0.8;
    UnfairnessCube cube =
        MakeRandomCube(&rng, 5 + rng.NextBelow(10), 2 + rng.NextBelow(5),
                       2 + rng.NextBelow(4), present_p, negatives);
    IndexSet indices = IndexSet::Build(cube);
    std::vector<QuantificationRequest> requests;
    const size_t batch = 20 + rng.NextBelow(20);
    for (size_t i = 0; i < batch; ++i) {
      requests.push_back(MakeRandomRequest(&rng, cube));
    }
    ExpectBatchMatchesReference(cube, indices, requests);
  }
}

// Selector sequences group verbatim: permutations and duplicates land in
// different groups (their list views differ), but the results still match
// the per-request reference bitwise.
TEST(BatchExecTest, DuplicateAndPermutedSelectors) {
  Rng rng(14);
  UnfairnessCube cube = MakeRandomCube(&rng, 8, 4, 3);
  IndexSet indices = IndexSet::Build(cube);
  std::vector<QuantificationRequest> requests;
  for (const std::vector<size_t>& agg1 : std::vector<std::vector<size_t>>{
           {0, 1}, {1, 0}, {0, 0, 1}, {0, 1, 2, 3}, {}}) {
    QuantificationRequest request;
    request.target = Dimension::kGroup;
    request.k = 4;
    request.agg1.positions = agg1;
    request.algorithm = TopKAlgorithm::kScan;
    requests.push_back(request);
    request.algorithm = TopKAlgorithm::kThresholdAlgorithm;
    requests.push_back(request);
  }
  BatchExecStats stats;
  ExpectBatchMatchesReference(cube, indices, requests, &stats);
  // {0,1} and {1,0} are distinct sequences; {} ("all") distinct from
  // {0,1,2,3} even though it resolves the same axis.
  EXPECT_EQ(stats.groups, 5u);
}

TEST(BatchExecTest, ValidationErrorsMatchPerRequest) {
  Rng rng(15);
  UnfairnessCube cube = MakeRandomCube(&rng, 5, 3, 2);
  IndexSet indices = IndexSet::Build(cube);
  std::vector<QuantificationRequest> requests;

  QuantificationRequest bad_selector;
  bad_selector.agg1 = AxisSelector::Single(99);
  requests.push_back(bad_selector);

  QuantificationRequest bad_allowed;
  bad_allowed.allowed_targets = {-1};
  requests.push_back(bad_allowed);

  QuantificationRequest zero_k;
  zero_k.k = 0;
  requests.push_back(zero_k);

  QuantificationRequest nra_skip;
  nra_skip.algorithm = TopKAlgorithm::kNRA;
  nra_skip.missing = MissingCellPolicy::kSkip;
  requests.push_back(nra_skip);

  QuantificationRequest nra_least;
  nra_least.algorithm = TopKAlgorithm::kNRA;
  nra_least.missing = MissingCellPolicy::kZero;
  nra_least.direction = RankDirection::kLeastUnfair;
  requests.push_back(nra_least);

  QuantificationRequest good;
  good.k = 2;
  requests.push_back(good);

  ExpectBatchMatchesReference(cube, indices, requests);
}

// NRA rejects more than 64 lists; the batch path must reject identically
// while other lanes in the same group still compute.
TEST(BatchExecTest, NraListWidthBoundMatches) {
  Rng rng(16);
  UnfairnessCube cube = MakeRandomCube(&rng, 6, 9, 8, /*present_p=*/1.0);
  IndexSet indices = IndexSet::Build(cube);  // 72 (q,l) lists for kGroup
  QuantificationRequest nra;
  nra.target = Dimension::kGroup;
  nra.missing = MissingCellPolicy::kZero;
  nra.algorithm = TopKAlgorithm::kNRA;
  QuantificationRequest scan = nra;
  scan.algorithm = TopKAlgorithm::kScan;
  ExpectBatchMatchesReference(cube, indices, {nra, scan});
}

// k larger than the candidate set: every engine returns everything.
TEST(BatchExecTest, KLargerThanUniverse) {
  Rng rng(17);
  UnfairnessCube cube = MakeRandomCube(&rng, 4, 3, 2, /*present_p=*/0.6);
  IndexSet indices = IndexSet::Build(cube);
  std::vector<QuantificationRequest> requests;
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
        TopKAlgorithm::kNRA, TopKAlgorithm::kScan}) {
    QuantificationRequest request;
    request.k = 100;
    request.missing = MissingCellPolicy::kZero;
    request.algorithm = algorithm;
    requests.push_back(request);
  }
  ExpectBatchMatchesReference(cube, indices, requests);
}

// Wide selector fan-out crosses ScoreCandidates' parallel-scoring threshold
// (>= 64 lists, universe >= 128): the shared pass must still be bitwise.
TEST(BatchExecTest, ParallelScoringThresholdBitwise) {
  Rng rng(18);
  UnfairnessCube cube = MakeRandomCube(&rng, 150, 9, 8, /*present_p=*/0.9);
  IndexSet indices = IndexSet::Build(cube);
  std::vector<QuantificationRequest> requests;
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kScan, TopKAlgorithm::kFA,
        TopKAlgorithm::kThresholdAlgorithm}) {
    QuantificationRequest request;
    request.target = Dimension::kGroup;
    request.k = 7;
    request.algorithm = algorithm;
    requests.push_back(request);
    request.allowed_targets = {1, 3, 5, 7, 9, 111, 149};
    requests.push_back(request);
  }
  ExpectBatchMatchesReference(cube, indices, requests);
}

TEST(BatchExecTest, DeterministicAcrossRuns) {
  Rng rng(19);
  UnfairnessCube cube = MakeRandomCube(&rng, 10, 4, 3);
  IndexSet indices = IndexSet::Build(cube);
  std::vector<QuantificationRequest> requests;
  for (size_t i = 0; i < 16; ++i) {
    requests.push_back(MakeRandomRequest(&rng, cube));
  }
  std::vector<Result<QuantificationResult>> first =
      SolveQuantificationBatch(cube, indices, requests);
  std::vector<Result<QuantificationResult>> second =
      SolveQuantificationBatch(cube, indices, requests);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectIdentical(first[i], second[i], "rerun request " + std::to_string(i));
  }
}

// Amortization accounting: R requests over one selector group gather the
// lists once but demand them R times.
TEST(BatchExecTest, ExecStatsAmortization) {
  Rng rng(20);
  UnfairnessCube cube = MakeRandomCube(&rng, 8, 5, 4, /*present_p=*/1.0);
  IndexSet indices = IndexSet::Build(cube);
  std::vector<QuantificationRequest> requests;
  for (size_t i = 0; i < 10; ++i) {
    QuantificationRequest request;
    request.target = Dimension::kGroup;
    request.k = 1 + i;
    request.algorithm = TopKAlgorithm::kScan;
    requests.push_back(request);
  }
  BatchExecStats stats;
  std::vector<Result<QuantificationResult>> results =
      SolveQuantificationBatch(cube, indices, requests, &stats);
  ASSERT_EQ(results.size(), 10u);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.lists_gathered, 20u);   // 5 queries x 4 locations
  EXPECT_EQ(stats.lists_demanded, 200u);  // 10 lanes x 20 lists
  EXPECT_EQ(stats.shared_scan_passes, 1u);
  EXPECT_EQ(stats.scan_lanes, 10u);
}

}  // namespace
}  // namespace fairjob
