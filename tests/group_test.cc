#include "core/group.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

AttributeSchema Schema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  return schema;
}

TEST(GroupLabelTest, MakeSortsPredicates) {
  Result<GroupLabel> label = GroupLabel::Make({{1, 1}, {0, 2}});
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(label->predicates()[0], (GroupLabel::Predicate{0, 2}));
  EXPECT_EQ(label->predicates()[1], (GroupLabel::Predicate{1, 1}));
}

TEST(GroupLabelTest, RejectsEmpty) {
  EXPECT_FALSE(GroupLabel::Make({}).ok());
}

TEST(GroupLabelTest, RejectsRepeatedAttribute) {
  EXPECT_FALSE(GroupLabel::Make({{0, 1}, {0, 2}}).ok());
}

TEST(GroupLabelTest, AttributesAndValues) {
  GroupLabel label = *GroupLabel::Make({{0, 1}, {1, 0}});
  EXPECT_EQ(label.Attributes(), (std::vector<AttributeId>{0, 1}));
  EXPECT_TRUE(label.HasAttribute(0));
  EXPECT_FALSE(label.HasAttribute(2));
  EXPECT_EQ(*label.ValueOf(0), 1);
  EXPECT_FALSE(label.ValueOf(2).ok());
}

TEST(GroupLabelTest, WithValueReplaces) {
  GroupLabel label = *GroupLabel::Make({{0, 1}, {1, 0}});
  GroupLabel changed = label.WithValue(0, 2);
  EXPECT_EQ(*changed.ValueOf(0), 2);
  EXPECT_EQ(*changed.ValueOf(1), 0);
  EXPECT_EQ(changed.size(), 2u);
}

TEST(GroupLabelTest, WithValueExtends) {
  GroupLabel label = *GroupLabel::Make({{1, 1}});
  GroupLabel extended = label.WithValue(0, 0);
  EXPECT_EQ(extended.size(), 2u);
  EXPECT_EQ(*extended.ValueOf(0), 0);
  // Still sorted by attribute id.
  EXPECT_EQ(extended.predicates()[0].first, 0);
}

TEST(GroupLabelTest, MatchesFullAssignment) {
  GroupLabel black_female = *GroupLabel::Make({{0, 1}, {1, 1}});
  EXPECT_TRUE(black_female.Matches({1, 1}));
  EXPECT_FALSE(black_female.Matches({1, 0}));  // Black Male
  EXPECT_FALSE(black_female.Matches({2, 1}));  // White Female
}

TEST(GroupLabelTest, PartialLabelMatchesAllValuesOfFreeAttributes) {
  GroupLabel female = *GroupLabel::Make({{1, 1}});
  EXPECT_TRUE(female.Matches({0, 1}));
  EXPECT_TRUE(female.Matches({2, 1}));
  EXPECT_FALSE(female.Matches({0, 0}));
}

TEST(GroupLabelTest, MatchesRejectsShortDemographics) {
  GroupLabel label = *GroupLabel::Make({{1, 1}});
  EXPECT_FALSE(label.Matches({}));
}

TEST(GroupLabelTest, ToStringAndDisplayName) {
  AttributeSchema schema = Schema();
  GroupLabel label = *GroupLabel::Make({{0, 0}, {1, 1}});
  EXPECT_EQ(label.ToString(schema), "ethnicity=Asian ∧ gender=Female");
  EXPECT_EQ(label.DisplayName(schema), "Asian Female");
}

TEST(GroupLabelTest, EqualityAndHash) {
  GroupLabel a = *GroupLabel::Make({{0, 1}, {1, 0}});
  GroupLabel b = *GroupLabel::Make({{1, 0}, {0, 1}});  // same, different order
  GroupLabel c = *GroupLabel::Make({{0, 1}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  GroupLabel::Hash hash;
  EXPECT_EQ(hash(a), hash(b));
}


TEST(GroupLabelParseTest, ParsesToStringForms) {
  AttributeSchema schema = Schema();
  GroupLabel label = *GroupLabel::Make({{0, 1}, {1, 1}});
  Result<GroupLabel> parsed = GroupLabel::Parse(label.ToString(schema), schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == label);
}

TEST(GroupLabelParseTest, AcceptsAmpersandSpellings) {
  AttributeSchema schema = Schema();
  GroupLabel expected = *GroupLabel::Make({{0, 1}, {1, 1}});
  for (const char* text :
       {"ethnicity=Black & gender=Female", "gender=Female && ethnicity=Black",
        "  ethnicity = Black  &  gender = Female "}) {
    Result<GroupLabel> parsed = GroupLabel::Parse(text, schema);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_TRUE(*parsed == expected) << text;
  }
}

TEST(GroupLabelParseTest, SinglePredicate) {
  AttributeSchema schema = Schema();
  Result<GroupLabel> parsed = GroupLabel::Parse("gender=Male", schema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_EQ(*parsed->ValueOf(1), 0);
}

TEST(GroupLabelParseTest, RejectsMalformedInput) {
  AttributeSchema schema = Schema();
  EXPECT_FALSE(GroupLabel::Parse("", schema).ok());
  EXPECT_FALSE(GroupLabel::Parse("gender", schema).ok());
  EXPECT_FALSE(GroupLabel::Parse("age=Old", schema).ok());
  EXPECT_FALSE(GroupLabel::Parse("gender=Martian", schema).ok());
  EXPECT_FALSE(
      GroupLabel::Parse("gender=Male & gender=Female", schema).ok());
  EXPECT_FALSE(GroupLabel::Parse("gender=Male & ", schema).ok());
}

}  // namespace
}  // namespace fairjob
