#include "ranking/emd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace fairjob {
namespace {

TEST(Emd1DTest, IdenticalDistributionsZero) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(*Emd1D(p, p), 0.0);
}

TEST(Emd1DTest, OppositeEndsIsOne) {
  std::vector<double> p = {1.0, 0.0, 0.0, 0.0};
  std::vector<double> q = {0.0, 0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(*Emd1D(p, q), 1.0);
}

TEST(Emd1DTest, AdjacentBinsScaledByBinCount) {
  std::vector<double> p = {1.0, 0.0, 0.0, 0.0, 0.0};
  std::vector<double> q = {0.0, 1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(*Emd1D(p, q), 0.25);  // one step out of (5-1)
}

TEST(Emd1DTest, NormalizesUnnormalizedInput) {
  std::vector<double> p = {2.0, 0.0};
  std::vector<double> q = {0.0, 8.0};
  EXPECT_DOUBLE_EQ(*Emd1D(p, q), 1.0);
}

TEST(Emd1DTest, SymmetricAndNonNegative) {
  std::vector<double> p = {0.1, 0.4, 0.5, 0.0};
  std::vector<double> q = {0.3, 0.3, 0.2, 0.2};
  double d1 = *Emd1D(p, q);
  double d2 = *Emd1D(q, p);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_GT(d1, 0.0);
}

TEST(Emd1DTest, TriangleInequalityOnRandomTriples) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> p(8);
    std::vector<double> q(8);
    std::vector<double> r(8);
    for (size_t i = 0; i < 8; ++i) {
      p[i] = rng.NextDouble();
      q[i] = rng.NextDouble();
      r[i] = rng.NextDouble();
    }
    EXPECT_LE(*Emd1D(p, r), *Emd1D(p, q) + *Emd1D(q, r) + 1e-12);
  }
}

TEST(Emd1DTest, SingleBinIsZero) {
  EXPECT_DOUBLE_EQ(*Emd1D({5.0}, {3.0}), 0.0);
}

TEST(Emd1DTest, RejectsSizeMismatch) {
  EXPECT_FALSE(Emd1D({1.0, 0.0}, {1.0, 0.0, 0.0}).ok());
}

TEST(Emd1DTest, RejectsEmpty) { EXPECT_FALSE(Emd1D({}, {}).ok()); }

TEST(Emd1DTest, RejectsNegativeMass) {
  EXPECT_FALSE(Emd1D({1.0, -0.5}, {0.5, 0.5}).ok());
}

TEST(Emd1DTest, RejectsZeroTotalMass) {
  EXPECT_FALSE(Emd1D({0.0, 0.0}, {1.0, 0.0}).ok());
}

TEST(EmdHistogramTest, MatchesEmd1DOnNormalizedCounts) {
  Histogram p = Histogram::Canonical();
  Histogram q = Histogram::Canonical();
  p.AddAll({0.05, 0.15, 0.15});
  q.AddAll({0.85, 0.95});
  Result<double> d = EmdBetweenHistograms(p, q);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, *Emd1D(p.Normalized(), q.Normalized()));
  EXPECT_GT(*d, 0.5);
}

TEST(EmdHistogramTest, RejectsLayoutMismatch) {
  Histogram p = Histogram::Canonical();
  Histogram q = *Histogram::Make(5, 0.0, 1.0);
  p.Add(0.5);
  q.Add(0.5);
  EXPECT_FALSE(EmdBetweenHistograms(p, q).ok());
}

TEST(EmdHistogramTest, RejectsEmptyHistogram) {
  Histogram p = Histogram::Canonical();
  Histogram q = Histogram::Canonical();
  p.Add(0.5);
  EXPECT_FALSE(EmdBetweenHistograms(p, q).ok());
}

// --- general transportation solver -------------------------------------------

std::vector<std::vector<double>> LineCost(size_t n) {
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      cost[i][j] = std::fabs(static_cast<double>(i) - static_cast<double>(j)) /
                   static_cast<double>(n - 1);
    }
  }
  return cost;
}

TEST(EmdGeneralTest, AgreesWithClosedFormOnLineCosts) {
  Rng rng(37);
  for (int trial = 0; trial < 25; ++trial) {
    size_t n = 2 + rng.NextBelow(9);
    std::vector<double> p(n);
    std::vector<double> q(n);
    for (size_t i = 0; i < n; ++i) {
      p[i] = rng.NextDouble();
      q[i] = rng.NextDouble();
    }
    double closed = *Emd1D(p, q);
    double general = *EmdGeneral(p, q, LineCost(n));
    EXPECT_NEAR(general, closed, 1e-9) << "n=" << n << " trial=" << trial;
  }
}

TEST(EmdGeneralTest, ZeroCostMatrixGivesZero) {
  std::vector<std::vector<double>> cost(2, std::vector<double>(3, 0.0));
  EXPECT_NEAR(*EmdGeneral({0.5, 0.5}, {0.2, 0.3, 0.5}, cost), 0.0, 1e-12);
}

TEST(EmdGeneralTest, RectangularProblem) {
  // All supply at one source; demand split between two sinks at costs 1, 3.
  std::vector<std::vector<double>> cost = {{1.0, 3.0}};
  EXPECT_NEAR(*EmdGeneral({1.0}, {0.5, 0.5}, cost), 2.0, 1e-9);
}

TEST(EmdGeneralTest, PicksCheapAssignment) {
  // Two units each; crossing costs 0, parallel costs 1: optimal crosses.
  std::vector<std::vector<double>> cost = {{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_NEAR(*EmdGeneral({0.5, 0.5}, {0.5, 0.5}, cost), 0.0, 1e-9);
}

TEST(EmdGeneralTest, RejectsBadCostMatrix) {
  EXPECT_FALSE(EmdGeneral({1.0}, {1.0}, {{-1.0}}).ok());
  EXPECT_FALSE(EmdGeneral({1.0, 1.0}, {1.0}, {{1.0}}).ok());
  EXPECT_FALSE(EmdGeneral({1.0}, {1.0, 1.0}, {{1.0}}).ok());
}

TEST(EmdGeneralTest, RejectsZeroMass) {
  EXPECT_FALSE(EmdGeneral({0.0}, {1.0}, {{1.0}}).ok());
}

}  // namespace
}  // namespace fairjob
