// Differential suite: the dense position-indexed Fagin engine must return
// bitwise-identical top-k answers — and identical access-count semantics —
// to the legacy hash-based reference engine (core/fagin_reference.h), across
// every algorithm, direction, missing-cell policy and allowed-filter
// variant, on cubes with missing cells, and after incremental index
// maintenance. A dedicated binary (see tests/CMakeLists.txt) so CI can run
// it directly under ASan/TSan; the parallel scoring cases below must be
// TSan-clean.

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/fagin.h"
#include "core/fagin_family.h"
#include "core/fagin_reference.h"
#include "core/indices.h"
#include "core/unfairness_cube.h"

namespace fairjob {
namespace {

uint64_t BitsOf(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// A cube with the requested density of present cells; values uniform [0,1).
UnfairnessCube MakeRandomCube(Rng& rng, size_t groups, size_t queries,
                              size_t locations, double density) {
  std::vector<int32_t> g_ids, q_ids, l_ids;
  for (size_t i = 0; i < groups; ++i) g_ids.push_back(static_cast<int32_t>(i));
  for (size_t i = 0; i < queries; ++i) {
    q_ids.push_back(static_cast<int32_t>(100 + i));
  }
  for (size_t i = 0; i < locations; ++i) {
    l_ids.push_back(static_cast<int32_t>(200 + i));
  }
  auto cube = UnfairnessCube::Make(g_ids, q_ids, l_ids);
  EXPECT_TRUE(cube.ok()) << cube.status().message();
  for (size_t g = 0; g < groups; ++g) {
    for (size_t q = 0; q < queries; ++q) {
      for (size_t l = 0; l < locations; ++l) {
        if (rng.NextBernoulli(density)) cube->Set(g, q, l, rng.NextDouble());
      }
    }
  }
  return *std::move(cube);
}

// Runs one configuration through both engines and checks full agreement:
// same ok/error outcome, bitwise-equal answers, equal legacy stats fields,
// and correct storage-engine attribution of the random accesses.
void ExpectEnginesAgree(TopKAlgorithm algorithm,
                        const std::vector<const InvertedIndex*>& lists,
                        const TopKOptions& options) {
  SCOPED_TRACE(::testing::Message()
               << "algorithm=" << TopKAlgorithmName(algorithm)
               << " k=" << options.k << " most_unfair="
               << (options.direction == RankDirection::kMostUnfair)
               << " skip=" << (options.missing == MissingCellPolicy::kSkip)
               << " allowed=" << (options.allowed != nullptr));

  FaginStats dense_stats;
  Result<std::vector<ScoredEntry>> dense =
      RunTopK(algorithm, lists, options, &dense_stats);

  std::vector<HashedListView> views = BuildHashedViews(lists);
  FaginStats ref_stats;
  Result<std::vector<ScoredEntry>> ref =
      ReferenceRunTopK(algorithm, views, options, &ref_stats);

  ASSERT_EQ(dense.ok(), ref.ok())
      << "dense: " << dense.status().message()
      << " / reference: " << ref.status().message();
  if (!dense.ok()) return;

  ASSERT_EQ(dense->size(), ref->size());
  for (size_t i = 0; i < dense->size(); ++i) {
    EXPECT_EQ((*dense)[i].pos, (*ref)[i].pos) << "entry " << i;
    EXPECT_EQ(BitsOf((*dense)[i].value), BitsOf((*ref)[i].value))
        << "entry " << i << ": " << (*dense)[i].value << " vs "
        << (*ref)[i].value;
  }

  EXPECT_EQ(dense_stats.sorted_accesses, ref_stats.sorted_accesses);
  EXPECT_EQ(dense_stats.random_accesses, ref_stats.random_accesses);
  EXPECT_EQ(dense_stats.ids_scored, ref_stats.ids_scored);
  EXPECT_EQ(dense_stats.rounds, ref_stats.rounds);
  EXPECT_EQ(dense_stats.threshold_checks, ref_stats.threshold_checks);

  // Every random access is attributed to exactly one storage engine.
  EXPECT_EQ(dense_stats.dense_accesses, dense_stats.random_accesses);
  EXPECT_EQ(dense_stats.hash_accesses, 0u);
  EXPECT_EQ(ref_stats.hash_accesses, ref_stats.random_accesses);
  EXPECT_EQ(ref_stats.dense_accesses, 0u);
}

constexpr TopKAlgorithm kAlgorithms[] = {
    TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
    TopKAlgorithm::kNRA, TopKAlgorithm::kScan};
constexpr RankDirection kDirections[] = {RankDirection::kMostUnfair,
                                         RankDirection::kLeastUnfair};
constexpr MissingCellPolicy kPolicies[] = {MissingCellPolicy::kSkip,
                                           MissingCellPolicy::kZero};

// Every algorithm × direction × policy × allowed variant for the given
// lists. NRA rejects kSkip and kLeastUnfair; those configurations still run
// to assert error parity between the engines.
void RunFullGrid(const std::vector<const InvertedIndex*>& lists,
                 size_t universe, const std::vector<int32_t>& allowed,
                 size_t k) {
  for (TopKAlgorithm algorithm : kAlgorithms) {
    for (RankDirection direction : kDirections) {
      for (MissingCellPolicy missing : kPolicies) {
        for (bool restrict_targets : {false, true}) {
          TopKOptions options;
          options.k = k;
          options.direction = direction;
          options.missing = missing;
          options.allowed = restrict_targets ? &allowed : nullptr;
          options.universe_hint = universe;
          ExpectEnginesAgree(algorithm, lists, options);
        }
      }
    }
  }
}

TEST(FaginDenseDifferential, RandomCubesFullGrid) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    // Shapes chosen so every dimension gets a turn as the large axis; 0.6
    // density leaves plenty of missing cells.
    size_t groups = 3 + rng.NextBelow(6);
    size_t queries = 2 + rng.NextBelow(5);
    size_t locations = 2 + rng.NextBelow(4);
    UnfairnessCube cube =
        MakeRandomCube(rng, groups, queries, locations, 0.6);
    IndexSet indices = IndexSet::Build(cube);

    for (Dimension target :
         {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
      SCOPED_TRACE(::testing::Message() << "seed=" << seed << " target="
                                        << DimensionName(target));
      std::vector<const InvertedIndex*> lists =
          indices.ListsFor(target, AxisSelector::All(), AxisSelector::All());
      size_t universe = cube.axis_size(target);
      // An arbitrary-but-deterministic subset of eligible targets.
      std::vector<int32_t> allowed;
      for (size_t pos = 0; pos < universe; pos += 2) {
        allowed.push_back(static_cast<int32_t>(pos));
      }
      for (size_t k : {size_t{1}, size_t{3}, universe + 2}) {
        RunFullGrid(lists, universe, allowed, k);
      }
    }
  }
}

TEST(FaginDenseDifferential, SelectorSubsetsAgree) {
  Rng rng(7);
  UnfairnessCube cube = MakeRandomCube(rng, 6, 5, 4, 0.5);
  IndexSet indices = IndexSet::Build(cube);
  // Restrict the aggregation box: only some queries and locations.
  std::vector<const InvertedIndex*> lists = indices.ListsFor(
      Dimension::kGroup, AxisSelector{{0, 2, 4}}, AxisSelector{{1, 3}});
  std::vector<int32_t> allowed = {0, 1, 5};
  RunFullGrid(lists, cube.axis_size(Dimension::kGroup), allowed, 3);
}

// After IndexSet::RefreshColumn upserts/removes, the dense value columns
// must stay in sync: the refreshed set must match a set rebuilt from
// scratch, list by list, both via sorted access and via random access.
TEST(FaginDenseDifferential, RefreshColumnKeepsDenseColumnsInSync) {
  Rng rng(11);
  UnfairnessCube cube = MakeRandomCube(rng, 6, 5, 4, 0.7);
  IndexSet indices = IndexSet::Build(cube);

  // Touch two (query, location) columns: updates, inserts and removals.
  for (auto [q, l] : {std::pair<size_t, size_t>{1, 2}, {3, 0}}) {
    for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
      double coin = rng.NextDouble();
      if (coin < 0.35) {
        cube.Clear(g, q, l);
      } else if (coin < 0.8) {
        cube.Set(g, q, l, rng.NextDouble());
      }
    }
    indices.RefreshColumn(cube, q, l);
  }

  IndexSet rebuilt = IndexSet::Build(cube);
  for (Dimension target :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    Dimension o1 = target == Dimension::kGroup ? Dimension::kQuery
                                               : Dimension::kGroup;
    Dimension o2 = target == Dimension::kLocation ? Dimension::kQuery
                                                  : Dimension::kLocation;
    for (size_t a = 0; a < cube.axis_size(o1); ++a) {
      for (size_t b = 0; b < cube.axis_size(o2); ++b) {
        const InvertedIndex& got = indices.ListAt(target, a, b);
        const InvertedIndex& want = rebuilt.ListAt(target, a, b);
        SCOPED_TRACE(::testing::Message() << DimensionName(target) << " list ("
                                          << a << ", " << b << ")");
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got.entry(i).pos, want.entry(i).pos);
          EXPECT_EQ(BitsOf(got.entry(i).value), BitsOf(want.entry(i).value));
        }
        for (size_t pos = 0; pos < cube.axis_size(target); ++pos) {
          std::optional<double> gv = got.Find(static_cast<int32_t>(pos));
          std::optional<double> wv = want.Find(static_cast<int32_t>(pos));
          ASSERT_EQ(gv.has_value(), wv.has_value()) << "pos " << pos;
          if (gv.has_value()) {
            EXPECT_EQ(BitsOf(*gv), BitsOf(*wv));
          }
        }
      }
    }
  }

  // And the refreshed lists still drive every algorithm identically.
  std::vector<const InvertedIndex*> lists = indices.ListsFor(
      Dimension::kGroup, AxisSelector::All(), AxisSelector::All());
  std::vector<int32_t> allowed = {0, 2, 3};
  RunFullGrid(lists, cube.axis_size(Dimension::kGroup), allowed, 4);
}

// Upsert beyond the current dense extent must grow the column, and Remove
// must clear the slot; checked against a rebuilt-from-entries twin.
TEST(FaginDenseDifferential, UpsertGrowsAndRemoveClearsDenseColumn) {
  InvertedIndex list({{0, 0.5}, {2, 0.9}});
  ASSERT_EQ(list.dense_size(), 3u);
  list.Upsert(7, 0.25);
  EXPECT_GE(list.dense_size(), 8u);
  EXPECT_EQ(list.Find(7), std::optional<double>(0.25));
  list.Upsert(2, 0.1);
  EXPECT_EQ(list.Find(2), std::optional<double>(0.1));
  list.Remove(0);
  EXPECT_EQ(list.Find(0), std::nullopt);
  EXPECT_EQ(list.Find(-1), std::nullopt);
  EXPECT_EQ(list.Find(100), std::nullopt);

  std::vector<ScoredEntry> entries;
  for (size_t i = 0; i < list.size(); ++i) entries.push_back(list.entry(i));
  InvertedIndex twin(std::move(entries));
  for (int32_t pos = 0; pos < 10; ++pos) {
    EXPECT_EQ(list.Find(pos), twin.Find(pos)) << "pos " << pos;
  }
}

// Large selector fan-out: enough lists and a large enough universe to take
// the parallel candidate-scoring path in ScanTopK and FA phase 2
// (fagin_internal::kParallelScoringMinLists = 64, MinUniverse = 128). The
// answers must still be bitwise-identical to the serial reference, and the
// path must be TSan-clean.
TEST(FaginDenseDifferential, ParallelScoringPathMatchesReference) {
  Rng rng(13);
  constexpr size_t kUniverse = 160;
  constexpr size_t kLists = 70;
  std::vector<InvertedIndex> store;
  store.reserve(kLists);
  std::vector<int32_t> positions(kUniverse);
  for (size_t i = 0; i < kUniverse; ++i) {
    positions[i] = static_cast<int32_t>(i);
  }
  for (size_t l = 0; l < kLists; ++l) {
    rng.Shuffle(positions);
    size_t present = kUniverse / 2 + rng.NextBelow(kUniverse / 2);
    std::vector<ScoredEntry> entries;
    entries.reserve(present);
    for (size_t i = 0; i < present; ++i) {
      entries.push_back({positions[i], rng.NextDouble()});
    }
    store.emplace_back(std::move(entries));
  }
  std::vector<const InvertedIndex*> lists;
  for (const InvertedIndex& list : store) lists.push_back(&list);

  std::vector<int32_t> allowed;
  for (size_t pos = 0; pos < kUniverse; pos += 3) {
    allowed.push_back(static_cast<int32_t>(pos));
  }
  for (TopKAlgorithm algorithm : {TopKAlgorithm::kScan, TopKAlgorithm::kFA}) {
    for (MissingCellPolicy missing : kPolicies) {
      for (bool restrict_targets : {false, true}) {
        TopKOptions options;
        options.k = 10;
        options.missing = missing;
        options.allowed = restrict_targets ? &allowed : nullptr;
        options.universe_hint = kUniverse;
        ExpectEnginesAgree(algorithm, lists, options);
      }
    }
  }
}

// Negative list values disable NRA's monotone incremental top-k bookkeeping
// (lower bounds may decrease); the per-check selection fallback must still
// match the reference exactly.
TEST(FaginDenseDifferential, NegativeValuesTakeNraFallbackPath) {
  Rng rng(17);
  constexpr size_t kUniverse = 64;
  std::vector<InvertedIndex> store;
  for (size_t l = 0; l < 6; ++l) {
    std::vector<ScoredEntry> entries;
    for (size_t pos = 0; pos < kUniverse; ++pos) {
      if (rng.NextBernoulli(0.8)) {
        entries.push_back(
            {static_cast<int32_t>(pos), rng.NextDouble(-1.0, 1.0)});
      }
    }
    store.emplace_back(std::move(entries));
  }
  std::vector<const InvertedIndex*> lists;
  for (const InvertedIndex& list : store) lists.push_back(&list);

  for (size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
    TopKOptions options;
    options.k = k;
    options.missing = MissingCellPolicy::kZero;
    options.universe_hint = kUniverse;
    ExpectEnginesAgree(TopKAlgorithm::kNRA, lists, options);
  }
  std::vector<int32_t> allowed = {1, 7, 9, 30, 55};
  RunFullGrid(lists, kUniverse, allowed, 5);
}

// Error parity: both engines must reject the same invalid inputs.
TEST(FaginDenseDifferential, ErrorCasesMatchReference) {
  InvertedIndex list({{0, 0.5}, {1, 0.25}});
  std::vector<const InvertedIndex*> one = {&list};
  std::vector<HashedListView> one_view = BuildHashedViews(one);

  {  // k == 0.
    TopKOptions options;
    options.k = 0;
    for (TopKAlgorithm algorithm : kAlgorithms) {
      EXPECT_FALSE(RunTopK(algorithm, one, options).ok());
      EXPECT_FALSE(ReferenceRunTopK(algorithm, one_view, options).ok());
    }
  }
  {  // No lists.
    TopKOptions options;
    std::vector<const InvertedIndex*> none;
    std::vector<HashedListView> no_views;
    for (TopKAlgorithm algorithm : kAlgorithms) {
      EXPECT_FALSE(RunTopK(algorithm, none, options).ok());
      EXPECT_FALSE(ReferenceRunTopK(algorithm, no_views, options).ok());
    }
  }
  {  // NRA restrictions: kSkip and kLeastUnfair are rejected.
    TopKOptions options;
    options.missing = MissingCellPolicy::kSkip;
    EXPECT_FALSE(FaginNRA(one, options).ok());
    EXPECT_FALSE(ReferenceFaginNRA(one_view, options).ok());
    options.missing = MissingCellPolicy::kZero;
    options.direction = RankDirection::kLeastUnfair;
    EXPECT_FALSE(FaginNRA(one, options).ok());
    EXPECT_FALSE(ReferenceFaginNRA(one_view, options).ok());
  }
  {  // NRA's 64-list bitmask cap.
    std::vector<InvertedIndex> store;
    std::vector<const InvertedIndex*> many;
    for (size_t i = 0; i < 65; ++i) {
      store.emplace_back(std::vector<ScoredEntry>{{0, 0.5}});
    }
    for (const InvertedIndex& l : store) many.push_back(&l);
    std::vector<HashedListView> many_views = BuildHashedViews(many);
    TopKOptions options;
    options.missing = MissingCellPolicy::kZero;
    EXPECT_FALSE(FaginNRA(many, options).ok());
    EXPECT_FALSE(ReferenceFaginNRA(many_views, options).ok());
  }
}

// Empty lists (a cube column with no present cells) must be handled, not
// crash, and agree across engines.
TEST(FaginDenseDifferential, EmptyAndSingletonListsAgree) {
  InvertedIndex empty({});
  InvertedIndex single({{3, 0.75}});
  std::vector<const InvertedIndex*> lists = {&empty, &single, &empty};
  RunFullGrid(lists, 4, {3}, 2);
}

}  // namespace
}  // namespace fairjob
