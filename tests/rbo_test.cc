#include "ranking/rbo.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace fairjob {
namespace {

TEST(RboTest, IdenticalListsAreOne) {
  RankedList a = {1, 2, 3, 4, 5};
  EXPECT_NEAR(*RboSimilarity(a, a, 0.9), 1.0, 1e-12);
  EXPECT_NEAR(*RboDistance(a, a, 0.9), 0.0, 1e-12);
}

TEST(RboTest, DisjointListsAreZero) {
  EXPECT_NEAR(*RboSimilarity({1, 2, 3}, {4, 5, 6}, 0.9), 0.0, 1e-12);
}

TEST(RboTest, TopWeighted) {
  // Agreeing at the top matters more than agreeing at the bottom.
  RankedList base = {1, 2, 3, 4, 5, 6};
  RankedList top_agrees = {1, 2, 3, 9, 8, 7};
  RankedList bottom_agrees = {9, 8, 7, 4, 5, 6};
  EXPECT_GT(*RboSimilarity(base, top_agrees, 0.9),
            *RboSimilarity(base, bottom_agrees, 0.9));
}

TEST(RboTest, SmallerPMoreTopWeighted) {
  RankedList base = {1, 2, 3, 4, 5, 6};
  RankedList top_agrees = {1, 2, 9, 8, 7, 6};
  // With tiny p, only the top matters: similarity approaches 1.
  EXPECT_GT(*RboSimilarity(base, top_agrees, 0.1),
            *RboSimilarity(base, top_agrees, 0.95));
}

TEST(RboTest, HandComputedSingleDepth) {
  // Depth-1 lists: RBO = (1−p)·A_1 + p·A_1 = A_1.
  EXPECT_NEAR(*RboSimilarity({7}, {7}, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(*RboSimilarity({7}, {8}, 0.5), 0.0, 1e-12);
}

TEST(RboTest, HandComputedTwoDepths) {
  // a = {1,2}, b = {2,1}, p = 0.5: A_1 = 0, A_2 = 1.
  // RBO = (1−p)(A_1 + p·A_2) + p²·A_2 = 0.5·(0 + 0.5) + 0.25 = 0.5.
  EXPECT_NEAR(*RboSimilarity({1, 2}, {2, 1}, 0.5), 0.5, 1e-12);
}

TEST(RboTest, SymmetricAndBounded) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    size_t k = 2 + rng.NextBelow(15);
    std::vector<int32_t> pool(2 * k);
    std::iota(pool.begin(), pool.end(), 0);
    rng.Shuffle(pool);
    RankedList a(pool.begin(), pool.begin() + static_cast<long>(k));
    rng.Shuffle(pool);
    RankedList b(pool.begin(), pool.begin() + static_cast<long>(k));
    double ab = *RboSimilarity(a, b, 0.9);
    double ba = *RboSimilarity(b, a, 0.9);
    EXPECT_NEAR(ab, ba, 1e-12);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

TEST(RboTest, UnequalLengthsUseCommonDepth) {
  RankedList a = {1, 2, 3, 4, 5};
  RankedList b = {1, 2};
  Result<double> r = RboSimilarity(a, b, 0.9);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-12);  // agreement 1 at every evaluated depth
}

TEST(RboTest, Validation) {
  EXPECT_FALSE(RboSimilarity({}, {1}, 0.9).ok());
  EXPECT_FALSE(RboSimilarity({1}, {1}, 0.0).ok());
  EXPECT_FALSE(RboSimilarity({1}, {1}, 1.0).ok());
  EXPECT_FALSE(RboSimilarity({1, 1}, {1, 2}, 0.9).ok());
}

TEST(RboTest, DistanceComplementsSimilarity) {
  RankedList a = {1, 2, 3};
  RankedList b = {3, 1, 9};
  EXPECT_NEAR(*RboSimilarity(a, b, 0.9) + *RboDistance(a, b, 0.9), 1.0, 1e-12);
}

}  // namespace
}  // namespace fairjob
