#include "common/flags.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

TEST(FlagsTest, KeyValuePairs) {
  Flags flags = *Flags::Parse({"--crawl", "a.csv", "--k", "7"});
  EXPECT_EQ(flags.GetString("crawl"), "a.csv");
  EXPECT_EQ(*flags.GetInt("k", 0), 7);
}

TEST(FlagsTest, EqualsSyntax) {
  Flags flags = *Flags::Parse({"--measure=exposure", "--rate=0.5"});
  EXPECT_EQ(flags.GetString("measure"), "exposure");
  EXPECT_DOUBLE_EQ(*flags.GetDouble("rate", 0.0), 0.5);
}

TEST(FlagsTest, BooleanSwitches) {
  Flags flags = *Flags::Parse({"--least", "--dim", "group"});
  EXPECT_TRUE(flags.Has("least"));
  EXPECT_EQ(flags.GetString("least"), "");
  EXPECT_EQ(flags.GetString("dim"), "group");
}

TEST(FlagsTest, TrailingBooleanSwitch) {
  Flags flags = *Flags::Parse({"--k", "3", "--least"});
  EXPECT_TRUE(flags.Has("least"));
  EXPECT_EQ(*flags.GetInt("k", 0), 3);
}

TEST(FlagsTest, ConsecutiveFlagsAreBoolean) {
  Flags flags = *Flags::Parse({"--a", "--b", "value"});
  EXPECT_TRUE(flags.Has("a"));
  EXPECT_EQ(flags.GetString("a"), "");
  EXPECT_EQ(flags.GetString("b"), "value");
}

TEST(FlagsTest, PositionalArguments) {
  Flags flags = *Flags::Parse({"audit", "--k", "3", "extra"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"audit", "extra"}));
}

TEST(FlagsTest, Defaults) {
  Flags flags = *Flags::Parse({});
  EXPECT_FALSE(flags.Has("missing"));
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(*flags.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("missing", 1.5), 1.5);
}

TEST(FlagsTest, BadNumbersAreErrors) {
  Flags flags = *Flags::Parse({"--k", "seven", "--rate", "fast"});
  EXPECT_FALSE(flags.GetInt("k", 0).ok());
  EXPECT_FALSE(flags.GetDouble("rate", 0.0).ok());
}

TEST(FlagsTest, ZeroValuesParsePerNumericType) {
  // Zero is a legitimate value in both spellings — it must never be
  // rejected or mistaken for "flag absent" (fallbacks are non-zero to
  // prove the parsed zero is what comes back).
  Flags flags = *Flags::Parse({"--deadline_ms=0", "--rate=0.0"});
  EXPECT_EQ(*flags.GetInt("deadline_ms", 99), 0);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("rate", 9.9), 0.0);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("deadline_ms", 9.9), 0.0);

  Flags spaced = *Flags::Parse({"--deadline_ms", "0", "--rate", "0.0"});
  EXPECT_EQ(*spaced.GetInt("deadline_ms", 99), 0);
  EXPECT_DOUBLE_EQ(*spaced.GetDouble("rate", 9.9), 0.0);
  EXPECT_EQ(*spaced.GetInt("deadline_ms", 99), *flags.GetInt("deadline_ms", 1));
}

TEST(FlagsTest, NegativeZeroAndSignedValuesParse) {
  Flags flags = *Flags::Parse({"--delta=-0", "--offset=-3", "--gain=-0.5"});
  EXPECT_EQ(*flags.GetInt("delta", 99), 0);
  EXPECT_EQ(*flags.GetInt("offset", 0), -3);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("gain", 0.0), -0.5);
}

TEST(FlagsTest, EmptyNumericValueIsAnErrorNotZero) {
  // `--k=` and a bare `--k` switch both store the empty string; strtol
  // would silently parse neither, so the accessor must produce a clear
  // error instead of 0 for either numeric type.
  Flags flags = *Flags::Parse({"--k=", "--least"});
  EXPECT_FALSE(flags.GetInt("k", 7).ok());
  EXPECT_FALSE(flags.GetDouble("k", 7.0).ok());
  EXPECT_FALSE(flags.GetInt("least", 7).ok());
  EXPECT_NE(flags.GetInt("k", 7).status().message().find("no value"),
            std::string::npos);
}

TEST(FlagsTest, WhitespaceAroundNumericValueRejected) {
  Flags flags = *Flags::Parse({"--k= 5", "--rate=0.5 "});
  EXPECT_FALSE(flags.GetInt("k", 0).ok());
  EXPECT_FALSE(flags.GetDouble("rate", 0.0).ok());
}

TEST(FlagsTest, NumericOverflowRejected) {
  Flags flags = *Flags::Parse(
      {"--big=99999999999999999999999999", "--huge=1e999999"});
  EXPECT_FALSE(flags.GetInt("big", 0).ok());
  EXPECT_FALSE(flags.GetDouble("huge", 0.0).ok());
}

TEST(FlagsTest, MalformedFlagRejected) {
  EXPECT_FALSE(Flags::Parse({"--"}).ok());
  EXPECT_FALSE(Flags::Parse({"--=x"}).ok());
}

TEST(FlagsTest, EqualsValueMayContainDashes) {
  Flags flags = *Flags::Parse({"--name=--weird--"});
  EXPECT_EQ(flags.GetString("name"), "--weird--");
}

TEST(FlagsTest, NamesListsEveryParsedFlagSorted) {
  Flags flags = *Flags::Parse({"--zeta", "1", "--alpha=2", "--mid", "pos"});
  EXPECT_EQ(flags.Names(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
  EXPECT_TRUE((*Flags::Parse({"positional", "only"})).Names().empty());
}

}  // namespace
}  // namespace fairjob
