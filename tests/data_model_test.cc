#include "core/data_model.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

AttributeSchema Schema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  return schema;
}

TEST(VocabularyTest, GetOrAddAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.GetOrAdd("a"), 0);
  EXPECT_EQ(v.GetOrAdd("b"), 1);
  EXPECT_EQ(v.GetOrAdd("a"), 0);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.NameOf(1), "b");
}

TEST(VocabularyTest, FindUnknownFails) {
  Vocabulary v;
  v.GetOrAdd("x");
  EXPECT_EQ(*v.Find("x"), 0);
  EXPECT_FALSE(v.Find("y").ok());
}

TEST(MarketplaceDatasetTest, AddWorkerValidates) {
  MarketplaceDataset ds(Schema());
  EXPECT_TRUE(ds.AddWorker("w1", {0, 1}).ok());
  EXPECT_FALSE(ds.AddWorker("w2", {0}).ok());       // bad arity
  EXPECT_FALSE(ds.AddWorker("w1", {0, 0}).ok());    // duplicate name
  EXPECT_EQ(ds.num_workers(), 1u);
  EXPECT_EQ(ds.worker_demographics(0), (Demographics{0, 1}));
}

TEST(MarketplaceDatasetTest, SetRankingValidatesWorkers) {
  MarketplaceDataset ds(Schema());
  ASSERT_TRUE(ds.AddWorker("w1", {0, 0}).ok());
  MarketRanking bad_worker;
  bad_worker.workers = {0, 7};
  EXPECT_FALSE(ds.SetRanking(0, 0, bad_worker).ok());
  MarketRanking dup;
  dup.workers = {0, 0};
  EXPECT_FALSE(ds.SetRanking(0, 0, dup).ok());
}

TEST(MarketplaceDatasetTest, SetRankingValidatesScoreLength) {
  MarketplaceDataset ds(Schema());
  ASSERT_TRUE(ds.AddWorker("w1", {0, 0}).ok());
  ASSERT_TRUE(ds.AddWorker("w2", {1, 1}).ok());
  MarketRanking r;
  r.workers = {0, 1};
  r.scores = {0.9};
  EXPECT_FALSE(ds.SetRanking(0, 0, r).ok());
  r.scores = {0.9, 0.5};
  EXPECT_TRUE(ds.SetRanking(0, 0, r).ok());
}

TEST(MarketplaceDatasetTest, GetRankingRoundTrip) {
  MarketplaceDataset ds(Schema());
  ASSERT_TRUE(ds.AddWorker("w1", {0, 0}).ok());
  QueryId q = ds.queries().GetOrAdd("Cleaning");
  LocationId l = ds.locations().GetOrAdd("NYC");
  MarketRanking r;
  r.workers = {0};
  ASSERT_TRUE(ds.SetRanking(q, l, r).ok());
  const MarketRanking* got = ds.GetRanking(q, l);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->workers, (std::vector<WorkerId>{0}));
  EXPECT_EQ(ds.GetRanking(q, l + 1), nullptr);
  EXPECT_EQ(ds.num_rankings(), 1u);
}

TEST(MarketplaceDatasetTest, OverwritingRankingReplaces) {
  MarketplaceDataset ds(Schema());
  ASSERT_TRUE(ds.AddWorker("w1", {0, 0}).ok());
  ASSERT_TRUE(ds.AddWorker("w2", {1, 0}).ok());
  MarketRanking r1;
  r1.workers = {0};
  MarketRanking r2;
  r2.workers = {1, 0};
  ASSERT_TRUE(ds.SetRanking(0, 0, r1).ok());
  ASSERT_TRUE(ds.SetRanking(0, 0, r2).ok());
  EXPECT_EQ(ds.GetRanking(0, 0)->workers.size(), 2u);
  EXPECT_EQ(ds.num_rankings(), 1u);
}

TEST(SearchDatasetTest, AddUserValidates) {
  SearchDataset ds(Schema());
  EXPECT_TRUE(ds.AddUser("u1", {2, 1}).ok());
  EXPECT_FALSE(ds.AddUser("u1", {0, 0}).ok());
  EXPECT_FALSE(ds.AddUser("u2", {9, 0}).ok());
  EXPECT_EQ(ds.num_users(), 1u);
}

TEST(SearchDatasetTest, AddObservationValidates) {
  SearchDataset ds(Schema());
  ASSERT_TRUE(ds.AddUser("u1", {0, 0}).ok());
  EXPECT_FALSE(ds.AddObservation(0, 0, {5, {1, 2}}).ok());  // unknown user
  EXPECT_FALSE(ds.AddObservation(0, 0, {0, {}}).ok());      // empty list
  EXPECT_FALSE(ds.AddObservation(0, 0, {0, {1, 1}}).ok());  // duplicate doc
  EXPECT_TRUE(ds.AddObservation(0, 0, {0, {1, 2}}).ok());
}

TEST(SearchDatasetTest, MultipleObservationsPerCellAccumulate) {
  SearchDataset ds(Schema());
  ASSERT_TRUE(ds.AddUser("u1", {0, 0}).ok());
  ASSERT_TRUE(ds.AddUser("u2", {1, 1}).ok());
  ASSERT_TRUE(ds.AddObservation(3, 4, {0, {1, 2}}).ok());
  ASSERT_TRUE(ds.AddObservation(3, 4, {1, {2, 3}}).ok());
  ASSERT_TRUE(ds.AddObservation(3, 4, {0, {5, 6}}).ok());  // same user again
  const auto* obs = ds.GetObservations(3, 4);
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->size(), 3u);
  EXPECT_EQ(ds.GetObservations(3, 5), nullptr);
  EXPECT_EQ(ds.num_observation_cells(), 1u);
}

TEST(QueryLocationTest, HashAndEquality) {
  QueryLocation a{1, 2};
  QueryLocation b{1, 2};
  QueryLocation c{2, 1};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  QueryLocation::Hash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));
}


TEST(SearchDatasetTest, ObservedPairsSortedAndComplete) {
  SearchDataset ds(Schema());
  ASSERT_TRUE(ds.AddUser("u", {0, 0}).ok());
  ASSERT_TRUE(ds.AddObservation(2, 1, {0, {1}}).ok());
  ASSERT_TRUE(ds.AddObservation(0, 3, {0, {1}}).ok());
  ASSERT_TRUE(ds.AddObservation(0, 1, {0, {1}}).ok());
  std::vector<QueryLocation> pairs = ds.ObservedPairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_TRUE(pairs[0] == (QueryLocation{0, 1}));
  EXPECT_TRUE(pairs[1] == (QueryLocation{0, 3}));
  EXPECT_TRUE(pairs[2] == (QueryLocation{2, 1}));
}

}  // namespace
}  // namespace fairjob
