#include "core/quantification.h"

#include <gtest/gtest.h>

#include <memory>

namespace fairjob {
namespace {

class QuantificationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Axis ids deliberately differ from positions: groups {10,11,12},
    // queries {20,21}, locations {30,31}.
    cube_ = std::make_unique<UnfairnessCube>(
        *UnfairnessCube::Make({10, 11, 12}, {20, 21}, {30, 31}));
    // Group 0 averages 0.2, group 1 averages 0.5, group 2 averages 0.8.
    double base[3] = {0.2, 0.5, 0.8};
    for (size_t g = 0; g < 3; ++g) {
      for (size_t q = 0; q < 2; ++q) {
        for (size_t l = 0; l < 2; ++l) {
          double jitter = 0.01 * static_cast<double>(q) -
                          0.01 * static_cast<double>(l);
          cube_->Set(g, q, l, base[g] + jitter);
        }
      }
    }
    indices_ = std::make_unique<IndexSet>(IndexSet::Build(*cube_));
  }

  std::unique_ptr<UnfairnessCube> cube_;
  std::unique_ptr<IndexSet> indices_;
};

TEST_F(QuantificationTest, TopGroupsMostUnfair) {
  QuantificationRequest request;
  request.target = Dimension::kGroup;
  request.k = 2;
  Result<QuantificationResult> result =
      SolveQuantification(*cube_, *indices_, request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 2u);
  EXPECT_EQ(result->answers[0].id, 12);  // axis id, not position
  EXPECT_NEAR(result->answers[0].value, 0.8, 1e-9);
  EXPECT_EQ(result->answers[1].id, 11);
}

TEST_F(QuantificationTest, BottomGroupsLeastUnfair) {
  QuantificationRequest request;
  request.target = Dimension::kGroup;
  request.k = 1;
  request.direction = RankDirection::kLeastUnfair;
  Result<QuantificationResult> result =
      SolveQuantification(*cube_, *indices_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers[0].id, 10);
}

TEST_F(QuantificationTest, QueryAndLocationTargets) {
  QuantificationRequest request;
  request.target = Dimension::kQuery;
  request.k = 1;
  Result<QuantificationResult> result =
      SolveQuantification(*cube_, *indices_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers[0].id, 21);  // +0.01 jitter side

  request.target = Dimension::kLocation;
  result = SolveQuantification(*cube_, *indices_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers[0].id, 30);  // -0.01 applies to l=1
}

TEST_F(QuantificationTest, AggregationSubsetsRestrictLists) {
  // Restrict to query position 1 only: group averages shift by +0.01 - the
  // jitter mean over locations; ordering unchanged but values differ.
  QuantificationRequest request;
  request.target = Dimension::kGroup;
  request.k = 1;
  request.agg1 = AxisSelector::Single(1);  // queries axis
  Result<QuantificationResult> result =
      SolveQuantification(*cube_, *indices_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->answers[0].value, 0.8 + 0.01 - 0.005, 1e-9);
}

TEST_F(QuantificationTest, AllowedTargetsFilter) {
  QuantificationRequest request;
  request.target = Dimension::kGroup;
  request.k = 2;
  request.allowed_targets = {0, 1};  // exclude the most unfair group (pos 2)
  Result<QuantificationResult> result =
      SolveQuantification(*cube_, *indices_, request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 2u);
  EXPECT_EQ(result->answers[0].id, 11);
}

TEST_F(QuantificationTest, ScanBackendAgreesWithFagin) {
  for (Dimension target :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    QuantificationRequest request;
    request.target = target;
    request.k = 3;
    request.algorithm = TopKAlgorithm::kThresholdAlgorithm;
    Result<QuantificationResult> fagin =
        SolveQuantification(*cube_, *indices_, request);
    request.algorithm = TopKAlgorithm::kScan;
    Result<QuantificationResult> scan =
        SolveQuantification(*cube_, *indices_, request);
    ASSERT_TRUE(fagin.ok());
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(fagin->answers.size(), scan->answers.size());
    for (size_t i = 0; i < fagin->answers.size(); ++i) {
      EXPECT_EQ(fagin->answers[i].id, scan->answers[i].id);
      EXPECT_NEAR(fagin->answers[i].value, scan->answers[i].value, 1e-12);
    }
  }
}

TEST_F(QuantificationTest, ValidatesRequest) {
  QuantificationRequest request;
  request.k = 0;
  EXPECT_FALSE(SolveQuantification(*cube_, *indices_, request).ok());

  request.k = 1;
  request.agg1 = AxisSelector::Single(99);
  EXPECT_FALSE(SolveQuantification(*cube_, *indices_, request).ok());

  request.agg1 = {};
  request.allowed_targets = {42};
  EXPECT_FALSE(SolveQuantification(*cube_, *indices_, request).ok());
}

TEST_F(QuantificationTest, StatsArePopulated) {
  QuantificationRequest request;
  request.target = Dimension::kGroup;
  request.k = 1;
  Result<QuantificationResult> result =
      SolveQuantification(*cube_, *indices_, request);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.sorted_accesses, 0u);
  EXPECT_GT(result->stats.random_accesses, 0u);
  EXPECT_GT(result->stats.ids_scored, 0u);
}

}  // namespace
}  // namespace fairjob
