#include "crawl/crawler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace fairjob {
namespace {

// A scripted marketplace: fixed worker lists per (job, city), optional
// scripted transient failures by request ordinal.
class FakeSite : public MarketplaceSite {
 public:
  std::vector<std::string> Cities() const override { return cities_; }

  std::vector<std::string> JobsIn(const std::string& city) const override {
    auto it = jobs_.find(city);
    return it == jobs_.end() ? std::vector<std::string>{} : it->second;
  }

  Result<ResultPage> FetchPage(const std::string& job, const std::string& city,
                               size_t page, size_t page_size) override {
    ++fetch_calls;
    if (fail_ordinals.count(fetch_calls) > 0) {
      return Status::IOError("scripted transient failure");
    }
    if (permanent_failure_job == job) {
      return Status::Internal("scripted permanent failure");
    }
    auto it = results_.find(city + "|" + job);
    if (it == results_.end()) return Status::NotFound("no such query");
    const std::vector<std::string>& all = it->second;
    ResultPage out;
    size_t begin = page * page_size;
    size_t end = std::min(all.size(), begin + page_size);
    for (size_t i = begin; i < end; ++i) out.worker_names.push_back(all[i]);
    out.has_more = end < all.size();
    return out;
  }

  Result<RawProfile> FetchProfile(const std::string& worker_name) override {
    ++profile_calls;
    RawProfile p;
    p.worker_name = worker_name;
    p.picture_ref = "pic_" + worker_name;
    p.hourly_rate = 25.0;
    p.num_reviews = 10;
    return p;
  }

  void AddQuery(const std::string& city, const std::string& job,
                std::vector<std::string> workers) {
    if (std::find(cities_.begin(), cities_.end(), city) == cities_.end()) {
      cities_.push_back(city);
    }
    jobs_[city].push_back(job);
    results_[city + "|" + job] = std::move(workers);
  }

  size_t fetch_calls = 0;
  size_t profile_calls = 0;
  std::set<size_t> fail_ordinals;  // which FetchPage calls fail transiently
  std::string permanent_failure_job;

 private:
  std::vector<std::string> cities_;
  std::map<std::string, std::vector<std::string>> jobs_;
  std::map<std::string, std::vector<std::string>> results_;
};

std::vector<std::string> Workers(size_t n, const std::string& prefix = "w") {
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

TEST(CrawlerTest, CrawlsAllPagesInRankOrder) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", Workers(23));
  VirtualClock clock;
  CrawlerConfig config;
  config.page_size = 10;
  Crawler crawler(&site, &clock, config);
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 23u);
  for (size_t i = 0; i < 23; ++i) {
    EXPECT_EQ(report->records[i].rank, i + 1);
    EXPECT_EQ(report->records[i].worker_name, "w" + std::to_string(i));
    EXPECT_EQ(report->records[i].job, "cleaning");
    EXPECT_EQ(report->records[i].city, "NYC");
  }
}

TEST(CrawlerTest, ResultCapTruncatesAtFifty) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", Workers(80));
  VirtualClock clock;
  Crawler crawler(&site, &clock, CrawlerConfig{});
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 50u);
  EXPECT_EQ(report->records.back().rank, 50u);
  // 5 pages of 10 fetched, not 8.
  EXPECT_EQ(site.fetch_calls, 5u);
}

TEST(CrawlerTest, RateLimitingAdvancesVirtualClock) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", Workers(30));
  VirtualClock clock;
  CrawlerConfig config;
  config.min_request_interval_s = 7;
  Crawler crawler(&site, &clock, config);
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  // 3 requests: the 2nd and 3rd each wait 7s.
  EXPECT_EQ(report->finished_at_s, 14);
}

TEST(CrawlerTest, TransientFailuresAreRetriedWithBackoff) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", Workers(5));
  site.fail_ordinals = {1, 2};  // first two attempts fail
  VirtualClock clock;
  CrawlerConfig config;
  config.retry_backoff_s = 3;
  Crawler crawler(&site, &clock, config);
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 5u);
  EXPECT_EQ(report->retries, 2u);
  EXPECT_EQ(report->failed_queries, 0u);
  // Backoff 3s then 6s, plus politeness delays.
  EXPECT_GE(report->finished_at_s, 9);
}

TEST(CrawlerTest, RetriesExhaustedCountsFailedQuery) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", Workers(5));
  site.AddQuery("NYC", "moving", Workers(5));
  // The first query's 1 + max_retries attempts all fail; the second query's
  // first attempt (ordinal 4) succeeds.
  site.fail_ordinals = {1, 2, 3};
  VirtualClock clock;
  CrawlerConfig config;
  config.max_retries = 2;
  Crawler crawler(&site, &clock, config);
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->failed_queries, 1u);
  // The crawl as a whole continues past a failed query.
  ASSERT_EQ(report->records.size(), 5u);
  EXPECT_EQ(report->records[0].job, "moving");
}

TEST(CrawlerTest, PermanentFailureNotRetried) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", Workers(5));
  site.permanent_failure_job = "cleaning";
  VirtualClock clock;
  Crawler crawler(&site, &clock, CrawlerConfig{});
  CrawlReport report;
  Status s = crawler.CrawlQuery("cleaning", "NYC", &report);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(site.fetch_calls, 1u);
}

TEST(CrawlerTest, SelectiveRecrawlOnlyTouchesRequestedQueries) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", Workers(3, "a"));
  site.AddQuery("NYC", "moving", Workers(2, "b"));
  site.AddQuery("Chicago", "cleaning", Workers(4, "c"));
  VirtualClock clock;
  Crawler crawler(&site, &clock, CrawlerConfig{});
  Result<CrawlReport> report =
      crawler.CrawlQueries({{"cleaning", "NYC"}, {"cleaning", "Chicago"}});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 7u);  // 3 + 4; "moving" untouched
  for (const CrawlRecord& record : report->records) {
    EXPECT_EQ(record.job, "cleaning");
  }
  // Unknown queries count as failures but do not abort.
  Result<CrawlReport> partial =
      crawler.CrawlQueries({{"gardening", "NYC"}, {"moving", "NYC"}});
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->failed_queries, 1u);
  EXPECT_EQ(partial->records.size(), 2u);
}

TEST(CrawlerTest, MultipleCitiesAndJobs) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", Workers(3, "a"));
  site.AddQuery("NYC", "moving", Workers(2, "b"));
  site.AddQuery("Chicago", "cleaning", Workers(4, "c"));
  VirtualClock clock;
  Crawler crawler(&site, &clock, CrawlerConfig{});
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 9u);
}

TEST(CrawlerTest, CollectProfilesDeduplicates) {
  FakeSite site;
  site.AddQuery("NYC", "cleaning", {"w0", "w1"});
  site.AddQuery("NYC", "moving", {"w1", "w2"});
  VirtualClock clock;
  Crawler crawler(&site, &clock, CrawlerConfig{});
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  ProfileStore store;
  ASSERT_TRUE(crawler.CollectProfiles(report->records, &store, nullptr).ok());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(site.profile_calls, 3u);  // w1 fetched once
  EXPECT_TRUE(store.Contains("w2"));
}

TEST(CrawlRecordsCsvTest, RoundTrip) {
  std::vector<CrawlRecord> records = {
      {"cleaning", "NYC", 1, "w0"},
      {"yard, work", "Chicago, IL", 2, "w\"1\""},
  };
  Result<std::vector<CrawlRecord>> parsed =
      CrawlRecordsFromCsvRows(CrawlRecordsToCsvRows(records));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1].job, "yard, work");
  EXPECT_EQ((*parsed)[1].rank, 2u);
  EXPECT_EQ((*parsed)[1].worker_name, "w\"1\"");
}

TEST(CrawlRecordsCsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(CrawlRecordsFromCsvRows({}).ok());
  EXPECT_FALSE(CrawlRecordsFromCsvRows({{"bad", "header"}}).ok());
  EXPECT_FALSE(
      CrawlRecordsFromCsvRows({{"job", "city", "rank", "worker"},
                               {"j", "c", "zero", "w"}})
          .ok());
  EXPECT_FALSE(
      CrawlRecordsFromCsvRows({{"job", "city", "rank", "worker"},
                               {"j", "c", "-3", "w"}})
          .ok());
}

TEST(ProfileStoreTest, UpsertAndGet) {
  ProfileStore store;
  ASSERT_TRUE(store.Upsert({"w0", "pic0", 30.0, 5, "elite"}).ok());
  ASSERT_TRUE(store.Upsert({"w0", "pic0b", 31.0, 6, ""}).ok());  // refresh
  EXPECT_EQ(store.size(), 1u);
  Result<RawProfile> p = store.Get("w0");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->picture_ref, "pic0b");
  EXPECT_FALSE(store.Get("nope").ok());
  EXPECT_FALSE(store.Upsert({"", "", 0, 0, ""}).ok());
}

TEST(ProfileStoreTest, CsvRoundTrip) {
  ProfileStore store;
  ASSERT_TRUE(store.Upsert({"w0", "pic0", 30.25, 5, "elite;fast"}).ok());
  ASSERT_TRUE(store.Upsert({"w,1", "pic1", 18.0, 0, ""}).ok());
  Result<ProfileStore> restored = ProfileStore::FromCsvRows(store.ToCsvRows());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 2u);
  EXPECT_DOUBLE_EQ(restored->Get("w0")->hourly_rate, 30.25);
  EXPECT_EQ(restored->Get("w,1")->picture_ref, "pic1");
}

TEST(ProfileStoreTest, FromCsvRejectsMalformed) {
  EXPECT_FALSE(ProfileStore::FromCsvRows({}).ok());
  EXPECT_FALSE(ProfileStore::FromCsvRows({{"worker", "picture", "hourly_rate",
                                           "num_reviews", "badges"},
                                          {"w", "p", "abc", "1", ""}})
                   .ok());
}

}  // namespace
}  // namespace fairjob
