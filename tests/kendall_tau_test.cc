#include "ranking/kendall_tau.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace fairjob {
namespace {

TEST(CountInversionsTest, SortedHasNone) {
  EXPECT_EQ(CountInversions({1, 2, 3, 4, 5}), 0u);
}

TEST(CountInversionsTest, ReversedHasAllPairs) {
  EXPECT_EQ(CountInversions({5, 4, 3, 2, 1}), 10u);
}

TEST(CountInversionsTest, SingleSwap) {
  EXPECT_EQ(CountInversions({2, 1, 3}), 1u);
}

TEST(CountInversionsTest, MatchesBruteForceOnRandomInputs) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int32_t> v(30);
    for (auto& x : v) x = static_cast<int32_t>(rng.NextBelow(100));
    uint64_t brute = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      for (size_t j = i + 1; j < v.size(); ++j) {
        if (v[i] > v[j]) ++brute;
      }
    }
    EXPECT_EQ(CountInversions(v), brute);
  }
}

TEST(KendallTauDistanceTest, IdenticalListsAreZero) {
  RankedList a = {3, 1, 4, 1 + 4, 9};
  EXPECT_DOUBLE_EQ(*KendallTauDistance(a, a), 0.0);
}

TEST(KendallTauDistanceTest, ReversedListsAreOne) {
  RankedList a = {1, 2, 3, 4};
  RankedList b = {4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(*KendallTauDistance(a, b), 1.0);
}

TEST(KendallTauDistanceTest, SingleSwapNormalized) {
  RankedList a = {1, 2, 3};
  RankedList b = {2, 1, 3};
  EXPECT_DOUBLE_EQ(*KendallTauDistance(a, b), 1.0 / 3.0);
}

TEST(KendallTauDistanceTest, Symmetric) {
  RankedList a = {1, 2, 3, 4, 5};
  RankedList b = {2, 4, 1, 5, 3};
  EXPECT_DOUBLE_EQ(*KendallTauDistance(a, b), *KendallTauDistance(b, a));
}

TEST(KendallTauDistanceTest, SingletonIsZero) {
  EXPECT_DOUBLE_EQ(*KendallTauDistance({7}, {7}), 0.0);
}

TEST(KendallTauDistanceTest, RejectsEmpty) {
  EXPECT_FALSE(KendallTauDistance({}, {}).ok());
}

TEST(KendallTauDistanceTest, RejectsDifferentItemSets) {
  Result<double> r = KendallTauDistance({1, 2}, {1, 3});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(KendallTauDistanceTest, RejectsDifferentLengths) {
  EXPECT_FALSE(KendallTauDistance({1, 2, 3}, {1, 2}).ok());
}

TEST(KendallTauDistanceTest, RejectsDuplicates) {
  EXPECT_FALSE(KendallTauDistance({1, 1}, {1, 1}).ok());
}

TEST(KendallTauCorrelationTest, MapsDistanceToCorrelation) {
  RankedList a = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(*KendallTauCorrelation(a, a), 1.0);
  RankedList b = {4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(*KendallTauCorrelation(a, b), -1.0);
}

TEST(KendallTauTopKTest, IdenticalListsAreZero) {
  RankedList a = {10, 20, 30};
  EXPECT_DOUBLE_EQ(*KendallTauTopK(a, a, 0.5), 0.0);
}

TEST(KendallTauTopKTest, DisjointListsAreOne) {
  RankedList a = {1, 2, 3};
  RankedList b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(*KendallTauTopK(a, b, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*KendallTauTopK(a, b, 0.5), 1.0);
}

TEST(KendallTauTopKTest, SameItemsMatchesFullDistanceScaledByNormalizer) {
  // With identical item sets there are no case-2/3/4 pairs: the raw penalty
  // equals the classic discordant-pair count; only the normalizer differs.
  RankedList a = {1, 2, 3, 4};
  RankedList b = {4, 3, 2, 1};
  double p = 0.5;
  double raw = 6.0;  // all C(4,2) pairs discordant
  double norm = 16.0 + p * (6.0 + 6.0);
  EXPECT_NEAR(*KendallTauTopK(a, b, p), raw / norm, 1e-12);
}

TEST(KendallTauTopKTest, SymmetricUnderSwap) {
  RankedList a = {1, 2, 3, 7};
  RankedList b = {2, 9, 1, 5};
  EXPECT_DOUBLE_EQ(*KendallTauTopK(a, b, 0.5), *KendallTauTopK(b, a, 0.5));
}

TEST(KendallTauTopKTest, MoreOverlapMeansSmallerDistance) {
  RankedList a = {1, 2, 3, 4, 5};
  RankedList same_order_partial = {1, 2, 3, 8, 9};
  RankedList disjoint = {6, 7, 8, 9, 10};
  double d_partial = *KendallTauTopK(a, same_order_partial, 0.5);
  double d_disjoint = *KendallTauTopK(a, disjoint, 0.5);
  EXPECT_LT(d_partial, d_disjoint);
  EXPECT_GT(d_partial, 0.0);
}

TEST(KendallTauTopKTest, PenaltyParameterExactValues) {
  RankedList a = {1, 2, 3, 4};
  RankedList b = {1, 2, 7, 8};
  // Raw penalty: 4 case-3 pairs + 2 case-4 pairs ({3,4} and {7,8}) at p each;
  // normalizer: |a||b| + p(C(4,2)+C(4,2)) = 16 + 12p.
  EXPECT_NEAR(*KendallTauTopK(a, b, 0.0), 4.0 / 16.0, 1e-12);
  EXPECT_NEAR(*KendallTauTopK(a, b, 1.0), 6.0 / 28.0, 1e-12);
  EXPECT_NEAR(*KendallTauTopK(a, b, 0.5), 5.0 / 22.0, 1e-12);
}

TEST(KendallTauTopKTest, Case2ImpliedOrderCounts) {
  // j=2 only in a, ranked above i=1 there; in b, 1 present and 2 absent so
  // b implies 1 above 2: the pair is discordant (penalty 1).
  RankedList a = {2, 1};
  RankedList b = {1, 3};
  // Pairs over union {1,2,3}: (1,2): case 2 discordant = 1. (1,3): case 2,
  // a implies 1 above 3 (3 absent), b has 1 above 3: concordant = 0.
  // (2,3): case 3 (2 only in a, 3 only in b) = 1.
  // Normalizer: |a||b| + p(C(2,2 choose)...) = 4 + 0.5*(1+1) = 5.
  EXPECT_NEAR(*KendallTauTopK(a, b, 0.5), 2.0 / 5.0, 1e-12);
}

TEST(KendallTauTopKTest, RejectsBadPenalty) {
  EXPECT_FALSE(KendallTauTopK({1}, {1}, -0.1).ok());
  EXPECT_FALSE(KendallTauTopK({1}, {1}, 1.1).ok());
}

TEST(KendallTauTopKTest, RejectsEmptyOrDuplicates) {
  EXPECT_FALSE(KendallTauTopK({}, {1}, 0.5).ok());
  EXPECT_FALSE(KendallTauTopK({1, 1}, {1, 2}, 0.5).ok());
}

TEST(KendallTauTopKTest, DifferentLengthListsSupported) {
  RankedList a = {1, 2, 3, 4, 5};
  RankedList b = {1, 2};
  Result<double> d = KendallTauTopK(a, b, 0.5);
  ASSERT_TRUE(d.ok());
  EXPECT_GE(*d, 0.0);
  EXPECT_LE(*d, 1.0);
}

// Property sweep: distance stays in [0,1] and identical prefixes reduce it.
class KendallTopKPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(KendallTopKPropertyTest, RandomPairsStayNormalized) {
  double p = GetParam();
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = 2 + rng.NextBelow(20);
    RankedList a;
    RankedList b;
    // Draw from a shared pool so overlap varies.
    std::vector<int32_t> pool(2 * k);
    std::iota(pool.begin(), pool.end(), 0);
    rng.Shuffle(pool);
    a.assign(pool.begin(), pool.begin() + static_cast<long>(k));
    rng.Shuffle(pool);
    b.assign(pool.begin(), pool.begin() + static_cast<long>(k));
    Result<double> d = KendallTauTopK(a, b, p);
    ASSERT_TRUE(d.ok());
    EXPECT_GE(*d, 0.0);
    EXPECT_LE(*d, 1.0);
    // Self distance is 0, triangle-ish sanity: d(a,a)=0 <= d(a,b).
    EXPECT_LE(*KendallTauTopK(a, a, p), *d + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Penalties, KendallTopKPropertyTest,
                         ::testing::Values(0.0, 0.25, 0.5, 1.0));

}  // namespace
}  // namespace fairjob
