#include "crawl/labeling.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

AttributeSchema Schema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  return schema;
}

TEST(SimulateAnnotationTest, ZeroErrorReturnsTruth) {
  AttributeSchema schema = Schema();
  Rng rng(1);
  Demographics truth = {1, 0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(SimulateAnnotation(schema, truth, 0.0, &rng), truth);
  }
}

TEST(SimulateAnnotationTest, FullErrorNeverReturnsTrueValue) {
  AttributeSchema schema = Schema();
  Rng rng(2);
  Demographics truth = {1, 0};
  for (int i = 0; i < 50; ++i) {
    Demographics label = SimulateAnnotation(schema, truth, 1.0, &rng);
    EXPECT_NE(label[0], truth[0]);
    EXPECT_NE(label[1], truth[1]);
    EXPECT_TRUE(schema.IsValidDemographics(label));
  }
}

TEST(SimulateAnnotationTest, ErrorRateRoughlyRespected) {
  AttributeSchema schema = Schema();
  Rng rng(3);
  Demographics truth = {2, 1};
  int wrong = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    Demographics label = SimulateAnnotation(schema, truth, 0.2, &rng);
    if (label[0] != truth[0]) ++wrong;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / n, 0.2, 0.03);
}

TEST(MajorityVoteTest, UnanimousWins) {
  AttributeSchema schema = Schema();
  Result<Demographics> voted =
      MajorityVote(schema, {{1, 0}, {1, 0}, {1, 0}});
  ASSERT_TRUE(voted.ok());
  EXPECT_EQ(*voted, (Demographics{1, 0}));
}

TEST(MajorityVoteTest, TwoOfThreeWins) {
  AttributeSchema schema = Schema();
  Result<Demographics> voted =
      MajorityVote(schema, {{1, 0}, {1, 1}, {2, 1}});
  ASSERT_TRUE(voted.ok());
  EXPECT_EQ(*voted, (Demographics{1, 1}));
}

TEST(MajorityVoteTest, PerAttributeIndependence) {
  AttributeSchema schema = Schema();
  // Ethnicity majority is 0; gender majority is 1 — from different labelers.
  Result<Demographics> voted =
      MajorityVote(schema, {{0, 0}, {0, 1}, {1, 1}});
  ASSERT_TRUE(voted.ok());
  EXPECT_EQ(*voted, (Demographics{0, 1}));
}

TEST(MajorityVoteTest, TieBreaksTowardSmallestValue) {
  AttributeSchema schema = Schema();
  Result<Demographics> voted = MajorityVote(schema, {{2, 0}, {0, 1}});
  ASSERT_TRUE(voted.ok());
  EXPECT_EQ((*voted)[0], 0);  // 0 vs 2 tie -> 0
  EXPECT_EQ((*voted)[1], 0);  // 0 vs 1 tie -> 0
}

TEST(MajorityVoteTest, RejectsEmptyAndInvalid) {
  AttributeSchema schema = Schema();
  EXPECT_FALSE(MajorityVote(schema, {}).ok());
  EXPECT_FALSE(MajorityVote(schema, {{9, 0}}).ok());
  EXPECT_FALSE(MajorityVote(schema, {{0}}).ok());
}

TEST(RunLabelingTest, PerfectAnnotatorsReproduceTruth) {
  AttributeSchema schema = Schema();
  std::vector<Demographics> truths = {{0, 0}, {1, 1}, {2, 0}};
  LabelingConfig config;
  config.error_rate = 0.0;
  Rng rng(5);
  Result<LabelingOutcome> outcome = RunLabeling(schema, truths, config, &rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->labels, truths);
  EXPECT_DOUBLE_EQ(outcome->attribute_accuracy, 1.0);
  EXPECT_EQ(outcome->items_fully_correct, 3u);
}

TEST(RunLabelingTest, MajorityVoteBeatsSingleAnnotatorAccuracy) {
  AttributeSchema schema = Schema();
  std::vector<Demographics> truths(800, Demographics{1, 0});
  Rng rng(7);

  LabelingConfig single;
  single.annotators_per_item = 1;
  single.error_rate = 0.25;
  Result<LabelingOutcome> one = RunLabeling(schema, truths, single, &rng);

  LabelingConfig triple = single;
  triple.annotators_per_item = 3;
  Result<LabelingOutcome> three = RunLabeling(schema, truths, triple, &rng);

  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  EXPECT_GT(three->attribute_accuracy, one->attribute_accuracy);
}

TEST(RunLabelingTest, AccuracyDegradesWithNoise) {
  AttributeSchema schema = Schema();
  std::vector<Demographics> truths(500, Demographics{0, 1});
  Rng rng(9);
  LabelingConfig low;
  low.error_rate = 0.05;
  LabelingConfig high;
  high.error_rate = 0.45;
  Result<LabelingOutcome> a = RunLabeling(schema, truths, low, &rng);
  Result<LabelingOutcome> b = RunLabeling(schema, truths, high, &rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->attribute_accuracy, b->attribute_accuracy);
  EXPECT_GT(a->attribute_accuracy, 0.97);
}

TEST(RunLabelingTest, ValidatesConfigAndTruths) {
  AttributeSchema schema = Schema();
  Rng rng(11);
  LabelingConfig config;
  config.annotators_per_item = 0;
  EXPECT_FALSE(RunLabeling(schema, {{0, 0}}, config, &rng).ok());
  config.annotators_per_item = 3;
  config.error_rate = 1.5;
  EXPECT_FALSE(RunLabeling(schema, {{0, 0}}, config, &rng).ok());
  config.error_rate = 0.1;
  EXPECT_FALSE(RunLabeling(schema, {{9, 9}}, config, &rng).ok());
}

TEST(RunLabelingTest, EmptyPopulationIsFine) {
  AttributeSchema schema = Schema();
  Rng rng(13);
  Result<LabelingOutcome> outcome = RunLabeling(schema, {}, {}, &rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->labels.empty());
  EXPECT_DOUBLE_EQ(outcome->attribute_accuracy, 1.0);
}

}  // namespace
}  // namespace fairjob
