#include "crawl/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "crawl/crawler.h"
#include "crawl/cube_io.h"
#include "crawl/dataset_assembly.h"
#include "crawl/profile_store.h"

namespace fairjob {
namespace {

using Rows = std::vector<std::vector<std::string>>;

TEST(CsvWriteTest, PlainFields) {
  EXPECT_EQ(WriteCsv({{"a", "b"}, {"c", "d"}}), "a,b\nc,d\n");
}

TEST(CsvWriteTest, QuotesFieldsWithSeparators) {
  EXPECT_EQ(WriteCsv({{"a,b", "c"}}), "\"a,b\",c\n");
}

TEST(CsvWriteTest, EscapesQuotes) {
  EXPECT_EQ(WriteCsv({{"say \"hi\""}}), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriteTest, QuotesNewlines) {
  EXPECT_EQ(WriteCsv({{"line1\nline2"}}), "\"line1\nline2\"\n");
}

TEST(CsvParseTest, SimpleRows) {
  Result<Rows> rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  Result<Rows> rows = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(CsvParseTest, EmptyFieldsPreserved) {
  Result<Rows> rows = ParseCsv("a,,c\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvParseTest, QuotedFieldWithComma) {
  Result<Rows> rows = ParseCsv("\"a,b\",c\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvParseTest, QuotedFieldWithEmbeddedNewline) {
  Result<Rows> rows = ParseCsv("\"l1\nl2\",x\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "l1\nl2");
}

TEST(CsvParseTest, DoubledQuoteUnescapes) {
  Result<Rows> rows = ParseCsv("\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0], "say \"hi\"");
}

TEST(CsvParseTest, CrLfEndings) {
  Result<Rows> rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"a", "b"}, {"c", "d"}}));
}

TEST(CsvParseTest, BlankLinesSkipped) {
  Result<Rows> rows = ParseCsv("a\n\nb\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (Rows{{"a"}, {"b"}}));
}

TEST(CsvParseTest, RejectsUnterminatedQuote) {
  Result<Rows> rows = ParseCsv("\"abc\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParseTest, RejectsQuoteInsideUnquotedField) {
  EXPECT_FALSE(ParseCsv("ab\"c\n").ok());
}

TEST(CsvRoundTripTest, ArbitraryContentSurvives) {
  Rows original = {
      {"plain", "with,comma", "with\"quote", "multi\nline", ""},
      {"", "", "", "", "x"},
  };
  Result<Rows> parsed = ParseCsv(WriteCsv(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(CsvFileTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/fairjob_csv_test.csv";
  Rows rows = {{"job", "city"}, {"Lawn Mowing", "Chicago, IL"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  Result<Rows> read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  Result<Rows> read = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

// Robustness fuzzing: random byte soup must never crash a parser — every
// outcome is either parsed rows or a clean error Status.
TEST(ParserRobustnessTest, RandomBytesNeverCrashParsers) {
  Rng rng(0xf022);
  const char alphabet[] = "abc,\"\n\r=|0159 \t#";
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    size_t length = rng.NextBelow(120);
    for (size_t i = 0; i < length; ++i) {
      soup.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    Result<Rows> rows = ParseCsv(soup);
    if (!rows.ok()) {
      EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    // Whatever parsed must round-trip through the writer and re-parse.
    Result<Rows> again = ParseCsv(WriteCsv(*rows));
    ASSERT_TRUE(again.ok());
    // (Blank-line skipping means rows with all-empty fields may collapse,
    // so compare only the non-degenerate case.)
    if (again->size() == rows->size()) {
      EXPECT_EQ(*again, *rows);
    }
  }
}

TEST(ParserRobustnessTest, RandomRowsNeverCrashRecordParsers) {
  Rng rng(0xf023);
  for (int trial = 0; trial < 200; ++trial) {
    Rows rows;
    size_t n_rows = rng.NextBelow(6);
    for (size_t r = 0; r < n_rows; ++r) {
      std::vector<std::string> row;
      size_t n_fields = rng.NextBelow(7);
      for (size_t f = 0; f < n_fields; ++f) {
        row.push_back(std::to_string(rng.NextBelow(100)));
      }
      rows.push_back(std::move(row));
    }
    // Any of these may fail, but must do so with a Status, not a crash.
    (void)CrawlRecordsFromCsvRows(rows);
    (void)ProfileStore::FromCsvRows(rows);
    (void)WorkerTableFromCsvRows(rows);
    (void)CubeFromCsvRows(rows);
    (void)CubeNamesFromCsvRows(rows);
  }
}

}  // namespace
}  // namespace fairjob
