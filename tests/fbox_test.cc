#include "core/fbox.h"

#include <gtest/gtest.h>

#include <memory>

namespace fairjob {
namespace {

// A small marketplace with controlled bias: females pushed to the bottom in
// "biased" queries, mixed elsewhere.
class FBoxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributeSchema schema;
    ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
    data_ = std::make_unique<MarketplaceDataset>(schema);
    space_ = std::make_unique<GroupSpace>(
        *GroupSpace::Enumerate(data_->schema()));

    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(data_->AddWorker("m" + std::to_string(i), {0}).ok());
      ASSERT_TRUE(data_->AddWorker("f" + std::to_string(i), {1}).ok());
    }
    QueryId biased = data_->queries().GetOrAdd("handyman");
    QueryId fair = data_->queries().GetOrAdd("delivery");
    LocationId nyc = data_->locations().GetOrAdd("New York City, NY");
    LocationId chi = data_->locations().GetOrAdd("Chicago, IL");

    // Males are workers 0,2,4,6; females 1,3,5,7.
    MarketRanking segregated;
    segregated.workers = {0, 2, 4, 6, 1, 3, 5, 7};
    MarketRanking interleaved;
    interleaved.workers = {0, 1, 2, 3, 4, 5, 6, 7};
    ASSERT_TRUE(data_->SetRanking(biased, nyc, segregated).ok());
    ASSERT_TRUE(data_->SetRanking(biased, chi, segregated).ok());
    ASSERT_TRUE(data_->SetRanking(fair, nyc, interleaved).ok());
    ASSERT_TRUE(data_->SetRanking(fair, chi, interleaved).ok());

    Result<FBox> fbox =
        FBox::ForMarketplace(data_.get(), space_.get(), MarketMeasure::kEmd);
    ASSERT_TRUE(fbox.ok());
    fbox_ = std::make_unique<FBox>(std::move(*fbox));
  }

  std::unique_ptr<MarketplaceDataset> data_;
  std::unique_ptr<GroupSpace> space_;
  std::unique_ptr<FBox> fbox_;
};

TEST_F(FBoxTest, CubeCoversAllAxes) {
  EXPECT_EQ(fbox_->cube().axis_size(Dimension::kGroup), 2u);
  EXPECT_EQ(fbox_->cube().axis_size(Dimension::kQuery), 2u);
  EXPECT_EQ(fbox_->cube().axis_size(Dimension::kLocation), 2u);
  EXPECT_EQ(fbox_->cube().num_present(), 8u);
}

TEST_F(FBoxTest, TopKQueriesRanksBiasedFirst) {
  Result<std::vector<FBox::NamedAnswer>> top =
      fbox_->TopK(Dimension::kQuery, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].name, "handyman");
  EXPECT_GT((*top)[0].value, (*top)[1].value);
  EXPECT_EQ((*top)[1].name, "delivery");
}

TEST_F(FBoxTest, LeastUnfairDirection) {
  Result<std::vector<FBox::NamedAnswer>> bottom =
      fbox_->TopK(Dimension::kQuery, 1, RankDirection::kLeastUnfair);
  ASSERT_TRUE(bottom.ok());
  EXPECT_EQ((*bottom)[0].name, "delivery");
}

TEST_F(FBoxTest, PosOfResolvesNamesInEveryDimension) {
  EXPECT_TRUE(fbox_->PosOf(Dimension::kGroup, "Female").ok());
  EXPECT_TRUE(fbox_->PosOf(Dimension::kQuery, "handyman").ok());
  EXPECT_TRUE(fbox_->PosOf(Dimension::kLocation, "Chicago, IL").ok());
  EXPECT_FALSE(fbox_->PosOf(Dimension::kQuery, "gardening").ok());
}

TEST_F(FBoxTest, NameOfInverseOfPosOf) {
  size_t pos = *fbox_->PosOf(Dimension::kLocation, "Chicago, IL");
  int32_t id = fbox_->cube().axis_id(Dimension::kLocation, pos);
  EXPECT_EQ(fbox_->NameOf(Dimension::kLocation, id), "Chicago, IL");
}

TEST_F(FBoxTest, CompareByNameGenderAcrossQueries) {
  Result<ComparisonResult> result = fbox_->CompareByName(
      Dimension::kGroup, "Male", "Female", Dimension::kQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
  // EMD between Male and Female histograms is symmetric: d1 == d2 per row.
  for (const ComparisonRow& row : result->rows) {
    EXPECT_NEAR(row.d1, row.d2, 1e-12);
  }
}

TEST_F(FBoxTest, QuantifyWithScanMatchesFagin) {
  QuantificationRequest request;
  request.target = Dimension::kLocation;
  request.k = 2;
  Result<QuantificationResult> fagin = fbox_->Quantify(request);
  request.algorithm = TopKAlgorithm::kScan;
  Result<QuantificationResult> scan = fbox_->Quantify(request);
  ASSERT_TRUE(fagin.ok());
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(fagin->answers.size(), scan->answers.size());
  for (size_t i = 0; i < fagin->answers.size(); ++i) {
    EXPECT_NEAR(fagin->answers[i].value, scan->answers[i].value, 1e-12);
  }
}

TEST_F(FBoxTest, PositionsOfBatchLookup) {
  Result<std::vector<size_t>> positions = fbox_->PositionsOf(
      Dimension::kQuery, {"handyman", "delivery"});
  ASSERT_TRUE(positions.ok());
  EXPECT_EQ(positions->size(), 2u);
  EXPECT_FALSE(
      fbox_->PositionsOf(Dimension::kQuery, {"handyman", "nope"}).ok());
}

TEST(FBoxConstructionTest, RejectsNullInputs) {
  EXPECT_FALSE(
      FBox::ForMarketplace(nullptr, nullptr, MarketMeasure::kEmd).ok());
}

TEST(FBoxSearchTest, BuildsFromSearchDataset) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  auto data = std::make_unique<SearchDataset>(schema);
  GroupSpace space = *GroupSpace::Enumerate(data->schema());
  ASSERT_TRUE(data->AddUser("m", {0}).ok());
  ASSERT_TRUE(data->AddUser("f", {1}).ok());
  QueryId q = data->queries().GetOrAdd("cleaning jobs");
  LocationId l = data->locations().GetOrAdd("Boston, MA");
  ASSERT_TRUE(data->AddObservation(q, l, {0, {1, 2, 3}}).ok());
  ASSERT_TRUE(data->AddObservation(q, l, {1, {4, 5, 6}}).ok());

  Result<FBox> fbox =
      FBox::ForSearch(data.get(), &space, SearchMeasure::kJaccard);
  ASSERT_TRUE(fbox.ok());
  Result<std::vector<FBox::NamedAnswer>> top = fbox->TopK(Dimension::kGroup, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_DOUBLE_EQ((*top)[0].value, 1.0);  // disjoint result sets
}

}  // namespace
}  // namespace fairjob
