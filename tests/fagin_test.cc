#include "core/fagin.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "common/rng.h"

namespace fairjob {
namespace {

std::vector<const InvertedIndex*> Pointers(
    const std::vector<InvertedIndex>& lists) {
  std::vector<const InvertedIndex*> out;
  for (const InvertedIndex& list : lists) out.push_back(&list);
  return out;
}

TEST(FaginTest, RejectsBadArguments) {
  InvertedIndex list({{0, 1.0}});
  TopKOptions options;
  options.k = 0;
  EXPECT_FALSE(FaginTopK({&list}, options).ok());
  EXPECT_FALSE(ScanTopK({&list}, options).ok());
  options.k = 1;
  EXPECT_FALSE(FaginTopK({}, options).ok());
  EXPECT_FALSE(FaginTopK({nullptr}, options).ok());
}

TEST(FaginTest, SingleListTopKIsPrefix) {
  std::vector<InvertedIndex> lists;
  lists.emplace_back(
      std::vector<ScoredEntry>{{0, 0.1}, {1, 0.9}, {2, 0.5}, {3, 0.7}});
  TopKOptions options;
  options.k = 2;
  Result<std::vector<ScoredEntry>> top = FaginTopK(Pointers(lists), options);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].pos, 1);
  EXPECT_DOUBLE_EQ((*top)[0].value, 0.9);
  EXPECT_EQ((*top)[1].pos, 3);
}

TEST(FaginTest, SingleListBottomKIsSuffix) {
  std::vector<InvertedIndex> lists;
  lists.emplace_back(
      std::vector<ScoredEntry>{{0, 0.1}, {1, 0.9}, {2, 0.5}, {3, 0.7}});
  TopKOptions options;
  options.k = 2;
  options.direction = RankDirection::kLeastUnfair;
  Result<std::vector<ScoredEntry>> bottom = FaginTopK(Pointers(lists), options);
  ASSERT_TRUE(bottom.ok());
  ASSERT_EQ(bottom->size(), 2u);
  EXPECT_EQ((*bottom)[0].pos, 0);
  EXPECT_EQ((*bottom)[1].pos, 2);
}

TEST(FaginTest, AveragesAcrossLists) {
  std::vector<InvertedIndex> lists;
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.2}, {1, 0.8}});
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.6}, {1, 0.0}});
  TopKOptions options;
  options.k = 2;
  Result<std::vector<ScoredEntry>> top = FaginTopK(Pointers(lists), options);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  // id 0: (0.2+0.6)/2 = 0.4; id 1: (0.8+0.0)/2 = 0.4 -> tie broken by pos.
  EXPECT_DOUBLE_EQ((*top)[0].value, 0.4);
  EXPECT_DOUBLE_EQ((*top)[1].value, 0.4);
}

TEST(FaginTest, MissingPolicySkipVsZero) {
  // id 1 present only in list 0 with value 0.9.
  std::vector<InvertedIndex> lists;
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.4}, {1, 0.9}});
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.4}});
  TopKOptions options;
  options.k = 1;

  options.missing = MissingCellPolicy::kSkip;
  Result<std::vector<ScoredEntry>> skip = FaginTopK(Pointers(lists), options);
  ASSERT_TRUE(skip.ok());
  EXPECT_EQ((*skip)[0].pos, 1);  // avg over present = 0.9 beats 0.4

  options.missing = MissingCellPolicy::kZero;
  Result<std::vector<ScoredEntry>> zero = FaginTopK(Pointers(lists), options);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ((*zero)[0].pos, 1);  // 0.9/2 = 0.45 still beats 0.4
  EXPECT_DOUBLE_EQ((*zero)[0].value, 0.45);
}

TEST(FaginTest, AllowedFilterRestrictsCandidates) {
  std::vector<InvertedIndex> lists;
  lists.emplace_back(
      std::vector<ScoredEntry>{{0, 0.9}, {1, 0.8}, {2, 0.7}, {3, 0.6}});
  std::vector<int32_t> allowed = {2, 3};
  TopKOptions options;
  options.k = 2;
  options.allowed = &allowed;
  Result<std::vector<ScoredEntry>> top = FaginTopK(Pointers(lists), options);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].pos, 2);
  EXPECT_EQ((*top)[1].pos, 3);
}

TEST(FaginTest, KLargerThanUniverseReturnsEverything) {
  std::vector<InvertedIndex> lists;
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.5}, {1, 0.1}});
  TopKOptions options;
  options.k = 10;
  Result<std::vector<ScoredEntry>> top = FaginTopK(Pointers(lists), options);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 2u);
}

TEST(FaginTest, EmptyListsYieldEmptyResult) {
  std::vector<InvertedIndex> lists;
  lists.emplace_back(std::vector<ScoredEntry>{});
  TopKOptions options;
  options.k = 3;
  Result<std::vector<ScoredEntry>> top = FaginTopK(Pointers(lists), options);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->empty());
}

TEST(FaginTest, EarlyTerminationDoesFewerAccessesThanScan) {
  // A long list with one clear winner: TA should stop early.
  std::vector<ScoredEntry> entries;
  for (int32_t i = 0; i < 1000; ++i) {
    entries.push_back({i, 1.0 / (1.0 + i)});
  }
  std::vector<InvertedIndex> lists;
  lists.emplace_back(entries);
  lists.emplace_back(entries);
  TopKOptions options;
  options.k = 3;
  FaginStats ta_stats;
  FaginStats scan_stats;
  Result<std::vector<ScoredEntry>> ta =
      FaginTopK(Pointers(lists), options, &ta_stats);
  Result<std::vector<ScoredEntry>> scan =
      ScanTopK(Pointers(lists), options, &scan_stats);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(scan.ok());
  EXPECT_LT(ta_stats.sorted_accesses, scan_stats.sorted_accesses / 10);
  EXPECT_LT(ta_stats.ids_scored, 50u);
  ASSERT_EQ(ta->size(), scan->size());
  for (size_t i = 0; i < ta->size(); ++i) {
    EXPECT_EQ((*ta)[i].pos, (*scan)[i].pos);
  }
}

// --- TA ≡ naive scan, across directions × policies × densities ---------------

struct SweepParam {
  RankDirection direction;
  MissingCellPolicy missing;
  double density;  // probability a cell is present
};

class FaginEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(FaginEquivalenceTest, MatchesScanOnRandomInstances) {
  auto [dir_i, pol_i, density] = GetParam();
  RankDirection direction = static_cast<RankDirection>(dir_i);
  MissingCellPolicy missing = static_cast<MissingCellPolicy>(pol_i);

  Rng rng(static_cast<uint64_t>(dir_i * 100 + pol_i * 10) +
          static_cast<uint64_t>(density * 1000));
  for (int trial = 0; trial < 15; ++trial) {
    size_t universe = 5 + rng.NextBelow(40);
    size_t num_lists = 1 + rng.NextBelow(6);
    std::vector<InvertedIndex> lists;
    for (size_t l = 0; l < num_lists; ++l) {
      std::vector<ScoredEntry> entries;
      for (size_t id = 0; id < universe; ++id) {
        if (rng.NextBernoulli(density)) {
          // Values drawn on a grid to exercise tie handling.
          double v = std::floor(rng.NextDouble() * 20.0) / 20.0;
          entries.push_back({static_cast<int32_t>(id), v});
        }
      }
      lists.emplace_back(std::move(entries));
    }
    TopKOptions options;
    options.k = 1 + rng.NextBelow(8);
    options.direction = direction;
    options.missing = missing;

    Result<std::vector<ScoredEntry>> ta = FaginTopK(Pointers(lists), options);
    Result<std::vector<ScoredEntry>> scan = ScanTopK(Pointers(lists), options);
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(ta->size(), scan->size()) << "trial " << trial;
    // With ties the returned ids may differ; the value sequences must match.
    for (size_t i = 0; i < ta->size(); ++i) {
      EXPECT_NEAR((*ta)[i].value, (*scan)[i].value, 1e-12)
          << "trial " << trial << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DirectionsPoliciesDensities, FaginEquivalenceTest,
    ::testing::Combine(::testing::Values(0, 1),      // most / least
                       ::testing::Values(0, 1),      // skip / zero
                       ::testing::Values(1.0, 0.7, 0.3)));

}  // namespace
}  // namespace fairjob
