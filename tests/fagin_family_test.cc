#include "core/fagin_family.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "core/quantification.h"

namespace fairjob {
namespace {

std::vector<const InvertedIndex*> Pointers(
    const std::vector<InvertedIndex>& lists) {
  std::vector<const InvertedIndex*> out;
  for (const InvertedIndex& list : lists) out.push_back(&list);
  return out;
}

std::vector<InvertedIndex> RandomLists(size_t universe, size_t num_lists,
                                       double density, Rng* rng) {
  std::vector<InvertedIndex> lists;
  for (size_t l = 0; l < num_lists; ++l) {
    std::vector<ScoredEntry> entries;
    for (size_t id = 0; id < universe; ++id) {
      if (rng->NextBernoulli(density)) {
        double v = std::floor(rng->NextDouble() * 20.0) / 20.0;
        entries.push_back({static_cast<int32_t>(id), v});
      }
    }
    lists.emplace_back(std::move(entries));
  }
  return lists;
}

TEST(TopKAlgorithmTest, NamesAreStable) {
  EXPECT_STREQ(TopKAlgorithmName(TopKAlgorithm::kThresholdAlgorithm), "TA");
  EXPECT_STREQ(TopKAlgorithmName(TopKAlgorithm::kFA), "FA");
  EXPECT_STREQ(TopKAlgorithmName(TopKAlgorithm::kNRA), "NRA");
  EXPECT_STREQ(TopKAlgorithmName(TopKAlgorithm::kScan), "scan");
}

TEST(FaginFATest, ValidatesInput) {
  InvertedIndex list({{0, 1.0}});
  TopKOptions options;
  options.k = 0;
  EXPECT_FALSE(FaginFA({&list}, options).ok());
  options.k = 1;
  EXPECT_FALSE(FaginFA({}, options).ok());
}

TEST(FaginFATest, SimpleTopK) {
  std::vector<InvertedIndex> lists;
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.2}, {1, 0.8}, {2, 0.5}});
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.4}, {1, 0.6}, {2, 0.1}});
  TopKOptions options;
  options.k = 2;
  Result<std::vector<ScoredEntry>> top = FaginFA(Pointers(lists), options);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].pos, 1);
  EXPECT_DOUBLE_EQ((*top)[0].value, 0.7);
  // ids 0 and 2 tie at 0.3; ties break toward the smaller position.
  EXPECT_EQ((*top)[1].pos, 0);
  EXPECT_DOUBLE_EQ((*top)[1].value, 0.3);
}

TEST(FaginFATest, StopsEarlyOnSkewedLists) {
  std::vector<ScoredEntry> entries;
  for (int32_t i = 0; i < 500; ++i) entries.push_back({i, 1.0 / (1.0 + i)});
  std::vector<InvertedIndex> lists;
  lists.emplace_back(entries);
  lists.emplace_back(entries);
  TopKOptions options;
  options.k = 3;
  options.missing = MissingCellPolicy::kZero;
  FaginStats stats;
  Result<std::vector<ScoredEntry>> top =
      FaginFA(Pointers(lists), options, &stats);
  ASSERT_TRUE(top.ok());
  // Identical lists: 3 complete ids after 3 rounds.
  EXPECT_LE(stats.sorted_accesses, 10u);
  EXPECT_EQ((*top)[0].pos, 0);
}

TEST(FaginNRATest, RejectsUnsupportedModes) {
  InvertedIndex list({{0, 1.0}});
  TopKOptions options;
  options.k = 1;
  options.missing = MissingCellPolicy::kSkip;
  EXPECT_FALSE(FaginNRA({&list}, options).ok());
  options.missing = MissingCellPolicy::kZero;
  options.direction = RankDirection::kLeastUnfair;
  EXPECT_FALSE(FaginNRA({&list}, options).ok());
}

TEST(FaginNRATest, SimpleTopK) {
  std::vector<InvertedIndex> lists;
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.9}, {1, 0.8}, {2, 0.1}});
  lists.emplace_back(std::vector<ScoredEntry>{{0, 0.7}, {1, 0.2}, {2, 0.3}});
  TopKOptions options;
  options.k = 1;
  options.missing = MissingCellPolicy::kZero;
  Result<std::vector<ScoredEntry>> top = FaginNRA(Pointers(lists), options);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_EQ((*top)[0].pos, 0);
  EXPECT_DOUBLE_EQ((*top)[0].value, 0.8);  // exact aggregate, not a bound
}

TEST(FaginNRATest, TerminatesEarlyOnSkewedLists) {
  std::vector<ScoredEntry> entries;
  for (int32_t i = 0; i < 2000; ++i) entries.push_back({i, 1.0 / (1.0 + i)});
  std::vector<InvertedIndex> lists;
  lists.emplace_back(entries);
  lists.emplace_back(entries);
  TopKOptions options;
  options.k = 2;
  options.missing = MissingCellPolicy::kZero;
  FaginStats stats;
  Result<std::vector<ScoredEntry>> top =
      FaginNRA(Pointers(lists), options, &stats);
  ASSERT_TRUE(top.ok());
  EXPECT_LT(stats.sorted_accesses, 100u);
  EXPECT_EQ((*top)[0].pos, 0);
  EXPECT_EQ((*top)[1].pos, 1);
}

TEST(FaginNRATest, RejectsTooManyLists) {
  std::vector<InvertedIndex> lists;
  for (int i = 0; i < 65; ++i) {
    lists.emplace_back(std::vector<ScoredEntry>{{0, 0.5}});
  }
  TopKOptions options;
  options.k = 1;
  options.missing = MissingCellPolicy::kZero;
  EXPECT_FALSE(FaginNRA(Pointers(lists), options).ok());
}

// The whole family must agree with the scan (up to ties) wherever each
// member's contract applies.
class FaginFamilyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FaginFamilyEquivalenceTest, AllAlgorithmsMatchScan) {
  auto [algo_i, density] = GetParam();
  TopKAlgorithm algorithm = static_cast<TopKAlgorithm>(algo_i);

  Rng rng(static_cast<uint64_t>(algo_i * 1000) +
          static_cast<uint64_t>(density * 100));
  for (int trial = 0; trial < 15; ++trial) {
    size_t universe = 5 + rng.NextBelow(40);
    size_t num_lists = 1 + rng.NextBelow(6);
    std::vector<InvertedIndex> lists =
        RandomLists(universe, num_lists, density, &rng);
    TopKOptions options;
    options.k = 1 + rng.NextBelow(8);
    options.missing = MissingCellPolicy::kZero;  // NRA's only mode

    Result<std::vector<ScoredEntry>> got =
        RunTopK(algorithm, Pointers(lists), options);
    Result<std::vector<ScoredEntry>> want =
        ScanTopK(Pointers(lists), options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->size(), want->size()) << "trial " << trial;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_NEAR((*got)[i].value, (*want)[i].value, 1e-12)
          << TopKAlgorithmName(algorithm) << " trial " << trial << " rank "
          << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsDensities, FaginFamilyEquivalenceTest,
    ::testing::Combine(::testing::Values(0, 1, 2),  // TA, FA, NRA
                       ::testing::Values(1.0, 0.6)));

// FA under kSkip (no early stop) and both directions still matches the scan.
TEST(FaginFATest, SkipPolicyAndBottomKMatchScan) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<InvertedIndex> lists = RandomLists(30, 4, 0.5, &rng);
    for (RankDirection dir :
         {RankDirection::kMostUnfair, RankDirection::kLeastUnfair}) {
      TopKOptions options;
      options.k = 4;
      options.direction = dir;
      options.missing = MissingCellPolicy::kSkip;
      Result<std::vector<ScoredEntry>> fa = FaginFA(Pointers(lists), options);
      Result<std::vector<ScoredEntry>> scan =
          ScanTopK(Pointers(lists), options);
      ASSERT_TRUE(fa.ok());
      ASSERT_TRUE(scan.ok());
      ASSERT_EQ(fa->size(), scan->size());
      for (size_t i = 0; i < fa->size(); ++i) {
        EXPECT_NEAR((*fa)[i].value, (*scan)[i].value, 1e-12);
      }
    }
  }
}

TEST(FaginFamilyQuantificationTest, RequestDispatchesAlgorithm) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1, 2}, {0, 1}, {0});
  for (size_t g = 0; g < 3; ++g) {
    for (size_t q = 0; q < 2; ++q) {
      cube.Set(g, q, 0, 0.1 * static_cast<double>(g) + 0.01 * q);
    }
  }
  IndexSet indices = IndexSet::Build(cube);
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
        TopKAlgorithm::kNRA, TopKAlgorithm::kScan}) {
    QuantificationRequest request;
    request.target = Dimension::kGroup;
    request.k = 2;
    request.missing = MissingCellPolicy::kZero;
    request.algorithm = algorithm;
    Result<QuantificationResult> result =
        SolveQuantification(cube, indices, request);
    ASSERT_TRUE(result.ok()) << TopKAlgorithmName(algorithm);
    ASSERT_EQ(result->answers.size(), 2u);
    EXPECT_EQ(result->answers[0].id, 2) << TopKAlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace fairjob
