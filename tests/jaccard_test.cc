#include "ranking/jaccard.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

TEST(JaccardTest, IdenticalSetsIndexOne) {
  RankedList a = {1, 2, 3};
  RankedList b = {3, 1, 2};  // order is irrelevant
  EXPECT_DOUBLE_EQ(*JaccardIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(*JaccardDistance(a, b), 0.0);
}

TEST(JaccardTest, DisjointSetsIndexZero) {
  EXPECT_DOUBLE_EQ(*JaccardIndex({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(*JaccardDistance({1, 2}, {3, 4}), 1.0);
}

TEST(JaccardTest, PartialOverlap) {
  // {1,2,3} vs {2,3,4}: intersection 2, union 4.
  EXPECT_DOUBLE_EQ(*JaccardIndex({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(JaccardTest, DifferentSizes) {
  // {1,2,3,4} vs {1}: intersection 1, union 4.
  EXPECT_DOUBLE_EQ(*JaccardIndex({1, 2, 3, 4}, {1}), 0.25);
}

TEST(JaccardTest, Symmetric) {
  RankedList a = {1, 5, 9};
  RankedList b = {5, 9, 13, 17};
  EXPECT_DOUBLE_EQ(*JaccardIndex(a, b), *JaccardIndex(b, a));
}

TEST(JaccardTest, RejectsEmptyLists) {
  EXPECT_FALSE(JaccardIndex({}, {1}).ok());
  EXPECT_FALSE(JaccardIndex({1}, {}).ok());
}

TEST(JaccardTest, RejectsDuplicates) {
  Result<double> r = JaccardIndex({1, 1}, {2});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(JaccardTest, DistanceComplementsIndex) {
  RankedList a = {1, 2, 3};
  RankedList b = {3, 4, 5};
  EXPECT_DOUBLE_EQ(*JaccardIndex(a, b) + *JaccardDistance(a, b), 1.0);
}

TEST(OverlapAtKTest, FullPrefixOverlap) {
  RankedList a = {1, 2, 3, 4, 5};
  RankedList b = {2, 1, 3, 9, 8};
  EXPECT_DOUBLE_EQ(*OverlapAtK(a, b, 3), 1.0);
}

TEST(OverlapAtKTest, PartialPrefixOverlap) {
  RankedList a = {1, 2, 3, 4};
  RankedList b = {1, 9, 8, 7};
  EXPECT_DOUBLE_EQ(*OverlapAtK(a, b, 2), 0.5);
}

TEST(OverlapAtKTest, KLargerThanListsUsesWhatExists) {
  RankedList a = {1, 2};
  RankedList b = {1, 2};
  EXPECT_DOUBLE_EQ(*OverlapAtK(a, b, 4), 0.5);  // 2 common / k=4
}

TEST(OverlapAtKTest, RejectsZeroK) {
  EXPECT_FALSE(OverlapAtK({1}, {1}, 0).ok());
}

}  // namespace
}  // namespace fairjob
