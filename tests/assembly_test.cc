#include "crawl/dataset_assembly.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

AttributeSchema Schema() {
  AttributeSchema schema;
  EXPECT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  return schema;
}

TEST(AssembleMarketplaceTest, BuildsRankingsInRankOrder) {
  std::vector<CrawlRecord> records = {
      {"cleaning", "NYC", 2, "w1"},
      {"cleaning", "NYC", 1, "w0"},
      {"cleaning", "NYC", 3, "w2"},
  };
  std::unordered_map<std::string, Demographics> demo = {
      {"w0", {0, 0}}, {"w1", {1, 1}}, {"w2", {2, 0}}};
  Result<MarketplaceAssembly> assembly =
      AssembleMarketplace(Schema(), records, demo);
  ASSERT_TRUE(assembly.ok());
  const MarketplaceDataset& ds = assembly->dataset;
  EXPECT_EQ(ds.num_workers(), 3u);
  QueryId q = *ds.queries().Find("cleaning");
  LocationId l = *ds.locations().Find("NYC");
  const MarketRanking* ranking = ds.GetRanking(q, l);
  ASSERT_NE(ranking, nullptr);
  ASSERT_EQ(ranking->workers.size(), 3u);
  EXPECT_EQ(ds.workers().NameOf(ranking->workers[0]), "w0");
  EXPECT_EQ(ds.workers().NameOf(ranking->workers[1]), "w1");
  EXPECT_EQ(ds.workers().NameOf(ranking->workers[2]), "w2");
  EXPECT_EQ(assembly->dropped_records, 0u);
}

TEST(AssembleMarketplaceTest, UnlabeledWorkersDropped) {
  std::vector<CrawlRecord> records = {
      {"cleaning", "NYC", 1, "w0"},
      {"cleaning", "NYC", 2, "unlabeled"},
      {"cleaning", "NYC", 3, "w2"},
  };
  std::unordered_map<std::string, Demographics> demo = {{"w0", {0, 0}},
                                                        {"w2", {2, 0}}};
  Result<MarketplaceAssembly> assembly =
      AssembleMarketplace(Schema(), records, demo);
  ASSERT_TRUE(assembly.ok());
  EXPECT_EQ(assembly->dropped_records, 1u);
  QueryId q = *assembly->dataset.queries().Find("cleaning");
  LocationId l = *assembly->dataset.locations().Find("NYC");
  EXPECT_EQ(assembly->dataset.GetRanking(q, l)->workers.size(), 2u);
}

TEST(AssembleMarketplaceTest, SeparateQueriesKeptSeparate) {
  std::vector<CrawlRecord> records = {
      {"cleaning", "NYC", 1, "w0"},
      {"cleaning", "Chicago", 1, "w1"},
      {"moving", "NYC", 1, "w0"},
  };
  std::unordered_map<std::string, Demographics> demo = {{"w0", {0, 0}},
                                                        {"w1", {1, 1}}};
  Result<MarketplaceAssembly> assembly =
      AssembleMarketplace(Schema(), records, demo);
  ASSERT_TRUE(assembly.ok());
  EXPECT_EQ(assembly->dataset.num_rankings(), 3u);
  EXPECT_EQ(assembly->dataset.queries().size(), 2u);
  EXPECT_EQ(assembly->dataset.locations().size(), 2u);
}

TEST(AssembleMarketplaceTest, DuplicateWorkerInQueryIsError) {
  std::vector<CrawlRecord> records = {
      {"cleaning", "NYC", 1, "w0"},
      {"cleaning", "NYC", 2, "w0"},
  };
  std::unordered_map<std::string, Demographics> demo = {{"w0", {0, 0}}};
  EXPECT_FALSE(AssembleMarketplace(Schema(), records, demo).ok());
}

TEST(AssembleMarketplaceTest, InvalidDemographicsIsError) {
  std::vector<CrawlRecord> records = {{"cleaning", "NYC", 1, "w0"}};
  std::unordered_map<std::string, Demographics> demo = {{"w0", {9, 9}}};
  EXPECT_FALSE(AssembleMarketplace(Schema(), records, demo).ok());
}

TEST(AssembleMarketplaceTest, EmptyCrawlGivesEmptyDataset) {
  Result<MarketplaceAssembly> assembly = AssembleMarketplace(Schema(), {}, {});
  ASSERT_TRUE(assembly.ok());
  EXPECT_EQ(assembly->dataset.num_workers(), 0u);
  EXPECT_EQ(assembly->dataset.num_rankings(), 0u);
}

TEST(AssembleSearchTest, BuildsObservationsAndDocumentVocabulary) {
  std::vector<SearchRunRecord> runs = {
      {"u0", "cleaning jobs", "Boston, MA", {"docA", "docB"}},
      {"u1", "cleaning jobs", "Boston, MA", {"docB", "docC"}},
      {"u0", "cleaning jobs", "Bristol, UK", {"docA"}},
  };
  std::unordered_map<std::string, Demographics> demo = {{"u0", {0, 0}},
                                                        {"u1", {1, 1}}};
  Result<SearchAssembly> assembly = AssembleSearch(Schema(), runs, demo);
  ASSERT_TRUE(assembly.ok());
  const SearchDataset& ds = assembly->dataset;
  EXPECT_EQ(ds.num_users(), 2u);
  EXPECT_EQ(assembly->documents.size(), 3u);
  QueryId q = *ds.queries().Find("cleaning jobs");
  LocationId boston = *ds.locations().Find("Boston, MA");
  const auto* obs = ds.GetObservations(q, boston);
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->size(), 2u);
  // Shared documents map to the same ids.
  EXPECT_EQ((*obs)[0].results[1], (*obs)[1].results[0]);  // docB
  EXPECT_EQ(assembly->dropped_runs, 0u);
}

TEST(AssembleSearchTest, RunsFromUnknownUsersDropped) {
  std::vector<SearchRunRecord> runs = {
      {"ghost", "cleaning jobs", "Boston, MA", {"docA"}},
      {"u0", "cleaning jobs", "Boston, MA", {"docA"}},
  };
  std::unordered_map<std::string, Demographics> demo = {{"u0", {0, 0}}};
  Result<SearchAssembly> assembly = AssembleSearch(Schema(), runs, demo);
  ASSERT_TRUE(assembly.ok());
  EXPECT_EQ(assembly->dropped_runs, 1u);
  EXPECT_EQ(assembly->dataset.num_users(), 1u);
}

TEST(AssembleSearchTest, EmptyResultListIsError) {
  std::vector<SearchRunRecord> runs = {
      {"u0", "cleaning jobs", "Boston, MA", {}}};
  std::unordered_map<std::string, Demographics> demo = {{"u0", {0, 0}}};
  EXPECT_FALSE(AssembleSearch(Schema(), runs, demo).ok());
}

TEST(AssembleSearchTest, DuplicateDocInRunIsError) {
  std::vector<SearchRunRecord> runs = {
      {"u0", "cleaning jobs", "Boston, MA", {"docA", "docA"}}};
  std::unordered_map<std::string, Demographics> demo = {{"u0", {0, 0}}};
  EXPECT_FALSE(AssembleSearch(Schema(), runs, demo).ok());
}

using Rows = std::vector<std::vector<std::string>>;

TEST(WorkerTableTest, InfersSchemaFromData) {
  Rows rows = {
      {"worker", "gender", "ethnicity"},
      {"ana", "Female", "White"},
      {"bob", "Male", "Black"},
      {"carol", "Female", "Asian"},
  };
  Result<WorkerTable> table = WorkerTableFromCsvRows(rows);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema.num_attributes(), 2u);
  EXPECT_EQ(table->schema.attribute_name(0), "gender");
  // Domains are sorted for deterministic value ids.
  EXPECT_EQ(table->schema.value_name(0, 0), "Female");
  EXPECT_EQ(table->schema.value_name(0, 1), "Male");
  EXPECT_EQ(table->schema.value_name(1, 0), "Asian");
  ASSERT_EQ(table->demographics.size(), 3u);
  EXPECT_EQ(table->demographics.at("bob"), (Demographics{1, 1}));
  EXPECT_EQ(table->demographics.at("carol"), (Demographics{0, 0}));
}

TEST(WorkerTableTest, SingleValueDomainsWork) {
  Rows rows = {{"worker", "city_tier"}, {"a", "urban"}, {"b", "urban"}};
  Result<WorkerTable> table = WorkerTableFromCsvRows(rows);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema.num_values(0), 1u);
}

TEST(WorkerTableTest, RejectsMalformedInputs) {
  EXPECT_FALSE(WorkerTableFromCsvRows({}).ok());
  EXPECT_FALSE(WorkerTableFromCsvRows({{"worker"}}).ok());        // no attrs
  EXPECT_FALSE(WorkerTableFromCsvRows({{"name", "gender"}}).ok());
  EXPECT_FALSE(
      WorkerTableFromCsvRows({{"worker", "gender"}}).ok());       // no rows
  EXPECT_FALSE(WorkerTableFromCsvRows(
                   {{"worker", "gender"}, {"a", "F", "extra"}})
                   .ok());                                        // arity
  EXPECT_FALSE(
      WorkerTableFromCsvRows({{"worker", "gender"}, {"a", ""}}).ok());
  EXPECT_FALSE(WorkerTableFromCsvRows(
                   {{"worker", "gender"}, {"a", "F"}, {"a", "M"}})
                   .ok());                                        // duplicate
}

TEST(ExportTest, DatasetRoundTripsThroughCsvFormats) {
  // dataset -> (crawl records, worker table) -> dataset: identical rankings.
  MarketplaceDataset original(Schema());
  ASSERT_TRUE(original.AddWorker("ana", {0, 1}).ok());
  ASSERT_TRUE(original.AddWorker("bob", {1, 0}).ok());
  ASSERT_TRUE(original.AddWorker("carol", {2, 1}).ok());
  QueryId q0 = original.queries().GetOrAdd("welding");
  QueryId q1 = original.queries().GetOrAdd("catering");
  LocationId l0 = original.locations().GetOrAdd("Springfield");
  MarketRanking r0;
  r0.workers = {1, 0, 2};
  MarketRanking r1;
  r1.workers = {2, 1};
  ASSERT_TRUE(original.SetRanking(q0, l0, std::move(r0)).ok());
  ASSERT_TRUE(original.SetRanking(q1, l0, std::move(r1)).ok());

  std::vector<CrawlRecord> records = DatasetToCrawlRecords(original);
  EXPECT_EQ(records.size(), 5u);
  WorkerTable table = *WorkerTableFromCsvRows(WorkerTableToCsvRows(original));
  EXPECT_EQ(table.demographics.size(), 3u);

  MarketplaceAssembly restored =
      *AssembleMarketplace(table.schema, records, table.demographics);
  EXPECT_EQ(restored.dropped_records, 0u);
  for (const char* query : {"welding", "catering"}) {
    QueryId oq = *original.queries().Find(query);
    QueryId rq = *restored.dataset.queries().Find(query);
    LocationId ol = *original.locations().Find("Springfield");
    LocationId rl = *restored.dataset.locations().Find("Springfield");
    const MarketRanking* a = original.GetRanking(oq, ol);
    const MarketRanking* b = restored.dataset.GetRanking(rq, rl);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->workers.size(), b->workers.size());
    for (size_t i = 0; i < a->workers.size(); ++i) {
      EXPECT_EQ(original.workers().NameOf(a->workers[i]),
                restored.dataset.workers().NameOf(b->workers[i]));
    }
  }
  // Demographics survive: the inferred schema re-sorts value ids, but the
  // value *names* per worker must match.
  for (size_t w = 0; w < original.num_workers(); ++w) {
    std::string name = original.workers().NameOf(static_cast<WorkerId>(w));
    WorkerId restored_id = *restored.dataset.workers().Find(name);
    for (size_t a = 0; a < 2; ++a) {
      EXPECT_EQ(
          original.schema().value_name(
              static_cast<AttributeId>(a),
              original.worker_demographics(static_cast<WorkerId>(w))[a]),
          restored.dataset.schema().value_name(
              static_cast<AttributeId>(a),
              restored.dataset.worker_demographics(restored_id)[a]));
    }
  }
}

TEST(SearchRunCsvTest, RoundTrip) {
  std::vector<SearchRunRecord> runs = {
      {"u1", "cleaning jobs", "Boston, MA", {"docA", "docB"}},
      {"u2", "yard work", "London, UK", {"docC"}},
  };
  Result<Rows> rows = SearchRunRecordsToCsvRows(runs);
  ASSERT_TRUE(rows.ok());
  Result<std::vector<SearchRunRecord>> parsed =
      SearchRunRecordsFromCsvRows(*rows);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].user, "u1");
  EXPECT_EQ((*parsed)[0].results,
            (std::vector<std::string>{"docA", "docB"}));
  EXPECT_EQ((*parsed)[1].location, "London, UK");
}

TEST(SearchRunCsvTest, RejectsMalformed) {
  EXPECT_FALSE(SearchRunRecordsFromCsvRows({}).ok());
  EXPECT_FALSE(SearchRunRecordsFromCsvRows({{"bad", "header"}}).ok());
  EXPECT_FALSE(
      SearchRunRecordsFromCsvRows({{"user", "query", "location", "results"},
                                   {"u", "q", "l", ""}})
          .ok());
  EXPECT_FALSE(
      SearchRunRecordsFromCsvRows({{"user", "query", "location", "results"},
                                   {"u", "q", "l"}})
          .ok());
  // Export rejects separator-bearing keys and empty lists.
  EXPECT_FALSE(
      SearchRunRecordsToCsvRows({{"u", "q", "l", {"bad|doc"}}}).ok());
  EXPECT_FALSE(SearchRunRecordsToCsvRows({{"u", "q", "l", {}}}).ok());
}

TEST(SearchRunCsvTest, AssembledDatasetExportsBack) {
  std::vector<SearchRunRecord> runs = {
      {"u1", "cleaning", "Boston", {"docA", "docB"}},
      {"u2", "cleaning", "Boston", {"docB", "docC"}},
  };
  std::unordered_map<std::string, Demographics> demo = {{"u1", {0, 0}},
                                                        {"u2", {1, 1}}};
  SearchAssembly assembly = *AssembleSearch(Schema(), runs, demo);
  Result<std::vector<SearchRunRecord>> exported =
      DatasetToSearchRunRecords(assembly.dataset, assembly.documents);
  ASSERT_TRUE(exported.ok());
  ASSERT_EQ(exported->size(), 2u);
  EXPECT_EQ((*exported)[0].user, "u1");
  EXPECT_EQ((*exported)[0].results,
            (std::vector<std::string>{"docA", "docB"}));
  EXPECT_EQ((*exported)[1].results,
            (std::vector<std::string>{"docB", "docC"}));

  // An undersized vocabulary is rejected, not mis-indexed.
  Vocabulary tiny;
  tiny.GetOrAdd("docA");
  EXPECT_FALSE(DatasetToSearchRunRecords(assembly.dataset, tiny).ok());
}

TEST(WorkerTableTest, AcceptsUserHeaderToo) {
  Rows rows = {{"user", "gender"}, {"u1", "Female"}};
  Result<WorkerTable> table = WorkerTableFromCsvRows(rows);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->demographics.count("u1"), 1u);
}

TEST(ExportTest, RankedPairsSortedAndComplete) {
  MarketplaceDataset data(Schema());
  ASSERT_TRUE(data.AddWorker("w", {0, 0}).ok());
  MarketRanking r;
  r.workers = {0};
  ASSERT_TRUE(data.SetRanking(2, 1, r).ok());
  ASSERT_TRUE(data.SetRanking(0, 3, r).ok());
  ASSERT_TRUE(data.SetRanking(0, 1, r).ok());
  std::vector<QueryLocation> pairs = data.RankedPairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_TRUE(pairs[0] == (QueryLocation{0, 1}));
  EXPECT_TRUE(pairs[1] == (QueryLocation{0, 3}));
  EXPECT_TRUE(pairs[2] == (QueryLocation{2, 1}));
}

TEST(WorkerTableTest, FeedsAssemblyEndToEnd) {
  Rows worker_rows = {
      {"worker", "gender"},
      {"a", "Female"},
      {"b", "Male"},
  };
  WorkerTable table = *WorkerTableFromCsvRows(worker_rows);
  std::vector<CrawlRecord> records = {{"job", "city", 1, "b"},
                                      {"job", "city", 2, "a"}};
  Result<MarketplaceAssembly> assembly =
      AssembleMarketplace(table.schema, records, table.demographics);
  ASSERT_TRUE(assembly.ok());
  EXPECT_EQ(assembly->dataset.num_workers(), 2u);
  EXPECT_EQ(assembly->dropped_records, 0u);
}

}  // namespace
}  // namespace fairjob
