#include "core/unfairness_cube.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"

namespace fairjob {
namespace {

TEST(CubeTest, MakeValidatesAxes) {
  EXPECT_FALSE(UnfairnessCube::Make({}, {0}, {0}).ok());
  EXPECT_FALSE(UnfairnessCube::Make({0}, {}, {0}).ok());
  EXPECT_FALSE(UnfairnessCube::Make({0}, {0}, {}).ok());
  EXPECT_FALSE(UnfairnessCube::Make({0, 0}, {0}, {1}).ok());
  EXPECT_TRUE(UnfairnessCube::Make({0, 1}, {5, 6}, {9}).ok());
}

TEST(CubeTest, CellsStartMissing) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0}, {0, 1});
  EXPECT_EQ(cube.num_cells(), 4u);
  EXPECT_EQ(cube.num_present(), 0u);
  EXPECT_FALSE(cube.Get(0, 0, 0).has_value());
}

TEST(CubeTest, SetGetClear) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0}, {0, 1});
  cube.Set(1, 0, 1, 0.75);
  ASSERT_TRUE(cube.Get(1, 0, 1).has_value());
  EXPECT_DOUBLE_EQ(*cube.Get(1, 0, 1), 0.75);
  EXPECT_EQ(cube.num_present(), 1u);
  cube.Clear(1, 0, 1);
  EXPECT_FALSE(cube.Get(1, 0, 1).has_value());
}

TEST(CubeTest, AxisMetadata) {
  UnfairnessCube cube = *UnfairnessCube::Make({3, 7}, {10}, {20, 21, 22});
  EXPECT_EQ(cube.axis_size(Dimension::kGroup), 2u);
  EXPECT_EQ(cube.axis_size(Dimension::kQuery), 1u);
  EXPECT_EQ(cube.axis_size(Dimension::kLocation), 3u);
  EXPECT_EQ(cube.axis_id(Dimension::kGroup, 1), 7);
  EXPECT_EQ(*cube.PosOf(Dimension::kLocation, 21), 1u);
  EXPECT_FALSE(cube.PosOf(Dimension::kLocation, 99).ok());
}

TEST(CubeTest, AverageOverAllAxes) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0, 1}, {0});
  cube.Set(0, 0, 0, 0.2);
  cube.Set(0, 1, 0, 0.4);
  cube.Set(1, 0, 0, 0.6);
  // (1,1,0) missing: averages skip it.
  std::optional<double> avg =
      cube.Average(AxisSelector::All(), AxisSelector::All(), AxisSelector::All());
  ASSERT_TRUE(avg.has_value());
  EXPECT_NEAR(*avg, (0.2 + 0.4 + 0.6) / 3.0, 1e-12);
}

TEST(CubeTest, AverageWithSelectors) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0, 1}, {0, 1});
  for (size_t g = 0; g < 2; ++g) {
    for (size_t q = 0; q < 2; ++q) {
      for (size_t l = 0; l < 2; ++l) {
        cube.Set(g, q, l, static_cast<double>(g * 4 + q * 2 + l));
      }
    }
  }
  std::optional<double> avg = cube.Average(
      AxisSelector::Single(1), AxisSelector{{0, 1}}, AxisSelector::Single(0));
  ASSERT_TRUE(avg.has_value());
  EXPECT_DOUBLE_EQ(*avg, (4.0 + 6.0) / 2.0);  // cells (1,0,0) and (1,1,0)
}

TEST(CubeTest, AverageOfEmptySelectionIsNullopt) {
  UnfairnessCube cube = *UnfairnessCube::Make({0}, {0}, {0});
  EXPECT_FALSE(cube.AxisAverage(Dimension::kGroup, 0).has_value());
}

TEST(CubeTest, AxisAverageMatchesManualAverage) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0, 1}, {0});
  cube.Set(0, 0, 0, 0.1);
  cube.Set(0, 1, 0, 0.3);
  cube.Set(1, 0, 0, 0.9);
  EXPECT_DOUBLE_EQ(*cube.AxisAverage(Dimension::kGroup, 0), 0.2);
  EXPECT_DOUBLE_EQ(*cube.AxisAverage(Dimension::kGroup, 1), 0.9);
  EXPECT_DOUBLE_EQ(*cube.AxisAverage(Dimension::kQuery, 1), 0.3);
  EXPECT_DOUBLE_EQ(*cube.AxisAverage(Dimension::kLocation, 0),
                   (0.1 + 0.3 + 0.9) / 3.0);
}

TEST(CubeTest, DimensionNames) {
  EXPECT_STREQ(DimensionName(Dimension::kGroup), "group");
  EXPECT_STREQ(DimensionName(Dimension::kQuery), "query");
  EXPECT_STREQ(DimensionName(Dimension::kLocation), "location");
}

// --- builders -----------------------------------------------------------------

class CubeBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributeSchema schema;
    ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
    data_ = std::make_unique<MarketplaceDataset>(schema);
    space_ = std::make_unique<GroupSpace>(
        *GroupSpace::Enumerate(data_->schema()));
    // Four workers, two queries at one location; one query missing.
    ASSERT_TRUE(data_->AddWorker("m1", {0}).ok());
    ASSERT_TRUE(data_->AddWorker("m2", {0}).ok());
    ASSERT_TRUE(data_->AddWorker("f1", {1}).ok());
    ASSERT_TRUE(data_->AddWorker("f2", {1}).ok());
    QueryId q0 = data_->queries().GetOrAdd("cleaning");
    data_->queries().GetOrAdd("moving");  // no observation for this query
    LocationId l0 = data_->locations().GetOrAdd("NYC");
    MarketRanking r;
    r.workers = {0, 1, 2, 3};  // males on top
    ASSERT_TRUE(data_->SetRanking(q0, l0, std::move(r)).ok());
  }

  std::unique_ptr<MarketplaceDataset> data_;
  std::unique_ptr<GroupSpace> space_;
};

TEST_F(CubeBuilderTest, MarketplaceCubeShapeAndMissingCells) {
  Result<UnfairnessCube> cube =
      BuildMarketplaceCube(*data_, *space_, MarketMeasure::kEmd);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->axis_size(Dimension::kGroup), 2u);
  EXPECT_EQ(cube->axis_size(Dimension::kQuery), 2u);
  EXPECT_EQ(cube->axis_size(Dimension::kLocation), 1u);
  // Observed query: both groups defined. Unobserved query: both missing.
  EXPECT_TRUE(cube->Get(0, 0, 0).has_value());
  EXPECT_TRUE(cube->Get(1, 0, 0).has_value());
  EXPECT_FALSE(cube->Get(0, 1, 0).has_value());
  EXPECT_EQ(cube->num_present(), 2u);
}

TEST_F(CubeBuilderTest, SingleAttributeSchemaGroupsAreSymmetric) {
  UnfairnessCube cube =
      *BuildMarketplaceCube(*data_, *space_, MarketMeasure::kEmd);
  // Male vs Female EMD is symmetric: both groups see the same distance.
  EXPECT_NEAR(*cube.Get(0, 0, 0), *cube.Get(1, 0, 0), 1e-12);
  EXPECT_GT(*cube.Get(0, 0, 0), 0.0);
}

TEST_F(CubeBuilderTest, RestrictedAxesHonoured) {
  CubeAxes axes;
  axes.groups = {*space_->FindByDisplayName("Female")};
  Result<UnfairnessCube> cube =
      BuildMarketplaceCube(*data_, *space_, MarketMeasure::kExposure, {}, axes);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->axis_size(Dimension::kGroup), 1u);
  EXPECT_EQ(cube->axis_id(Dimension::kGroup, 0), axes.groups[0]);
}

TEST_F(CubeBuilderTest, InvalidOptionsPropagate) {
  MeasureOptions options;
  options.histogram_bins = 0;
  Result<UnfairnessCube> cube =
      BuildMarketplaceCube(*data_, *space_, MarketMeasure::kEmd, options);
  EXPECT_FALSE(cube.ok());
}

TEST(SearchCubeBuilderTest, BuildsFromObservations) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  SearchDataset data(schema);
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  ASSERT_TRUE(data.AddUser("m", {0}).ok());
  ASSERT_TRUE(data.AddUser("f", {1}).ok());
  QueryId q = data.queries().GetOrAdd("cleaning jobs");
  LocationId l = data.locations().GetOrAdd("Boston, MA");
  ASSERT_TRUE(data.AddObservation(q, l, {0, {1, 2, 3}}).ok());
  ASSERT_TRUE(data.AddObservation(q, l, {1, {1, 2, 4}}).ok());

  Result<UnfairnessCube> cube =
      BuildSearchCube(data, space, SearchMeasure::kJaccard);
  ASSERT_TRUE(cube.ok());
  ASSERT_TRUE(cube->Get(0, 0, 0).has_value());
  // Jaccard distance between {1,2,3} and {1,2,4} = 1 - 2/4.
  EXPECT_DOUBLE_EQ(*cube->Get(0, 0, 0), 0.5);
}

TEST(SearchCubeBuilderTest, FastPathMatchesPerTripleMeasure) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  SearchDataset data(schema);
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  Rng rng(77);
  for (int u = 0; u < 10; ++u) {
    Demographics d = {static_cast<ValueId>(rng.NextBelow(3)),
                      static_cast<ValueId>(rng.NextBelow(2))};
    ASSERT_TRUE(data.AddUser("u" + std::to_string(u), d).ok());
  }
  for (QueryId q = 0; q < 2; ++q) {
    for (LocationId l = 0; l < 2; ++l) {
      if (q == 1 && l == 1) continue;  // leave a hole
      for (UserId u = 0; u < 10; ++u) {
        if (rng.NextBernoulli(0.3)) continue;  // not every user everywhere
        RankedList results;
        std::vector<int32_t> pool = {0, 1, 2, 3, 4, 5, 6, 7};
        rng.Shuffle(pool);
        results.assign(pool.begin(), pool.begin() + 5);
        ASSERT_TRUE(data.AddObservation(q, l, {u, results}).ok());
      }
    }
  }
  data.queries().GetOrAdd("q0");
  data.queries().GetOrAdd("q1");
  data.locations().GetOrAdd("l0");
  data.locations().GetOrAdd("l1");

  for (SearchMeasure measure :
       {SearchMeasure::kKendallTau, SearchMeasure::kJaccard}) {
    UnfairnessCube cube = *BuildSearchCube(data, space, measure);
    for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
      for (size_t q = 0; q < 2; ++q) {
        for (size_t l = 0; l < 2; ++l) {
          Result<double> reference =
              SearchUnfairness(data, space, static_cast<GroupId>(g),
                               static_cast<QueryId>(q),
                               static_cast<LocationId>(l), measure);
          std::optional<double> cell = cube.Get(g, q, l);
          if (reference.ok()) {
            ASSERT_TRUE(cell.has_value()) << g << " " << q << " " << l;
            EXPECT_NEAR(*cell, *reference, 1e-12);
          } else {
            EXPECT_FALSE(cell.has_value());
          }
        }
      }
    }
  }
}

// A marketplace world rich enough to exercise every cell-context edge:
// 3 attributes (35 groups), rankings with and without site scores, an
// unobserved column, and a worker pool small enough that many groups have no
// members in a given ranking.
struct CrossCheckWorld {
  std::unique_ptr<MarketplaceDataset> data;
  std::unique_ptr<GroupSpace> space;
};

CrossCheckWorld MakeCrossCheckWorld() {
  AttributeSchema schema;
  EXPECT_TRUE(
      schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  EXPECT_TRUE(schema.AddAttribute("age", {"Young", "Old"}).ok());
  CrossCheckWorld world;
  world.data = std::make_unique<MarketplaceDataset>(schema);
  world.space =
      std::make_unique<GroupSpace>(*GroupSpace::Enumerate(world.data->schema()));
  Rng rng(2020);
  std::vector<WorkerId> workers;
  for (int i = 0; i < 20; ++i) {
    Demographics d = {static_cast<ValueId>(rng.NextBelow(3)),
                      static_cast<ValueId>(rng.NextBelow(2)),
                      static_cast<ValueId>(rng.NextBelow(2))};
    workers.push_back(*world.data->AddWorker("w" + std::to_string(i), d));
  }
  for (QueryId q = 0; q < 4; ++q) {
    world.data->queries().GetOrAdd("q" + std::to_string(q));
    for (LocationId l = 0; l < 3; ++l) {
      world.data->locations().GetOrAdd("l" + std::to_string(l));
      if (q == 2 && l == 1) continue;  // unobserved column
      MarketRanking r;
      r.workers = workers;
      rng.Shuffle(r.workers);
      // Rankings of uneven length, half of them carrying site scores.
      r.workers.resize(8 + rng.NextBelow(12));
      if (l % 2 == 0) {
        for (size_t i = 0; i < r.workers.size(); ++i) {
          r.scores.push_back(rng.NextDouble());
        }
      }
      EXPECT_TRUE(world.data->SetRanking(q, l, std::move(r)).ok());
    }
  }
  return world;
}

// The tentpole guarantee: the cell-shared fast path (MarketplaceCellContext
// under BuildMarketplaceCube) must be BITWISE equal to the per-triple
// reference MarketplaceUnfairness, for both measures, serial and pooled.
TEST(MarketplaceCellContextTest, CubeMatchesPerTripleReferenceBitwise) {
  CrossCheckWorld world = MakeCrossCheckWorld();
  std::vector<MeasureOptions> option_sets(3);
  option_sets[1].exposure_model = ExposureModel::kPowerLaw;
  option_sets[1].exposure_gamma = 1.5;
  option_sets[1].histogram_bins = 7;
  option_sets[2].use_scores_if_available = false;
  for (const MeasureOptions& options : option_sets) {
    for (MarketMeasure measure :
         {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
      for (size_t parallelism : {size_t{1}, size_t{4}}) {
        UnfairnessCube cube = *BuildMarketplaceCube(
            *world.data, *world.space, measure, options, {}, parallelism);
        for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
          for (size_t q = 0; q < cube.axis_size(Dimension::kQuery); ++q) {
            for (size_t l = 0; l < cube.axis_size(Dimension::kLocation); ++l) {
              Result<double> reference = MarketplaceUnfairness(
                  *world.data, *world.space, static_cast<GroupId>(g),
                  static_cast<QueryId>(q), static_cast<LocationId>(l), measure,
                  options);
              std::optional<double> cell = cube.Get(g, q, l);
              if (reference.ok()) {
                ASSERT_TRUE(cell.has_value())
                    << MarketMeasureName(measure) << " " << g << " " << q
                    << " " << l;
                // EXPECT_EQ, not NEAR: the fast path performs the identical
                // floating-point operations in the identical order.
                EXPECT_EQ(*cell, *reference)
                    << MarketMeasureName(measure) << " " << g << " " << q
                    << " " << l;
              } else {
                EXPECT_EQ(reference.status().code(), StatusCode::kNotFound);
                EXPECT_FALSE(cell.has_value());
              }
            }
          }
        }
      }
    }
  }
}

TEST(MarketplaceCellContextTest, DirectUseMatchesReference) {
  CrossCheckWorld world = MakeCrossCheckWorld();
  const MarketRanking* ranking = world.data->GetRanking(0, 0);
  ASSERT_NE(ranking, nullptr);
  MarketplaceCellContext ctx =
      *MarketplaceCellContext::Make(*world.data, *world.space, ranking, {});
  for (size_t g = 0; g < world.space->num_groups(); ++g) {
    for (MarketMeasure measure :
         {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
      Result<double> fast =
          ctx.Unfairness(static_cast<GroupId>(g), measure);
      Result<double> reference =
          MarketplaceUnfairness(*world.data, *world.space,
                                static_cast<GroupId>(g), 0, 0, measure, {});
      ASSERT_EQ(fast.ok(), reference.ok());
      if (fast.ok()) {
        EXPECT_EQ(*fast, *reference);
      } else {
        EXPECT_EQ(fast.status().code(), reference.status().code());
      }
    }
  }
}

TEST(MarketplaceCellContextTest, ValidatesInputs) {
  CrossCheckWorld world = MakeCrossCheckWorld();
  // Null / empty rankings are NotFound (an undefined column, not an error).
  Result<MarketplaceCellContext> missing =
      MarketplaceCellContext::Make(*world.data, *world.space, nullptr, {});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Malformed options are InvalidArgument, as in the reference path.
  MeasureOptions bad;
  bad.histogram_bins = 0;
  Result<MarketplaceCellContext> invalid = MarketplaceCellContext::Make(
      *world.data, *world.space, world.data->GetRanking(0, 0), bad);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelBuildTest, ParallelMatchesSerialForBothBuilders) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());

  // Marketplace: random rankings over 12 workers, 5 queries × 3 locations.
  MarketplaceDataset market(schema);
  GroupSpace space = *GroupSpace::Enumerate(market.schema());
  Rng rng(404);
  std::vector<WorkerId> workers;
  for (int i = 0; i < 12; ++i) {
    Demographics d = {static_cast<ValueId>(rng.NextBelow(3)),
                      static_cast<ValueId>(rng.NextBelow(2))};
    workers.push_back(*market.AddWorker("w" + std::to_string(i), d));
  }
  for (QueryId q = 0; q < 5; ++q) {
    market.queries().GetOrAdd("q" + std::to_string(q));
    for (LocationId l = 0; l < 3; ++l) {
      market.locations().GetOrAdd("l" + std::to_string(l));
      MarketRanking r;
      r.workers = workers;
      rng.Shuffle(r.workers);
      ASSERT_TRUE(market.SetRanking(q, l, std::move(r)).ok());
    }
  }
  for (MarketMeasure measure :
       {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
    UnfairnessCube serial =
        *BuildMarketplaceCube(market, space, measure, {}, {}, 1);
    UnfairnessCube parallel =
        *BuildMarketplaceCube(market, space, measure, {}, {}, 4);
    ASSERT_EQ(serial.num_present(), parallel.num_present());
    for (size_t g = 0; g < serial.axis_size(Dimension::kGroup); ++g) {
      for (size_t q = 0; q < 5; ++q) {
        for (size_t l = 0; l < 3; ++l) {
          ASSERT_EQ(serial.Get(g, q, l).has_value(),
                    parallel.Get(g, q, l).has_value());
          if (serial.Get(g, q, l).has_value()) {
            EXPECT_DOUBLE_EQ(*serial.Get(g, q, l), *parallel.Get(g, q, l));
          }
        }
      }
    }
  }

  // Search: per-user lists across 4 queries × 2 locations.
  SearchDataset search(schema);
  for (int u = 0; u < 8; ++u) {
    Demographics d = {static_cast<ValueId>(rng.NextBelow(3)),
                      static_cast<ValueId>(rng.NextBelow(2))};
    ASSERT_TRUE(search.AddUser("u" + std::to_string(u), d).ok());
  }
  for (QueryId q = 0; q < 4; ++q) {
    search.queries().GetOrAdd("sq" + std::to_string(q));
    for (LocationId l = 0; l < 2; ++l) {
      search.locations().GetOrAdd("sl" + std::to_string(l));
      for (UserId u = 0; u < 8; ++u) {
        std::vector<int32_t> pool = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
        rng.Shuffle(pool);
        RankedList results(pool.begin(), pool.begin() + 6);
        ASSERT_TRUE(search.AddObservation(q, l, {u, results}).ok());
      }
    }
  }
  UnfairnessCube serial =
      *BuildSearchCube(search, space, SearchMeasure::kKendallTau, {}, {}, 1);
  UnfairnessCube parallel =
      *BuildSearchCube(search, space, SearchMeasure::kKendallTau, {}, {}, 4);
  ASSERT_EQ(serial.num_present(), parallel.num_present());
  for (size_t g = 0; g < serial.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < 4; ++q) {
      for (size_t l = 0; l < 2; ++l) {
        ASSERT_EQ(serial.Get(g, q, l).has_value(),
                  parallel.Get(g, q, l).has_value());
        if (serial.Get(g, q, l).has_value()) {
          EXPECT_DOUBLE_EQ(*serial.Get(g, q, l), *parallel.Get(g, q, l));
        }
      }
    }
  }
}

// The bounded-memory sharded builders must stream exactly the columns the
// in-memory builders materialize — bitwise, whatever the shard size or
// parallelism, since both run the same column evaluators.
TEST(ShardedBuildTest, ShardedMatchesInMemoryForBothBuilders) {
  AttributeSchema schema;
  ASSERT_TRUE(
      schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());

  MarketplaceDataset market(schema);
  GroupSpace space = *GroupSpace::Enumerate(market.schema());
  Rng rng(606);
  std::vector<WorkerId> workers;
  for (int i = 0; i < 12; ++i) {
    Demographics d = {static_cast<ValueId>(rng.NextBelow(3)),
                      static_cast<ValueId>(rng.NextBelow(2))};
    workers.push_back(*market.AddWorker("w" + std::to_string(i), d));
  }
  for (QueryId q = 0; q < 5; ++q) {
    market.queries().GetOrAdd("q" + std::to_string(q));
    for (LocationId l = 0; l < 3; ++l) {
      market.locations().GetOrAdd("l" + std::to_string(l));
      if (q == 3) continue;  // unobserved column: must stay all-missing
      MarketRanking r;
      r.workers = workers;
      rng.Shuffle(r.workers);
      ASSERT_TRUE(market.SetRanking(q, l, std::move(r)).ok());
    }
  }
  CubeAxes axes = *ResolveMarketplaceCubeAxes(market, space);
  UnfairnessCube full =
      *BuildMarketplaceCube(market, space, MarketMeasure::kEmd);
  for (ShardedBuildOptions sharded :
       {ShardedBuildOptions{2, 1}, ShardedBuildOptions{4, 3},
        ShardedBuildOptions{1000, 2}}) {
    UnfairnessCube streamed =
        *UnfairnessCube::Make(axes.groups, axes.queries, axes.locations);
    CubeMaterializeSink sink(&streamed);
    ASSERT_TRUE(BuildMarketplaceCubeSharded(market, space, MarketMeasure::kEmd,
                                            {}, axes, sharded, &sink)
                    .ok());
    ASSERT_EQ(streamed.num_present(), full.num_present());
    for (size_t g = 0; g < full.axis_size(Dimension::kGroup); ++g) {
      for (size_t q = 0; q < 5; ++q) {
        for (size_t l = 0; l < 3; ++l) {
          ASSERT_EQ(streamed.Get(g, q, l), full.Get(g, q, l))
              << "g=" << g << " q=" << q << " l=" << l
              << " shard_columns=" << sharded.shard_columns;
        }
      }
    }
  }

  SearchDataset search(schema);
  for (int u = 0; u < 8; ++u) {
    Demographics d = {static_cast<ValueId>(rng.NextBelow(3)),
                      static_cast<ValueId>(rng.NextBelow(2))};
    ASSERT_TRUE(search.AddUser("u" + std::to_string(u), d).ok());
  }
  for (QueryId q = 0; q < 4; ++q) {
    search.queries().GetOrAdd("sq" + std::to_string(q));
    for (LocationId l = 0; l < 2; ++l) {
      search.locations().GetOrAdd("sl" + std::to_string(l));
      for (UserId u = 0; u < 8; ++u) {
        std::vector<int32_t> pool = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
        rng.Shuffle(pool);
        RankedList results(pool.begin(), pool.begin() + 6);
        ASSERT_TRUE(search.AddObservation(q, l, {u, results}).ok());
      }
    }
  }
  CubeAxes search_axes = *ResolveSearchCubeAxes(search, space);
  UnfairnessCube search_full =
      *BuildSearchCube(search, space, SearchMeasure::kJaccard);
  UnfairnessCube search_streamed = *UnfairnessCube::Make(
      search_axes.groups, search_axes.queries, search_axes.locations);
  CubeMaterializeSink search_sink(&search_streamed);
  ASSERT_TRUE(BuildSearchCubeSharded(search, space, SearchMeasure::kJaccard,
                                     {}, search_axes, {3, 2}, &search_sink)
                  .ok());
  ASSERT_EQ(search_streamed.num_present(), search_full.num_present());
  for (size_t g = 0; g < search_full.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < 4; ++q) {
      for (size_t l = 0; l < 2; ++l) {
        ASSERT_EQ(search_streamed.Get(g, q, l), search_full.Get(g, q, l));
      }
    }
  }
}

TEST(ShardedBuildTest, RejectsBadArguments) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  MarketplaceDataset market(schema);
  GroupSpace space = *GroupSpace::Enumerate(market.schema());
  ASSERT_TRUE(market.AddWorker("w0", {0}).ok());
  market.queries().GetOrAdd("q0");
  market.locations().GetOrAdd("l0");
  MarketRanking r;
  r.workers = {0};
  ASSERT_TRUE(market.SetRanking(0, 0, std::move(r)).ok());
  CubeAxes axes = *ResolveMarketplaceCubeAxes(market, space);
  UnfairnessCube cube =
      *UnfairnessCube::Make(axes.groups, axes.queries, axes.locations);
  CubeMaterializeSink sink(&cube);
  EXPECT_EQ(BuildMarketplaceCubeSharded(market, space, MarketMeasure::kEmd, {},
                                        axes, {}, nullptr)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BuildMarketplaceCubeSharded(market, space, MarketMeasure::kEmd, {},
                                        axes, {0, 1}, &sink)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CubeBuilderTest, RefreshColumnTracksDatasetChanges) {
  UnfairnessCube cube =
      *BuildMarketplaceCube(*data_, *space_, MarketMeasure::kEmd);
  // Re-crawl query 1 (previously unobserved): now segregated by gender.
  MarketRanking fresh;
  fresh.workers = {0, 1, 2, 3};
  ASSERT_TRUE(data_->SetRanking(1, 0, std::move(fresh)).ok());
  ASSERT_TRUE(RefreshMarketplaceColumn(*data_, *space_, MarketMeasure::kEmd,
                                       {}, &cube, 1, 0)
                  .ok());
  UnfairnessCube rebuilt =
      *BuildMarketplaceCube(*data_, *space_, MarketMeasure::kEmd);
  ASSERT_EQ(cube.num_present(), rebuilt.num_present());
  for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < 2; ++q) {
      ASSERT_EQ(cube.Get(g, q, 0).has_value(),
                rebuilt.Get(g, q, 0).has_value());
      if (cube.Get(g, q, 0).has_value()) {
        EXPECT_DOUBLE_EQ(*cube.Get(g, q, 0), *rebuilt.Get(g, q, 0));
      }
    }
  }
}

TEST_F(CubeBuilderTest, RefreshColumnClearsUndefinedCells) {
  UnfairnessCube cube =
      *BuildMarketplaceCube(*data_, *space_, MarketMeasure::kEmd);
  ASSERT_TRUE(cube.Get(0, 0, 0).has_value());
  // Replace the ranking with a single-gender one: both groups undefined.
  MarketRanking males_only;
  males_only.workers = {0, 1};
  ASSERT_TRUE(data_->SetRanking(0, 0, std::move(males_only)).ok());
  ASSERT_TRUE(RefreshMarketplaceColumn(*data_, *space_, MarketMeasure::kEmd,
                                       {}, &cube, 0, 0)
                  .ok());
  EXPECT_FALSE(cube.Get(0, 0, 0).has_value());
  EXPECT_FALSE(cube.Get(1, 0, 0).has_value());
}

TEST_F(CubeBuilderTest, RefreshColumnValidates) {
  UnfairnessCube cube =
      *BuildMarketplaceCube(*data_, *space_, MarketMeasure::kEmd);
  EXPECT_FALSE(RefreshMarketplaceColumn(*data_, *space_, MarketMeasure::kEmd,
                                        {}, nullptr, 0, 0)
                   .ok());
  EXPECT_FALSE(RefreshMarketplaceColumn(*data_, *space_, MarketMeasure::kEmd,
                                        {}, &cube, 9, 0)
                   .ok());
}

TEST(ParallelBuildTest, ParallelPropagatesErrors) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  MarketplaceDataset market(schema);
  GroupSpace space = *GroupSpace::Enumerate(market.schema());
  ASSERT_TRUE(market.AddWorker("w", {0}).ok());
  MarketRanking r;
  r.workers = {0};
  market.queries().GetOrAdd("q");
  market.locations().GetOrAdd("l");
  ASSERT_TRUE(market.SetRanking(0, 0, std::move(r)).ok());
  MeasureOptions bad;
  bad.histogram_bins = 0;
  Result<UnfairnessCube> cube =
      BuildMarketplaceCube(market, space, MarketMeasure::kEmd, bad, {}, 4);
  ASSERT_FALSE(cube.ok());
  EXPECT_EQ(cube.status().code(), StatusCode::kInvalidArgument);
}

TEST(SearchCubeBuilderTest, RefreshSearchColumnTracksNewObservations) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  SearchDataset data(schema);
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  ASSERT_TRUE(data.AddUser("m", {0}).ok());
  ASSERT_TRUE(data.AddUser("f", {1}).ok());
  QueryId q = data.queries().GetOrAdd("cleaning jobs");
  data.queries().GetOrAdd("moving jobs");  // second query, never observed
  LocationId l = data.locations().GetOrAdd("Boston, MA");
  ASSERT_TRUE(data.AddObservation(q, l, {0, {1, 2, 3}}).ok());
  ASSERT_TRUE(data.AddObservation(q, l, {1, {1, 2, 3}}).ok());

  UnfairnessCube cube =
      *BuildSearchCube(data, space, SearchMeasure::kJaccard);
  EXPECT_DOUBLE_EQ(*cube.Get(0, 0, 0), 0.0);  // identical lists
  EXPECT_FALSE(cube.Get(0, 1, 0).has_value());

  // New runs arrive for the second query: disjoint result sets.
  ASSERT_TRUE(data.AddObservation(1, l, {0, {4, 5}}).ok());
  ASSERT_TRUE(data.AddObservation(1, l, {1, {8, 9}}).ok());
  ASSERT_TRUE(RefreshSearchColumn(data, space, SearchMeasure::kJaccard, {},
                                  &cube, 1, 0)
                  .ok());
  ASSERT_TRUE(cube.Get(0, 1, 0).has_value());
  EXPECT_DOUBLE_EQ(*cube.Get(0, 1, 0), 1.0);
  // Untouched column is untouched.
  EXPECT_DOUBLE_EQ(*cube.Get(0, 0, 0), 0.0);
  // Full rebuild agrees.
  UnfairnessCube rebuilt =
      *BuildSearchCube(data, space, SearchMeasure::kJaccard);
  EXPECT_EQ(cube.num_present(), rebuilt.num_present());
}

TEST(SearchCubeBuilderTest, EmptyDatasetIsInvalid) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  SearchDataset data(schema);
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  EXPECT_FALSE(BuildSearchCube(data, space, SearchMeasure::kJaccard).ok());
}

}  // namespace
}  // namespace fairjob
