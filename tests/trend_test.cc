#include "core/trend.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

UnfairnessCube CubeWith(std::vector<double> group_values) {
  std::vector<GroupId> groups;
  for (size_t g = 0; g < group_values.size(); ++g) {
    groups.push_back(static_cast<GroupId>(g));
  }
  UnfairnessCube cube = *UnfairnessCube::Make(groups, {0}, {0});
  for (size_t g = 0; g < group_values.size(); ++g) {
    if (group_values[g] >= 0.0) cube.Set(g, 0, 0, group_values[g]);
    // negative sentinel = leave missing
  }
  return cube;
}

TEST(TrendTest, RecordsSeriesPerPosition) {
  TrendTracker tracker;
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.1, 0.5})).ok());
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.2, 0.4})).ok());
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.3, -1.0})).ok());
  EXPECT_EQ(tracker.num_epochs(), 3u);
  EXPECT_EQ(tracker.axis_size(), 2u);
  std::vector<std::optional<double>> series0 = tracker.Series(0);
  ASSERT_EQ(series0.size(), 3u);
  EXPECT_DOUBLE_EQ(*series0[0], 0.1);
  EXPECT_DOUBLE_EQ(*series0[2], 0.3);
  std::vector<std::optional<double>> series1 = tracker.Series(1);
  EXPECT_TRUE(series1[1].has_value());
  EXPECT_FALSE(series1[2].has_value());  // became undefined
}

TEST(TrendTest, RejectsMismatchedAxis) {
  TrendTracker tracker;
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.1, 0.5})).ok());
  EXPECT_FALSE(tracker.RecordEpoch(CubeWith({0.1, 0.5, 0.9})).ok());
}

TEST(TrendTest, TopDriftsOrderedByMagnitude) {
  TrendTracker tracker;
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.10, 0.50, 0.30})).ok());
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.15, 0.20, 0.31})).ok());
  std::vector<TrendTracker::Drift> drifts = *tracker.TopDrifts(2);
  ASSERT_EQ(drifts.size(), 2u);
  EXPECT_EQ(drifts[0].pos, 1u);  // -0.30 swing
  EXPECT_NEAR(drifts[0].delta(), -0.30, 1e-12);
  EXPECT_EQ(drifts[1].pos, 0u);  // +0.05
}

TEST(TrendTest, DriftsSkipUndefinedPositions) {
  TrendTracker tracker;
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.10, -1.0})).ok());
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.20, 0.9})).ok());
  std::vector<TrendTracker::Drift> drifts = *tracker.TopDrifts(5);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].pos, 0u);
}

TEST(TrendTest, RankCrossingsDetected) {
  TrendTracker tracker;
  // Epoch 0: a(0.1) < b(0.2) < c(0.3). Epoch 1: a jumps above c.
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.1, 0.2, 0.3})).ok());
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.4, 0.2, 0.3})).ok());
  std::vector<std::pair<size_t, size_t>> crossings = *tracker.RankCrossings();
  // a crossed b and c.
  ASSERT_EQ(crossings.size(), 2u);
  EXPECT_EQ(crossings[0], (std::pair<size_t, size_t>{0, 1}));
  EXPECT_EQ(crossings[1], (std::pair<size_t, size_t>{0, 2}));
}

TEST(TrendTest, NoCrossingsWhenOrderStable) {
  TrendTracker tracker;
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.1, 0.2})).ok());
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.15, 0.25})).ok());
  EXPECT_TRUE(tracker.RankCrossings()->empty());
}

TEST(TrendTest, RequiresTwoEpochs) {
  TrendTracker tracker;
  ASSERT_TRUE(tracker.RecordEpoch(CubeWith({0.1})).ok());
  EXPECT_FALSE(tracker.TopDrifts(1).ok());
  EXPECT_FALSE(tracker.RankCrossings().ok());
}

TEST(TrendTest, TracksOtherDimensions) {
  TrendTracker tracker(Dimension::kLocation);
  UnfairnessCube cube = *UnfairnessCube::Make({0}, {0}, {0, 1});
  cube.Set(0, 0, 0, 0.4);
  cube.Set(0, 0, 1, 0.6);
  ASSERT_TRUE(tracker.RecordEpoch(cube).ok());
  EXPECT_EQ(tracker.axis_size(), 2u);
  EXPECT_DOUBLE_EQ(*tracker.Series(1)[0], 0.6);
}

}  // namespace
}  // namespace fairjob
