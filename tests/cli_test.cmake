# CLI hardening checks, run as one CTest case:
#   cmake -DCLI=<path to fairjob_cli> -P cli_test.cmake
# Each case pins BOTH the exit code and a regex over combined stdout+stderr
# (plain WILL_FAIL / PASS_REGULAR_EXPRESSION cannot check the two together).

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to fairjob_cli>")
endif()

set(failures 0)

# run_case(<name> <expected-exit-code> <must-match-regex> [args...])
function(run_case name expected regex)
  execute_process(
    COMMAND "${CLI}" ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code
  )
  set(combined "${out}${err}")
  set(ok TRUE)
  if(NOT code STREQUAL expected)
    message(WARNING "${name}: exit code ${code}, expected ${expected}")
    set(ok FALSE)
  endif()
  if(NOT combined MATCHES "${regex}")
    message(WARNING "${name}: output does not match '${regex}':\n${combined}")
    set(ok FALSE)
  endif()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures "${failures}" PARENT_SCOPE)
  else()
    message(STATUS "${name}: ok")
  endif()
endfunction()

# Bad invocations: nonzero exit AND usage/diagnostic text.
run_case(no_command 2 "no command given.*usage:")
run_case(unknown_command 2 "unknown command 'frobnicate'.*usage:" frobnicate)
run_case(help_exits_zero 0 "usage:" help)
run_case(unknown_flag 1 "unknown flag '--bogus'" serve-bench --bogus 1)
run_case(typoed_flag_not_silently_ignored 1 "unknown flag '--request'"
         serve-bench --request 10)
run_case(non_numeric_flag 1 "expects an integer" serve-bench --requests ten)
run_case(non_positive_flag 1 "must be positive" serve-bench --requests=-5)
run_case(bad_algorithm 1 "unknown --algorithm 'bogus'"
         serve-bench --algorithm bogus --requests 10)
run_case(unknown_flag_other_command 1 "unknown flag '--bogus'" topk --bogus 1)

# A tiny serve-bench must succeed end to end and report the speedup line.
run_case(serve_bench_smoke 0 "hot/cold speedup:"
         serve-bench --requests 80 --keyspace 8 --workers 40 --cities 2)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} CLI case(s) failed")
endif()
