// Differential suite for the batched list-distance engine
// (ranking/list_batch.h): every kernel must be *bitwise* identical to its
// per-pair reference on inputs both paths accept, error paths must match,
// and a full BuildSearchCube built on the batch path must agree with the
// per-triple SearchUnfairness reference. Own binary so the sanitizer matrix
// can run it directly (the shared-batch kernels must be TSan-clean).

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/group_space.h"
#include "core/unfairness_cube.h"
#include "core/unfairness_measures.h"
#include "ranking/footrule.h"
#include "ranking/jaccard.h"
#include "ranking/kendall_tau.h"
#include "ranking/list_batch.h"
#include "ranking/rbo.h"
#include "ranking/simd.h"
#include "search/google_sim.h"

namespace fairjob {
namespace {

uint64_t BitsOf(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Asserts bitwise equality — EXPECT_DOUBLE_EQ allows 4 ulps, which would
// hide the exact-replication property the engine promises.
void ExpectBitwise(const Result<double>& batch, const Result<double>& ref,
                   const std::string& what) {
  ASSERT_EQ(batch.ok(), ref.ok()) << what;
  if (ref.ok()) {
    EXPECT_EQ(BitsOf(*batch), BitsOf(*ref))
        << what << ": batch=" << *batch << " ref=" << *ref;
  } else {
    EXPECT_EQ(batch.status().message(), ref.status().message()) << what;
  }
}

// A prefix of a shuffled pool over `universe` items: lists drawn this way
// overlap partially, fully, or not at all depending on the universe size.
RankedList RandomList(Rng& rng, int32_t universe, size_t len) {
  std::vector<int32_t> pool(static_cast<size_t>(universe));
  for (int32_t v = 0; v < universe; ++v) pool[static_cast<size_t>(v)] = v;
  rng.Shuffle(pool);
  return RankedList(pool.begin(), pool.begin() + static_cast<long>(len));
}

std::vector<const RankedList*> Pointers(const std::vector<RankedList>& lists) {
  std::vector<const RankedList*> ptrs;
  for (const RankedList& l : lists) ptrs.push_back(&l);
  return ptrs;
}

TEST(ListBatchTest, TopKKernelsMatchPerPairReferenceBitwise) {
  Rng rng(20190715);
  // Deliberately off-dyadic parameters: any summation-order drift between
  // the two paths shows up in the last bits.
  const double penalties[] = {0.0, 0.3, 0.5, 1.0};
  const double persistences[] = {0.1, 0.9, 0.97};
  for (int trial = 0; trial < 20; ++trial) {
    // Small universes force heavy overlap, large ones near-disjoint lists;
    // both regimes exercise every membership case of the pair scans.
    int32_t universe = trial % 2 == 0 ? 12 : 60;
    std::vector<RankedList> lists;
    for (int l = 0; l < 6; ++l) {
      lists.push_back(RandomList(rng, universe, 1 + rng.NextBelow(10)));
    }
    Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
    ASSERT_TRUE(batch.ok()) << batch.status().message();
    ListDistanceBatch::Scratch scratch;
    for (size_t i = 0; i < lists.size(); ++i) {
      for (size_t j = 0; j < lists.size(); ++j) {
        if (i == j) continue;
        std::string pair = "trial " + std::to_string(trial) + " pair " +
                           std::to_string(i) + "," + std::to_string(j);
        for (double p : penalties) {
          ExpectBitwise(batch->KendallTauTopK(i, j, p, &scratch),
                        KendallTauTopK(lists[i], lists[j], p),
                        pair + " kendall p=" + std::to_string(p));
        }
        ExpectBitwise(batch->Jaccard(i, j),
                      JaccardDistance(lists[i], lists[j]), pair + " jaccard");
        ExpectBitwise(batch->FootruleTopK(i, j),
                      FootruleTopK(lists[i], lists[j]), pair + " footrule");
        for (double p : persistences) {
          ExpectBitwise(batch->Rbo(i, j, p),
                        RboDistance(lists[i], lists[j], p),
                        pair + " rbo p=" + std::to_string(p));
        }
      }
    }
  }
}

TEST(ListBatchTest, KendallTauFullMatchesReferenceOnPermutations) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 1 + rng.NextBelow(12);
    RankedList base = RandomList(rng, 40, n);
    std::vector<RankedList> lists;
    for (int l = 0; l < 4; ++l) {
      RankedList perm = base;
      rng.Shuffle(perm);
      lists.push_back(perm);
    }
    Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
    ASSERT_TRUE(batch.ok()) << batch.status().message();
    ListDistanceBatch::Scratch scratch;
    for (size_t i = 0; i < lists.size(); ++i) {
      for (size_t j = 0; j < lists.size(); ++j) {
        if (i == j) continue;
        ExpectBitwise(batch->KendallTauFull(i, j, &scratch),
                      KendallTauDistance(lists[i], lists[j]),
                      "trial " + std::to_string(trial) + " pair " +
                          std::to_string(i) + "," + std::to_string(j));
      }
    }
  }
}

TEST(ListBatchTest, KendallTauFullErrorsMatchReference) {
  RankedList a = {1, 2, 3};
  RankedList b = {1, 2, 4};       // same size, different set
  RankedList shorter = {1, 2};    // size mismatch
  std::vector<RankedList> lists = {a, b, shorter};
  Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
  ASSERT_TRUE(batch.ok());
  ListDistanceBatch::Scratch scratch;
  ExpectBitwise(batch->KendallTauFull(0, 1, &scratch), KendallTauDistance(a, b),
                "different item sets");
  ExpectBitwise(batch->KendallTauFull(0, 2, &scratch),
                KendallTauDistance(a, shorter), "size mismatch");
}

TEST(ListBatchTest, SingletonListsMatchReference) {
  RankedList same = {42};
  RankedList other = {7};
  std::vector<RankedList> lists = {same, other, same};
  Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
  ASSERT_TRUE(batch.ok());
  ListDistanceBatch::Scratch scratch;
  for (size_t i : {size_t{0}, size_t{2}}) {
    size_t j = 1;
    ExpectBitwise(batch->KendallTauTopK(i, j, 0.5, &scratch),
                  KendallTauTopK(lists[i], lists[j], 0.5), "kt disjoint");
    ExpectBitwise(batch->Jaccard(i, j), JaccardDistance(lists[i], lists[j]),
                  "jaccard disjoint");
    ExpectBitwise(batch->FootruleTopK(i, j), FootruleTopK(lists[i], lists[j]),
                  "footrule disjoint");
    ExpectBitwise(batch->Rbo(i, j, 0.9), RboDistance(lists[i], lists[j], 0.9),
                  "rbo disjoint");
  }
  // Two identical singletons: max_penalty degenerates to 0 → defined as 0.
  ExpectBitwise(batch->KendallTauTopK(0, 2, 0.0, &scratch),
                KendallTauTopK(same, same, 0.0), "kt identical singleton");
  ExpectBitwise(batch->KendallTauFull(0, 2, &scratch),
                KendallTauDistance(same, same), "kt-full identical singleton");
}

TEST(ListBatchTest, MakeRejectsMalformedLists) {
  RankedList ok_list = {1, 2, 3};
  RankedList dup = {5, 6, 5};
  RankedList empty;

  std::vector<const RankedList*> with_dup = {&ok_list, &dup};
  Result<ListDistanceBatch> r = ListDistanceBatch::Make(with_dup);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "ranked list contains duplicate item id 5");

  std::vector<const RankedList*> with_empty = {&ok_list, &empty};
  r = ListDistanceBatch::Make(with_empty);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("list 1 is empty"), std::string::npos);

  std::vector<const RankedList*> with_null = {&ok_list, nullptr};
  r = ListDistanceBatch::Make(with_null);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("null list"), std::string::npos);
}

TEST(ListBatchTest, ParameterAndIndexErrorsMatchReference) {
  RankedList a = {1, 2, 3};
  RankedList b = {3, 4, 5};
  std::vector<RankedList> lists = {a, b};
  Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
  ASSERT_TRUE(batch.ok());
  ListDistanceBatch::Scratch scratch;

  ExpectBitwise(batch->KendallTauTopK(0, 1, -0.1, &scratch),
                KendallTauTopK(a, b, -0.1), "penalty below range");
  ExpectBitwise(batch->KendallTauTopK(0, 1, 1.5, &scratch),
                KendallTauTopK(a, b, 1.5), "penalty above range");
  ExpectBitwise(batch->Rbo(0, 1, 0.0), RboDistance(a, b, 0.0), "rbo p=0");
  ExpectBitwise(batch->Rbo(0, 1, 1.0), RboDistance(a, b, 1.0), "rbo p=1");

  EXPECT_FALSE(batch->Jaccard(0, 2).ok());
  EXPECT_FALSE(batch->KendallTauTopK(2, 0, 0.5, &scratch).ok());
  EXPECT_FALSE(batch->Rbo(7, 0, 0.9).ok());
}

TEST(ListBatchTest, EmptyBatchHasNoListsAndRejectsKernelCalls) {
  Result<ListDistanceBatch> batch = ListDistanceBatch::Make({});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_lists(), 0u);
  EXPECT_EQ(batch->universe_size(), 0u);
  EXPECT_FALSE(batch->Jaccard(0, 0).ok());
}

TEST(ListBatchTest, StatsCountInterningWork) {
  RankedList a = {1, 2, 3};
  RankedList b = {3, 4, 5};    // shares item 3 with a
  RankedList c = {1, 5};       // nothing new
  std::vector<RankedList> lists = {a, b, c};
  Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->stats().lists_interned, 3u);
  EXPECT_EQ(batch->stats().unique_lists, 3u);  // all contents distinct
  EXPECT_EQ(batch->stats().items_interned, 8u);
  EXPECT_EQ(batch->stats().universe_size, 5u);
  EXPECT_EQ(batch->num_lists(), 3u);
  EXPECT_EQ(batch->list_size(0), 3u);
  EXPECT_EQ(batch->list_size(2), 2u);
}

// Lists with identical content share one arena slot; kernels are pure
// functions of list content, so every logical index must keep answering
// exactly as if the arena were not deduplicated.
TEST(ListBatchTest, DeduplicatesIdenticalListContent) {
  RankedList a = {4, 1, 9};
  RankedList b = {9, 1, 4};  // same set, different order: NOT a duplicate
  RankedList c = {7, 2};
  std::vector<RankedList> lists = {a, b, a, c, a, c};
  Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->stats().lists_interned, 6u);
  EXPECT_EQ(batch->stats().unique_lists, 3u);  // {a, b, c}
  EXPECT_EQ(batch->num_lists(), 6u);
  EXPECT_EQ(batch->list_size(4), 3u);
  ListDistanceBatch::Scratch scratch;
  for (size_t i = 0; i < lists.size(); ++i) {
    for (size_t j = 0; j < lists.size(); ++j) {
      if (i == j) continue;
      std::string pair =
          "pair " + std::to_string(i) + "," + std::to_string(j);
      ExpectBitwise(batch->KendallTauTopK(i, j, 0.5, &scratch),
                    KendallTauTopK(lists[i], lists[j], 0.5), pair + " kt");
      ExpectBitwise(batch->Jaccard(i, j), JaccardDistance(lists[i], lists[j]),
                    pair + " jaccard");
      ExpectBitwise(batch->FootruleTopK(i, j),
                    FootruleTopK(lists[i], lists[j]), pair + " footrule");
      ExpectBitwise(batch->Rbo(i, j, 0.9),
                    RboDistance(lists[i], lists[j], 0.9), pair + " rbo");
    }
  }
  // Shared-slot pairs must report exact-zero distances.
  EXPECT_EQ(*batch->Jaccard(0, 2), 0.0);
  EXPECT_EQ(*batch->FootruleTopK(2, 4), 0.0);
}

// Direct kernel-level differential: the dispatched kernels must agree with
// the scalar reference on every word count around the AVX2 block width of 4
// words / 8 gather lanes — including the off-width tails the vector path
// hands to its scalar remainder loop.
TEST(ListBatchTest, SimdKernelsMatchScalarOnOffWidthTails) {
  Rng rng(123);
  for (size_t words : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                       size_t{7}, size_t{8}, size_t{9}, size_t{12},
                       size_t{13}, size_t{31}}) {
    std::vector<uint64_t> a(words), b(words);
    for (size_t w = 0; w < words; ++w) {
      a[w] = static_cast<uint64_t>(rng.NextU32()) << 32 | rng.NextU32();
      b[w] = static_cast<uint64_t>(rng.NextU32()) << 32 | rng.NextU32();
    }
    EXPECT_EQ(simd::IntersectPopcount(a.data(), b.data(), words),
              simd::IntersectPopcountScalar(a.data(), b.data(), words))
        << words << " words";
  }
  for (size_t n : {size_t{1}, size_t{5}, size_t{8}, size_t{9}, size_t{16},
                   size_t{19}, size_t{24}, size_t{100}}) {
    std::vector<int32_t> pos(64);
    for (int32_t& p : pos) {
      p = rng.NextBernoulli(0.5) ? static_cast<int32_t>(rng.NextBelow(1000))
                                 : -1;
    }
    std::vector<int32_t> ids(n);
    for (int32_t& id : ids) {
      id = static_cast<int32_t>(rng.NextBelow(64));
    }
    std::vector<int32_t> got(n, -7), want(n, -7);
    simd::GatherPositions(pos.data(), ids.data(), n, got.data());
    simd::GatherPositionsScalar(pos.data(), ids.data(), n, want.data());
    EXPECT_EQ(got, want) << n << " ids";
  }
}

// Whole-engine differential across the dispatch boundary: every kernel,
// forced scalar vs dispatched, on universes straddling the vector width
// (1–4 words, with tails), must be bitwise identical.
TEST(ListBatchTest, ForcedScalarAndDispatchedKernelsAgreeBitwise) {
  Rng rng(20260809);
  for (int trial = 0; trial < 8; ++trial) {
    int32_t universe = 17 + 61 * trial;  // 1..4 words, never word-aligned
    std::vector<RankedList> lists;
    for (int l = 0; l < 5; ++l) {
      lists.push_back(RandomList(
          rng, universe,
          1 + rng.NextBelow(static_cast<uint32_t>(universe) / 2)));
    }
    Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
    ASSERT_TRUE(batch.ok());
    ListDistanceBatch::Scratch scratch;
    for (size_t i = 0; i < lists.size(); ++i) {
      for (size_t j = 0; j < lists.size(); ++j) {
        if (i == j) continue;
        Status unset = Status::Internal("unset");
        Result<double> kt_s = unset, j_s = unset, f_s = unset, rbo_s = unset,
                       ktf_s = unset;
        {
          // RAII pin (ranking/simd.h): restores dispatch on scope exit so a
          // failing assertion cannot leave the process pinned to scalar.
          simd::ScopedScalarKernels force_scalar;
          kt_s = batch->KendallTauTopK(i, j, 0.3, &scratch);
          j_s = batch->Jaccard(i, j);
          f_s = batch->FootruleTopK(i, j);
          rbo_s = batch->Rbo(i, j, 0.97);
          ktf_s = batch->KendallTauFull(i, j, &scratch);
        }
        std::string pair = "trial " + std::to_string(trial) + " pair " +
                           std::to_string(i) + "," + std::to_string(j);
        ExpectBitwise(batch->KendallTauTopK(i, j, 0.3, &scratch), kt_s,
                      pair + " kt");
        ExpectBitwise(batch->Jaccard(i, j), j_s, pair + " jaccard");
        ExpectBitwise(batch->FootruleTopK(i, j), f_s, pair + " footrule");
        ExpectBitwise(batch->Rbo(i, j, 0.97), rbo_s, pair + " rbo");
        ExpectBitwise(batch->KendallTauFull(i, j, &scratch), ktf_s,
                      pair + " kt-full");
      }
    }
  }
}

// A shared immutable batch evaluated from many threads (each with its own
// Scratch) must produce the same values as the serial pass — this is the
// access pattern of EvaluateSearchColumn's pool-parallel rows, and the
// sanitizer matrix runs this binary under TSan.
TEST(ListBatchTest, ConcurrentKernelsOnSharedBatchAreDeterministic) {
  Rng rng(99);
  std::vector<RankedList> lists;
  for (int l = 0; l < 12; ++l) {
    lists.push_back(RandomList(rng, 30, 1 + rng.NextBelow(12)));
  }
  Result<ListDistanceBatch> batch = ListDistanceBatch::Make(Pointers(lists));
  ASSERT_TRUE(batch.ok());
  size_t n = lists.size();

  std::vector<double> serial(n * n, 0.0);
  ListDistanceBatch::Scratch scratch;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      serial[i * n + j] = *batch->KendallTauTopK(i, j, 0.5, &scratch);
    }
  }

  std::vector<double> parallel(n * n, 0.0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ListDistanceBatch::Scratch local;
      for (size_t i = t; i < n; i += 4) {
        for (size_t j = i + 1; j < n; ++j) {
          parallel[i * n + j] = *batch->KendallTauTopK(i, j, 0.5, &local);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t idx = 0; idx < serial.size(); ++idx) {
    EXPECT_EQ(BitsOf(serial[idx]), BitsOf(parallel[idx])) << idx;
  }
}

// End-to-end: a search cube built on the batch fast path must agree with the
// per-triple SearchUnfairness reference on the simulated Google study —
// a dataset with real missing cells (each query only exists at its Table-7
// locations) and multi-attribute comparable groups. Jaccard and footrule
// kernels are exactly symmetric, so those cubes are bitwise equal to the
// reference; Kendall-Tau and RBO cells may differ in the last ulp because
// the cube evaluates each unordered pair once (i < j) while the reference
// evaluates both orientations.
TEST(ListBatchTest, GoogleStudyCubeMatchesPerTripleReference) {
  GoogleStudyConfig config;
  config.users_per_cell = 2;
  config.formulations_per_query = 2;
  Result<GoogleWorld> world = BuildGoogleStudy(config);
  ASSERT_TRUE(world.ok()) << world.status().message();
  const SearchDataset& data = world->dataset;
  GroupSpace space = *GroupSpace::Enumerate(data.schema());

  for (SearchMeasure measure :
       {SearchMeasure::kKendallTau, SearchMeasure::kJaccard,
        SearchMeasure::kFootrule, SearchMeasure::kRbo}) {
    Result<UnfairnessCube> cube = BuildSearchCube(data, space, measure);
    ASSERT_TRUE(cube.ok()) << cube.status().message();
    size_t present = 0;
    size_t missing = 0;
    for (size_t g = 0; g < cube->axis_size(Dimension::kGroup); ++g) {
      for (size_t q = 0; q < cube->axis_size(Dimension::kQuery); ++q) {
        for (size_t l = 0; l < cube->axis_size(Dimension::kLocation); ++l) {
          Result<double> reference = SearchUnfairness(
              data, space,
              static_cast<GroupId>(cube->axis_id(Dimension::kGroup, g)),
              static_cast<QueryId>(cube->axis_id(Dimension::kQuery, q)),
              static_cast<LocationId>(cube->axis_id(Dimension::kLocation, l)),
              measure);
          std::optional<double> cell = cube->Get(g, q, l);
          if (reference.ok()) {
            ASSERT_TRUE(cell.has_value()) << g << " " << q << " " << l;
            ++present;
            if (measure == SearchMeasure::kJaccard ||
                measure == SearchMeasure::kFootrule) {
              EXPECT_EQ(BitsOf(*cell), BitsOf(*reference))
                  << g << " " << q << " " << l;
            } else {
              EXPECT_NEAR(*cell, *reference, 1e-12)
                  << g << " " << q << " " << l;
            }
          } else {
            EXPECT_FALSE(cell.has_value()) << g << " " << q << " " << l;
            ++missing;
          }
        }
      }
    }
    // The study layout guarantees both populated and missing cells.
    EXPECT_GT(present, 0u);
    EXPECT_GT(missing, 0u);
  }
}

}  // namespace
}  // namespace fairjob
