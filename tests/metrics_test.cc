#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace fairjob {
namespace {

TEST(CounterTest, DisabledByDefaultDropsWrites) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test.counter");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 0u);
}

TEST(CounterTest, AccumulatesWhenEnabled) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.counter("test.counter");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(CounterTest, DisableMidStreamKeepsRecordedValue) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.counter("test.counter");
  c->Add(7);
  registry.SetEnabled(false);
  c->Add(100);
  EXPECT_EQ(c->Value(), 7u);
}

TEST(CounterTest, ShardsAggregateAcrossThreadPoolWorkers) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.counter("test.parallel");
  ThreadPool pool(4);
  constexpr size_t kIterations = 10000;
  Status s = pool.ParallelFor(kIterations, 4, [&](size_t) {
    c->Add();
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(c->Value(), kIterations);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Gauge* g = registry.gauge("test.gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Add(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 4.0);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), -1.0);
}

TEST(GaugeTest, DisabledGaugeIgnoresWrites) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("test.gauge");
  g->Set(9.0);
  g->Add(1.0);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(HistogramTest, CountsSumAndBucketPlacement) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  LatencyHistogram* h = registry.histogram("test.hist", {1.0, 10.0, 100.0});
  h->Record(0.5);    // <= 1
  h->Record(5.0);    // <= 10
  h->Record(50.0);   // <= 100
  h->Record(500.0);  // +inf bucket
  LatencyHistogram::Snapshot s = h->Aggregate();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 555.5);
  ASSERT_EQ(s.buckets.size(), 4u);  // three finite bounds + inf
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  LatencyHistogram* h = registry.histogram("test.hist", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) h->Record(5.0);   // first bucket
  for (int i = 0; i < 10; ++i) h->Record(15.0);  // second bucket
  LatencyHistogram::Snapshot s = h->Aggregate();
  EXPECT_EQ(s.count, 20u);
  // The median falls on the boundary between the two buckets.
  EXPECT_NEAR(s.Quantile(0.5), 10.0, 1.0);
  EXPECT_LE(s.Quantile(0.1), 10.0);
  EXPECT_GE(s.Quantile(0.9), 10.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.histogram("test.hist");
  EXPECT_DOUBLE_EQ(h->Aggregate().Quantile(0.5), 0.0);
}

TEST(HistogramTest, RecordingTracksRegistrySwitch) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.histogram("test.hist");
  EXPECT_FALSE(h->recording());
  registry.SetEnabled(true);
  EXPECT_TRUE(h->recording());
}

TEST(HistogramTest, DefaultLatencyBucketsAreAscending) {
  std::vector<double> bounds = LatencyHistogram::LatencyBucketsUs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("a"), registry.counter("a"));
  EXPECT_EQ(registry.gauge("b"), registry.gauge("b"));
  EXPECT_EQ(registry.histogram("c"), registry.histogram("c"));
  EXPECT_NE(registry.counter("a"), registry.counter("a2"));
}

TEST(RegistryTest, ResetZeroesButKeepsMetricsAlive) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  Counter* c = registry.counter("a");
  LatencyHistogram* h = registry.histogram("h");
  c->Add(5);
  h->Record(3.0);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Aggregate().count, 0u);
  EXPECT_EQ(registry.counter("a"), c);  // same object after reset
  c->Add(2);
  EXPECT_EQ(c->Value(), 2u);
}

TEST(RegistryTest, ToJsonIsSortedAndContainsAllMetricKinds) {
  MetricsRegistry registry;
  registry.SetEnabled(true);
  registry.counter("z.count")->Add(3);
  registry.counter("a.count")->Add(1);
  registry.gauge("m.gauge")->Set(1.5);
  registry.histogram("h.latency_us")->Record(42.0);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"z.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"m.gauge\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h.latency_us\""), std::string::npos);
  // Sorted: "a.count" printed before "z.count".
  EXPECT_LT(json.find("\"a.count\""), json.find("\"z.count\""));
}

TEST(RegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace fairjob
