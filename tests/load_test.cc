// Sustained-load serving suite: admission control, deadline shedding,
// bounded follower queues, TTL + stale-while-revalidate, and the load
// harness itself. The core contract under test: every request is either
// answered bit-identically to a direct SolveQuantification against some
// pinned snapshot, or rejected with a typed kUnavailable/kDeadlineExceeded
// — never torn, never silently dropped — and the admission accounting is
// exact: admitted + shed + rejected == offered. Deadlines and TTLs run on
// a VirtualClock so the shedding tests are deterministic. Own binary so
// the CI sanitizer matrix (ASan/TSan) runs it directly.

#include "serve/load_gen.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/virtual_clock.h"
#include "core/group_space.h"
#include "core/quantification.h"
#include "market/scale_gen.h"
#include "serve/incremental.h"
#include "serve/quantification_service.h"

namespace fairjob {
namespace {

std::unique_ptr<UnfairnessCube> MakeCube(uint64_t seed) {
  auto cube = std::make_unique<UnfairnessCube>(
      *UnfairnessCube::Make({1, 2, 3, 4, 5}, {10, 11, 12}, {20, 21}));
  Rng rng(seed);
  for (size_t g = 0; g < 5; ++g) {
    for (size_t q = 0; q < 3; ++q) {
      for (size_t l = 0; l < 2; ++l) {
        cube->Set(g, q, l, rng.NextDouble());
      }
    }
  }
  return cube;
}

struct KeySpace {
  std::vector<QuantificationRequest> requests;
  std::vector<QuantificationResult> expected;
};

KeySpace MakeKeySpace(const UnfairnessCube& cube, const IndexSet& indices) {
  KeySpace space;
  for (TopKAlgorithm algorithm :
       {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kNRA,
        TopKAlgorithm::kScan}) {
    for (Dimension target :
         {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
      QuantificationRequest request;
      request.target = target;
      request.k = 2;
      request.algorithm = algorithm;
      request.missing = MissingCellPolicy::kZero;
      space.requests.push_back(request);
    }
  }
  for (const QuantificationRequest& request : space.requests) {
    Result<QuantificationResult> direct =
        SolveQuantification(cube, indices, request);
    EXPECT_TRUE(direct.ok()) << direct.status().ToString();
    space.expected.push_back(*direct);
  }
  return space;
}

bool SameAnswers(const QuantificationResult& a, const QuantificationResult& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i].id != b.answers[i].id) return false;
    if (a.answers[i].value != b.answers[i].value) return false;
  }
  return true;
}

// One-shot open/wait latch for orchestrating leader/follower interleavings.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  }
};

void ExpectExactAccounting(const QuantificationService::Stats& stats) {
  EXPECT_EQ(stats.admitted + stats.shed_deadline + stats.rejected_queue +
                stats.rejected_followers,
            stats.requests);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.admitted);
  EXPECT_EQ(stats.computations + stats.coalesced, stats.cache_misses);
}

// --- Admission control -------------------------------------------------------

TEST(AdmissionTest, QueueFullRejectsWithTypedUnavailable) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/11);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  Gate started, release;
  QuantificationService::Options options;
  options.cache_capacity = 0;
  options.max_inflight = 1;
  options.max_queue_depth = 0;  // no waiting room: full means reject
  options.compute_started_hook = [&] {
    started.Open();
    release.Wait();
  };
  QuantificationService service(cube.get(), &indices, options);

  std::thread leader([&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[0]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_TRUE(SameAnswers(*answer, space.expected[0]));
  });
  started.Wait();

  // The permit is held and there is no queue: a distinct request must be
  // rejected immediately with the typed admission error, not blocked.
  Result<QuantificationResult> rejected = service.Answer(space.requests[1]);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  release.Open();
  leader.join();

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.rejected_queue, 1u);
  EXPECT_EQ(stats.shed_deadline, 0u);
  EXPECT_EQ(stats.errors, 0u);  // typed rejections are not errors
  ExpectExactAccounting(stats);
}

TEST(AdmissionTest, QueuedRequestIsShedWhenVirtualDeadlinePasses) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/13);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  VirtualClock clock;
  Gate started, release;
  QuantificationService::Options options;
  options.cache_capacity = 0;
  options.max_inflight = 1;
  options.max_queue_depth = 2;
  options.clock = &clock;
  options.compute_started_hook = [&] {
    started.Open();
    release.Wait();
  };
  QuantificationService service(cube.get(), &indices, options);

  std::thread leader([&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[0]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  });
  started.Wait();

  std::thread queued([&] {
    Result<QuantificationResult> answer =
        service.Answer(space.requests[1], /*deadline_budget_micros=*/1000);
    ASSERT_FALSE(answer.ok());
    EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  });
  // Wait until the second request is parked in the admission queue, then
  // advance virtual time past its deadline. Nothing else moves the clock,
  // so the shed is deterministic.
  for (int i = 0; i < 5000 && service.admission_queue_depth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.admission_queue_depth(), 1u);
  clock.AdvanceMicros(2000);
  queued.join();

  release.Open();
  leader.join();

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.rejected_queue, 0u);
  ExpectExactAccounting(stats);
}

TEST(AdmissionTest, DefaultDeadlineFromOptionsApplies) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/17);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  VirtualClock clock;
  Gate started, release;
  QuantificationService::Options options;
  options.cache_capacity = 0;
  options.max_inflight = 1;
  options.max_queue_depth = 2;
  options.default_deadline_micros = 500;
  options.clock = &clock;
  options.compute_started_hook = [&] {
    started.Open();
    release.Wait();
  };
  QuantificationService service(cube.get(), &indices, options);

  std::thread leader([&] { ASSERT_TRUE(service.Answer(space.requests[0]).ok()); });
  started.Wait();

  // No explicit budget: the Options default must be in force.
  std::thread queued([&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[1]);
    ASSERT_FALSE(answer.ok());
    EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  });
  for (int i = 0; i < 5000 && service.admission_queue_depth() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.admission_queue_depth(), 1u);
  clock.AdvanceMicros(501);
  queued.join();

  release.Open();
  leader.join();
  EXPECT_EQ(service.stats().shed_deadline, 1u);
  ExpectExactAccounting(service.stats());
}

TEST(AdmissionTest, NegativeBudgetShedsBeforeTouchingTheCache) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/19);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService service(cube.get(), &indices);
  Result<QuantificationResult> shed =
      service.Answer(space.requests[0], /*deadline_budget_micros=*/-1);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(service.cache_stats().lookups, 0u);  // shed before the probe
  ExpectExactAccounting(stats);
}

TEST(AdmissionTest, FollowerBoundRejectsExcessDuplicatesTyped) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/23);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  Gate started, release;
  QuantificationService::Options options;
  options.cache_capacity = 0;
  options.max_followers_per_flight = 1;
  options.compute_started_hook = [&] {
    started.Open();
    release.Wait();
  };
  QuantificationService service(cube.get(), &indices, options);

  std::thread leader([&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[0]);
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(SameAnswers(*answer, space.expected[0]));
  });
  started.Wait();  // the flight is claimed and parked: duplicates must queue

  std::atomic<int> ok{0}, unavailable{0}, other{0};
  std::vector<std::thread> duplicates;
  for (int d = 0; d < 3; ++d) {
    duplicates.emplace_back([&] {
      Result<QuantificationResult> answer = service.Answer(space.requests[0]);
      if (answer.ok()) {
        EXPECT_TRUE(SameAnswers(*answer, space.expected[0]));
        ++ok;
      } else if (answer.status().code() == StatusCode::kUnavailable) {
        ++unavailable;
      } else {
        ++other;
      }
    });
  }
  // With a follower bound of 1, exactly one duplicate coalesces and the
  // other two bounce with kUnavailable — wait for all three to resolve
  // their admission before letting the leader finish.
  for (int i = 0; i < 5000; ++i) {
    QuantificationService::Stats stats = service.stats();
    if (stats.coalesced + stats.rejected_followers == 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.Open();
  leader.join();
  for (std::thread& thread : duplicates) thread.join();

  EXPECT_EQ(ok.load(), 1);
  EXPECT_EQ(unavailable.load(), 2);
  EXPECT_EQ(other.load(), 0);
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.rejected_followers, 2u);
  ExpectExactAccounting(stats);
}

TEST(AdmissionTest, GenerousLimitsStayBitIdenticalToDirect) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/29);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService::Options options;
  options.max_inflight = 4;
  options.max_queue_depth = 64;
  options.default_deadline_micros = 60'000'000;
  QuantificationService service(cube.get(), &indices, options);

  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < space.requests.size(); ++i) {
      Result<QuantificationResult> answer = service.Answer(space.requests[i]);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      EXPECT_TRUE(SameAnswers(*answer, space.expected[i]))
          << "pass " << pass << " key " << i;
    }
  }
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 2 * space.requests.size());
  EXPECT_EQ(stats.admitted, stats.requests);
  EXPECT_EQ(stats.rejected_queue + stats.rejected_followers +
                stats.shed_deadline,
            0u);
  ExpectExactAccounting(stats);
}

TEST(AdmissionTest, OverloadMixtureKeepsAccountingExactAndAnswersUntorn) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/31);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Capacity 1 computation at a time, 1 waiter, bounded followers, a real
  // deadline, and a slow compute: offered load far exceeds capacity, so
  // every outcome class occurs. The assertions are about exactness, not
  // about which class each request lands in (that is timing-dependent).
  QuantificationService::Options options;
  options.cache_capacity = 0;
  options.max_inflight = 1;
  options.max_queue_depth = 1;
  options.max_followers_per_flight = 2;
  options.default_deadline_micros = 3000;
  options.compute_started_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  QuantificationService service(cube.get(), &indices, options);

  constexpr size_t kThreads = 8;
  constexpr size_t kIterations = 25;
  std::atomic<size_t> torn{0}, untyped{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + t);
      for (size_t i = 0; i < kIterations; ++i) {
        size_t key = rng.NextBelow(space.requests.size());
        Result<QuantificationResult> answer = service.Answer(space.requests[key]);
        if (answer.ok()) {
          if (!SameAnswers(*answer, space.expected[key])) ++torn;
        } else if (answer.status().code() != StatusCode::kUnavailable &&
                   answer.status().code() != StatusCode::kDeadlineExceeded) {
          ++untyped;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(untyped.load(), 0u);
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * kIterations);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GE(stats.admitted, 1u);
  ExpectExactAccounting(stats);
}

// --- Cache TTL + stale-while-revalidate --------------------------------------

TEST(CacheFreshnessTest, TtlExpiryForcesRecomputeAndRefreshesEntry) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/37);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  VirtualClock clock;
  QuantificationService::Options options;
  options.cache_ttl_micros = 1000;
  options.clock = &clock;
  QuantificationService service(cube.get(), &indices, options);

  auto expect_answer = [&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[0]);
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(SameAnswers(*answer, space.expected[0]));
  };
  expect_answer();  // miss, computed, inserted at t=0
  expect_answer();  // hit
  clock.AdvanceMicros(999);
  expect_answer();  // age 999 < ttl: still a hit
  EXPECT_EQ(service.stats().computations, 1u);
  EXPECT_EQ(service.stats().ttl_expired, 0u);

  clock.AdvanceMicros(2);
  expect_answer();  // age 1001 ≥ ttl: hard freshness bound, recompute
  EXPECT_EQ(service.stats().computations, 2u);
  EXPECT_EQ(service.stats().ttl_expired, 1u);

  expect_answer();  // re-inserted at t=1001: hits again
  EXPECT_EQ(service.stats().computations, 2u);
  ExpectExactAccounting(service.stats());
}

// Marketplace fixture for staleness: C = queries × locations columns, one
// per-column request each, driven through incremental upserts + flips.
struct SwrFixture {
  static constexpr size_t kQueries = 4;
  static constexpr size_t kLocations = 3;
  static constexpr size_t kWorkers = 12;
  static constexpr size_t kColumns = kQueries * kLocations;

  AttributeSchema schema;
  std::optional<GroupSpace> space;
  std::optional<MarketplaceCubeMaintainer> maintainer;
  std::vector<QuantificationRequest> requests;  // one per column

  static MarketRanking RandomRanking(Rng& rng) {
    MarketRanking ranking;
    std::vector<WorkerId> pool(kWorkers);
    for (size_t w = 0; w < kWorkers; ++w) pool[w] = static_cast<WorkerId>(w);
    rng.Shuffle(pool);
    size_t length = 3 + rng.NextBelow(kWorkers - 3);
    ranking.workers.assign(pool.begin(), pool.begin() + length);
    return ranking;
  }

  void Build(uint64_t seed) {
    ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
    space = *GroupSpace::Enumerate(schema);
    MarketplaceDataset data(schema);
    Rng rng(seed);
    for (size_t w = 0; w < kWorkers; ++w) {
      ASSERT_TRUE(data.AddWorker("w" + std::to_string(w),
                                 {static_cast<int32_t>(rng.NextBelow(2))})
                      .ok());
    }
    for (size_t q = 0; q < kQueries; ++q) {
      data.queries().GetOrAdd("q" + std::to_string(q));
    }
    for (size_t l = 0; l < kLocations; ++l) {
      data.locations().GetOrAdd("l" + std::to_string(l));
    }
    for (size_t q = 0; q < kQueries; ++q) {
      for (size_t l = 0; l < kLocations; ++l) {
        ASSERT_TRUE(data.SetRanking(static_cast<QueryId>(q),
                                    static_cast<LocationId>(l),
                                    RandomRanking(rng))
                        .ok());
      }
    }
    Result<MarketplaceCubeMaintainer> made = MarketplaceCubeMaintainer::Make(
        std::move(data), *space, MarketMeasure::kExposure);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    maintainer.emplace(std::move(*made));

    for (size_t q = 0; q < kQueries; ++q) {
      for (size_t l = 0; l < kLocations; ++l) {
        QuantificationRequest request;
        request.target = Dimension::kGroup;
        request.k = 2;
        request.missing = MissingCellPolicy::kZero;
        request.agg1 = AxisSelector::Single(q);
        request.agg2 = AxisSelector::Single(l);
        requests.push_back(request);
      }
    }
  }

  // Upserts fresh rankings for columns [0, k) until one batch changes all
  // of them, so exactly those k columns' epochs moved since the warm pass.
  void TouchColumns(size_t k, Rng& rng) {
    UpsertReport report;
    do {
      CrawlBatch batch;
      for (size_t c = 0; c < k; ++c) {
        CrawlBatchRow row;
        row.query = static_cast<QueryId>(c / kLocations);
        row.location = static_cast<LocationId>(c % kLocations);
        row.ranking = RandomRanking(rng);
        batch.rows.push_back(std::move(row));
      }
      Result<UpsertReport> applied = maintainer->UpsertCrawlBatch(batch);
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      report = *applied;
    } while (report.columns_changed != k);
  }

  Result<QuantificationResult> Direct(size_t key) const {
    return SolveQuantification(maintainer->snapshot()->cube(),
                               maintainer->snapshot()->indices(),
                               requests[key]);
  }
};

// The stale-while-revalidate property of ISSUE 8: after an upsert touching
// k of C columns, (a) stale entries are served at most stale_budget times
// per key, (b) the refreshed value is bitwise equal to a cold answer on the
// new snapshot, and (c) the C − k untouched columns never serve stale.
TEST(CacheFreshnessTest, StaleServedAtMostBudgetTimesThenRefreshedBitwise) {
  SwrFixture fx;
  fx.Build(/*seed=*/41);
  ASSERT_FALSE(::testing::Test::HasFailure());
  constexpr size_t kTouched = 3;
  constexpr uint32_t kStaleBudget = 2;

  QuantificationService::Options options;
  options.stale_budget = kStaleBudget;
  QuantificationService service(fx.maintainer->snapshot(), options);

  // Warm pass: one computation per column; capture the pre-upsert oracle.
  std::vector<QuantificationResult> old_oracle;
  for (size_t key = 0; key < SwrFixture::kColumns; ++key) {
    Result<QuantificationResult> answer = service.Answer(fx.requests[key]);
    ASSERT_TRUE(answer.ok());
    old_oracle.push_back(*answer);
  }
  ASSERT_EQ(service.stats().computations, SwrFixture::kColumns);

  Rng rng(/*seed=*/43);
  fx.TouchColumns(kTouched, rng);
  ASSERT_FALSE(::testing::Test::HasFailure());
  service.SetSnapshot(fx.maintainer->snapshot());

  std::vector<QuantificationResult> new_oracle;
  for (size_t key = 0; key < SwrFixture::kColumns; ++key) {
    Result<QuantificationResult> direct = fx.Direct(key);
    ASSERT_TRUE(direct.ok());
    new_oracle.push_back(*direct);
  }
  // The touch loop guarantees changed columns; sanity-check the oracle
  // actually moved for at least one touched column.
  size_t moved = 0;
  for (size_t key = 0; key < kTouched; ++key) {
    if (!SameAnswers(old_oracle[key], new_oracle[key])) ++moved;
  }
  ASSERT_GE(moved, 1u);

  // (a) + (b): each touched column serves the OLD value exactly
  // kStaleBudget times, then the next request computes a refresh that is
  // bitwise equal to the cold answer. Untouched columns stay fresh (c).
  for (size_t key = 0; key < SwrFixture::kColumns; ++key) {
    const bool touched = key < kTouched;
    for (uint32_t serve = 0; serve < kStaleBudget; ++serve) {
      Result<QuantificationResult> answer = service.Answer(fx.requests[key]);
      ASSERT_TRUE(answer.ok());
      EXPECT_TRUE(SameAnswers(*answer, touched ? old_oracle[key]
                                               : new_oracle[key]))
          << "key " << key << " serve " << serve;
    }
    Result<QuantificationResult> refreshed = service.Answer(fx.requests[key]);
    ASSERT_TRUE(refreshed.ok());
    EXPECT_TRUE(SameAnswers(*refreshed, new_oracle[key])) << "key " << key;
    // And the refresh sticks: the next serve is a fresh hit of the new value.
    Result<QuantificationResult> after = service.Answer(fx.requests[key]);
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(SameAnswers(*after, new_oracle[key])) << "key " << key;
  }

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.stale_hits, kTouched * kStaleBudget);
  EXPECT_EQ(stats.stale_refreshes, kTouched);
  EXPECT_EQ(stats.computations, SwrFixture::kColumns + kTouched);
  EXPECT_EQ(stats.errors, 0u);
  ExpectExactAccounting(stats);
}

TEST(CacheFreshnessTest, StaleBudgetZeroKeepsStrictFreshness) {
  SwrFixture fx;
  fx.Build(/*seed=*/47);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService service(fx.maintainer->snapshot());  // stale_budget=0
  for (size_t key = 0; key < SwrFixture::kColumns; ++key) {
    ASSERT_TRUE(service.Answer(fx.requests[key]).ok());
  }
  Rng rng(/*seed=*/53);
  fx.TouchColumns(/*k=*/1, rng);
  ASSERT_FALSE(::testing::Test::HasFailure());
  service.SetSnapshot(fx.maintainer->snapshot());

  // Strict freshness: the touched column recomputes on first request (and
  // matches the new snapshot's cold answer); nothing is ever served stale.
  Result<QuantificationResult> direct = fx.Direct(0);
  ASSERT_TRUE(direct.ok());
  Result<QuantificationResult> answer = service.Answer(fx.requests[0]);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(SameAnswers(*answer, *direct));
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.stale_hits, 0u);
  EXPECT_EQ(stats.computations, SwrFixture::kColumns + 1);
  ExpectExactAccounting(stats);
}

// --- Micro-batch window ------------------------------------------------------

// A request whose deadline expires while parked in the batch window is shed
// with the typed kDeadlineExceeded, with exact accounting: it is never
// admitted and its entry is never computed (all waiters were expired).
TEST(BatchWindowTest, DeadlineExpiringInsideWindowIsShed) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/41);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  VirtualClock clock;
  QuantificationService::Options options;
  options.batch_window_micros = 5000;
  options.clock = &clock;
  QuantificationService service(cube.get(), &indices, options);

  std::thread parked([&] {
    Result<QuantificationResult> answer =
        service.Answer(space.requests[0], /*deadline_budget_micros=*/1000);
    ASSERT_FALSE(answer.ok());
    EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  });
  // Wait until the request is parked as the window leader, then advance
  // virtual time past both its deadline and the window end. Nothing else
  // moves the clock, so the drain-time shed is deterministic.
  for (int i = 0; i < 5000 && service.stats().batch_parked == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().batch_parked, 1u);
  clock.AdvanceMicros(6000);
  parked.join();

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.computations, 0u);
  EXPECT_EQ(stats.batch_windows, 1u);
  EXPECT_EQ(stats.batch_parked, 1u);
  EXPECT_EQ(stats.batch_window_shed, 1u);
  EXPECT_EQ(stats.errors, 0u);  // typed sheds are not errors
  ExpectExactAccounting(stats);
}

// Two distinct keys share one window: the one whose deadline survives the
// drain is answered bit-identically to the direct computation, the expired
// one is shed — per-request shedding stays exact inside a shared batch.
TEST(BatchWindowTest, SharedWindowAnswersLiveRequestAndShedsExpiredOne) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/43);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  VirtualClock clock;
  QuantificationService::Options options;
  options.batch_window_micros = 5000;
  options.clock = &clock;
  QuantificationService service(cube.get(), &indices, options);

  std::thread live([&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[0]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_TRUE(SameAnswers(*answer, space.expected[0]));
  });
  std::thread expiring([&] {
    Result<QuantificationResult> answer =
        service.Answer(space.requests[1], /*deadline_budget_micros=*/1000);
    ASSERT_FALSE(answer.ok());
    EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  });
  for (int i = 0; i < 5000 && service.stats().batch_parked < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().batch_parked, 2u);
  clock.AdvanceMicros(6000);
  live.join();
  expiring.join();

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.batch_windows, 1u);
  EXPECT_EQ(stats.batch_window_shed, 1u);
  ExpectExactAccounting(stats);
}

// Duplicate keys coalesce onto one window entry: one computation, the rest
// coalesced — the window replaces single-flight for misses with identical
// accounting.
TEST(BatchWindowTest, DuplicateKeysComputeOnceAndCoalesce) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/47);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  VirtualClock clock;
  QuantificationService::Options options;
  options.batch_window_micros = 2000;
  options.clock = &clock;
  QuantificationService service(cube.get(), &indices, options);

  auto answer_one = [&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[0]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_TRUE(SameAnswers(*answer, space.expected[0]));
  };
  std::thread first(answer_one);
  std::thread second(answer_one);
  for (int i = 0; i < 5000 && service.stats().batch_parked < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().batch_parked, 2u);
  clock.AdvanceMicros(3000);
  first.join();
  second.join();

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.batch_windows, 1u);
  EXPECT_EQ(stats.batch_window_shed, 0u);
  ExpectExactAccounting(stats);
}

// max_batch_size drains the window early: with a virtual clock that never
// advances, hitting the size cap is the only way these answers can return.
TEST(BatchWindowTest, SizeCapDrainsWithoutClockAdvance) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/53);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  VirtualClock clock;
  QuantificationService::Options options;
  options.batch_window_micros = 1'000'000;  // would park ~forever
  options.max_batch_size = 2;
  options.clock = &clock;
  QuantificationService service(cube.get(), &indices, options);

  std::thread a([&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[0]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_TRUE(SameAnswers(*answer, space.expected[0]));
  });
  std::thread b([&] {
    Result<QuantificationResult> answer = service.Answer(space.requests[1]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_TRUE(SameAnswers(*answer, space.expected[1]));
  });
  a.join();
  b.join();

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.computations, 2u);
  EXPECT_EQ(stats.batch_windows, 1u);
  EXPECT_EQ(stats.batch_parked, 2u);
  ExpectExactAccounting(stats);
}

// batch_window_micros = 0 must be today's behavior bit for bit: no windows,
// no parking, misses go through single-flight exactly as before.
TEST(BatchWindowTest, ZeroWindowIsSingleFlightPath) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/59);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService service(cube.get(), &indices);
  for (size_t i = 0; i < space.requests.size(); ++i) {
    Result<QuantificationResult> answer = service.Answer(space.requests[i]);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_TRUE(SameAnswers(*answer, space.expected[i]));
  }
  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.batch_windows, 0u);
  EXPECT_EQ(stats.batch_parked, 0u);
  EXPECT_EQ(stats.batch_window_shed, 0u);
  ExpectExactAccounting(stats);
}

// --- Arrival schedule --------------------------------------------------------

TEST(ArrivalScheduleTest, DeterministicSortedAndInHorizon) {
  ArrivalSpec spec;
  spec.seed = 7;
  spec.target_qps = 5000;
  spec.duration_seconds = 0.5;
  std::vector<int64_t> a = GenerateArrivalTimesMicros(spec);
  std::vector<int64_t> b = GenerateArrivalTimesMicros(spec);
  EXPECT_EQ(a, b);  // same seed, same stream
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], 0);
    EXPECT_LT(a[i], 500'000);
    if (i > 0) {
      EXPECT_GE(a[i], a[i - 1]);
    }
  }
  spec.seed = 8;
  EXPECT_NE(GenerateArrivalTimesMicros(spec), a);  // seed changes the stream
}

TEST(ArrivalScheduleTest, CountTracksTargetRate) {
  ArrivalSpec spec;
  spec.seed = 21;
  spec.target_qps = 4000;
  spec.duration_seconds = 1.0;
  size_t count = GenerateArrivalTimesMicros(spec).size();
  // Poisson(4000): stddev ≈ 63, so ±10% is a > 6-sigma band.
  EXPECT_GT(count, 3600u);
  EXPECT_LT(count, 4400u);
}

TEST(ArrivalScheduleTest, DegenerateSpecsYieldEmptySchedules) {
  ArrivalSpec spec;
  spec.target_qps = 0;
  EXPECT_TRUE(GenerateArrivalTimesMicros(spec).empty());
  spec.target_qps = 100;
  spec.duration_seconds = 0;
  EXPECT_TRUE(GenerateArrivalTimesMicros(spec).empty());
  spec.duration_seconds = -1;
  EXPECT_TRUE(GenerateArrivalTimesMicros(spec).empty());
}

// --- Load harness ------------------------------------------------------------

TEST(LoadHarnessTest, OpenLoopAccountsForEveryScheduledArrival) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/61);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService::Options options;
  options.max_inflight = 8;
  options.max_queue_depth = 64;
  QuantificationService service(cube.get(), &indices, options);

  ArrivalSpec arrival_spec;
  arrival_spec.seed = 3;
  arrival_spec.target_qps = 2000;
  arrival_spec.duration_seconds = 0.15;
  std::vector<int64_t> arrivals = GenerateArrivalTimesMicros(arrival_spec);
  ASSERT_FALSE(arrivals.empty());

  LoadGenOptions load_options;
  load_options.num_workers = 4;
  LoadReport report =
      RunOpenLoopLoad(service, space.requests, arrivals, load_options);

  EXPECT_EQ(report.counts.offered, arrivals.size());
  EXPECT_EQ(report.counts.ok + report.counts.deadline_exceeded +
                report.counts.unavailable + report.counts.other_errors,
            report.counts.offered);
  // Generous limits and no deadline: everything completes.
  EXPECT_EQ(report.counts.ok, report.counts.offered);
  EXPECT_EQ(report.counts.other_errors, 0u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.achieved_qps, 0.0);
  EXPECT_LE(report.p50_us, report.p99_us);
  EXPECT_LE(report.p99_us, report.p999_us);
  EXPECT_LE(report.p999_us, report.max_us);

  QuantificationService::Stats stats = service.stats();
  EXPECT_EQ(stats.requests, arrivals.size());
  ExpectExactAccounting(stats);
}

TEST(LoadHarnessTest, OpenLoopOverloadShedsInsteadOfStalling) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/67);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  // Capacity ≈ 200 QPS (5 ms per compute, one permit), offered 2000 QPS:
  // a 10× overload. The schedule must still complete quickly because the
  // service rejects/sheds instead of queueing unboundedly.
  QuantificationService::Options options;
  options.cache_capacity = 0;
  options.max_inflight = 1;
  options.max_queue_depth = 1;
  options.compute_started_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  QuantificationService service(cube.get(), &indices, options);

  ArrivalSpec arrival_spec;
  arrival_spec.seed = 5;
  arrival_spec.target_qps = 2000;
  arrival_spec.duration_seconds = 0.1;
  std::vector<int64_t> arrivals = GenerateArrivalTimesMicros(arrival_spec);

  LoadGenOptions load_options;
  load_options.num_workers = 4;
  load_options.deadline_budget_micros = 2000;
  LoadReport report =
      RunOpenLoopLoad(service, space.requests, arrivals, load_options);

  EXPECT_EQ(report.counts.offered, arrivals.size());
  EXPECT_EQ(report.counts.ok + report.counts.deadline_exceeded +
                report.counts.unavailable,
            report.counts.offered);
  EXPECT_EQ(report.counts.other_errors, 0u);
  EXPECT_GE(report.counts.ok, 1u);
  EXPECT_LT(report.counts.ok, report.counts.offered);
  EXPECT_GE(report.counts.deadline_exceeded + report.counts.unavailable,
            report.counts.offered / 2);
  // Shedding keeps the run near the schedule length, nowhere near the
  // ~offered × 5 ms a fully serialized drain would take.
  EXPECT_LT(report.wall_seconds, 10.0);
  ExpectExactAccounting(service.stats());
}

TEST(LoadHarnessTest, ClosedLoopMeasuresPositiveCapacity) {
  std::unique_ptr<UnfairnessCube> cube = MakeCube(/*seed=*/71);
  IndexSet indices = IndexSet::Build(*cube);
  KeySpace space = MakeKeySpace(*cube, indices);
  ASSERT_FALSE(::testing::Test::HasFailure());

  QuantificationService service(cube.get(), &indices);
  LoadGenOptions load_options;
  load_options.num_workers = 2;
  LoadReport report =
      RunClosedLoopLoad(service, space.requests, /*duration_seconds=*/0.1,
                        load_options);

  EXPECT_GT(report.counts.offered, 0u);
  EXPECT_EQ(report.counts.ok, report.counts.offered);
  EXPECT_EQ(report.counts.other_errors, 0u);
  EXPECT_GT(report.achieved_qps, 0.0);
  EXPECT_GT(report.wall_seconds, 0.05);
  ExpectExactAccounting(service.stats());
}

}  // namespace
}  // namespace fairjob
