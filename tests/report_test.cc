#include "core/report.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/coverage.h"

namespace fairjob {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AttributeSchema schema;
    ASSERT_TRUE(
        schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
    ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
    data_ = std::make_unique<MarketplaceDataset>(schema);
    space_ = std::make_unique<GroupSpace>(
        *GroupSpace::Enumerate(data_->schema()));
    // 12 workers; Asians pushed to the bottom of "handyman" rankings.
    std::vector<WorkerId> asians;
    std::vector<WorkerId> rest;
    int i = 0;
    for (ValueId e = 0; e < 3; ++e) {
      for (ValueId g = 0; g < 2; ++g) {
        for (int n = 0; n < 2; ++n) {
          WorkerId id = *data_->AddWorker("w" + std::to_string(i++), {e, g});
          (e == 0 ? asians : rest).push_back(id);
        }
      }
    }
    QueryId handyman = data_->queries().GetOrAdd("handyman");
    QueryId delivery = data_->queries().GetOrAdd("delivery");
    LocationId nyc = data_->locations().GetOrAdd("NYC");
    LocationId chi = data_->locations().GetOrAdd("Chicago");
    MarketRanking biased;
    biased.workers = rest;
    biased.workers.insert(biased.workers.end(), asians.begin(), asians.end());
    MarketRanking mixed;
    for (size_t k = 0; k < asians.size(); ++k) {
      mixed.workers.push_back(rest[2 * k]);
      mixed.workers.push_back(asians[k]);
      mixed.workers.push_back(rest[2 * k + 1]);
    }
    ASSERT_TRUE(data_->SetRanking(handyman, nyc, biased).ok());
    ASSERT_TRUE(data_->SetRanking(handyman, chi, biased).ok());
    ASSERT_TRUE(data_->SetRanking(delivery, nyc, mixed).ok());
    ASSERT_TRUE(data_->SetRanking(delivery, chi, mixed).ok());
    fbox_ = std::make_unique<FBox>(*FBox::ForMarketplace(
        data_.get(), space_.get(), MarketMeasure::kEmd));
  }

  std::unique_ptr<MarketplaceDataset> data_;
  std::unique_ptr<GroupSpace> space_;
  std::unique_ptr<FBox> fbox_;
};

TEST_F(ReportTest, ContainsAllSections) {
  AuditReportOptions options;
  options.title = "Test audit";
  options.top_k = 3;
  std::string report = *GenerateAuditReport(*fbox_, options);
  EXPECT_NE(report.find("# Test audit"), std::string::npos);
  EXPECT_NE(report.find("Least fairly treated groups"), std::string::npos);
  EXPECT_NE(report.find("Fairest groups"), std::string::npos);
  EXPECT_NE(report.find("Least fairly treated queries"), std::string::npos);
  EXPECT_NE(report.find("Least fairly treated locations"), std::string::npos);
  EXPECT_NE(report.find("### Comparison: "), std::string::npos);
  EXPECT_NE(report.find("is treated worst"), std::string::npos);
  EXPECT_NE(report.find("95% CI"), std::string::npos);
  // The biased query must surface in the drill-down.
  EXPECT_NE(report.find("handyman"), std::string::npos);
}

TEST_F(ReportTest, OptionalSectionsCanBeDisabled) {
  AuditReportOptions options;
  options.include_fairest = false;
  options.drilldown_cells = 0;
  options.bootstrap_resamples = 0;
  std::string report = *GenerateAuditReport(*fbox_, options);
  EXPECT_EQ(report.find("Fairest groups"), std::string::npos);
  EXPECT_EQ(report.find("is treated worst"), std::string::npos);
  EXPECT_EQ(report.find("95% CI"), std::string::npos);
}

TEST_F(ReportTest, DeterministicAcrossRuns) {
  AuditReportOptions options;
  std::string a = *GenerateAuditReport(*fbox_, options);
  std::string b = *GenerateAuditReport(*fbox_, options);
  EXPECT_EQ(a, b);
}

TEST_F(ReportTest, CoverageSectionWhenProvided) {
  CoverageReport coverage =
      *AnalyzeMarketplaceCoverage(*data_, *space_, /*min_mean_members=*/5.0);
  AuditReportOptions options;
  options.coverage = &coverage;
  std::string report = *GenerateAuditReport(*fbox_, options);
  EXPECT_NE(report.find("Data-quality warnings"), std::string::npos);
  EXPECT_NE(report.find("noise-dominated"), std::string::npos);
}

TEST_F(ReportTest, RejectsZeroTopK) {
  AuditReportOptions options;
  options.top_k = 0;
  EXPECT_FALSE(GenerateAuditReport(*fbox_, options).ok());
}

TEST_F(ReportTest, DefaultOverloadWorks) {
  Result<std::string> report = GenerateAuditReport(*fbox_);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("# Fairness audit"), std::string::npos);
}

}  // namespace
}  // namespace fairjob
