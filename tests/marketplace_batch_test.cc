// Differential suite for the batched marketplace engine
// (core/marketplace_batch.h): MarketplaceCellBatch must be *bitwise*
// identical to both the cell-shared MarketplaceCellContext and the
// per-triple MarketplaceUnfairness reference — values, missing-cell
// pattern and exact NotFound messages — across both measures, every
// option variant, and the SIMD/scalar kernel split. Own binary so the
// sanitizer matrix can run it directly (the hoisted membership table and
// the bitmap kernels must be ASan/TSan-clean).

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/group_space.h"
#include "core/marketplace_batch.h"
#include "core/unfairness_cube.h"
#include "core/unfairness_measures.h"
#include "ranking/simd.h"
#include "serve/incremental.h"

namespace fairjob {
namespace {

uint64_t BitsOf(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Asserts bitwise equality — EXPECT_DOUBLE_EQ allows 4 ulps, which would
// hide the exact-replication property the engine promises. Error paths
// must agree on the exact message (callers pattern-match NotFound).
void ExpectBitwise(const Result<double>& got, const Result<double>& ref,
                   const std::string& what) {
  ASSERT_EQ(got.ok(), ref.ok())
      << what << ": "
      << (got.ok() ? "batch ok" : got.status().message()) << " vs "
      << (ref.ok() ? "ref ok" : ref.status().message());
  if (ref.ok()) {
    EXPECT_EQ(BitsOf(*got), BitsOf(*ref))
        << what << ": batch=" << *got << " ref=" << *ref;
  } else {
    EXPECT_EQ(got.status().message(), ref.status().message()) << what;
  }
}

// A random marketplace: enough workers that bitmap rows have off-word
// tails (70 and 130 are not multiples of 64), enough holes that missing
// groups and unobserved cells actually occur.
struct RandomMarket {
  std::unique_ptr<MarketplaceDataset> data;
  std::unique_ptr<GroupSpace> space;
  std::vector<QueryId> queries;
  std::vector<LocationId> locations;
};

RandomMarket MakeRandomMarket(Rng& rng, size_t num_workers,
                              size_t num_queries, size_t num_locations) {
  AttributeSchema schema;
  EXPECT_TRUE(
      schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).ok());
  EXPECT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());

  RandomMarket m;
  m.data = std::make_unique<MarketplaceDataset>(schema);
  m.space = std::make_unique<GroupSpace>(
      *GroupSpace::Enumerate(m.data->schema()));

  for (size_t w = 0; w < num_workers; ++w) {
    // Skew the draw so some intersectional groups end up rare or absent
    // from individual rankings (the missing-cell cases under test).
    ValueId ethnicity = static_cast<ValueId>(rng.NextBelow(3));
    ValueId gender = rng.NextBernoulli(0.7) ? 0 : 1;
    EXPECT_TRUE(m.data
                    ->AddWorker("w" + std::to_string(w),
                                {ethnicity, gender})
                    .ok());
  }
  for (size_t q = 0; q < num_queries; ++q) {
    m.queries.push_back(m.data->queries().GetOrAdd("q" + std::to_string(q)));
  }
  for (size_t l = 0; l < num_locations; ++l) {
    m.locations.push_back(
        m.data->locations().GetOrAdd("l" + std::to_string(l)));
  }
  for (QueryId q : m.queries) {
    for (LocationId l : m.locations) {
      if (rng.NextBernoulli(0.2)) continue;  // unobserved cell
      MarketRanking ranking;
      std::vector<WorkerId> pool(num_workers);
      for (size_t w = 0; w < num_workers; ++w) {
        pool[w] = static_cast<WorkerId>(w);
      }
      rng.Shuffle(pool);
      size_t len = 1 + rng.NextBelow(static_cast<uint32_t>(num_workers));
      ranking.workers.assign(pool.begin(), pool.begin() + len);
      if (rng.NextBernoulli(0.5)) {
        // Half the rankings carry site scores, half fall back to the
        // rank-derived relevance — both value paths feed the batch.
        for (size_t i = 0; i < len; ++i) {
          ranking.scores.push_back(rng.NextDouble());
        }
      }
      EXPECT_TRUE(m.data->SetRanking(q, l, std::move(ranking)).ok());
    }
  }
  return m;
}

std::vector<MeasureOptions> OptionVariants() {
  std::vector<MeasureOptions> variants;
  variants.push_back({});  // log-inverse exposure, 10 bins, scores used
  MeasureOptions power;
  power.exposure_model = ExposureModel::kPowerLaw;
  power.exposure_gamma = 1.7;
  variants.push_back(power);
  MeasureOptions coarse;
  coarse.histogram_bins = 7;
  coarse.use_scores_if_available = false;
  variants.push_back(coarse);
  MeasureOptions degenerate;
  degenerate.histogram_bins = 1;  // EMD over one bin is identically zero
  variants.push_back(degenerate);
  return variants;
}

// The tentpole contract: batch ≡ context ≡ per-triple reference, bit for
// bit, across measures × option variants × random cells — including which
// cells are missing and with which message.
TEST(MarketplaceBatchTest, MatchesContextAndReferenceBitwise) {
  Rng rng(20200330);
  RandomMarket m = MakeRandomMarket(rng, 70, 6, 4);
  MarketplaceGroupMembership membership(*m.data, *m.space);

  for (MarketMeasure measure : {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
    for (const MeasureOptions& options : OptionVariants()) {
      for (QueryId q : m.queries) {
        for (LocationId l : m.locations) {
          const MarketRanking* ranking = m.data->GetRanking(q, l);
          Result<MarketplaceCellBatch> batch = MarketplaceCellBatch::Make(
              *m.space, membership, ranking, measure, options);
          Result<MarketplaceCellContext> context =
              MarketplaceCellContext::Make(*m.data, *m.space, ranking, options);
          ASSERT_EQ(batch.ok(), context.ok());
          if (!batch.ok()) {
            EXPECT_EQ(batch.status().message(), context.status().message());
            continue;
          }
          for (GroupId g = 0;
               g < static_cast<GroupId>(m.space->num_groups()); ++g) {
            std::string what = std::string(MarketMeasureName(measure)) +
                               " q=" + std::to_string(q) +
                               " l=" + std::to_string(l) +
                               " g=" + std::to_string(g);
            Result<double> from_batch = batch->Unfairness(g);
            ExpectBitwise(from_batch, context->Unfairness(g, measure),
                          what + " (vs context)");
            ExpectBitwise(from_batch,
                          MarketplaceUnfairness(*m.data, *m.space, g, q, l,
                                                measure, options),
                          what + " (vs reference)");
            EXPECT_EQ(batch->member_count(g), context->positions(g).size())
                << what;
          }
        }
      }
    }
  }
}

TEST(MarketplaceBatchTest, NullAndEmptyRankingsAreWholeColumnNotFound) {
  Rng rng(11);
  RandomMarket m = MakeRandomMarket(rng, 10, 1, 1);
  MarketplaceGroupMembership membership(*m.data, *m.space);

  Result<MarketplaceCellBatch> null_batch = MarketplaceCellBatch::Make(
      *m.space, membership, nullptr, MarketMeasure::kEmd, {});
  ASSERT_FALSE(null_batch.ok());
  EXPECT_EQ(null_batch.status().message(),
            "no ranking observed for this (query, location)");

  MarketRanking empty;
  Result<MarketplaceCellBatch> empty_batch = MarketplaceCellBatch::Make(
      *m.space, membership, &empty, MarketMeasure::kExposure, {});
  ASSERT_FALSE(empty_batch.ok());
  EXPECT_EQ(empty_batch.status().message(),
            "no ranking observed for this (query, location)");

  // Malformed options are rejected before the ranking is even looked at —
  // the same precedence the reference and the context apply.
  MeasureOptions bad;
  bad.histogram_bins = 0;
  Result<MarketplaceCellBatch> bad_options = MarketplaceCellBatch::Make(
      *m.space, membership, nullptr, MarketMeasure::kEmd, bad);
  ASSERT_FALSE(bad_options.ok());
  Result<MarketplaceCellContext> context_bad =
      MarketplaceCellContext::Make(*m.data, *m.space, nullptr, bad);
  ASSERT_FALSE(context_bad.ok());
  EXPECT_EQ(bad_options.status().message(), context_bad.status().message());
}

TEST(MarketplaceBatchTest, StaleMembershipTableIsRejected) {
  Rng rng(12);
  RandomMarket m = MakeRandomMarket(rng, 20, 1, 1);
  MarketplaceGroupMembership membership(*m.data, *m.space);

  // Add a worker AFTER the table was built and rank them: the probe arena
  // must refuse rather than read past the bitmap rows.
  Result<WorkerId> added = m.data->AddWorker("late", {0, 0});
  ASSERT_TRUE(added.ok());
  MarketRanking ranking;
  ranking.workers = {*added};
  Result<MarketplaceCellBatch> stale = MarketplaceCellBatch::Make(
      *m.space, membership, &ranking, MarketMeasure::kEmd, {});
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("membership table does not cover"),
            std::string::npos)
      << stale.status().message();

  // After Update the same ranking evaluates; the updated table is exactly
  // the table a fresh build over the grown dataset produces.
  membership.Update(*m.data, *m.space);
  EXPECT_TRUE(MarketplaceCellBatch::Make(*m.space, membership, &ranking,
                                         MarketMeasure::kEmd, {})
                  .ok());
  EXPECT_EQ(membership, MarketplaceGroupMembership(*m.data, *m.space));
}

// Update must be equivalent to a fresh build across re-striding boundaries:
// growing 70 → 130 workers crosses the 64-bit word boundary, so rows gain a
// word and every existing bit must be carried into the wider layout.
TEST(MarketplaceBatchTest, IncrementalMembershipUpdateMatchesFreshBuild) {
  Rng rng(13);
  RandomMarket m = MakeRandomMarket(rng, 70, 1, 1);
  MarketplaceGroupMembership incremental(*m.data, *m.space);

  for (size_t w = 70; w < 130; ++w) {
    ValueId ethnicity = static_cast<ValueId>(rng.NextBelow(3));
    ValueId gender = static_cast<ValueId>(rng.NextBelow(2));
    ASSERT_TRUE(m.data
                    ->AddWorker("late" + std::to_string(w),
                                {ethnicity, gender})
                    .ok());
    if (w % 17 == 0) incremental.Update(*m.data, *m.space);  // mid-way updates
  }
  incremental.Update(*m.data, *m.space);

  MarketplaceGroupMembership fresh(*m.data, *m.space);
  EXPECT_EQ(incremental, fresh);
  EXPECT_EQ(incremental.num_workers(), 130u);
  EXPECT_EQ(incremental.words_per_group(), 3u);

  // Bit semantics: Matches agrees with direct label matching per worker.
  for (GroupId g = 0; g < static_cast<GroupId>(m.space->num_groups()); ++g) {
    for (WorkerId w = 0; w < 130; ++w) {
      EXPECT_EQ(incremental.Matches(g, w),
                m.space->label(g).Matches(m.data->worker_demographics(w)))
          << "g=" << g << " w=" << w;
    }
  }

  // Update with an unchanged worker count is a no-op.
  incremental.Update(*m.data, *m.space);
  EXPECT_EQ(incremental, fresh);
}

// The maintainer's upsert path runs on the batched engine with its
// persistent membership table; the differential contract (upsert ≡ cold
// rebuild, bitwise) must survive the engine swap.
TEST(MarketplaceBatchTest, MaintainerUpsertMatchesColdRebuildBitwise) {
  Rng rng(20200414);
  RandomMarket m = MakeRandomMarket(rng, 40, 4, 3);

  for (MarketMeasure measure : {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
    Result<MarketplaceCubeMaintainer> maintainer =
        MarketplaceCubeMaintainer::Make(*m.data, *m.space, measure, {}, {},
                                        /*parallelism=*/2);
    ASSERT_TRUE(maintainer.ok()) << maintainer.status().message();

    CrawlBatch batch;
    for (int row = 0; row < 5; ++row) {
      MarketRanking ranking;
      std::vector<WorkerId> pool(40);
      for (size_t w = 0; w < 40; ++w) pool[w] = static_cast<WorkerId>(w);
      rng.Shuffle(pool);
      size_t len = 1 + rng.NextBelow(40);
      ranking.workers.assign(pool.begin(), pool.begin() + len);
      for (size_t i = 0; i < len; ++i) {
        ranking.scores.push_back(rng.NextDouble());
      }
      batch.rows.push_back(CrawlBatchRow{
          m.queries[rng.NextBelow(static_cast<uint32_t>(m.queries.size()))],
          m.locations[rng.NextBelow(
              static_cast<uint32_t>(m.locations.size()))],
          std::move(ranking)});
    }
    Result<UpsertReport> report = maintainer->UpsertCrawlBatch(batch);
    ASSERT_TRUE(report.ok()) << report.status().message();

    Result<UnfairnessCube> cold = BuildMarketplaceCube(
        maintainer->data(), *m.space, measure, {}, {}, /*parallelism=*/2);
    ASSERT_TRUE(cold.ok()) << cold.status().message();

    const UnfairnessCube& served = maintainer->snapshot()->cube();
    ASSERT_EQ(served.num_cells(), cold->num_cells());
    for (size_t g = 0; g < served.axis_size(Dimension::kGroup); ++g) {
      for (size_t q = 0; q < served.axis_size(Dimension::kQuery); ++q) {
        for (size_t l = 0; l < served.axis_size(Dimension::kLocation); ++l) {
          std::optional<double> a = served.Get(g, q, l);
          std::optional<double> b = cold->Get(g, q, l);
          ASSERT_EQ(a.has_value(), b.has_value())
              << "g=" << g << " q=" << q << " l=" << l;
          if (a.has_value()) {
            EXPECT_EQ(BitsOf(*a), BitsOf(*b))
                << "g=" << g << " q=" << q << " l=" << l;
          }
        }
      }
    }
  }
}

// The integer bitmap kernels are dispatch-agnostic by construction; assert
// it on off-width tails (word counts straddling the AVX2 4-word stride),
// all-zero blocks (the AVX2 skip path) and dense words.
TEST(MarketplaceBatchTest, BitmapKernelsMatchScalarBitwise) {
  Rng rng(14);
  const size_t kNumBins = 13;
  for (size_t words : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                       size_t{7}, size_t{8}, size_t{9}, size_t{12}}) {
    for (int density = 0; density < 4; ++density) {
      std::vector<uint64_t> bits(words, 0);
      for (size_t w = 0; w < words; ++w) {
        switch (density) {
          case 0:
            break;  // all zero — the testz fast path
          case 1:
            bits[w] = ~uint64_t{0};
            break;
          case 2:
            bits[w] = (static_cast<uint64_t>(rng.NextU32()) << 32) |
                      rng.NextU32();
            break;
          case 3:
            bits[w] = w % 2 == 0 ? 0 : uint64_t{1} << (w % 64);
            break;
        }
      }
      std::vector<int32_t> bins(words * 64);
      for (int32_t& b : bins) {
        b = static_cast<int32_t>(rng.NextBelow(kNumBins));
      }

      std::vector<int32_t> scalar_pos(words * 64);
      size_t scalar_count = simd::CompressPositionsScalar(
          bits.data(), words, scalar_pos.data());
      std::vector<int32_t> dispatched_pos(words * 64);
      size_t dispatched_count = simd::CompressPositions(bits.data(), words,
                                                        dispatched_pos.data());
      ASSERT_EQ(scalar_count, dispatched_count)
          << "words=" << words << " density=" << density;
      for (size_t i = 0; i < scalar_count; ++i) {
        EXPECT_EQ(scalar_pos[i], dispatched_pos[i]) << "i=" << i;
      }
      // Reference semantics: ascending set-bit positions.
      size_t k = 0;
      for (size_t p = 0; p < words * 64; ++p) {
        if ((bits[p >> 6] >> (p & 63)) & 1) {
          ASSERT_LT(k, scalar_count);
          EXPECT_EQ(scalar_pos[k++], static_cast<int32_t>(p));
        }
      }
      EXPECT_EQ(k, scalar_count);

      std::vector<uint32_t> scalar_counts(kNumBins, 0);
      simd::MaskedBinCountScalar(bits.data(), words, bins.data(),
                                 scalar_counts.data());
      std::vector<uint32_t> dispatched_counts(kNumBins, 0);
      simd::MaskedBinCount(bits.data(), words, bins.data(),
                           dispatched_counts.data());
      EXPECT_EQ(scalar_counts, dispatched_counts)
          << "words=" << words << " density=" << density;
    }
  }
}

// Whole-engine dispatch invariance: a cube built with kernels forced to
// scalar is bitwise identical to the default-dispatch build. (On AVX2
// hosts this pins the vector paths to the scalar semantics; elsewhere it
// degenerates to self-comparison, which is still a valid regression net.)
TEST(MarketplaceBatchTest, ForcedScalarEngineMatchesDispatchedBitwise) {
  Rng rng(15);
  RandomMarket m = MakeRandomMarket(rng, 70, 4, 3);

  for (MarketMeasure measure : {MarketMeasure::kEmd, MarketMeasure::kExposure}) {
    Result<UnfairnessCube> dispatched =
        BuildMarketplaceCube(*m.data, *m.space, measure);
    ASSERT_TRUE(dispatched.ok()) << dispatched.status().message();

    Result<UnfairnessCube> scalar = [&] {
      simd::ScopedScalarKernels force_scalar;
      return BuildMarketplaceCube(*m.data, *m.space, measure);
    }();
    ASSERT_TRUE(scalar.ok()) << scalar.status().message();

    for (size_t g = 0; g < dispatched->axis_size(Dimension::kGroup); ++g) {
      for (size_t q = 0; q < dispatched->axis_size(Dimension::kQuery); ++q) {
        for (size_t l = 0; l < dispatched->axis_size(Dimension::kLocation);
             ++l) {
          std::optional<double> a = dispatched->Get(g, q, l);
          std::optional<double> b = scalar->Get(g, q, l);
          ASSERT_EQ(a.has_value(), b.has_value())
              << "g=" << g << " q=" << q << " l=" << l;
          if (a.has_value()) {
            EXPECT_EQ(BitsOf(*a), BitsOf(*b))
                << "g=" << g << " q=" << q << " l=" << l;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace fairjob
