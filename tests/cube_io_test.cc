#include "crawl/cube_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crawl/csv.h"

namespace fairjob {
namespace {

// Exact (bitwise) cell equality, the contract every persistence path and
// the sharded build share with the in-memory reference.
void ExpectCubesIdentical(const UnfairnessCube& a, const UnfairnessCube& b) {
  ASSERT_EQ(a.axis_size(Dimension::kGroup), b.axis_size(Dimension::kGroup));
  ASSERT_EQ(a.axis_size(Dimension::kQuery), b.axis_size(Dimension::kQuery));
  ASSERT_EQ(a.axis_size(Dimension::kLocation),
            b.axis_size(Dimension::kLocation));
  for (Dimension d :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    for (size_t pos = 0; pos < a.axis_size(d); ++pos) {
      ASSERT_EQ(a.axis_id(d, pos), b.axis_id(d, pos));
    }
  }
  for (size_t g = 0; g < a.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < a.axis_size(Dimension::kQuery); ++q) {
      for (size_t l = 0; l < a.axis_size(Dimension::kLocation); ++l) {
        ASSERT_EQ(a.Get(g, q, l), b.Get(g, q, l))
            << "g=" << g << " q=" << q << " l=" << l;
      }
    }
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

UnfairnessCube SampleCube() {
  UnfairnessCube cube = *UnfairnessCube::Make({10, 11}, {20, 21, 22}, {30});
  cube.Set(0, 0, 0, 0.123456789012345);
  cube.Set(0, 2, 0, 0.5);
  cube.Set(1, 1, 0, 1.0 / 3.0);
  // (0,1,0), (1,0,0), (1,2,0) left missing.
  return cube;
}

std::string TestNamer(Dimension d, int32_t id, const void*) {
  return std::string(DimensionName(d)) + "#" + std::to_string(id);
}

TEST(CubeIoTest, RowsRoundTripValuesAndHoles) {
  UnfairnessCube cube = SampleCube();
  Result<UnfairnessCube> restored = CubeFromCsvRows(CubeToCsvRows(cube));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->axis_size(Dimension::kGroup), 2u);
  EXPECT_EQ(restored->axis_size(Dimension::kQuery), 3u);
  EXPECT_EQ(restored->axis_size(Dimension::kLocation), 1u);
  EXPECT_EQ(restored->axis_id(Dimension::kQuery, 2), 22);
  EXPECT_EQ(restored->num_present(), 3u);
  EXPECT_NEAR(*restored->Get(0, 0, 0), 0.123456789012345, 1e-15);
  EXPECT_NEAR(*restored->Get(1, 1, 0), 1.0 / 3.0, 1e-15);
  EXPECT_FALSE(restored->Get(0, 1, 0).has_value());
}

TEST(CubeIoTest, NamesRoundTrip) {
  UnfairnessCube cube = SampleCube();
  auto rows = CubeToCsvRows(cube, &TestNamer, nullptr);
  Result<CubeNames> names = CubeNamesFromCsvRows(rows);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->groups.size(), 2u);
  EXPECT_EQ(names->groups[1], "group#11");
  EXPECT_EQ(names->queries[0], "query#20");
  EXPECT_EQ(names->locations[0], "location#30");
}

TEST(CubeIoTest, NamesDefaultToEmpty) {
  auto rows = CubeToCsvRows(SampleCube());
  CubeNames names = *CubeNamesFromCsvRows(rows);
  EXPECT_EQ(names.groups[0], "");
}

TEST(CubeIoTest, SurvivesCsvTextSerialization) {
  UnfairnessCube cube = SampleCube();
  std::string text = WriteCsv(CubeToCsvRows(cube, &TestNamer, nullptr));
  Result<UnfairnessCube> restored = CubeFromCsvRows(*ParseCsv(text));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_present(), 3u);
}

TEST(CubeIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/fairjob_cube_test.csv";
  UnfairnessCube cube = SampleCube();
  ASSERT_TRUE(SaveCube(path, cube).ok());
  Result<UnfairnessCube> restored = LoadCube(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_present(), cube.num_present());
  std::remove(path.c_str());
}

TEST(CubeIoTest, RejectsMalformedRows) {
  EXPECT_FALSE(CubeFromCsvRows({{"axis", "group", "1"}}).ok());  // 3 fields
  EXPECT_FALSE(CubeFromCsvRows({{"axis", "planet", "1", ""}}).ok());
  EXPECT_FALSE(CubeFromCsvRows({{"blob", "x"}}).ok());
  EXPECT_FALSE(
      CubeFromCsvRows({{"axis", "group", "abc", ""}}).ok());  // bad id
}

TEST(CubeIoTest, RejectsCellsOutOfRange) {
  auto rows = CubeToCsvRows(SampleCube());
  rows.push_back({"cell", "9", "0", "0", "0.5"});
  EXPECT_FALSE(CubeFromCsvRows(rows).ok());
}

TEST(CubeIoTest, RejectsBadCellValue) {
  auto rows = CubeToCsvRows(SampleCube());
  rows.push_back({"cell", "0", "0", "0", "zero point five"});
  EXPECT_FALSE(CubeFromCsvRows(rows).ok());
}

TEST(CubeIoTest, RejectsDuplicateAxisIds) {
  std::vector<std::vector<std::string>> rows = {
      {"axis", "group", "1", ""}, {"axis", "group", "1", ""},
      {"axis", "query", "1", ""}, {"axis", "location", "1", ""},
  };
  EXPECT_FALSE(CubeFromCsvRows(rows).ok());
}

TEST(CubeIoTest, LargeRandomCubeRoundTrips) {
  UnfairnessCube cube = *UnfairnessCube::Make(
      {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4, 5, 6}, {0, 1, 2});
  Rng rng(99);
  for (size_t g = 0; g < 5; ++g) {
    for (size_t q = 0; q < 7; ++q) {
      for (size_t l = 0; l < 3; ++l) {
        if (rng.NextBernoulli(0.6)) cube.Set(g, q, l, rng.NextDouble());
      }
    }
  }
  UnfairnessCube restored = *CubeFromCsvRows(CubeToCsvRows(cube));
  ASSERT_EQ(restored.num_present(), cube.num_present());
  for (size_t g = 0; g < 5; ++g) {
    for (size_t q = 0; q < 7; ++q) {
      for (size_t l = 0; l < 3; ++l) {
        std::optional<double> a = cube.Get(g, q, l);
        std::optional<double> b = restored.Get(g, q, l);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a.has_value()) {
          EXPECT_NEAR(*a, *b, 1e-15);
        }
      }
    }
  }
}

// --- binary format ----------------------------------------------------------

// Values picked to break lossy serialization: non-terminating binary
// fractions, tiny magnitudes (where fixed-decimal CSV formatting used to
// truncate), negatives, and exact integers.
UnfairnessCube AwkwardCube() {
  UnfairnessCube cube =
      *UnfairnessCube::Make({10, 11, 12}, {20, 21, 22, 23}, {30, 31});
  cube.Set(0, 0, 0, 1.0 / 3.0);
  cube.Set(0, 3, 1, 4.9406564584124654e-312);
  cube.Set(1, 1, 0, -0.000123456789012345678);
  cube.Set(1, 2, 1, 1.0);
  cube.Set(2, 0, 1, 0.1 + 0.2);
  cube.Set(2, 3, 0, 7.389056098930650e-9);
  return cube;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryCubeIoTest, DenseRoundTripIsBitwise) {
  std::string path = TempPath("dense.fjcube");
  UnfairnessCube cube = AwkwardCube();
  BinaryCubeWriteOptions options;
  options.layout = BinaryCubeWriteOptions::Layout::kDense;
  ASSERT_TRUE(SaveCubeBinary(path, cube, nullptr, options).ok());
  Result<UnfairnessCube> restored = LoadCubeBinary(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectCubesIdentical(cube, *restored);
  std::remove(path.c_str());
}

TEST(BinaryCubeIoTest, SparseRoundTripIsBitwise) {
  std::string path = TempPath("sparse.fjcube");
  UnfairnessCube cube = AwkwardCube();
  BinaryCubeWriteOptions options;
  options.layout = BinaryCubeWriteOptions::Layout::kSparse;
  ASSERT_TRUE(SaveCubeBinary(path, cube, nullptr, options).ok());
  Result<UnfairnessCube> restored = LoadCubeBinary(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectCubesIdentical(cube, *restored);
  std::remove(path.c_str());
}

TEST(BinaryCubeIoTest, CsvAndBinaryLoadsAreBitwiseIdentical) {
  std::string bin_path = TempPath("diff.fjcube");
  std::string csv_path = TempPath("diff.csv");
  UnfairnessCube cube = AwkwardCube();
  ASSERT_TRUE(SaveCubeBinary(bin_path, cube).ok());
  ASSERT_TRUE(SaveCube(csv_path, cube).ok());
  UnfairnessCube from_binary = *LoadCubeBinary(bin_path);
  UnfairnessCube from_csv = *LoadCube(csv_path);
  ExpectCubesIdentical(from_binary, from_csv);
  ExpectCubesIdentical(cube, from_binary);
  std::remove(bin_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(BinaryCubeIoTest, AutoLayoutTracksDensity) {
  std::string path = TempPath("auto.fjcube");
  // 6 of 24 cells present = 25%: at the threshold, dense.
  ASSERT_TRUE(SaveCubeBinary(path, AwkwardCube()).ok());
  EXPECT_TRUE(MappedCube::Open(path)->dense());
  // 1 of 24 present: sparse.
  UnfairnessCube sparse =
      *UnfairnessCube::Make({10, 11, 12}, {20, 21, 22, 23}, {30, 31});
  sparse.Set(1, 1, 1, 0.5);
  ASSERT_TRUE(SaveCubeBinary(path, sparse).ok());
  EXPECT_FALSE(MappedCube::Open(path)->dense());
  ExpectCubesIdentical(sparse, *LoadCubeBinary(path));
  std::remove(path.c_str());
}

TEST(BinaryCubeIoTest, NamesRoundTripVerbatim) {
  std::string path = TempPath("named.fjcube");
  UnfairnessCube cube = *UnfairnessCube::Make({10, 11}, {20}, {30});
  cube.Set(0, 0, 0, 0.25);
  CubeNames names;
  names.groups = {"gender=Female", ""};
  names.queries = {"handyman, with \"quotes\" and, commas"};
  names.locations = {"San Francisco"};
  ASSERT_TRUE(SaveCubeBinary(path, cube, &names).ok());
  Result<MappedCube> mapped = MappedCube::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  Result<CubeNames> restored = mapped->Names();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->groups, names.groups);
  EXPECT_EQ(restored->queries, names.queries);
  EXPECT_EQ(restored->locations, names.locations);
  std::remove(path.c_str());
}

TEST(BinaryCubeIoTest, RejectsNamesOfWrongLength) {
  std::string path = TempPath("badnames.fjcube");
  UnfairnessCube cube = *UnfairnessCube::Make({10, 11}, {20}, {30});
  CubeNames names;
  names.groups = {"only one"};
  EXPECT_EQ(SaveCubeBinary(path, cube, &names).code(),
            StatusCode::kInvalidArgument);
}

TEST(BinaryCubeIoTest, MappedGetMatchesMaterializedCube) {
  std::string path = TempPath("mapped.fjcube");
  UnfairnessCube cube = AwkwardCube();
  BinaryCubeWriteOptions options;
  options.layout = BinaryCubeWriteOptions::Layout::kDense;
  ASSERT_TRUE(SaveCubeBinary(path, cube, nullptr, options).ok());
  Result<MappedCube> mapped = MappedCube::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->num_present(), cube.num_present());
  EXPECT_EQ(mapped->num_cells(), cube.num_cells());
  for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < cube.axis_size(Dimension::kQuery); ++q) {
      for (size_t l = 0; l < cube.axis_size(Dimension::kLocation); ++l) {
        EXPECT_EQ(mapped->Get(g, q, l), cube.Get(g, q, l));
      }
    }
  }
  for (Dimension d :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    for (size_t pos = 0; pos < cube.axis_size(d); ++pos) {
      EXPECT_EQ(mapped->axis_id(d, pos), cube.axis_id(d, pos));
    }
  }
  std::remove(path.c_str());
}

TEST(BinaryCubeIoTest, SparseMappedGetReturnsMissing) {
  std::string path = TempPath("sparseget.fjcube");
  UnfairnessCube cube = AwkwardCube();
  BinaryCubeWriteOptions options;
  options.layout = BinaryCubeWriteOptions::Layout::kSparse;
  ASSERT_TRUE(SaveCubeBinary(path, cube, nullptr, options).ok());
  MappedCube mapped = *MappedCube::Open(path);
  EXPECT_FALSE(mapped.dense());
  EXPECT_EQ(mapped.Get(0, 0, 0), std::nullopt);
  std::remove(path.c_str());
}

TEST(BinaryCubeIoTest, RejectsTruncatedCorruptAndMismatchedFiles) {
  std::string path = TempPath("mangle.fjcube");
  ASSERT_TRUE(SaveCubeBinary(path, AwkwardCube()).ok());
  std::string good = ReadFileBytes(path);
  ASSERT_GT(good.size(), 80u);

  // Truncated below the header.
  WriteFileBytes(path, good.substr(0, 10));
  Result<UnfairnessCube> r = LoadCubeBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("truncated"), std::string::npos);

  // Truncated payload.
  WriteFileBytes(path, good.substr(0, good.size() - 5));
  EXPECT_FALSE(LoadCubeBinary(path).ok());

  // Bad magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  WriteFileBytes(path, bad_magic);
  r = LoadCubeBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("magic"), std::string::npos);

  // Unsupported version (checked before the header CRC).
  std::string bad_version = good;
  bad_version[8] = 99;
  WriteFileBytes(path, bad_version);
  r = LoadCubeBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("version"), std::string::npos);

  // Corrupt header field (axis size) fails the header checksum.
  std::string bad_header = good;
  bad_header[17] ^= 0x40;
  WriteFileBytes(path, bad_header);
  r = LoadCubeBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("checksum"), std::string::npos);

  // Corrupt payload byte fails the payload CRC...
  std::string bad_payload = good;
  bad_payload[good.size() - 3] ^= 0x01;
  WriteFileBytes(path, bad_payload);
  EXPECT_FALSE(LoadCubeBinary(path).ok());
  // ...unless checksum verification is explicitly disabled.
  MappedCube::Options trusting;
  trusting.verify_checksum = false;
  EXPECT_TRUE(MappedCube::Open(path, trusting).ok());

  std::remove(path.c_str());
  EXPECT_FALSE(LoadCubeBinary(path).ok());  // missing file
}

TEST(BinaryCubeIoTest, ColumnWriterProducesSameFileAsSaveCubeBinary) {
  std::string streamed_path = TempPath("streamed.fjcube");
  std::string direct_path = TempPath("direct.fjcube");
  UnfairnessCube cube = AwkwardCube();
  CubeAxes axes;
  for (size_t g = 0; g < cube.axis_size(Dimension::kGroup); ++g) {
    axes.groups.push_back(cube.axis_id(Dimension::kGroup, g));
  }
  for (size_t q = 0; q < cube.axis_size(Dimension::kQuery); ++q) {
    axes.queries.push_back(cube.axis_id(Dimension::kQuery, q));
  }
  for (size_t l = 0; l < cube.axis_size(Dimension::kLocation); ++l) {
    axes.locations.push_back(cube.axis_id(Dimension::kLocation, l));
  }
  auto writer = BinaryCubeColumnWriter::Create(streamed_path, axes);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<std::optional<double>> column(axes.groups.size());
  for (size_t q = 0; q < axes.queries.size(); ++q) {
    for (size_t l = 0; l < axes.locations.size(); ++l) {
      for (size_t g = 0; g < axes.groups.size(); ++g) {
        column[g] = cube.Get(g, q, l);
      }
      ASSERT_TRUE(
          (*writer)->Consume(q, l, column.data(), column.size()).ok());
    }
  }
  ASSERT_TRUE((*writer)->Finish().ok());

  BinaryCubeWriteOptions options;
  options.layout = BinaryCubeWriteOptions::Layout::kDense;
  ASSERT_TRUE(SaveCubeBinary(direct_path, cube, nullptr, options).ok());
  EXPECT_EQ(ReadFileBytes(streamed_path), ReadFileBytes(direct_path));
  ExpectCubesIdentical(cube, *LoadCubeBinary(streamed_path));
  std::remove(streamed_path.c_str());
  std::remove(direct_path.c_str());
}

TEST(BinaryCubeIoTest, ColumnWriterSkippedColumnsStayMissing) {
  std::string path = TempPath("skipped.fjcube");
  CubeAxes axes;
  axes.groups = {1, 2};
  axes.queries = {3, 4, 5};
  axes.locations = {6};
  auto writer = BinaryCubeColumnWriter::Create(path, axes);
  ASSERT_TRUE(writer.ok());
  std::optional<double> column[2] = {0.75, std::nullopt};
  ASSERT_TRUE((*writer)->Consume(1, 0, column, 2).ok());
  // Error paths: out-of-range column, wrong group count, use after Finish.
  EXPECT_EQ((*writer)->Consume(3, 0, column, 2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*writer)->Consume(0, 0, column, 1).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*writer)->Finish().ok());
  EXPECT_FALSE((*writer)->Consume(0, 0, column, 2).ok());

  UnfairnessCube restored = *LoadCubeBinary(path);
  EXPECT_EQ(restored.num_present(), 1u);
  EXPECT_EQ(restored.Get(0, 1, 0), std::optional<double>(0.75));
  EXPECT_EQ(restored.Get(0, 0, 0), std::nullopt);
  EXPECT_EQ(restored.Get(1, 2, 0), std::nullopt);
  std::remove(path.c_str());
}

// End-to-end scale path in miniature: a sharded marketplace build streamed
// straight to disk must load back bitwise-equal to the in-memory builder.
TEST(BinaryCubeIoTest, ShardedBuildToFileMatchesInMemoryBuild) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  ASSERT_TRUE(schema.AddAttribute("age", {"young", "old"}).ok());
  MarketplaceDataset market(schema);
  GroupSpace space = *GroupSpace::Enumerate(market.schema());
  Rng rng(77);
  std::vector<WorkerId> workers;
  for (int i = 0; i < 10; ++i) {
    Demographics d = {static_cast<ValueId>(rng.NextBelow(2)),
                      static_cast<ValueId>(rng.NextBelow(2))};
    workers.push_back(*market.AddWorker("w" + std::to_string(i), d));
  }
  for (QueryId q = 0; q < 4; ++q) {
    market.queries().GetOrAdd("q" + std::to_string(q));
    for (LocationId l = 0; l < 2; ++l) {
      market.locations().GetOrAdd("l" + std::to_string(l));
      if (q == 2 && l == 1) continue;  // hole
      MarketRanking r;
      r.workers = workers;
      rng.Shuffle(r.workers);
      ASSERT_TRUE(market.SetRanking(q, l, std::move(r)).ok());
    }
  }
  CubeAxes axes = *ResolveMarketplaceCubeAxes(market, space);
  std::string path = TempPath("sharded.fjcube");
  auto writer = BinaryCubeColumnWriter::Create(path, axes);
  ASSERT_TRUE(writer.ok());
  ShardedBuildOptions sharded;
  sharded.shard_columns = 3;
  sharded.parallelism = 2;
  ASSERT_TRUE(BuildMarketplaceCubeSharded(market, space, MarketMeasure::kEmd,
                                          {}, axes, sharded, writer->get())
                  .ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  UnfairnessCube from_file = *LoadCubeBinary(path);
  UnfairnessCube in_memory =
      *BuildMarketplaceCube(market, space, MarketMeasure::kEmd);
  ExpectCubesIdentical(in_memory, from_file);
  std::remove(path.c_str());
}

TEST(BinaryCubeIoTest, Crc32MatchesKnownCheckValue) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926. Guards
  // the sliced implementation against table or byte-order regressions, which
  // would silently change the on-disk format.
  std::string path = TempPath("crc.fjcube");
  UnfairnessCube cube = *UnfairnessCube::Make({1}, {2}, {3});
  cube.Set(0, 0, 0, 0.5);
  ASSERT_TRUE(SaveCubeBinary(path, cube).ok());
  std::string bytes = ReadFileBytes(path);
  // Flipping any single payload byte must flip the stored CRC check.
  for (size_t i : {size_t{64}, bytes.size() - 1}) {
    std::string mangled = bytes;
    mangled[i] = static_cast<char>(mangled[i] ^ 0x10);
    WriteFileBytes(path, mangled);
    EXPECT_FALSE(LoadCubeBinary(path).ok()) << "byte " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fairjob
