#include "crawl/cube_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "crawl/csv.h"

namespace fairjob {
namespace {

UnfairnessCube SampleCube() {
  UnfairnessCube cube = *UnfairnessCube::Make({10, 11}, {20, 21, 22}, {30});
  cube.Set(0, 0, 0, 0.123456789012345);
  cube.Set(0, 2, 0, 0.5);
  cube.Set(1, 1, 0, 1.0 / 3.0);
  // (0,1,0), (1,0,0), (1,2,0) left missing.
  return cube;
}

std::string TestNamer(Dimension d, int32_t id, const void*) {
  return std::string(DimensionName(d)) + "#" + std::to_string(id);
}

TEST(CubeIoTest, RowsRoundTripValuesAndHoles) {
  UnfairnessCube cube = SampleCube();
  Result<UnfairnessCube> restored = CubeFromCsvRows(CubeToCsvRows(cube));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->axis_size(Dimension::kGroup), 2u);
  EXPECT_EQ(restored->axis_size(Dimension::kQuery), 3u);
  EXPECT_EQ(restored->axis_size(Dimension::kLocation), 1u);
  EXPECT_EQ(restored->axis_id(Dimension::kQuery, 2), 22);
  EXPECT_EQ(restored->num_present(), 3u);
  EXPECT_NEAR(*restored->Get(0, 0, 0), 0.123456789012345, 1e-15);
  EXPECT_NEAR(*restored->Get(1, 1, 0), 1.0 / 3.0, 1e-15);
  EXPECT_FALSE(restored->Get(0, 1, 0).has_value());
}

TEST(CubeIoTest, NamesRoundTrip) {
  UnfairnessCube cube = SampleCube();
  auto rows = CubeToCsvRows(cube, &TestNamer, nullptr);
  Result<CubeNames> names = CubeNamesFromCsvRows(rows);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->groups.size(), 2u);
  EXPECT_EQ(names->groups[1], "group#11");
  EXPECT_EQ(names->queries[0], "query#20");
  EXPECT_EQ(names->locations[0], "location#30");
}

TEST(CubeIoTest, NamesDefaultToEmpty) {
  auto rows = CubeToCsvRows(SampleCube());
  CubeNames names = *CubeNamesFromCsvRows(rows);
  EXPECT_EQ(names.groups[0], "");
}

TEST(CubeIoTest, SurvivesCsvTextSerialization) {
  UnfairnessCube cube = SampleCube();
  std::string text = WriteCsv(CubeToCsvRows(cube, &TestNamer, nullptr));
  Result<UnfairnessCube> restored = CubeFromCsvRows(*ParseCsv(text));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_present(), 3u);
}

TEST(CubeIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/fairjob_cube_test.csv";
  UnfairnessCube cube = SampleCube();
  ASSERT_TRUE(SaveCube(path, cube).ok());
  Result<UnfairnessCube> restored = LoadCube(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_present(), cube.num_present());
  std::remove(path.c_str());
}

TEST(CubeIoTest, RejectsMalformedRows) {
  EXPECT_FALSE(CubeFromCsvRows({{"axis", "group", "1"}}).ok());  // 3 fields
  EXPECT_FALSE(CubeFromCsvRows({{"axis", "planet", "1", ""}}).ok());
  EXPECT_FALSE(CubeFromCsvRows({{"blob", "x"}}).ok());
  EXPECT_FALSE(
      CubeFromCsvRows({{"axis", "group", "abc", ""}}).ok());  // bad id
}

TEST(CubeIoTest, RejectsCellsOutOfRange) {
  auto rows = CubeToCsvRows(SampleCube());
  rows.push_back({"cell", "9", "0", "0", "0.5"});
  EXPECT_FALSE(CubeFromCsvRows(rows).ok());
}

TEST(CubeIoTest, RejectsBadCellValue) {
  auto rows = CubeToCsvRows(SampleCube());
  rows.push_back({"cell", "0", "0", "0", "zero point five"});
  EXPECT_FALSE(CubeFromCsvRows(rows).ok());
}

TEST(CubeIoTest, RejectsDuplicateAxisIds) {
  std::vector<std::vector<std::string>> rows = {
      {"axis", "group", "1", ""}, {"axis", "group", "1", ""},
      {"axis", "query", "1", ""}, {"axis", "location", "1", ""},
  };
  EXPECT_FALSE(CubeFromCsvRows(rows).ok());
}

TEST(CubeIoTest, LargeRandomCubeRoundTrips) {
  UnfairnessCube cube = *UnfairnessCube::Make(
      {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4, 5, 6}, {0, 1, 2});
  Rng rng(99);
  for (size_t g = 0; g < 5; ++g) {
    for (size_t q = 0; q < 7; ++q) {
      for (size_t l = 0; l < 3; ++l) {
        if (rng.NextBernoulli(0.6)) cube.Set(g, q, l, rng.NextDouble());
      }
    }
  }
  UnfairnessCube restored = *CubeFromCsvRows(CubeToCsvRows(cube));
  ASSERT_EQ(restored.num_present(), cube.num_present());
  for (size_t g = 0; g < 5; ++g) {
    for (size_t q = 0; q < 7; ++q) {
      for (size_t l = 0; l < 3; ++l) {
        std::optional<double> a = cube.Get(g, q, l);
        std::optional<double> b = restored.Get(g, q, l);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a.has_value()) {
          EXPECT_NEAR(*a, *b, 1e-15);
        }
      }
    }
  }
}

}  // namespace
}  // namespace fairjob
