#include "common/lru_cache.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fairjob {
namespace {

using IntCache = ShardedLruCache<int, int>;

// Reference model of one shard: entries most-recent-first, mirroring the
// documented semantics (Get refreshes, Put inserts/overwrites at the front,
// overflow evicts the back).
struct ModelShard {
  size_t capacity = 0;
  std::vector<std::pair<int, int>> entries;  // front = most recent

  std::pair<int, int>* Find(int key) {
    for (auto& entry : entries) {
      if (entry.first == key) return &entry;
    }
    return nullptr;
  }

  void MoveToFront(int key) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].first == key) {
        std::pair<int, int> entry = entries[i];
        entries.erase(entries.begin() + i);
        entries.insert(entries.begin(), entry);
        return;
      }
    }
  }
};

// The full reference model: one ModelShard per cache shard, with the same
// capacity split the cache documents (capacity / shards, remainder to the
// first shards).
class Model {
 public:
  Model(const IntCache& cache, size_t capacity) {
    shards_.resize(cache.num_shards());
    for (size_t i = 0; i < shards_.size(); ++i) {
      shards_[i].capacity =
          capacity / shards_.size() + (i < capacity % shards_.size() ? 1 : 0);
    }
  }

  std::optional<int> Get(const IntCache& cache, int key) {
    ModelShard& shard = shards_[cache.ShardOf(key)];
    std::pair<int, int>* entry = shard.Find(key);
    if (entry == nullptr) return std::nullopt;
    int value = entry->second;
    shard.MoveToFront(key);
    return value;
  }

  // Returns the evicted key, if the Put overflowed the shard.
  std::optional<int> Put(const IntCache& cache, int key, int value) {
    ModelShard& shard = shards_[cache.ShardOf(key)];
    std::pair<int, int>* entry = shard.Find(key);
    if (entry != nullptr) {
      entry->second = value;
      shard.MoveToFront(key);
      return std::nullopt;
    }
    shard.entries.insert(shard.entries.begin(), {key, value});
    if (shard.entries.size() > shard.capacity) {
      int victim = shard.entries.back().first;
      shard.entries.pop_back();
      return victim;
    }
    return std::nullopt;
  }

  bool Erase(const IntCache& cache, int key) {
    ModelShard& shard = shards_[cache.ShardOf(key)];
    for (size_t i = 0; i < shard.entries.size(); ++i) {
      if (shard.entries[i].first == key) {
        shard.entries.erase(shard.entries.begin() + i);
        return true;
      }
    }
    return false;
  }

  size_t size() const {
    size_t total = 0;
    for (const ModelShard& shard : shards_) total += shard.entries.size();
    return total;
  }

  const std::vector<ModelShard>& shards() const { return shards_; }

 private:
  std::vector<ModelShard> shards_;
};

// Every shard's recency order must match the model exactly — this pins both
// contents and the eviction victim at every step, since a wrong victim shows
// up as a diverging key list.
void ExpectSameState(const IntCache& cache, const Model& model) {
  size_t total = 0;
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    std::vector<int> expected;
    for (const auto& entry : model.shards()[s].entries) {
      expected.push_back(entry.first);
    }
    EXPECT_EQ(cache.ShardKeysMostRecentFirst(s), expected) << "shard " << s;
    total += expected.size();
  }
  EXPECT_EQ(cache.size(), total);
}

void RunRandomOps(IntCache& cache, Model& model, size_t ops, int keyspace,
                  uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < ops; ++i) {
    int key = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(keyspace)));
    uint64_t op = rng.NextBelow(10);
    if (op < 5) {  // Put
      int value = static_cast<int>(rng.NextBelow(1000));
      std::optional<int> victim = model.Put(cache, key, value);
      cache.Put(key, value);
      if (victim.has_value()) {
        // The evicted key must actually be gone (checked without Get so the
        // probe does not disturb recency).
        std::vector<int> keys =
            cache.ShardKeysMostRecentFirst(cache.ShardOf(*victim));
        for (int k : keys) EXPECT_NE(k, *victim);
      }
    } else if (op < 9) {  // Get
      std::optional<int> expected = model.Get(cache, key);
      std::optional<int> actual = cache.Get(key);
      EXPECT_EQ(actual, expected) << "step " << i << " key " << key;
    } else {  // Erase
      EXPECT_EQ(cache.Erase(key), model.Erase(cache, key));
    }
    ExpectSameState(cache, model);
    if (::testing::Test::HasFailure()) return;  // avoid 1000s of repeats
  }
}

TEST(LruCachePropertyTest, SingleShardMatchesReferenceModel) {
  IntCache cache(/*capacity=*/8, /*num_shards=*/1);
  Model model(cache, 8);
  RunRandomOps(cache, model, /*ops=*/2000, /*keyspace=*/32, /*seed=*/11);
  IntCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.insertions - stats.evictions - stats.erasures, cache.size());
}

TEST(LruCachePropertyTest, MultiShardMatchesReferenceModel) {
  // 13 entries over 4 shards: capacities 4,3,3,3 — the uneven split is the
  // interesting case.
  IntCache cache(/*capacity=*/13, /*num_shards=*/4);
  Model model(cache, 13);
  RunRandomOps(cache, model, /*ops=*/4000, /*keyspace=*/64, /*seed=*/29);
  IntCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.insertions - stats.evictions - stats.erasures, cache.size());
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedNotLeastRecentlyInserted) {
  IntCache cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  EXPECT_EQ(cache.Get(1), std::optional<int>(10));  // refresh 1; LRU is now 2
  cache.Put(4, 40);
  EXPECT_EQ(cache.Get(2), std::nullopt);  // 2 was the victim
  EXPECT_EQ(cache.Get(1), std::optional<int>(10));
  EXPECT_EQ(cache.ShardKeysMostRecentFirst(0), (std::vector<int>{1, 4, 3}))
      << "unexpected recency order";
}

TEST(LruCacheTest, PutRefreshesRecencyAndOverwritesValue) {
  IntCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // overwrite refreshes: LRU is now 2
  cache.Put(3, 30);
  EXPECT_EQ(cache.Get(2), std::nullopt);
  EXPECT_EQ(cache.Get(1), std::optional<int>(11));
  EXPECT_EQ(cache.stats().updates, 1u);
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  IntCache cache(/*capacity=*/0, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 1u);
  cache.Put(1, 10);
  EXPECT_EQ(cache.Get(1), std::nullopt);
  EXPECT_EQ(cache.size(), 0u);
  IntCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 1u);  // lookups still counted for hit-rate math
  EXPECT_EQ(stats.misses, 1u);
}

TEST(LruCacheTest, NeverMoreShardsThanEntries) {
  IntCache cache(/*capacity=*/2, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 2u);
}

TEST(LruCacheTest, EraseAndClear) {
  IntCache cache(/*capacity=*/8, /*num_shards=*/2);
  for (int k = 0; k < 6; ++k) cache.Put(k, k);
  EXPECT_TRUE(cache.Erase(3));
  EXPECT_FALSE(cache.Erase(3));
  EXPECT_EQ(cache.size(), 5u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  for (int k = 0; k < 6; ++k) EXPECT_EQ(cache.Get(k), std::nullopt);
  EXPECT_EQ(cache.stats().erasures, 6u);  // 1 Erase + 5 cleared
}

TEST(LruCacheTest, StringKeysAndCustomHashSpread) {
  ShardedLruCache<std::string, std::string> cache(/*capacity=*/64,
                                                  /*num_shards=*/4);
  for (int k = 0; k < 64; ++k) {
    cache.Put("key-" + std::to_string(k), std::to_string(k));
  }
  // The mixed hash must actually spread keys: no shard may be empty with 64
  // keys over 4 shards (16 expected per shard).
  for (size_t s = 0; s < cache.num_shards(); ++s) {
    EXPECT_FALSE(cache.ShardKeysMostRecentFirst(s).empty()) << "shard " << s;
  }
  EXPECT_EQ(cache.Get("key-63"), std::optional<std::string>("63"));
}

}  // namespace
}  // namespace fairjob
