#include "ranking/exposure.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

namespace fairjob {
namespace {

TEST(ExposureTest, Rank1Value) {
  EXPECT_NEAR(ExposureAtRank(1), 1.0 / std::log(2.0), 1e-12);
}

TEST(ExposureTest, StrictlyDecreasingInRank) {
  for (size_t r = 1; r < 100; ++r) {
    EXPECT_GT(ExposureAtRank(r), ExposureAtRank(r + 1));
  }
}

TEST(ExposureTest, AlwaysPositive) {
  EXPECT_GT(ExposureAtRank(1000000), 0.0);
}

TEST(RelevanceTest, LinearInRank) {
  EXPECT_DOUBLE_EQ(*RelevanceFromRank(1, 10), 0.9);
  EXPECT_DOUBLE_EQ(*RelevanceFromRank(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(*RelevanceFromRank(10, 10), 0.0);
}

TEST(RelevanceTest, RejectsZeroRank) {
  EXPECT_FALSE(RelevanceFromRank(0, 10).ok());
}

TEST(RelevanceTest, RejectsRankBeyondResultSet) {
  EXPECT_FALSE(RelevanceFromRank(11, 10).ok());
}

TEST(TotalsTest, SumOverRanks) {
  std::vector<size_t> ranks = {1, 3};
  EXPECT_NEAR(TotalExposure(ranks),
              1.0 / std::log(2.0) + 1.0 / std::log(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(*TotalRelevance(ranks, 10), 0.9 + 0.7);
}

TEST(TotalsTest, EmptyRanksAreZero) {
  EXPECT_DOUBLE_EQ(TotalExposure({}), 0.0);
  EXPECT_DOUBLE_EQ(*TotalRelevance({}, 10), 0.0);
}

TEST(TotalsTest, RelevancePropagatesErrors) {
  EXPECT_FALSE(TotalRelevance({1, 99}, 10).ok());
}

uint64_t BitsOf(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// The memoized bias table is the single source of the log-inverse curve for
// the batched marketplace engine; its entries must be BITWISE identical to
// ExposureAtRank (which probes the same table) and to the direct formula —
// the whole-cube bitwise contract rests on this.
TEST(BiasTableTest, EntriesMatchExposureAtRankBitwise) {
  PositionBiasTable::View view = PositionBiasTable::LogInverse(200);
  ASSERT_GE(view.size, 200u);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(BitsOf(view.bias[i]), BitsOf(ExposureAtRank(i + 1))) << i;
    EXPECT_EQ(BitsOf(view.bias[i]),
              BitsOf(1.0 / std::log(1.0 + static_cast<double>(i + 1))))
        << i;
  }
}

// Growing the table must preserve the published prefix bit for bit — views
// handed out earlier stay valid and identical (generations are never
// mutated, only superseded).
TEST(BiasTableTest, GrowthPreservesPrefixBitwise) {
  PositionBiasTable::View small = PositionBiasTable::LogInverse(64);
  PositionBiasTable::View large = PositionBiasTable::LogInverse(small.size * 4);
  ASSERT_GE(large.size, small.size * 4);
  for (size_t i = 0; i < small.size; ++i) {
    EXPECT_EQ(BitsOf(small.bias[i]), BitsOf(large.bias[i])) << i;
  }
}

// min_ranks == 0 never grows the table; whatever is published (possibly an
// empty view early in the process) must still be usable with size 0 reads.
TEST(BiasTableTest, ZeroMinRanksDoesNotGrow) {
  PositionBiasTable::View before = PositionBiasTable::LogInverse(0);
  PositionBiasTable::View again = PositionBiasTable::LogInverse(0);
  EXPECT_EQ(before.size, again.size);
}

// The paper's Figure 5 worked example, computed exactly: Black Females at
// ranks 7 and 8 of a 10-worker ranking; comparable workers at ranks
// 1, 2, 3, 5, 10.
TEST(Figure5Test, BlackFemaleExposureAndRelevanceShares) {
  std::vector<size_t> bf_ranks = {7, 8};
  std::vector<size_t> comparable_ranks = {2, 3, 5, 1, 10};

  double bf_exp = TotalExposure(bf_ranks);
  double comp_exp = TotalExposure(comparable_ranks);
  EXPECT_NEAR(bf_exp, 0.94, 0.01);   // the figure's 0.94
  EXPECT_NEAR(comp_exp, 4.05, 0.01); // the figure's ≈4.0

  double bf_rel = *TotalRelevance(bf_ranks, 10);
  double comp_rel = *TotalRelevance(comparable_ranks, 10);
  EXPECT_DOUBLE_EQ(bf_rel, 0.5);   // the figure's 0.5
  EXPECT_DOUBLE_EQ(comp_rel, 2.9); // the figure's 2.9

  double exp_share = bf_exp / (bf_exp + comp_exp);
  double rel_share = bf_rel / (bf_rel + comp_rel);
  EXPECT_NEAR(exp_share, 0.19, 0.005);
  EXPECT_NEAR(rel_share, 0.15, 0.005);
  EXPECT_NEAR(std::fabs(exp_share - rel_share), 0.04, 0.005);
}

}  // namespace
}  // namespace fairjob
