#include "core/indices.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

TEST(InvertedIndexTest, SortsDescending) {
  InvertedIndex index({{0, 0.3}, {1, 0.9}, {2, 0.5}});
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.entry(0).pos, 1);
  EXPECT_EQ(index.entry(1).pos, 2);
  EXPECT_EQ(index.entry(2).pos, 0);
}

TEST(InvertedIndexTest, TiesBrokenByPosition) {
  InvertedIndex index({{5, 0.5}, {2, 0.5}, {9, 0.5}});
  EXPECT_EQ(index.entry(0).pos, 2);
  EXPECT_EQ(index.entry(1).pos, 5);
  EXPECT_EQ(index.entry(2).pos, 9);
}

TEST(InvertedIndexTest, RandomAccess) {
  InvertedIndex index({{0, 0.3}, {1, 0.9}});
  EXPECT_DOUBLE_EQ(*index.Find(0), 0.3);
  EXPECT_DOUBLE_EQ(*index.Find(1), 0.9);
  EXPECT_FALSE(index.Find(7).has_value());
}

TEST(InvertedIndexTest, EmptyIndex) {
  InvertedIndex index({});
  EXPECT_TRUE(index.empty());
  EXPECT_FALSE(index.Find(0).has_value());
}

class IndexSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cube_ = std::make_unique<UnfairnessCube>(
        *UnfairnessCube::Make({0, 1, 2}, {0, 1}, {0, 1}));
    // d<g,q,l> = g + 10q + 100l for present cells; (2, *, *) left missing.
    for (size_t g = 0; g < 2; ++g) {
      for (size_t q = 0; q < 2; ++q) {
        for (size_t l = 0; l < 2; ++l) {
          cube_->Set(g, q, l, static_cast<double>(g + 10 * q + 100 * l));
        }
      }
    }
    indices_ = std::make_unique<IndexSet>(IndexSet::Build(*cube_));
  }

  std::unique_ptr<UnfairnessCube> cube_;
  std::unique_ptr<IndexSet> indices_;
};

TEST_F(IndexSetTest, GroupBasedListPerQueryLocationPair) {
  // I(q=1, l=0): groups with their d values, descending.
  const InvertedIndex& list = indices_->ListAt(Dimension::kGroup, 1, 0);
  ASSERT_EQ(list.size(), 2u);  // group 2 has no value
  EXPECT_EQ(list.entry(0).pos, 1);
  EXPECT_DOUBLE_EQ(list.entry(0).value, 11.0);
  EXPECT_EQ(list.entry(1).pos, 0);
  EXPECT_DOUBLE_EQ(list.entry(1).value, 10.0);
}

TEST_F(IndexSetTest, QueryBasedListPerGroupLocationPair) {
  // I(g=0, l=1): queries descending: q1 -> 110, q0 -> 100.
  const InvertedIndex& list = indices_->ListAt(Dimension::kQuery, 0, 1);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.entry(0).pos, 1);
  EXPECT_DOUBLE_EQ(list.entry(0).value, 110.0);
}

TEST_F(IndexSetTest, LocationBasedListPerGroupQueryPair) {
  const InvertedIndex& list = indices_->ListAt(Dimension::kLocation, 1, 1);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list.entry(0).pos, 1);  // l=1 -> 111
  EXPECT_DOUBLE_EQ(list.entry(0).value, 111.0);
  EXPECT_DOUBLE_EQ(*list.Find(0), 11.0);
}

TEST_F(IndexSetTest, MissingGroupAbsentFromEveryList) {
  for (size_t q = 0; q < 2; ++q) {
    for (size_t l = 0; l < 2; ++l) {
      EXPECT_FALSE(
          indices_->ListAt(Dimension::kGroup, q, l).Find(2).has_value());
    }
  }
}

TEST_F(IndexSetTest, ListsForAllSelectorsCoversCrossProduct) {
  std::vector<const InvertedIndex*> lists = indices_->ListsFor(
      Dimension::kGroup, AxisSelector::All(), AxisSelector::All());
  EXPECT_EQ(lists.size(), 4u);  // 2 queries × 2 locations
}

TEST_F(IndexSetTest, ListsForSubsetsSelectsPairs) {
  std::vector<const InvertedIndex*> lists = indices_->ListsFor(
      Dimension::kGroup, AxisSelector::Single(1), AxisSelector::All());
  ASSERT_EQ(lists.size(), 2u);
  EXPECT_DOUBLE_EQ(lists[0]->entry(0).value, 11.0);   // (q=1, l=0)
  EXPECT_DOUBLE_EQ(lists[1]->entry(0).value, 111.0);  // (q=1, l=1)
}

TEST_F(IndexSetTest, AxisSizes) {
  EXPECT_EQ(indices_->axis_size(Dimension::kGroup), 3u);
  EXPECT_EQ(indices_->axis_size(Dimension::kQuery), 2u);
  EXPECT_EQ(indices_->axis_size(Dimension::kLocation), 2u);
}

TEST(InvertedIndexUpdateTest, UpsertInsertsAndKeepsOrder) {
  InvertedIndex index({{0, 0.3}, {1, 0.9}});
  index.Upsert(2, 0.5);
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.entry(0).pos, 1);
  EXPECT_EQ(index.entry(1).pos, 2);
  EXPECT_EQ(index.entry(2).pos, 0);
  EXPECT_DOUBLE_EQ(*index.Find(2), 0.5);
}

TEST(InvertedIndexUpdateTest, UpsertReplacesExisting) {
  InvertedIndex index({{0, 0.3}, {1, 0.9}});
  index.Upsert(0, 0.95);  // moves to the top
  ASSERT_EQ(index.size(), 2u);
  EXPECT_EQ(index.entry(0).pos, 0);
  EXPECT_DOUBLE_EQ(*index.Find(0), 0.95);
  index.Upsert(0, 0.95);  // no-op
  EXPECT_EQ(index.size(), 2u);
}

TEST(InvertedIndexUpdateTest, RemoveDeletesOrIgnores) {
  InvertedIndex index({{0, 0.3}, {1, 0.9}});
  index.Remove(0);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_FALSE(index.Find(0).has_value());
  index.Remove(42);  // absent: no-op
  EXPECT_EQ(index.size(), 1u);
}

TEST_F(IndexSetTest, RefreshColumnMatchesFullRebuild) {
  // Mutate a column of the cube, refresh incrementally, and compare every
  // list against a from-scratch build.
  cube_->Set(0, 1, 0, 99.0);
  cube_->Set(2, 1, 0, 55.0);   // group 2 becomes defined here
  cube_->Clear(1, 1, 0);       // group 1 becomes undefined here
  indices_->RefreshColumn(*cube_, 1, 0);
  IndexSet rebuilt = IndexSet::Build(*cube_);

  for (Dimension target :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    size_t n1;
    size_t n2;
    if (target == Dimension::kGroup) {
      n1 = 2;  // queries
      n2 = 2;  // locations
    } else if (target == Dimension::kQuery) {
      n1 = 3;  // groups
      n2 = 2;  // locations
    } else {
      n1 = 3;  // groups
      n2 = 2;  // queries
    }
    for (size_t p1 = 0; p1 < n1; ++p1) {
      for (size_t p2 = 0; p2 < n2; ++p2) {
        const InvertedIndex& incremental = indices_->ListAt(target, p1, p2);
        const InvertedIndex& fresh = rebuilt.ListAt(target, p1, p2);
        ASSERT_EQ(incremental.size(), fresh.size())
            << DimensionName(target) << " " << p1 << " " << p2;
        for (size_t i = 0; i < fresh.size(); ++i) {
          EXPECT_EQ(incremental.entry(i).pos, fresh.entry(i).pos);
          EXPECT_DOUBLE_EQ(incremental.entry(i).value, fresh.entry(i).value);
        }
      }
    }
  }
}

}  // namespace
}  // namespace fairjob
