// End-to-end pipelines at reduced scale: the paper's Figure 6 (TaskRabbit
// crawl -> AMT labeling -> F-Box) and Figure 9 (user study -> F-Box) flows.

#include <gtest/gtest.h>

#include <memory>

#include "core/fbox.h"
#include "core/quantification.h"
#include "crawl/dataset_assembly.h"
#include "crawl/labeling.h"
#include "market/taskrabbit_sim.h"
#include "search/google_sim.h"

namespace fairjob {
namespace {

TaskRabbitConfig SmallConfig() {
  TaskRabbitConfig config;
  config.num_workers = 300;
  config.max_cities = 3;
  config.max_subjobs_per_category = 1;
  config.target_query_count = 1000000;
  return config;
}

TEST(Figure6PipelineTest, CrawlLabelAssembleQuantify) {
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(SmallConfig());

  // 1. Crawl the site.
  VirtualClock clock;
  CrawlerConfig crawl_config;
  crawl_config.min_request_interval_s = 0;
  Crawler crawler(site.get(), &clock, crawl_config);
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->failed_queries, 0u);
  EXPECT_FALSE(report->records.empty());

  // 2. Collect profiles.
  ProfileStore store;
  ASSERT_TRUE(crawler.CollectProfiles(report->records, &store, nullptr).ok());

  // 3. Label demographics from "profile pictures" via simulated AMT.
  std::vector<Demographics> truths;
  std::vector<std::string> names;
  for (const RawProfile& profile : store.profiles()) {
    truths.push_back(*site->TruthByPicture(profile.picture_ref));
    names.push_back(profile.worker_name);
  }
  Rng rng(1234);
  LabelingConfig label_config;
  label_config.error_rate = 0.03;
  Result<LabelingOutcome> labeled =
      RunLabeling(site->schema(), truths, label_config, &rng);
  ASSERT_TRUE(labeled.ok());
  EXPECT_GT(labeled->attribute_accuracy, 0.98);

  std::unordered_map<std::string, Demographics> demographics;
  for (size_t i = 0; i < names.size(); ++i) {
    demographics[names[i]] = labeled->labels[i];
  }

  // 4. Assemble the dataset and run the F-Box.
  Result<MarketplaceAssembly> assembly =
      AssembleMarketplace(site->schema(), report->records, demographics);
  ASSERT_TRUE(assembly.ok());
  GroupSpace space = *GroupSpace::Enumerate(assembly->dataset.schema());
  Result<FBox> fbox =
      FBox::ForMarketplace(&assembly->dataset, &space, MarketMeasure::kEmd);
  ASSERT_TRUE(fbox.ok());

  Result<std::vector<FBox::NamedAnswer>> top = fbox->TopK(Dimension::kGroup, 3);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 3u);
  // The injected bias makes Asian groups the most discriminated against
  // (EMD tracks the injected penalties most directly; see EXPERIMENTS.md).
  EXPECT_TRUE((*top)[0].name.find("Asian") != std::string::npos)
      << (*top)[0].name;
}

TEST(Figure6PipelineTest, CrawledDatasetMatchesDirectDataset) {
  TaskRabbitConfig config = SmallConfig();
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);

  VirtualClock clock;
  CrawlerConfig crawl_config;
  crawl_config.min_request_interval_s = 0;
  Crawler crawler(site.get(), &clock, crawl_config);
  CrawlReport report = *crawler.CrawlAll();
  std::unordered_map<std::string, Demographics> demographics;
  for (const CrawlRecord& record : report.records) {
    demographics[record.worker_name] =
        *site->TrueDemographics(record.worker_name);
  }
  MarketplaceAssembly assembly =
      *AssembleMarketplace(site->schema(), report.records, demographics);

  TaskRabbitDataset direct = *BuildTaskRabbitDataset(config);

  // Same rankings through both routes (crawl truncates to 50, as direct).
  for (const std::string& city : site->Cities()) {
    for (const std::string& job : site->JobsIn(city)) {
      const MarketRanking* crawled = assembly.dataset.GetRanking(
          *assembly.dataset.queries().Find(job),
          *assembly.dataset.locations().Find(city));
      const MarketRanking* built = direct.dataset.GetRanking(
          *direct.dataset.queries().Find(job),
          *direct.dataset.locations().Find(city));
      ASSERT_NE(crawled, nullptr);
      ASSERT_NE(built, nullptr);
      ASSERT_EQ(crawled->workers.size(), built->workers.size());
      for (size_t i = 0; i < crawled->workers.size(); ++i) {
        EXPECT_EQ(assembly.dataset.workers().NameOf(crawled->workers[i]),
                  direct.dataset.workers().NameOf(built->workers[i]));
      }
    }
  }
}

TEST(Figure6PipelineTest, CrawlSurvivesTransientFailures) {
  TaskRabbitConfig config = SmallConfig();
  config.transient_failure_rate = 0.3;
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);
  VirtualClock clock;
  CrawlerConfig crawl_config;
  crawl_config.min_request_interval_s = 0;
  crawl_config.max_retries = 12;
  Crawler crawler(site.get(), &clock, crawl_config);
  Result<CrawlReport> report = crawler.CrawlAll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->failed_queries, 0u);
  EXPECT_GT(report->retries, 0u);
  // Retried crawl sees exactly the same rankings (determinism).
  TaskRabbitConfig clean = SmallConfig();
  std::unique_ptr<SimulatedMarketplace> clean_site = *BuildTaskRabbitSite(clean);
  VirtualClock clock2;
  Crawler clean_crawler(clean_site.get(), &clock2, crawl_config);
  CrawlReport clean_report = *clean_crawler.CrawlAll();
  ASSERT_EQ(report->records.size(), clean_report.records.size());
  for (size_t i = 0; i < clean_report.records.size(); ++i) {
    EXPECT_EQ(report->records[i].worker_name,
              clean_report.records[i].worker_name);
  }
}

TEST(Figure9PipelineTest, GoogleStudyThroughFBox) {
  GoogleStudyConfig config;
  config.users_per_cell = 2;
  config.formulations_per_query = 2;
  Result<GoogleWorld> world = BuildGoogleStudy(config);
  ASSERT_TRUE(world.ok());
  GroupSpace space = *GroupSpace::Enumerate(world->dataset.schema());
  Result<FBox> fbox =
      FBox::ForSearch(&world->dataset, &space, SearchMeasure::kKendallTau);
  ASSERT_TRUE(fbox.ok());

  // Group axis: the measure is defined on cells where the group and a
  // comparable group both have observations; all users run all tasks, so
  // all 11 groups have values.
  Result<std::vector<FBox::NamedAnswer>> top =
      fbox->TopK(Dimension::kGroup, 11);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 11u);
  for (const auto& answer : *top) {
    EXPECT_GE(answer.value, 0.0);
    EXPECT_LE(answer.value, 1.0);
  }
}

TEST(MonitoringPipelineTest, IncrementalRefreshMatchesFreshAuditAcrossEpochs) {
  // The monitoring loop: epoch 0 audit, epoch 1 partial re-crawl with
  // incremental cube/index refresh — and the incremental state must agree
  // exactly with a from-scratch audit of the updated dataset.
  TaskRabbitConfig config = SmallConfig();
  std::unique_ptr<SimulatedMarketplace> site = *BuildTaskRabbitSite(config);

  TaskRabbitDataset built = *BuildTaskRabbitDataset(config);
  MarketplaceDataset& data = built.dataset;
  GroupSpace space = *GroupSpace::Enumerate(data.schema());
  UnfairnessCube cube =
      *BuildMarketplaceCube(data, space, MarketMeasure::kEmd);
  IndexSet indices = IndexSet::Build(cube);

  site->SetEpoch(1);
  std::string city = site->Cities()[1];
  LocationId l = *data.locations().Find(city);
  size_t l_pos = *cube.PosOf(Dimension::kLocation, l);
  for (const std::string& job : site->JobsIn(city)) {
    std::vector<size_t> ranking = *site->RankFor(job, city);
    MarketRanking fresh;
    size_t n = std::min<size_t>(ranking.size(), 50);
    for (size_t i = 0; i < n; ++i) {
      const std::string& name = site->worker(ranking[i]).name;
      Result<WorkerId> id = data.workers().Find(name);
      if (!id.ok()) {
        id = data.AddWorker(name, *site->TrueDemographics(name));
      }
      fresh.workers.push_back(*id);
    }
    QueryId q = *data.queries().Find(job);
    ASSERT_TRUE(data.SetRanking(q, l, std::move(fresh)).ok());
    size_t q_pos = *cube.PosOf(Dimension::kQuery, q);
    ASSERT_TRUE(RefreshMarketplaceColumn(data, space, MarketMeasure::kEmd, {},
                                         &cube, q_pos, l_pos)
                    .ok());
    indices.RefreshColumn(cube, q_pos, l_pos);
  }

  // Fresh audit of the same updated dataset.
  UnfairnessCube rebuilt =
      *BuildMarketplaceCube(data, space, MarketMeasure::kEmd);
  IndexSet rebuilt_indices = IndexSet::Build(rebuilt);
  ASSERT_EQ(cube.num_present(), rebuilt.num_present());

  for (Dimension target :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    QuantificationRequest request;
    request.target = target;
    request.k = 5;
    QuantificationResult incremental =
        *SolveQuantification(cube, indices, request);
    QuantificationResult fresh =
        *SolveQuantification(rebuilt, rebuilt_indices, request);
    ASSERT_EQ(incremental.answers.size(), fresh.answers.size());
    for (size_t i = 0; i < fresh.answers.size(); ++i) {
      EXPECT_EQ(incremental.answers[i].id, fresh.answers[i].id)
          << DimensionName(target) << " rank " << i;
      EXPECT_NEAR(incremental.answers[i].value, fresh.answers[i].value, 1e-12);
    }
  }
}

TEST(HypothesisTransferTest, MarketAndSearchAgreeOnSchemaAndGroups) {
  // Section 6: hypotheses generated on TaskRabbit are tested on Google; the
  // group space must be interoperable.
  AttributeSchema tr = TaskRabbitSchema();
  AttributeSchema gg = GoogleSchema();
  ASSERT_EQ(tr.num_attributes(), gg.num_attributes());
  for (size_t a = 0; a < tr.num_attributes(); ++a) {
    EXPECT_EQ(tr.attribute_name(static_cast<AttributeId>(a)),
              gg.attribute_name(static_cast<AttributeId>(a)));
    EXPECT_EQ(tr.num_values(static_cast<AttributeId>(a)),
              gg.num_values(static_cast<AttributeId>(a)));
  }
  GroupSpace tr_space = *GroupSpace::Enumerate(tr);
  GroupSpace gg_space = *GroupSpace::Enumerate(gg);
  ASSERT_EQ(tr_space.num_groups(), gg_space.num_groups());
  for (size_t g = 0; g < tr_space.num_groups(); ++g) {
    EXPECT_EQ(tr_space.label(static_cast<GroupId>(g)).DisplayName(tr),
              gg_space.label(static_cast<GroupId>(g)).DisplayName(gg));
  }
}

}  // namespace
}  // namespace fairjob
