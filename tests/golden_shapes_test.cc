// Golden-shape regression tests: the paper-table shapes EXPERIMENTS.md
// marks as reproduced (✔) are pinned here at full simulation scale, so a
// future calibration or measure change cannot silently regress the
// reproduction. These are the slowest tests in the suite (a few seconds
// total — they build the complete TaskRabbit and Google worlds).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/fbox.h"
#include "market/taskrabbit_sim.h"
#include "search/google_sim.h"

namespace fairjob {
namespace {

struct MarketWorld {
  std::unique_ptr<TaskRabbitDataset> data;
  std::unique_ptr<GroupSpace> space;
  std::unique_ptr<FBox> emd;
  std::unique_ptr<FBox> exposure;
};

const MarketWorld& TaskRabbitWorld() {
  static MarketWorld* world = [] {
    auto* w = new MarketWorld();
    w->data = std::make_unique<TaskRabbitDataset>(
        std::move(BuildTaskRabbitDataset(TaskRabbitConfig{})).value());
    w->space = std::make_unique<GroupSpace>(
        GroupSpace::Enumerate(w->data->dataset.schema()).value());
    w->emd = std::make_unique<FBox>(
        FBox::ForMarketplace(&w->data->dataset, w->space.get(),
                             MarketMeasure::kEmd)
            .value());
    w->exposure = std::make_unique<FBox>(
        FBox::ForMarketplace(&w->data->dataset, w->space.get(),
                             MarketMeasure::kExposure)
            .value());
    return w;
  }();
  return *world;
}

struct SearchWorld {
  std::unique_ptr<GoogleWorld> world;
  std::unique_ptr<GroupSpace> space;
  std::unique_ptr<FBox> kendall_base;
  std::unique_ptr<FBox> jaccard_base;
  std::unique_ptr<FBox> kendall_terms;
};

const SearchWorld& GoogleStudyWorld() {
  static SearchWorld* world = [] {
    auto* w = new SearchWorld();
    w->world = std::make_unique<GoogleWorld>(
        std::move(BuildGoogleStudy(GoogleStudyConfig{})).value());
    w->space = std::make_unique<GroupSpace>(
        GroupSpace::Enumerate(w->world->dataset.schema()).value());
    w->kendall_base = std::make_unique<FBox>(
        FBox::ForSearch(&w->world->dataset_by_base_query, w->space.get(),
                        SearchMeasure::kKendallTau)
            .value());
    w->jaccard_base = std::make_unique<FBox>(
        FBox::ForSearch(&w->world->dataset_by_base_query, w->space.get(),
                        SearchMeasure::kJaccard)
            .value());
    w->kendall_terms = std::make_unique<FBox>(
        FBox::ForSearch(&w->world->dataset, w->space.get(),
                        SearchMeasure::kKendallTau)
            .value());
    return w;
  }();
  return *world;
}

std::vector<std::string> Names(const std::vector<FBox::NamedAnswer>& answers) {
  std::vector<std::string> names;
  for (const auto& answer : answers) names.push_back(answer.name);
  return names;
}

// --- Table 8 --------------------------------------------------------------

TEST(GoldenShapesTest, Table8AsianFemaleAndMaleLeadEmd) {
  std::vector<std::string> top =
      Names(*TaskRabbitWorld().emd->TopK(Dimension::kGroup, 4));
  EXPECT_EQ(top[0], "Asian Female");
  EXPECT_EQ(top[1], "Asian Male");
  // Top-4 *set* matches the paper: {AF, AM, BF, Asian}.
  std::set<std::string> top_set(top.begin(), top.end());
  EXPECT_TRUE(top_set.count("Black Female"));
  EXPECT_TRUE(top_set.count("Asian"));
}

TEST(GoldenShapesTest, Table8AsianFemaleLeadsExposure) {
  std::vector<std::string> top =
      Names(*TaskRabbitWorld().exposure->TopK(Dimension::kGroup, 1));
  EXPECT_EQ(top[0], "Asian Female");
}

TEST(GoldenShapesTest, Table8MaleEqualsFemale) {
  const FBox& emd = *TaskRabbitWorld().emd;
  size_t male = *emd.PosOf(Dimension::kGroup, "Male");
  size_t female = *emd.PosOf(Dimension::kGroup, "Female");
  EXPECT_NEAR(*emd.cube().AxisAverage(Dimension::kGroup, male),
              *emd.cube().AxisAverage(Dimension::kGroup, female), 1e-12);
}

// --- Table 9 --------------------------------------------------------------

TEST(GoldenShapesTest, Table9JobTiers) {
  const MarketWorld& world = TaskRabbitWorld();
  auto category_value = [&](const std::string& category) {
    std::vector<size_t> positions = *world.emd->PositionsOf(
        Dimension::kQuery, world.data->subjobs_by_category.at(category));
    return *world.emd->cube().Average(AxisSelector::All(),
                                      AxisSelector{positions},
                                      AxisSelector::All());
  };
  double handyman = category_value("Handyman");
  double yard_work = category_value("Yard Work");
  double furniture = category_value("Furniture Assembly");
  double delivery = category_value("Delivery");
  double run_errands = category_value("Run Errands");
  // Handyman/Yard Work top tier strictly above the fair tier.
  EXPECT_GT(std::min(handyman, yard_work),
            std::max({furniture, delivery, run_errands}));
}

// --- Tables 10/11 -----------------------------------------------------------

TEST(GoldenShapesTest, Table10SevereCitiesLeadTable11FairCitiesTrail) {
  const FBox& emd = *TaskRabbitWorld().emd;
  std::vector<std::string> worst =
      Names(*emd.TopK(Dimension::kLocation, 10));
  EXPECT_EQ(worst[0], "Birmingham, UK");
  std::set<std::string> worst_set(worst.begin(), worst.end());
  // At least 8 of the paper's Table 10 cities in our top-10.
  size_t overlap = 0;
  for (const char* city :
       {"Birmingham, UK", "Oklahoma City, OK", "Bristol, UK",
        "Manchester, UK", "New Haven, CT", "Milwaukee, WI", "Memphis, TN",
        "Indianapolis, IN", "Nashville, TN", "Detroit, MI"}) {
    if (worst_set.count(city)) ++overlap;
  }
  EXPECT_GE(overlap, 8u);

  std::vector<std::string> best = Names(
      *emd.TopK(Dimension::kLocation, 10, RankDirection::kLeastUnfair));
  std::set<std::string> best_set(best.begin(), best.end());
  EXPECT_TRUE(best_set.count("Chicago, IL"));
  EXPECT_TRUE(best_set.count("San Francisco, CA"));
  size_t fair_overlap = 0;
  for (const char* city :
       {"Chicago, IL", "San Francisco, CA", "Washington, DC",
        "Los Angeles, CA", "Boston, MA", "Atlanta, GA", "Houston, TX",
        "Orlando, FL", "Philadelphia, PA", "San Diego, CA"}) {
    if (best_set.count(city)) ++fair_overlap;
  }
  EXPECT_GE(fair_overlap, 8u);
}

// --- Table 12 ---------------------------------------------------------------

TEST(GoldenShapesTest, Table12FemalesWorseOverallFlipCitiesReverse) {
  ComparisonResult result = *TaskRabbitWorld().exposure->CompareSetsByName(
      Dimension::kGroup, {"Asian Male", "Black Male", "White Male"},
      {"Asian Female", "Black Female", "White Female"}, Dimension::kLocation);
  EXPECT_LT(result.overall_d1, result.overall_d2);  // females less fair
  std::set<std::string> reversed;
  for (const ComparisonRow& row : result.reversed) {
    reversed.insert(TaskRabbitWorld().exposure->NameOf(Dimension::kLocation,
                                                       row.breakdown_id));
  }
  // The four calibrated flip cities that can flip under this formula.
  for (const char* city :
       {"Nashville, TN", "Charlotte, NC", "Norfolk, VA", "St. Louis, MO"}) {
    EXPECT_TRUE(reversed.count(city)) << city;
  }
}

// --- Tables 13/14/15 ---------------------------------------------------------

TEST(GoldenShapesTest, Table13WhiteReversesUnderEmd) {
  ComparisonResult result = *TaskRabbitWorld().emd->CompareByName(
      Dimension::kQuery, "Lawn Mowing", "Event Decorating", Dimension::kGroup);
  EXPECT_GT(result.overall_d1, result.overall_d2);  // LM less fair overall
  std::set<std::string> reversed_ethnicities;
  for (const ComparisonRow& row : result.reversed) {
    std::string name =
        TaskRabbitWorld().emd->NameOf(Dimension::kGroup, row.breakdown_id);
    if (name == "Asian" || name == "Black" || name == "White") {
      reversed_ethnicities.insert(name);
    }
  }
  EXPECT_EQ(reversed_ethnicities, (std::set<std::string>{"White"}));
}

TEST(GoldenShapesTest, Table14BlackReversesUnderExposure) {
  ComparisonResult result = *TaskRabbitWorld().exposure->CompareByName(
      Dimension::kQuery, "Lawn Mowing", "Event Decorating", Dimension::kGroup);
  std::set<std::string> reversed_ethnicities;
  for (const ComparisonRow& row : result.reversed) {
    std::string name = TaskRabbitWorld().exposure->NameOf(Dimension::kGroup,
                                                          row.breakdown_id);
    if (name == "Asian" || name == "Black" || name == "White") {
      reversed_ethnicities.insert(name);
    }
  }
  EXPECT_EQ(reversed_ethnicities, (std::set<std::string>{"Black"}));
}

TEST(GoldenShapesTest, Table15OrganizingSubJobsReverse) {
  const MarketWorld& world = TaskRabbitWorld();
  ComparisonResult result = *world.emd->CompareByName(
      Dimension::kLocation, "San Francisco Bay Area, CA", "Chicago, IL",
      Dimension::kQuery);
  EXPECT_LT(result.overall_d1, result.overall_d2);  // Bay Area fairer
  const std::vector<std::string>& cleaning =
      world.data->subjobs_by_category.at("General Cleaning");
  std::set<std::string> cleaning_set(cleaning.begin(), cleaning.end());
  std::set<std::string> reversed_cleaning;
  for (const ComparisonRow& row : result.reversed) {
    std::string name =
        world.emd->NameOf(Dimension::kQuery, row.breakdown_id);
    if (cleaning_set.count(name)) reversed_cleaning.insert(name);
  }
  EXPECT_EQ(reversed_cleaning,
            (std::set<std::string>{"Back To Organized", "Organize & Declutter",
                                   "Organize Closet"}));
}

// --- §5.2.2 Google quantification ---------------------------------------------

TEST(GoldenShapesTest, GoogleWhiteFemaleMostBlackMaleLeastKendall) {
  const SearchWorld& world = GoogleStudyWorld();
  std::vector<std::string> all = Names(
      *world.kendall_base->TopK(Dimension::kGroup, world.space->num_groups()));
  EXPECT_EQ(all.front(), "White Female");
  EXPECT_EQ(all.back(), "Black Male");
}

TEST(GoldenShapesTest, GoogleLocationAndQueryWinnersBothMeasures) {
  const SearchWorld& world = GoogleStudyWorld();
  for (const FBox* box : {world.kendall_base.get(), world.jaccard_base.get()}) {
    EXPECT_EQ(Names(*box->TopK(Dimension::kLocation, 1))[0], "London, UK");
    EXPECT_EQ(Names(*box->TopK(Dimension::kLocation, 1,
                               RankDirection::kLeastUnfair))[0],
              "Washington, DC");
    EXPECT_EQ(Names(*box->TopK(Dimension::kQuery, 1))[0], "yard work");
    EXPECT_EQ(Names(*box->TopK(Dimension::kQuery, 1,
                               RankDirection::kLeastUnfair))[0],
              "furniture assembly");
  }
}

// --- Tables 19/20 --------------------------------------------------------------

TEST(GoldenShapesTest, Table19BlackReversesUnderJaccard) {
  const SearchWorld& world = GoogleStudyWorld();
  ComparisonResult result = *world.jaccard_base->CompareByName(
      Dimension::kQuery, "run errand", "general cleaning", Dimension::kGroup);
  std::set<std::string> reversed_ethnicities;
  for (const ComparisonRow& row : result.reversed) {
    std::string name =
        world.jaccard_base->NameOf(Dimension::kGroup, row.breakdown_id);
    if (name == "Asian" || name == "Black" || name == "White") {
      reversed_ethnicities.insert(name);
    }
  }
  EXPECT_EQ(reversed_ethnicities, (std::set<std::string>{"Black"}));
}

TEST(GoldenShapesTest, Table20OfficeAndPrivateCleaningReverse) {
  const SearchWorld& world = GoogleStudyWorld();
  ComparisonResult result = *world.kendall_terms->CompareByName(
      Dimension::kLocation, "Boston, MA", "Bristol, UK", Dimension::kQuery);
  EXPECT_LT(result.overall_d1, result.overall_d2);  // Boston fairer overall
  std::set<std::string> reversed_terms;
  for (const ComparisonRow& row : result.reversed) {
    reversed_terms.insert(
        world.kendall_terms->NameOf(Dimension::kQuery, row.breakdown_id));
  }
  EXPECT_TRUE(reversed_terms.count("office cleaning jobs"));
  EXPECT_TRUE(reversed_terms.count("private cleaning jobs"));
}

// --- Setup-scale invariants ------------------------------------------------------

TEST(GoldenShapesTest, SetupScaleMatchesPaper) {
  const MarketWorld& market = TaskRabbitWorld();
  EXPECT_EQ(market.data->dataset.num_workers(), 3311u);
  EXPECT_EQ(market.data->queries_offered, 5361u);
  EXPECT_EQ(market.space->num_groups(), 11u);

  const SearchWorld& search = GoogleStudyWorld();
  EXPECT_EQ(search.world->dataset.num_users(), 18u);  // 6 cells × 3
  EXPECT_EQ(search.world->dataset.locations().size(), 11u);
}

}  // namespace
}  // namespace fairjob
