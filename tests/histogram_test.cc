#include "ranking/histogram.h"

#include <gtest/gtest.h>

namespace fairjob {
namespace {

TEST(HistogramTest, RejectsZeroBins) {
  EXPECT_FALSE(Histogram::Make(0, 0.0, 1.0).ok());
}

TEST(HistogramTest, RejectsInvertedRange) {
  EXPECT_FALSE(Histogram::Make(5, 1.0, 0.0).ok());
  EXPECT_FALSE(Histogram::Make(5, 1.0, 1.0).ok());
}

TEST(HistogramTest, CanonicalShape) {
  Histogram h = Histogram::Canonical();
  EXPECT_EQ(h.num_bins(), 10u);
  EXPECT_EQ(h.lo(), 0.0);
  EXPECT_EQ(h.hi(), 1.0);
  EXPECT_TRUE(h.empty());
}

TEST(HistogramTest, BinAssignment) {
  Histogram h = Histogram::Canonical();
  EXPECT_EQ(h.BinOf(0.0), 0u);
  EXPECT_EQ(h.BinOf(0.05), 0u);
  EXPECT_EQ(h.BinOf(0.15), 1u);
  EXPECT_EQ(h.BinOf(0.95), 9u);
  EXPECT_EQ(h.BinOf(1.0), 9u);
}

TEST(HistogramTest, OutOfRangeValuesClampToBoundaryBins) {
  Histogram h = Histogram::Canonical();
  EXPECT_EQ(h.BinOf(-3.0), 0u);
  EXPECT_EQ(h.BinOf(7.0), 9u);
}

TEST(HistogramTest, BinBoundaryGoesToUpperBin) {
  // 0.1 is exactly on the 0/1 boundary; half-open bins put it in bin 1.
  Histogram h = Histogram::Canonical();
  EXPECT_EQ(h.BinOf(0.1), 1u);
  EXPECT_EQ(h.BinOf(0.2), 2u);
}

TEST(HistogramTest, AddAccumulates) {
  Histogram h = Histogram::Canonical();
  h.AddAll({0.05, 0.07, 0.95});
  EXPECT_EQ(h.total(), 3.0);
  EXPECT_EQ(h.count(0), 2.0);
  EXPECT_EQ(h.count(9), 1.0);
  EXPECT_FALSE(h.empty());
}

TEST(HistogramTest, NormalizedSumsToOne) {
  Histogram h = Histogram::Canonical();
  h.AddAll({0.1, 0.2, 0.3, 0.9});
  std::vector<double> n = h.Normalized();
  double sum = 0.0;
  for (double v : n) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(n[1], 0.25);
}

TEST(HistogramTest, NormalizedOfEmptyIsAllZero) {
  Histogram h = Histogram::Canonical();
  for (double v : h.Normalized()) EXPECT_EQ(v, 0.0);
}

TEST(HistogramTest, NonUnitRange) {
  Result<Histogram> h = Histogram::Make(4, -2.0, 2.0);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->BinOf(-2.0), 0u);
  EXPECT_EQ(h->BinOf(-0.5), 1u);
  EXPECT_EQ(h->BinOf(0.5), 2u);
  EXPECT_EQ(h->BinOf(1.9), 3u);
}

TEST(HistogramTest, SingleBinTakesEverything) {
  Result<Histogram> h = Histogram::Make(1, 0.0, 1.0);
  ASSERT_TRUE(h.ok());
  h->AddAll({0.0, 0.5, 1.0});
  EXPECT_EQ(h->count(0), 3.0);
}

}  // namespace
}  // namespace fairjob
