#include "search/google_sim.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "search/formulations.h"

namespace fairjob {
namespace {

TEST(FormulationsTest, KnownQueriesUsePaperTerms) {
  std::vector<std::string> terms = ExpandFormulations("general cleaning", 5);
  ASSERT_EQ(terms.size(), 5u);
  EXPECT_EQ(terms[1], "office cleaning jobs");
  EXPECT_EQ(terms[2], "private cleaning jobs");
}

TEST(FormulationsTest, UnknownQueriesUseTemplates) {
  std::vector<std::string> terms = ExpandFormulations("dog walking", 5);
  ASSERT_EQ(terms.size(), 5u);
  EXPECT_EQ(terms[0], "dog walking jobs");
  std::set<std::string> unique(terms.begin(), terms.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(FormulationsTest, RespectsRequestedCount) {
  EXPECT_EQ(ExpandFormulations("yard work", 3).size(), 3u);
  EXPECT_EQ(ExpandFormulations("yard work", 8).size(), 8u);
}

TEST(PersonalizationTest, IntensityBounds) {
  AttributeSchema schema = GoogleSchema();
  PersonalizationModel model =
      *PersonalizationModel::Make(schema, SearchCalibration::PaperDefaults());
  for (ValueId e = 0; e < 3; ++e) {
    for (ValueId g = 0; g < 2; ++g) {
      double theta = model.Intensity({e, g}, "yard work", "yard work",
                                     "yard work jobs", "London, UK");
      EXPECT_GE(theta, 0.0);
      EXPECT_LE(theta, 1.0);
    }
  }
}

TEST(PersonalizationTest, WhiteFemaleMostIntenseBlackMaleLeast) {
  AttributeSchema schema = GoogleSchema();
  PersonalizationModel model =
      *PersonalizationModel::Make(schema, SearchCalibration::PaperDefaults());
  // ethnicity ids: Asian=0, Black=1, White=2; gender: Male=0, Female=1.
  double wf = model.Intensity({2, 1}, "moving job", "moving job", "t",
                              "Boston, MA");
  double bm = model.Intensity({1, 0}, "moving job", "moving job", "t",
                              "Boston, MA");
  double am = model.Intensity({0, 0}, "moving job", "moving job", "t",
                              "Boston, MA");
  EXPECT_GT(wf, am);
  EXPECT_GT(am, bm);
}

TEST(PersonalizationTest, LocationSeverityScales) {
  AttributeSchema schema = GoogleSchema();
  PersonalizationModel model =
      *PersonalizationModel::Make(schema, SearchCalibration::PaperDefaults());
  double london = model.Intensity({2, 1}, "moving job", "moving job", "t",
                                  "London, UK");
  double dc = model.Intensity({2, 1}, "moving job", "moving job", "t",
                              "Washington, DC");
  EXPECT_GT(london, 5.0 * dc);
}

TEST(PersonalizationTest, GenderFlipLocations) {
  AttributeSchema schema = GoogleSchema();
  PersonalizationModel model =
      *PersonalizationModel::Make(schema, SearchCalibration::PaperDefaults());
  double f_normal = model.Intensity({1, 1}, "moving job", "moving job", "t",
                                    "Boston, MA");
  double m_normal = model.Intensity({1, 0}, "moving job", "moving job", "t",
                                    "Boston, MA");
  EXPECT_GT(f_normal, m_normal);
  double f_flip = model.Intensity({1, 1}, "moving job", "moving job", "t",
                                  "Detroit, MI");
  double m_flip = model.Intensity({1, 0}, "moving job", "moving job", "t",
                                  "Detroit, MI");
  EXPECT_LT(f_flip, m_flip);
}

TEST(PersonalizationTest, MissingValuesRejected) {
  AttributeSchema schema;
  ASSERT_TRUE(schema.AddAttribute("ethnicity", {"Asian", "Blue"}).ok());
  ASSERT_TRUE(schema.AddAttribute("gender", {"Male", "Female"}).ok());
  EXPECT_FALSE(
      PersonalizationModel::Make(schema, SearchCalibration::PaperDefaults())
          .ok());
}

class SearchEngineTest : public ::testing::Test {
 protected:
  SearchEngineTest()
      : engine_(*PersonalizationModel::Make(
                    schema_, SearchCalibration::PaperDefaults()),
                EngineConfig()) {}

  static SimulatedSearchEngine::Config EngineConfig() {
    SimulatedSearchEngine::Config config;
    config.seed = 11;
    return config;
  }

  SimulatedSearchEngine::Request Request(const std::string& user,
                                         Demographics demo,
                                         const std::string& location,
                                         const std::string& proxy) {
    SimulatedSearchEngine::Request r;
    r.user = user;
    r.demographics = std::move(demo);
    r.base_query = "general cleaning";
    r.category = "general cleaning";
    r.term = "office cleaning jobs";
    r.location = location;
    r.proxy_location = proxy;
    return r;
  }

  AttributeSchema schema_ = GoogleSchema();
  SimulatedSearchEngine engine_;
};

TEST_F(SearchEngineTest, CanonicalResultsDeterministicAndSized) {
  std::vector<std::string> a =
      engine_.CanonicalResults("general cleaning", "t1", "Boston, MA");
  std::vector<std::string> b =
      engine_.CanonicalResults("general cleaning", "t1", "Boston, MA");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), engine_.config().result_size);
  std::set<std::string> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
}

TEST_F(SearchEngineTest, FormulationsReturnSimilarButNotIdenticalLists) {
  std::vector<std::string> t1 =
      engine_.CanonicalResults("general cleaning", "t1", "Boston, MA");
  std::vector<std::string> t2 =
      engine_.CanonicalResults("general cleaning", "t2", "Boston, MA");
  std::set<std::string> s1(t1.begin(), t1.end());
  std::set<std::string> s2(t2.begin(), t2.end());
  EXPECT_EQ(s1, s2);   // same result *set* (term variation only reorders)
  EXPECT_NE(t1, t2);   // different order
}

TEST_F(SearchEngineTest, PersonalizationIsStablePerUser) {
  // Two well-spaced searches by the same user agree (no carry-over window,
  // no A/B hit is guaranteed only statistically — use a quiet config).
  SimulatedSearchEngine::Config config = EngineConfig();
  config.ab_test_rate = 0.0;
  SimulatedSearchEngine engine(
      *PersonalizationModel::Make(schema_, SearchCalibration::PaperDefaults()),
      config);
  auto req = Request("u1", {2, 1}, "London, UK", "London, UK");
  std::vector<std::string> first = engine.Search(req, 0);
  std::vector<std::string> second = engine.Search(req, 100000);
  EXPECT_EQ(first, second);
}

TEST_F(SearchEngineTest, HighIntensityUsersDivergeMoreThanLowIntensity) {
  SimulatedSearchEngine::Config config = EngineConfig();
  config.ab_test_rate = 0.0;
  SimulatedSearchEngine engine(
      *PersonalizationModel::Make(schema_, SearchCalibration::PaperDefaults()),
      config);
  // "moving job" carries no ethnicity-query interaction terms, so θ is
  // driven purely by cell × location: White Female in London (θ ≈ 0.48)
  // vs Black Male in Washington DC (θ ≈ 0.01).
  auto wf = Request("wf", {2, 1}, "London, UK", "London, UK");
  wf.base_query = wf.category = "moving job";
  wf.term = "moving job jobs";
  auto bm = Request("bm", {1, 0}, "Washington, DC", "Washington, DC");
  bm.base_query = bm.category = "moving job";
  bm.term = "moving job jobs";
  auto changed_vs_canonical = [&](const SimulatedSearchEngine::Request& req) {
    std::vector<std::string> canonical =
        engine.CanonicalResults(req.base_query, req.term, req.location);
    std::vector<std::string> list = engine.Search(req, 0);
    size_t changed = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] != canonical[i]) ++changed;
    }
    return changed;
  };
  EXPECT_GT(changed_vs_canonical(wf), changed_vs_canonical(bm));
}

TEST_F(SearchEngineTest, CarryOverContaminatesCloseQueries) {
  SimulatedSearchEngine::Config config = EngineConfig();
  config.ab_test_rate = 0.0;
  config.carry_over_rate = 1.0;
  SimulatedSearchEngine engine(
      *PersonalizationModel::Make(schema_, SearchCalibration::PaperDefaults()),
      config);
  auto req1 = Request("u1", {2, 1}, "London, UK", "London, UK");
  req1.base_query = "yard work";
  req1.category = "yard work";
  req1.term = "yard work jobs";
  engine.Search(req1, 0);
  // Same user, different query 10 seconds later: carry-over window active.
  auto req2 = Request("u1", {2, 1}, "London, UK", "London, UK");
  std::vector<std::string> contaminated = engine.Search(req2, 10);
  bool has_yard_doc = false;
  for (const std::string& doc : contaminated) {
    if (doc.find("yard work") != std::string::npos) has_yard_doc = true;
  }
  EXPECT_TRUE(has_yard_doc);
}

TEST_F(SearchEngineTest, SpacedQueriesAvoidCarryOver) {
  SimulatedSearchEngine::Config config = EngineConfig();
  config.ab_test_rate = 0.0;
  config.carry_over_rate = 1.0;
  SimulatedSearchEngine engine(
      *PersonalizationModel::Make(schema_, SearchCalibration::PaperDefaults()),
      config);
  auto req1 = Request("u1", {2, 1}, "London, UK", "London, UK");
  req1.base_query = "yard work";
  req1.category = "yard work";
  req1.term = "yard work jobs";
  engine.Search(req1, 0);
  auto req2 = Request("u1", {2, 1}, "London, UK", "London, UK");
  std::vector<std::string> clean = engine.Search(req2, 720);  // 12 min later
  for (const std::string& doc : clean) {
    EXPECT_EQ(doc.find("yard work"), std::string::npos) << doc;
  }
}

TEST_F(SearchEngineTest, GeoMismatchLeaksProxyResults) {
  SimulatedSearchEngine::Config config = EngineConfig();
  config.ab_test_rate = 0.0;
  config.geo_mismatch_rate = 1.0;
  SimulatedSearchEngine engine(
      *PersonalizationModel::Make(schema_, SearchCalibration::PaperDefaults()),
      config);
  auto req = Request("u1", {1, 0}, "London, UK", "Boston, MA");
  std::vector<std::string> leaked = engine.Search(req, 0);
  bool has_boston_doc = false;
  for (const std::string& doc : leaked) {
    if (doc.find("Boston") != std::string::npos) has_boston_doc = true;
  }
  EXPECT_TRUE(has_boston_doc);
}

TEST(StudyRunnerTest, ValidatesInput) {
  AttributeSchema schema = GoogleSchema();
  SimulatedSearchEngine engine(
      *PersonalizationModel::Make(schema, SearchCalibration::PaperDefaults()),
      {});
  VirtualClock clock;
  StudyRunner runner(&engine, &clock, {});
  EXPECT_FALSE(runner.Run({}, {{"u", {0, 0}}}).ok());
  StudyTask task{"q", "q", "Boston, MA", {"t"}};
  EXPECT_FALSE(runner.Run({task}, {}).ok());
  StudyTask no_terms{"q", "q", "Boston, MA", {}};
  EXPECT_FALSE(runner.Run({no_terms}, {{"u", {0, 0}}}).ok());
}

TEST(StudyRunnerTest, ProducesOneRunPerUserTermPair) {
  AttributeSchema schema = GoogleSchema();
  SimulatedSearchEngine engine(
      *PersonalizationModel::Make(schema, SearchCalibration::PaperDefaults()),
      {});
  VirtualClock clock;
  StudyRunner runner(&engine, &clock, {});
  StudyTask task{"general cleaning", "general cleaning", "Boston, MA",
                 {"office cleaning jobs", "private cleaning jobs"}};
  std::vector<Participant> users = {{"u1", {0, 0}}, {"u2", {2, 1}}};
  Result<StudyOutcome> outcome = runner.Run({task}, users);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->runs.size(), 4u);
  EXPECT_EQ(outcome->user_demographics.size(), 2u);
  EXPECT_EQ(outcome->base_query_of_term.at("office cleaning jobs"),
            "general cleaning");
  for (const SearchRunRecord& run : outcome->runs) {
    EXPECT_FALSE(run.results.empty());
    EXPECT_EQ(run.location, "Boston, MA");
  }
}

TEST(GoogleStudyTasksTest, ReproducesTable7Placement) {
  std::vector<StudyTask> tasks = GoogleStudyTasks();
  std::map<std::string, int> locations_per_job;
  std::set<std::string> locations;
  for (const StudyTask& t : tasks) {
    ++locations_per_job[t.base_query];
    locations.insert(t.location);
    EXPECT_EQ(t.terms.size(), 5u);
  }
  EXPECT_EQ(locations_per_job["yard work"], 4);
  EXPECT_EQ(locations_per_job["general cleaning"], 3);
  EXPECT_EQ(locations_per_job["event staffing"], 1);
  EXPECT_EQ(locations_per_job["moving job"], 1);
  EXPECT_EQ(locations_per_job["run errand"], 1);
  EXPECT_EQ(locations_per_job["furniture assembly"], 1);
  EXPECT_EQ(locations.size(), 11u);
  // Every study city hosts exactly two jobs (the paper's ~20 queries over
  // 10 locations).
  std::map<std::string, int> jobs_per_location;
  for (const StudyTask& t : tasks) ++jobs_per_location[t.location];
  for (const auto& [loc, count] : jobs_per_location) {
    EXPECT_EQ(count, 2) << loc;
  }
}

TEST(GoogleStudyTest, BuildsAssembledDataset) {
  GoogleStudyConfig config;
  config.users_per_cell = 1;       // keep the test fast
  config.formulations_per_query = 2;
  Result<GoogleWorld> world = BuildGoogleStudy(config);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->dataset.num_users(), 6u);
  // 11 base queries × 2 formulations = 22 distinct terms.
  EXPECT_EQ(world->dataset.queries().size(), 22u);
  EXPECT_EQ(world->dataset.locations().size(), 11u);
  // Observation cells: each term observed only at its task's locations.
  EXPECT_EQ(world->dataset.num_observation_cells(),
            world->tasks.size() * 2u);
  EXPECT_EQ(world->base_query_of_term.size(), 22u);
  EXPECT_EQ(world->dataset_by_base_query.queries().size(), 11u);
}

TEST(GoogleStudyTest, DeterministicAcrossRebuilds) {
  GoogleStudyConfig config;
  config.users_per_cell = 1;
  config.formulations_per_query = 2;
  GoogleWorld a = *BuildGoogleStudy(config);
  GoogleWorld b = *BuildGoogleStudy(config);
  QueryId q = *a.dataset.queries().Find("office cleaning jobs");
  LocationId l = *a.dataset.locations().Find("Boston, MA");
  const auto* oa = a.dataset.GetObservations(q, l);
  const auto* ob = b.dataset.GetObservations(
      *b.dataset.queries().Find("office cleaning jobs"),
      *b.dataset.locations().Find("Boston, MA"));
  ASSERT_NE(oa, nullptr);
  ASSERT_NE(ob, nullptr);
  ASSERT_EQ(oa->size(), ob->size());
  for (size_t i = 0; i < oa->size(); ++i) {
    EXPECT_EQ((*oa)[i].results, (*ob)[i].results);
  }
}

}  // namespace
}  // namespace fairjob
