#include "core/stats.h"

#include <gtest/gtest.h>

#include <memory>

namespace fairjob {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cube_ = std::make_unique<UnfairnessCube>(
        *UnfairnessCube::Make({0, 1}, {0, 1, 2, 3, 4, 5, 6, 7},
                              {0, 1, 2, 3, 4}));
    Rng rng(7);
    for (size_t q = 0; q < 8; ++q) {
      for (size_t l = 0; l < 5; ++l) {
        // Group 0 around 0.6, group 1 around 0.3, small per-cell jitter.
        cube_->Set(0, q, l, 0.6 + 0.05 * (rng.NextDouble() - 0.5));
        cube_->Set(1, q, l, 0.3 + 0.05 * (rng.NextDouble() - 0.5));
      }
    }
  }

  std::unique_ptr<UnfairnessCube> cube_;
};

TEST_F(StatsTest, BootstrapPointMatchesPlainAggregate) {
  Rng rng(1);
  Result<ConfidenceInterval> ci = BootstrapAggregate(
      *cube_, Dimension::kGroup, 0, {}, {}, 500, 0.95, &rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(ci->point, *cube_->AxisAverage(Dimension::kGroup, 0), 1e-12);
  EXPECT_EQ(ci->cells, 40u);
  EXPECT_EQ(ci->resamples, 500u);
}

TEST_F(StatsTest, IntervalContainsPointAndIsTight) {
  Rng rng(2);
  ConfidenceInterval ci = *BootstrapAggregate(*cube_, Dimension::kGroup, 0, {},
                                              {}, 1000, 0.95, &rng);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  // Jitter is ±0.025: the CI of the mean over 40 cells is a few thousandths.
  EXPECT_LT(ci.hi - ci.lo, 0.05);
  EXPECT_GT(ci.hi - ci.lo, 0.0);
}

TEST_F(StatsTest, DisjointGroupsHaveDisjointIntervals) {
  Rng rng(3);
  ConfidenceInterval a = *BootstrapAggregate(*cube_, Dimension::kGroup, 0, {},
                                             {}, 500, 0.99, &rng);
  ConfidenceInterval b = *BootstrapAggregate(*cube_, Dimension::kGroup, 1, {},
                                             {}, 500, 0.99, &rng);
  EXPECT_GT(a.lo, b.hi);  // 0.6-group entirely above 0.3-group
}

TEST_F(StatsTest, BootstrapIsDeterministicGivenSeed) {
  Rng rng1(9);
  Rng rng2(9);
  ConfidenceInterval a = *BootstrapAggregate(*cube_, Dimension::kGroup, 0, {},
                                             {}, 200, 0.9, &rng1);
  ConfidenceInterval b = *BootstrapAggregate(*cube_, Dimension::kGroup, 0, {},
                                             {}, 200, 0.9, &rng2);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST_F(StatsTest, BootstrapRespectsSelectors) {
  Rng rng(4);
  ConfidenceInterval ci = *BootstrapAggregate(
      *cube_, Dimension::kGroup, 0, AxisSelector{{0, 1}}, AxisSelector{{2}},
      300, 0.95, &rng);
  EXPECT_EQ(ci.cells, 2u);
}

TEST_F(StatsTest, BootstrapValidation) {
  Rng rng(5);
  EXPECT_FALSE(
      BootstrapAggregate(*cube_, Dimension::kGroup, 9, {}, {}, 100, 0.95, &rng)
          .ok());
  EXPECT_FALSE(
      BootstrapAggregate(*cube_, Dimension::kGroup, 0, {}, {}, 0, 0.95, &rng)
          .ok());
  EXPECT_FALSE(
      BootstrapAggregate(*cube_, Dimension::kGroup, 0, {}, {}, 100, 1.5, &rng)
          .ok());
}

TEST_F(StatsTest, BootstrapOnEmptySliceIsNotFound) {
  UnfairnessCube empty = *UnfairnessCube::Make({0}, {0}, {0});
  Rng rng(6);
  Result<ConfidenceInterval> ci =
      BootstrapAggregate(empty, Dimension::kGroup, 0, {}, {}, 100, 0.95, &rng);
  ASSERT_FALSE(ci.ok());
  EXPECT_EQ(ci.status().code(), StatusCode::kNotFound);
}

TEST_F(StatsTest, PermutationTestDetectsSystematicGap) {
  Rng rng(11);
  Result<PermutationTestResult> test = PairedPermutationTest(
      *cube_, Dimension::kGroup, 0, 1, {}, {}, 2000, &rng);
  ASSERT_TRUE(test.ok());
  EXPECT_NEAR(test->observed_diff, 0.3, 0.03);
  EXPECT_EQ(test->pairs, 40u);
  // 2^40 sign patterns; nothing comes close to the observed gap.
  EXPECT_LT(test->p_value, 0.01);
}

TEST_F(StatsTest, PermutationTestNullWhenNoDifference) {
  // Two groups drawn from the same distribution.
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0, 1, 2, 3, 4, 5, 6, 7},
                                              {0, 1, 2, 3});
  Rng data_rng(13);
  for (size_t q = 0; q < 8; ++q) {
    for (size_t l = 0; l < 4; ++l) {
      cube.Set(0, q, l, data_rng.NextDouble());
      cube.Set(1, q, l, data_rng.NextDouble());
    }
  }
  Rng rng(14);
  PermutationTestResult test = *PairedPermutationTest(
      cube, Dimension::kGroup, 0, 1, {}, {}, 2000, &rng);
  EXPECT_GT(test.p_value, 0.05);
}

TEST_F(StatsTest, PermutationPairsOnlyCoverSharedCells) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0, 1, 2}, {0});
  cube.Set(0, 0, 0, 0.5);
  cube.Set(1, 0, 0, 0.4);
  cube.Set(0, 1, 0, 0.6);  // group 1 missing here
  cube.Set(1, 2, 0, 0.3);  // group 0 missing here
  Rng rng(15);
  Result<PermutationTestResult> test =
      PairedPermutationTest(cube, Dimension::kGroup, 0, 1, {}, {}, 100, &rng);
  // Only one shared cell -> FailedPrecondition.
  ASSERT_FALSE(test.ok());
  EXPECT_EQ(test.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(StatsTest, SignificantComparisonAnnotatesRows) {
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.r1_pos = 0;
  request.r2_pos = 1;
  request.breakdown_dim = Dimension::kQuery;
  Rng rng(21);
  Result<SignificantComparisonResult> result =
      SolveComparisonWithSignificance(*cube_, request, 1000, &rng);
  ASSERT_TRUE(result.ok());
  // Systematic 0.3 gap: overall and every per-query row are significant.
  EXPECT_LT(result->overall_p_value, 0.01);
  ASSERT_EQ(result->rows.size(), result->base.rows.size());
  for (const SignificantComparisonRow& row : result->rows) {
    EXPECT_EQ(row.pairs, 5u);  // 5 locations per query
    // With 5 pairs the sign-flip test has 2^5 patterns, so the attainable
    // two-sided floor is 2/32 = 0.0625 (±Monte-Carlo noise): expect the
    // rows to sit at that floor, not below an unreachable 0.05.
    EXPECT_LT(row.p_value, 0.08);
  }
  // The plain comparison part matches SolveComparison exactly.
  ComparisonResult plain = *SolveComparison(*cube_, request);
  EXPECT_DOUBLE_EQ(result->base.overall_d1, plain.overall_d1);
  EXPECT_EQ(result->base.reversed.size(), plain.reversed.size());
}

TEST_F(StatsTest, SignificantComparisonNullGapHasHighP) {
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0, 1, 2, 3, 4, 5},
                                              {0, 1, 2, 3, 4});
  Rng data_rng(22);
  for (size_t q = 0; q < 6; ++q) {
    for (size_t l = 0; l < 5; ++l) {
      cube.Set(0, q, l, data_rng.NextDouble());
      cube.Set(1, q, l, data_rng.NextDouble());
    }
  }
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.r1_pos = 0;
  request.r2_pos = 1;
  request.breakdown_dim = Dimension::kLocation;
  Rng rng(23);
  SignificantComparisonResult result =
      *SolveComparisonWithSignificance(cube, request, 1000, &rng);
  EXPECT_GT(result.overall_p_value, 0.05);
}

TEST_F(StatsTest, SignificantComparisonRejectsSets) {
  ComparisonRequest request;
  request.compare_dim = Dimension::kGroup;
  request.r1_set = {0};
  request.r2_set = {1};
  Rng rng(24);
  EXPECT_FALSE(
      SolveComparisonWithSignificance(*cube_, request, 100, &rng).ok());
}

TEST_F(StatsTest, PermutationValidation) {
  Rng rng(16);
  EXPECT_FALSE(
      PairedPermutationTest(*cube_, Dimension::kGroup, 0, 0, {}, {}, 100, &rng)
          .ok());
  EXPECT_FALSE(
      PairedPermutationTest(*cube_, Dimension::kGroup, 0, 1, {}, {}, 0, &rng)
          .ok());
  EXPECT_FALSE(
      PairedPermutationTest(*cube_, Dimension::kGroup, 0, 9, {}, {}, 100, &rng)
          .ok());
}


TEST_F(StatsTest, RankWithStabilitySeparatesDistantGroups) {
  Rng rng(31);
  std::vector<StableRankEntry> ranking =
      *RankWithStability(*cube_, Dimension::kGroup, 5, 400, 0.95, &rng);
  ASSERT_EQ(ranking.size(), 2u);  // only two groups exist
  EXPECT_EQ(ranking[0].id, 0);    // the 0.6-group leads
  EXPECT_NEAR(ranking[0].value, 0.6, 0.01);
  // 0.6 vs 0.3 with tiny jitter: clearly separated.
  EXPECT_TRUE(ranking[0].separated_from_next);
  EXPECT_FALSE(ranking[1].separated_from_next);  // last entry
}

TEST_F(StatsTest, RankWithStabilityFlagsOverlappingRanks) {
  // Two groups with identical distributions: CIs overlap, no separation.
  UnfairnessCube cube = *UnfairnessCube::Make({0, 1}, {0, 1, 2, 3}, {0, 1});
  Rng data_rng(32);
  for (size_t q = 0; q < 4; ++q) {
    for (size_t l = 0; l < 2; ++l) {
      cube.Set(0, q, l, 0.5 + 0.2 * (data_rng.NextDouble() - 0.5));
      cube.Set(1, q, l, 0.5 + 0.2 * (data_rng.NextDouble() - 0.5));
    }
  }
  Rng rng(33);
  std::vector<StableRankEntry> ranking =
      *RankWithStability(cube, Dimension::kGroup, 2, 400, 0.95, &rng);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_FALSE(ranking[0].separated_from_next);
}

TEST_F(StatsTest, RankWithStabilityValidates) {
  Rng rng(34);
  EXPECT_FALSE(
      RankWithStability(*cube_, Dimension::kGroup, 0, 100, 0.95, &rng).ok());
  EXPECT_FALSE(
      RankWithStability(*cube_, Dimension::kGroup, 2, 0, 0.95, &rng).ok());
}

}  // namespace
}  // namespace fairjob
