// Incremental maintenance vs full rebuild: after one (query, location)
// ranking changes, RefreshMarketplaceColumn + IndexSet::RefreshColumn
// should beat rebuilding the whole cube + index by roughly the number of
// columns. Sweeps the dataset scale.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/indices.h"
#include "core/unfairness_cube.h"
#include "market/taskrabbit_sim.h"

namespace fairjob {
namespace {

struct World {
  std::unique_ptr<TaskRabbitDataset> data;
  std::unique_ptr<GroupSpace> space;
};

World MakeWorld(size_t cities, size_t subjobs_per_category) {
  TaskRabbitConfig config;
  config.num_workers = cities * 60;
  config.max_cities = cities;
  config.max_subjobs_per_category = subjobs_per_category;
  config.target_query_count = 1 << 20;
  World world;
  world.data = std::make_unique<TaskRabbitDataset>(
      std::move(BuildTaskRabbitDataset(config)).value());
  world.space = std::make_unique<GroupSpace>(
      GroupSpace::Enumerate(world.data->dataset.schema()).value());
  return world;
}

void BM_FullRebuild(benchmark::State& state) {
  World world = MakeWorld(static_cast<size_t>(state.range(0)),
                          static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    auto cube = BuildMarketplaceCube(world.data->dataset, *world.space,
                                     MarketMeasure::kEmd);
    IndexSet indices = IndexSet::Build(*cube);
    benchmark::DoNotOptimize(indices);
  }
}

void BM_ColumnRefresh(benchmark::State& state) {
  World world = MakeWorld(static_cast<size_t>(state.range(0)),
                          static_cast<size_t>(state.range(1)));
  UnfairnessCube cube = BuildMarketplaceCube(world.data->dataset, *world.space,
                                             MarketMeasure::kEmd)
                            .value();
  IndexSet indices = IndexSet::Build(cube);
  size_t q = 0;
  for (auto _ : state) {
    Status s = RefreshMarketplaceColumn(world.data->dataset, *world.space,
                                        MarketMeasure::kEmd, {}, &cube,
                                        q % cube.axis_size(Dimension::kQuery),
                                        0);
    benchmark::DoNotOptimize(s);
    indices.RefreshColumn(cube, q % cube.axis_size(Dimension::kQuery), 0);
    ++q;
  }
}

}  // namespace
}  // namespace fairjob

BENCHMARK(fairjob::BM_FullRebuild)
    ->Args({4, 2})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(fairjob::BM_ColumnRefresh)
    ->Args({4, 2})
    ->Args({8, 4})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
