// Reproduces Table 15: San Francisco Bay Area vs Chicago on TaskRabbit
// (EMD), broken down by General Cleaning sub-jobs. The Bay Area is fairer
// overall, but the trend inverts for the organizing sub-jobs.
//
// Shape reproduced: reversal rows = Back To Organized, Organize & Declutter,
// Organize Closet.

#include <set>

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void Run() {
  PrintTitle(
      "Table 15 — SF Bay Area vs Chicago across General Cleaning sub-jobs "
      "(EMD)");
  PrintPaperNote(
      "overall: 0.213 vs 0.233 (Bay Area fairer); reversed: Back To "
      "Organized, Organize & Declutter, Organize Closet");

  TaskRabbitBoxes boxes = OrDie(BuildTaskRabbitBoxes(), "TaskRabbit build");
  const FBox& box = *boxes.emd;
  ComparisonResult result = OrDie(
      box.CompareByName(Dimension::kLocation, "San Francisco Bay Area, CA",
                        "Chicago, IL", Dimension::kQuery),
      "comparison");

  const std::vector<std::string>& cleaning =
      boxes.data->subjobs_by_category.at("General Cleaning");
  std::set<std::string> cleaning_set(cleaning.begin(), cleaning.end());

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"All", Fmt(result.overall_d1), Fmt(result.overall_d2), ""});
  size_t cleaning_reversals = 0;
  for (const ComparisonRow& row : result.rows) {
    std::string name = box.NameOf(Dimension::kQuery, row.breakdown_id);
    if (cleaning_set.count(name) == 0) continue;
    if (row.reversed) ++cleaning_reversals;
    rows.push_back(
        {name, Fmt(row.d1), Fmt(row.d2), row.reversed ? "REVERSED" : ""});
  }
  PrintTable({"Location-comparison", "SF Bay Area, CA", "Chicago, IL", ""},
             rows);
  std::printf("reversed General Cleaning sub-jobs: %zu of %zu\n",
              cleaning_reversals, cleaning.size());
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
