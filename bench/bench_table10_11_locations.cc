// Reproduces Tables 10 and 11: the 10 least and 10 most fair TaskRabbit
// locations under EMD and Exposure, via location-fairness quantification
// (Problem 1, Fagin TA over the location-based indices).
//
// Shape reproduced: Birmingham UK and Oklahoma City OK least fair; Chicago
// and San Francisco fairest.

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void PrintDirection(const TaskRabbitBoxes& boxes, RankDirection direction,
                    const char* title) {
  PrintTitle(title);
  std::vector<FBox::NamedAnswer> emd =
      OrDie(boxes.emd->TopK(Dimension::kLocation, 10, direction), "EMD");
  std::vector<FBox::NamedAnswer> exposure = OrDie(
      boxes.exposure->TopK(Dimension::kLocation, 10, direction), "Exposure");
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < emd.size(); ++i) {
    rows.push_back({emd[i].name, Fmt(emd[i].value), exposure[i].name,
                    Fmt(exposure[i].value)});
  }
  PrintTable({"City (by EMD)", "EMD", "City (by Exposure)", "Exposure"}, rows);
}

void Run() {
  TaskRabbitBoxes boxes = OrDie(BuildTaskRabbitBoxes(), "TaskRabbit build");
  PrintPaperNote(
      "Table 10: Birmingham, UK and Oklahoma City, OK least fair; "
      "Table 11: Chicago, IL and San Francisco, CA fairest");
  PrintDirection(boxes, RankDirection::kMostUnfair,
                 "Table 10 — 10 unfairest locations");
  PrintDirection(boxes, RankDirection::kLeastUnfair,
                 "Table 11 — 10 fairest locations");
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
