// Reproduces the §5.2.1 drill-down results: the fairest/unfairest location
// for selected jobs, and the fairest/unfairest job for selected locations —
// quantification with restricted aggregation subsets.
//
// Shape reproduced: severe cities (Birmingham, UK) surface as the unfairest
// location for Handyman and Run Errands; calibration-fair cities (the
// Bay Area, Boston) as the fairest; Delivery / Furniture Assembly come out
// as the fairest categories inside individual cities, Yard-Work-like
// categories as the unfairest.

#include <algorithm>

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void LocationExtremesForJob(const TaskRabbitBoxes& boxes,
                            const std::string& category) {
  const FBox& box = *boxes.emd;
  std::vector<size_t> query_positions =
      OrDie(box.PositionsOf(Dimension::kQuery,
                            boxes.data->subjobs_by_category.at(category)),
            "category positions");
  QuantificationRequest request;
  request.target = Dimension::kLocation;
  request.k = 3;
  request.agg2 = AxisSelector{query_positions};  // (group, query) aggregated
  request.direction = RankDirection::kLeastUnfair;
  QuantificationResult fairest = OrDie(box.Quantify(request), "fairest");
  request.direction = RankDirection::kMostUnfair;
  QuantificationResult unfairest = OrDie(box.Quantify(request), "unfairest");
  auto names = [&](const QuantificationResult& result) {
    std::string out;
    for (const auto& a : result.answers) {
      out += box.NameOf(Dimension::kLocation, a.id) + " (" +
             Fmt(a.value) + ")  ";
    }
    return out;
  };
  std::printf("%s\n  fairest-3:   %s\n  unfairest-3: %s\n", category.c_str(),
              names(fairest).c_str(), names(unfairest).c_str());
}

void JobExtremesForLocation(const TaskRabbitBoxes& boxes,
                            const std::string& city) {
  const FBox& box = *boxes.emd;
  size_t city_pos = OrDie(box.PosOf(Dimension::kLocation, city), "city");
  std::vector<std::pair<std::string, double>> values;
  for (const auto& [category, subjobs] : boxes.data->subjobs_by_category) {
    std::vector<size_t> positions =
        OrDie(box.PositionsOf(Dimension::kQuery, subjobs), "positions");
    std::optional<double> avg =
        box.cube().Average(AxisSelector::All(), AxisSelector{positions},
                           AxisSelector::Single(city_pos));
    if (avg.has_value()) values.emplace_back(category, *avg);
  }
  auto [min_it, max_it] = std::minmax_element(
      values.begin(), values.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  std::printf("%-28s fairest: %-20s (%.3f)   unfairest: %-18s (%.3f)\n",
              city.c_str(), min_it->first.c_str(), min_it->second,
              max_it->first.c_str(), max_it->second);
}

void Run() {
  TaskRabbitBoxes boxes = OrDie(BuildTaskRabbitBoxes(), "TaskRabbit build");

  PrintTitle("§5.2.1 — fairest / unfairest location per job (EMD)");
  PrintPaperNote(
      "paper: San Francisco Bay Area fairest for Handyman and Run Errands; "
      "Birmingham, UK unfairest for both");
  for (const char* category : {"Handyman", "Run Errands"}) {
    LocationExtremesForJob(boxes, category);
  }

  PrintTitle("§5.2.1 — fairest / unfairest job per location (EMD)");
  PrintPaperNote(
      "paper: Delivery / Furniture Assembly fairest; Yard Work and General "
      "Cleaning unfairest in Birmingham, Detroit, Nashville");
  for (const char* city :
       {"Birmingham, UK", "Detroit, MI", "Nashville, TN", "Philadelphia, PA",
        "San Diego, CA", "Chicago, IL"}) {
    JobExtremesForLocation(boxes, city);
  }
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
