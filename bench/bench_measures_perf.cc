// Throughput of the unfairness measures and their ranking-distance
// primitives: full/top-k Kendall-Tau, Jaccard, 1-D and general EMD, and the
// per-triple marketplace measures on a 50-worker ranking.

#include <benchmark/benchmark.h>

#include <memory>
#include <numeric>

#include "common/rng.h"
#include "core/unfairness_measures.h"
#include "ranking/emd.h"
#include "ranking/jaccard.h"
#include "ranking/kendall_tau.h"

namespace fairjob {
namespace {

RankedList RandomPermutation(size_t n, Rng* rng) {
  RankedList list(n);
  std::iota(list.begin(), list.end(), 0);
  rng->Shuffle(list);
  return list;
}

void BM_KendallTauFull(benchmark::State& state) {
  Rng rng(1);
  size_t n = static_cast<size_t>(state.range(0));
  RankedList a = RandomPermutation(n, &rng);
  RankedList b = RandomPermutation(n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTauDistance(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_KendallTauTopK(benchmark::State& state) {
  Rng rng(2);
  size_t k = static_cast<size_t>(state.range(0));
  RankedList pool = RandomPermutation(2 * k, &rng);
  RankedList a(pool.begin(), pool.begin() + static_cast<long>(k));
  rng.Shuffle(pool);
  RankedList b(pool.begin(), pool.begin() + static_cast<long>(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTauTopK(a, b, 0.5));
  }
}

void BM_Jaccard(benchmark::State& state) {
  Rng rng(3);
  size_t k = static_cast<size_t>(state.range(0));
  RankedList pool = RandomPermutation(2 * k, &rng);
  RankedList a(pool.begin(), pool.begin() + static_cast<long>(k));
  rng.Shuffle(pool);
  RankedList b(pool.begin(), pool.begin() + static_cast<long>(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardDistance(a, b));
  }
}

void BM_Emd1D(benchmark::State& state) {
  Rng rng(4);
  size_t bins = static_cast<size_t>(state.range(0));
  std::vector<double> p(bins);
  std::vector<double> q(bins);
  for (size_t i = 0; i < bins; ++i) {
    p[i] = rng.NextDouble();
    q[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Emd1D(p, q));
  }
}

void BM_EmdGeneral(benchmark::State& state) {
  Rng rng(5);
  size_t bins = static_cast<size_t>(state.range(0));
  std::vector<double> p(bins);
  std::vector<double> q(bins);
  std::vector<std::vector<double>> cost(bins, std::vector<double>(bins));
  for (size_t i = 0; i < bins; ++i) {
    p[i] = rng.NextDouble();
    q[i] = rng.NextDouble();
    for (size_t j = 0; j < bins; ++j) {
      cost[i][j] = std::abs(static_cast<double>(i) - static_cast<double>(j));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmdGeneral(p, q, cost));
  }
}

struct MarketFixture {
  MarketFixture() : data(MakeSchema()) {
    space = std::make_unique<GroupSpace>(*GroupSpace::Enumerate(data.schema()));
    Rng rng(6);
    MarketRanking ranking;
    for (int i = 0; i < 50; ++i) {
      Demographics d = {static_cast<ValueId>(rng.NextBelow(3)),
                        static_cast<ValueId>(rng.NextBelow(2))};
      WorkerId id = *data.AddWorker("w" + std::to_string(i), d);
      ranking.workers.push_back(id);
    }
    (void)data.SetRanking(0, 0, std::move(ranking));
    data.queries().GetOrAdd("q");
    data.locations().GetOrAdd("l");
  }

  static AttributeSchema MakeSchema() {
    AttributeSchema schema;
    (void)schema.AddAttribute("ethnicity", {"Asian", "Black", "White"});
    (void)schema.AddAttribute("gender", {"Male", "Female"});
    return schema;
  }

  MarketplaceDataset data;
  std::unique_ptr<GroupSpace> space;
};

void BM_MarketplaceMeasure(benchmark::State& state) {
  static MarketFixture* fixture = new MarketFixture();
  MarketMeasure measure =
      state.range(0) == 0 ? MarketMeasure::kEmd : MarketMeasure::kExposure;
  for (auto _ : state) {
    for (size_t g = 0; g < fixture->space->num_groups(); ++g) {
      benchmark::DoNotOptimize(
          MarketplaceUnfairness(fixture->data, *fixture->space,
                                static_cast<GroupId>(g), 0, 0, measure));
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(fixture->space->num_groups()));
}

}  // namespace
}  // namespace fairjob

BENCHMARK(fairjob::BM_KendallTauFull)
    ->Arg(50)
    ->Arg(500)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_KendallTauTopK)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_Jaccard)->Arg(10)->Arg(50)->Arg(500);
BENCHMARK(fairjob::BM_Emd1D)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(fairjob::BM_EmdGeneral)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_MarketplaceMeasure)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
