// Throughput of the unfairness measures and their ranking-distance
// primitives: full/top-k Kendall-Tau, Jaccard, 1-D and general EMD, and the
// per-triple marketplace measures on a 50-worker ranking. With
// --batch_compare, instead times one search cell's distance-matrix phase on
// the batched engine (ranking/list_batch.h) against the per-pair reference
// kernels, verifies bitwise-identical matrices, and writes
// BENCH_search_batch.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <numeric>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "core/unfairness_measures.h"
#include "ranking/emd.h"
#include "ranking/footrule.h"
#include "ranking/jaccard.h"
#include "ranking/kendall_tau.h"
#include "ranking/list_batch.h"
#include "ranking/rbo.h"

namespace fairjob {
namespace {

RankedList RandomPermutation(size_t n, Rng* rng) {
  RankedList list(n);
  std::iota(list.begin(), list.end(), 0);
  rng->Shuffle(list);
  return list;
}

void BM_KendallTauFull(benchmark::State& state) {
  Rng rng(1);
  size_t n = static_cast<size_t>(state.range(0));
  RankedList a = RandomPermutation(n, &rng);
  RankedList b = RandomPermutation(n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTauDistance(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_KendallTauTopK(benchmark::State& state) {
  Rng rng(2);
  size_t k = static_cast<size_t>(state.range(0));
  RankedList pool = RandomPermutation(2 * k, &rng);
  RankedList a(pool.begin(), pool.begin() + static_cast<long>(k));
  rng.Shuffle(pool);
  RankedList b(pool.begin(), pool.begin() + static_cast<long>(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTauTopK(a, b, 0.5));
  }
}

void BM_Jaccard(benchmark::State& state) {
  Rng rng(3);
  size_t k = static_cast<size_t>(state.range(0));
  RankedList pool = RandomPermutation(2 * k, &rng);
  RankedList a(pool.begin(), pool.begin() + static_cast<long>(k));
  rng.Shuffle(pool);
  RankedList b(pool.begin(), pool.begin() + static_cast<long>(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaccardDistance(a, b));
  }
}

void BM_Emd1D(benchmark::State& state) {
  Rng rng(4);
  size_t bins = static_cast<size_t>(state.range(0));
  std::vector<double> p(bins);
  std::vector<double> q(bins);
  for (size_t i = 0; i < bins; ++i) {
    p[i] = rng.NextDouble();
    q[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Emd1D(p, q));
  }
}

void BM_EmdGeneral(benchmark::State& state) {
  Rng rng(5);
  size_t bins = static_cast<size_t>(state.range(0));
  std::vector<double> p(bins);
  std::vector<double> q(bins);
  std::vector<std::vector<double>> cost(bins, std::vector<double>(bins));
  for (size_t i = 0; i < bins; ++i) {
    p[i] = rng.NextDouble();
    q[i] = rng.NextDouble();
    for (size_t j = 0; j < bins; ++j) {
      cost[i][j] = std::abs(static_cast<double>(i) - static_cast<double>(j));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EmdGeneral(p, q, cost));
  }
}

struct MarketFixture {
  MarketFixture() : data(MakeSchema()) {
    space = std::make_unique<GroupSpace>(*GroupSpace::Enumerate(data.schema()));
    Rng rng(6);
    MarketRanking ranking;
    for (int i = 0; i < 50; ++i) {
      Demographics d = {static_cast<ValueId>(rng.NextBelow(3)),
                        static_cast<ValueId>(rng.NextBelow(2))};
      WorkerId id = *data.AddWorker("w" + std::to_string(i), d);
      ranking.workers.push_back(id);
    }
    (void)data.SetRanking(0, 0, std::move(ranking));
    data.queries().GetOrAdd("q");
    data.locations().GetOrAdd("l");
  }

  static AttributeSchema MakeSchema() {
    AttributeSchema schema;
    (void)schema.AddAttribute("ethnicity", {"Asian", "Black", "White"});
    (void)schema.AddAttribute("gender", {"Male", "Female"});
    return schema;
  }

  MarketplaceDataset data;
  std::unique_ptr<GroupSpace> space;
};

void BM_MarketplaceMeasure(benchmark::State& state) {
  static MarketFixture* fixture = new MarketFixture();
  MarketMeasure measure =
      state.range(0) == 0 ? MarketMeasure::kEmd : MarketMeasure::kExposure;
  for (auto _ : state) {
    for (size_t g = 0; g < fixture->space->num_groups(); ++g) {
      benchmark::DoNotOptimize(
          MarketplaceUnfairness(fixture->data, *fixture->space,
                                static_cast<GroupId>(g), 0, 0, measure));
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(fixture->space->num_groups()));
}

// --- batched vs per-pair search kernels (--batch_compare) --------------------

uint64_t BitsOf(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Best-of-`reps` average milliseconds per call of `fn` over `iters` calls.
double BestMsPerRun(int reps, int iters, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
    best = std::min(best, ms);
  }
  return best;
}

// The five kernels behind EvaluateSearchColumn's distance matrix. kKtFull is
// not on the cube path (the cube uses the top-k generalization) and is
// reported unenforced.
enum class BatchKernel { kKtTopK, kJaccard, kFootrule, kRbo, kKtFull };

Result<double> ReferencePair(BatchKernel kernel, const RankedList& a,
                             const RankedList& b,
                             const MeasureOptions& options) {
  switch (kernel) {
    case BatchKernel::kKtTopK:
      return SearchListDistance(SearchMeasure::kKendallTau, a, b, options);
    case BatchKernel::kJaccard:
      return SearchListDistance(SearchMeasure::kJaccard, a, b, options);
    case BatchKernel::kFootrule:
      return SearchListDistance(SearchMeasure::kFootrule, a, b, options);
    case BatchKernel::kRbo:
      return SearchListDistance(SearchMeasure::kRbo, a, b, options);
    case BatchKernel::kKtFull:
      return KendallTauDistance(a, b);
  }
  return Status::InvalidArgument("unknown kernel");
}

Result<double> BatchPair(BatchKernel kernel, const ListDistanceBatch& batch,
                         size_t i, size_t j, const MeasureOptions& options,
                         ListDistanceBatch::Scratch* scratch) {
  switch (kernel) {
    case BatchKernel::kKtTopK:
      return batch.KendallTauTopK(i, j, options.kendall_penalty, scratch);
    case BatchKernel::kJaccard:
      return batch.Jaccard(i, j);
    case BatchKernel::kFootrule:
      return batch.FootruleTopK(i, j);
    case BatchKernel::kRbo:
      return batch.Rbo(i, j, options.rbo_persistence);
    case BatchKernel::kKtFull:
      return batch.KendallTauFull(i, j, scratch);
  }
  return Status::InvalidArgument("unknown kernel");
}

// Times one search cell's distance-matrix phase — all n(n−1)/2 upper-triangle
// pairs of n personalized result lists — on the batched engine (including
// ListDistanceBatch::Make, which the cube pays once per cell) against the
// per-pair reference kernels, verifies the two matrices are bitwise
// identical, and writes BENCH_search_batch.json. The four cube measures
// carry an enforced speedup bar: the process exits non-zero when the batch
// engine is not at least `kSpeedupBar` times faster, or when any identity
// check fails.
constexpr double kSpeedupBar = 2.0;

int BatchCompareMain(bool smoke) {
  struct Config {
    const char* name;
    BatchKernel kernel;
    size_t num_lists;  // users in the cell → n(n−1)/2 pairs
    size_t k;          // list length (paper-realistic Google top-k ≈ 20)
    bool enforce;      // carries the >= kSpeedupBar bar
    int iters;
  };
  const Config configs[] = {
      {"kendall_topk", BatchKernel::kKtTopK, smoke ? size_t{10} : size_t{30},
       20, true, smoke ? 5 : 20},
      {"jaccard", BatchKernel::kJaccard, smoke ? size_t{10} : size_t{30}, 20,
       true, smoke ? 20 : 100},
      {"footrule", BatchKernel::kFootrule, smoke ? size_t{10} : size_t{30},
       20, true, smoke ? 20 : 100},
      {"rbo", BatchKernel::kRbo, smoke ? size_t{10} : size_t{30}, 20, true,
       smoke ? 20 : 100},
      {"kendall_full", BatchKernel::kKtFull, smoke ? size_t{10} : size_t{30},
       50, false, smoke ? 10 : 50},
  };
  const int reps = smoke ? 3 : 5;
  MeasureOptions options;  // paper defaults: penalty 0.5, persistence 0.9

  bench::PrintTitle(
      std::string("Batched search kernels vs per-pair reference (") +
      (smoke ? "smoke" : "full") + ")");
  std::vector<std::vector<std::string>> rows;
  std::string json = std::string("{\n  \"bench\": \"search_batch\",\n") +
                     "  \"mode\": \"" + (smoke ? "smoke" : "full") +
                     "\",\n  \"speedup_bar\": " + bench::Fmt(kSpeedupBar, 1) +
                     ",\n  \"configs\": [\n";
  bool failed = false;

  for (size_t c = 0; c < sizeof(configs) / sizeof(configs[0]); ++c) {
    const Config& config = configs[c];
    // Personalized result lists of one cell: prefixes of shuffled pools over
    // a 2k universe (full Kendall-Tau needs a shared item set, so there the
    // lists are permutations of one pool).
    Rng rng(20190715 + static_cast<uint64_t>(c));
    std::vector<RankedList> lists;
    RankedList base = RandomPermutation(2 * config.k, &rng);
    for (size_t l = 0; l < config.num_lists; ++l) {
      if (config.kernel == BatchKernel::kKtFull) {
        RankedList perm(base.begin(), base.begin() +
                                          static_cast<long>(config.k));
        rng.Shuffle(perm);
        lists.push_back(perm);
      } else {
        RankedList pool = base;
        rng.Shuffle(pool);
        lists.push_back(RankedList(pool.begin(),
                                   pool.begin() +
                                       static_cast<long>(config.k)));
      }
    }
    std::vector<const RankedList*> ptrs;
    for (const RankedList& l : lists) ptrs.push_back(&l);
    size_t n = lists.size();
    size_t num_pairs = n * (n - 1) / 2;

    auto fill_batch = [&](std::vector<double>* tri) -> Status {
      FAIRJOB_ASSIGN_OR_RETURN(ListDistanceBatch batch,
                               ListDistanceBatch::Make(ptrs));
      ListDistanceBatch::Scratch scratch;
      size_t idx = 0;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j, ++idx) {
          FAIRJOB_ASSIGN_OR_RETURN(
              (*tri)[idx],
              BatchPair(config.kernel, batch, i, j, options, &scratch));
        }
      }
      return Status::OK();
    };
    auto fill_reference = [&](std::vector<double>* tri) -> Status {
      size_t idx = 0;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j, ++idx) {
          FAIRJOB_ASSIGN_OR_RETURN(
              (*tri)[idx],
              ReferencePair(config.kernel, lists[i], lists[j], options));
        }
      }
      return Status::OK();
    };

    // Correctness gate first: bitwise-identical distance matrices.
    std::vector<double> batch_tri(num_pairs, 0.0);
    std::vector<double> ref_tri(num_pairs, 0.0);
    Status batch_ok = fill_batch(&batch_tri);
    Status ref_ok = fill_reference(&ref_tri);
    if (!batch_ok.ok() || !ref_ok.ok()) {
      std::fprintf(stderr, "%s: run failed: %s / %s\n", config.name,
                   batch_ok.ToString().c_str(), ref_ok.ToString().c_str());
      return 1;
    }
    bool identical = true;
    for (size_t idx = 0; identical && idx < num_pairs; ++idx) {
      identical = BitsOf(batch_tri[idx]) == BitsOf(ref_tri[idx]);
    }
    if (!identical) {
      std::fprintf(stderr, "%s: batch/reference matrices diverge\n",
                   config.name);
      failed = true;
    }

    double batch_ms = BestMsPerRun(reps, config.iters, [&] {
      std::vector<double> tri(num_pairs, 0.0);
      Status status = fill_batch(&tri);
      benchmark::DoNotOptimize(status);
      benchmark::DoNotOptimize(tri.data());
    });
    double ref_ms = BestMsPerRun(reps, config.iters, [&] {
      std::vector<double> tri(num_pairs, 0.0);
      Status status = fill_reference(&tri);
      benchmark::DoNotOptimize(status);
      benchmark::DoNotOptimize(tri.data());
    });
    double speedup = batch_ms > 0.0 ? ref_ms / batch_ms : 0.0;
    bool below_bar = config.enforce && speedup < kSpeedupBar;
    if (below_bar) {
      std::fprintf(stderr, "%s: batch speedup %.2fx below the %.1fx bar\n",
                   config.name, speedup, kSpeedupBar);
      failed = true;
    }

    rows.push_back({config.name, std::to_string(n), std::to_string(config.k),
                    std::to_string(num_pairs), bench::Fmt(batch_ms),
                    bench::Fmt(ref_ms), bench::Fmt(speedup, 2) + "x",
                    config.enforce ? (below_bar ? "FAIL" : "ok") : "-"});
    json += std::string("    {\"name\": \"") + config.name +
            "\", \"lists\": " + std::to_string(n) +
            ", \"k\": " + std::to_string(config.k) +
            ", \"pairs\": " + std::to_string(num_pairs) +
            ", \"batch_ms\": " + bench::Fmt(batch_ms, 4) +
            ", \"reference_ms\": " + bench::Fmt(ref_ms, 4) +
            ", \"speedup\": " + bench::Fmt(speedup, 2) +
            ", \"enforced\": " + (config.enforce ? "true" : "false") +
            ", \"identical_results\": " + (identical ? "true" : "false") +
            "}" +
            (c + 1 < sizeof(configs) / sizeof(configs[0]) ? ",\n" : "\n");
  }

  bench::PrintTable(
      {"config", "lists", "k", "pairs", "batch ms", "per-pair ms", "speedup",
       "bar"},
      rows);
  json += "  ]\n}\n";
  Status written = bench::WriteTextFile("BENCH_search_batch.json", json);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_search_batch.json\n");
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace fairjob

BENCHMARK(fairjob::BM_KendallTauFull)
    ->Arg(50)
    ->Arg(500)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_KendallTauTopK)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_Jaccard)->Arg(10)->Arg(50)->Arg(500);
BENCHMARK(fairjob::BM_Emd1D)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(fairjob::BM_EmdGeneral)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_MarketplaceMeasure)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// --batch_compare short-circuits before google-benchmark sees the command
// line (same convention as bench_fagin_perf); "--batch_compare --smoke" runs
// the comparison at CI-smoke sizes.
int main(int argc, char** argv) {
  bool smoke = false;
  bool batch_compare = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--batch_compare") == 0) batch_compare = true;
  }
  if (batch_compare) return fairjob::BatchCompareMain(smoke);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
