#ifndef FAIRJOB_BENCH_BENCH_UTIL_H_
#define FAIRJOB_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fbox.h"
#include "core/unfairness_measures.h"
#include "market/taskrabbit_sim.h"
#include "search/google_sim.h"

namespace fairjob {
namespace bench {

// --- plain-text table rendering ----------------------------------------------

void PrintTitle(const std::string& title);
void PrintTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows);
std::string Fmt(double value, int decimals = 3);

// Prints "PAPER: ..." shape expectations next to measured output so the
// bench output is self-describing.
void PrintPaperNote(const std::string& note);

// Overwrites `path` with `content`; used for machine-readable BENCH_*.json
// outputs next to the human-readable tables.
Status WriteTextFile(const std::string& path, const std::string& content);

// --- prebuilt worlds -----------------------------------------------------------

// The full synthetic TaskRabbit crawl, with one FBox per marketplace
// measure.
struct TaskRabbitBoxes {
  std::unique_ptr<TaskRabbitDataset> data;
  std::unique_ptr<GroupSpace> space;
  std::unique_ptr<FBox> emd;
  std::unique_ptr<FBox> exposure;

  const FBox& box(MarketMeasure measure) const {
    return measure == MarketMeasure::kEmd ? *emd : *exposure;
  }
};
Result<TaskRabbitBoxes> BuildTaskRabbitBoxes(
    const TaskRabbitConfig& config = {});

// The synthetic Google user study, with FBoxes per measure over both query
// granularities (formulation terms and base queries).
struct GoogleBoxes {
  std::unique_ptr<GoogleWorld> world;
  std::unique_ptr<GroupSpace> space;
  std::unique_ptr<FBox> kendall_terms;
  std::unique_ptr<FBox> jaccard_terms;
  std::unique_ptr<FBox> kendall_base;
  std::unique_ptr<FBox> jaccard_base;
};
Result<GoogleBoxes> BuildGoogleBoxes(const GoogleStudyConfig& config = {});

// --- batched marketplace column comparison -------------------------------------

// Evaluates the given (query, location) columns across the whole group axis
// through the batched MarketplaceCellBatch engine and through the pre-batch
// MarketplaceCellContext path, best-of-`rounds` wall clock each. The group
// membership table is built OUTSIDE the timed region, the way every
// production builder amortizes it across a dataset version — the comparison
// isolates per-column evaluation cost, which is what the delta and sharded
// paths pay per touched column. Also cross-checks that the two paths agree
// bitwise on every cell (value bit patterns and the missing pattern). Feeds
// the marketplace-batch speedup gates in bench_cube_build, bench_scale and
// bench_incremental.
struct MarketColumnComparison {
  double context_ms = 0.0;  // cell-shared MarketplaceCellContext path
  double batch_ms = 0.0;    // batched MarketplaceCellBatch engine
  bool identical = true;    // bitwise agreement, including missing cells
  double speedup() const {
    return batch_ms > 0.0 ? context_ms / batch_ms : 0.0;
  }
};
MarketColumnComparison CompareMarketColumnPaths(
    const MarketplaceDataset& data, const GroupSpace& space,
    MarketMeasure measure, const MeasureOptions& options,
    const std::vector<std::pair<QueryId, LocationId>>& columns, size_t rounds);

// Exits with a message when a Result is an error (benches are top-level
// binaries; there is nothing to recover).
template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    PrintTitle(std::string("FATAL: ") + what + ": " +
               result.status().ToString());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace bench
}  // namespace fairjob

#endif  // FAIRJOB_BENCH_BENCH_UTIL_H_
