#ifndef FAIRJOB_BENCH_BENCH_UTIL_H_
#define FAIRJOB_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/fbox.h"
#include "market/taskrabbit_sim.h"
#include "search/google_sim.h"

namespace fairjob {
namespace bench {

// --- plain-text table rendering ----------------------------------------------

void PrintTitle(const std::string& title);
void PrintTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows);
std::string Fmt(double value, int decimals = 3);

// Prints "PAPER: ..." shape expectations next to measured output so the
// bench output is self-describing.
void PrintPaperNote(const std::string& note);

// Overwrites `path` with `content`; used for machine-readable BENCH_*.json
// outputs next to the human-readable tables.
Status WriteTextFile(const std::string& path, const std::string& content);

// --- prebuilt worlds -----------------------------------------------------------

// The full synthetic TaskRabbit crawl, with one FBox per marketplace
// measure.
struct TaskRabbitBoxes {
  std::unique_ptr<TaskRabbitDataset> data;
  std::unique_ptr<GroupSpace> space;
  std::unique_ptr<FBox> emd;
  std::unique_ptr<FBox> exposure;

  const FBox& box(MarketMeasure measure) const {
    return measure == MarketMeasure::kEmd ? *emd : *exposure;
  }
};
Result<TaskRabbitBoxes> BuildTaskRabbitBoxes(
    const TaskRabbitConfig& config = {});

// The synthetic Google user study, with FBoxes per measure over both query
// granularities (formulation terms and base queries).
struct GoogleBoxes {
  std::unique_ptr<GoogleWorld> world;
  std::unique_ptr<GroupSpace> space;
  std::unique_ptr<FBox> kendall_terms;
  std::unique_ptr<FBox> jaccard_terms;
  std::unique_ptr<FBox> kendall_base;
  std::unique_ptr<FBox> jaccard_base;
};
Result<GoogleBoxes> BuildGoogleBoxes(const GoogleStudyConfig& config = {});

// Exits with a message when a Result is an error (benches are top-level
// binaries; there is nothing to recover).
template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    PrintTitle(std::string("FATAL: ") + what + ": " +
               result.status().ToString());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace bench
}  // namespace fairjob

#endif  // FAIRJOB_BENCH_BENCH_UTIL_H_
