// Reproduces Table 12: Male vs Female workers on TaskRabbit (Exposure),
// broken down by location. The problem returns the locations where females
// are treated *more* fairly than males, inverting the overall comparison.
//
// Shape reproduced: overall females less fairly treated; reversal set
// includes Chicago, Nashville, San Francisco Bay Area, Charlotte, Norfolk
// and St. Louis (the calibration's gender-flip cities).

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void RunMeasure(const FBox& box, const char* measure_name) {
  PrintTitle(std::string("Table 12 — Male vs Female by location (") +
             measure_name + ")");
  // Set comparison over the gendered demographic cells: the single-group
  // Male/Female exposure values are complements of one another (binary
  // attribute), so the paper's asymmetric Table 12 corresponds to
  // d<{Asian/Black/White Male}> vs d<{Asian/Black/White Female}>.
  ComparisonResult result = OrDie(
      box.CompareSetsByName(
          Dimension::kGroup, {"Asian Male", "Black Male", "White Male"},
          {"Asian Female", "Black Female", "White Female"},
          Dimension::kLocation),
      "comparison");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"All", Fmt(result.overall_d1), Fmt(result.overall_d2)});
  for (const ComparisonRow& row : result.reversed) {
    rows.push_back({box.NameOf(Dimension::kLocation, row.breakdown_id),
                    Fmt(row.d1), Fmt(row.d2)});
  }
  PrintTable({"Group-comparison", "Males", "Females"}, rows);
  std::printf("reversed locations: %zu of %zu\n", result.reversed.size(),
              result.rows.size());
}

void Run() {
  PrintPaperNote(
      "overall: Males 0.117 / Females 0.299 (Exposure); reversal rows: "
      "Charlotte, Chicago, Nashville, Norfolk, SF Bay Area, St. Louis");
  TaskRabbitBoxes boxes = OrDie(BuildTaskRabbitBoxes(), "TaskRabbit build");
  // Only Exposure is meaningful here: EMD between the Male and Female score
  // histograms is symmetric, so d(Male) == d(Female) at every cell and the
  // comparison never inverts (the paper's Table 12 likewise uses Exposure).
  RunMeasure(*boxes.exposure, "Exposure");
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
