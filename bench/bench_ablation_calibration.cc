// Ablation: how the strength of the injected bias (penalty scale) shapes
// the measured group-unfairness orderings of Table 8. The scale=0 row is the
// pure sampling floor: with ≤50-worker result lists, small groups have
// spiky histograms and nonzero EMD/exposure even under a bias-free ranking —
// the same small-sample effect the paper's crawl data is subject to. The
// injected penalties move the ordering at the margins on top of that floor.

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

MarketCalibration Scaled(double penalty_scale) {
  MarketCalibration c = MarketCalibration::PaperDefaults();
  for (auto& [name, v] : c.gender_penalty) v *= penalty_scale;
  for (auto& [name, v] : c.ethnicity_penalty) v *= penalty_scale;
  return c;
}

void Run() {
  PrintTitle("Ablation — injected-bias scale vs. Table 8 group orderings");
  PrintPaperNote(
      "scale=0 isolates the small-sample floor; scale=1 is the calibrated "
      "default used by the table benches");
  for (double scale : {0.0, 0.5, 1.0}) {
    TaskRabbitConfig config;
    config.calibration = Scaled(scale);
    config.stratified_population = true;
    TaskRabbitBoxes boxes =
        OrDie(BuildTaskRabbitBoxes(config), "TaskRabbit build");
    size_t n = boxes.space->num_groups();
    std::vector<FBox::NamedAnswer> emd =
        OrDie(boxes.emd->TopK(Dimension::kGroup, n), "EMD top-k");
    std::vector<FBox::NamedAnswer> exposure =
        OrDie(boxes.exposure->TopK(Dimension::kGroup, n), "Exposure top-k");
    std::printf("\npenalty scale = %.1f\n  EMD: ", scale);
    for (const auto& a : emd) std::printf("%s(%.2f) ", a.name.c_str(), a.value);
    std::printf("\n  EXP: ");
    for (const auto& a : exposure) {
      std::printf("%s(%.3f) ", a.name.c_str(), a.value);
    }
    std::printf("\n");
  }
}

void StratificationAblation() {
  PrintTitle("Ablation — stratified vs i.i.d. city populations (Table 11)");
  PrintPaperNote(
      "without stratification, per-city unfairness reflects each city's "
      "composition/quality lottery instead of the injected severities "
      "(docs/CALIBRATION.md lesson 2)");
  for (bool stratified : {true, false}) {
    TaskRabbitConfig config;
    config.stratified_population = stratified;
    TaskRabbitBoxes boxes =
        OrDie(BuildTaskRabbitBoxes(config), "TaskRabbit build");
    std::vector<FBox::NamedAnswer> fairest =
        OrDie(boxes.emd->TopK(Dimension::kLocation, 5,
                              RankDirection::kLeastUnfair),
              "bottom-k");
    std::printf("%-12s fairest-5: ", stratified ? "stratified" : "i.i.d.");
    for (const auto& a : fairest) {
      std::printf("%s(%.2f) ", a.name.c_str(), a.value);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  fairjob::bench::StratificationAblation();
  return 0;
}
