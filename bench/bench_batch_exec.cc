// Vectorized micro-batched query execution: one cube scan answers many
// requests. Times the same Zipf-skewed request trace answered sequentially
// (one SolveQuantification per request) vs. through
// SolveQuantificationBatch in chunks, enforces the batched throughput
// uplift, and gates on bitwise identity: every batched answer (values AND
// FaginStats) must equal its per-request reference. Writes
// BENCH_batch_exec.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/indices.h"
#include "core/quantification.h"
#include "core/quantification_batch.h"
#include "core/unfairness_cube.h"
#include "market/scale_gen.h"
#include "serve/quantification_service.h"

namespace fairjob {
namespace bench {
namespace {

// Best-of-R wall-clock of `fn`, in milliseconds.
template <typename Fn>
double TimeMs(size_t repetitions, Fn&& fn) {
  double best = 0.0;
  for (size_t r = 0; r < repetitions; ++r) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            stop - start)
            .count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// The trace is built the way production batches look when the win is real:
// a handful of hot selector groups (dashboards refreshing the same slices)
// fanned out into many distinct lanes — varied k, direction, missing
// policy, allowed-target subsets and algorithm — so one gather per group
// feeds many requests. The mix is scan-heavy (~80% scan / 10% TA / 5% FA /
// 5% NRA, NRA only where its preconditions hold): full-slice scans are the
// dashboard workload this batch engine exists for, and the only lanes whose
// list work is fully shared — TA/FA/NRA lanes share sorted access but must
// score candidates per lane to keep their FaginStats bitwise.
std::vector<QuantificationRequest> MakeTrace(const UnfairnessCube& cube,
                                             size_t length, uint64_t seed) {
  static const Dimension kDims[3] = {Dimension::kGroup, Dimension::kQuery,
                                     Dimension::kLocation};
  Rng rng(seed);

  // Hot selector groups: whole-axis plus a few fixed sub-slices per target.
  struct Slice {
    Dimension target;
    AxisSelector agg1;
    AxisSelector agg2;
    size_t lists;
  };
  std::vector<Slice> slices;
  for (Dimension target : kDims) {
    Dimension d1;
    Dimension d2;
    QuantificationOtherDims(target, &d1, &d2);
    const size_t n1 = cube.axis_size(d1);
    const size_t n2 = cube.axis_size(d2);
    Slice all{target, {}, {}, n1 * n2};
    slices.push_back(all);
    Slice half = all;
    for (size_t i = 0; i < (n1 + 1) / 2; ++i) half.agg1.positions.push_back(i);
    half.lists = half.agg1.positions.size() * n2;
    slices.push_back(half);
    Slice quarter = half;
    quarter.agg2.positions.clear();
    for (size_t i = 0; i < (n2 + 1) / 2; ++i) {
      quarter.agg2.positions.push_back(i);
    }
    quarter.lists = quarter.agg1.positions.size() *
                    quarter.agg2.positions.size();
    slices.push_back(quarter);
  }

  std::vector<QuantificationRequest> trace;
  trace.reserve(length);
  static const size_t kKs[4] = {1, 5, 10, 20};
  while (trace.size() < length) {
    // Zipf-ish group choice: u^2 biases toward the first slices.
    double u = rng.NextDouble();
    const Slice& slice =
        slices[static_cast<size_t>(u * u * static_cast<double>(slices.size()))];
    QuantificationRequest request;
    request.target = slice.target;
    request.agg1 = slice.agg1;
    request.agg2 = slice.agg2;
    request.k = kKs[rng.NextBelow(4)];
    request.direction = rng.NextBernoulli(0.7) ? RankDirection::kMostUnfair
                                               : RankDirection::kLeastUnfair;
    request.missing = rng.NextBernoulli(0.5) ? MissingCellPolicy::kSkip
                                             : MissingCellPolicy::kZero;
    const uint32_t roll = rng.NextBelow(20);
    if (roll < 16) {
      request.algorithm = TopKAlgorithm::kScan;
    } else if (roll < 18) {
      request.algorithm = TopKAlgorithm::kThresholdAlgorithm;
    } else if (roll < 19) {
      request.algorithm = TopKAlgorithm::kFA;
    } else if (slice.lists <= 64) {
      request.algorithm = TopKAlgorithm::kNRA;
      request.direction = RankDirection::kMostUnfair;
      request.missing = MissingCellPolicy::kZero;
    } else {
      request.algorithm = TopKAlgorithm::kScan;
    }
    if (rng.NextBernoulli(0.3)) {
      const size_t axis = cube.axis_size(request.target);
      const size_t count = 1 + rng.NextBelow(static_cast<uint32_t>(axis));
      for (size_t i = 0; i < count; ++i) {
        request.allowed_targets.push_back(
            static_cast<int32_t>(rng.NextBelow(static_cast<uint32_t>(axis))));
      }
    }
    trace.push_back(std::move(request));
  }
  return trace;
}

bool BitwiseIdentical(const Result<QuantificationResult>& a,
                      const Result<QuantificationResult>& b) {
  if (a.ok() != b.ok()) return false;
  if (!a.ok()) {
    return a.status().code() == b.status().code() &&
           a.status().message() == b.status().message();
  }
  if (a->answers.size() != b->answers.size()) return false;
  for (size_t i = 0; i < a->answers.size(); ++i) {
    if (a->answers[i].id != b->answers[i].id) return false;
    // operator== on the value would treat -0.0 == 0.0; the contract is bit
    // equality, which ScoredEntry's operator== already is not, so compare
    // through the double's identity: x == y and neither is a mixed zero is
    // what memcmp gives us.
    if (std::memcmp(&a->answers[i].value, &b->answers[i].value,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  const FaginStats& s = a->stats;
  const FaginStats& t = b->stats;
  return s.sorted_accesses == t.sorted_accesses &&
         s.random_accesses == t.random_accesses &&
         s.ids_scored == t.ids_scored && s.rounds == t.rounds &&
         s.threshold_checks == t.threshold_checks &&
         s.dense_accesses == t.dense_accesses &&
         s.hash_accesses == t.hash_accesses;
}

// One metrics-on pass through a window-enabled QuantificationService so the
// serve.batch.* family has data in the JSON artifact.
std::string InstrumentedWindowPassJson(
    const UnfairnessCube& cube, const IndexSet& indices,
    const std::vector<QuantificationRequest>& trace) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Reset();
  metrics.SetEnabled(true);

  QuantificationService::Options options;
  options.cache_capacity = 0;  // every request exercises the window
  options.batch_window_micros = 200;
  options.max_batch_size = 64;
  QuantificationService service(&cube, &indices, options);
  const size_t chunk = 64;
  const size_t limit = std::min<size_t>(trace.size(), 512);
  for (size_t i = 0; i < limit; i += chunk) {
    std::vector<QuantificationRequest> slice(
        trace.begin() + i, trace.begin() + std::min(limit, i + chunk));
    for (Result<QuantificationResult>& result : service.AnswerBatch(slice)) {
      OrDie(std::move(result), "instrumented window answer");
    }
  }

  metrics.SetEnabled(false);
  return metrics.ToJson();
}

}  // namespace

int Main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse({argv + 1, argv + argc});
  if (!flags.ok()) {
    PrintTitle("FATAL: " + flags.status().ToString());
    return 1;
  }
  const bool smoke = flags->Has("smoke");
  const size_t kReps = smoke ? 2 : 3;
  const size_t kTraceLen = smoke ? 2000 : 8000;
  const size_t kChunk = 256;

  PrintTitle("Batched quantification: sequential vs one-scan-many-requests");
  PrintPaperNote(
      "Problem 1 quantification is the interactive primitive of Section 4; "
      "when concurrent requests share a cube slice, one pass over its "
      "inverted lists can answer all of them.");

  size_t hardware = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %zu\n", hardware);

  // A scale-tier marketplace, not the tiny crawl replica: the amortization
  // win is proportional to how much list work one shared pass saves, so the
  // cube needs production-shaped columns for the gate to measure anything.
  ScaleSpec spec;
  spec.seed = 23;
  spec.num_workers = smoke ? 4000 : 20'000;
  spec.num_queries = smoke ? 60 : 200;
  spec.num_locations = smoke ? 6 : 10;
  spec.num_ranked_columns = smoke ? 240 : 1500;
  spec.min_ranking_length = 6;
  spec.max_ranking_length = 24;
  MarketplaceDataset market =
      OrDie(GenerateScaleMarketplace(spec), "scale marketplace");
  GroupSpace space = OrDie(GroupSpace::Enumerate(market.schema()), "space");
  UnfairnessCube cube =
      OrDie(BuildMarketplaceCube(market, space, MarketMeasure::kEmd,
                                 MeasureOptions{}, CubeAxes{}, hardware),
            "cube");
  IndexSet indices = IndexSet::Build(cube);

  std::vector<QuantificationRequest> trace = MakeTrace(cube, kTraceLen, 17);
  std::printf("trace: %zu requests, cube: %zu cells\n", trace.size(),
              cube.num_cells());

  // Identity gate first: the batched engine must be bitwise-identical to
  // the per-request reference on this exact trace (answers and FaginStats).
  BatchExecStats exec;
  bool all_identical = true;
  {
    std::vector<Result<QuantificationResult>> batched =
        SolveQuantificationBatch(cube, indices, trace, &exec);
    for (size_t i = 0; i < trace.size(); ++i) {
      Result<QuantificationResult> reference =
          SolveQuantification(cube, indices, trace[i]);
      if (!BitwiseIdentical(batched[i], reference)) {
        all_identical = false;
        std::printf("DIVERGED at trace[%zu]\n", i);
        break;
      }
    }
  }
  double amortization =
      exec.lists_gathered > 0
          ? static_cast<double>(exec.lists_demanded) /
                static_cast<double>(exec.lists_gathered)
          : 0.0;

  // Sequential: the per-request engines, one call per trace entry.
  double seq_ms = TimeMs(kReps, [&] {
    for (const QuantificationRequest& request : trace) {
      Result<QuantificationResult> result =
          SolveQuantification(cube, indices, request);
      if (!result.ok()) {
        PrintTitle("FATAL: sequential solve: " + result.status().ToString());
        std::exit(1);
      }
    }
  });

  // Batched: the same trace in service-sized chunks through the multi-lane
  // executor — one list gather and one shared pass per selector group per
  // chunk.
  double batch_ms = TimeMs(kReps, [&] {
    for (size_t i = 0; i < trace.size(); i += kChunk) {
      std::vector<QuantificationRequest> slice(
          trace.begin() + i,
          trace.begin() + std::min(trace.size(), i + kChunk));
      std::vector<Result<QuantificationResult>> results =
          SolveQuantificationBatch(cube, indices, slice);
      for (Result<QuantificationResult>& result : results) {
        if (!result.ok()) {
          PrintTitle("FATAL: batched solve: " + result.status().ToString());
          std::exit(1);
        }
      }
    }
  });

  const double n = static_cast<double>(trace.size());
  const double seq_qps = seq_ms > 0 ? 1000.0 * n / seq_ms : 0;
  const double batch_qps = batch_ms > 0 ? 1000.0 * n / batch_ms : 0;
  const double speedup = seq_qps > 0 ? batch_qps / seq_qps : 0;

  PrintTable({"pass", "ms", "req/s", "vs sequential"},
             {{"sequential", Fmt(seq_ms), Fmt(seq_qps, 0), "1.00x"},
              {"batched (chunk " + std::to_string(kChunk) + ")",
               Fmt(batch_ms), Fmt(batch_qps, 0), Fmt(speedup, 2) + "x"}});
  std::printf("exec: %zu groups over %zu lanes, lists %zu gathered / %zu "
              "demanded (%.1fx amortized)\n",
              exec.groups, exec.requests, exec.lists_gathered,
              exec.lists_demanded, amortization);
  std::printf("answers identical to per-request solve: %s\n",
              all_identical ? "yes" : "NO");

  std::string metrics_json = InstrumentedWindowPassJson(cube, indices, trace);
  std::string json =
      "{\n  \"bench\": \"batch_exec\",\n  \"hardware_concurrency\": " +
      std::to_string(hardware) +
      ",\n  \"trace_len\": " + std::to_string(trace.size()) +
      ",\n  \"chunk\": " + std::to_string(kChunk) +
      ",\n  \"seq_ms\": " + Fmt(seq_ms) +
      ",\n  \"batch_ms\": " + Fmt(batch_ms) +
      ",\n  \"seq_qps\": " + Fmt(seq_qps, 0) +
      ",\n  \"batch_qps\": " + Fmt(batch_qps, 0) +
      ",\n  \"speedup\": " + Fmt(speedup, 2) +
      ",\n  \"groups\": " + std::to_string(exec.groups) +
      ",\n  \"lanes\": " + std::to_string(exec.requests) +
      ",\n  \"lists_gathered\": " + std::to_string(exec.lists_gathered) +
      ",\n  \"lists_demanded\": " + std::to_string(exec.lists_demanded) +
      ",\n  \"amortization\": " + Fmt(amortization, 1) +
      ",\n  \"identical_answers\": " + (all_identical ? "true" : "false") +
      ",\n  \"metrics\": " + metrics_json + "\n}\n";
  Status written = WriteTextFile("BENCH_batch_exec.json", json);
  if (!written.ok()) {
    PrintTitle("FATAL: " + written.ToString());
    return 1;
  }
  std::printf("\nwrote BENCH_batch_exec.json\n");

  std::string metrics_path = flags->GetString("metrics_json");
  if (!metrics_path.empty()) {
    Status s = WriteTextFile(metrics_path, metrics_json);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }

  if (!all_identical) {
    PrintTitle("FATAL: batched answers diverged from per-request solve");
    return 1;
  }
  // Enforced gate: sharing the scan must actually pay. Smoke runs on a tiny
  // cube where per-request overheads are small, so the bar is 2x; the full
  // tier (nightly) demands 4x.
  const double min_speedup = smoke ? 2.0 : 4.0;
  if (speedup < min_speedup) {
    PrintTitle("FATAL: batched speedup " + Fmt(speedup, 2) + "x below the " +
               Fmt(min_speedup, 1) + "x gate");
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace fairjob

int main(int argc, char** argv) { return fairjob::bench::Main(argc, argv); }
