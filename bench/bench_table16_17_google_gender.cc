// Reproduces Tables 16 and 17: Male vs Female users on Google job search,
// broken down by location, under Kendall-Tau (16) and Jaccard (17).
//
// Shape reproduced: overall females are treated less fairly; the reversal
// set (locations where females fare better) includes the gender-flip
// locations Birmingham UK, Bristol UK, Detroit MI and New York City.

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void RunMeasure(const FBox& box, const char* measure_name, const char* table) {
  PrintTitle(std::string(table) + " — Male vs Female by location (" +
             measure_name + ")");
  // Set comparison over the gendered cells (see Table 12's bench for why the
  // single-group form is degenerate on a binary attribute).
  ComparisonResult result = OrDie(
      box.CompareSetsByName(
          Dimension::kGroup, {"Asian Male", "Black Male", "White Male"},
          {"Asian Female", "Black Female", "White Female"},
          Dimension::kLocation),
      "comparison");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"All", Fmt(result.overall_d1), Fmt(result.overall_d2)});
  for (const ComparisonRow& row : result.reversed) {
    rows.push_back({box.NameOf(Dimension::kLocation, row.breakdown_id),
                    Fmt(row.d1), Fmt(row.d2)});
  }
  PrintTable({"Group-comparison", "Males", "Females"}, rows);
  std::printf("reversed locations: %zu of %zu\n", result.reversed.size(),
              result.rows.size());
}

void Run() {
  PrintPaperNote(
      "Table 16 (Kendall-Tau): overall 0.537 vs 0.552; reversal rows "
      "Birmingham, Bristol, Detroit, NYC. Table 17 (Jaccard): overall "
      "0.395 vs 0.393 — the two measures' overall orders differ, which the "
      "paper flags for future investigation.");
  GoogleBoxes boxes = OrDie(BuildGoogleBoxes(), "google build");
  RunMeasure(*boxes.kendall_terms, "KendallTau", "Table 16");
  RunMeasure(*boxes.jaccard_terms, "Jaccard", "Table 17");
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
