// Cube-construction performance: the seed per-triple path (re-deriving
// worker values, memberships and histograms for every (group, comparable)
// pair) versus the production batched path (hoisted group membership +
// MarketplaceCellBatch), serial versus the shared thread pool — over a
// 47-group schema at several dataset sizes. Also isolates marketplace
// COLUMN evaluation (the unit the delta and sharded paths pay for): the
// batched engine versus the pre-batch cell-shared MarketplaceCellContext,
// with an enforced speedup gate (>= 1.5x smoke, >= 2x full) and a bitwise
// identity cross-check. Writes BENCH_cube_build.json next to the printed
// tables; any identity miss or gate miss fails the bench.

#include <chrono>
#include <utility>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/indices.h"
#include "core/quantification.h"
#include "core/unfairness_cube.h"

namespace fairjob {
namespace bench {
namespace {

struct SizeSpec {
  const char* name;
  size_t queries;
  size_t locations;
  size_t ranking_len;  // workers per marketplace ranking
  size_t users;        // observations per search cell
};

constexpr SizeSpec kSizes[] = {
    {"small", 6, 4, 40, 12},
    {"medium", 10, 6, 80, 18},
    {"large", 14, 8, 120, 24},
};

// ethnicity{3} × gender{2} × age{3}: (3+1)(2+1)(3+1) − 1 = 47 groups, past
// the paper's 11 and comfortably above the ≥32-group acceptance bar.
AttributeSchema WideSchema() {
  AttributeSchema schema;
  schema.AddAttribute("ethnicity", {"Asian", "Black", "White"}).value();
  schema.AddAttribute("gender", {"Male", "Female"}).value();
  schema.AddAttribute("age", {"Young", "Middle", "Old"}).value();
  return schema;
}

Demographics RandomDemographics(Rng& rng) {
  return {static_cast<ValueId>(rng.NextBelow(3)),
          static_cast<ValueId>(rng.NextBelow(2)),
          static_cast<ValueId>(rng.NextBelow(3))};
}

void MustOk(const Status& status, const char* what) {
  if (!status.ok()) {
    PrintTitle(std::string("FATAL: ") + what + ": " + status.ToString());
    std::exit(1);
  }
}

MarketplaceDataset MakeMarket(const SizeSpec& size) {
  MarketplaceDataset data(WideSchema());
  Rng rng(991 + size.queries);
  std::vector<WorkerId> workers;
  size_t pool = size.ranking_len * 2;
  for (size_t i = 0; i < pool; ++i) {
    workers.push_back(
        *data.AddWorker("w" + std::to_string(i), RandomDemographics(rng)));
  }
  for (size_t q = 0; q < size.queries; ++q) {
    data.queries().GetOrAdd("q" + std::to_string(q));
    for (size_t l = 0; l < size.locations; ++l) {
      data.locations().GetOrAdd("l" + std::to_string(l));
      MarketRanking r;
      r.workers = workers;
      rng.Shuffle(r.workers);
      r.workers.resize(size.ranking_len);
      MustOk(data.SetRanking(static_cast<QueryId>(q),
                             static_cast<LocationId>(l), std::move(r)),
             "SetRanking");
    }
  }
  return data;
}

SearchDataset MakeSearch(const SizeSpec& size) {
  SearchDataset data(WideSchema());
  Rng rng(1777 + size.queries);
  for (size_t u = 0; u < size.users; ++u) {
    data.AddUser("u" + std::to_string(u), RandomDemographics(rng)).value();
  }
  for (size_t q = 0; q < size.queries; ++q) {
    data.queries().GetOrAdd("sq" + std::to_string(q));
    for (size_t l = 0; l < size.locations; ++l) {
      data.locations().GetOrAdd("sl" + std::to_string(l));
      for (size_t u = 0; u < size.users; ++u) {
        std::vector<int32_t> docs(30);
        for (size_t d = 0; d < docs.size(); ++d) {
          docs[d] = static_cast<int32_t>(d);
        }
        rng.Shuffle(docs);
        RankedList results(docs.begin(), docs.begin() + 10);
        MustOk(data.AddObservation(static_cast<QueryId>(q),
                                   static_cast<LocationId>(l),
                                   {static_cast<UserId>(u), results}),
               "AddObservation");
      }
    }
  }
  return data;
}

// The seed implementation of BuildMarketplaceCube: one MarketplaceUnfairness
// call per (group, query, location) triple, serial. Kept as the baseline the
// cell-shared path is benchmarked against.
UnfairnessCube BuildMarketplaceCubeReference(const MarketplaceDataset& data,
                                             const GroupSpace& space,
                                             MarketMeasure measure) {
  std::vector<GroupId> groups;
  for (size_t g = 0; g < space.num_groups(); ++g) {
    groups.push_back(static_cast<GroupId>(g));
  }
  std::vector<QueryId> queries;
  for (size_t q = 0; q < data.queries().size(); ++q) {
    queries.push_back(static_cast<QueryId>(q));
  }
  std::vector<LocationId> locations;
  for (size_t l = 0; l < data.locations().size(); ++l) {
    locations.push_back(static_cast<LocationId>(l));
  }
  UnfairnessCube cube =
      OrDie(UnfairnessCube::Make(groups, queries, locations), "cube axes");
  for (size_t q = 0; q < queries.size(); ++q) {
    for (size_t l = 0; l < locations.size(); ++l) {
      for (size_t g = 0; g < groups.size(); ++g) {
        Result<double> v = MarketplaceUnfairness(
            data, space, groups[g], queries[q], locations[l], measure);
        if (v.ok()) cube.Set(g, q, l, *v);
      }
    }
  }
  return cube;
}

// Best-of-R wall-clock of `fn`, in milliseconds.
template <typename Fn>
double TimeMs(size_t repetitions, Fn&& fn) {
  double best = 0.0;
  for (size_t r = 0; r < repetitions; ++r) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            stop - start)
            .count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool CubesIdentical(const UnfairnessCube& a, const UnfairnessCube& b) {
  if (a.num_cells() != b.num_cells()) return false;
  for (size_t g = 0; g < a.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < a.axis_size(Dimension::kQuery); ++q) {
      for (size_t l = 0; l < a.axis_size(Dimension::kLocation); ++l) {
        if (a.Get(g, q, l) != b.Get(g, q, l)) return false;
      }
    }
  }
  return true;
}

// One fully instrumented pass over the smallest size: cube builds through
// the pool, plus a Fagin top-k over the resulting cube, so every metric
// family (threadpool.*, cube.*, fagin.*, measure.*) has data. Runs after the
// timing loops — the timed numbers above are always metrics-off.
std::string InstrumentedPassJson(size_t pool) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Reset();
  Tracer::Global().Reset();
  metrics.SetEnabled(true);
  Tracer::Global().SetEnabled(true);

  const SizeSpec& size = kSizes[0];
  MarketplaceDataset market = MakeMarket(size);
  GroupSpace space = OrDie(GroupSpace::Enumerate(market.schema()), "space");
  UnfairnessCube cube = OrDie(
      BuildMarketplaceCube(market, space, MarketMeasure::kEmd, {}, {}, pool),
      "instrumented market build");
  SearchDataset search = MakeSearch(size);
  GroupSpace search_space =
      OrDie(GroupSpace::Enumerate(search.schema()), "search space");
  BuildSearchCube(search, search_space, SearchMeasure::kKendallTau, {}, {},
                  pool)
      .value();
  IndexSet indices = IndexSet::Build(cube);
  QuantificationRequest request;
  request.target = Dimension::kGroup;
  request.k = 5;
  OrDie(SolveQuantification(cube, indices, request), "instrumented top-k");

  metrics.SetEnabled(false);
  Tracer::Global().SetEnabled(false);
  return metrics.ToJson();
}

}  // namespace

int Main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse({argv + 1, argv + argc});
  if (!flags.ok()) {
    PrintTitle("FATAL: " + flags.status().ToString());
    return 1;
  }
  const bool smoke = flags->Has("smoke");
  const size_t kReps = smoke ? 1 : 5;
  constexpr size_t kPool = 4;
  const size_t num_sizes = smoke ? 1 : sizeof(kSizes) / sizeof(kSizes[0]);

  PrintTitle("Cube construction: seed per-triple vs batched, serial vs pool");
  PrintPaperNote(
      "Building d<g,q,l> over all triples is the input to both Problem 1 and "
      "Problem 2 (Section 4); this bench guards the construction hot path.");

  // Pool speedups only materialize with real cores: on a single-CPU host
  // they read ~1.0x (the pool adds no benefit but also ~no overhead) while
  // the cell-shared speedup is hardware-independent.
  size_t hardware = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %zu\n", hardware);

  std::string json = "{\n  \"bench\": \"cube_build\",\n  \"pool_parallelism\": " +
                     std::to_string(kPool) +
                     ",\n  \"hardware_concurrency\": " +
                     std::to_string(hardware) + ",\n  \"sizes\": [\n";
  std::vector<std::vector<std::string>> market_rows;
  std::vector<std::vector<std::string>> column_rows;
  std::vector<std::vector<std::string>> search_rows;
  bool all_identical = true;
  bool columns_identical = true;
  // Floors for the batched-vs-context column gate: the one-rep smoke run is
  // noisier, so its bar is lower; nightly full mode demands the 2x the
  // batched engine was built to clear.
  const double min_column_speedup = smoke ? 1.5 : 2.0;
  double worst_column_speedup = 0.0;
  bool have_column_speedup = false;

  for (size_t s = 0; s < num_sizes; ++s) {
    const SizeSpec& size = kSizes[s];
    MarketplaceDataset market = MakeMarket(size);
    GroupSpace space = OrDie(GroupSpace::Enumerate(market.schema()), "space");

    UnfairnessCube reference =
        BuildMarketplaceCubeReference(market, space, MarketMeasure::kEmd);
    UnfairnessCube shared_serial = OrDie(
        BuildMarketplaceCube(market, space, MarketMeasure::kEmd, {}, {}, 1),
        "batched serial build");
    UnfairnessCube shared_pool = OrDie(
        BuildMarketplaceCube(market, space, MarketMeasure::kEmd, {}, {}, kPool),
        "batched pooled build");
    bool identical = CubesIdentical(reference, shared_serial) &&
                     CubesIdentical(reference, shared_pool);
    all_identical = all_identical && identical;

    double ref_ms = TimeMs(kReps, [&] {
      BuildMarketplaceCubeReference(market, space, MarketMeasure::kEmd);
    });
    double shared_ms = TimeMs(kReps, [&] {
      BuildMarketplaceCube(market, space, MarketMeasure::kEmd, {}, {}, 1)
          .value();
    });
    double pool_ms = TimeMs(kReps, [&] {
      BuildMarketplaceCube(market, space, MarketMeasure::kEmd, {}, {}, kPool)
          .value();
    });

    // Column-evaluation comparison: every (query, location) of this size,
    // batched engine vs the pre-batch cell-shared context, both measures.
    std::vector<std::pair<QueryId, LocationId>> columns;
    for (size_t q = 0; q < size.queries; ++q) {
      for (size_t l = 0; l < size.locations; ++l) {
        columns.emplace_back(static_cast<QueryId>(q),
                             static_cast<LocationId>(l));
      }
    }
    MarketColumnComparison emd_cmp = CompareMarketColumnPaths(
        market, space, MarketMeasure::kEmd, {}, columns, kReps);
    MarketColumnComparison exposure_cmp = CompareMarketColumnPaths(
        market, space, MarketMeasure::kExposure, {}, columns, kReps);
    struct NamedCmp {
      const char* measure;
      const MarketColumnComparison* cmp;
    };
    for (NamedCmp named :
         {NamedCmp{"emd", &emd_cmp}, NamedCmp{"exposure", &exposure_cmp}}) {
      const MarketColumnComparison& cmp = *named.cmp;
      columns_identical = columns_identical && cmp.identical;
      if (!have_column_speedup || cmp.speedup() < worst_column_speedup) {
        worst_column_speedup = cmp.speedup();
        have_column_speedup = true;
      }
      column_rows.push_back({size.name, named.measure,
                             std::to_string(columns.size()),
                             Fmt(cmp.context_ms), Fmt(cmp.batch_ms),
                             Fmt(cmp.speedup(), 2) + "x",
                             cmp.identical ? "yes" : "NO"});
    }

    SearchDataset search = MakeSearch(size);
    GroupSpace search_space =
        OrDie(GroupSpace::Enumerate(search.schema()), "search space");
    double search_serial_ms = TimeMs(kReps, [&] {
      BuildSearchCube(search, search_space, SearchMeasure::kKendallTau, {}, {},
                      1)
          .value();
    });
    double search_pool_ms = TimeMs(kReps, [&] {
      BuildSearchCube(search, search_space, SearchMeasure::kKendallTau, {}, {},
                      kPool)
          .value();
    });

    market_rows.push_back(
        {size.name, std::to_string(space.num_groups()),
         std::to_string(size.queries * size.locations),
         std::to_string(size.ranking_len), Fmt(ref_ms), Fmt(shared_ms),
         Fmt(pool_ms), Fmt(ref_ms / shared_ms, 2) + "x",
         Fmt(ref_ms / pool_ms, 2) + "x", identical ? "yes" : "NO"});
    search_rows.push_back({size.name,
                           std::to_string(size.queries * size.locations),
                           std::to_string(size.users), Fmt(search_serial_ms),
                           Fmt(search_pool_ms),
                           Fmt(search_serial_ms / search_pool_ms, 2) + "x"});

    json += std::string("    {\"name\": \"") + size.name +
            "\", \"groups\": " + std::to_string(space.num_groups()) +
            ", \"queries\": " + std::to_string(size.queries) +
            ", \"locations\": " + std::to_string(size.locations) +
            ", \"ranking_len\": " + std::to_string(size.ranking_len) +
            ",\n     \"market\": {" +
            "\"reference_serial_ms\": " + Fmt(ref_ms) +
            ", \"cell_shared_serial_ms\": " + Fmt(shared_ms) +
            ", \"cell_shared_pool_ms\": " + Fmt(pool_ms) +
            ", \"speedup_batched\": " + Fmt(ref_ms / shared_ms, 2) +
            ", \"speedup_pool_vs_reference\": " + Fmt(ref_ms / pool_ms, 2) +
            ", \"identical_cells\": " + (identical ? "true" : "false") +
            "},\n     \"market_columns\": {" +
            "\"emd_context_ms\": " + Fmt(emd_cmp.context_ms) +
            ", \"emd_batched_ms\": " + Fmt(emd_cmp.batch_ms) +
            ", \"emd_speedup\": " + Fmt(emd_cmp.speedup(), 2) +
            ", \"exposure_context_ms\": " + Fmt(exposure_cmp.context_ms) +
            ", \"exposure_batched_ms\": " + Fmt(exposure_cmp.batch_ms) +
            ", \"exposure_speedup\": " + Fmt(exposure_cmp.speedup(), 2) +
            ", \"identical_cells\": " +
            (emd_cmp.identical && exposure_cmp.identical ? "true" : "false") +
            "},\n     \"search\": {" +
            "\"serial_ms\": " + Fmt(search_serial_ms) +
            ", \"pool_ms\": " + Fmt(search_pool_ms) +
            ", \"speedup_pool\": " + Fmt(search_serial_ms / search_pool_ms, 2) +
            "}}";
    json += (s + 1 < num_sizes) ? ",\n" : "\n";
  }
  json += "  ],\n";
  const bool column_gate_pass =
      have_column_speedup && worst_column_speedup >= min_column_speedup;
  json += "  \"gates\": {\"market_batch_min_speedup\": " +
          Fmt(min_column_speedup, 2) +
          ", \"market_batch_worst_speedup\": " +
          Fmt(worst_column_speedup, 2) +
          ", \"market_batch_speedup\": " +
          (column_gate_pass ? "true" : "false") +
          ", \"market_batch_identical\": " +
          (columns_identical ? "true" : "false") + "},\n";

  // The timing loops above always run metrics-off; this separate pass feeds
  // the "metrics" section (and the optional --metrics_json/--trace_json
  // exports) without perturbing the numbers.
  std::string metrics_json = InstrumentedPassJson(kPool);
  json += "  \"metrics\": " + metrics_json + "\n}\n";

  PrintTitle("BuildMarketplaceCube (EMD, 47 groups)");
  PrintTable({"size", "groups", "cells", "n", "reference ms", "batched ms",
              "pool ms", "batched speedup", "pool speedup", "identical"},
             market_rows);
  PrintTitle("Marketplace column evaluation: cell-shared context vs batched");
  PrintTable({"size", "measure", "columns", "context ms", "batched ms",
              "speedup", "identical"},
             column_rows);
  std::printf("gate: worst batched speedup %.2fx (floor %.2fx) -> %s\n",
              worst_column_speedup, min_column_speedup,
              column_gate_pass ? "pass" : "FAIL");
  PrintTitle("BuildSearchCube (Kendall-Tau, 47 groups)");
  PrintTable({"size", "cells", "users/cell", "serial ms", "pool ms", "speedup"},
             search_rows);

  Status written = WriteTextFile("BENCH_cube_build.json", json);
  if (!written.ok()) {
    PrintTitle("FATAL: " + written.ToString());
    return 1;
  }
  std::printf("\nwrote BENCH_cube_build.json\n");

  std::string metrics_path = flags->GetString("metrics_json");
  if (!metrics_path.empty()) {
    Status s = WriteTextFile(metrics_path, metrics_json);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::string trace_path = flags->GetString("trace_json");
  if (!trace_path.empty()) {
    Status s = Tracer::Global().WriteJson(trace_path);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }

  if (!all_identical) {
    PrintTitle("FATAL: fast-path cube contents diverged from the reference");
    return 1;
  }
  if (!columns_identical) {
    PrintTitle(
        "FATAL: batched column engine diverged bitwise from the cell-shared "
        "context");
    return 1;
  }
  if (!column_gate_pass) {
    PrintTitle("FATAL: batched column speedup " +
               Fmt(worst_column_speedup, 2) + "x below the " +
               Fmt(min_column_speedup, 2) + "x gate");
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace fairjob

int main(int argc, char** argv) { return fairjob::bench::Main(argc, argv); }
