// Reproduces Figures 7 and 8: gender and ethnicity breakdown of the 3,311
// TaskRabbit taskers (and the crawl-scale statistics quoted in §5.1.1).
//
// Shape reproduced: ~72% male, ~66% white; 56 cities; 5,361 offered
// (job, location) query combinations.

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void Run() {
  PrintTitle("Figures 7 & 8 — tasker demographics and crawl-scale stats");
  PrintPaperNote("3,311 taskers: ~72% male, ~66% white; 5,361 queries");

  std::unique_ptr<SimulatedMarketplace> site =
      OrDie(BuildTaskRabbitSite(TaskRabbitConfig{}), "site build");
  const AttributeSchema& schema = site->schema();
  AttributeId eth = OrDie(schema.FindAttribute("ethnicity"), "ethnicity");
  AttributeId gender = OrDie(schema.FindAttribute("gender"), "gender");

  std::vector<size_t> gender_counts(schema.num_values(gender), 0);
  std::vector<size_t> eth_counts(schema.num_values(eth), 0);
  for (size_t i = 0; i < site->num_workers(); ++i) {
    const Demographics& d = site->worker(i).demographics;
    ++gender_counts[static_cast<size_t>(d[static_cast<size_t>(gender)])];
    ++eth_counts[static_cast<size_t>(d[static_cast<size_t>(eth)])];
  }
  double n = static_cast<double>(site->num_workers());

  std::vector<std::vector<std::string>> rows;
  for (size_t v = 0; v < gender_counts.size(); ++v) {
    rows.push_back({"gender", schema.value_name(gender, static_cast<ValueId>(v)),
                    std::to_string(gender_counts[v]),
                    Fmt(100.0 * gender_counts[v] / n, 1) + "%"});
  }
  for (size_t v = 0; v < eth_counts.size(); ++v) {
    rows.push_back({"ethnicity", schema.value_name(eth, static_cast<ValueId>(v)),
                    std::to_string(eth_counts[v]),
                    Fmt(100.0 * eth_counts[v] / n, 1) + "%"});
  }
  PrintTable({"Attribute", "Value", "Taskers", "Share"}, rows);

  std::printf("\nunique taskers: %zu (paper: 3,311)\n", site->num_workers());
  std::printf("supported cities: %zu (paper: 56)\n", site->Cities().size());
  std::printf("offered (job, location) queries: %zu (paper: 5,361)\n",
              site->num_queries_offered());
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
