// Ablations for the design choices DESIGN.md calls out:
//  * the Kendall-Tau top-k penalty p (optimistic 0 / neutral 0.5 / 1);
//  * the EMD histogram bin count;
//  * the missing-cell policy of the threshold algorithm (the Google cube is
//    sparse: every term is observed only at its task's locations).

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void KendallPenaltyAblation() {
  PrintTitle("Ablation — Kendall-Tau top-k penalty p vs Google group order");
  for (double p : {0.0, 0.5, 1.0}) {
    GoogleStudyConfig config;
    GoogleWorld world = OrDie(BuildGoogleStudy(config), "google build");
    GroupSpace space =
        OrDie(GroupSpace::Enumerate(world.dataset.schema()), "space");
    FBox::BuildOptions options;
    options.measure.kendall_penalty = p;
    FBox box = OrDie(FBox::ForSearch(&world.dataset, &space,
                                     SearchMeasure::kKendallTau, options),
                     "fbox");
    std::vector<FBox::NamedAnswer> top =
        OrDie(box.TopK(Dimension::kGroup, 5), "top-k");
    std::printf("p=%.1f  top-5: ", p);
    for (const auto& a : top) std::printf("%s(%.3f) ", a.name.c_str(), a.value);
    std::printf("\n");
  }
}

void EmdBinsAblation() {
  PrintTitle("Ablation — EMD histogram bins vs TaskRabbit group order");
  TaskRabbitConfig config;
  TaskRabbitDataset data = OrDie(BuildTaskRabbitDataset(config), "dataset");
  GroupSpace space =
      OrDie(GroupSpace::Enumerate(data.dataset.schema()), "space");
  for (size_t bins : {5, 10, 20}) {
    FBox::BuildOptions options;
    options.measure.histogram_bins = bins;
    FBox box = OrDie(FBox::ForMarketplace(&data.dataset, &space,
                                          MarketMeasure::kEmd, options),
                     "fbox");
    std::vector<FBox::NamedAnswer> top =
        OrDie(box.TopK(Dimension::kGroup, 5), "top-k");
    std::printf("bins=%-2zu top-5: ", bins);
    for (const auto& a : top) std::printf("%s(%.3f) ", a.name.c_str(), a.value);
    std::printf("\n");
  }
}

void MissingPolicyAblation() {
  PrintTitle("Ablation — missing-cell policy on the sparse Google cube");
  PrintPaperNote(
      "kSkip averages a location over the queries observed there; kZero "
      "dilutes locations with few observed queries toward zero");
  GoogleBoxes boxes = OrDie(BuildGoogleBoxes(), "google build");
  for (MissingCellPolicy policy :
       {MissingCellPolicy::kSkip, MissingCellPolicy::kZero}) {
    QuantificationRequest request;
    request.target = Dimension::kLocation;
    request.k = 3;
    request.missing = policy;
    QuantificationResult result =
        OrDie(boxes.kendall_terms->Quantify(request), "quantify");
    std::printf("%s  top-3 locations: ",
                policy == MissingCellPolicy::kSkip ? "kSkip" : "kZero");
    for (const auto& a : result.answers) {
      std::printf("%s(%.3f) ",
                  boxes.kendall_terms->NameOf(Dimension::kLocation, a.id)
                      .c_str(),
                  a.value);
    }
    std::printf("  [sorted=%zu random=%zu]\n", result.stats.sorted_accesses,
                result.stats.random_accesses);
  }
}

void ExposureModelAblation() {
  PrintTitle("Ablation — exposure position-bias curve vs Table 8 top-5");
  PrintPaperNote(
      "log-inverse 1/ln(1+r) is the paper's curve; power-law r^-gamma is "
      "the classic click model (a constant rescaling would cancel in the "
      "shares, so only the curve *shape* matters)");
  TaskRabbitConfig config;
  TaskRabbitDataset data = OrDie(BuildTaskRabbitDataset(config), "dataset");
  GroupSpace space =
      OrDie(GroupSpace::Enumerate(data.dataset.schema()), "space");
  struct Variant {
    const char* name;
    ExposureModel model;
    double gamma;
  };
  const Variant variants[] = {
      {"log-inverse", ExposureModel::kLogInverse, 0.0},
      {"power gamma=0.5", ExposureModel::kPowerLaw, 0.5},
      {"power gamma=1.0", ExposureModel::kPowerLaw, 1.0},
      {"power gamma=2.0", ExposureModel::kPowerLaw, 2.0},
  };
  for (const Variant& variant : variants) {
    FBox::BuildOptions options;
    options.measure.exposure_model = variant.model;
    options.measure.exposure_gamma = variant.gamma;
    FBox box = OrDie(FBox::ForMarketplace(&data.dataset, &space,
                                          MarketMeasure::kExposure, options),
                     "fbox");
    std::vector<FBox::NamedAnswer> top =
        OrDie(box.TopK(Dimension::kGroup, 5), "top-k");
    std::printf("%-16s top-5: ", variant.name);
    for (const auto& a : top) std::printf("%s(%.3f) ", a.name.c_str(), a.value);
    std::printf("\n");
  }
}

void LabelNoiseAblation() {
  PrintTitle("Ablation — AMT label-noise sensitivity of the Table 8 top-3");
  for (double error : {0.0, 0.1, 0.3}) {
    TaskRabbitConfig config;
    TaskRabbitDataset data =
        OrDie(BuildTaskRabbitDataset(config, error), "dataset");
    GroupSpace space =
        OrDie(GroupSpace::Enumerate(data.dataset.schema()), "space");
    FBox box = OrDie(
        FBox::ForMarketplace(&data.dataset, &space, MarketMeasure::kEmd),
        "fbox");
    std::vector<FBox::NamedAnswer> top =
        OrDie(box.TopK(Dimension::kGroup, 3), "top-k");
    std::printf("annotator error=%.1f  top-3: ", error);
    for (const auto& a : top) std::printf("%s(%.3f) ", a.name.c_str(), a.value);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::KendallPenaltyAblation();
  fairjob::bench::EmdBinsAblation();
  fairjob::bench::MissingPolicyAblation();
  fairjob::bench::ExposureModelAblation();
  fairjob::bench::LabelNoiseAblation();
  return 0;
}
