// Reproduces Table 9: the 8 TaskRabbit job categories ranked from the most
// to the least unfair under EMD and Exposure. Category values aggregate the
// cube over every group, every sub-job query of the category, and every
// location (Section 3.4's d<G,Q,L> with Q = the category's sub-jobs).
//
// Shape reproduced: Handyman and Yard Work most unfair; Furniture Assembly,
// Delivery and Run Errands fairest.

#include <algorithm>

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

std::vector<std::pair<std::string, double>> CategoryValues(
    const FBox& box, const TaskRabbitDataset& data) {
  std::vector<std::pair<std::string, double>> values;
  for (const auto& [category, subjobs] : data.subjobs_by_category) {
    Result<std::vector<size_t>> positions =
        box.PositionsOf(Dimension::kQuery, subjobs);
    if (!positions.ok()) continue;
    std::optional<double> avg =
        box.cube().Average(AxisSelector::All(), AxisSelector{*positions},
                           AxisSelector::All());
    if (avg.has_value()) values.emplace_back(category, *avg);
  }
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return values;
}

void Run() {
  PrintTitle("Table 9 — job-category unfairness on TaskRabbit");
  PrintPaperNote(
      "Handyman & Yard Work most unfair; Furniture Assembly, Delivery and "
      "Run Errands fairest (EMD and Exposure largely agree)");

  TaskRabbitBoxes boxes = OrDie(BuildTaskRabbitBoxes(), "TaskRabbit build");
  auto emd = CategoryValues(*boxes.emd, *boxes.data);
  auto exposure = CategoryValues(*boxes.exposure, *boxes.data);

  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < emd.size(); ++i) {
    rows.push_back({emd[i].first, Fmt(emd[i].second), exposure[i].first,
                    Fmt(exposure[i].second)});
  }
  PrintTable({"Job (by EMD)", "EMD", "Job (by Exposure)", "Exposure"}, rows);
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
