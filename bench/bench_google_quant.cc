// Reproduces §5.2.2 — fairness quantification on Google job search, with
// both Kendall-Tau and Jaccard, over groups, locations and queries (base
// queries, aggregating the five formulations of each).
//
// Shape reproduced: White Females most discriminated against, Black Males
// least; Washington DC fairest location, London UK unfairest; yard work
// most unfair query, furniture assembly most fair — under both measures.

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void RunMeasure(const GoogleBoxes& boxes, const FBox& box,
                const char* measure_name) {
  PrintTitle(std::string("Google quantification (") + measure_name + ")");

  size_t n_groups = boxes.space->num_groups();
  std::vector<FBox::NamedAnswer> groups =
      OrDie(box.TopK(Dimension::kGroup, n_groups), "groups");
  std::vector<std::vector<std::string>> group_rows;
  for (const auto& answer : groups) {
    group_rows.push_back({answer.name, Fmt(answer.value)});
  }
  PrintTable({"Group (most -> least unfair)", measure_name}, group_rows);

  std::vector<FBox::NamedAnswer> worst_locations =
      OrDie(box.TopK(Dimension::kLocation, 3), "locations");
  std::vector<FBox::NamedAnswer> best_locations = OrDie(
      box.TopK(Dimension::kLocation, 3, RankDirection::kLeastUnfair), "loc");
  std::printf("\nunfairest location: %s (%.3f)   fairest location: %s (%.3f)\n",
              worst_locations[0].name.c_str(), worst_locations[0].value,
              best_locations[0].name.c_str(), best_locations[0].value);

  std::vector<FBox::NamedAnswer> worst_queries =
      OrDie(box.TopK(Dimension::kQuery, 6), "queries");
  std::vector<FBox::NamedAnswer> best_queries = OrDie(
      box.TopK(Dimension::kQuery, 6, RankDirection::kLeastUnfair), "queries");
  std::printf("unfairest query: %s (%.3f)   fairest query: %s (%.3f)\n",
              worst_queries[0].name.c_str(), worst_queries[0].value,
              best_queries[0].name.c_str(), best_queries[0].value);
}

void Run() {
  PrintPaperNote(
      "White Females most / Black Males least discriminated; Washington DC "
      "fairest, London UK unfairest; yard work most / furniture assembly "
      "least unfair — consistent across Kendall-Tau and Jaccard");
  GoogleBoxes boxes = OrDie(BuildGoogleBoxes(), "google build");
  RunMeasure(boxes, *boxes.kendall_base, "KendallTau");
  RunMeasure(boxes, *boxes.jaccard_base, "Jaccard");
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
