// Reproduces Tables 18 and 19: Running Errands vs General Cleaning on
// Google job search, broken down by ethnicity, under Kendall-Tau (18) and
// Jaccard (19). Queries are compared at base-query granularity (their five
// formulations aggregated).
//
// Shape reproduced: the overall comparison is near-tied; for Blacks (and
// under Kendall-Tau also Asians) General Cleaning compares as less fair,
// inverting the overall order.

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void RunMeasure(const FBox& box, const char* measure_name, const char* table) {
  PrintTitle(std::string(table) +
             " — Running Errands vs General Cleaning by ethnicity (" +
             measure_name + ")");
  ComparisonResult result =
      OrDie(box.CompareByName(Dimension::kQuery, "run errand",
                              "general cleaning", Dimension::kGroup),
            "comparison");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"All", Fmt(result.overall_d1), Fmt(result.overall_d2), ""});
  for (const ComparisonRow& row : result.rows) {
    std::string name = box.NameOf(Dimension::kGroup, row.breakdown_id);
    if (name != "Asian" && name != "Black" && name != "White") continue;
    rows.push_back({name, Fmt(row.d1), Fmt(row.d2),
                    row.reversed ? "REVERSED" : ""});
  }
  PrintTable({"Job-comparison", "Running Errands", "General Cleaning", ""},
             rows);
}

void Run() {
  PrintPaperNote(
      "Table 18 (Kendall-Tau): All 0.927 vs 0.926; Black and Asian "
      "reversed. Table 19 (Jaccard): All 0.902 vs 0.887; Black reversed.");
  GoogleBoxes boxes = OrDie(BuildGoogleBoxes(), "google build");
  RunMeasure(*boxes.kendall_base, "KendallTau", "Table 18");
  RunMeasure(*boxes.jaccard_base, "Jaccard", "Table 19");
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
