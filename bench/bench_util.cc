#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"

namespace fairjob {
namespace bench {

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintPaperNote(const std::string& note) {
  std::printf("PAPER: %s\n", note.c_str());
}

void PrintTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(headers.size(), 0);
  for (size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      line += PadRight(c < row.size() ? row[c] : "", widths[c]);
      if (c + 1 < widths.size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

std::string Fmt(double value, int decimals) {
  return FormatDouble(value, decimals);
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << content;
  out.close();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<TaskRabbitBoxes> BuildTaskRabbitBoxes(const TaskRabbitConfig& config) {
  TaskRabbitBoxes boxes;
  FAIRJOB_ASSIGN_OR_RETURN(TaskRabbitDataset built,
                           BuildTaskRabbitDataset(config));
  boxes.data = std::make_unique<TaskRabbitDataset>(std::move(built));
  FAIRJOB_ASSIGN_OR_RETURN(GroupSpace space,
                           GroupSpace::Enumerate(boxes.data->dataset.schema()));
  boxes.space = std::make_unique<GroupSpace>(std::move(space));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox emd, FBox::ForMarketplace(&boxes.data->dataset, boxes.space.get(),
                                     MarketMeasure::kEmd));
  boxes.emd = std::make_unique<FBox>(std::move(emd));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox exposure,
      FBox::ForMarketplace(&boxes.data->dataset, boxes.space.get(),
                           MarketMeasure::kExposure));
  boxes.exposure = std::make_unique<FBox>(std::move(exposure));
  return boxes;
}

Result<GoogleBoxes> BuildGoogleBoxes(const GoogleStudyConfig& config) {
  GoogleBoxes boxes;
  FAIRJOB_ASSIGN_OR_RETURN(GoogleWorld world, BuildGoogleStudy(config));
  boxes.world = std::make_unique<GoogleWorld>(std::move(world));
  FAIRJOB_ASSIGN_OR_RETURN(
      GroupSpace space, GroupSpace::Enumerate(boxes.world->dataset.schema()));
  boxes.space = std::make_unique<GroupSpace>(std::move(space));

  FAIRJOB_ASSIGN_OR_RETURN(
      FBox kt_terms, FBox::ForSearch(&boxes.world->dataset, boxes.space.get(),
                                     SearchMeasure::kKendallTau));
  boxes.kendall_terms = std::make_unique<FBox>(std::move(kt_terms));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox jac_terms, FBox::ForSearch(&boxes.world->dataset, boxes.space.get(),
                                      SearchMeasure::kJaccard));
  boxes.jaccard_terms = std::make_unique<FBox>(std::move(jac_terms));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox kt_base,
      FBox::ForSearch(&boxes.world->dataset_by_base_query, boxes.space.get(),
                      SearchMeasure::kKendallTau));
  boxes.kendall_base = std::make_unique<FBox>(std::move(kt_base));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox jac_base,
      FBox::ForSearch(&boxes.world->dataset_by_base_query, boxes.space.get(),
                      SearchMeasure::kJaccard));
  boxes.jaccard_base = std::make_unique<FBox>(std::move(jac_base));
  return boxes;
}

}  // namespace bench
}  // namespace fairjob
