#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>

#include "common/string_util.h"
#include "core/marketplace_batch.h"

namespace fairjob {
namespace bench {

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintPaperNote(const std::string& note) {
  std::printf("PAPER: %s\n", note.c_str());
}

void PrintTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(headers.size(), 0);
  for (size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      line += PadRight(c < row.size() ? row[c] : "", widths[c]);
      if (c + 1 < widths.size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

std::string Fmt(double value, int decimals) {
  return FormatDouble(value, decimals);
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << content;
  out.close();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<TaskRabbitBoxes> BuildTaskRabbitBoxes(const TaskRabbitConfig& config) {
  TaskRabbitBoxes boxes;
  FAIRJOB_ASSIGN_OR_RETURN(TaskRabbitDataset built,
                           BuildTaskRabbitDataset(config));
  boxes.data = std::make_unique<TaskRabbitDataset>(std::move(built));
  FAIRJOB_ASSIGN_OR_RETURN(GroupSpace space,
                           GroupSpace::Enumerate(boxes.data->dataset.schema()));
  boxes.space = std::make_unique<GroupSpace>(std::move(space));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox emd, FBox::ForMarketplace(&boxes.data->dataset, boxes.space.get(),
                                     MarketMeasure::kEmd));
  boxes.emd = std::make_unique<FBox>(std::move(emd));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox exposure,
      FBox::ForMarketplace(&boxes.data->dataset, boxes.space.get(),
                           MarketMeasure::kExposure));
  boxes.exposure = std::make_unique<FBox>(std::move(exposure));
  return boxes;
}

Result<GoogleBoxes> BuildGoogleBoxes(const GoogleStudyConfig& config) {
  GoogleBoxes boxes;
  FAIRJOB_ASSIGN_OR_RETURN(GoogleWorld world, BuildGoogleStudy(config));
  boxes.world = std::make_unique<GoogleWorld>(std::move(world));
  FAIRJOB_ASSIGN_OR_RETURN(
      GroupSpace space, GroupSpace::Enumerate(boxes.world->dataset.schema()));
  boxes.space = std::make_unique<GroupSpace>(std::move(space));

  FAIRJOB_ASSIGN_OR_RETURN(
      FBox kt_terms, FBox::ForSearch(&boxes.world->dataset, boxes.space.get(),
                                     SearchMeasure::kKendallTau));
  boxes.kendall_terms = std::make_unique<FBox>(std::move(kt_terms));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox jac_terms, FBox::ForSearch(&boxes.world->dataset, boxes.space.get(),
                                      SearchMeasure::kJaccard));
  boxes.jaccard_terms = std::make_unique<FBox>(std::move(jac_terms));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox kt_base,
      FBox::ForSearch(&boxes.world->dataset_by_base_query, boxes.space.get(),
                      SearchMeasure::kKendallTau));
  boxes.kendall_base = std::make_unique<FBox>(std::move(kt_base));
  FAIRJOB_ASSIGN_OR_RETURN(
      FBox jac_base,
      FBox::ForSearch(&boxes.world->dataset_by_base_query, boxes.space.get(),
                      SearchMeasure::kJaccard));
  boxes.jaccard_base = std::make_unique<FBox>(std::move(jac_base));
  return boxes;
}

MarketColumnComparison CompareMarketColumnPaths(
    const MarketplaceDataset& data, const GroupSpace& space,
    MarketMeasure measure, const MeasureOptions& options,
    const std::vector<std::pair<QueryId, LocationId>>& columns,
    size_t rounds) {
  const size_t num_groups = space.num_groups();
  // Hoisted per-dataset-version state, deliberately untimed (see header).
  MarketplaceGroupMembership membership(data, space);

  auto context_pass = [&](std::vector<std::optional<double>>* out) {
    for (auto [q, l] : columns) {
      Result<MarketplaceCellContext> context = MarketplaceCellContext::Make(
          data, space, data.GetRanking(q, l), options);
      for (size_t g = 0; g < num_groups; ++g) {
        std::optional<double> cell;
        if (context.ok()) {
          Result<double> v =
              context->Unfairness(static_cast<GroupId>(g), measure);
          if (v.ok()) cell = *v;
        }
        if (out != nullptr) out->push_back(cell);
      }
    }
  };
  auto batch_pass = [&](std::vector<std::optional<double>>* out) {
    for (auto [q, l] : columns) {
      Result<MarketplaceCellBatch> batch = MarketplaceCellBatch::Make(
          space, membership, data.GetRanking(q, l), measure, options);
      for (size_t g = 0; g < num_groups; ++g) {
        std::optional<double> cell;
        if (batch.ok()) {
          Result<double> v = batch->Unfairness(static_cast<GroupId>(g));
          if (v.ok()) cell = *v;
        }
        if (out != nullptr) out->push_back(cell);
      }
    }
  };

  MarketColumnComparison result;
  std::vector<std::optional<double>> context_cells;
  std::vector<std::optional<double>> batch_cells;
  context_pass(&context_cells);
  batch_pass(&batch_cells);
  result.identical = context_cells.size() == batch_cells.size();
  for (size_t i = 0; result.identical && i < context_cells.size(); ++i) {
    const std::optional<double>& a = context_cells[i];
    const std::optional<double>& b = batch_cells[i];
    if (a.has_value() != b.has_value()) {
      result.identical = false;
    } else if (a.has_value()) {
      uint64_t ba;
      uint64_t bb;
      std::memcpy(&ba, &*a, sizeof(ba));
      std::memcpy(&bb, &*b, sizeof(bb));
      result.identical = ba == bb;
    }
  }

  auto best_of = [&](auto&& pass) {
    double best = 0.0;
    for (size_t r = 0; r < rounds; ++r) {
      auto start = std::chrono::steady_clock::now();
      pass(nullptr);
      double ms = std::chrono::duration_cast<
                      std::chrono::duration<double, std::milli>>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      if (r == 0 || ms < best) best = ms;
    }
    return best;
  };
  result.context_ms = best_of(context_pass);
  result.batch_ms = best_of(batch_pass);
  return result;
}

}  // namespace bench
}  // namespace fairjob
