// Reproduces Table 8: all 11 demographic groups on TaskRabbit ranked from
// the most to the least unfair, under both EMD and Exposure.
//
// Shape reproduced from the paper: Asian Female and Asian Male lead both
// rankings, the two measures agree on the top of the list, and White Male /
// White sit at the bottom.

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void Run() {
  PrintTitle("Table 8 — group unfairness on TaskRabbit (EMD and Exposure)");
  PrintPaperNote(
      "Asian Female > Asian Male > Black Female > Asian > Black Male > "
      "White Female > Black > Male/Female > White > White Male "
      "(both measures agree on the top 7)");

  TaskRabbitBoxes boxes = OrDie(BuildTaskRabbitBoxes(), "TaskRabbit build");
  size_t n = boxes.space->num_groups();

  std::vector<FBox::NamedAnswer> emd =
      OrDie(boxes.emd->TopK(Dimension::kGroup, n), "EMD top-k");
  std::vector<FBox::NamedAnswer> exposure =
      OrDie(boxes.exposure->TopK(Dimension::kGroup, n), "Exposure top-k");

  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({emd[i].name, Fmt(emd[i].value), exposure[i].name,
                    Fmt(exposure[i].value)});
  }
  PrintTable({"Group (by EMD)", "EMD", "Group (by Exposure)", "Exposure"},
             rows);

  size_t agree_top7 = 0;
  for (size_t i = 0; i < 7 && i < n; ++i) {
    for (size_t j = 0; j < 7 && j < n; ++j) {
      if (emd[i].name == exposure[j].name) {
        ++agree_top7;
        break;
      }
    }
  }
  std::printf("\nMeasure agreement on the top-7 set: %zu/7\n", agree_top7);
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
