// Million-user scale tier: generate → sharded build → binary persistence →
// serve, with enforced wall-clock and RSS budgets (a budget miss fails the
// bench, it does not warn). Also gates the two scale-tier speedups:
//  * binary cube load must beat the CSV reference by a floor (bitwise
//    identity cross-checked both ways), and
//  * the SIMD Jaccard popcount sweep must beat the scalar kernel on
//    dense-universe cell bitmaps (cube outputs bitwise-identical), and
//  * the batched marketplace column engine must beat the pre-batch
//    cell-shared context on production-shaped columns (cells
//    bitwise-identical).
// Writes BENCH_scale.json; --smoke runs a CI-sized workload.

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/indices.h"
#include "core/quantification.h"
#include "core/unfairness_cube.h"
#include "crawl/cube_io.h"
#include "market/scale_gen.h"
#include "ranking/simd.h"
#include "serve/quantification_service.h"

namespace fairjob {
namespace bench {
namespace {

struct ScaleBudgets {
  double total_wall_s;     // whole bench, generate through serve
  double build_rss_mb;     // peak RSS right after the sharded build + save
  double total_rss_mb;     // peak RSS at exit (includes serve-side cube)
  double binary_speedup;   // binary load vs CSV load floor
  double simd_speedup;     // SIMD vs scalar popcount sweep floor (AVX2 only)
  double market_batch_speedup;  // batched vs context column-evaluation floor
};

// Full mode is the acceptance workload: 1M workers, 10k queries, Zipf
// traffic, 119 intersectional groups. Budgets hold on a single-core runner
// with headroom; the RSS ceilings are the point — the 59.5M-cell tensor
// (~950 MB as optional<double>) must never materialize during the build.
constexpr ScaleBudgets kFullBudgets = {900.0, 3072.0, 8192.0, 10.0, 1.5, 2.0};
constexpr ScaleBudgets kSmokeBudgets = {120.0, 1024.0, 2048.0, 2.0, 1.5, 1.5};

ScaleSpec FullSpec() {
  ScaleSpec spec;
  spec.seed = 20260809;
  spec.num_workers = 1'000'000;
  spec.num_queries = 10'000;
  spec.num_locations = 50;
  spec.num_ranked_columns = 20'000;
  return spec;
}

ScaleSpec SmokeSpec() {
  ScaleSpec spec;
  spec.seed = 20260809;
  spec.num_workers = 20'000;
  spec.num_queries = 200;
  spec.num_locations = 8;
  spec.num_ranked_columns = 400;
  return spec;
}

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Peak ("VmHWM") or current ("VmRSS") resident set in MB; 0 when
// /proc/self/status is unavailable (non-Linux), which skips the RSS gates.
double ProcStatusMb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      mb = std::strtod(line + key_len + 1, nullptr) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
#else
  (void)key;
  return 0.0;
#endif
}

void MustOk(const Status& status, const char* what) {
  if (!status.ok()) {
    PrintTitle(std::string("FATAL: ") + what + ": " + status.ToString());
    std::exit(1);
  }
}

bool CubesIdentical(const UnfairnessCube& a, const UnfairnessCube& b) {
  if (a.axis_size(Dimension::kGroup) != b.axis_size(Dimension::kGroup) ||
      a.axis_size(Dimension::kQuery) != b.axis_size(Dimension::kQuery) ||
      a.axis_size(Dimension::kLocation) != b.axis_size(Dimension::kLocation)) {
    return false;
  }
  for (size_t g = 0; g < a.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < a.axis_size(Dimension::kQuery); ++q) {
      for (size_t l = 0; l < a.axis_size(Dimension::kLocation); ++l) {
        if (a.Get(g, q, l) != b.Get(g, q, l)) return false;
      }
    }
  }
  return true;
}

// The SIMD acceptance microbench: the Jaccard dense-path popcount sweep over
// cell-shaped bitmaps (words per bitmap as in a dense-universe search cell),
// scalar kernel vs runtime-dispatched kernel on identical inputs.
struct SweepTimes {
  double scalar_ms;
  double simd_ms;
  bool counts_match;
};

SweepTimes TimePopcountSweep(size_t words_per_bitmap, size_t num_bitmaps,
                             size_t rounds) {
  Rng rng(4242);
  std::vector<uint64_t> bitmaps(words_per_bitmap * num_bitmaps);
  for (uint64_t& w : bitmaps) {
    w = static_cast<uint64_t>(rng.NextU32()) << 32 | rng.NextU32();
  }
  auto sweep = [&](bool force_scalar) {
    simd::ScopedScalarKernels kernels(force_scalar);
    uint64_t total = 0;
    double start = NowS();
    for (size_t r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < num_bitmaps; ++i) {
        for (size_t j = i + 1; j < num_bitmaps; ++j) {
          total += simd::IntersectPopcount(
              bitmaps.data() + i * words_per_bitmap,
              bitmaps.data() + j * words_per_bitmap, words_per_bitmap);
        }
      }
    }
    double ms = (NowS() - start) * 1e3;
    return std::pair<double, uint64_t>(ms, total);
  };
  auto [scalar_ms, scalar_total] = sweep(/*force_scalar=*/true);
  auto [simd_ms, simd_total] = sweep(/*force_scalar=*/false);
  return {scalar_ms, simd_ms, scalar_total == simd_total};
}

}  // namespace

int Main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse({argv + 1, argv + argc});
  if (!flags.ok()) {
    PrintTitle("FATAL: " + flags.status().ToString());
    return 1;
  }
  const bool smoke = flags->Has("smoke");
  const ScaleBudgets& budgets = smoke ? kSmokeBudgets : kFullBudgets;
  const ScaleSpec spec = smoke ? SmokeSpec() : FullSpec();
  const std::string cube_bin = "scale_cube.bin";
  const std::string cube_csv = "scale_cube.csv";
  const double bench_start = NowS();
  // Counters stay on for the whole run (relaxed-atomic adds, noise-level
  // next to ms-scale phases) so the --metrics_json export reflects the real
  // pipeline: columns streamed, binary bytes written, cache hits.
  MetricsRegistry::Global().SetEnabled(true);

  PrintTitle(std::string("Scale tier (") + (smoke ? "smoke" : "full") +
             "): generate -> sharded build -> binary cube -> serve");
  PrintPaperNote(
      "The paper audits ~3.8k TaskRabbit workers; this tier stresses the "
      "same cube pipeline at production population sizes.");

  // --- Phase 1: generate -----------------------------------------------------
  double t0 = NowS();
  MarketplaceDataset market =
      OrDie(GenerateScaleMarketplace(spec), "scale generation");
  GroupSpace space = OrDie(GroupSpace::Enumerate(market.schema()), "space");
  double generate_s = NowS() - t0;
  std::printf("generated %zu workers, %zu queries, %zu locations, %zu ranked "
              "columns, %zu groups in %.1fs\n",
              market.num_workers(), market.queries().size(),
              market.locations().size(), market.num_rankings(),
              space.num_groups(), generate_s);

  // --- Phase 2: sharded build streaming to the binary cube file --------------
  t0 = NowS();
  CubeAxes axes =
      OrDie(ResolveMarketplaceCubeAxes(market, space), "resolve axes");
  auto writer = OrDie(BinaryCubeColumnWriter::Create(cube_bin, axes),
                      "binary cube writer");
  ShardedBuildOptions sharded;
  sharded.shard_columns = 4096;
  sharded.parallelism = 4;
  MustOk(BuildMarketplaceCubeSharded(market, space, MarketMeasure::kEmd, {},
                                     axes, sharded, writer.get()),
         "sharded build");
  MustOk(writer->Finish(), "binary cube finish");
  double build_s = NowS() - t0;
  double build_rss_mb = ProcStatusMb("VmHWM:");
  std::printf("sharded build + binary save: %.1fs, peak RSS %.0f MB\n",
              build_s, build_rss_mb);

  // --- Phase 3: binary vs CSV load differential ------------------------------
  // The gated comparison is load-to-servable: a trusted mmap open (the
  // sealed-file fast path — Get works straight off the mapping, no parse)
  // against the CSV parse-and-materialize, each ending with the same random
  // Get workload. The CRC-verified open and the full binary materialize are
  // measured alongside; the materialized cubes cross-check bitwise identity.
  MappedCube::Options trusted;
  trusted.verify_checksum = false;
  t0 = NowS();
  MappedCube mapped_verified =
      OrDie(MappedCube::Open(cube_bin), "verified mmap open");
  double verified_open_s = NowS() - t0;
  Rng probe_rng(7);
  std::vector<std::array<uint32_t, 3>> probes(4096);
  for (auto& p : probes) {
    p = {probe_rng.NextU32(), probe_rng.NextU32(), probe_rng.NextU32()};
  }
  auto probe_sum = [&probes](auto&& get, size_t gs, size_t qs, size_t ls) {
    double sum = 0.0;
    for (const auto& p : probes) {
      sum += get(p[0] % gs, p[1] % qs, p[2] % ls).value_or(0.0);
    }
    return sum;
  };
  size_t gs = mapped_verified.axis_size(Dimension::kGroup);
  size_t qs = mapped_verified.axis_size(Dimension::kQuery);
  size_t ls = mapped_verified.axis_size(Dimension::kLocation);
  t0 = NowS();
  MappedCube mapped =
      OrDie(MappedCube::Open(cube_bin, trusted), "trusted mmap open");
  double mapped_sum = probe_sum(
      [&mapped](size_t g, size_t q, size_t l) { return mapped.Get(g, q, l); },
      gs, qs, ls);
  double binary_open_s = NowS() - t0;

  t0 = NowS();
  UnfairnessCube from_binary =
      OrDie(LoadCubeBinary(cube_bin), "binary load");
  double binary_load_s = NowS() - t0;

  MustOk(SaveCube(cube_csv, from_binary), "csv save");
  t0 = NowS();
  UnfairnessCube from_csv = OrDie(LoadCube(cube_csv), "csv load");
  double csv_sum = probe_sum(
      [&from_csv](size_t g, size_t q, size_t l) {
        return from_csv.Get(g, q, l);
      },
      gs, qs, ls);
  double csv_load_s = NowS() - t0;

  bool identical_formats = CubesIdentical(from_binary, from_csv);
  // Random-access parity of the mmap view against the materialized cube
  // (probe sums already agree bit-for-bit if this holds).
  bool mmap_parity = mapped_sum == csv_sum;
  for (const auto& p : probes) {
    size_t g = p[0] % gs, q = p[1] % qs, l = p[2] % ls;
    if (mapped.Get(g, q, l) != from_binary.Get(g, q, l)) {
      mmap_parity = false;
      break;
    }
  }
  double binary_speedup = binary_open_s > 0.0 ? csv_load_s / binary_open_s
                                              : budgets.binary_speedup;
  std::printf("present cells: %zu / %zu\n", from_binary.num_present(),
              from_binary.num_cells());
  std::printf("binary load-to-servable %.2f ms (verified open %.1f ms, full "
              "materialize %.1f ms); csv load-to-servable %.1f ms (%.0fx); "
              "formats identical: %s; mmap parity: %s\n",
              binary_open_s * 1e3, verified_open_s * 1e3, binary_load_s * 1e3,
              csv_load_s * 1e3, binary_speedup,
              identical_formats ? "yes" : "NO", mmap_parity ? "yes" : "NO");

  // --- Phase 4: SIMD sweep gate + search-cube differential -------------------
  // Cell-shaped sweep: a 2048-document dense universe is 32 bitmap words.
  SweepTimes sweep = TimePopcountSweep(/*words_per_bitmap=*/32,
                                       /*num_bitmaps=*/128,
                                       /*rounds=*/smoke ? 20 : 100);
  double simd_speedup =
      sweep.simd_ms > 0.0 ? sweep.scalar_ms / sweep.simd_ms : 1.0;
  std::printf("popcount sweep (32 words): scalar %.1f ms, %s %.1f ms "
              "(%.2fx), counts match: %s\n",
              sweep.scalar_ms, simd::ActiveKernel(), sweep.simd_ms,
              simd_speedup, sweep.counts_match ? "yes" : "NO");

  // Marketplace batched-vs-context column gate on a slice of the generated
  // columns: the batched engine (membership hoisted, as the sharded build
  // above amortizes it) must beat the pre-batch cell-shared context on
  // production-shaped rankings, with bitwise-identical cells.
  std::vector<std::pair<QueryId, LocationId>> market_columns;
  for (QueryId q = 0; q < static_cast<QueryId>(market.queries().size()) &&
                      market_columns.size() < 64;
       ++q) {
    for (LocationId l = 0; l < static_cast<LocationId>(
                                   market.locations().size()) &&
                           market_columns.size() < 64;
         ++l) {
      if (market.GetRanking(q, l) != nullptr) market_columns.emplace_back(q, l);
    }
  }
  MarketColumnComparison market_cmp = CompareMarketColumnPaths(
      market, space, MarketMeasure::kEmd, {}, market_columns,
      /*rounds=*/smoke ? 3 : 5);
  std::printf("market columns (%zu cols): context %.1f ms, batched %.1f ms "
              "(%.2fx), identical: %s\n",
              market_columns.size(), market_cmp.context_ms,
              market_cmp.batch_ms, market_cmp.speedup(),
              market_cmp.identical ? "yes" : "NO");

  SearchScaleSpec search_spec;
  search_spec.seed = spec.seed;
  if (smoke) {
    search_spec.num_observed_columns = 24;
    search_spec.observations_per_column = 24;
  }
  SearchDataset search =
      OrDie(GenerateScaleSearch(search_spec), "search generation");
  GroupSpace search_space =
      OrDie(GroupSpace::Enumerate(search.schema()), "search space");
  t0 = NowS();
  UnfairnessCube search_scalar = [&] {
    simd::ScopedScalarKernels kernels;
    return OrDie(BuildSearchCube(search, search_space, SearchMeasure::kJaccard),
                 "scalar search cube");
  }();
  double search_scalar_s = NowS() - t0;
  t0 = NowS();
  UnfairnessCube search_simd =
      OrDie(BuildSearchCube(search, search_space, SearchMeasure::kJaccard),
            "simd search cube");
  double search_simd_s = NowS() - t0;
  bool search_identical = CubesIdentical(search_scalar, search_simd);
  std::printf("search cube (Jaccard, dense cells): scalar %.2fs, dispatch "
              "%.2fs, outputs identical: %s\n",
              search_scalar_s, search_simd_s, search_identical ? "yes" : "NO");

  // --- Phase 5: serve --------------------------------------------------------
  t0 = NowS();
  IndexSet indices = IndexSet::Build(from_binary);
  double index_s = NowS() - t0;
  QuantificationService::Options service_options;
  service_options.cache_capacity = 4096;
  QuantificationService service(&from_binary, &indices, service_options);
  ServeLoadSpec load;
  load.seed = spec.seed + 1;
  load.num_requests = smoke ? 2'000 : 10'000;
  std::vector<QuantificationRequest> requests = GenerateServeRequests(
      load, from_binary.axis_size(Dimension::kGroup),
      from_binary.axis_size(Dimension::kQuery),
      from_binary.axis_size(Dimension::kLocation));
  // Batches of 256 model request waves: repeats across waves hit the answer
  // cache, repeats within a wave coalesce at the batch layer.
  constexpr size_t kServeBatch = 256;
  size_t serve_errors = 0;
  t0 = NowS();
  for (size_t base = 0; base < requests.size(); base += kServeBatch) {
    size_t n = std::min(kServeBatch, requests.size() - base);
    std::vector<QuantificationRequest> wave(requests.begin() + base,
                                            requests.begin() + base + n);
    std::vector<Result<QuantificationResult>> answers =
        service.AnswerBatch(wave);
    for (const auto& a : answers) serve_errors += a.ok() ? 0 : 1;
  }
  double serve_s = NowS() - t0;
  QuantificationService::Stats stats = service.stats();
  double qps = serve_s > 0.0 ? static_cast<double>(requests.size()) / serve_s
                             : 0.0;
  std::printf("serve: %zu requests in %.2fs (%.0f/s), %llu computed, %llu "
              "cache hits, %zu errors (index build %.2fs)\n",
              requests.size(), serve_s, qps,
              static_cast<unsigned long long>(stats.computations),
              static_cast<unsigned long long>(stats.cache_hits), serve_errors,
              index_s);

  // --- Budgets and gates -----------------------------------------------------
  double total_wall_s = NowS() - bench_start;
  double total_rss_mb = ProcStatusMb("VmHWM:");
  bool rss_known = build_rss_mb > 0.0;

  struct Gate {
    const char* name;
    bool pass;
    std::string detail;
  };
  bool simd_gated = simd::Avx2Available();
  std::vector<Gate> gates = {
      {"total_wall_within_budget", total_wall_s <= budgets.total_wall_s,
       Fmt(total_wall_s, 1) + "s <= " + Fmt(budgets.total_wall_s, 1) + "s"},
      {"build_rss_within_budget",
       !rss_known || build_rss_mb <= budgets.build_rss_mb,
       Fmt(build_rss_mb, 0) + " MB <= " + Fmt(budgets.build_rss_mb, 0) +
           " MB"},
      {"total_rss_within_budget",
       !rss_known || total_rss_mb <= budgets.total_rss_mb,
       Fmt(total_rss_mb, 0) + " MB <= " + Fmt(budgets.total_rss_mb, 0) +
           " MB"},
      {"binary_load_speedup", binary_speedup >= budgets.binary_speedup,
       Fmt(binary_speedup, 1) + "x >= " + Fmt(budgets.binary_speedup, 1) +
           "x"},
      {"formats_bitwise_identical", identical_formats, ""},
      {"mmap_random_access_parity", mmap_parity, ""},
      {"sweep_counts_identical", sweep.counts_match, ""},
      {"simd_sweep_speedup",
       !simd_gated || simd_speedup >= budgets.simd_speedup,
       simd_gated ? Fmt(simd_speedup, 2) + "x >= " +
                        Fmt(budgets.simd_speedup, 2) + "x"
                  : "skipped (no AVX2)"},
      {"search_cube_bitwise_identical", search_identical, ""},
      {"market_batch_bitwise_identical", market_cmp.identical, ""},
      {"market_batch_speedup",
       market_cmp.speedup() >= budgets.market_batch_speedup,
       Fmt(market_cmp.speedup(), 2) + "x >= " +
           Fmt(budgets.market_batch_speedup, 2) + "x"},
      {"serve_no_errors", serve_errors == 0,
       std::to_string(serve_errors) + " errors"},
  };

  std::vector<std::vector<std::string>> gate_rows;
  bool all_pass = true;
  for (const Gate& gate : gates) {
    all_pass = all_pass && gate.pass;
    gate_rows.push_back({gate.name, gate.pass ? "pass" : "FAIL", gate.detail});
  }
  PrintTitle("Budget gates");
  PrintTable({"gate", "result", "detail"}, gate_rows);

  std::string json = std::string("{\n  \"bench\": \"scale\",\n") +
      "  \"mode\": \"" + (smoke ? "smoke" : "full") + "\",\n" +
      "  \"workers\": " + std::to_string(market.num_workers()) + ",\n" +
      "  \"queries\": " + std::to_string(market.queries().size()) + ",\n" +
      "  \"locations\": " + std::to_string(market.locations().size()) + ",\n" +
      "  \"groups\": " + std::to_string(space.num_groups()) + ",\n" +
      "  \"ranked_columns\": " + std::to_string(market.num_rankings()) + ",\n" +
      "  \"cube_cells\": " + std::to_string(from_binary.num_cells()) + ",\n" +
      "  \"cube_present\": " + std::to_string(from_binary.num_present()) +
      ",\n" +
      "  \"generate_s\": " + Fmt(generate_s, 2) + ",\n" +
      "  \"sharded_build_s\": " + Fmt(build_s, 2) + ",\n" +
      "  \"build_peak_rss_mb\": " + Fmt(build_rss_mb, 1) + ",\n" +
      "  \"total_peak_rss_mb\": " + Fmt(total_rss_mb, 1) + ",\n" +
      "  \"binary_open_ms\": " + Fmt(binary_open_s * 1e3, 3) + ",\n" +
      "  \"verified_open_ms\": " + Fmt(verified_open_s * 1e3, 2) + ",\n" +
      "  \"binary_load_ms\": " + Fmt(binary_load_s * 1e3, 2) + ",\n" +
      "  \"csv_load_ms\": " + Fmt(csv_load_s * 1e3, 2) + ",\n" +
      "  \"binary_load_speedup\": " + Fmt(binary_speedup, 2) + ",\n" +
      "  \"simd_kernel\": \"" + simd::ActiveKernel() + "\",\n" +
      "  \"sweep_scalar_ms\": " + Fmt(sweep.scalar_ms, 2) + ",\n" +
      "  \"sweep_simd_ms\": " + Fmt(sweep.simd_ms, 2) + ",\n" +
      "  \"sweep_speedup\": " + Fmt(simd_speedup, 2) + ",\n" +
      "  \"market_columns\": " + std::to_string(market_columns.size()) +
      ",\n" +
      "  \"market_context_ms\": " + Fmt(market_cmp.context_ms, 2) + ",\n" +
      "  \"market_batched_ms\": " + Fmt(market_cmp.batch_ms, 2) + ",\n" +
      "  \"market_batch_speedup\": " + Fmt(market_cmp.speedup(), 2) + ",\n" +
      "  \"search_build_scalar_s\": " + Fmt(search_scalar_s, 3) + ",\n" +
      "  \"search_build_simd_s\": " + Fmt(search_simd_s, 3) + ",\n" +
      "  \"index_build_s\": " + Fmt(index_s, 2) + ",\n" +
      "  \"serve_requests\": " + std::to_string(requests.size()) + ",\n" +
      "  \"serve_s\": " + Fmt(serve_s, 2) + ",\n" +
      "  \"serve_qps\": " + Fmt(qps, 1) + ",\n" +
      "  \"serve_computations\": " + std::to_string(stats.computations) +
      ",\n" +
      "  \"serve_cache_hits\": " + std::to_string(stats.cache_hits) + ",\n" +
      "  \"total_wall_s\": " + Fmt(total_wall_s, 2) + ",\n" +
      "  \"gates\": {\n";
  for (size_t i = 0; i < gates.size(); ++i) {
    json += std::string("    \"") + gates[i].name +
            "\": " + (gates[i].pass ? "true" : "false") +
            (i + 1 < gates.size() ? ",\n" : "\n");
  }
  json += "  }\n}\n";

  Status written = WriteTextFile("BENCH_scale.json", json);
  if (!written.ok()) {
    PrintTitle("FATAL: " + written.ToString());
    return 1;
  }
  std::printf("\nwrote BENCH_scale.json (total wall %.1fs)\n", total_wall_s);

  std::remove(cube_bin.c_str());
  std::remove(cube_csv.c_str());

  // Optional observability exports: counters accumulated across the whole
  // run (cube.sharded.*, cube.io.*, serve.*) and the trace buffers.
  std::string metrics_path = flags->GetString("metrics_json");
  if (!metrics_path.empty()) {
    Status s = WriteTextFile(metrics_path, MetricsRegistry::Global().ToJson());
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::string trace_path = flags->GetString("trace_json");
  if (!trace_path.empty()) {
    Status s = Tracer::Global().WriteJson(trace_path);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }

  if (!all_pass) {
    PrintTitle("FATAL: scale budget gate failed (see table above)");
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace fairjob

int main(int argc, char** argv) { return fairjob::bench::Main(argc, argv); }
