// Sustained-load serving harness: drives QuantificationService with a
// Zipf-mixed request trace (market/scale_gen) in five phases —
//   A  differential under flips: closed-loop hammering while incremental
//      upserts flip snapshots; every OK answer must be bitwise identical to
//      a direct SolveQuantification against SOME published snapshot;
//   B  calibration: closed-loop capacity (hot cache, and cold for sizing
//      the overload phase);
//   C  sustained SLO: open-loop Poisson arrivals at the target QPS with
//      admission control + stale-while-revalidate and mid-run flips; gates
//      on achieved throughput AND live p99 against the declared SLO;
//   D  overload: offered ≈ 2x cold capacity with the cache off — the
//      service must shed (typed kUnavailable/kDeadlineExceeded) instead of
//      stalling, and the admission accounting must stay exact;
//   E  batched: open-loop with the micro-batch window on and the cache off
//      — every request rides SolveQuantificationBatch through the window
//      collector, which must hold the QPS/p99 SLO with exact accounting.
// Writes BENCH_load.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/quantification.h"
#include "core/unfairness_cube.h"
#include "market/scale_gen.h"
#include "serve/cache_key.h"
#include "serve/incremental.h"
#include "serve/load_gen.h"
#include "serve/quantification_service.h"

namespace fairjob {
namespace bench {
namespace {

bool AnswersIdentical(const QuantificationResult& a,
                      const QuantificationResult& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i].id != b.answers[i].id) return false;
    if (a.answers[i].value != b.answers[i].value) return false;
  }
  return true;
}

std::vector<std::pair<QueryId, LocationId>> ObservedColumns(
    const MarketplaceDataset& data, const ScaleSpec& spec) {
  std::vector<std::pair<QueryId, LocationId>> columns;
  for (QueryId q = 0; q < static_cast<QueryId>(spec.num_queries); ++q) {
    for (LocationId l = 0; l < static_cast<LocationId>(spec.num_locations);
         ++l) {
      if (data.GetRanking(q, l) != nullptr) columns.emplace_back(q, l);
    }
  }
  return columns;
}

// Re-crawl batches against an evolving scratch copy, so the oracle pass and
// the stressed pass replay the exact same deltas (same shape as
// bench_incremental's schedule: rotate the observed ranking per column).
std::vector<CrawlBatch> MakeBatches(const MarketplaceDataset& initial,
                                    const std::vector<std::pair<
                                        QueryId, LocationId>>& columns,
                                    size_t num_batches, size_t per_batch,
                                    uint64_t seed) {
  MarketplaceDataset scratch = initial;
  Rng rng(seed);
  std::vector<size_t> order(columns.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<CrawlBatch> batches;
  for (size_t b = 0; b < num_batches; ++b) {
    rng.Shuffle(order);
    CrawlBatch batch;
    for (size_t i = 0; i < per_batch && i < order.size(); ++i) {
      auto [q, l] = columns[order[i]];
      MarketRanking ranking = *scratch.GetRanking(q, l);
      size_t shift = 1 + rng.NextBelow(ranking.workers.size() - 1);
      std::rotate(ranking.workers.begin(), ranking.workers.begin() + shift,
                  ranking.workers.end());
      Status applied = scratch.SetRanking(q, l, ranking);
      if (!applied.ok()) {
        PrintTitle("FATAL: scratch apply: " + applied.ToString());
        std::exit(1);
      }
      batch.rows.push_back(CrawlBatchRow{q, l, std::move(ranking)});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

bool AccountingExact(const QuantificationService::Stats& stats) {
  return stats.admitted + stats.shed_deadline + stats.rejected_queue +
                 stats.rejected_followers ==
             stats.requests &&
         stats.cache_hits + stats.cache_misses == stats.admitted &&
         stats.computations + stats.coalesced == stats.cache_misses;
}

struct Gates {
  std::vector<std::string> failures;
  void Check(bool ok, const std::string& what) {
    if (!ok) failures.push_back(what);
  }
};

}  // namespace

int Main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse({argv + 1, argv + argc});
  if (!flags.ok()) {
    PrintTitle("FATAL: " + flags.status().ToString());
    return 1;
  }
  const bool smoke = flags->Has("smoke");
  // Zero is meaningful for --deadline_ms (0 = serve with no deadline at
  // all); the parser must hand it through, not reject it.
  const long deadline_ms =
      OrDie(flags->GetInt("deadline_ms", smoke ? 250 : 50), "--deadline_ms");
  const double duration_s =
      OrDie(flags->GetDouble("duration_s", smoke ? 0.5 : 3.0), "--duration_s");
  const double target_override =
      OrDie(flags->GetDouble("target_qps", 0.0), "--target_qps");
  const long workers_flag = OrDie(flags->GetInt("workers", 0), "--workers");

  size_t hardware = std::thread::hardware_concurrency();
  const size_t load_workers =
      workers_flag > 0 ? static_cast<size_t>(workers_flag)
                       : std::max<size_t>(8, hardware);

  PrintTitle("Sustained-load serving: differential, capacity, SLO, overload");
  PrintPaperNote(
      "Section 4's quantification must answer interactively while crawls "
      "keep flipping snapshots; this bench drives the hardened admission + "
      "shedding path and gates the live p99 against the declared SLO.");
  std::printf("hardware_concurrency: %zu, load workers: %zu\n", hardware,
              load_workers);

  // Metrics stay ON for the whole run: the admission/shed/stale counters
  // are part of the machinery under test and land in the JSON verbatim.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Reset();
  metrics.SetEnabled(true);

  ScaleSpec spec;
  spec.seed = 23;
  if (smoke) {
    spec.num_workers = 4000;
    spec.num_queries = 100;
    spec.num_locations = 6;
    spec.num_ranked_columns = 240;
    spec.min_ranking_length = 6;
    spec.max_ranking_length = 24;
  } else {
    spec.num_workers = 200'000;
    spec.num_queries = 2000;
    spec.num_locations = 25;
    spec.num_ranked_columns = 5000;
  }
  const size_t kFlipsDifferential = smoke ? 4 : 8;
  const size_t kFlipsSustained = smoke ? 3 : 6;
  const size_t kBatchColumns = smoke ? 4 : 25;

  MarketplaceDataset data =
      OrDie(GenerateScaleMarketplace(spec), "scale marketplace");
  GroupSpace space = OrDie(
      GroupSpace::Enumerate(OrDie(MakeScaleSchema(), "schema")), "space");
  std::vector<std::pair<QueryId, LocationId>> columns =
      ObservedColumns(data, spec);
  std::vector<CrawlBatch> batches =
      MakeBatches(data, columns, kFlipsDifferential + kFlipsSustained,
                  kBatchColumns, spec.seed * 131);

  ServeLoadSpec serve_spec;
  serve_spec.seed = 29;
  serve_spec.num_requests = smoke ? 2000 : 20'000;
  serve_spec.distinct_patterns = smoke ? 64 : 256;
  std::vector<QuantificationRequest> trace = GenerateServeRequests(
      serve_spec, space.num_groups(), spec.num_queries, spec.num_locations);
  if (trace.empty()) {
    PrintTitle("FATAL: empty serve trace");
    return 1;
  }
  std::printf(
      "columns: %zu, trace: %zu requests over %zu patterns, flips: %zu + %zu\n",
      columns.size(), trace.size(), serve_spec.distinct_patterns,
      kFlipsDifferential, kFlipsSustained);

  Gates gates;

  // --- Phase A: differential under snapshot flips ----------------------------
  // Oracle pass: a private maintainer replays the flip schedule serially,
  // solving every distinct pattern per published version.
  std::vector<QuantificationRequest> distinct;
  std::vector<size_t> pattern_of(trace.size());
  std::vector<std::vector<QuantificationResult>> oracle;
  {
    MarketplaceCubeMaintainer oracle_maintainer = OrDie(
        MarketplaceCubeMaintainer::Make(data, space, MarketMeasure::kExposure,
                                        MeasureOptions{}, CubeAxes{},
                                        hardware),
        "oracle maintainer");
    std::shared_ptr<const CubeSnapshot> initial = oracle_maintainer.snapshot();
    std::unordered_map<RequestCacheKey, size_t, RequestCacheKeyHash> seen;
    for (size_t i = 0; i < trace.size(); ++i) {
      RequestCacheKey key(trace[i], *initial);
      auto [it, inserted] = seen.emplace(std::move(key), distinct.size());
      pattern_of[i] = it->second;
      if (inserted) distinct.push_back(trace[i]);
    }
    auto record = [&] {
      std::vector<QuantificationResult> version;
      version.reserve(distinct.size());
      for (const QuantificationRequest& request : distinct) {
        version.push_back(
            OrDie(SolveQuantification(oracle_maintainer.snapshot()->cube(),
                                      oracle_maintainer.snapshot()->indices(),
                                      request),
                  "oracle solve"));
      }
      oracle.push_back(std::move(version));
    };
    record();
    for (size_t b = 0; b < kFlipsDifferential; ++b) {
      OrDie(oracle_maintainer.UpsertCrawlBatch(batches[b]), "oracle upsert");
      record();
    }
  }

  // Stressed pass: readers hammer the trace while the real maintainer
  // replays the identical schedule and flips the serving snapshot.
  MarketplaceCubeMaintainer maintainer = OrDie(
      MarketplaceCubeMaintainer::Make(data, space, MarketMeasure::kExposure,
                                      MeasureOptions{}, CubeAxes{}, hardware),
      "maintainer");
  uint64_t differential_checked = 0;
  uint64_t differential_mismatches = 0;
  {
    QuantificationService::Options options;
    options.cache_capacity = 4 * serve_spec.distinct_patterns;
    QuantificationService service(maintainer.snapshot(), options);

    const size_t reader_count = std::min<size_t>(6, load_workers);
    std::atomic<uint64_t> checked{0}, mismatched{0};
    std::atomic<bool> flips_done{false};
    std::vector<std::thread> readers;
    for (size_t t = 0; t < reader_count; ++t) {
      readers.emplace_back([&, t] {
        uint64_t my_checked = 0, my_mismatched = 0;
        // Keep reading until the flip schedule finishes, so every flip
        // happens under fire; each lap walks the whole trace rotated.
        for (size_t lap = 0; lap == 0 || !flips_done.load(); ++lap) {
          for (size_t i = 0; i < trace.size(); ++i) {
            size_t at = (i + t * 131) % trace.size();
            Result<QuantificationResult> answer = service.Answer(trace[at]);
            if (!answer.ok()) {
              ++my_mismatched;
              continue;
            }
            bool matched = false;
            for (const std::vector<QuantificationResult>& version : oracle) {
              if (AnswersIdentical(*answer, version[pattern_of[at]])) {
                matched = true;
                break;
              }
            }
            ++my_checked;
            if (!matched) ++my_mismatched;
          }
        }
        checked.fetch_add(my_checked);
        mismatched.fetch_add(my_mismatched);
      });
    }
    for (size_t b = 0; b < kFlipsDifferential; ++b) {
      UpsertReport report =
          OrDie(maintainer.UpsertCrawlBatch(batches[b]), "stressed upsert");
      if (report.published_new_snapshot) {
        service.SetSnapshot(maintainer.snapshot());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 10 : 25));
    }
    flips_done.store(true);
    for (std::thread& reader : readers) reader.join();
    differential_checked = checked.load();
    differential_mismatches = mismatched.load();
  }
  const bool differential_ok = differential_mismatches == 0;
  std::printf("phase A: %llu answers checked against %zu versions, %llu "
              "mismatches\n",
              static_cast<unsigned long long>(differential_checked),
              oracle.size(),
              static_cast<unsigned long long>(differential_mismatches));
  gates.Check(differential_ok, "differential: answers diverged from oracle");

  // --- Phase B: capacity calibration -----------------------------------------
  // Hot capacity is measured over a WARMED cache — on a slow box the cold
  // solves for 256 patterns alone can eat the whole calibration window and
  // make "hot capacity" a warm-up artifact (the same first-iteration trap
  // bench_serve guards against).
  const double calib_s = smoke ? 0.25 : 1.0;
  auto warm = [&](QuantificationService& service) {
    for (const QuantificationRequest& request : distinct) {
      OrDie(service.Answer(request), "warm answer");
    }
  };
  double hot_capacity_qps = 0.0;
  double cold_capacity_qps = 0.0;
  {
    QuantificationService::Options options;
    options.cache_capacity = 4 * serve_spec.distinct_patterns;
    QuantificationService hot(maintainer.snapshot(), options);
    LoadGenOptions load_options;
    load_options.num_workers = load_workers;
    warm(hot);
    hot_capacity_qps =
        RunClosedLoopLoad(hot, trace, calib_s, load_options).achieved_qps;

    QuantificationService::Options cold_options;
    cold_options.cache_capacity = 0;
    QuantificationService cold(maintainer.snapshot(), cold_options);
    cold_capacity_qps =
        RunClosedLoopLoad(cold, trace, calib_s, load_options).achieved_qps;
  }
  std::printf("phase B: capacity hot %.0f qps, cold %.0f qps\n",
              hot_capacity_qps, cold_capacity_qps);
  gates.Check(hot_capacity_qps > 0, "calibration: zero hot capacity");
  gates.Check(cold_capacity_qps > 0, "calibration: zero cold capacity");

  // --- Phase C: sustained open-loop at the SLO -------------------------------
  // Target: half the measured hot capacity, capped at the tier's declared
  // per-core rate — the SLO is declared against this rate, not best-effort.
  const double target_cap =
      std::min(smoke ? 8000.0 : 40'000.0,
               8000.0 * std::max<size_t>(1, hardware));
  const double target_qps =
      target_override > 0
          ? target_override
          : std::min(0.5 * hot_capacity_qps, target_cap);
  const int64_t deadline_budget_us = deadline_ms * 1000;
  const double slo_p99_us = static_cast<double>(
      deadline_budget_us > 0 ? deadline_budget_us : 1'000'000);

  LoadReport sustained;
  bool sustained_accounting = false;
  uint64_t sustained_flips = 0;
  {
    QuantificationService::Options options;
    options.cache_capacity = 4 * serve_spec.distinct_patterns;
    options.max_inflight = std::max<size_t>(2, hardware);
    options.max_queue_depth = 256;
    options.max_followers_per_flight = 64;
    // A flip can invalidate most of the working set at once (patterns with
    // unrestricted aggregation read every column), so the stale budget is
    // sized to bridge a full refresh storm at the declared rate: staleness
    // stays bounded per key, and the p99 never eats a cold recompute.
    options.stale_budget = 4096;
    QuantificationService service(maintainer.snapshot(), options);
    warm(service);  // SLO is declared for a warmed deploy, not a cold start

    ArrivalSpec arrival_spec;
    arrival_spec.seed = 31;
    arrival_spec.target_qps = target_qps;
    arrival_spec.duration_seconds = duration_s;
    std::vector<int64_t> arrivals = GenerateArrivalTimesMicros(arrival_spec);

    // Mid-run flips: the remaining batches, spread across the run.
    std::atomic<bool> stop_flipper{false};
    std::thread flipper([&] {
      const auto gap = std::chrono::microseconds(static_cast<int64_t>(
          duration_s * 1e6 / (kFlipsSustained + 1)));
      for (size_t b = 0; b < kFlipsSustained && !stop_flipper.load(); ++b) {
        std::this_thread::sleep_for(gap);
        UpsertReport report = OrDie(
            maintainer.UpsertCrawlBatch(batches[kFlipsDifferential + b]),
            "sustained upsert");
        if (report.published_new_snapshot) {
          service.SetSnapshot(maintainer.snapshot());
        }
      }
    });

    LoadGenOptions load_options;
    load_options.num_workers = load_workers;
    load_options.deadline_budget_micros = deadline_budget_us;
    sustained = RunOpenLoopLoad(service, trace, arrivals, load_options);
    stop_flipper.store(true);
    flipper.join();

    QuantificationService::Stats stats = service.stats();
    sustained_accounting = AccountingExact(stats);
    sustained_flips = stats.snapshot_flips;
  }
  const double shed_fraction =
      sustained.counts.offered > 0
          ? static_cast<double>(sustained.counts.deadline_exceeded +
                                sustained.counts.unavailable) /
                static_cast<double>(sustained.counts.offered)
          : 1.0;
  const double min_achieved_ratio = smoke ? 0.5 : 0.9;
  const double max_shed_fraction = smoke ? 0.10 : 0.01;
  PrintTable(
      {"phase C (sustained)", "value"},
      {{"target qps", Fmt(target_qps, 0)},
       {"offered", std::to_string(sustained.counts.offered)},
       {"ok", std::to_string(sustained.counts.ok)},
       {"shed (deadline)", std::to_string(sustained.counts.deadline_exceeded)},
       {"rejected (queue/followers)",
        std::to_string(sustained.counts.unavailable)},
       {"achieved qps", Fmt(sustained.achieved_qps, 0)},
       {"p50 us", Fmt(sustained.p50_us, 0)},
       {"p99 us", Fmt(sustained.p99_us, 0)},
       {"p99.9 us", Fmt(sustained.p999_us, 0)},
       {"snapshot flips mid-run", std::to_string(sustained_flips)}});
  gates.Check(sustained.counts.other_errors == 0,
              "sustained: untyped errors");
  gates.Check(sustained.achieved_qps >= min_achieved_ratio * target_qps,
              "sustained: achieved qps below " + Fmt(min_achieved_ratio, 2) +
                  "x target");
  gates.Check(sustained.p99_us <= slo_p99_us,
              "sustained: p99 " + Fmt(sustained.p99_us, 0) +
                  "us above the " + Fmt(slo_p99_us, 0) + "us SLO");
  gates.Check(shed_fraction <= max_shed_fraction,
              "sustained: shed fraction " + Fmt(shed_fraction, 4) +
                  " above " + Fmt(max_shed_fraction, 2));
  gates.Check(sustained_accounting, "sustained: admission accounting broken");

  // --- Phase D: overload (offered ≈ 2x cold capacity, cache off) -------------
  const double overload_qps =
      std::min(2.0 * cold_capacity_qps, 200'000.0);
  const double overload_s = smoke ? 0.3 : 1.0;
  LoadReport overload;
  bool overload_accounting = false;
  {
    QuantificationService::Options options;
    options.cache_capacity = 0;  // force every admitted request to compute
    options.max_inflight = std::max<size_t>(1, hardware / 2);
    options.max_queue_depth = 16;
    options.max_followers_per_flight = 8;
    QuantificationService service(maintainer.snapshot(), options);

    ArrivalSpec arrival_spec;
    arrival_spec.seed = 37;
    arrival_spec.target_qps = overload_qps;
    arrival_spec.duration_seconds = overload_s;
    std::vector<int64_t> arrivals = GenerateArrivalTimesMicros(arrival_spec);

    LoadGenOptions load_options;
    load_options.num_workers = load_workers;
    load_options.deadline_budget_micros = 5000;
    overload = RunOpenLoopLoad(service, trace, arrivals, load_options);
    overload_accounting = AccountingExact(service.stats());
  }
  std::printf(
      "phase D: offered %llu at %.0f qps -> ok %llu, shed %llu, rejected "
      "%llu, wall %.2fs\n",
      static_cast<unsigned long long>(overload.counts.offered), overload_qps,
      static_cast<unsigned long long>(overload.counts.ok),
      static_cast<unsigned long long>(overload.counts.deadline_exceeded),
      static_cast<unsigned long long>(overload.counts.unavailable),
      overload.wall_seconds);
  gates.Check(overload.counts.other_errors == 0, "overload: untyped errors");
  gates.Check(overload.counts.ok >= 1, "overload: nothing served at all");
  gates.Check(overload.counts.deadline_exceeded + overload.counts.unavailable >
                  0,
              "overload: nothing was shed at 2x capacity");
  gates.Check(overload.wall_seconds < overload_s + 30.0,
              "overload: run stalled instead of shedding");
  gates.Check(overload_accounting, "overload: admission accounting broken");

  // --- Phase E: micro-batched serving at the SLO -----------------------------
  // The window collector pays off when concurrent misses share cube
  // slices, so this phase serves the dashboard-hot subset of the trace
  // (its most frequent selector groups — where one gather answers many
  // lanes), cache off so every request exercises the window → batched
  // executor path. Two measurements, two window shapes:
  //   * capacity probe (closed loop): max_batch_size is dropped to half
  //     the worker count so windows drain the moment enough in-flight
  //     misses have parked — the wide window is only a backstop, the
  //     leader never idles, and the probe measures what shared-pass
  //     drains can do on this box. Reported as the uplift column.
  //   * SLO run (open loop): the window is half a measured solve cost
  //     (bounded to [0.5ms, 5ms]) — a latency budget, not a throughput
  //     device — and the run must sustain 0.35x the sequential capacity
  //     inside a deadline/SLO scaled in solve costs, shedding typed and
  //     the accounting identity exact.
  // Throughput uplift is *gated* in bench_batch_exec, which drives the
  // executor at full occupancy; an open loop held below capacity cannot
  // and should not reproduce that number, so here it is report-only. On
  // fast boxes (smoke tier: tens of microseconds per solve) the scaled
  // knobs all reduce to the declared constants.
  const size_t kHotGroups = 4;
  std::vector<QuantificationRequest> hot_trace;
  {
    auto selector_key = [](const QuantificationRequest& r) {
      std::string key = std::to_string(static_cast<int>(r.target));
      key += '|';
      for (size_t p : r.agg1.positions) {
        key += std::to_string(p);
        key += ',';
      }
      key += '|';
      for (size_t p : r.agg2.positions) {
        key += std::to_string(p);
        key += ',';
      }
      return key;
    };
    std::unordered_map<std::string, uint64_t> group_counts;
    for (const QuantificationRequest& r : trace) ++group_counts[selector_key(r)];
    std::vector<std::pair<uint64_t, std::string>> ranked;
    ranked.reserve(group_counts.size());
    for (const auto& [key, count] : group_counts) ranked.emplace_back(count, key);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (ranked.size() > kHotGroups) ranked.resize(kHotGroups);
    std::unordered_set<std::string> hot_keys;
    for (const auto& [count, key] : ranked) hot_keys.insert(key);
    for (const QuantificationRequest& r : trace) {
      if (hot_keys.count(selector_key(r)) != 0) hot_trace.push_back(r);
    }
  }
  // More workers than the general phases: windows coalesce concurrent
  // parkers, so the capacity probe needs enough of them in flight to fill
  // one.
  const size_t batch_workers = std::max<size_t>(load_workers, 16);
  LoadGenOptions calib_options;
  calib_options.num_workers = batch_workers;
  // True per-solve cost, measured single-threaded with no service in the
  // way. The hot trace has few distinct keys, so a closed-loop probe
  // through the service would coalesce duplicates in single flight and
  // overstate capacity — noisily, run to run — and every knob derived from
  // it (window, target, deadline, SLO) would inherit the error.
  double solve_cost_us = 0.0;
  {
    const std::shared_ptr<const CubeSnapshot> snap = maintainer.snapshot();
    const size_t samples = std::min<size_t>(hot_trace.size(), smoke ? 2000 : 64);
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < samples; ++i) {
      OrDie(SolveQuantification(snap->cube(), snap->indices(), hot_trace[i]),
            "phase E calibration solve");
    }
    const auto t1 = std::chrono::steady_clock::now();
    solve_cost_us = std::chrono::duration<double, std::micro>(t1 - t0).count() /
                    static_cast<double>(std::max<size_t>(1, samples));
  }
  const double batched_seq_qps =
      1e6 * static_cast<double>(std::max<size_t>(1, hardware)) /
      std::max(1.0, solve_cost_us);
  // Capacity probe: drain-on-full windows. Pending entries are unique keys
  // (duplicates coalesce as followers), so requiring every worker to park a
  // distinct key could stall a window — half the workers is usually
  // reachable, and a backstop of a few solve costs bounds the stall when
  // the hot trace has fewer distinct keys than that.
  QuantificationService::Options probe_options;
  probe_options.cache_capacity = 0;
  probe_options.max_inflight = std::max<size_t>(4, hardware);
  probe_options.max_queue_depth = 256;
  probe_options.batch_window_micros = std::clamp<int64_t>(
      static_cast<int64_t>(8.0 * solve_cost_us), 1000, 250'000);
  probe_options.max_batch_size = std::max<size_t>(2, batch_workers / 2);
  double batched_capacity_qps = 0.0;
  {
    QuantificationService win(maintainer.snapshot(), probe_options);
    batched_capacity_qps =
        RunClosedLoopLoad(win, hot_trace, calib_s, calib_options).achieved_qps;
  }
  // SLO run: the window is a latency budget of half a solve cost, so parked
  // time can never dominate service time, and the target sits at 0.4x the
  // sequential capacity — comfortably stable, the gate is the tail.
  const int64_t batched_window_us = std::clamp<int64_t>(
      static_cast<int64_t>(0.5 * solve_cost_us), 500, 5'000);
  QuantificationService::Options batched_options;
  batched_options.cache_capacity = 0;
  batched_options.max_inflight = std::max<size_t>(4, hardware);
  batched_options.max_queue_depth = 256;
  batched_options.batch_window_micros = batched_window_us;
  batched_options.max_batch_size = 64;
  const double batched_target_qps =
      std::min(0.35 * batched_seq_qps, target_cap);
  // A Poisson burst of k arrivals time-slices k solves on a saturated core,
  // so the tail is inherently a multiple of the solve cost: the SLO allows
  // 20 of them, the deadline 40 (shedding is the failure mode, not the
  // budget).
  const int64_t batched_deadline_us =
      deadline_budget_us > 0
          ? std::max(deadline_budget_us,
                     static_cast<int64_t>(40.0 * solve_cost_us))
          : 0;
  const double batched_slo_p99_us =
      std::max(static_cast<double>(deadline_budget_us > 0 ? deadline_budget_us
                                                          : 1'000'000),
               20.0 * solve_cost_us);
  // Enough arrivals for a meaningful p99 even when heavy solves cap the
  // target at tens of qps.
  const double batched_duration_s = std::min(
      30.0, std::max(duration_s, 120.0 / std::max(1.0, batched_target_qps)));
  LoadReport batched;
  bool batched_accounting = false;
  uint64_t batched_windows = 0;
  uint64_t batched_parked = 0;
  uint64_t batched_window_shed = 0;
  {
    QuantificationService service(maintainer.snapshot(), batched_options);

    ArrivalSpec arrival_spec;
    arrival_spec.seed = 41;
    arrival_spec.target_qps = batched_target_qps;
    arrival_spec.duration_seconds = batched_duration_s;
    std::vector<int64_t> arrivals = GenerateArrivalTimesMicros(arrival_spec);

    LoadGenOptions load_options;
    load_options.num_workers = batch_workers;
    load_options.deadline_budget_micros = batched_deadline_us;
    batched = RunOpenLoopLoad(service, hot_trace, arrivals, load_options);

    QuantificationService::Stats stats = service.stats();
    batched_accounting = AccountingExact(stats);
    batched_windows = stats.batch_windows;
    batched_parked = stats.batch_parked;
    batched_window_shed = stats.batch_window_shed;
  }
  const double batched_shed_fraction =
      batched.counts.offered > 0
          ? static_cast<double>(batched.counts.deadline_exceeded +
                                batched.counts.unavailable) /
                static_cast<double>(batched.counts.offered)
          : 1.0;
  const double batched_uplift =
      batched_seq_qps > 0 ? batched_capacity_qps / batched_seq_qps : 0.0;
  PrintTable(
      {"phase E (batched)", "value"},
      {{"hot trace", std::to_string(hot_trace.size()) + " reqs / " +
                         std::to_string(kHotGroups) + " groups"},
       {"solve cost us", Fmt(solve_cost_us, 0)},
       {"window us", std::to_string(batched_window_us)},
       {"sequential capacity qps", Fmt(batched_seq_qps, 0)},
       {"batched capacity qps", Fmt(batched_capacity_qps, 0)},
       {"uplift", Fmt(batched_uplift, 2) + "x"},
       {"target qps", Fmt(batched_target_qps, 0)},
       {"offered", std::to_string(batched.counts.offered)},
       {"ok", std::to_string(batched.counts.ok)},
       {"shed (deadline)", std::to_string(batched.counts.deadline_exceeded)},
       {"achieved qps", Fmt(batched.achieved_qps, 0)},
       {"p50 us", Fmt(batched.p50_us, 0)},
       {"p99 us", Fmt(batched.p99_us, 0)},
       {"p99 slo us", Fmt(batched_slo_p99_us, 0)},
       {"windows", std::to_string(batched_windows)},
       {"parked", std::to_string(batched_parked)},
       {"window shed", std::to_string(batched_window_shed)}});
  gates.Check(batched.counts.other_errors == 0, "batched: untyped errors");
  gates.Check(batched_windows > 0, "batched: no window ever drained");
  gates.Check(batched.achieved_qps >=
                  min_achieved_ratio * batched_target_qps,
              "batched: achieved qps below " + Fmt(min_achieved_ratio, 2) +
                  "x target");
  gates.Check(batched.p99_us <= batched_slo_p99_us,
              "batched: p99 " + Fmt(batched.p99_us, 0) + "us above the " +
                  Fmt(batched_slo_p99_us, 0) + "us SLO");
  gates.Check(batched_shed_fraction <= max_shed_fraction,
              "batched: shed fraction " + Fmt(batched_shed_fraction, 4) +
                  " above " + Fmt(max_shed_fraction, 2));
  gates.Check(batched_accounting, "batched: admission accounting broken");

  metrics.SetEnabled(false);
  std::string metrics_json = metrics.ToJson();

  auto counts_json = [](const LoadCounts& c) {
    return std::string("{\"offered\": ") + std::to_string(c.offered) +
           ", \"ok\": " + std::to_string(c.ok) +
           ", \"deadline_exceeded\": " + std::to_string(c.deadline_exceeded) +
           ", \"unavailable\": " + std::to_string(c.unavailable) +
           ", \"other_errors\": " + std::to_string(c.other_errors) + "}";
  };
  std::string json =
      "{\n  \"bench\": \"load\",\n  \"smoke\": " +
      std::string(smoke ? "true" : "false") +
      ",\n  \"hardware_concurrency\": " + std::to_string(hardware) +
      ",\n  \"load_workers\": " + std::to_string(load_workers) +
      ",\n  \"trace_len\": " + std::to_string(trace.size()) +
      ",\n  \"distinct_patterns\": " + std::to_string(distinct.size()) +
      ",\n  \"differential\": {\"checked\": " +
      std::to_string(differential_checked) +
      ", \"versions\": " + std::to_string(oracle.size()) +
      ", \"mismatches\": " + std::to_string(differential_mismatches) +
      ", \"ok\": " + (differential_ok ? "true" : "false") +
      "},\n  \"capacity\": {\"hot_qps\": " + Fmt(hot_capacity_qps, 0) +
      ", \"cold_qps\": " + Fmt(cold_capacity_qps, 0) +
      "},\n  \"sustained\": {\"target_qps\": " + Fmt(target_qps, 0) +
      ", \"deadline_ms\": " + std::to_string(deadline_ms) +
      ", \"slo_p99_us\": " + Fmt(slo_p99_us, 0) +
      ", \"achieved_qps\": " + Fmt(sustained.achieved_qps, 0) +
      ", \"p50_us\": " + Fmt(sustained.p50_us, 0) +
      ", \"p99_us\": " + Fmt(sustained.p99_us, 0) +
      ", \"p999_us\": " + Fmt(sustained.p999_us, 0) +
      ", \"max_us\": " + Fmt(sustained.max_us, 0) +
      ", \"shed_fraction\": " + Fmt(shed_fraction, 4) +
      ", \"snapshot_flips\": " + std::to_string(sustained_flips) +
      ", \"counts\": " + counts_json(sustained.counts) +
      ", \"accounting_exact\": " + (sustained_accounting ? "true" : "false") +
      "},\n  \"overload\": {\"offered_qps\": " + Fmt(overload_qps, 0) +
      ", \"wall_seconds\": " + Fmt(overload.wall_seconds, 2) +
      ", \"counts\": " + counts_json(overload.counts) +
      ", \"accounting_exact\": " + (overload_accounting ? "true" : "false") +
      "},\n  \"batched\": {\"hot_trace_len\": " +
      std::to_string(hot_trace.size()) +
      ", \"hot_groups\": " + std::to_string(kHotGroups) +
      ", \"solve_cost_us\": " + Fmt(solve_cost_us, 0) +
      ", \"window_us\": " + std::to_string(batched_window_us) +
      ", \"sequential_capacity_qps\": " + Fmt(batched_seq_qps, 0) +
      ", \"capacity_qps\": " + Fmt(batched_capacity_qps, 0) +
      ", \"uplift\": " + Fmt(batched_uplift, 2) +
      ", \"slo_p99_us\": " + Fmt(batched_slo_p99_us, 0) +
      ", \"target_qps\": " + Fmt(batched_target_qps, 0) +
      ", \"achieved_qps\": " + Fmt(batched.achieved_qps, 0) +
      ", \"p50_us\": " + Fmt(batched.p50_us, 0) +
      ", \"p99_us\": " + Fmt(batched.p99_us, 0) +
      ", \"shed_fraction\": " + Fmt(batched_shed_fraction, 4) +
      ", \"windows\": " + std::to_string(batched_windows) +
      ", \"parked\": " + std::to_string(batched_parked) +
      ", \"window_shed\": " + std::to_string(batched_window_shed) +
      ", \"counts\": " + counts_json(batched.counts) +
      ", \"accounting_exact\": " + (batched_accounting ? "true" : "false") +
      "},\n  \"gates_failed\": " + std::to_string(gates.failures.size()) +
      ",\n  \"metrics\": " + metrics_json + "\n}\n";
  Status written = WriteTextFile("BENCH_load.json", json);
  if (!written.ok()) {
    PrintTitle("FATAL: " + written.ToString());
    return 1;
  }
  std::printf("\nwrote BENCH_load.json\n");

  std::string metrics_path = flags->GetString("metrics_json");
  if (!metrics_path.empty()) {
    Status s = WriteTextFile(metrics_path, metrics_json);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }

  if (!gates.failures.empty()) {
    for (const std::string& failure : gates.failures) {
      PrintTitle("FATAL: " + failure);
    }
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace fairjob

int main(int argc, char** argv) { return fairjob::bench::Main(argc, argv); }
