// Extension bench: statistical backing for the headline tables (the paper's
// conclusion asks for "further statistical investigations").
//  * Bootstrap 95% CIs for the Table 8 group unfairness values — showing
//    which adjacent positions in the ranking are separable and which are
//    within resampling noise;
//  * paired permutation tests for the Table 12 male/female comparison,
//    overall and inside the gender-flip cities.

#include "bench_util.h"
#include "core/stats.h"

namespace fairjob {
namespace bench {
namespace {

void Run() {
  TaskRabbitBoxes boxes = OrDie(BuildTaskRabbitBoxes(), "TaskRabbit build");
  const FBox& emd = *boxes.emd;
  Rng rng(777);

  PrintTitle("Bootstrap 95% CIs for Table 8 group unfairness (EMD)");
  std::vector<FBox::NamedAnswer> groups = OrDie(
      emd.TopK(Dimension::kGroup, boxes.space->num_groups()), "groups");
  std::vector<std::vector<std::string>> rows;
  for (const auto& answer : groups) {
    size_t pos = OrDie(emd.PosOf(Dimension::kGroup, answer.name), "pos");
    ConfidenceInterval ci = OrDie(
        BootstrapAggregate(emd.cube(), Dimension::kGroup, pos, {}, {}, 400,
                           0.95, &rng),
        "bootstrap");
    rows.push_back({answer.name, Fmt(ci.point), Fmt(ci.lo), Fmt(ci.hi),
                    std::to_string(ci.cells)});
  }
  PrintTable({"Group", "d", "CI lo", "CI hi", "cells"}, rows);

  PrintTitle("Rank stability — which adjacent Table 8 positions separate");
  std::vector<StableRankEntry> stable = OrDie(
      RankWithStability(emd.cube(), Dimension::kGroup,
                        boxes.space->num_groups(), 300, 0.95, &rng),
      "stability");
  for (size_t i = 0; i < stable.size(); ++i) {
    std::printf("  %2zu. %-14s %.3f [%.3f, %.3f]%s\n", i + 1,
                boxes.space->label(stable[i].id)
                    .DisplayName(boxes.space->schema())
                    .c_str(),
                stable[i].value, stable[i].ci.lo, stable[i].ci.hi,
                stable[i].separated_from_next ? "" : "  ~ ties with next");
  }

  PrintTitle(
      "Permutation tests — White Male vs White Female cells (EMD)");
  // The strongest pairwise gender contrast: White Male vs White Female (the
  // two largest cells), overall and inside gender-flip vs non-flip cities.
  size_t wm = OrDie(emd.PosOf(Dimension::kGroup, "White Male"), "wm");
  size_t wf = OrDie(emd.PosOf(Dimension::kGroup, "White Female"), "wf");

  PermutationTestResult overall = OrDie(
      PairedPermutationTest(emd.cube(), Dimension::kGroup, wm, wf, {}, {},
                            2000, &rng),
      "overall test");
  std::printf("overall: mean diff (WM − WF) = %+.4f over %zu cells, "
              "p = %.4f\n",
              overall.observed_diff, overall.pairs, overall.p_value);

  for (const char* city :
       {"Nashville, TN", "Charlotte, NC", "Birmingham, UK", "Detroit, MI"}) {
    size_t loc = OrDie(emd.PosOf(Dimension::kLocation, city), "loc");
    PermutationTestResult test = OrDie(
        PairedPermutationTest(emd.cube(), Dimension::kGroup, wm, wf, {},
                              AxisSelector::Single(loc), 2000, &rng),
        "city test");
    std::printf("%-18s mean diff = %+.4f over %zu cells, p = %.4f%s\n", city,
                test.observed_diff, test.pairs, test.p_value,
                test.p_value < 0.05 ? "  (significant)" : "");
  }
  PrintPaperNote(
      "per-city contrasts differ from the overall one in both size and sign "
      "(Nashville and Charlotte swap gender penalties; Birmingham is the "
      "most severe market); the p-values say which of those Problem-2-style "
      "reversals exceed resampling chance — the statistical follow-up the "
      "paper's conclusion calls for");
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
