// Extension bench: cross-measure agreement on the Google study. The paper
// repeatedly observes that Kendall-Tau and Jaccard "report mostly similar
// results" and flags disagreements for future work; this bench quantifies
// agreement across all four implemented search measures (adding the induced
// top-k Spearman footrule and rank-biased overlap) with pairwise Kendall-Tau
// correlations between their 11-group unfairness rankings.

#include "bench_util.h"
#include "ranking/kendall_tau.h"

namespace fairjob {
namespace bench {
namespace {

constexpr SearchMeasure kMeasures[] = {
    SearchMeasure::kKendallTau, SearchMeasure::kJaccard,
    SearchMeasure::kFootrule, SearchMeasure::kRbo};

void Run() {
  PrintTitle("Cross-measure agreement on the Google study (extension)");
  PrintPaperNote(
      "the paper reports Kendall-Tau and Jaccard 'mostly similar'; this adds "
      "footrule and RBO");

  GoogleWorld world = OrDie(BuildGoogleStudy(GoogleStudyConfig{}), "study");
  GroupSpace space =
      OrDie(GroupSpace::Enumerate(world.dataset.schema()), "space");

  // Per-measure group rankings (ids ordered most-unfair first).
  std::vector<std::vector<FBox::NamedAnswer>> rankings;
  std::vector<RankedList> id_rankings;
  for (SearchMeasure measure : kMeasures) {
    FBox box = OrDie(
        FBox::ForSearch(&world.dataset_by_base_query, &space, measure),
        "fbox");
    std::vector<FBox::NamedAnswer> top =
        OrDie(box.TopK(Dimension::kGroup, space.num_groups()), "top-k");
    RankedList ids;
    for (const auto& answer : top) {
      ids.push_back(*space.FindByDisplayName(answer.name));
    }
    rankings.push_back(std::move(top));
    id_rankings.push_back(std::move(ids));
  }

  std::vector<std::vector<std::string>> rows;
  for (size_t rank = 0; rank < space.num_groups(); ++rank) {
    std::vector<std::string> row;
    for (size_t m = 0; m < rankings.size(); ++m) {
      row.push_back(rankings[m][rank].name + " (" +
                    Fmt(rankings[m][rank].value) + ")");
    }
    rows.push_back(std::move(row));
  }
  PrintTable({"KendallTau", "Jaccard", "Footrule", "RBO"}, rows);

  std::printf("\npairwise ranking correlations (Kendall tau):\n");
  for (size_t i = 0; i < id_rankings.size(); ++i) {
    for (size_t j = i + 1; j < id_rankings.size(); ++j) {
      double tau =
          OrDie(KendallTauCorrelation(id_rankings[i], id_rankings[j]),
                "correlation");
      std::printf("  %-10s vs %-10s  tau = %+.3f\n",
                  SearchMeasureName(kMeasures[i]),
                  SearchMeasureName(kMeasures[j]), tau);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
