// Query-serving throughput: the same skewed request trace answered cold
// (cache disabled, every request recomputes), hot (sharded LRU warmed over
// the keyspace) and batched (AnswerBatch dedup + pool fan-out). Writes
// BENCH_serve.json and cross-checks that served answers stay bit-equal to
// direct SolveQuantification.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/indices.h"
#include "core/quantification.h"
#include "core/unfairness_cube.h"
#include "serve/quantification_service.h"

namespace fairjob {
namespace bench {
namespace {

// Best-of-R wall-clock of `fn`, in milliseconds.
template <typename Fn>
double TimeMs(size_t repetitions, Fn&& fn) {
  double best = 0.0;
  for (size_t r = 0; r < repetitions; ++r) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            stop - start)
            .count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// Every (target, direction, k, algorithm) combination the serving layer
// accepts; kZero keeps NRA eligible so the mix spans all four family
// members (NRA's bounds only work top-down, over at most 64 lists — one
// per cell of the two aggregated axes).
std::vector<QuantificationRequest> RequestSpace(const UnfairnessCube& cube) {
  std::vector<QuantificationRequest> space;
  for (Dimension target :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    size_t aggregated_lists = cube.num_cells() / cube.axis_size(target);
    for (RankDirection direction :
         {RankDirection::kMostUnfair, RankDirection::kLeastUnfair}) {
      for (size_t k : {3u, 5u, 10u}) {
        for (TopKAlgorithm algorithm :
             {TopKAlgorithm::kThresholdAlgorithm, TopKAlgorithm::kFA,
              TopKAlgorithm::kNRA, TopKAlgorithm::kScan}) {
          if (algorithm == TopKAlgorithm::kNRA &&
              (direction == RankDirection::kLeastUnfair ||
               aggregated_lists > 64)) {
            continue;
          }
          QuantificationRequest request;
          request.target = target;
          request.k = k;
          request.direction = direction;
          request.algorithm = algorithm;
          request.missing = MissingCellPolicy::kZero;
          space.push_back(request);
        }
      }
    }
  }
  return space;
}

// 80/20-style skewed trace over the keyspace (u^2 biases toward index 0).
std::vector<QuantificationRequest> MakeTrace(
    const std::vector<QuantificationRequest>& space, size_t length,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<QuantificationRequest> trace;
  trace.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    double u = rng.NextDouble();
    trace.push_back(space[static_cast<size_t>(u * u * space.size())]);
  }
  return trace;
}

bool AnswersIdentical(const QuantificationResult& a,
                      const QuantificationResult& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i].id != b.answers[i].id) return false;
    if (a.answers[i].value != b.answers[i].value) return false;
  }
  return true;
}

// One metrics-on pass so the serve.* / serve.cache.* families have data for
// the "metrics" JSON section; runs after the timing loops, which are always
// metrics-off.
std::string InstrumentedPassJson(const UnfairnessCube& cube,
                                 const IndexSet& indices,
                                 const std::vector<QuantificationRequest>&
                                     trace) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Reset();
  Tracer::Global().Reset();
  metrics.SetEnabled(true);
  Tracer::Global().SetEnabled(true);

  QuantificationService service(&cube, &indices);
  for (const QuantificationRequest& request : trace) {
    OrDie(service.Answer(request), "instrumented answer");
  }
  std::vector<QuantificationRequest> chunk(
      trace.begin(), trace.begin() + std::min<size_t>(trace.size(), 64));
  for (Result<QuantificationResult>& result : service.AnswerBatch(chunk)) {
    OrDie(std::move(result), "instrumented batch answer");
  }

  metrics.SetEnabled(false);
  Tracer::Global().SetEnabled(false);
  return metrics.ToJson();
}

}  // namespace

int Main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse({argv + 1, argv + argc});
  if (!flags.ok()) {
    PrintTitle("FATAL: " + flags.status().ToString());
    return 1;
  }
  const bool smoke = flags->Has("smoke");
  const size_t kReps = smoke ? 1 : 3;
  const size_t kTraceLen = smoke ? 500 : 4000;
  const size_t kBatchSize = 64;

  PrintTitle("Query serving: cold vs hot (sharded LRU) vs batched");
  PrintPaperNote(
      "Problem 1 quantification is the interactive primitive of Section 4; "
      "this bench guards the serving layer's cache and dedup win.");

  size_t hardware = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %zu\n", hardware);

  TaskRabbitConfig config;
  config.num_workers = smoke ? 150 : 400;
  config.max_cities = smoke ? 3 : 6;
  config.max_subjobs_per_category = 2;
  TaskRabbitDataset world = OrDie(BuildTaskRabbitDataset(config), "world");
  GroupSpace space =
      OrDie(GroupSpace::Enumerate(world.dataset.schema()), "space");
  UnfairnessCube cube =
      OrDie(BuildMarketplaceCube(world.dataset, space, MarketMeasure::kEmd,
                                 MeasureOptions{}, CubeAxes{}, hardware),
            "cube");
  IndexSet indices = IndexSet::Build(cube);

  std::vector<QuantificationRequest> request_space = RequestSpace(cube);
  std::vector<QuantificationRequest> trace =
      MakeTrace(request_space, kTraceLen, 7);
  std::printf("keyspace: %zu distinct requests, trace: %zu, cube: %zu cells\n",
              request_space.size(), trace.size(), cube.num_cells());

  // Identity guard: served answers (cached and batched) must stay bit-equal
  // to direct SolveQuantification for every key in the space.
  bool all_identical = true;
  {
    QuantificationService service(&cube, &indices);
    std::vector<Result<QuantificationResult>> batched =
        service.AnswerBatch(request_space);
    for (size_t i = 0; i < request_space.size(); ++i) {
      QuantificationResult direct =
          OrDie(SolveQuantification(cube, indices, request_space[i]),
                "direct solve");
      QuantificationResult served =
          OrDie(service.Answer(request_space[i]), "served answer");
      QuantificationResult from_batch =
          OrDie(std::move(batched[i]), "batched answer");
      all_identical = all_identical && AnswersIdentical(direct, served) &&
                      AnswersIdentical(direct, from_batch);
    }
  }

  // Cold: cache off, a fresh service each rep — every request recomputes.
  double cold_ms = TimeMs(kReps, [&] {
    QuantificationService::Options options;
    options.cache_capacity = 0;
    QuantificationService service(&cube, &indices, options);
    for (const QuantificationRequest& request : trace) {
      OrDie(service.Answer(request), "cold answer");
    }
  });

  // Hot: cache warmed over the whole keyspace, then the trace replayed. The
  // first replay after warm-up still pays one-time costs the cache cannot
  // hide (lazily faulted pages, cold branch predictors, allocator growth),
  // so it is timed separately as hot_first_ms; the gated hot_ms is steady
  // state — best of kReps replays taken only after that first one.
  QuantificationService hot(&cube, &indices);
  for (const QuantificationRequest& request : request_space) {
    OrDie(hot.Answer(request), "warmup answer");
  }
  auto replay_hot = [&] {
    for (const QuantificationRequest& request : trace) {
      OrDie(hot.Answer(request), "hot answer");
    }
  };
  double hot_first_ms = TimeMs(1, replay_hot);
  double hot_ms = TimeMs(kReps, replay_hot);
  // Steady-state per-request latency distribution, one timed call at a time
  // (exact sorted-sample percentiles, same method as serve/load_gen).
  std::vector<double> hot_samples;
  hot_samples.reserve(trace.size());
  for (const QuantificationRequest& request : trace) {
    auto start = std::chrono::steady_clock::now();
    OrDie(hot.Answer(request), "hot sampled answer");
    auto stop = std::chrono::steady_clock::now();
    hot_samples.push_back(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            stop - start)
            .count());
  }
  std::sort(hot_samples.begin(), hot_samples.end());
  auto quantile = [&](double q) {
    if (hot_samples.empty()) return 0.0;
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(hot_samples.size())));
    return hot_samples[std::min(rank == 0 ? 0 : rank - 1,
                                hot_samples.size() - 1)];
  };
  double hot_p50_us = quantile(0.50);
  double hot_p99_us = quantile(0.99);
  auto cache = hot.cache_stats();

  // Batched: fresh service per rep, trace chunked through AnswerBatch —
  // dedup plus pool fan-out, no pre-warming.
  double batched_ms = TimeMs(kReps, [&] {
    QuantificationService service(&cube, &indices);
    for (size_t i = 0; i < trace.size(); i += kBatchSize) {
      size_t end = std::min(trace.size(), i + kBatchSize);
      std::vector<QuantificationRequest> chunk(trace.begin() + i,
                                               trace.begin() + end);
      for (Result<QuantificationResult>& result : service.AnswerBatch(chunk)) {
        OrDie(std::move(result), "batched answer");
      }
    }
  });

  double n = static_cast<double>(trace.size());
  double cold_qps = cold_ms > 0 ? 1000.0 * n / cold_ms : 0;
  double hot_qps = hot_ms > 0 ? 1000.0 * n / hot_ms : 0;
  double batched_qps = batched_ms > 0 ? 1000.0 * n / batched_ms : 0;
  double speedup = cold_qps > 0 ? hot_qps / cold_qps : 0;

  PrintTable(
      {"pass", "ms", "req/s", "vs cold"},
      {{"cold (no cache)", Fmt(cold_ms), Fmt(cold_qps, 0), "1.00x"},
       {"hot first replay", Fmt(hot_first_ms),
        Fmt(hot_first_ms > 0 ? 1000.0 * n / hot_first_ms : 0, 0), "-"},
       {"hot (steady state)", Fmt(hot_ms), Fmt(hot_qps, 0),
        Fmt(speedup, 2) + "x"},
       {"batched", Fmt(batched_ms), Fmt(batched_qps, 0),
        Fmt(cold_qps > 0 ? batched_qps / cold_qps : 0, 2) + "x"}});
  std::printf("hot steady-state per-request: p50 %.1f us, p99 %.1f us\n",
              hot_p50_us, hot_p99_us);
  std::printf("cache: %llu hits / %llu lookups, %llu evictions\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.lookups),
              static_cast<unsigned long long>(cache.evictions));
  std::printf("answers identical to direct solve: %s\n",
              all_identical ? "yes" : "NO");

  std::string metrics_json = InstrumentedPassJson(cube, indices, trace);
  std::string json =
      "{\n  \"bench\": \"serve\",\n  \"hardware_concurrency\": " +
      std::to_string(hardware) +
      ",\n  \"keyspace\": " + std::to_string(request_space.size()) +
      ",\n  \"trace_len\": " + std::to_string(trace.size()) +
      ",\n  \"batch_size\": " + std::to_string(kBatchSize) +
      ",\n  \"cold_ms\": " + Fmt(cold_ms) +
      ",\n  \"hot_first_ms\": " + Fmt(hot_first_ms) +
      ",\n  \"hot_ms\": " + Fmt(hot_ms) +
      ",\n  \"hot_p50_us\": " + Fmt(hot_p50_us, 1) +
      ",\n  \"hot_p99_us\": " + Fmt(hot_p99_us, 1) +
      ",\n  \"batched_ms\": " + Fmt(batched_ms) +
      ",\n  \"cold_qps\": " + Fmt(cold_qps, 0) +
      ",\n  \"hot_qps\": " + Fmt(hot_qps, 0) +
      ",\n  \"batched_qps\": " + Fmt(batched_qps, 0) +
      ",\n  \"hot_speedup\": " + Fmt(speedup, 2) +
      ",\n  \"cache\": {\"hits\": " + std::to_string(cache.hits) +
      ", \"lookups\": " + std::to_string(cache.lookups) +
      ", \"evictions\": " + std::to_string(cache.evictions) +
      "},\n  \"identical_answers\": " + (all_identical ? "true" : "false") +
      ",\n  \"metrics\": " + metrics_json + "\n}\n";
  Status written = WriteTextFile("BENCH_serve.json", json);
  if (!written.ok()) {
    PrintTitle("FATAL: " + written.ToString());
    return 1;
  }
  std::printf("\nwrote BENCH_serve.json\n");

  std::string metrics_path = flags->GetString("metrics_json");
  if (!metrics_path.empty()) {
    Status s = WriteTextFile(metrics_path, metrics_json);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::string trace_path = flags->GetString("trace_json");
  if (!trace_path.empty()) {
    Status s = Tracer::Global().WriteJson(trace_path);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }

  if (!all_identical) {
    PrintTitle("FATAL: served answers diverged from direct solve");
    return 1;
  }
  // Enforced gate: the warm cache must actually pay for itself. The full
  // tier demands 5x over cold; smoke runs on tiny datasets where compute is
  // cheap, so the bar drops to 2x instead of flapping.
  const double min_hot_speedup = smoke ? 2.0 : 5.0;
  if (speedup < min_hot_speedup) {
    PrintTitle("FATAL: hot speedup " + Fmt(speedup, 2) + "x below the " +
               Fmt(min_hot_speedup, 1) + "x gate");
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace fairjob

int main(int argc, char** argv) { return fairjob::bench::Main(argc, argv); }
