// Reproduces the paper's worked examples (Figures 1–5, Tables 1–3): the toy
// "Home Cleaning in San Francisco" marketplace with 10 workers, and the
// search-engine top-3 example. Figures 1–3 use illustrative numbers in the
// paper; Figures 4–5 are computed exactly from Tables 2–3 and are checked
// here (Figure 5's 0.19 / 0.15 / 0.04 shares reproduce to the digit).

#include "bench_util.h"
#include "ranking/exposure.h"
#include "ranking/jaccard.h"

namespace fairjob {
namespace bench {
namespace {

struct Toy {
  std::unique_ptr<MarketplaceDataset> data;
  std::unique_ptr<GroupSpace> space;
  QueryId query = 0;
  LocationId location = 0;
};

Toy BuildToy() {
  AttributeSchema schema;
  (void)schema.AddAttribute("ethnicity", {"Asian", "Black", "White"});
  (void)schema.AddAttribute("gender", {"Male", "Female"});
  Toy toy;
  toy.data = std::make_unique<MarketplaceDataset>(schema);
  toy.space = std::make_unique<GroupSpace>(
      OrDie(GroupSpace::Enumerate(toy.data->schema()), "space"));

  struct W {
    const char* name;
    ValueId ethnicity;
    ValueId gender;
  };
  const W workers[] = {
      {"w1", 0, 1}, {"w2", 2, 0}, {"w3", 2, 1}, {"w4", 0, 0}, {"w5", 1, 1},
      {"w6", 1, 0}, {"w7", 1, 1}, {"w8", 1, 0}, {"w9", 2, 0}, {"w10", 2, 1},
  };
  for (const W& w : workers) {
    (void)OrDie(toy.data->AddWorker(w.name, {w.ethnicity, w.gender}),
                "add worker");
  }
  toy.query = toy.data->queries().GetOrAdd("Home Cleaning");
  toy.location = toy.data->locations().GetOrAdd("San Francisco");
  MarketRanking ranking;
  auto id = [&](const char* name) { return *toy.data->workers().Find(name); };
  ranking.workers = {id("w3"), id("w8"), id("w6"), id("w2"), id("w1"),
                     id("w4"), id("w7"), id("w5"), id("w9"), id("w10")};
  ranking.scores = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0};
  if (!toy.data->SetRanking(toy.query, toy.location, std::move(ranking)).ok()) {
    std::exit(1);
  }
  return toy;
}

void Run() {
  Toy toy = BuildToy();
  GroupId black_female =
      OrDie(toy.space->FindByDisplayName("Black Female"), "group");

  PrintTitle("Figure 5 — exposure unfairness of Black Females (exact)");
  PrintPaperNote("exposure share 0.19, relevance share 0.15, unfairness 0.04");
  double bf_exp = TotalExposure({7, 8});
  double comp_exp = TotalExposure({1, 2, 3, 5, 10});
  double bf_rel = *TotalRelevance({7, 8}, 10);
  double comp_rel = *TotalRelevance({1, 2, 3, 5, 10}, 10);
  std::printf("exposure(BF) = %.2f (paper 0.94), comparables = %.2f (≈4.0)\n",
              bf_exp, comp_exp);
  std::printf("relevance(BF) = %.2f (paper 0.5), comparables = %.2f (2.9)\n",
              bf_rel, comp_rel);
  double measured = OrDie(
      MarketplaceUnfairness(*toy.data, *toy.space, black_female, toy.query,
                            toy.location, MarketMeasure::kExposure),
      "exposure measure");
  std::printf("d<Black Female, Home Cleaning, San Francisco> = %.4f "
              "(paper 0.19 - 0.15 = 0.04)\n",
              measured);

  PrintTitle("Figure 4 / Table 3 — EMD unfairness of Black Females");
  PrintPaperNote(
      "the figure's 0.50 is illustrative; the framework value from Table 3's "
      "scores with 10 canonical bins:");
  double emd = OrDie(
      MarketplaceUnfairness(*toy.data, *toy.space, black_female, toy.query,
                            toy.location, MarketMeasure::kEmd),
      "EMD measure");
  std::printf("d<Black Female, Home Cleaning, San Francisco> = %.4f\n", emd);

  PrintTitle("Tables 2–3 — unfairness of every group on the toy ranking");
  std::vector<std::vector<std::string>> rows;
  for (size_t g = 0; g < toy.space->num_groups(); ++g) {
    Result<double> e =
        MarketplaceUnfairness(*toy.data, *toy.space, static_cast<GroupId>(g),
                              toy.query, toy.location, MarketMeasure::kEmd);
    Result<double> x = MarketplaceUnfairness(
        *toy.data, *toy.space, static_cast<GroupId>(g), toy.query,
        toy.location, MarketMeasure::kExposure);
    rows.push_back({toy.space->label(static_cast<GroupId>(g))
                        .DisplayName(toy.data->schema()),
                    e.ok() ? Fmt(*e) : "-", x.ok() ? Fmt(*x) : "-"});
  }
  PrintTable({"Group", "EMD", "Exposure"}, rows);

  PrintTitle("Figure 3 / Table 1 — search-engine Jaccard example");
  PrintPaperNote(
      "the figure's 0.8/0.5 pair values are illustrative; with Table 1's "
      "actual top-3 lists:");
  // Table 1's lists for the two Black Females (w5, w7) and the Asian Female
  // (w1), items a..e -> 0..4.
  RankedList w5 = {0, 1, 2};  // a, b, c
  RankedList w7 = {0, 1, 3};  // a, b, d
  RankedList w1 = {1, 3, 4};  // b, d, e
  double j57 = *JaccardDistance(w5, w1);
  double j77 = *JaccardDistance(w7, w1);
  std::printf("JaccardDistance(w5, w1) = %.3f, JaccardDistance(w7, w1) = %.3f"
              " -> partial unfairness vs Asian Females = %.3f\n",
              j57, j77, (j57 + j77) / 2.0);
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
