// Reproduces Tables 13 and 14: Lawn Mowing vs Event Decorating on
// TaskRabbit, broken down by ethnicity, under EMD (Table 13) and Exposure
// (Table 14). The breakdown runs over all groups (the paper compares against
// "the whole population"); the tables print the single-ethnicity rows.
//
// Shape reproduced: Lawn Mowing is less fair than Event Decorating overall;
// for Whites the comparison inverts under EMD (Table 13); the exposure
// variant flips for a different ethnicity (Table 14 found Blacks —
// "warrants further investigation" per the paper).

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void RunMeasure(const FBox& box, const char* measure_name, const char* table) {
  PrintTitle(std::string(table) + " — Lawn Mowing vs Event Decorating by "
             "ethnicity (" + measure_name + ")");
  ComparisonResult result =
      OrDie(box.CompareByName(Dimension::kQuery, "Lawn Mowing",
                              "Event Decorating", Dimension::kGroup),
            "comparison");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"All", Fmt(result.overall_d1), Fmt(result.overall_d2), ""});
  for (const ComparisonRow& row : result.rows) {
    std::string name = box.NameOf(Dimension::kGroup, row.breakdown_id);
    // Single-ethnicity rows only (the paper's breakdown dimension).
    if (name != "Asian" && name != "Black" && name != "White") continue;
    rows.push_back({name, Fmt(row.d1), Fmt(row.d2),
                    row.reversed ? "REVERSED" : ""});
  }
  PrintTable({"Job-comparison", "Lawn Mowing", "Event Decorating", ""}, rows);
}

void Run() {
  PrintPaperNote(
      "Table 13 (EMD): overall 0.674 vs 0.613, White reversed (0.552 vs "
      "0.569); Table 14 (Exposure): overall 0.500 vs 0.442, Black reversed");
  TaskRabbitBoxes boxes = OrDie(BuildTaskRabbitBoxes(), "TaskRabbit build");
  RunMeasure(*boxes.emd, "EMD", "Table 13");
  RunMeasure(*boxes.exposure, "Exposure", "Table 14");
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
