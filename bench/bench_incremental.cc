// Incremental maintenance vs cold rebuild at serving time: the same
// sequence of re-crawl batches applied via MarketplaceCubeMaintainer
// (recompute only the touched columns, derived snapshot keeps the cache
// warm) and via full BuildMarketplaceCube + fresh snapshot (new lineage,
// every cache entry dead). Gates the upsert path's speedup, the bitwise
// differential contract, the exact C - k cache-survival arithmetic, and —
// since the delta rebuild now runs on the batched marketplace engine — the
// batched-vs-context speedup on exactly the columns an upsert recomputes.
// Writes BENCH_incremental.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/quantification.h"
#include "core/unfairness_cube.h"
#include "market/scale_gen.h"
#include "serve/cache_key.h"
#include "serve/cube_snapshot.h"
#include "serve/incremental.h"
#include "serve/quantification_service.h"

namespace fairjob {
namespace bench {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool BitwiseEqual(const std::optional<double>& a,
                  const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  uint64_t ba;
  uint64_t bb;
  std::memcpy(&ba, &*a, sizeof(ba));
  std::memcpy(&bb, &*b, sizeof(bb));
  return ba == bb;
}

bool CubesBitwiseEqual(const UnfairnessCube& a, const UnfairnessCube& b) {
  for (Dimension d :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    if (a.axis_size(d) != b.axis_size(d)) return false;
  }
  for (size_t g = 0; g < a.axis_size(Dimension::kGroup); ++g) {
    for (size_t q = 0; q < a.axis_size(Dimension::kQuery); ++q) {
      for (size_t l = 0; l < a.axis_size(Dimension::kLocation); ++l) {
        if (!BitwiseEqual(a.Get(g, q, l), b.Get(g, q, l))) return false;
      }
    }
  }
  return FingerprintCube(a) == FingerprintCube(b);
}

// The observed (query, location) columns of the generated marketplace, in
// grid order — the C of the C - k survival arithmetic.
std::vector<std::pair<QueryId, LocationId>> ObservedColumns(
    const MarketplaceDataset& data, const ScaleSpec& spec) {
  std::vector<std::pair<QueryId, LocationId>> columns;
  for (QueryId q = 0; q < static_cast<QueryId>(spec.num_queries); ++q) {
    for (LocationId l = 0; l < static_cast<LocationId>(spec.num_locations);
         ++l) {
      if (data.GetRanking(q, l) != nullptr) columns.emplace_back(q, l);
    }
  }
  return columns;
}

// Re-crawl batches generated against an evolving scratch dataset, so both
// the upsert pass and the rebuild pass replay the exact same deltas and
// converge on the same final dataset. Each batch re-crawls `per_batch`
// distinct columns and rotates the observed ranking — same workers, new
// order — which is the cheapest edit guaranteed to move group positions.
std::vector<CrawlBatch> MakeBatches(const MarketplaceDataset& initial,
                                    const std::vector<std::pair<
                                        QueryId, LocationId>>& columns,
                                    size_t num_batches, size_t per_batch,
                                    uint64_t seed) {
  MarketplaceDataset scratch = initial;
  Rng rng(seed);
  std::vector<size_t> order(columns.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<CrawlBatch> batches;
  for (size_t b = 0; b < num_batches; ++b) {
    rng.Shuffle(order);
    CrawlBatch batch;
    for (size_t i = 0; i < per_batch && i < order.size(); ++i) {
      auto [q, l] = columns[order[i]];
      MarketRanking ranking = *scratch.GetRanking(q, l);
      size_t shift = 1 + rng.NextBelow(ranking.workers.size() - 1);
      std::rotate(ranking.workers.begin(), ranking.workers.begin() + shift,
                  ranking.workers.end());
      Status applied = scratch.SetRanking(q, l, ranking);
      if (!applied.ok()) {
        PrintTitle("FATAL: scratch apply: " + applied.ToString());
        std::exit(1);
      }
      batch.rows.push_back(CrawlBatchRow{q, l, std::move(ranking)});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

// One group-target request per observed column, each binding exactly its
// own column's epoch; positions resolved through the cube's axis index.
std::vector<QuantificationRequest> PerColumnRequests(
    const UnfairnessCube& cube,
    const std::vector<std::pair<QueryId, LocationId>>& columns) {
  std::vector<QuantificationRequest> requests;
  requests.reserve(columns.size());
  for (auto [q, l] : columns) {
    QuantificationRequest request;
    request.target = Dimension::kGroup;
    request.k = 5;
    request.missing = MissingCellPolicy::kZero;
    request.agg1 = AxisSelector::Single(
        OrDie(cube.PosOf(Dimension::kQuery, q), "query position"));
    request.agg2 = AxisSelector::Single(
        OrDie(cube.PosOf(Dimension::kLocation, l), "location position"));
    requests.push_back(std::move(request));
  }
  return requests;
}

void Replay(QuantificationService& service,
            const std::vector<QuantificationRequest>& requests) {
  for (const QuantificationRequest& request : requests) {
    OrDie(service.Answer(request), "replayed answer");
  }
}

}  // namespace

int Main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse({argv + 1, argv + argc});
  if (!flags.ok()) {
    PrintTitle("FATAL: " + flags.status().ToString());
    return 1;
  }
  const bool smoke = flags->Has("smoke");

  ScaleSpec spec;
  spec.seed = 11;
  if (smoke) {
    spec.num_workers = 4000;
    spec.num_queries = 100;
    spec.num_locations = 6;
    spec.num_ranked_columns = 240;
    spec.min_ranking_length = 6;
    spec.max_ranking_length = 24;
  } else {
    spec.num_workers = 200'000;
    spec.num_queries = 2000;
    spec.num_locations = 25;
    spec.num_ranked_columns = 5000;
  }
  const size_t kRounds = smoke ? 3 : 5;
  const size_t kBatchColumns = smoke ? 4 : 25;

  PrintTitle("Incremental maintenance: upsert-then-serve vs rebuild-then-serve");
  PrintPaperNote(
      "Section 4's quantification is interactive while crawls keep landing; "
      "this bench guards the delta path that keeps answers fresh without "
      "paying a cube rebuild per batch.");

  size_t hardware = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %zu\n", hardware);

  MarketplaceDataset data =
      OrDie(GenerateScaleMarketplace(spec), "scale marketplace");
  GroupSpace space = OrDie(
      GroupSpace::Enumerate(OrDie(MakeScaleSchema(), "schema")), "space");
  std::vector<std::pair<QueryId, LocationId>> columns =
      ObservedColumns(data, spec);
  const size_t kColumns = columns.size();
  std::printf(
      "workers: %zu, columns: %zu, groups: %zu, rounds: %zu x %zu-column "
      "batches\n",
      spec.num_workers, kColumns, space.num_groups(), kRounds, kBatchColumns);

  // kRounds timed batches plus one extra for the instrumented metrics pass.
  std::vector<CrawlBatch> batches =
      MakeBatches(data, columns, kRounds + 1, kBatchColumns, spec.seed * 977);

  QuantificationService::Options options;
  options.cache_capacity = 2 * kColumns;

  // --- upsert-then-serve -----------------------------------------------------
  // One cold build, then every round pays only its touched columns; the
  // derived snapshot keeps lineage, so untouched cache entries survive.
  MarketplaceCubeMaintainer maintainer = OrDie(
      MarketplaceCubeMaintainer::Make(data, space, MarketMeasure::kEmd,
                                      MeasureOptions{}, CubeAxes{}, hardware),
      "maintainer");
  std::shared_ptr<const CubeSnapshot> initial = maintainer.snapshot();
  std::vector<QuantificationRequest> per_column =
      PerColumnRequests(initial->cube(), columns);

  QuantificationService upsert_service(initial, options);
  Replay(upsert_service, per_column);  // cold fill
  Replay(upsert_service, per_column);  // all hits
  QuantificationService::Stats warm = upsert_service.stats();

  size_t columns_changed_total = 0;
  auto upsert_start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < kRounds; ++r) {
    UpsertReport report =
        OrDie(maintainer.UpsertCrawlBatch(batches[r]), "upsert");
    columns_changed_total += report.columns_changed;
    upsert_service.SetSnapshot(maintainer.snapshot());
    Replay(upsert_service, per_column);
  }
  double upsert_ms = ElapsedMs(upsert_start);
  QuantificationService::Stats after = upsert_service.stats();

  // Exact survival accounting across all rounds: only the changed columns
  // re-keyed, everything else was served from the surviving entries.
  const uint64_t expected_misses = columns_changed_total;
  const uint64_t expected_hits = kRounds * kColumns - columns_changed_total;
  const bool survival_exact =
      after.cache_misses - warm.cache_misses == expected_misses &&
      after.cache_hits - warm.cache_hits == expected_hits &&
      after.computations - warm.computations == expected_misses &&
      after.snapshot_flips == kRounds &&
      after.cache_hits + after.cache_misses == after.requests &&
      after.computations + after.coalesced == after.cache_misses;

  // --- rebuild-then-serve ----------------------------------------------------
  // The same batches, but every round pays a full cube + index build and a
  // fresh lineage: the whole keyspace recomputes.
  MarketplaceDataset rebuilt = data;
  QuantificationService rebuild_service(initial, options);
  Replay(rebuild_service, per_column);
  Replay(rebuild_service, per_column);
  QuantificationService::Stats rebuild_warm = rebuild_service.stats();

  std::shared_ptr<const CubeSnapshot> rebuild_final;
  auto rebuild_start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < kRounds; ++r) {
    for (const CrawlBatchRow& row : batches[r].rows) {
      Status applied = rebuilt.SetRanking(row.query, row.location, row.ranking);
      if (!applied.ok()) {
        PrintTitle("FATAL: rebuild apply: " + applied.ToString());
        return 1;
      }
    }
    UnfairnessCube cube = OrDie(
        BuildMarketplaceCube(rebuilt, space, MarketMeasure::kEmd,
                             MeasureOptions{}, CubeAxes{}, hardware),
        "full rebuild");
    rebuild_final = CubeSnapshot::Make(std::move(cube));
    rebuild_service.SetSnapshot(rebuild_final);
    Replay(rebuild_service, per_column);
  }
  double rebuild_ms = ElapsedMs(rebuild_start);
  QuantificationService::Stats rebuild_after = rebuild_service.stats();
  // New lineage per round kills every entry: all C requests recompute.
  const bool rebuild_all_cold =
      rebuild_after.cache_misses - rebuild_warm.cache_misses ==
      kRounds * kColumns;

  // --- differential contract -------------------------------------------------
  // The rebuild pass's final cube IS the cold rebuild over the fully
  // mutated dataset, so the bitwise check costs nothing extra.
  const bool bitwise_identical =
      CubesBitwiseEqual(maintainer.snapshot()->cube(), rebuild_final->cube());

  double speedup = upsert_ms > 0 ? rebuild_ms / upsert_ms : 0;
  PrintTable(
      {"pass", "ms/round", "total ms", "vs rebuild"},
      {{"rebuild-then-serve", Fmt(rebuild_ms / kRounds), Fmt(rebuild_ms),
        "1.00x"},
       {"upsert-then-serve", Fmt(upsert_ms / kRounds), Fmt(upsert_ms),
        Fmt(speedup, 2) + "x"}});
  std::printf("columns changed: %zu of %zu touched across %zu rounds\n",
              columns_changed_total, kRounds * kBatchColumns, kRounds);
  std::printf("cache survival exact (C - k): %s\n",
              survival_exact ? "yes" : "NO");
  std::printf("rebuild re-keys everything: %s\n",
              rebuild_all_cold ? "yes" : "NO");
  std::printf("upserts bitwise identical to cold rebuild: %s\n",
              bitwise_identical ? "yes" : "NO");

  // Batched-engine gate on the delta unit of work: the columns the LAST
  // batch touched, evaluated through the batched engine (what
  // BuildMarketplaceCubeColumns runs inside UpsertCrawlBatch) vs the
  // pre-batch cell-shared context. Membership is hoisted outside the timer,
  // matching the maintainer's per-dataset-version table.
  std::vector<std::pair<QueryId, LocationId>> touched;
  for (const CrawlBatchRow& row : batches[kRounds - 1].rows) {
    touched.emplace_back(row.query, row.location);
  }
  MarketColumnComparison market_cmp =
      CompareMarketColumnPaths(maintainer.data(), space, MarketMeasure::kEmd,
                               MeasureOptions{}, touched, /*rounds=*/3);
  std::printf("touched-column engine (%zu cols): context %.2f ms, batched "
              "%.2f ms (%.2fx), identical: %s\n",
              touched.size(), market_cmp.context_ms, market_cmp.batch_ms,
              market_cmp.speedup(), market_cmp.identical ? "yes" : "NO");

  // Instrumented pass: one more batch with metrics on, so the cube.epoch.*
  // and serve.snapshot.* families carry data into the JSON.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Reset();
  Tracer::Global().Reset();
  metrics.SetEnabled(true);
  Tracer::Global().SetEnabled(true);
  OrDie(maintainer.UpsertCrawlBatch(batches[kRounds]), "instrumented upsert");
  upsert_service.SetSnapshot(maintainer.snapshot());
  Replay(upsert_service, per_column);
  metrics.SetEnabled(false);
  Tracer::Global().SetEnabled(false);
  std::string metrics_json = metrics.ToJson();

  std::string json =
      "{\n  \"bench\": \"incremental\",\n  \"hardware_concurrency\": " +
      std::to_string(hardware) +
      ",\n  \"workers\": " + std::to_string(spec.num_workers) +
      ",\n  \"columns\": " + std::to_string(kColumns) +
      ",\n  \"groups\": " + std::to_string(space.num_groups()) +
      ",\n  \"rounds\": " + std::to_string(kRounds) +
      ",\n  \"batch_columns\": " + std::to_string(kBatchColumns) +
      ",\n  \"columns_changed\": " + std::to_string(columns_changed_total) +
      ",\n  \"rebuild_ms\": " + Fmt(rebuild_ms) +
      ",\n  \"upsert_ms\": " + Fmt(upsert_ms) +
      ",\n  \"speedup\": " + Fmt(speedup, 2) +
      ",\n  \"cache_survival\": {\"expected_hits\": " +
      std::to_string(expected_hits) +
      ", \"hits\": " + std::to_string(after.cache_hits - warm.cache_hits) +
      ", \"expected_misses\": " + std::to_string(expected_misses) +
      ", \"misses\": " +
      std::to_string(after.cache_misses - warm.cache_misses) +
      ", \"exact\": " + (survival_exact ? "true" : "false") +
      "},\n  \"rebuild_all_cold\": " + (rebuild_all_cold ? "true" : "false") +
      ",\n  \"bitwise_identical\": " + (bitwise_identical ? "true" : "false") +
      ",\n  \"market_batch\": {\"columns\": " +
      std::to_string(touched.size()) +
      ", \"context_ms\": " + Fmt(market_cmp.context_ms, 2) +
      ", \"batched_ms\": " + Fmt(market_cmp.batch_ms, 2) +
      ", \"speedup\": " + Fmt(market_cmp.speedup(), 2) +
      ", \"identical\": " + (market_cmp.identical ? "true" : "false") +
      "},\n  \"metrics\": " + metrics_json + "\n}\n";
  Status written = WriteTextFile("BENCH_incremental.json", json);
  if (!written.ok()) {
    PrintTitle("FATAL: " + written.ToString());
    return 1;
  }
  std::printf("\nwrote BENCH_incremental.json\n");

  std::string metrics_path = flags->GetString("metrics_json");
  if (!metrics_path.empty()) {
    Status s = WriteTextFile(metrics_path, metrics_json);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  std::string trace_path = flags->GetString("trace_json");
  if (!trace_path.empty()) {
    Status s = Tracer::Global().WriteJson(trace_path);
    if (!s.ok()) {
      PrintTitle("FATAL: " + s.ToString());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }

  if (!bitwise_identical) {
    PrintTitle("FATAL: upserted cube diverged from the cold rebuild");
    return 1;
  }
  if (!survival_exact || !rebuild_all_cold) {
    PrintTitle("FATAL: cache survival accounting is not exact");
    return 1;
  }
  // Enforced gate: the delta path must beat rebuild-per-batch decisively.
  // The smoke tier's cube is small enough that fixed costs blunt the win,
  // so its bar is 2x; the nightly full tier demands 10x.
  const double min_speedup = smoke ? 2.0 : 10.0;
  if (speedup < min_speedup) {
    PrintTitle("FATAL: upsert speedup " + Fmt(speedup, 2) + "x below the " +
               Fmt(min_speedup, 1) + "x gate");
    return 1;
  }
  // Batched-engine gates mirror bench_cube_build's: bitwise identity always,
  // speedup floored lower in the short smoke run.
  if (!market_cmp.identical) {
    PrintTitle(
        "FATAL: batched column engine diverged bitwise from the cell-shared "
        "context");
    return 1;
  }
  const double min_batch_speedup = smoke ? 1.5 : 2.0;
  if (market_cmp.speedup() < min_batch_speedup) {
    PrintTitle("FATAL: batched column speedup " +
               Fmt(market_cmp.speedup(), 2) + "x below the " +
               Fmt(min_batch_speedup, 2) + "x gate");
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace fairjob

int main(int argc, char** argv) { return fairjob::bench::Main(argc, argv); }
