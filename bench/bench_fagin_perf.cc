// Performance of Algorithm 1 (Fagin Threshold Algorithm) against the naive
// full scan, across universe sizes and inverted-list counts. The skewed
// value distribution mirrors unfairness cubes, where a handful of
// dimension values dominate; TA terminates after a few sorted accesses
// while the scan always touches everything.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/fagin.h"
#include "core/fagin_family.h"

namespace fairjob {
namespace {

std::vector<InvertedIndex> MakeLists(size_t universe, size_t num_lists,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<InvertedIndex> lists;
  lists.reserve(num_lists);
  for (size_t l = 0; l < num_lists; ++l) {
    std::vector<ScoredEntry> entries;
    entries.reserve(universe);
    for (size_t id = 0; id < universe; ++id) {
      double u = rng.NextDouble();
      // Heavy right tail: most values small, few large.
      entries.push_back({static_cast<int32_t>(id), u * u * u});
    }
    lists.emplace_back(std::move(entries));
  }
  return lists;
}

std::vector<const InvertedIndex*> Pointers(
    const std::vector<InvertedIndex>& lists) {
  std::vector<const InvertedIndex*> out;
  out.reserve(lists.size());
  for (const InvertedIndex& list : lists) out.push_back(&list);
  return out;
}

void BM_FaginTopK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginTopK(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["random_accesses"] = static_cast<double>(stats.random_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginFA(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.missing = MissingCellPolicy::kZero;  // FA's early-stop mode
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginFA(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginNRA(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.missing = MissingCellPolicy::kZero;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginNRA(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["random_accesses"] = static_cast<double>(stats.random_accesses);
}

void BM_ScanTopK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = ScanTopK(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginBottomK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  std::vector<InvertedIndex> lists = MakeLists(universe, 16, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.direction = RankDirection::kLeastUnfair;
  for (auto _ : state) {
    auto result = FaginTopK(ptrs, options);
    benchmark::DoNotOptimize(result);
  }
}

void BM_IndexBuild(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    std::vector<ScoredEntry> entries;
    entries.reserve(universe);
    for (size_t id = 0; id < universe; ++id) {
      entries.push_back({static_cast<int32_t>(id), rng.NextDouble()});
    }
    InvertedIndex index(std::move(entries));
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(universe));
}

}  // namespace
}  // namespace fairjob

BENCHMARK(fairjob::BM_FaginTopK)
    ->ArgsProduct({{64, 512, 4096}, {4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginFA)
    ->ArgsProduct({{64, 512, 4096}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginNRA)
    ->ArgsProduct({{64, 512, 4096}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_ScanTopK)
    ->ArgsProduct({{64, 512, 4096}, {4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginBottomK)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_IndexBuild)->Arg(1024)->Arg(16384)->Unit(
    benchmark::kMicrosecond);

BENCHMARK_MAIN();
