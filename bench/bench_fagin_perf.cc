// Performance of Algorithm 1 (Fagin Threshold Algorithm) against the naive
// full scan, across universe sizes and inverted-list counts. The skewed
// value distribution mirrors unfairness cubes, where a handful of
// dimension values dominate; TA terminates after a few sorted accesses
// while the scan always touches everything.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/fagin.h"
#include "core/fagin_family.h"
#include "core/fagin_reference.h"

namespace fairjob {
namespace {

std::vector<InvertedIndex> MakeLists(size_t universe, size_t num_lists,
                                     uint64_t seed, bool skewed = true) {
  Rng rng(seed);
  std::vector<InvertedIndex> lists;
  lists.reserve(num_lists);
  for (size_t l = 0; l < num_lists; ++l) {
    std::vector<ScoredEntry> entries;
    entries.reserve(universe);
    for (size_t id = 0; id < universe; ++id) {
      double u = rng.NextDouble();
      // Skewed: heavy right tail (most values small, few large), the shape
      // of unfairness cubes, where early termination shines. Uniform values
      // keep frontier bounds tight for longer, so candidate bookkeeping and
      // random accesses dominate — the dense engine's target regime.
      entries.push_back({static_cast<int32_t>(id), skewed ? u * u * u : u});
    }
    lists.emplace_back(std::move(entries));
  }
  return lists;
}

std::vector<const InvertedIndex*> Pointers(
    const std::vector<InvertedIndex>& lists) {
  std::vector<const InvertedIndex*> out;
  out.reserve(lists.size());
  for (const InvertedIndex& list : lists) out.push_back(&list);
  return out;
}

void BM_FaginTopK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginTopK(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["random_accesses"] = static_cast<double>(stats.random_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginFA(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.missing = MissingCellPolicy::kZero;  // FA's early-stop mode
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginFA(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginNRA(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.missing = MissingCellPolicy::kZero;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginNRA(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["random_accesses"] = static_cast<double>(stats.random_accesses);
}

void BM_ScanTopK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = ScanTopK(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginBottomK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  std::vector<InvertedIndex> lists = MakeLists(universe, 16, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.direction = RankDirection::kLeastUnfair;
  for (auto _ : state) {
    auto result = FaginTopK(ptrs, options);
    benchmark::DoNotOptimize(result);
  }
}

void BM_IndexBuild(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    std::vector<ScoredEntry> entries;
    entries.reserve(universe);
    for (size_t id = 0; id < universe; ++id) {
      entries.push_back({static_cast<int32_t>(id), rng.NextDouble()});
    }
    InvertedIndex index(std::move(entries));
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(universe));
}

// --- dense vs legacy-hash engine comparison (--dense_compare) ---------------

uint64_t BitsOf(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Best-of-`reps` average milliseconds per call of `fn` over `iters` calls.
double BestMsPerRun(int reps, int iters, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
    best = std::min(best, ms);
  }
  return best;
}

// Times the dense engine against the legacy hash reference
// (core/fagin_reference.h) on each family member, verifies bitwise-identical
// answers and identical access-count stats, and writes
// BENCH_fagin_dense.json. The aggregate-heavy scan/NRA configurations carry
// an enforced speedup bar: the process exits non-zero when the dense engine
// is not at least `kSpeedupBar` times faster, or when any identity / stats
// check fails. TA/FA are reported unenforced (early termination makes their
// runtime mostly sorted-access bound, so both engines are fast).
constexpr double kSpeedupBar = 2.0;

int DenseCompareMain(bool smoke) {
  struct Config {
    const char* name;
    TopKAlgorithm algorithm;
    MissingCellPolicy missing;
    size_t universe;
    size_t num_lists;
    size_t k;
    bool uniform;  // uniform values delay early stops (see MakeLists)
    bool enforce;  // carries the >= kSpeedupBar bar
    int iters;
  };
  // Full-size scan config (64 lists, universe 8192) also exercises the
  // parallel candidate-scoring path; the smoke sizes stay serial and finish
  // in well under a second on a loaded CI runner.
  const Config configs[] = {
      {"scan_wide", TopKAlgorithm::kScan, MissingCellPolicy::kSkip,
       smoke ? size_t{1024} : size_t{8192}, smoke ? size_t{16} : size_t{64},
       10, true, true, smoke ? 20 : 5},
      // The NRA universe stays 2048 even in smoke: at smaller sizes the
      // legacy engine's hash tables fit in cache and the speedup margin over
      // the bar narrows. One run is ~20ms, so smoke still finishes fast.
      {"nra_uniform", TopKAlgorithm::kNRA, MissingCellPolicy::kZero, 2048, 4,
       10, true, true, smoke ? 4 : 5},
      {"ta_skewed", TopKAlgorithm::kThresholdAlgorithm,
       MissingCellPolicy::kSkip, smoke ? size_t{512} : size_t{4096},
       smoke ? size_t{8} : size_t{16}, 5, false, false, smoke ? 50 : 20},
      {"fa_zero", TopKAlgorithm::kFA, MissingCellPolicy::kZero,
       smoke ? size_t{512} : size_t{4096}, smoke ? size_t{8} : size_t{16}, 5,
       false, false, smoke ? 50 : 20},
  };
  const int reps = smoke ? 3 : 5;

  bench::PrintTitle(std::string("Fagin dense engine vs legacy hash engine (") +
                    (smoke ? "smoke" : "full") + ")");
  std::vector<std::vector<std::string>> rows;
  std::string json = std::string("{\n  \"bench\": \"fagin_dense\",\n") +
                     "  \"mode\": \"" + (smoke ? "smoke" : "full") +
                     "\",\n  \"speedup_bar\": " + bench::Fmt(kSpeedupBar, 1) +
                     ",\n  \"configs\": [\n";
  bool failed = false;

  for (size_t c = 0; c < sizeof(configs) / sizeof(configs[0]); ++c) {
    const Config& config = configs[c];
    std::vector<InvertedIndex> lists =
        MakeLists(config.universe, config.num_lists, 42, !config.uniform);
    std::vector<const InvertedIndex*> ptrs = Pointers(lists);
    std::vector<HashedListView> views = BuildHashedViews(ptrs);
    TopKOptions options;
    options.k = config.k;
    options.missing = config.missing;
    options.universe_hint = config.universe;

    // Correctness gate first: identical answers (bitwise) and identical
    // access-count semantics, with each engine attributing its random
    // accesses to its own storage counter.
    FaginStats dense_stats;
    auto dense = RunTopK(config.algorithm, ptrs, options, &dense_stats);
    FaginStats ref_stats;
    auto ref = ReferenceRunTopK(config.algorithm, views, options, &ref_stats);
    if (!dense.ok() || !ref.ok()) {
      std::fprintf(stderr, "%s: run failed: %s / %s\n", config.name,
                   dense.status().ToString().c_str(),
                   ref.status().ToString().c_str());
      return 1;
    }
    bool identical = dense->size() == ref->size();
    for (size_t i = 0; identical && i < dense->size(); ++i) {
      identical = (*dense)[i].pos == (*ref)[i].pos &&
                  BitsOf((*dense)[i].value) == BitsOf((*ref)[i].value);
    }
    bool stats_match =
        dense_stats.sorted_accesses == ref_stats.sorted_accesses &&
        dense_stats.random_accesses == ref_stats.random_accesses &&
        dense_stats.ids_scored == ref_stats.ids_scored &&
        dense_stats.rounds == ref_stats.rounds &&
        dense_stats.threshold_checks == ref_stats.threshold_checks &&
        dense_stats.dense_accesses == dense_stats.random_accesses &&
        dense_stats.hash_accesses == 0 &&
        ref_stats.hash_accesses == ref_stats.random_accesses &&
        ref_stats.dense_accesses == 0;
    if (!identical || !stats_match) {
      std::fprintf(stderr, "%s: dense/reference divergence (identical=%d, "
                   "stats_match=%d)\n",
                   config.name, identical ? 1 : 0, stats_match ? 1 : 0);
      failed = true;
    }

    double dense_ms = BestMsPerRun(reps, config.iters, [&] {
      auto result = RunTopK(config.algorithm, ptrs, options);
      benchmark::DoNotOptimize(result);
    });
    double ref_ms = BestMsPerRun(reps, config.iters, [&] {
      auto result = ReferenceRunTopK(config.algorithm, views, options);
      benchmark::DoNotOptimize(result);
    });
    double speedup = dense_ms > 0.0 ? ref_ms / dense_ms : 0.0;
    bool below_bar = config.enforce && speedup < kSpeedupBar;
    if (below_bar) {
      std::fprintf(stderr, "%s: dense speedup %.2fx below the %.1fx bar\n",
                   config.name, speedup, kSpeedupBar);
      failed = true;
    }

    rows.push_back({config.name, TopKAlgorithmName(config.algorithm),
                    std::to_string(config.universe),
                    std::to_string(config.num_lists), bench::Fmt(dense_ms),
                    bench::Fmt(ref_ms), bench::Fmt(speedup, 2) + "x",
                    config.enforce ? (below_bar ? "FAIL" : "ok") : "-"});
    json += std::string("    {\"name\": \"") + config.name +
            "\", \"algorithm\": \"" + TopKAlgorithmName(config.algorithm) +
            "\", \"universe\": " + std::to_string(config.universe) +
            ", \"lists\": " + std::to_string(config.num_lists) +
            ", \"k\": " + std::to_string(config.k) +
            ", \"dense_ms\": " + bench::Fmt(dense_ms, 4) +
            ", \"reference_ms\": " + bench::Fmt(ref_ms, 4) +
            ", \"speedup\": " + bench::Fmt(speedup, 2) +
            ", \"enforced\": " + (config.enforce ? "true" : "false") +
            ", \"identical_results\": " + (identical ? "true" : "false") +
            ", \"stats_match\": " + (stats_match ? "true" : "false") + "}" +
            (c + 1 < sizeof(configs) / sizeof(configs[0]) ? ",\n" : "\n");
  }

  bench::PrintTable({"config", "algorithm", "universe", "lists", "dense ms",
                     "hash ms", "speedup", "bar"},
                    rows);
  json += "  ]\n}\n";
  Status written = bench::WriteTextFile("BENCH_fagin_dense.json", json);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_fagin_dense.json\n");
  return failed ? 1 : 0;
}

// CI smoke path (--smoke): one metrics-enabled run of each family member on
// a small instance, written to BENCH_fagin_smoke.json, bypassing the
// google-benchmark driver entirely so it finishes in milliseconds.
int SmokeMain(const char* metrics_path, const char* trace_path) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.SetEnabled(true);
  Tracer::Global().SetEnabled(true);

  std::vector<InvertedIndex> lists = MakeLists(512, 8, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  std::string json = "{\n  \"bench\": \"fagin_smoke\",\n  \"universe\": 512,"
                     "\n  \"lists\": 8,\n  \"algorithms\": [\n";

  struct Algo {
    const char* name;
    TopKAlgorithm algorithm;
    MissingCellPolicy missing;
  };
  const Algo algos[] = {
      {"ta", TopKAlgorithm::kThresholdAlgorithm, MissingCellPolicy::kSkip},
      {"fa", TopKAlgorithm::kFA, MissingCellPolicy::kZero},
      {"nra", TopKAlgorithm::kNRA, MissingCellPolicy::kZero},
      {"scan", TopKAlgorithm::kScan, MissingCellPolicy::kSkip},
  };
  for (size_t i = 0; i < sizeof(algos) / sizeof(algos[0]); ++i) {
    TopKOptions options;
    options.k = 5;
    options.missing = algos[i].missing;
    FaginStats stats;
    auto result = RunTopK(algos[i].algorithm, ptrs, options, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "smoke %s failed: %s\n", algos[i].name,
                   result.status().ToString().c_str());
      return 1;
    }
    json += std::string("    {\"algorithm\": \"") + algos[i].name +
            "\", \"sorted_accesses\": " + std::to_string(stats.sorted_accesses) +
            ", \"random_accesses\": " + std::to_string(stats.random_accesses) +
            ", \"ids_scored\": " + std::to_string(stats.ids_scored) +
            ", \"rounds\": " + std::to_string(stats.rounds) +
            ", \"threshold_checks\": " + std::to_string(stats.threshold_checks) +
            "}";
    json += (i + 1 < sizeof(algos) / sizeof(algos[0])) ? ",\n" : "\n";
  }
  json += "  ],\n  \"metrics\": " + metrics.ToJson() + "\n}\n";

  auto write = [](const char* path, const std::string& body) {
    FILE* f = std::fopen(path, "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
  };
  if (write("BENCH_fagin_smoke.json", json) != 0) return 1;
  if (metrics_path != nullptr && write(metrics_path, metrics.ToJson()) != 0) {
    return 1;
  }
  if (trace_path != nullptr &&
      write(trace_path, Tracer::Global().ToJson()) != 0) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fairjob

BENCHMARK(fairjob::BM_FaginTopK)
    ->ArgsProduct({{64, 512, 4096}, {4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginFA)
    ->ArgsProduct({{64, 512, 4096}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginNRA)
    ->ArgsProduct({{64, 512, 4096}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_ScanTopK)
    ->ArgsProduct({{64, 512, 4096}, {4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginBottomK)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_IndexBuild)->Arg(1024)->Arg(16384)->Unit(
    benchmark::kMicrosecond);

// --smoke / --dense_compare short-circuit before google-benchmark sees the
// command line, so the flag set stays stable across benchmark versions.
// "--dense_compare --smoke" runs the dense comparison at CI-smoke sizes.
int main(int argc, char** argv) {
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  bool smoke = false;
  bool dense_compare = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--dense_compare") == 0) dense_compare = true;
    if (std::strncmp(argv[i], "--metrics_json=", 15) == 0) {
      metrics_path = argv[i] + 15;
    }
    if (std::strncmp(argv[i], "--trace_json=", 13) == 0) {
      trace_path = argv[i] + 13;
    }
  }
  if (dense_compare) return fairjob::DenseCompareMain(smoke);
  if (smoke) return fairjob::SmokeMain(metrics_path, trace_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
