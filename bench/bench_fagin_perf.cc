// Performance of Algorithm 1 (Fagin Threshold Algorithm) against the naive
// full scan, across universe sizes and inverted-list counts. The skewed
// value distribution mirrors unfairness cubes, where a handful of
// dimension values dominate; TA terminates after a few sorted accesses
// while the scan always touches everything.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/fagin.h"
#include "core/fagin_family.h"

namespace fairjob {
namespace {

std::vector<InvertedIndex> MakeLists(size_t universe, size_t num_lists,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<InvertedIndex> lists;
  lists.reserve(num_lists);
  for (size_t l = 0; l < num_lists; ++l) {
    std::vector<ScoredEntry> entries;
    entries.reserve(universe);
    for (size_t id = 0; id < universe; ++id) {
      double u = rng.NextDouble();
      // Heavy right tail: most values small, few large.
      entries.push_back({static_cast<int32_t>(id), u * u * u});
    }
    lists.emplace_back(std::move(entries));
  }
  return lists;
}

std::vector<const InvertedIndex*> Pointers(
    const std::vector<InvertedIndex>& lists) {
  std::vector<const InvertedIndex*> out;
  out.reserve(lists.size());
  for (const InvertedIndex& list : lists) out.push_back(&list);
  return out;
}

void BM_FaginTopK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginTopK(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["random_accesses"] = static_cast<double>(stats.random_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginFA(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.missing = MissingCellPolicy::kZero;  // FA's early-stop mode
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginFA(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginNRA(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.missing = MissingCellPolicy::kZero;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = FaginNRA(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["random_accesses"] = static_cast<double>(stats.random_accesses);
}

void BM_ScanTopK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  size_t num_lists = static_cast<size_t>(state.range(1));
  std::vector<InvertedIndex> lists = MakeLists(universe, num_lists, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  FaginStats stats;
  for (auto _ : state) {
    stats = FaginStats{};
    auto result = ScanTopK(ptrs, options, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["sorted_accesses"] = static_cast<double>(stats.sorted_accesses);
  state.counters["ids_scored"] = static_cast<double>(stats.ids_scored);
}

void BM_FaginBottomK(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  std::vector<InvertedIndex> lists = MakeLists(universe, 16, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  TopKOptions options;
  options.k = 5;
  options.direction = RankDirection::kLeastUnfair;
  for (auto _ : state) {
    auto result = FaginTopK(ptrs, options);
    benchmark::DoNotOptimize(result);
  }
}

void BM_IndexBuild(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    std::vector<ScoredEntry> entries;
    entries.reserve(universe);
    for (size_t id = 0; id < universe; ++id) {
      entries.push_back({static_cast<int32_t>(id), rng.NextDouble()});
    }
    InvertedIndex index(std::move(entries));
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(universe));
}

// CI smoke path (--smoke): one metrics-enabled run of each family member on
// a small instance, written to BENCH_fagin_smoke.json, bypassing the
// google-benchmark driver entirely so it finishes in milliseconds.
int SmokeMain(const char* metrics_path, const char* trace_path) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.SetEnabled(true);
  Tracer::Global().SetEnabled(true);

  std::vector<InvertedIndex> lists = MakeLists(512, 8, 42);
  std::vector<const InvertedIndex*> ptrs = Pointers(lists);
  std::string json = "{\n  \"bench\": \"fagin_smoke\",\n  \"universe\": 512,"
                     "\n  \"lists\": 8,\n  \"algorithms\": [\n";

  struct Algo {
    const char* name;
    TopKAlgorithm algorithm;
    MissingCellPolicy missing;
  };
  const Algo algos[] = {
      {"ta", TopKAlgorithm::kThresholdAlgorithm, MissingCellPolicy::kSkip},
      {"fa", TopKAlgorithm::kFA, MissingCellPolicy::kZero},
      {"nra", TopKAlgorithm::kNRA, MissingCellPolicy::kZero},
      {"scan", TopKAlgorithm::kScan, MissingCellPolicy::kSkip},
  };
  for (size_t i = 0; i < sizeof(algos) / sizeof(algos[0]); ++i) {
    TopKOptions options;
    options.k = 5;
    options.missing = algos[i].missing;
    FaginStats stats;
    auto result = RunTopK(algos[i].algorithm, ptrs, options, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "smoke %s failed: %s\n", algos[i].name,
                   result.status().ToString().c_str());
      return 1;
    }
    json += std::string("    {\"algorithm\": \"") + algos[i].name +
            "\", \"sorted_accesses\": " + std::to_string(stats.sorted_accesses) +
            ", \"random_accesses\": " + std::to_string(stats.random_accesses) +
            ", \"ids_scored\": " + std::to_string(stats.ids_scored) +
            ", \"rounds\": " + std::to_string(stats.rounds) +
            ", \"threshold_checks\": " + std::to_string(stats.threshold_checks) +
            "}";
    json += (i + 1 < sizeof(algos) / sizeof(algos[0])) ? ",\n" : "\n";
  }
  json += "  ],\n  \"metrics\": " + metrics.ToJson() + "\n}\n";

  auto write = [](const char* path, const std::string& body) {
    FILE* f = std::fopen(path, "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
  };
  if (write("BENCH_fagin_smoke.json", json) != 0) return 1;
  if (metrics_path != nullptr && write(metrics_path, metrics.ToJson()) != 0) {
    return 1;
  }
  if (trace_path != nullptr &&
      write(trace_path, Tracer::Global().ToJson()) != 0) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fairjob

BENCHMARK(fairjob::BM_FaginTopK)
    ->ArgsProduct({{64, 512, 4096}, {4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginFA)
    ->ArgsProduct({{64, 512, 4096}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginNRA)
    ->ArgsProduct({{64, 512, 4096}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_ScanTopK)
    ->ArgsProduct({{64, 512, 4096}, {4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_FaginBottomK)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(fairjob::BM_IndexBuild)->Arg(1024)->Arg(16384)->Unit(
    benchmark::kMicrosecond);

// --smoke short-circuits into SmokeMain before google-benchmark sees the
// command line, so the flag set stays stable across benchmark versions.
int main(int argc, char** argv) {
  const char* metrics_path = nullptr;
  const char* trace_path = nullptr;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--metrics_json=", 15) == 0) {
      metrics_path = argv[i] + 15;
    }
    if (std::strncmp(argv[i], "--trace_json=", 13) == 0) {
      trace_path = argv[i] + 13;
    }
  }
  if (smoke) return fairjob::SmokeMain(metrics_path, trace_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
