// Reproduces Tables 20 and 21: Boston MA vs Bristol UK on Google job
// search, broken down by the General Cleaning search-term formulations,
// under Kendall-Tau (20) and Jaccard (21).
//
// Shape reproduced: Bristol is less fair overall, but the office/private
// cleaning formulations invert the comparison — consistently across both
// measures (which the paper highlights as encouraging).

#include <set>

#include "bench_util.h"

namespace fairjob {
namespace bench {
namespace {

void RunMeasure(const GoogleBoxes& boxes, const FBox& box,
                const char* measure_name, const char* table) {
  PrintTitle(std::string(table) + " — Boston, MA vs Bristol, UK by General "
             "Cleaning formulation (" + measure_name + ")");
  ComparisonResult result = OrDie(
      box.CompareByName(Dimension::kLocation, "Boston, MA", "Bristol, UK",
                        Dimension::kQuery),
      "comparison");

  std::set<std::string> cleaning_terms;
  for (const auto& [term, base] : boxes.world->base_query_of_term) {
    if (base == "general cleaning") cleaning_terms.insert(term);
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"All", Fmt(result.overall_d1), Fmt(result.overall_d2), ""});
  for (const ComparisonRow& row : result.rows) {
    std::string name = box.NameOf(Dimension::kQuery, row.breakdown_id);
    if (cleaning_terms.count(name) == 0) continue;
    rows.push_back(
        {name, Fmt(row.d1), Fmt(row.d2), row.reversed ? "REVERSED" : ""});
  }
  PrintTable({"Location-comparison", "Boston, MA", "Bristol, UK", ""}, rows);
}

void Run() {
  PrintPaperNote(
      "Table 20 (Kendall-Tau): All 0.641 vs 0.689; office & private "
      "cleaning jobs reversed. Table 21 (Jaccard): All 0.447 vs 0.603; "
      "private cleaning jobs reversed.");
  GoogleBoxes boxes = OrDie(BuildGoogleBoxes(), "google build");
  RunMeasure(boxes, *boxes.kendall_terms, "KendallTau", "Table 20");
  RunMeasure(boxes, *boxes.jaccard_terms, "Jaccard", "Table 21");
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
