// Reproduces the Google-side experimental setup: Table 6 (search-term
// formulations per TaskRabbit query) and Table 7 (number of study locations
// per job), plus the study-scale statistics of §5.1.2.
//
// Shape reproduced: 5 formulations per query including the paper's named
// cleaning/errand terms; yard work at 4 locations, general cleaning at 3,
// event staffing / moving job / run errand at 1 (furniture assembly is the
// documented extension row — §5.2.2 references it although Table 7 omits
// it); 6 demographic groups × 3 participants.

#include <map>

#include "bench_util.h"
#include "search/formulations.h"

namespace fairjob {
namespace bench {
namespace {

void Run() {
  PrintTitle("Table 6 — sample query formulations");
  std::vector<std::vector<std::string>> term_rows;
  for (const char* query : {"run errand", "yard work", "general cleaning"}) {
    std::vector<std::string> terms = ExpandFormulations(query);
    for (const std::string& term : terms) {
      term_rows.push_back({query, term});
    }
  }
  PrintTable({"TaskRabbit query", "Google search term"}, term_rows);

  PrintTitle("Table 7 — number of study locations per job");
  PrintPaperNote(
      "yard work 4, general cleaning 3, event staffing 1, moving job 1, "
      "run errand 1 (+ furniture assembly, our documented extension)");
  std::vector<StudyTask> tasks = GoogleStudyTasks();
  std::map<std::string, size_t> per_job;
  for (const StudyTask& task : tasks) ++per_job[task.base_query];
  std::vector<std::vector<std::string>> rows;
  for (const auto& [job, count] : per_job) {
    rows.push_back({job, std::to_string(count)});
  }
  PrintTable({"Job", "Locations"}, rows);

  PrintTitle("§5.1.2 — study scale");
  GoogleStudyConfig config;
  GoogleBoxes boxes = OrDie(BuildGoogleBoxes(config), "google build");
  std::printf("participants: %zu (6 groups x %zu)\n",
              boxes.world->dataset.num_users(), config.users_per_cell);
  std::printf("search terms: %zu, study locations: %zu\n",
              boxes.world->dataset.queries().size(),
              boxes.world->dataset.locations().size());
  std::printf("collected runs (user x term x location cells): %zu\n",
              boxes.world->dataset.num_observation_cells());
  std::printf("A/B conflicts: %zu resolved by a tie-break run, %zu kept "
              "first list\n",
              boxes.world->ab_conflicts_resolved,
              boxes.world->ab_conflicts_unresolved);
}

}  // namespace
}  // namespace bench
}  // namespace fairjob

int main() {
  fairjob::bench::Run();
  return 0;
}
