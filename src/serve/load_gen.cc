#include "serve/load_gen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/clock.h"
#include "common/metrics.h"

namespace fairjob {
namespace {

// Latencies land in the shared registry too (serve.load.latency_us) so a
// bench run's JSON export carries the full distribution, but the report's
// percentiles are exact: computed from the raw sorted samples.
LatencyHistogram* LoadHistogram() {
  static LatencyHistogram* histogram =
      MetricsRegistry::Global().histogram("serve.load.latency_us");
  return histogram;
}

void Classify(const Status& status, LoadCounts* counts) {
  switch (status.code()) {
    case StatusCode::kOk:
      ++counts->ok;
      break;
    case StatusCode::kDeadlineExceeded:
      ++counts->deadline_exceeded;
      break;
    case StatusCode::kUnavailable:
      ++counts->unavailable;
      break;
    default:
      ++counts->other_errors;
      break;
  }
}

void MergeCounts(const LoadCounts& from, LoadCounts* into) {
  into->offered += from.offered;
  into->ok += from.ok;
  into->deadline_exceeded += from.deadline_exceeded;
  into->unavailable += from.unavailable;
  into->other_errors += from.other_errors;
}

double ExactQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(std::ceil(q * sorted.size()));
  if (index == 0) index = 1;
  if (index > sorted.size()) index = sorted.size();
  return sorted[index - 1];
}

LoadReport FinishReport(LoadCounts counts,
                        std::vector<std::vector<double>> per_worker_latencies,
                        double wall_seconds) {
  LoadReport report;
  report.counts = counts;
  report.wall_seconds = wall_seconds;
  report.achieved_qps =
      wall_seconds > 0.0 ? static_cast<double>(counts.ok) / wall_seconds : 0.0;
  std::vector<double> latencies;
  for (const std::vector<double>& worker : per_worker_latencies) {
    latencies.insert(latencies.end(), worker.begin(), worker.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = ExactQuantile(latencies, 0.50);
  report.p99_us = ExactQuantile(latencies, 0.99);
  report.p999_us = ExactQuantile(latencies, 0.999);
  report.max_us = latencies.empty() ? 0.0 : latencies.back();
  return report;
}

}  // namespace

LoadReport RunOpenLoopLoad(QuantificationService& service,
                           const std::vector<QuantificationRequest>& trace,
                           const std::vector<int64_t>& arrivals_micros,
                           const LoadGenOptions& options) {
  if (trace.empty() || arrivals_micros.empty()) return LoadReport();
  const size_t num_workers = std::max<size_t>(1, options.num_workers);
  const Clock* clock = Clock::Real();

  std::atomic<size_t> next_arrival{0};
  std::vector<LoadCounts> counts(num_workers);
  std::vector<std::vector<double>> latencies(num_workers);

  const int64_t start_micros = clock->NowMicros();
  auto worker = [&](size_t w) {
    LoadCounts& my_counts = counts[w];
    std::vector<double>& my_latencies = latencies[w];
    for (;;) {
      size_t i = next_arrival.fetch_add(1, std::memory_order_relaxed);
      if (i >= arrivals_micros.size()) return;
      const int64_t scheduled = start_micros + arrivals_micros[i];
      int64_t now = clock->NowMicros();
      if (now < scheduled) {
        std::this_thread::sleep_for(std::chrono::microseconds(scheduled - now));
        now = clock->NowMicros();
      }
      // Anchor the deadline at the scheduled arrival: a request this
      // generator issued late has already burned part (or all — then the
      // budget goes negative and the service sheds it at entry) of it.
      int64_t budget = options.deadline_budget_micros;
      if (budget > 0) {
        budget = scheduled + options.deadline_budget_micros - now;
        if (budget == 0) budget = -1;  // exactly exhausted, not "default"
      }
      ++my_counts.offered;
      Result<QuantificationResult> answer =
          service.Answer(trace[i % trace.size()], budget);
      Classify(answer.ok() ? Status::OK() : answer.status(), &my_counts);
      if (answer.ok()) {
        double latency =
            static_cast<double>(clock->NowMicros() - scheduled);
        my_latencies.push_back(latency);
        LoadHistogram()->Record(latency);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) threads.emplace_back(worker, w);
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds =
      static_cast<double>(clock->NowMicros() - start_micros) / 1e6;

  LoadCounts total;
  for (const LoadCounts& c : counts) MergeCounts(c, &total);
  return FinishReport(total, std::move(latencies), wall_seconds);
}

LoadReport RunClosedLoopLoad(QuantificationService& service,
                             const std::vector<QuantificationRequest>& trace,
                             double duration_seconds,
                             const LoadGenOptions& options) {
  if (trace.empty() || duration_seconds <= 0.0) return LoadReport();
  const size_t num_workers = std::max<size_t>(1, options.num_workers);
  const Clock* clock = Clock::Real();

  std::atomic<size_t> next_index{0};
  std::vector<LoadCounts> counts(num_workers);
  std::vector<std::vector<double>> latencies(num_workers);

  const int64_t start_micros = clock->NowMicros();
  const int64_t stop_micros =
      start_micros + static_cast<int64_t>(duration_seconds * 1e6);
  auto worker = [&](size_t w) {
    LoadCounts& my_counts = counts[w];
    std::vector<double>& my_latencies = latencies[w];
    while (clock->NowMicros() < stop_micros) {
      size_t i = next_index.fetch_add(1, std::memory_order_relaxed);
      ++my_counts.offered;
      const int64_t issued = clock->NowMicros();
      Result<QuantificationResult> answer = service.Answer(
          trace[i % trace.size()], options.deadline_budget_micros);
      Classify(answer.ok() ? Status::OK() : answer.status(), &my_counts);
      if (answer.ok()) {
        double latency = static_cast<double>(clock->NowMicros() - issued);
        my_latencies.push_back(latency);
        LoadHistogram()->Record(latency);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) threads.emplace_back(worker, w);
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds =
      static_cast<double>(clock->NowMicros() - start_micros) / 1e6;

  LoadCounts total;
  for (const LoadCounts& c : counts) MergeCounts(c, &total);
  return FinishReport(total, std::move(latencies), wall_seconds);
}

}  // namespace fairjob
