#include "serve/cache_key.h"

#include <algorithm>
#include <cstring>

#include "serve/cube_snapshot.h"
#include "serve/fnv.h"

namespace fairjob {
namespace {

// Sorted into *out; emptied when the explicit list is exactly the whole
// axis (selecting every position once aggregates exactly the "all" lists).
// Duplicates are deliberately KEPT: IndexSet::ListsFor resolves positions
// verbatim, so a duplicated position contributes its list twice to the
// aggregate — {0, 0} is a genuinely different request from {0}. Sorting
// alone makes the key a multiset identity: permutations of the same
// selector share one cache entry (their answers agree up to floating-point
// summation order; see docs/serving.md).
//
// Writes straight into the key member (one reserve, one allocation) instead
// of returning a temporary that gets move-assigned — this runs on every
// request, cache hits included, so the per-key allocation count matters.
void NormalizePositions(const std::vector<size_t>& positions, size_t axis_size,
                        std::vector<size_t>* out) {
  out->clear();
  out->reserve(positions.size());
  out->assign(positions.begin(), positions.end());
  std::sort(out->begin(), out->end());
  if (out->size() == axis_size) {
    bool full = true;
    for (size_t i = 0; i < out->size(); ++i) {
      if ((*out)[i] != i) {
        full = false;
        break;
      }
    }
    if (full) out->clear();
  }
}

// allowed_targets IS a set (the top-k runners build a hash set from it), so
// here duplicates are dropped as well as sorted.
void NormalizeTargets(const std::vector<int32_t>& targets, size_t axis_size,
                      std::vector<int32_t>* out) {
  out->clear();
  out->reserve(targets.size());
  out->assign(targets.begin(), targets.end());
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  if (out->size() == axis_size) {
    bool full = true;
    for (size_t i = 0; i < out->size(); ++i) {
      if ((*out)[i] != static_cast<int32_t>(i)) {
        full = false;
        break;
      }
    }
    if (full) out->clear();
  }
}

}  // namespace

RequestCacheKey::RequestCacheKey(const QuantificationRequest& request,
                                 const CubeSnapshot& snapshot)
    : target(request.target),
      k(static_cast<uint32_t>(request.k)),
      direction(request.direction),
      missing(request.missing),
      algorithm(request.algorithm) {
  const UnfairnessCube& cube = snapshot.cube();
  Dimension d1;
  Dimension d2;
  // agg1/agg2 follow SolveQuantification's ascending-dimension convention.
  QuantificationOtherDims(request.target, &d1, &d2);
  NormalizePositions(request.agg1.positions, cube.axis_size(d1), &agg1);
  NormalizePositions(request.agg2.positions, cube.axis_size(d2), &agg2);
  NormalizeTargets(request.allowed_targets, cube.axis_size(request.target),
                   &allowed);
  // After normalization, so equivalent selector spellings bind the same
  // column epochs (and the all/all fast path actually fires).
  epoch_digest = snapshot.EpochDigest(target, agg1, agg2);
}

bool RequestCacheKey::operator==(const RequestCacheKey& other) const {
  return epoch_digest == other.epoch_digest && target == other.target &&
         k == other.k && direction == other.direction &&
         missing == other.missing && algorithm == other.algorithm &&
         agg1 == other.agg1 && agg2 == other.agg2 && allowed == other.allowed;
}

size_t RequestCacheKeyHash::operator()(const RequestCacheKey& key) const {
  uint64_t h = fnv::kOffset;
  fnv::HashValue(&h, key.epoch_digest);
  fnv::HashValue(&h, static_cast<uint32_t>(key.target));
  fnv::HashValue(&h, key.k);
  fnv::HashValue(&h, static_cast<uint32_t>(key.direction));
  fnv::HashValue(&h, static_cast<uint32_t>(key.missing));
  fnv::HashValue(&h, static_cast<uint32_t>(key.algorithm));
  // Length separators keep ({1},{}) distinct from ({},{1}).
  fnv::HashValue(&h, static_cast<uint64_t>(key.agg1.size()));
  for (size_t pos : key.agg1) fnv::HashValue(&h, static_cast<uint64_t>(pos));
  fnv::HashValue(&h, static_cast<uint64_t>(key.agg2.size()));
  for (size_t pos : key.agg2) fnv::HashValue(&h, static_cast<uint64_t>(pos));
  fnv::HashValue(&h, static_cast<uint64_t>(key.allowed.size()));
  for (int32_t t : key.allowed) fnv::HashValue(&h, t);
  return static_cast<size_t>(h);
}

uint64_t FingerprintCube(const UnfairnessCube& cube) {
  uint64_t h = fnv::kOffset;
  for (Dimension d :
       {Dimension::kGroup, Dimension::kQuery, Dimension::kLocation}) {
    size_t n = cube.axis_size(d);
    fnv::HashValue(&h, static_cast<uint64_t>(n));
    for (size_t pos = 0; pos < n; ++pos) {
      fnv::HashValue(&h, cube.axis_id(d, pos));
    }
  }
  size_t groups = cube.axis_size(Dimension::kGroup);
  size_t queries = cube.axis_size(Dimension::kQuery);
  size_t locations = cube.axis_size(Dimension::kLocation);
  for (size_t g = 0; g < groups; ++g) {
    for (size_t q = 0; q < queries; ++q) {
      for (size_t l = 0; l < locations; ++l) {
        std::optional<double> value = cube.Get(g, q, l);
        fnv::HashValue(&h,
                       static_cast<unsigned char>(value.has_value() ? 1 : 0));
        if (value.has_value()) {
          // Bit pattern, not the double itself: 0.0 vs -0.0 and NaN payloads
          // must all perturb the digest deterministically.
          uint64_t bits;
          static_assert(sizeof(bits) == sizeof(*value));
          std::memcpy(&bits, &*value, sizeof(bits));
          fnv::HashValue(&h, bits);
        }
      }
    }
  }
  return h;
}

}  // namespace fairjob
