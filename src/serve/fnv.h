#ifndef FAIRJOB_SERVE_FNV_H_
#define FAIRJOB_SERVE_FNV_H_

#include <cstddef>
#include <cstdint>

namespace fairjob {
namespace fnv {

// 64-bit FNV-1a, shared by the cube fingerprint, the request cache key and
// the snapshot epoch digests so every digest in the serving layer mixes the
// same way.
inline constexpr uint64_t kOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kPrime = 0x100000001b3ULL;

inline void HashBytes(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kPrime;
  }
}

template <typename T>
inline void HashValue(uint64_t* h, T value) {
  HashBytes(h, &value, sizeof(value));
}

}  // namespace fnv
}  // namespace fairjob

#endif  // FAIRJOB_SERVE_FNV_H_
