#include "serve/quantification_service.h"

#include <chrono>
#include <limits>
#include <utility>

#include <algorithm>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/quantification_batch.h"

namespace fairjob {
namespace {

// Deadline sentinel: "no deadline" compares later than any clock reading.
constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

// Queued waiters re-check the deadline on this cadence. Short enough that a
// virtual-clock advance is observed promptly in tests, long enough not to
// thrash the admission mutex under real load.
constexpr std::chrono::microseconds kAdmissionPoll{200};

struct ServeMetrics {
  Counter* requests;
  Counter* computations;
  Counter* coalesced;
  Counter* errors;
  Counter* batch_calls;
  Counter* batch_requests;
  Counter* batch_deduped;
  Counter* snapshot_flips;
  Counter* admitted;
  Counter* admission_rejected;
  Counter* shed_deadline;
  Counter* shed_followers;
  Counter* stale_hits;
  Counter* stale_refreshes;
  Counter* stale_ttl_expired;
  Counter* batch_windows;
  Counter* batch_parked;
  Counter* batch_window_shed;
  Counter* batch_exec_groups;
  Counter* batch_exec_lanes;
  Counter* batch_lists_gathered;
  Counter* batch_lists_demanded;
  Gauge* snapshot_version;
  Gauge* admission_queue_depth;
  LatencyHistogram* answer_us;
  LatencyHistogram* batch_us;
  LatencyHistogram* admission_wait_us;
  LatencyHistogram* batch_occupancy;
  LatencyHistogram* batch_window_wait_us;
};

// Shared across all services (metric objects are process-wide anyway);
// resolved once, cached like every other hot path (docs/observability.md).
const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    ServeMetrics m;
    m.requests = registry.counter("serve.requests");
    m.computations = registry.counter("serve.computations");
    m.coalesced = registry.counter("serve.singleflight.coalesced");
    m.errors = registry.counter("serve.errors");
    m.batch_calls = registry.counter("serve.batch.calls");
    m.batch_requests = registry.counter("serve.batch.requests");
    m.batch_deduped = registry.counter("serve.batch.deduped");
    m.snapshot_flips = registry.counter("serve.snapshot.flips");
    m.admitted = registry.counter("serve.admission.admitted");
    m.admission_rejected = registry.counter("serve.admission.rejected");
    m.shed_deadline = registry.counter("serve.shed.deadline");
    m.shed_followers = registry.counter("serve.shed.followers");
    m.stale_hits = registry.counter("serve.stale.hits");
    m.stale_refreshes = registry.counter("serve.stale.refreshes");
    m.stale_ttl_expired = registry.counter("serve.stale.ttl_expired");
    m.batch_windows = registry.counter("serve.batch.windows");
    m.batch_parked = registry.counter("serve.batch.parked");
    m.batch_window_shed = registry.counter("serve.batch.window_shed");
    m.batch_exec_groups = registry.counter("serve.batch.exec_groups");
    m.batch_exec_lanes = registry.counter("serve.batch.exec_lanes");
    m.batch_lists_gathered = registry.counter("serve.batch.lists_gathered");
    m.batch_lists_demanded = registry.counter("serve.batch.lists_demanded");
    m.snapshot_version = registry.gauge("serve.snapshot.version");
    m.admission_queue_depth = registry.gauge("serve.admission.queue_depth");
    m.answer_us = registry.histogram("serve.answer_us");
    m.batch_us = registry.histogram("serve.batch_us");
    m.admission_wait_us = registry.histogram("serve.admission.wait_us");
    m.batch_occupancy = registry.histogram("serve.batch.occupancy");
    m.batch_window_wait_us = registry.histogram("serve.batch.window_wait_us");
    return m;
  }();
  return metrics;
}

// The LRU is keyed by the canonical request shape alone; the epoch digest
// the answer was computed against lives in the value, so one upsert turns
// an entry stale in place instead of stranding it under a dead key.
RequestCacheKey StorageKey(const RequestCacheKey& key) {
  RequestCacheKey storage = key;
  storage.epoch_digest = 0;
  return storage;
}

}  // namespace

QuantificationService::QuantificationService(
    std::shared_ptr<const CubeSnapshot> snapshot)
    : QuantificationService(std::move(snapshot), Options()) {}

QuantificationService::QuantificationService(
    std::shared_ptr<const CubeSnapshot> snapshot, Options options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()),
      snapshot_(std::move(snapshot)),
      cache_(options_.cache_capacity, options_.cache_shards, "serve.cache") {}

QuantificationService::QuantificationService(const UnfairnessCube* cube,
                                             const IndexSet* indices)
    : QuantificationService(CubeSnapshot::Borrow(cube, indices), Options()) {}

QuantificationService::QuantificationService(const UnfairnessCube* cube,
                                             const IndexSet* indices,
                                             Options options)
    : QuantificationService(CubeSnapshot::Borrow(cube, indices),
                            std::move(options)) {}

void QuantificationService::SetSnapshot(
    std::shared_ptr<const CubeSnapshot> snapshot) {
  Metrics().snapshot_version->Set(static_cast<double>(snapshot->version()));
  snapshot_.Publish(std::move(snapshot));
  snapshot_flips_.fetch_add(1, std::memory_order_relaxed);
  Metrics().snapshot_flips->Add(1);
}

void QuantificationService::SetBackend(const UnfairnessCube* cube,
                                       const IndexSet* indices) {
  // Borrow re-fingerprints (O(cells)) before publishing, so requests are
  // never paused behind the hash — the flip itself is one pointer swap.
  SetSnapshot(CubeSnapshot::Borrow(cube, indices));
}

std::shared_ptr<const CubeSnapshot> QuantificationService::snapshot() const {
  return snapshot_.Acquire();
}

uint64_t QuantificationService::cube_fingerprint() const {
  return snapshot_.Acquire()->lineage();
}

Result<QuantificationResult> QuantificationService::Answer(
    const QuantificationRequest& request) {
  return AnswerInternal(request, /*from_batch=*/false,
                        /*deadline_budget_micros=*/0, snapshot_.Acquire());
}

Result<QuantificationResult> QuantificationService::Answer(
    const QuantificationRequest& request, int64_t deadline_budget_micros) {
  return AnswerInternal(request, /*from_batch=*/false, deadline_budget_micros,
                        snapshot_.Acquire());
}

QuantificationService::Probe QuantificationService::ProbeCache(
    const RequestCacheKey& storage_key, uint64_t epoch_digest, int64_t now,
    std::shared_ptr<const QuantificationResult>* answer) {
  if (options_.cache_capacity == 0) return Probe::kDisabled;
  std::optional<CachedAnswer> cached = cache_.Get(storage_key);
  if (!cached.has_value()) return Probe::kMiss;
  if (options_.cache_ttl_micros > 0 &&
      now - cached->inserted_micros >= options_.cache_ttl_micros) {
    return Probe::kTtlExpired;
  }
  if (cached->epoch_digest == epoch_digest) {
    *answer = std::move(cached->result);
    return Probe::kFresh;
  }
  // Stale-while-revalidate: the entry predates an upsert that bumped an
  // epoch this request reads. fetch_add hands out budget slots exactly
  // once each across concurrent serves (all value copies share the
  // counter), so the entry is served at most stale_budget times.
  if (options_.stale_budget > 0 &&
      cached->stale_served->fetch_add(1, std::memory_order_acq_rel) <
          options_.stale_budget) {
    *answer = std::move(cached->result);
    return Probe::kStaleServed;
  }
  return Probe::kStaleExhausted;
}

Status QuantificationService::AcquirePermit(int64_t deadline_abs_micros,
                                            bool* waited) {
  std::unique_lock<std::mutex> lock(admission_mutex_);
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    return Status::OK();
  }
  if (queued_ >= options_.max_queue_depth) {
    return Status::Unavailable("admission queue full");
  }
  *waited = true;
  ++queued_;
  Metrics().admission_queue_depth->Set(static_cast<double>(queued_));
  ScopedTimer wait_timer(Metrics().admission_wait_us);
  for (;;) {
    // wait_for (not wait-until-deadline) because the deadline is measured
    // on an abstract Clock: a virtual clock advanced by a test thread has
    // no relation to the condvar's steady_clock, so waiters poll it.
    admission_cv_.wait_for(lock, kAdmissionPoll);
    if (inflight_ < options_.max_inflight) {
      --queued_;
      ++inflight_;
      Metrics().admission_queue_depth->Set(static_cast<double>(queued_));
      return Status::OK();
    }
    if (clock_->NowMicros() >= deadline_abs_micros) {
      --queued_;
      Metrics().admission_queue_depth->Set(static_cast<double>(queued_));
      return Status::DeadlineExceeded("deadline passed in admission queue");
    }
  }
}

void QuantificationService::ReleasePermit() {
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --inflight_;
  }
  // notify_all: waiters race for the permit and the losers re-check their
  // deadlines, which is exactly the poll the virtual clock relies on.
  admission_cv_.notify_all();
}

size_t QuantificationService::admission_queue_depth() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return queued_;
}

Result<QuantificationResult> QuantificationService::AnswerInternal(
    const QuantificationRequest& request, bool from_batch,
    int64_t deadline_budget_micros,
    const std::shared_ptr<const CubeSnapshot>& snapshot) {
  TraceSpan span("QuantificationService::Answer", "serve");
  ScopedTimer timer(Metrics().answer_us);
  Metrics().requests->Add(1);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (from_batch) batch_requests_.fetch_add(1, std::memory_order_relaxed);

  // Deadline resolution: explicit budget wins, 0 falls back to the
  // configured default, negative means the request was already late on
  // arrival (an open-loop generator running behind schedule) — shed it
  // before spending anything on it, cache probe included.
  int64_t budget = deadline_budget_micros != 0 ? deadline_budget_micros
                                               : options_.default_deadline_micros;
  if (budget < 0) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed_deadline->Add(1);
    return Status::DeadlineExceeded("deadline passed before arrival");
  }
  const bool needs_time = budget > 0 || options_.cache_ttl_micros > 0;
  const int64_t now = needs_time ? clock_->NowMicros() : 0;
  const int64_t deadline_abs = budget > 0 ? now + budget : kNoDeadline;

  // `snapshot` was pinned once by the caller; everything below — key,
  // cache probe, computation — sees that one immutable state.
  RequestCacheKey key(request, *snapshot);
  const RequestCacheKey storage_key = StorageKey(key);

  // Cache probe runs before the admission gate: hits (fresh or bounded
  // stale) cost no permit, so a warm cache keeps absorbing load even when
  // the compute path is saturated.
  std::shared_ptr<const QuantificationResult> cached_answer;
  Probe probe = ProbeCache(storage_key, key.epoch_digest, now, &cached_answer);
  switch (probe) {
    case Probe::kFresh:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      Metrics().admitted->Add(1);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return *cached_answer;
    case Probe::kStaleServed:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      Metrics().admitted->Add(1);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      stale_hits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale_hits->Add(1);
      return *cached_answer;
    case Probe::kTtlExpired:
      ttl_expired_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale_ttl_expired->Add(1);
      break;
    case Probe::kDisabled:
    case Probe::kMiss:
    case Probe::kStaleExhausted:
      break;
  }
  // Misses past this point either compute or coalesce; remember whether
  // the computation will replace an outdated entry (for stale_refreshes).
  const bool refreshing =
      probe == Probe::kTtlExpired || probe == Probe::kStaleExhausted;

  // Admission gate (miss path only). A permit bounds concurrent compute;
  // followers give theirs back before blocking on the leader's future.
  const bool admission_on = options_.max_inflight > 0;
  if (admission_on) {
    bool waited = false;
    Status admit = AcquirePermit(deadline_abs, &waited);
    if (!admit.ok()) {
      if (admit.code() == StatusCode::kDeadlineExceeded) {
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        Metrics().shed_deadline->Add(1);
      } else {
        rejected_queue_.fetch_add(1, std::memory_order_relaxed);
        Metrics().admission_rejected->Add(1);
      }
      return admit;
    }
    if (waited) {
      // The answer may have been computed and cached while this request
      // was parked; serving it now avoids a duplicate computation.
      Probe reprobe =
          ProbeCache(storage_key, key.epoch_digest,
                     needs_time ? clock_->NowMicros() : 0, &cached_answer);
      if (reprobe == Probe::kFresh || reprobe == Probe::kStaleServed) {
        ReleasePermit();
        admitted_.fetch_add(1, std::memory_order_relaxed);
        Metrics().admitted->Add(1);
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (reprobe == Probe::kStaleServed) {
          stale_hits_.fetch_add(1, std::memory_order_relaxed);
          Metrics().stale_hits->Add(1);
        }
        return *cached_answer;
      }
    }
  }

  // Micro-batched execution: park the miss in the window collector instead
  // of the single-flight layer — the window both coalesces duplicate keys
  // (same role as a flight) and lets distinct keys share one batched pass.
  if (options_.batch_window_micros > 0) {
    return AnswerViaWindow(key, request, snapshot, refreshing, deadline_abs,
                           admission_on);
  }

  // Single flight: the first thread to claim `key` computes; every thread
  // that finds an in-flight future waits on it instead of recomputing.
  // Keys embed the epoch digest, so requests pinned to different snapshots
  // with differing read sets never coalesce onto each other's flight.
  std::shared_ptr<std::promise<FlightOutcome>> promise;
  std::shared_future<FlightOutcome> flight_future;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      if (options_.max_followers_per_flight > 0 &&
          it->second.followers->fetch_add(1, std::memory_order_acq_rel) >=
              options_.max_followers_per_flight) {
        // Bounded follower queue: refuse to pile a further duplicate onto
        // this computation. Typed rejection, no miss/coalesce counted.
        if (admission_on) ReleasePermit();
        rejected_followers_.fetch_add(1, std::memory_order_relaxed);
        Metrics().shed_followers->Add(1);
        return Status::Unavailable("single-flight follower bound reached");
      }
      flight_future = it->second.future;
    } else {
      promise = std::make_shared<std::promise<FlightOutcome>>();
      Flight flight;
      flight.future = promise->get_future().share();
      flight.followers = std::make_shared<std::atomic<uint32_t>>(0);
      flight_future = flight.future;
      flights_.emplace(key, std::move(flight));
    }
  }

  if (promise == nullptr) {
    // Follower: give the compute permit back before blocking — a parked
    // follower must not starve the computations it is waiting on.
    if (admission_on) ReleasePermit();
    admitted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().admitted->Add(1);
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    Metrics().coalesced->Add(1);
    FlightOutcome outcome = flight_future.get();
    if (!outcome.status.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      Metrics().errors->Add(1);
      return outcome.status;
    }
    return *outcome.result;
  }

  // Leader: compute, publish to cache, resolve the flight, retire it.
  if (options_.compute_started_hook) options_.compute_started_hook();
  admitted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().admitted->Add(1);
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  computations_.fetch_add(1, std::memory_order_relaxed);
  Metrics().computations->Add(1);
  FlightOutcome outcome;
  {
    TraceSpan compute_span("serve.compute", "serve");
    Result<QuantificationResult> computed =
        SolveQuantification(snapshot->cube(), snapshot->indices(), request);
    if (computed.ok()) {
      outcome.result = std::make_shared<const QuantificationResult>(
          std::move(*computed));
    } else {
      outcome.status = computed.status();
    }
  }
  if (outcome.status.ok() && options_.cache_capacity > 0) {
    CachedAnswer entry;
    entry.result = outcome.result;
    entry.epoch_digest = key.epoch_digest;
    entry.inserted_micros =
        options_.cache_ttl_micros > 0 ? clock_->NowMicros() : now;
    entry.stale_served = std::make_shared<std::atomic<uint32_t>>(0);
    cache_.Put(storage_key, std::move(entry));
    if (refreshing) {
      stale_refreshes_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale_refreshes->Add(1);
    }
  }
  promise->set_value(outcome);
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    flights_.erase(key);
  }
  if (admission_on) ReleasePermit();
  if (!outcome.status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().errors->Add(1);
    return outcome.status;
  }
  return *outcome.result;
}

Result<QuantificationResult> QuantificationService::AnswerViaWindow(
    const RequestCacheKey& key, const QuantificationRequest& request,
    const std::shared_ptr<const CubeSnapshot>& snapshot, bool refreshing,
    int64_t deadline_abs, bool admission_on) {
  std::shared_future<BatchOutcome> future;
  bool leader = false;
  std::vector<BatchEntry> drained;
  {
    std::unique_lock<std::mutex> lock(batch_mutex_);
    auto it = batch_pending_index_.find(key);
    if (it != batch_pending_index_.end()) {
      BatchEntry& entry = batch_pending_[it->second];
      if (options_.max_followers_per_flight > 0 &&
          entry.waiters - 1 >= options_.max_followers_per_flight) {
        // Same bound as a single-flight follower queue: refuse to pile a
        // further duplicate onto this window entry.
        lock.unlock();
        if (admission_on) ReleasePermit();
        rejected_followers_.fetch_add(1, std::memory_order_relaxed);
        Metrics().shed_followers->Add(1);
        return Status::Unavailable("batch window follower bound reached");
      }
      ++entry.waiters;
      entry.max_deadline_abs = std::max(entry.max_deadline_abs, deadline_abs);
      entry.refreshing = entry.refreshing || refreshing;
      future = entry.future;
    } else {
      BatchEntry entry;
      entry.key = key;
      entry.request = request;
      entry.snapshot = snapshot;
      entry.refreshing = refreshing;
      entry.max_deadline_abs = deadline_abs;
      entry.parked_micros = clock_->NowMicros();
      entry.promise = std::make_shared<std::promise<BatchOutcome>>();
      entry.future = entry.promise->get_future().share();
      future = entry.future;
      batch_pending_index_.emplace(key, batch_pending_.size());
      batch_pending_.push_back(std::move(entry));
      // While a leader is active every new entry lands in the list it will
      // drain; otherwise this thread leads the window it just opened.
      if (!batch_leader_active_) {
        batch_leader_active_ = true;
        batch_window_end_ =
            clock_->NowMicros() + options_.batch_window_micros;
        leader = true;
      }
    }
    batch_parked_.fetch_add(1, std::memory_order_relaxed);
    Metrics().batch_parked->Add(1);
    if (options_.max_batch_size > 0 &&
        batch_pending_.size() >= options_.max_batch_size) {
      batch_cv_.notify_all();
    }

    if (leader) {
      // Lead the window: wait for the size trigger or expiry, polling the
      // abstract clock (wait_until cannot see a VirtualClock advance).
      for (;;) {
        if (options_.max_batch_size > 0 &&
            batch_pending_.size() >= options_.max_batch_size) {
          break;
        }
        const int64_t now = clock_->NowMicros();
        if (now >= batch_window_end_) break;
        const auto remaining = std::chrono::microseconds(
            batch_window_end_ - now);
        batch_cv_.wait_for(lock, std::min(remaining, kAdmissionPoll));
      }
      drained.swap(batch_pending_);
      batch_pending_index_.clear();
      batch_leader_active_ = false;
    }
  }

  if (leader) {
    DrainBatchWindow(&drained);
    // The leader held its compute permit through park + drain: with
    // admission on, one window occupies one compute slot end to end.
    if (admission_on) ReleasePermit();
  } else if (admission_on) {
    // Parked followers give their permit back before blocking, exactly
    // like single-flight followers — a parked request must not starve the
    // window leader (or unrelated computations) out of compute slots.
    ReleasePermit();
  }

  BatchOutcome outcome = future.get();
  if (deadline_abs != kNoDeadline && outcome.drained_micros >= deadline_abs) {
    // The window outlived this request's deadline: shed it with the same
    // typed error the admission queue uses. Requests that parked and then
    // shed never count as admitted, keeping the accounting identity exact.
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed_deadline->Add(1);
    batch_window_shed_.fetch_add(1, std::memory_order_relaxed);
    Metrics().batch_window_shed->Add(1);
    return Status::DeadlineExceeded("deadline passed in batch window");
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().admitted->Add(1);
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  // Exactly one surviving waiter per computed entry claims the computation
  // (a computed entry always has one: the drain only runs when the latest
  // waiter deadline is still live); the rest coalesced onto it.
  if (!outcome.computation_claimed->exchange(true,
                                             std::memory_order_acq_rel)) {
    computations_.fetch_add(1, std::memory_order_relaxed);
    Metrics().computations->Add(1);
  } else {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    Metrics().coalesced->Add(1);
  }
  if (!outcome.status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().errors->Add(1);
    return outcome.status;
  }
  return *outcome.result;
}

void QuantificationService::DrainBatchWindow(std::vector<BatchEntry>* entries) {
  const int64_t drain_now = clock_->NowMicros();
  batch_windows_.fetch_add(1, std::memory_order_relaxed);
  Metrics().batch_windows->Add(1);
  Metrics().batch_occupancy->Record(static_cast<double>(entries->size()));

  // Resolve entries every waiter of which has already expired without
  // computing them; waiters do their own (exact) per-deadline shed against
  // drained_micros, so an entry computes iff someone can still use it.
  std::vector<BatchEntry*> live;
  live.reserve(entries->size());
  for (BatchEntry& entry : *entries) {
    Metrics().batch_window_wait_us->Record(
        static_cast<double>(drain_now - entry.parked_micros));
    if (entry.max_deadline_abs != kNoDeadline &&
        drain_now >= entry.max_deadline_abs) {
      BatchOutcome outcome;
      outcome.status = Status::DeadlineExceeded("deadline passed in batch window");
      outcome.drained_micros = drain_now;
      outcome.computation_claimed = std::make_shared<std::atomic<bool>>(false);
      entry.promise->set_value(std::move(outcome));
      continue;
    }
    live.push_back(&entry);
  }

  // Group by pinned snapshot: entries usually share one, but a flip mid-
  // window may split the batch — each request must still see exactly the
  // snapshot it pinned.
  std::stable_sort(live.begin(), live.end(),
                   [](const BatchEntry* a, const BatchEntry* b) {
                     return a->snapshot.get() < b->snapshot.get();
                   });
  size_t start = 0;
  while (start < live.size()) {
    size_t end = start;
    while (end < live.size() &&
           live[end]->snapshot.get() == live[start]->snapshot.get()) {
      ++end;
    }
    const CubeSnapshot& snap = *live[start]->snapshot;
    std::vector<QuantificationRequest> requests;
    requests.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      requests.push_back(live[i]->request);
    }
    BatchExecStats exec;
    std::vector<Result<QuantificationResult>> results;
    {
      TraceSpan span("serve.batch.compute", "serve");
      results = SolveQuantificationBatch(snap.cube(), snap.indices(),
                                         requests, &exec);
    }
    Metrics().batch_exec_groups->Add(exec.groups);
    Metrics().batch_exec_lanes->Add(exec.requests);
    Metrics().batch_lists_gathered->Add(exec.lists_gathered);
    Metrics().batch_lists_demanded->Add(exec.lists_demanded);
    for (size_t i = start; i < end; ++i) {
      BatchEntry& entry = *live[i];
      BatchOutcome outcome;
      outcome.drained_micros = drain_now;
      outcome.computation_claimed = std::make_shared<std::atomic<bool>>(false);
      Result<QuantificationResult>& computed = results[i - start];
      if (computed.ok()) {
        outcome.result = std::make_shared<const QuantificationResult>(
            std::move(*computed));
        if (options_.cache_capacity > 0) {
          CachedAnswer cached;
          cached.result = outcome.result;
          cached.epoch_digest = entry.key.epoch_digest;
          cached.inserted_micros =
              options_.cache_ttl_micros > 0 ? clock_->NowMicros() : drain_now;
          cached.stale_served = std::make_shared<std::atomic<uint32_t>>(0);
          cache_.Put(StorageKey(entry.key), std::move(cached));
          if (entry.refreshing) {
            stale_refreshes_.fetch_add(1, std::memory_order_relaxed);
            Metrics().stale_refreshes->Add(1);
          }
        }
      } else {
        outcome.status = computed.status();
      }
      entry.promise->set_value(std::move(outcome));
    }
    start = end;
  }
}

std::vector<Result<QuantificationResult>> QuantificationService::AnswerBatch(
    const std::vector<QuantificationRequest>& requests) {
  TraceSpan span("QuantificationService::AnswerBatch", "serve");
  ScopedTimer timer(Metrics().batch_us);
  Metrics().batch_calls->Add(1);
  Metrics().batch_requests->Add(requests.size());

  // Pin ONE snapshot for the whole batch: dedup and every fanned-out answer
  // run against the same state, so a concurrent flip cannot split a batch
  // across two cubes (dedup-equal requests stay answer-equal).
  std::shared_ptr<const CubeSnapshot> snapshot = snapshot_.Acquire();

  // Group duplicate requests by canonical key; only the first of each group
  // (the representative) is answered, everyone else copies its result.
  std::vector<size_t> representative_of(requests.size());
  std::vector<size_t> representatives;
  {
    std::unordered_map<RequestCacheKey, size_t, RequestCacheKeyHash> seen;
    for (size_t i = 0; i < requests.size(); ++i) {
      RequestCacheKey key(requests[i], *snapshot);
      auto [it, inserted] = seen.emplace(std::move(key), i);
      representative_of[i] = it->second;
      if (inserted) representatives.push_back(i);
    }
  }
  Metrics().batch_deduped->Add(requests.size() - representatives.size());

  std::vector<std::optional<Result<QuantificationResult>>> answered(
      requests.size());
  size_t parallelism = options_.batch_parallelism > 0
                           ? options_.batch_parallelism
                           : ThreadPool::Shared().num_threads() + 1;
  // The body only writes disjoint slots; AnswerInternal is thread-safe. The
  // fan-out itself cannot fail, so the ParallelFor status is always OK.
  ThreadPool::Shared()
      .ParallelFor(representatives.size(), parallelism,
                   [&](size_t r) {
                     size_t i = representatives[r];
                     answered[i] = AnswerInternal(requests[i],
                                                  /*from_batch=*/true,
                                                  /*deadline_budget_micros=*/0,
                                                  snapshot);
                     return Status::OK();
                   });

  std::vector<Result<QuantificationResult>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    results.push_back(*answered[representative_of[i]]);
  }
  return results;
}

QuantificationService::Stats QuantificationService::stats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected_queue = rejected_queue_.load(std::memory_order_relaxed);
  stats.rejected_followers =
      rejected_followers_.load(std::memory_order_relaxed);
  stats.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.stale_hits = stale_hits_.load(std::memory_order_relaxed);
  stats.stale_refreshes = stale_refreshes_.load(std::memory_order_relaxed);
  stats.ttl_expired = ttl_expired_.load(std::memory_order_relaxed);
  stats.computations = computations_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.snapshot_flips = snapshot_flips_.load(std::memory_order_relaxed);
  stats.batch_windows = batch_windows_.load(std::memory_order_relaxed);
  stats.batch_parked = batch_parked_.load(std::memory_order_relaxed);
  stats.batch_window_shed =
      batch_window_shed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace fairjob
