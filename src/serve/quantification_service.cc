#include "serve/quantification_service.h"

#include <chrono>
#include <limits>
#include <utility>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace fairjob {
namespace {

// Deadline sentinel: "no deadline" compares later than any clock reading.
constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

// Queued waiters re-check the deadline on this cadence. Short enough that a
// virtual-clock advance is observed promptly in tests, long enough not to
// thrash the admission mutex under real load.
constexpr std::chrono::microseconds kAdmissionPoll{200};

struct ServeMetrics {
  Counter* requests;
  Counter* computations;
  Counter* coalesced;
  Counter* errors;
  Counter* batch_calls;
  Counter* batch_requests;
  Counter* batch_deduped;
  Counter* snapshot_flips;
  Counter* admitted;
  Counter* admission_rejected;
  Counter* shed_deadline;
  Counter* shed_followers;
  Counter* stale_hits;
  Counter* stale_refreshes;
  Counter* stale_ttl_expired;
  Gauge* snapshot_version;
  Gauge* admission_queue_depth;
  LatencyHistogram* answer_us;
  LatencyHistogram* batch_us;
  LatencyHistogram* admission_wait_us;
};

// Shared across all services (metric objects are process-wide anyway);
// resolved once, cached like every other hot path (docs/observability.md).
const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    ServeMetrics m;
    m.requests = registry.counter("serve.requests");
    m.computations = registry.counter("serve.computations");
    m.coalesced = registry.counter("serve.singleflight.coalesced");
    m.errors = registry.counter("serve.errors");
    m.batch_calls = registry.counter("serve.batch.calls");
    m.batch_requests = registry.counter("serve.batch.requests");
    m.batch_deduped = registry.counter("serve.batch.deduped");
    m.snapshot_flips = registry.counter("serve.snapshot.flips");
    m.admitted = registry.counter("serve.admission.admitted");
    m.admission_rejected = registry.counter("serve.admission.rejected");
    m.shed_deadline = registry.counter("serve.shed.deadline");
    m.shed_followers = registry.counter("serve.shed.followers");
    m.stale_hits = registry.counter("serve.stale.hits");
    m.stale_refreshes = registry.counter("serve.stale.refreshes");
    m.stale_ttl_expired = registry.counter("serve.stale.ttl_expired");
    m.snapshot_version = registry.gauge("serve.snapshot.version");
    m.admission_queue_depth = registry.gauge("serve.admission.queue_depth");
    m.answer_us = registry.histogram("serve.answer_us");
    m.batch_us = registry.histogram("serve.batch_us");
    m.admission_wait_us = registry.histogram("serve.admission.wait_us");
    return m;
  }();
  return metrics;
}

// The LRU is keyed by the canonical request shape alone; the epoch digest
// the answer was computed against lives in the value, so one upsert turns
// an entry stale in place instead of stranding it under a dead key.
RequestCacheKey StorageKey(const RequestCacheKey& key) {
  RequestCacheKey storage = key;
  storage.epoch_digest = 0;
  return storage;
}

}  // namespace

QuantificationService::QuantificationService(
    std::shared_ptr<const CubeSnapshot> snapshot)
    : QuantificationService(std::move(snapshot), Options()) {}

QuantificationService::QuantificationService(
    std::shared_ptr<const CubeSnapshot> snapshot, Options options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()),
      snapshot_(std::move(snapshot)),
      cache_(options_.cache_capacity, options_.cache_shards, "serve.cache") {}

QuantificationService::QuantificationService(const UnfairnessCube* cube,
                                             const IndexSet* indices)
    : QuantificationService(CubeSnapshot::Borrow(cube, indices), Options()) {}

QuantificationService::QuantificationService(const UnfairnessCube* cube,
                                             const IndexSet* indices,
                                             Options options)
    : QuantificationService(CubeSnapshot::Borrow(cube, indices),
                            std::move(options)) {}

void QuantificationService::SetSnapshot(
    std::shared_ptr<const CubeSnapshot> snapshot) {
  Metrics().snapshot_version->Set(static_cast<double>(snapshot->version()));
  snapshot_.Publish(std::move(snapshot));
  snapshot_flips_.fetch_add(1, std::memory_order_relaxed);
  Metrics().snapshot_flips->Add(1);
}

void QuantificationService::SetBackend(const UnfairnessCube* cube,
                                       const IndexSet* indices) {
  // Borrow re-fingerprints (O(cells)) before publishing, so requests are
  // never paused behind the hash — the flip itself is one pointer swap.
  SetSnapshot(CubeSnapshot::Borrow(cube, indices));
}

std::shared_ptr<const CubeSnapshot> QuantificationService::snapshot() const {
  return snapshot_.Acquire();
}

uint64_t QuantificationService::cube_fingerprint() const {
  return snapshot_.Acquire()->lineage();
}

Result<QuantificationResult> QuantificationService::Answer(
    const QuantificationRequest& request) {
  return AnswerInternal(request, /*from_batch=*/false,
                        /*deadline_budget_micros=*/0, snapshot_.Acquire());
}

Result<QuantificationResult> QuantificationService::Answer(
    const QuantificationRequest& request, int64_t deadline_budget_micros) {
  return AnswerInternal(request, /*from_batch=*/false, deadline_budget_micros,
                        snapshot_.Acquire());
}

QuantificationService::Probe QuantificationService::ProbeCache(
    const RequestCacheKey& storage_key, uint64_t epoch_digest, int64_t now,
    std::shared_ptr<const QuantificationResult>* answer) {
  if (options_.cache_capacity == 0) return Probe::kDisabled;
  std::optional<CachedAnswer> cached = cache_.Get(storage_key);
  if (!cached.has_value()) return Probe::kMiss;
  if (options_.cache_ttl_micros > 0 &&
      now - cached->inserted_micros >= options_.cache_ttl_micros) {
    return Probe::kTtlExpired;
  }
  if (cached->epoch_digest == epoch_digest) {
    *answer = std::move(cached->result);
    return Probe::kFresh;
  }
  // Stale-while-revalidate: the entry predates an upsert that bumped an
  // epoch this request reads. fetch_add hands out budget slots exactly
  // once each across concurrent serves (all value copies share the
  // counter), so the entry is served at most stale_budget times.
  if (options_.stale_budget > 0 &&
      cached->stale_served->fetch_add(1, std::memory_order_acq_rel) <
          options_.stale_budget) {
    *answer = std::move(cached->result);
    return Probe::kStaleServed;
  }
  return Probe::kStaleExhausted;
}

Status QuantificationService::AcquirePermit(int64_t deadline_abs_micros,
                                            bool* waited) {
  std::unique_lock<std::mutex> lock(admission_mutex_);
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    return Status::OK();
  }
  if (queued_ >= options_.max_queue_depth) {
    return Status::Unavailable("admission queue full");
  }
  *waited = true;
  ++queued_;
  Metrics().admission_queue_depth->Set(static_cast<double>(queued_));
  ScopedTimer wait_timer(Metrics().admission_wait_us);
  for (;;) {
    // wait_for (not wait-until-deadline) because the deadline is measured
    // on an abstract Clock: a virtual clock advanced by a test thread has
    // no relation to the condvar's steady_clock, so waiters poll it.
    admission_cv_.wait_for(lock, kAdmissionPoll);
    if (inflight_ < options_.max_inflight) {
      --queued_;
      ++inflight_;
      Metrics().admission_queue_depth->Set(static_cast<double>(queued_));
      return Status::OK();
    }
    if (clock_->NowMicros() >= deadline_abs_micros) {
      --queued_;
      Metrics().admission_queue_depth->Set(static_cast<double>(queued_));
      return Status::DeadlineExceeded("deadline passed in admission queue");
    }
  }
}

void QuantificationService::ReleasePermit() {
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --inflight_;
  }
  // notify_all: waiters race for the permit and the losers re-check their
  // deadlines, which is exactly the poll the virtual clock relies on.
  admission_cv_.notify_all();
}

size_t QuantificationService::admission_queue_depth() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return queued_;
}

Result<QuantificationResult> QuantificationService::AnswerInternal(
    const QuantificationRequest& request, bool from_batch,
    int64_t deadline_budget_micros,
    const std::shared_ptr<const CubeSnapshot>& snapshot) {
  TraceSpan span("QuantificationService::Answer", "serve");
  ScopedTimer timer(Metrics().answer_us);
  Metrics().requests->Add(1);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (from_batch) batch_requests_.fetch_add(1, std::memory_order_relaxed);

  // Deadline resolution: explicit budget wins, 0 falls back to the
  // configured default, negative means the request was already late on
  // arrival (an open-loop generator running behind schedule) — shed it
  // before spending anything on it, cache probe included.
  int64_t budget = deadline_budget_micros != 0 ? deadline_budget_micros
                                               : options_.default_deadline_micros;
  if (budget < 0) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    Metrics().shed_deadline->Add(1);
    return Status::DeadlineExceeded("deadline passed before arrival");
  }
  const bool needs_time = budget > 0 || options_.cache_ttl_micros > 0;
  const int64_t now = needs_time ? clock_->NowMicros() : 0;
  const int64_t deadline_abs = budget > 0 ? now + budget : kNoDeadline;

  // `snapshot` was pinned once by the caller; everything below — key,
  // cache probe, computation — sees that one immutable state.
  RequestCacheKey key(request, *snapshot);
  const RequestCacheKey storage_key = StorageKey(key);

  // Cache probe runs before the admission gate: hits (fresh or bounded
  // stale) cost no permit, so a warm cache keeps absorbing load even when
  // the compute path is saturated.
  std::shared_ptr<const QuantificationResult> cached_answer;
  Probe probe = ProbeCache(storage_key, key.epoch_digest, now, &cached_answer);
  switch (probe) {
    case Probe::kFresh:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      Metrics().admitted->Add(1);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return *cached_answer;
    case Probe::kStaleServed:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      Metrics().admitted->Add(1);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      stale_hits_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale_hits->Add(1);
      return *cached_answer;
    case Probe::kTtlExpired:
      ttl_expired_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale_ttl_expired->Add(1);
      break;
    case Probe::kDisabled:
    case Probe::kMiss:
    case Probe::kStaleExhausted:
      break;
  }
  // Misses past this point either compute or coalesce; remember whether
  // the computation will replace an outdated entry (for stale_refreshes).
  const bool refreshing =
      probe == Probe::kTtlExpired || probe == Probe::kStaleExhausted;

  // Admission gate (miss path only). A permit bounds concurrent compute;
  // followers give theirs back before blocking on the leader's future.
  const bool admission_on = options_.max_inflight > 0;
  if (admission_on) {
    bool waited = false;
    Status admit = AcquirePermit(deadline_abs, &waited);
    if (!admit.ok()) {
      if (admit.code() == StatusCode::kDeadlineExceeded) {
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        Metrics().shed_deadline->Add(1);
      } else {
        rejected_queue_.fetch_add(1, std::memory_order_relaxed);
        Metrics().admission_rejected->Add(1);
      }
      return admit;
    }
    if (waited) {
      // The answer may have been computed and cached while this request
      // was parked; serving it now avoids a duplicate computation.
      Probe reprobe =
          ProbeCache(storage_key, key.epoch_digest,
                     needs_time ? clock_->NowMicros() : 0, &cached_answer);
      if (reprobe == Probe::kFresh || reprobe == Probe::kStaleServed) {
        ReleasePermit();
        admitted_.fetch_add(1, std::memory_order_relaxed);
        Metrics().admitted->Add(1);
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (reprobe == Probe::kStaleServed) {
          stale_hits_.fetch_add(1, std::memory_order_relaxed);
          Metrics().stale_hits->Add(1);
        }
        return *cached_answer;
      }
    }
  }

  // Single flight: the first thread to claim `key` computes; every thread
  // that finds an in-flight future waits on it instead of recomputing.
  // Keys embed the epoch digest, so requests pinned to different snapshots
  // with differing read sets never coalesce onto each other's flight.
  std::shared_ptr<std::promise<FlightOutcome>> promise;
  std::shared_future<FlightOutcome> flight_future;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      if (options_.max_followers_per_flight > 0 &&
          it->second.followers->fetch_add(1, std::memory_order_acq_rel) >=
              options_.max_followers_per_flight) {
        // Bounded follower queue: refuse to pile a further duplicate onto
        // this computation. Typed rejection, no miss/coalesce counted.
        if (admission_on) ReleasePermit();
        rejected_followers_.fetch_add(1, std::memory_order_relaxed);
        Metrics().shed_followers->Add(1);
        return Status::Unavailable("single-flight follower bound reached");
      }
      flight_future = it->second.future;
    } else {
      promise = std::make_shared<std::promise<FlightOutcome>>();
      Flight flight;
      flight.future = promise->get_future().share();
      flight.followers = std::make_shared<std::atomic<uint32_t>>(0);
      flight_future = flight.future;
      flights_.emplace(key, std::move(flight));
    }
  }

  if (promise == nullptr) {
    // Follower: give the compute permit back before blocking — a parked
    // follower must not starve the computations it is waiting on.
    if (admission_on) ReleasePermit();
    admitted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().admitted->Add(1);
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    Metrics().coalesced->Add(1);
    FlightOutcome outcome = flight_future.get();
    if (!outcome.status.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      Metrics().errors->Add(1);
      return outcome.status;
    }
    return *outcome.result;
  }

  // Leader: compute, publish to cache, resolve the flight, retire it.
  if (options_.compute_started_hook) options_.compute_started_hook();
  admitted_.fetch_add(1, std::memory_order_relaxed);
  Metrics().admitted->Add(1);
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  computations_.fetch_add(1, std::memory_order_relaxed);
  Metrics().computations->Add(1);
  FlightOutcome outcome;
  {
    TraceSpan compute_span("serve.compute", "serve");
    Result<QuantificationResult> computed =
        SolveQuantification(snapshot->cube(), snapshot->indices(), request);
    if (computed.ok()) {
      outcome.result = std::make_shared<const QuantificationResult>(
          std::move(*computed));
    } else {
      outcome.status = computed.status();
    }
  }
  if (outcome.status.ok() && options_.cache_capacity > 0) {
    CachedAnswer entry;
    entry.result = outcome.result;
    entry.epoch_digest = key.epoch_digest;
    entry.inserted_micros =
        options_.cache_ttl_micros > 0 ? clock_->NowMicros() : now;
    entry.stale_served = std::make_shared<std::atomic<uint32_t>>(0);
    cache_.Put(storage_key, std::move(entry));
    if (refreshing) {
      stale_refreshes_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale_refreshes->Add(1);
    }
  }
  promise->set_value(outcome);
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    flights_.erase(key);
  }
  if (admission_on) ReleasePermit();
  if (!outcome.status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().errors->Add(1);
    return outcome.status;
  }
  return *outcome.result;
}

std::vector<Result<QuantificationResult>> QuantificationService::AnswerBatch(
    const std::vector<QuantificationRequest>& requests) {
  TraceSpan span("QuantificationService::AnswerBatch", "serve");
  ScopedTimer timer(Metrics().batch_us);
  Metrics().batch_calls->Add(1);
  Metrics().batch_requests->Add(requests.size());

  // Pin ONE snapshot for the whole batch: dedup and every fanned-out answer
  // run against the same state, so a concurrent flip cannot split a batch
  // across two cubes (dedup-equal requests stay answer-equal).
  std::shared_ptr<const CubeSnapshot> snapshot = snapshot_.Acquire();

  // Group duplicate requests by canonical key; only the first of each group
  // (the representative) is answered, everyone else copies its result.
  std::vector<size_t> representative_of(requests.size());
  std::vector<size_t> representatives;
  {
    std::unordered_map<RequestCacheKey, size_t, RequestCacheKeyHash> seen;
    for (size_t i = 0; i < requests.size(); ++i) {
      RequestCacheKey key(requests[i], *snapshot);
      auto [it, inserted] = seen.emplace(std::move(key), i);
      representative_of[i] = it->second;
      if (inserted) representatives.push_back(i);
    }
  }
  Metrics().batch_deduped->Add(requests.size() - representatives.size());

  std::vector<std::optional<Result<QuantificationResult>>> answered(
      requests.size());
  size_t parallelism = options_.batch_parallelism > 0
                           ? options_.batch_parallelism
                           : ThreadPool::Shared().num_threads() + 1;
  // The body only writes disjoint slots; AnswerInternal is thread-safe. The
  // fan-out itself cannot fail, so the ParallelFor status is always OK.
  ThreadPool::Shared()
      .ParallelFor(representatives.size(), parallelism,
                   [&](size_t r) {
                     size_t i = representatives[r];
                     answered[i] = AnswerInternal(requests[i],
                                                  /*from_batch=*/true,
                                                  /*deadline_budget_micros=*/0,
                                                  snapshot);
                     return Status::OK();
                   });

  std::vector<Result<QuantificationResult>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    results.push_back(*answered[representative_of[i]]);
  }
  return results;
}

QuantificationService::Stats QuantificationService::stats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected_queue = rejected_queue_.load(std::memory_order_relaxed);
  stats.rejected_followers =
      rejected_followers_.load(std::memory_order_relaxed);
  stats.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.stale_hits = stale_hits_.load(std::memory_order_relaxed);
  stats.stale_refreshes = stale_refreshes_.load(std::memory_order_relaxed);
  stats.ttl_expired = ttl_expired_.load(std::memory_order_relaxed);
  stats.computations = computations_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.snapshot_flips = snapshot_flips_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace fairjob
