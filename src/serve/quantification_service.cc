#include "serve/quantification_service.h"

#include <utility>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace fairjob {
namespace {

struct ServeMetrics {
  Counter* requests;
  Counter* computations;
  Counter* coalesced;
  Counter* errors;
  Counter* batch_calls;
  Counter* batch_requests;
  Counter* batch_deduped;
  Counter* snapshot_flips;
  Gauge* snapshot_version;
  LatencyHistogram* answer_us;
  LatencyHistogram* batch_us;
};

// Shared across all services (metric objects are process-wide anyway);
// resolved once, cached like every other hot path (docs/observability.md).
const ServeMetrics& Metrics() {
  static const ServeMetrics metrics = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    ServeMetrics m;
    m.requests = registry.counter("serve.requests");
    m.computations = registry.counter("serve.computations");
    m.coalesced = registry.counter("serve.singleflight.coalesced");
    m.errors = registry.counter("serve.errors");
    m.batch_calls = registry.counter("serve.batch.calls");
    m.batch_requests = registry.counter("serve.batch.requests");
    m.batch_deduped = registry.counter("serve.batch.deduped");
    m.snapshot_flips = registry.counter("serve.snapshot.flips");
    m.snapshot_version = registry.gauge("serve.snapshot.version");
    m.answer_us = registry.histogram("serve.answer_us");
    m.batch_us = registry.histogram("serve.batch_us");
    return m;
  }();
  return metrics;
}

}  // namespace

QuantificationService::QuantificationService(
    std::shared_ptr<const CubeSnapshot> snapshot)
    : QuantificationService(std::move(snapshot), Options()) {}

QuantificationService::QuantificationService(
    std::shared_ptr<const CubeSnapshot> snapshot, Options options)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      cache_(options_.cache_capacity, options_.cache_shards, "serve.cache") {}

QuantificationService::QuantificationService(const UnfairnessCube* cube,
                                             const IndexSet* indices)
    : QuantificationService(CubeSnapshot::Borrow(cube, indices), Options()) {}

QuantificationService::QuantificationService(const UnfairnessCube* cube,
                                             const IndexSet* indices,
                                             Options options)
    : QuantificationService(CubeSnapshot::Borrow(cube, indices),
                            std::move(options)) {}

void QuantificationService::SetSnapshot(
    std::shared_ptr<const CubeSnapshot> snapshot) {
  Metrics().snapshot_version->Set(static_cast<double>(snapshot->version()));
  snapshot_.Publish(std::move(snapshot));
  snapshot_flips_.fetch_add(1, std::memory_order_relaxed);
  Metrics().snapshot_flips->Add(1);
}

void QuantificationService::SetBackend(const UnfairnessCube* cube,
                                       const IndexSet* indices) {
  // Borrow re-fingerprints (O(cells)) before publishing, so requests are
  // never paused behind the hash — the flip itself is one pointer swap.
  SetSnapshot(CubeSnapshot::Borrow(cube, indices));
}

std::shared_ptr<const CubeSnapshot> QuantificationService::snapshot() const {
  return snapshot_.Acquire();
}

uint64_t QuantificationService::cube_fingerprint() const {
  return snapshot_.Acquire()->lineage();
}

Result<QuantificationResult> QuantificationService::Answer(
    const QuantificationRequest& request) {
  return AnswerInternal(request, /*from_batch=*/false,
                        snapshot_.Acquire());
}

Result<QuantificationResult> QuantificationService::AnswerInternal(
    const QuantificationRequest& request, bool from_batch,
    const std::shared_ptr<const CubeSnapshot>& snapshot) {
  TraceSpan span("QuantificationService::Answer", "serve");
  ScopedTimer timer(Metrics().answer_us);
  Metrics().requests->Add(1);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (from_batch) batch_requests_.fetch_add(1, std::memory_order_relaxed);

  // `snapshot` was pinned once by the caller; everything below — key,
  // cache probe, computation — sees that one immutable state.
  RequestCacheKey key(request, *snapshot);

  if (options_.cache_capacity > 0) {
    std::optional<std::shared_ptr<const QuantificationResult>> cached =
        cache_.Get(key);
    if (cached.has_value()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return **cached;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  // Single flight: the first thread to claim `key` computes; every thread
  // that finds an in-flight future waits on it instead of recomputing.
  // Keys embed the epoch digest, so requests pinned to different snapshots
  // with differing read sets never coalesce onto each other's flight.
  std::shared_ptr<std::promise<FlightOutcome>> promise;
  std::shared_future<FlightOutcome> flight;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      promise = std::make_shared<std::promise<FlightOutcome>>();
      flight = promise->get_future().share();
      flights_.emplace(key, flight);
    }
  }

  if (promise == nullptr) {
    // Follower: share the leader's outcome.
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    Metrics().coalesced->Add(1);
    FlightOutcome outcome = flight.get();
    if (!outcome.status.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      Metrics().errors->Add(1);
      return outcome.status;
    }
    return *outcome.result;
  }

  // Leader: compute, publish to cache, resolve the flight, retire it.
  if (options_.compute_started_hook) options_.compute_started_hook();
  computations_.fetch_add(1, std::memory_order_relaxed);
  Metrics().computations->Add(1);
  FlightOutcome outcome;
  {
    TraceSpan compute_span("serve.compute", "serve");
    Result<QuantificationResult> computed =
        SolveQuantification(snapshot->cube(), snapshot->indices(), request);
    if (computed.ok()) {
      outcome.result = std::make_shared<const QuantificationResult>(
          std::move(*computed));
    } else {
      outcome.status = computed.status();
    }
  }
  if (outcome.status.ok() && options_.cache_capacity > 0) {
    cache_.Put(key, outcome.result);
  }
  promise->set_value(outcome);
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    flights_.erase(key);
  }
  if (!outcome.status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().errors->Add(1);
    return outcome.status;
  }
  return *outcome.result;
}

std::vector<Result<QuantificationResult>> QuantificationService::AnswerBatch(
    const std::vector<QuantificationRequest>& requests) {
  TraceSpan span("QuantificationService::AnswerBatch", "serve");
  ScopedTimer timer(Metrics().batch_us);
  Metrics().batch_calls->Add(1);
  Metrics().batch_requests->Add(requests.size());

  // Pin ONE snapshot for the whole batch: dedup and every fanned-out answer
  // run against the same state, so a concurrent flip cannot split a batch
  // across two cubes (dedup-equal requests stay answer-equal).
  std::shared_ptr<const CubeSnapshot> snapshot = snapshot_.Acquire();

  // Group duplicate requests by canonical key; only the first of each group
  // (the representative) is answered, everyone else copies its result.
  std::vector<size_t> representative_of(requests.size());
  std::vector<size_t> representatives;
  {
    std::unordered_map<RequestCacheKey, size_t, RequestCacheKeyHash> seen;
    for (size_t i = 0; i < requests.size(); ++i) {
      RequestCacheKey key(requests[i], *snapshot);
      auto [it, inserted] = seen.emplace(std::move(key), i);
      representative_of[i] = it->second;
      if (inserted) representatives.push_back(i);
    }
  }
  Metrics().batch_deduped->Add(requests.size() - representatives.size());

  std::vector<std::optional<Result<QuantificationResult>>> answered(
      requests.size());
  size_t parallelism = options_.batch_parallelism > 0
                           ? options_.batch_parallelism
                           : ThreadPool::Shared().num_threads() + 1;
  // The body only writes disjoint slots; AnswerInternal is thread-safe. The
  // fan-out itself cannot fail, so the ParallelFor status is always OK.
  ThreadPool::Shared()
      .ParallelFor(representatives.size(), parallelism,
                   [&](size_t r) {
                     size_t i = representatives[r];
                     answered[i] = AnswerInternal(requests[i],
                                                  /*from_batch=*/true,
                                                  snapshot);
                     return Status::OK();
                   });

  std::vector<Result<QuantificationResult>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    results.push_back(*answered[representative_of[i]]);
  }
  return results;
}

QuantificationService::Stats QuantificationService::stats() const {
  Stats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.computations = computations_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.snapshot_flips = snapshot_flips_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace fairjob
