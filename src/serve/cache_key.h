#ifndef FAIRJOB_SERVE_CACHE_KEY_H_
#define FAIRJOB_SERVE_CACHE_KEY_H_

#include <cstdint>
#include <vector>

#include "core/quantification.h"
#include "core/unfairness_cube.h"

namespace fairjob {

// Canonical identity of a QuantificationRequest against one specific cube,
// used as the answer-cache / single-flight key (docs/serving.md).
//
// Two requests that provably return the same answers must map to the same
// key, so the constructor normalizes every selector:
//  * axis selector positions are sorted — duplicates are kept, because a
//    duplicated position aggregates its inverted list twice and is a
//    different request (permutations, though, share one entry);
//  * a selector that explicitly lists every position of its axis once
//    collapses to the empty "all" form (it aggregates the same lists);
//  * allowed_targets is sorted and deduplicated (it is consumed as a set);
//    a filter admitting the whole axis is no filter at all.
// Two requests that may return different payloads must map to different
// keys, so the algorithm is part of the identity (the family agrees on the
// top-k only up to ties, and each run carries its own FaginStats), as are
// the missing-cell policy, direction and k.
//
// `cube_fingerprint` binds the key to the exact cube contents the answer
// was computed from: a rebuilt or refreshed cube hashes differently, so
// stale entries can never be served — they simply stop matching and age
// out of the LRU.
struct RequestCacheKey {
  uint64_t cube_fingerprint = 0;
  Dimension target = Dimension::kGroup;
  uint32_t k = 0;
  RankDirection direction = RankDirection::kMostUnfair;
  MissingCellPolicy missing = MissingCellPolicy::kSkip;
  TopKAlgorithm algorithm = TopKAlgorithm::kThresholdAlgorithm;
  std::vector<size_t> agg1;             // normalized; empty = all
  std::vector<size_t> agg2;             // normalized; empty = all
  std::vector<int32_t> allowed;         // normalized; empty = all

  // Builds the canonical key for `request` over `cube`. Axis sizes come from
  // the cube; `cube_fingerprint` is passed in (it is O(cells) to compute, so
  // the service computes it once per backend, not per request).
  RequestCacheKey(const QuantificationRequest& request,
                  const UnfairnessCube& cube, uint64_t cube_fingerprint);
  RequestCacheKey() = default;

  bool operator==(const RequestCacheKey& other) const;
};

struct RequestCacheKeyHash {
  size_t operator()(const RequestCacheKey& key) const;
};

// Order-sensitive 64-bit FNV-1a digest of the cube's full identity: axis
// ids per dimension and, for every cell, presence plus the exact bit
// pattern of the stored double. Any Set/Clear/rebuild that changes an
// answer changes the fingerprint; identical contents (however produced)
// collide on purpose, so re-building an unchanged cube keeps the cache
// warm.
uint64_t FingerprintCube(const UnfairnessCube& cube);

}  // namespace fairjob

#endif  // FAIRJOB_SERVE_CACHE_KEY_H_
