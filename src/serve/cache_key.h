#ifndef FAIRJOB_SERVE_CACHE_KEY_H_
#define FAIRJOB_SERVE_CACHE_KEY_H_

#include <cstdint>
#include <vector>

#include "core/quantification.h"
#include "core/unfairness_cube.h"

namespace fairjob {

class CubeSnapshot;

// Canonical identity of a QuantificationRequest against one specific serving
// snapshot, used as the answer-cache / single-flight key (docs/serving.md).
//
// Two requests that provably return the same answers must map to the same
// key, so the constructor normalizes every selector:
//  * axis selector positions are sorted — duplicates are kept, because a
//    duplicated position aggregates its inverted list twice and is a
//    different request (permutations, though, share one entry);
//  * a selector that explicitly lists every position of its axis once
//    collapses to the empty "all" form (it aggregates the same lists);
//  * allowed_targets is sorted and deduplicated (it is consumed as a set);
//    a filter admitting the whole axis is no filter at all.
// Two requests that may return different payloads must map to different
// keys, so the algorithm is part of the identity (the family agrees on the
// top-k only up to ties, and each run carries its own FaginStats), as are
// the missing-cell policy, direction and k.
//
// `epoch_digest` binds the key to the data the answer was computed from —
// but only the part it read: it digests the snapshot lineage plus the
// per-(query, location) column epochs of exactly the columns the normalized
// selectors touch (CubeSnapshot::EpochDigest). An incremental upsert bumps
// epochs for the columns it changed, so entries over untouched columns keep
// matching across the flip while entries over changed columns stop matching
// and age out of the LRU. A full rebuild changes the lineage and therefore
// every key — unless the rebuilt cube is bitwise identical, in which case
// the whole cache stays warm on purpose.
struct RequestCacheKey {
  uint64_t epoch_digest = 0;
  Dimension target = Dimension::kGroup;
  uint32_t k = 0;
  RankDirection direction = RankDirection::kMostUnfair;
  MissingCellPolicy missing = MissingCellPolicy::kSkip;
  TopKAlgorithm algorithm = TopKAlgorithm::kThresholdAlgorithm;
  std::vector<size_t> agg1;             // normalized; empty = all
  std::vector<size_t> agg2;             // normalized; empty = all
  std::vector<int32_t> allowed;         // normalized; empty = all

  // Builds the canonical key for `request` over `snapshot`. Axis sizes come
  // from the snapshot's cube; the epoch digest is computed from the
  // *normalized* selectors so equivalent requests also agree on which column
  // epochs they bind.
  RequestCacheKey(const QuantificationRequest& request,
                  const CubeSnapshot& snapshot);
  RequestCacheKey() = default;

  bool operator==(const RequestCacheKey& other) const;
};

struct RequestCacheKeyHash {
  size_t operator()(const RequestCacheKey& key) const;
};

// Order-sensitive 64-bit FNV-1a digest of the cube's full identity: axis
// ids per dimension and, for every cell, presence plus the exact bit
// pattern of the stored double. Any Set/Clear/rebuild that changes an
// answer changes the fingerprint; identical contents (however produced)
// collide on purpose, so re-building an unchanged cube keeps the cache
// warm. Per-column epochs are deliberately NOT part of the fingerprint —
// the fingerprint is the *content* identity (snapshot lineage), epochs are
// the *change* ledger layered on top, and the differential contract
// (incremental upserts ≡ cold rebuild) requires the two to stay disjoint.
uint64_t FingerprintCube(const UnfairnessCube& cube);

}  // namespace fairjob

#endif  // FAIRJOB_SERVE_CACHE_KEY_H_
