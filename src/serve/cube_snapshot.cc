#include "serve/cube_snapshot.h"

#include <utility>

#include "serve/cache_key.h"
#include "serve/fnv.h"

namespace fairjob {
namespace {

// Epoch contribution of the column block (qs × ls) in canonical order:
// queries outer, locations inner, selector order as normalized by the cache
// key (sorted; duplicates kept — deterministic either way).
void HashColumnEpochs(uint64_t* h, const UnfairnessCube& cube,
                      const std::vector<size_t>& qs,
                      const std::vector<size_t>& ls) {
  size_t num_queries = cube.axis_size(Dimension::kQuery);
  size_t num_locations = cube.axis_size(Dimension::kLocation);
  auto hash_row = [&](size_t q) {
    if (ls.empty()) {
      for (size_t l = 0; l < num_locations; ++l) {
        fnv::HashValue(h, cube.column_epoch(q, l));
      }
    } else {
      for (size_t l : ls) fnv::HashValue(h, cube.column_epoch(q, l));
    }
  };
  if (qs.empty()) {
    for (size_t q = 0; q < num_queries; ++q) hash_row(q);
  } else {
    for (size_t q : qs) hash_row(q);
  }
}

}  // namespace

void CubeSnapshot::Finish() {
  cube_ = owned_cube_.has_value() ? &*owned_cube_ : cube_;
  indices_ = owned_indices_.has_value() ? &*owned_indices_ : indices_;
  uint64_t h = fnv::kOffset;
  fnv::HashValue(&h, lineage_);
  HashColumnEpochs(&h, *cube_, {}, {});
  full_epoch_digest_ = h;
}

std::shared_ptr<const CubeSnapshot> CubeSnapshot::Make(UnfairnessCube cube) {
  auto snapshot = std::shared_ptr<CubeSnapshot>(new CubeSnapshot());
  snapshot->owned_cube_ = std::move(cube);
  snapshot->owned_indices_ = IndexSet::Build(*snapshot->owned_cube_);
  snapshot->lineage_ = FingerprintCube(*snapshot->owned_cube_);
  snapshot->Finish();
  return snapshot;
}

std::shared_ptr<const CubeSnapshot> CubeSnapshot::MakeDerived(
    UnfairnessCube cube, IndexSet indices, uint64_t lineage,
    uint64_t version) {
  auto snapshot = std::shared_ptr<CubeSnapshot>(new CubeSnapshot());
  snapshot->owned_cube_ = std::move(cube);
  snapshot->owned_indices_ = std::move(indices);
  snapshot->lineage_ = lineage;
  snapshot->version_ = version;
  snapshot->Finish();
  return snapshot;
}

std::shared_ptr<const CubeSnapshot> CubeSnapshot::Borrow(
    const UnfairnessCube* cube, const IndexSet* indices) {
  auto snapshot = std::shared_ptr<CubeSnapshot>(new CubeSnapshot());
  snapshot->cube_ = cube;
  snapshot->indices_ = indices;
  snapshot->lineage_ = FingerprintCube(*cube);
  snapshot->Finish();
  return snapshot;
}

uint64_t CubeSnapshot::EpochDigest(Dimension target,
                                   const std::vector<size_t>& agg1,
                                   const std::vector<size_t>& agg2) const {
  static const std::vector<size_t> kAll;
  const std::vector<size_t>* qs = &kAll;
  const std::vector<size_t>* ls = &kAll;
  switch (target) {
    case Dimension::kGroup:  // agg1 = queries, agg2 = locations
      qs = &agg1;
      ls = &agg2;
      break;
    case Dimension::kQuery:  // agg1 = groups, agg2 = locations
      ls = &agg2;
      break;
    case Dimension::kLocation:  // agg1 = groups, agg2 = queries
      qs = &agg2;
      break;
  }
  if (qs->empty() && ls->empty()) return full_epoch_digest_;
  uint64_t h = fnv::kOffset;
  fnv::HashValue(&h, lineage_);
  HashColumnEpochs(&h, *cube_, *qs, *ls);
  return h;
}

}  // namespace fairjob
