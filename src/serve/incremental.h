#ifndef FAIRJOB_SERVE_INCREMENTAL_H_
#define FAIRJOB_SERVE_INCREMENTAL_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/data_model.h"
#include "core/group_space.h"
#include "core/unfairness_cube.h"
#include "core/unfairness_measures.h"
#include "serve/cube_snapshot.h"

namespace fairjob {

// Incremental cube maintenance (docs/serving.md, "Incremental maintenance &
// snapshots"): a maintainer owns the dataset and the current CubeSnapshot
// and turns a delta — a re-crawled batch of marketplace rankings, a fresh
// study snapshot of search observations — into a *derived* snapshot in time
// proportional to the touched (query, location) columns, not the whole
// cube.
//
// The differential contract: after any sequence of successful upserts, the
// maintainer's cube is bitwise identical (presence + double bit patterns)
// to a cold rebuild over the same mutated dataset. The delta path reuses
// the full builders' per-column evaluation verbatim
// (BuildMarketplaceCubeColumns / BuildSearchCubeColumns stream through the
// same CubeColumnSink seam the sharded builders use), so this holds by
// construction and is asserted by tests/incremental_test.cc and
// bench_incremental.
//
// Epoch discipline: a column's epoch is bumped only when its recomputed
// values actually differ from the served ones — an upsert that rewrites a
// ranking with identical contents leaves every epoch (and therefore every
// cache entry) untouched. When nothing changed at all, the maintainer keeps
// serving the previous snapshot instead of publishing an identical twin.
//
// Concurrency: one writer. Upserts may run while any number of readers
// serve the *previous* snapshot (they pinned it via the service's atomic);
// the maintainer never mutates a published snapshot — it copies the cube
// and indices, patches the copies, and publishes via
// CubeSnapshot::MakeDerived.

// One re-crawled result page: the ranking observed for (query, location) on
// the latest crawl. Ids are dataset vocabulary ids; both must already be on
// the cube axes (new queries/locations change the cube shape and require a
// cold rebuild). Later rows win when a batch lists the same cell twice.
struct CrawlBatchRow {
  QueryId query = 0;
  LocationId location = 0;
  MarketRanking ranking;
};

struct CrawlBatch {
  std::vector<CrawlBatchRow> rows;
};

// One re-run study cell: the full observation set collected for
// (query, location) on the latest run. Replace semantics — the new vector
// supersedes whatever was stored; empty removes the cell (it becomes
// unobserved and its column goes missing).
struct StudySnapshotCell {
  QueryId query = 0;
  LocationId location = 0;
  std::vector<SearchObservation> observations;
};

struct StudySnapshot {
  std::vector<StudySnapshotCell> cells;
};

// What one upsert did; the cache-survival arithmetic in tests and
// bench_incremental is built on these counts.
struct UpsertReport {
  size_t rows_applied = 0;       // batch rows written into the dataset
  size_t columns_touched = 0;    // distinct (query, location) columns
  size_t columns_changed = 0;    // columns whose values differed (epoch bumped)
  size_t cells_recomputed = 0;   // columns_touched × group-axis size
  // False when nothing changed and the previous snapshot is still current.
  bool published_new_snapshot = false;
};

// Maintainer for TaskRabbit-style marketplace cubes.
class MarketplaceCubeMaintainer {
 public:
  // Cold-builds the initial cube over `axes` (empty = everything in the
  // dataset) and snapshots it. The dataset is owned from here on: deltas
  // mutate the maintainer's copy so cube and data can never drift apart.
  // Errors: whatever BuildMarketplaceCube rejects.
  static Result<MarketplaceCubeMaintainer> Make(MarketplaceDataset data,
                                                const GroupSpace& space,
                                                MarketMeasure measure,
                                                MeasureOptions options = {},
                                                CubeAxes axes = {},
                                                size_t parallelism = 1);

  // Applies a crawl batch: validates EVERY row first (unknown axis ids, bad
  // rankings), so a failed call leaves dataset and snapshot untouched; then
  // writes the rankings, recomputes exactly the touched columns, bumps
  // epochs for the changed ones, patches a copy of the inverted indices and
  // publishes a derived snapshot. Cost: O(touched columns × column cost) +
  // O(changed columns × index-refresh cost) — never O(cube).
  Result<UpsertReport> UpsertCrawlBatch(const CrawlBatch& batch);

  // The snapshot reflecting every upsert so far; hand it to
  // QuantificationService::SetSnapshot to serve it.
  const std::shared_ptr<const CubeSnapshot>& snapshot() const {
    return snapshot_;
  }

  const MarketplaceDataset& data() const { return data_; }

 private:
  MarketplaceCubeMaintainer(MarketplaceDataset data, GroupSpace space,
                            MarketMeasure measure, MeasureOptions options,
                            CubeAxes axes, size_t parallelism)
      : data_(std::move(data)),
        space_(std::move(space)),
        measure_(measure),
        options_(std::move(options)),
        axes_(std::move(axes)),
        parallelism_(parallelism),
        membership_(data_, space_) {}

  MarketplaceDataset data_;
  GroupSpace space_;
  MarketMeasure measure_;
  MeasureOptions options_;
  CubeAxes axes_;  // resolved at Make time; fixed for the maintainer's life
  size_t parallelism_;
  // Hoisted worker-group membership table (core/marketplace_batch.h), the
  // per-dataset-version state of the batched column engine. Updated in
  // UpsertCrawlBatch before recomputation, so delta rebuilds never relabel
  // the whole worker population. Declared after data_/space_ — member init
  // order builds it from the already-moved-in dataset.
  MarketplaceGroupMembership membership_;
  std::shared_ptr<const CubeSnapshot> snapshot_;
};

// Maintainer for Google-job-search-style cubes; the search twin of
// MarketplaceCubeMaintainer with study-snapshot (replace) semantics.
class SearchCubeMaintainer {
 public:
  static Result<SearchCubeMaintainer> Make(SearchDataset data,
                                           const GroupSpace& space,
                                           SearchMeasure measure,
                                           MeasureOptions options = {},
                                           CubeAxes axes = {},
                                           size_t parallelism = 1);

  // Applies a study snapshot with the same all-or-nothing validation,
  // bitwise change detection and derived-snapshot publication as
  // UpsertCrawlBatch.
  Result<UpsertReport> UpsertStudySnapshot(const StudySnapshot& snapshot);

  const std::shared_ptr<const CubeSnapshot>& snapshot() const {
    return snapshot_;
  }

  const SearchDataset& data() const { return data_; }

 private:
  SearchCubeMaintainer(SearchDataset data, GroupSpace space,
                       SearchMeasure measure, MeasureOptions options,
                       CubeAxes axes, size_t parallelism)
      : data_(std::move(data)),
        space_(std::move(space)),
        measure_(measure),
        options_(std::move(options)),
        axes_(std::move(axes)),
        parallelism_(parallelism) {}

  SearchDataset data_;
  GroupSpace space_;
  SearchMeasure measure_;
  MeasureOptions options_;
  CubeAxes axes_;
  size_t parallelism_;
  std::shared_ptr<const CubeSnapshot> snapshot_;
};

}  // namespace fairjob

#endif  // FAIRJOB_SERVE_INCREMENTAL_H_
