#ifndef FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_
#define FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/status.h"
#include "core/quantification.h"
#include "serve/cache_key.h"

namespace fairjob {

// Thread-safe query-serving front end for Problem 1 (docs/serving.md): wraps
// an UnfairnessCube + IndexSet behind
//  * a sharded LRU answer cache keyed by RequestCacheKey (which embeds the
//    cube fingerprint, so a rebuilt backend invalidates every stale entry
//    by construction),
//  * a single-flight layer: concurrent identical requests run
//    SolveQuantification once and share the result, and
//  * a batch API that deduplicates keys and fans distinct requests out over
//    ThreadPool::Shared().
//
// The cube and indices are borrowed, never owned, and must outlive the
// service; the indices must have been built from that cube. Answer and
// AnswerBatch may be called from any number of threads. SetBackend may be
// called concurrently with requests: in-flight computations finish against
// the backend they started with (they hold the read lock), and entries
// cached under the old fingerprint can no longer be returned.
class QuantificationService {
 public:
  struct Options {
    // Answer-cache capacity in entries; 0 disables caching entirely
    // (single-flight still coalesces concurrent duplicates).
    size_t cache_capacity = 4096;
    size_t cache_shards = 8;
    // Threads used by AnswerBatch for distinct requests (counting the
    // caller); 0 = size of ThreadPool::Shared() + 1.
    size_t batch_parallelism = 0;
    // Test hook, run by the single-flight leader after winning the key and
    // before computing; lets tests widen the coalescing window
    // deterministically. Leave null in production.
    std::function<void()> compute_started_hook;
  };

  // Exact request-path counts, maintained independently of the metrics
  // registry (relaxed atomics; snapshot after quiescing for exact totals).
  struct Stats {
    uint64_t requests = 0;        // Answer calls, incl. those via AnswerBatch
    uint64_t batch_requests = 0;  // requests that arrived through AnswerBatch
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t computations = 0;    // SolveQuantification actually executed
    uint64_t coalesced = 0;       // requests served by another's computation
    uint64_t errors = 0;          // non-OK answers
  };

  // The two-argument overload uses default Options. (A default argument
  // cannot be used here: the nested aggregate is incomplete inside the
  // enclosing class as far as GCC is concerned.)
  QuantificationService(const UnfairnessCube* cube, const IndexSet* indices);
  QuantificationService(const UnfairnessCube* cube, const IndexSet* indices,
                        Options options);

  // Answers one request through cache + single-flight. Identical contract to
  // SolveQuantification(*cube, *indices, request): same answers (bit-equal
  // values), same errors; cached answers replay the FaginStats of the run
  // that computed them.
  Result<QuantificationResult> Answer(const QuantificationRequest& request);

  // Answers a mixed batch. Requests with equal canonical keys are computed
  // once; distinct keys are fanned out over the shared pool. results[i]
  // corresponds to requests[i].
  std::vector<Result<QuantificationResult>> AnswerBatch(
      const std::vector<QuantificationRequest>& requests);

  // Points the service at a (re)built cube + indices and re-fingerprints.
  // Entries cached for the old contents stop matching and age out of the
  // LRU; if the rebuilt cube hashes identically, the cache stays warm.
  // Returns only once no in-flight request still reads the old backend, so
  // the caller may free it afterwards. Note that on reader-preferring
  // shared_mutex implementations (glibc) this can wait a long time while
  // request threads saturate every core.
  void SetBackend(const UnfairnessCube* cube, const IndexSet* indices);

  uint64_t cube_fingerprint() const;

  Stats stats() const;
  // hits + misses + evictions of the underlying answer cache.
  ShardedLruCache<RequestCacheKey,
                  std::shared_ptr<const QuantificationResult>,
                  RequestCacheKeyHash>::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  // Outcome of one single-flight computation, shared between the leader and
  // every coalesced follower.
  struct FlightOutcome {
    Status status;
    std::shared_ptr<const QuantificationResult> result;
  };

  Result<QuantificationResult> AnswerInternal(
      const QuantificationRequest& request, bool from_batch);

  Options options_;

  // Backend (cube / indices / fingerprint) swaps atomically under this lock;
  // request threads hold it shared for the duration of their computation.
  mutable std::shared_mutex backend_mutex_;
  const UnfairnessCube* cube_;
  const IndexSet* indices_;
  uint64_t fingerprint_;

  ShardedLruCache<RequestCacheKey, std::shared_ptr<const QuantificationResult>,
                  RequestCacheKeyHash>
      cache_;

  std::mutex flights_mutex_;
  std::unordered_map<RequestCacheKey, std::shared_future<FlightOutcome>,
                     RequestCacheKeyHash>
      flights_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batch_requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> computations_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace fairjob

#endif  // FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_
