#ifndef FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_
#define FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "core/quantification.h"
#include "serve/cache_key.h"
#include "serve/cube_snapshot.h"

namespace fairjob {

// Thread-safe query-serving front end for Problem 1 (docs/serving.md): wraps
// an immutable CubeSnapshot (cube + indices + per-column epochs) behind
//  * a sharded LRU answer cache keyed by the canonical request shape; each
//    entry remembers the epoch digest of the columns the request read, so an
//    incremental upsert invalidates exactly the entries over touched columns
//    (optionally serving them stale a bounded number of times, see below)
//    and a rebuild invalidates everything,
//  * a single-flight layer: concurrent identical requests run
//    SolveQuantification once and share the result,
//  * a batch API that deduplicates keys and fans distinct requests out over
//    ThreadPool::Shared(), and
//  * optional admission control: a bounded number of concurrent
//    computations, a bounded wait queue, and deadline-based load shedding,
//    so overload produces fast typed rejections instead of collapse
//    (docs/serving.md, "Load & overload").
//
// Serving is RCU-style: each request pins the current snapshot once (a
// shared_ptr copy through SnapshotPtr, a few instructions) and computes
// against it for its whole lifetime; SetSnapshot publishes a new snapshot
// with one pointer swap and returns immediately — a flip never waits for a
// request and a request never waits for a rebuild. There is no quiescence
// barrier — the shared_ptr refcount keeps a replaced snapshot alive until
// the last in-flight request that pinned it drops it.
// Answer, AnswerBatch and SetSnapshot may be called concurrently from any
// number of threads; a request observes exactly one snapshot, never a torn
// mix of two.
class QuantificationService {
 public:
  struct Options {
    // Answer-cache capacity in entries; 0 disables caching entirely
    // (single-flight still coalesces concurrent duplicates).
    size_t cache_capacity = 4096;
    size_t cache_shards = 8;
    // Threads used by AnswerBatch for distinct requests (counting the
    // caller); 0 = size of ThreadPool::Shared() + 1.
    size_t batch_parallelism = 0;

    // --- Admission control (0 = feature off, the pre-hardening behavior).
    // Maximum computations holding a compute permit at once. When all
    // permits are taken, up to `max_queue_depth` requests wait for one;
    // beyond that requests are rejected immediately with kUnavailable.
    size_t max_inflight = 0;
    size_t max_queue_depth = 0;
    // Bound on how many followers may coalesce onto one in-flight
    // computation; further duplicates are rejected with kUnavailable
    // instead of growing an unbounded wait list. 0 = unbounded.
    size_t max_followers_per_flight = 0;
    // Deadline budget (relative, microseconds) applied to requests that do
    // not pass an explicit one. A request whose deadline passes while it is
    // queued for a permit is shed with kDeadlineExceeded. 0 = no deadline.
    int64_t default_deadline_micros = 0;

    // --- Micro-batched execution (0 = feature off, bit-for-bit the
    // single-flight behavior above). When > 0, admitted cache misses park in
    // a per-service collector for up to this long; a window leader drains
    // the collector and answers every distinct key with ONE
    // SolveQuantificationBatch pass per pinned snapshot, so concurrent
    // misses that share a selector group share its list scan
    // (docs/serving.md, "Micro-batched execution"). Deadlines still bound
    // total park time: a request whose deadline passes before the window
    // drains is shed with kDeadlineExceeded and never waits for the
    // computation. Window coalescing replaces the single-flight layer for
    // misses (duplicate keys join the same batch entry).
    int64_t batch_window_micros = 0;
    // Drain early once this many distinct keys are parked (0 = drain on
    // window expiry only).
    size_t max_batch_size = 0;

    // --- Cache freshness (0 = feature off).
    // Hard age bound: an entry older than this is never served, fresh or
    // stale — the request recomputes and overwrites it.
    int64_t cache_ttl_micros = 0;
    // Stale-while-revalidate: after an upsert bumps the epochs a cached
    // entry depends on, the outdated value may be served up to this many
    // more times (per entry per staleness episode) while misses refresh it.
    // 0 = digest mismatch is a plain miss (strict freshness).
    uint32_t stale_budget = 0;

    // Time source for deadlines and TTLs. nullptr = Clock::Real(). Tests
    // pass a VirtualClock to make shedding and expiry deterministic.
    const Clock* clock = nullptr;

    // Test hook, run by the single-flight leader after winning the key and
    // before computing; lets tests widen the coalescing window
    // deterministically. Leave null in production.
    std::function<void()> compute_started_hook;
  };

  // Exact request-path counts, maintained independently of the metrics
  // registry (relaxed atomics; snapshot after quiescing for exact totals).
  //
  // Admission accounting is exact (every request, always — with the cache
  // disabled every admitted request is a miss):
  //   admitted + shed_deadline + rejected_queue + rejected_followers
  //     == requests
  //   cache_hits + cache_misses == admitted
  //   computations + coalesced  == cache_misses
  // With admission off (max_inflight == 0) every request is admitted, so
  // the pre-hardening identities hold unchanged.
  struct Stats {
    uint64_t requests = 0;        // Answer calls, incl. those via AnswerBatch
    uint64_t batch_requests = 0;  // requests that arrived through AnswerBatch
    uint64_t admitted = 0;        // answered (from cache or by computing)
    uint64_t rejected_queue = 0;  // kUnavailable: admission queue was full
    uint64_t rejected_followers = 0;  // kUnavailable: flight follower bound
    uint64_t shed_deadline = 0;   // kDeadlineExceeded: deadline passed
    uint64_t cache_hits = 0;      // fresh + stale serves
    uint64_t cache_misses = 0;
    uint64_t stale_hits = 0;      // subset of cache_hits: served stale
    uint64_t stale_refreshes = 0; // computations that replaced a stale entry
    uint64_t ttl_expired = 0;     // probes that found an entry past its TTL
    uint64_t computations = 0;    // SolveQuantification actually executed
    uint64_t coalesced = 0;       // requests served by another's computation
    uint64_t errors = 0;          // non-OK answers (excl. typed rejections)
    uint64_t snapshot_flips = 0;  // SetSnapshot/SetBackend publications
    // Micro-batch window accounting (outside the identities above —
    // batch_parked requests still resolve as admitted / shed_deadline):
    uint64_t batch_windows = 0;      // collector drains (leader passes)
    uint64_t batch_parked = 0;       // misses that parked in a window
    uint64_t batch_window_shed = 0;  // subset of shed_deadline: shed at drain
  };

  // Owning entry point: the service serves `snapshot` until the next flip.
  explicit QuantificationService(std::shared_ptr<const CubeSnapshot> snapshot);
  QuantificationService(std::shared_ptr<const CubeSnapshot> snapshot,
                        Options options);

  // Borrowing compatibility entry points: wrap caller-owned cube + indices
  // in a non-owning snapshot (CubeSnapshot::Borrow). The backing objects
  // must outlive the service AND every request in flight when they are
  // replaced — with RCU serving there is no quiescence barrier to wait on.
  // (The two-argument overload uses default Options; a default argument
  // cannot be used here because the nested aggregate is incomplete inside
  // the enclosing class as far as GCC is concerned.)
  QuantificationService(const UnfairnessCube* cube, const IndexSet* indices);
  QuantificationService(const UnfairnessCube* cube, const IndexSet* indices,
                        Options options);

  // Answers one request through cache + single-flight + (if configured)
  // admission control. An admitted request has a contract identical to
  // SolveQuantification(snapshot->cube(), snapshot->indices(), request) for
  // the snapshot current at the pin: same answers (bit-equal values), same
  // errors; cached answers replay the FaginStats of the run that computed
  // them. A request that is not admitted gets a typed error — kUnavailable
  // (queue or follower bound) or kDeadlineExceeded (deadline shed) — and
  // never a partial or torn answer.
  Result<QuantificationResult> Answer(const QuantificationRequest& request);

  // Same, with an explicit relative deadline budget in microseconds:
  //   > 0  — shed with kDeadlineExceeded if not admitted within the budget;
  //   0    — use Options::default_deadline_micros;
  //   < 0  — already expired on arrival (an open-loop generator running
  //          behind schedule): shed immediately without touching the cache.
  Result<QuantificationResult> Answer(const QuantificationRequest& request,
                                      int64_t deadline_budget_micros);

  // Answers a mixed batch against ONE pinned snapshot (every request in the
  // batch sees the same data even if a writer flips mid-batch). Requests
  // with equal canonical keys are computed once; distinct keys are fanned
  // out over the shared pool. results[i] corresponds to requests[i].
  std::vector<Result<QuantificationResult>> AnswerBatch(
      const std::vector<QuantificationRequest>& requests);

  // Publishes a new serving snapshot (one pointer swap) and returns
  // immediately; requests that already pinned the old snapshot finish
  // against it. Cache entries whose epoch digests no longer match stop
  // being served fresh (they serve stale up to `stale_budget` times, then
  // only refreshes); entries over columns the new snapshot left untouched
  // (same lineage, same epochs) keep hitting.
  void SetSnapshot(std::shared_ptr<const CubeSnapshot> snapshot);

  // Compatibility shim for callers that own raw cube + indices: publishes
  // CubeSnapshot::Borrow(cube, indices). Re-fingerprints (O(cells)) before
  // publishing; if the new cube hashes identically the cache stays warm.
  // Returns as soon as the snapshot is published — the caller must keep the
  // OLD backing alive until in-flight requests have drained (e.g. by not
  // freeing it until the service is quiesced or destroyed).
  void SetBackend(const UnfairnessCube* cube, const IndexSet* indices);

  // Pins and returns the current serving snapshot.
  std::shared_ptr<const CubeSnapshot> snapshot() const;

  // Lineage fingerprint of the current snapshot's cube family — the content
  // identity established when the family was cold-built (incremental flips
  // within a family keep it; see serve/cube_snapshot.h).
  uint64_t cube_fingerprint() const;

  Stats stats() const;

  // Requests currently parked waiting for a compute permit. Exact only when
  // externally quiesced; tests use it to orchestrate deterministic shedding.
  size_t admission_queue_depth() const;

  // A cached answer plus the freshness bookkeeping stale-while-revalidate
  // needs: which epochs it was computed against, when it entered the cache,
  // and how many times it has been served past its epochs.
  struct CachedAnswer {
    std::shared_ptr<const QuantificationResult> result;
    uint64_t epoch_digest = 0;
    int64_t inserted_micros = 0;
    // Shared (not per-copy) so serves through Get()'s value copies all
    // drain the same budget.
    std::shared_ptr<std::atomic<uint32_t>> stale_served;
  };

  // hits + misses + evictions of the underlying answer cache. Note the LRU
  // is keyed by request shape alone (epochs live in the value), so an
  // internal "hit" may still be a service-level miss (stale over budget or
  // past TTL); service-level freshness counts live in stats().
  ShardedLruCache<RequestCacheKey, CachedAnswer, RequestCacheKeyHash>::Stats
  cache_stats() const {
    return cache_.stats();
  }

 private:
  // Outcome of one single-flight computation, shared between the leader and
  // every coalesced follower.
  struct FlightOutcome {
    Status status;
    std::shared_ptr<const QuantificationResult> result;
  };

  // One in-flight computation: the shared outcome plus the follower count
  // used to enforce Options::max_followers_per_flight.
  struct Flight {
    std::shared_future<FlightOutcome> future;
    std::shared_ptr<std::atomic<uint32_t>> followers;
  };

  // How a cache probe classified the stored entry against the request's
  // current epoch digest and the TTL.
  enum class Probe {
    kDisabled,      // cache_capacity == 0: no probe happened
    kMiss,          // no entry stored
    kFresh,         // digest match within TTL: serve it
    kStaleServed,   // digest mismatch, within TTL and stale budget: serve it
    kStaleExhausted,// digest mismatch, budget spent (or SWR off): recompute
    kTtlExpired,    // entry older than cache_ttl_micros: recompute
  };

  // Outcome of one micro-batch window entry, shared between every request
  // parked on it. `drained_micros` is the drain decision time: each waiter
  // compares its own absolute deadline against it, so per-request shedding
  // stays exact even though the computation was shared. The first surviving
  // waiter to claim `computation_claimed` counts the computation; the rest
  // count as coalesced — preserving computations + coalesced == misses.
  struct BatchOutcome {
    Status status;
    std::shared_ptr<const QuantificationResult> result;
    int64_t drained_micros = 0;
    std::shared_ptr<std::atomic<bool>> computation_claimed;
  };

  // One distinct key parked in the micro-batch collector. Duplicate keys
  // join the entry (bounded by max_followers_per_flight, like a flight);
  // max_deadline_abs tracks the latest waiter deadline so the drain skips
  // the computation only when every waiter has already expired.
  struct BatchEntry {
    RequestCacheKey key;
    QuantificationRequest request;
    std::shared_ptr<const CubeSnapshot> snapshot;
    bool refreshing = false;
    int64_t max_deadline_abs = 0;
    uint32_t waiters = 1;
    int64_t parked_micros = 0;
    std::shared_ptr<std::promise<BatchOutcome>> promise;
    std::shared_future<BatchOutcome> future;
  };

  Result<QuantificationResult> AnswerInternal(
      const QuantificationRequest& request, bool from_batch,
      int64_t deadline_budget_micros,
      const std::shared_ptr<const CubeSnapshot>& snapshot);

  // Miss path when batch_window_micros > 0: park under the collector, lead
  // or wait out the window, and resolve from the shared BatchOutcome.
  Result<QuantificationResult> AnswerViaWindow(
      const RequestCacheKey& key, const QuantificationRequest& request,
      const std::shared_ptr<const CubeSnapshot>& snapshot, bool refreshing,
      int64_t deadline_abs, bool admission_on);

  // Leader-side drain: sheds fully-expired entries, groups the rest by
  // pinned snapshot, answers each group with one SolveQuantificationBatch
  // pass, publishes to the cache, and resolves every entry's promise.
  void DrainBatchWindow(std::vector<BatchEntry>* entries);

  // Classifies the entry under `storage_key` (epochs zeroed) against
  // `epoch_digest` at time `now`; on kFresh/kStaleServed fills *answer.
  Probe ProbeCache(const RequestCacheKey& storage_key, uint64_t epoch_digest,
                   int64_t now,
                   std::shared_ptr<const QuantificationResult>* answer);

  // Blocks until a compute permit is free (within `deadline_abs_micros`,
  // absolute per options_.clock) or admission rejects the request. On OK
  // the caller holds a permit and must ReleasePermit(); *waited reports
  // whether the request was ever parked in the queue.
  Status AcquirePermit(int64_t deadline_abs_micros, bool* waited);
  void ReleasePermit();

  Options options_;
  const Clock* clock_;  // never null: options_.clock or Clock::Real()

  // The RCU publication point: readers pin once per request (and once per
  // batch), a flip is one pointer swap. See SnapshotPtr for why this is not
  // std::atomic<std::shared_ptr>.
  SnapshotPtr snapshot_;

  ShardedLruCache<RequestCacheKey, CachedAnswer, RequestCacheKeyHash> cache_;

  std::mutex flights_mutex_;
  std::unordered_map<RequestCacheKey, Flight, RequestCacheKeyHash> flights_;

  // Micro-batch collector (batch_window_micros > 0 only). Entries parked
  // under batch_mutex_; at most one window leader is active at a time —
  // while one is, every new entry lands in the pending list it will drain,
  // so no entry can be stranded without a drainer.
  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::vector<BatchEntry> batch_pending_;
  std::unordered_map<RequestCacheKey, size_t, RequestCacheKeyHash>
      batch_pending_index_;
  bool batch_leader_active_ = false;
  int64_t batch_window_end_ = 0;

  // Admission state: permits outstanding and requests parked waiting for
  // one. Guarded by admission_mutex_; waiters poll the clock on a short
  // wait_for so deadline shedding works with both real and virtual clocks.
  mutable std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  size_t inflight_ = 0;
  size_t queued_ = 0;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batch_requests_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_queue_{0};
  std::atomic<uint64_t> rejected_followers_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> stale_hits_{0};
  std::atomic<uint64_t> stale_refreshes_{0};
  std::atomic<uint64_t> ttl_expired_{0};
  std::atomic<uint64_t> computations_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> snapshot_flips_{0};
  std::atomic<uint64_t> batch_windows_{0};
  std::atomic<uint64_t> batch_parked_{0};
  std::atomic<uint64_t> batch_window_shed_{0};
};

}  // namespace fairjob

#endif  // FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_
