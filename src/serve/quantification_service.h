#ifndef FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_
#define FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/status.h"
#include "core/quantification.h"
#include "serve/cache_key.h"
#include "serve/cube_snapshot.h"

namespace fairjob {

// Thread-safe query-serving front end for Problem 1 (docs/serving.md): wraps
// an immutable CubeSnapshot (cube + indices + per-column epochs) behind
//  * a sharded LRU answer cache keyed by RequestCacheKey (which embeds the
//    epoch digest of the columns the request reads, so an incremental upsert
//    invalidates exactly the entries over touched columns and a rebuild
//    invalidates everything),
//  * a single-flight layer: concurrent identical requests run
//    SolveQuantification once and share the result, and
//  * a batch API that deduplicates keys and fans distinct requests out over
//    ThreadPool::Shared().
//
// Serving is RCU-style: each request pins the current snapshot once (a
// shared_ptr copy through SnapshotPtr, a few instructions) and computes
// against it for its whole lifetime; SetSnapshot publishes a new snapshot
// with one pointer swap and returns immediately — a flip never waits for a
// request and a request never waits for a rebuild. There is no quiescence
// barrier — the shared_ptr refcount keeps a replaced snapshot alive until
// the last in-flight request that pinned it drops it.
// Answer, AnswerBatch and SetSnapshot may be called concurrently from any
// number of threads; a request observes exactly one snapshot, never a torn
// mix of two.
class QuantificationService {
 public:
  struct Options {
    // Answer-cache capacity in entries; 0 disables caching entirely
    // (single-flight still coalesces concurrent duplicates).
    size_t cache_capacity = 4096;
    size_t cache_shards = 8;
    // Threads used by AnswerBatch for distinct requests (counting the
    // caller); 0 = size of ThreadPool::Shared() + 1.
    size_t batch_parallelism = 0;
    // Test hook, run by the single-flight leader after winning the key and
    // before computing; lets tests widen the coalescing window
    // deterministically. Leave null in production.
    std::function<void()> compute_started_hook;
  };

  // Exact request-path counts, maintained independently of the metrics
  // registry (relaxed atomics; snapshot after quiescing for exact totals).
  struct Stats {
    uint64_t requests = 0;        // Answer calls, incl. those via AnswerBatch
    uint64_t batch_requests = 0;  // requests that arrived through AnswerBatch
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t computations = 0;    // SolveQuantification actually executed
    uint64_t coalesced = 0;       // requests served by another's computation
    uint64_t errors = 0;          // non-OK answers
    uint64_t snapshot_flips = 0;  // SetSnapshot/SetBackend publications
  };

  // Owning entry point: the service serves `snapshot` until the next flip.
  explicit QuantificationService(std::shared_ptr<const CubeSnapshot> snapshot);
  QuantificationService(std::shared_ptr<const CubeSnapshot> snapshot,
                        Options options);

  // Borrowing compatibility entry points: wrap caller-owned cube + indices
  // in a non-owning snapshot (CubeSnapshot::Borrow). The backing objects
  // must outlive the service AND every request in flight when they are
  // replaced — with RCU serving there is no quiescence barrier to wait on.
  // (The two-argument overload uses default Options; a default argument
  // cannot be used here because the nested aggregate is incomplete inside
  // the enclosing class as far as GCC is concerned.)
  QuantificationService(const UnfairnessCube* cube, const IndexSet* indices);
  QuantificationService(const UnfairnessCube* cube, const IndexSet* indices,
                        Options options);

  // Answers one request through cache + single-flight. Identical contract to
  // SolveQuantification(snapshot->cube(), snapshot->indices(), request) for
  // the snapshot current at the pin: same answers (bit-equal values), same
  // errors; cached answers replay the FaginStats of the run that computed
  // them.
  Result<QuantificationResult> Answer(const QuantificationRequest& request);

  // Answers a mixed batch against ONE pinned snapshot (every request in the
  // batch sees the same data even if a writer flips mid-batch). Requests
  // with equal canonical keys are computed once; distinct keys are fanned
  // out over the shared pool. results[i] corresponds to requests[i].
  std::vector<Result<QuantificationResult>> AnswerBatch(
      const std::vector<QuantificationRequest>& requests);

  // Publishes a new serving snapshot (one pointer swap) and returns
  // immediately; requests that already pinned the old snapshot finish
  // against it. Cache entries whose epoch digests no longer match stop
  // being served and age out of the LRU; entries over columns the new
  // snapshot left untouched (same lineage, same epochs) keep hitting.
  void SetSnapshot(std::shared_ptr<const CubeSnapshot> snapshot);

  // Compatibility shim for callers that own raw cube + indices: publishes
  // CubeSnapshot::Borrow(cube, indices). Re-fingerprints (O(cells)) before
  // publishing; if the new cube hashes identically the cache stays warm.
  // Returns as soon as the snapshot is published — the caller must keep the
  // OLD backing alive until in-flight requests have drained (e.g. by not
  // freeing it until the service is quiesced or destroyed).
  void SetBackend(const UnfairnessCube* cube, const IndexSet* indices);

  // Pins and returns the current serving snapshot.
  std::shared_ptr<const CubeSnapshot> snapshot() const;

  // Lineage fingerprint of the current snapshot's cube family — the content
  // identity established when the family was cold-built (incremental flips
  // within a family keep it; see serve/cube_snapshot.h).
  uint64_t cube_fingerprint() const;

  Stats stats() const;
  // hits + misses + evictions of the underlying answer cache.
  ShardedLruCache<RequestCacheKey,
                  std::shared_ptr<const QuantificationResult>,
                  RequestCacheKeyHash>::Stats cache_stats() const {
    return cache_.stats();
  }

 private:
  // Outcome of one single-flight computation, shared between the leader and
  // every coalesced follower.
  struct FlightOutcome {
    Status status;
    std::shared_ptr<const QuantificationResult> result;
  };

  Result<QuantificationResult> AnswerInternal(
      const QuantificationRequest& request, bool from_batch,
      const std::shared_ptr<const CubeSnapshot>& snapshot);

  Options options_;

  // The RCU publication point: readers pin once per request (and once per
  // batch), a flip is one pointer swap. See SnapshotPtr for why this is not
  // std::atomic<std::shared_ptr>.
  SnapshotPtr snapshot_;

  ShardedLruCache<RequestCacheKey, std::shared_ptr<const QuantificationResult>,
                  RequestCacheKeyHash>
      cache_;

  std::mutex flights_mutex_;
  std::unordered_map<RequestCacheKey, std::shared_future<FlightOutcome>,
                     RequestCacheKeyHash>
      flights_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batch_requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> computations_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> snapshot_flips_{0};
};

}  // namespace fairjob

#endif  // FAIRJOB_SERVE_QUANTIFICATION_SERVICE_H_
