#ifndef FAIRJOB_SERVE_LOAD_GEN_H_
#define FAIRJOB_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <vector>

#include "core/quantification.h"
#include "serve/quantification_service.h"

namespace fairjob {

// Deterministic load harness for QuantificationService (docs/serving.md,
// "Load & overload"). Two drive modes:
//  * open loop — requests arrive on a precomputed schedule (typically
//    GenerateArrivalTimesMicros' Poisson stream) regardless of how fast the
//    service answers, the regime real traffic applies. Latency is measured
//    from the SCHEDULED arrival, not the actual issue time, so queueing
//    delay the generator itself accumulates when the service falls behind is
//    charged to the service (no coordinated omission).
//  * closed loop — each worker issues the next request the moment the
//    previous one returns; measures the service's capacity (max sustainable
//    throughput), the denominator the SLO targets are set from.

// How every offered request was resolved. The service's typed rejections are
// first-class outcomes, not errors: an overloaded run is healthy exactly
// when offered == ok + deadline_exceeded + unavailable and other_errors == 0.
struct LoadCounts {
  uint64_t offered = 0;
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;  // shed (kDeadlineExceeded)
  uint64_t unavailable = 0;        // rejected (kUnavailable)
  uint64_t other_errors = 0;       // anything else non-OK
};

struct LoadReport {
  LoadCounts counts;
  double wall_seconds = 0.0;
  // Completed (ok) answers per wall second.
  double achieved_qps = 0.0;
  // Exact percentiles (sorted per-request samples, not histogram buckets)
  // over completed requests' latency in microseconds: scheduled-arrival to
  // completion in open loop, call duration in closed loop. Zero when no
  // request completed.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
};

struct LoadGenOptions {
  // Concurrent driver threads. Open loop needs enough workers that the
  // schedule never starves for an issuer while all workers are blocked in
  // the service; closed loop uses exactly this many as the concurrency.
  size_t num_workers = 4;
  // Per-request deadline budget in microseconds, anchored at the scheduled
  // arrival in open loop (a request issued late has the lateness already
  // deducted; one late past the whole budget is passed through with a
  // negative budget for the service to shed at entry). 0 = let the service
  // apply its configured default.
  int64_t deadline_budget_micros = 0;
};

// Drives `trace` (request i at arrivals_micros[i], offsets from stream
// start; schedule longer than the trace wraps around) through the service.
// Blocks until every scheduled request resolved.
LoadReport RunOpenLoopLoad(QuantificationService& service,
                           const std::vector<QuantificationRequest>& trace,
                           const std::vector<int64_t>& arrivals_micros,
                           const LoadGenOptions& options);

// Workers issue trace requests back-to-back (round-robin over the trace,
// disjoint strides per worker) for `duration_seconds` of wall time.
LoadReport RunClosedLoopLoad(QuantificationService& service,
                             const std::vector<QuantificationRequest>& trace,
                             double duration_seconds,
                             const LoadGenOptions& options);

}  // namespace fairjob

#endif  // FAIRJOB_SERVE_LOAD_GEN_H_
